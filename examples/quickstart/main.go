// Command quickstart is the smallest end-to-end use of the library: generate
// two synthetic relations, index them with R*-trees, run the paper's best
// join algorithm (SpatialJoin4) and print the result size together with the
// counted costs.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Two relations of rectangles.  In a real application these would be
	//    the MBRs of your spatial objects; here we generate synthetic street
	//    and river maps.
	streets := repro.GenerateDataset(repro.DatasetConfig{Kind: repro.Streets, Count: 20000, Seed: 1})
	rivers := repro.GenerateDataset(repro.DatasetConfig{Kind: repro.Rivers, Count: 20000, Seed: 2})

	// 2. An R*-tree index per relation (4 KByte pages, as in the paper).
	streetTree, err := repro.BuildRTree(repro.RTreeOptions{PageSize: repro.PageSize4K}, streets, false)
	if err != nil {
		log.Fatal(err)
	}
	riverTree, err := repro.BuildRTree(repro.RTreeOptions{PageSize: repro.PageSize4K}, rivers, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("street index:", streetTree)
	fmt.Println("river index: ", riverTree)

	// 3. The spatial join: all pairs of street/river segments whose bounding
	//    rectangles intersect.
	result, err := repro.TreeJoin(streetTree, riverTree, repro.JoinOptions{
		Method:        repro.SpatialJoin4,
		BufferBytes:   128 << 10, // 128 KByte LRU buffer shared by both trees
		UsePathBuffer: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Results and costs.
	est := repro.DefaultCostModel().Estimate(
		result.Metrics.DiskAccesses(), repro.PageSize4K, result.Metrics.TotalComparisons())
	fmt.Printf("\nintersecting pairs: %d\n", result.Count)
	fmt.Printf("comparisons:        %d (+%d for sorting)\n", result.Metrics.Comparisons, result.Metrics.SortComparisons)
	fmt.Printf("disk accesses:      %d\n", result.Metrics.DiskAccesses())
	fmt.Printf("estimated time:     %.2f s on the paper's 1993 hardware model\n", est.TotalSeconds())

	// A window query over one of the indexes, the single-scan query the
	// paper's introduction motivates.
	window := repro.NewRect(0.45, 0.45, 0.55, 0.55)
	hits := 0
	streetTree.Search(window, func(e repro.TreeEntry) bool { hits++; return true })
	fmt.Printf("\nstreets intersecting the window %v: %d\n", window, hits)
}
