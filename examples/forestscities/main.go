// Command forestscities walks through the query the paper's introduction
// uses to motivate spatial joins: "for all cities not further away than
// 100 km from Munich, find all forests which intersect a city".
//
// It exercises the relation-level API: window queries with exact-geometry
// refinement, restricting one relation to a query region, and an
// ID-spatial-join (filter step on the R*-trees plus refinement on the
// polygon geometries).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Two region relations: cities and forests.  The generator stands in for
	// the cadastral data of the example; each object carries its polygon
	// geometry so the refinement step has real work to do.
	cityItems := repro.GenerateDataset(repro.DatasetConfig{Kind: repro.Regions, Count: 4000, Seed: 11})
	forestItems := repro.GenerateDataset(repro.DatasetConfig{Kind: repro.Regions, Count: 6000, Seed: 12})

	cities, err := repro.BuildRelation("cities", repro.RegionObjects(cityItems),
		repro.RTreeOptions{PageSize: repro.PageSize2K}, false)
	if err != nil {
		log.Fatal(err)
	}
	forests, err := repro.BuildRelation("forests", repro.RegionObjects(forestItems),
		repro.RTreeOptions{PageSize: repro.PageSize2K}, false)
	if err != nil {
		log.Fatal(err)
	}

	// "Munich" sits at the centre of the map; 100 km corresponds to a window
	// of 0.2 x 0.2 in the unit-square world.
	munich := repro.NewRect(0.4, 0.4, 0.6, 0.6)
	nearbyCities := cities.WindowQuery(munich, true)
	fmt.Printf("cities within 100 km of Munich: %d of %d\n", len(nearbyCities), cities.Len())

	// Build a temporary relation holding only the nearby cities, then join it
	// with the forests.  This is exactly the two-step plan the paper sketches
	// for the query.
	nearby, err := repro.BuildRelation("nearby-cities", nearbyCities,
		repro.RTreeOptions{PageSize: repro.PageSize2K}, false)
	if err != nil {
		log.Fatal(err)
	}
	result, err := repro.SpatialJoin(nearby, forests, repro.SpatialJoinOptions{
		Type: repro.IDJoin,
		Filter: repro.JoinOptions{
			Method:        repro.SpatialJoin4,
			BufferBytes:   128 << 10,
			UsePathBuffer: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("filter step candidates:        %d\n", result.FilterPairs)
	fmt.Printf("forest/city intersections:     %d\n", len(result.Pairs))
	fmt.Printf("comparisons in the filter:     %d\n", result.Metrics.Comparisons)
	fmt.Printf("disk accesses in the filter:   %d\n", result.Metrics.DiskAccesses())
	fmt.Printf("estimated filter time:         %.2f s\n", result.Estimate.TotalSeconds())

	// Show a few of the result pairs.
	for i, p := range result.Pairs {
		if i >= 5 {
			break
		}
		city, _ := nearby.Object(p.R)
		forest, _ := forests.Object(p.S)
		fmt.Printf("  city %4d (MBR %v) intersects forest %4d (MBR %v)\n",
			p.R, city.MBR, p.S, forest.MBR)
	}
}
