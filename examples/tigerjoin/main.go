// Command tigerjoin reproduces the paper's headline experiment (test A:
// California streets joined with rivers and railway tracks) at a reduced
// scale and compares every join algorithm the paper develops, from the
// straightforward SpatialJoin1 to the recommended SpatialJoin4, under the
// paper's cost model.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	scale := 0.1 // 10% of the paper's cardinalities keeps the run short
	streets := repro.GenerateDataset(repro.DatasetConfig{
		Kind: repro.Streets, Count: int(131461.0 * scale), Seed: 101,
	})
	rivers := repro.GenerateDataset(repro.DatasetConfig{
		Kind: repro.Rivers, Count: int(128971.0 * scale), Seed: 202,
	})
	fmt.Printf("streets: %d segments, rivers & railways: %d segments\n", len(streets), len(rivers))

	const pageSize = repro.PageSize2K
	streetTree, err := repro.BuildRTree(repro.RTreeOptions{PageSize: pageSize}, streets, false)
	if err != nil {
		log.Fatal(err)
	}
	riverTree, err := repro.BuildRTree(repro.RTreeOptions{PageSize: pageSize}, rivers, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(streetTree)
	fmt.Println(riverTree)

	model := repro.DefaultCostModel()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\nalgorithm\tpairs\tcomparisons\tsorting\tdisk accesses\test. time (s)\tbound")
	for _, method := range []repro.JoinMethod{
		repro.SpatialJoin1, repro.SpatialJoin2, repro.SpatialJoin3, repro.SpatialJoin4, repro.SpatialJoin5,
	} {
		res, err := repro.TreeJoin(streetTree, riverTree, repro.JoinOptions{
			Method:        method,
			BufferBytes:   128 << 10,
			UsePathBuffer: true,
			DiscardPairs:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		est := model.Estimate(res.Metrics.DiskAccesses(), pageSize, res.Metrics.TotalComparisons())
		bound := "CPU"
		if est.IOBound() {
			bound = "I/O"
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%.1f\t%s\n",
			method, res.Count, res.Metrics.Comparisons, res.Metrics.SortComparisons,
			res.Metrics.DiskAccesses(), est.TotalSeconds(), bound)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe ordering mirrors the paper: restricting the search space (SJ2) cuts the")
	fmt.Println("comparisons by several times, the plane-sweep variants (SJ3-SJ5) cut them")
	fmt.Println("further, and the pinned plane-sweep read schedule (SJ4) needs the fewest")
	fmt.Println("disk accesses, making the total estimated time an order of magnitude lower")
	fmt.Println("than the straightforward join.")
}
