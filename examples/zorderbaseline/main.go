// Command zorderbaseline contrasts the R*-tree join with the z-ordering /
// B+-tree approach the paper discusses as the main alternative access-method
// family (section 2): rectangles are decomposed into quadtree cells, the
// cells are stored in a B+-tree and the join is a merge over the two sorted
// cell sequences.  The example reports the redundancy factor, the candidate
// count and the comparisons of both approaches.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/metrics"
	"repro/internal/zbjoin"
)

func main() {
	streets := repro.GenerateDataset(repro.DatasetConfig{Kind: repro.Streets, Count: 6000, Seed: 1})
	rivers := repro.GenerateDataset(repro.DatasetConfig{Kind: repro.Rivers, Count: 6000, Seed: 2})

	// R*-tree join (the paper's approach).
	streetTree, err := repro.BuildRTree(repro.RTreeOptions{PageSize: repro.PageSize2K}, streets, false)
	if err != nil {
		log.Fatal(err)
	}
	riverTree, err := repro.BuildRTree(repro.RTreeOptions{PageSize: repro.PageSize2K}, rivers, false)
	if err != nil {
		log.Fatal(err)
	}
	rtreeRes, err := repro.TreeJoin(streetTree, riverTree, repro.JoinOptions{
		Method:        repro.SpatialJoin4,
		BufferBytes:   128 << 10,
		UsePathBuffer: true,
		DiscardPairs:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Z-ordering + B+-tree join (the Orenstein-style baseline), at two
	// redundancy levels.
	fmt.Printf("R*-tree join (SJ4):  %d pairs, %d comparisons, %d disk accesses\n",
		rtreeRes.Count, rtreeRes.Metrics.TotalComparisons(), rtreeRes.Metrics.DiskAccesses())

	for _, maxCells := range []int{1, 4, 16} {
		relR := zbjoin.BuildRelation(streets, zbjoin.Options{MaxCells: maxCells})
		relS := zbjoin.BuildRelation(rivers, zbjoin.Options{MaxCells: maxCells})
		res := zbjoin.Join(relR, relS, metrics.NewCollector())
		falseRate := 0.0
		if res.Candidates > 0 {
			falseRate = 1 - float64(len(res.Pairs))/float64(res.Candidates)
		}
		fmt.Printf("z-ordering (<=%2d cells/object): %d pairs, redundancy %.2f/%.2f, %d candidates (%.0f%% false), %d verification comparisons\n",
			maxCells, len(res.Pairs), res.RedundancyR, res.RedundancyS,
			res.Candidates, 100*falseRate, res.Metrics.Comparisons)
	}

	fmt.Println("\nBoth approaches compute the same result set.  The z-ordering baseline")
	fmt.Println("illustrates the redundancy trade-off the paper describes: a finer cell")
	fmt.Println("decomposition filters better but multiplies the stored references, which is")
	fmt.Println("exactly the drawback that motivates performing spatial joins directly on")
	fmt.Println("R*-trees.")
}
