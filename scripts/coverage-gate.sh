#!/usr/bin/env bash
# coverage-gate.sh <package-path> <profile-out> <min-percent>
# Runs the package's tests with a coverage profile and fails when total
# statement coverage is below the gate.  Shared by the per-package race jobs
# in .github/workflows/ci.yml so the gate logic cannot drift between them.
set -euo pipefail

pkg=$1
profile=$2
gate=$3

go test -coverprofile="$profile" "$pkg"
go tool cover -func="$profile" | tail -1
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
awk -v t="$total" -v g="$gate" 'BEGIN { if (t+0 < g+0) { print "coverage " t "% is below the " g "% gate"; exit 1 } }'
