#!/usr/bin/env bash
# fuzz-smoke.sh <package-path> <fuzz-target> [<fuzz-target> ...]
# Runs each native fuzz target of the package for a short, CI-sized burst of
# coverage-guided fuzzing on top of its seed corpus.  Shared by the
# per-package jobs in .github/workflows/ci.yml so the smoke invocation
# (-run '^$' to skip unit tests, one target per run as `go test -fuzz`
# requires) cannot drift between them.
#
# FUZZTIME overrides the per-target budget (default 15s).
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: fuzz-smoke.sh <package-path> <fuzz-target> [<fuzz-target> ...]" >&2
  exit 2
fi

pkg=$1
shift
fuzztime=${FUZZTIME:-15s}

for target in "$@"; do
  echo "==> fuzz ${target} (${fuzztime}) ${pkg}"
  go test -run '^$' -fuzz "${target}\$" -fuzztime "$fuzztime" "$pkg"
done
