// Package analysistest runs analyzers over golden packages under
// internal/analysis/testdata/src and checks their diagnostics against
// `// want "regexp"` comments, following the convention of
// golang.org/x/tools/go/analysis/analysistest (reimplemented on the
// standard library because this module builds offline with no
// dependencies).
//
// A `// want "re"` comment at the end of a line expects at least one
// diagnostic on that line whose message matches re; several quoted patterns
// expect several diagnostics. Diagnostics with no matching want, and wants
// with no matching diagnostic, fail the test. Because the runner applies
// the driver's `//repolint:ignore` suppression first, a testdata violation
// carrying an ignore comment and no want doubles as the golden test for the
// suppression machinery.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	loaderOnce sync.Once
	loader     *analysis.Loader
	loaderErr  error
)

// sharedLoader memoizes one loader (and so one type-checked stdlib) across
// all golden tests in the process.
func sharedLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = analysis.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("analysistest: building loader: %v", loaderErr)
	}
	return loader
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run loads the golden package at internal/analysis/testdata/src/<pkg> and
// checks the analyzers' surviving diagnostics against its want comments.
func Run(t *testing.T, pkg string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	diags, dir := Diagnostics(t, pkg, analyzers...)
	wants, err := collectWants(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	checkDiagnostics(t, diags, wants)
}

// Diagnostics loads the golden package and returns the surviving (post-
// suppression) diagnostics and the package directory, without want
// checking — for tests that assert on the diagnostics directly (e.g. the
// malformed-ignore case, where a want comment would become the ignore's
// reason).
func Diagnostics(t *testing.T, pkg string, analyzers ...*analysis.Analyzer) ([]analysis.Diagnostic, string) {
	t.Helper()
	l := sharedLoader(t)
	dir := filepath.Join(l.Root, "internal", "analysis", "testdata", "src", filepath.FromSlash(pkg))
	importPath := l.ModulePath + "/internal/analysis/testdata/src/" + pkg
	p, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", pkg, err)
	}
	diags, err := analysis.Run(p, analyzers)
	if err != nil {
		t.Fatalf("analysistest: running analyzers on %s: %v", pkg, err)
	}
	return diags, dir
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE accepts both backtick-quoted and double-quoted patterns, like
// x/tools analysistest.
var quotedRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				pat := q[1]
				if pat == "" {
					pat = q[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", path, i+1, pat, err)
				}
				wants = append(wants, &want{file: path, line: i + 1, re: re, raw: pat})
			}
		}
	}
	return wants, nil
}

func checkDiagnostics(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.line != d.Pos.Line || filepath.Base(w.file) != filepath.Base(d.Pos.Filename) {
				continue
			}
			if w.re.MatchString(d.Message) || w.re.MatchString(d.Analyzer+": "+d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
