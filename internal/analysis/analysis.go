// Package analysis is a self-contained static-analysis framework plus the
// repo's analyzer suite: compile-time enforcement of the cross-cutting
// contracts the reproduction's measurements depend on (determinism of the
// measured packages, counted-I/O accounting, epoch pin/unpin and latched-
// error lifecycle, allocation-free hot paths), alongside reimplementations
// of the staticcheck-class standard passes (nilness, unusedresult,
// copylocks, sortslice) so cmd/repolint is the single lint entrypoint.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, analysistest-style golden packages) but is
// built entirely on the standard library's go/ast, go/parser, go/types and
// go/importer, because this repository builds offline with no module
// dependencies.
//
// # Annotation grammar
//
// Analyzers are driven by three comment annotations:
//
//   - `//repro:measured` in a package's doc comment marks the package as one
//     whose outputs must stay bit-identical to the seed goldens; the
//     determinism analyzer applies only to annotated packages.
//   - `//repro:hotpath` in a function's doc comment opts the function into
//     the hot-path allocation analyzer.
//   - `//repro:guardedBy <field>` on a struct field declares which mutex
//     field must be held to touch it; `//repro:locked` on a function states
//     that the discipline is satisfied externally (the caller holds the
//     lock, or the value is not yet shared).
//   - `//repro:io-boundary` on a function marks it as a sanctioned wrapper
//     that may perform raw pager reads / node decodes.
//
// False positives are suppressed at the diagnostic site with
// `//repolint:ignore <analyzer> <reason>` on the same line or the line
// above; the reason is mandatory so every suppression is documented.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects the Pass and reports
// diagnostics through pass.Reportf.
type Analyzer struct {
	Name string // short lower-case identifier, used by //repolint:ignore
	Doc  string // one-line description
	Run  func(*Pass) error
}

// Pass holds one analyzed package: its syntax, its type information, and the
// diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes every analyzer over the package and returns the surviving
// diagnostics: findings suppressed by a `//repolint:ignore` comment are
// dropped, and ignore comments missing their mandatory reason are turned
// into diagnostics themselves. Diagnostics are sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	sup, bad := collectIgnores(pkg.Fset, pkg.Files)
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
		for _, d := range pass.diags {
			if !sup.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// suppressions maps file -> line -> set of analyzer names ignored there. An
// ignore comment covers its own line and, when it stands alone on a line,
// the first following line that carries code.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	for _, l := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if set := lines[l]; set[d.Analyzer] || set["all"] {
			return true
		}
	}
	return false
}

// collectIgnores parses `//repolint:ignore <analyzer> <reason>` comments.
// The reason is mandatory: an ignore without one becomes a diagnostic so
// suppressions are always documented.
func collectIgnores(fset *token.FileSet, files []*ast.File) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "repolint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "repolint:ignore"))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "repolint",
						Message:  "repolint:ignore needs an analyzer name and a reason (`//repolint:ignore <analyzer> <reason>`)",
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					sup[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = make(map[string]bool)
				}
				lines[pos.Line][fields[0]] = true
			}
		}
	}
	return sup, bad
}

// ---- shared AST/annotation helpers used by the analyzers ----

// hasAnnotation reports whether the comment group contains the given
// annotation marker (e.g. "repro:hotpath") as its own comment line.
func hasAnnotation(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// annotationArg returns the first argument of an annotation line like
// `//repro:guardedBy mu`, or "" when absent.
func annotationArg(doc *ast.CommentGroup, marker string) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, marker+" "); ok {
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				return fields[0]
			}
		}
	}
	return ""
}

// packageAnnotated reports whether any file's package doc carries marker.
func packageAnnotated(files []*ast.File, marker string) bool {
	for _, f := range files {
		if hasAnnotation(f.Doc, marker) {
			return true
		}
	}
	return false
}

// funcFor returns the innermost function declaration or literal enclosing
// pos within file, preferring declarations (literals inherit the enclosing
// declaration's annotations).
func funcDeclFor(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// exprString renders a canonical one-line form of an expression for
// structural matching (e.g. pairing Pin/Unpin receivers and arguments).
func exprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		writeExpr(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, e.X)
	case *ast.UnaryExpr:
		b.WriteString(e.Op.String())
		writeExpr(b, e.X)
	case *ast.IndexExpr:
		writeExpr(b, e.X)
		b.WriteByte('[')
		writeExpr(b, e.Index)
		b.WriteByte(']')
	case *ast.BasicLit:
		b.WriteString(e.Value)
	case *ast.CallExpr:
		writeExpr(b, e.Fun)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeExpr(b, a)
		}
		b.WriteByte(')')
	case *ast.ParenExpr:
		writeExpr(b, e.X)
	case *ast.SliceExpr:
		writeExpr(b, e.X)
		b.WriteString("[:]")
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}

// sliceBase strips slice expressions and parens: base(x[a:b]) == base(x).
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.SliceExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return e
		}
	}
}

// namedOrigin unwraps pointers and returns the named type's package path and
// name, or ("", "") when the type is not (a pointer to) a named type.
func namedOrigin(t types.Type) (pkgPath, name string) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// calleeFunc resolves the called function or method object, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
