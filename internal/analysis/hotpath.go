package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath enforces the allocation-free contract on functions annotated
// `//repro:hotpath` (the join inner loops, the plane sweep, the LRU and the
// arena paths — PRs 1–2 brought them to ~zero allocs/op and the benchmarks
// pin it). Inside an annotated function it flags the constructs that
// reintroduce per-call allocations:
//
//   - function literals (the closure header escapes and allocates, the very
//     regression sweep.AppendPairs was written to remove);
//   - &T{...} composite literals, new(T) and make(...) (direct heap
//     allocations — scratch space belongs in the arena/frame);
//   - interface boxing: passing or assigning a concrete non-pointer value
//     where an interface is expected (the boxed copy allocates);
//   - append growth into a different variable (`fresh := append(pool, ...)`
//     copies the pool; amortized same-variable growth `x = append(x, ...)`
//     into a reused buffer is the sanctioned idiom and is not flagged).
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag allocating constructs in //repro:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasAnnotation(fd.Doc, "repro:hotpath") {
				continue
			}
			checkHotPathFunc(pass, fd)
		}
	}
	return nil
}

func checkHotPathFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in a hot path: the capture header allocates per call; hoist state into the arena or a method")
			return false // the literal's body is not the annotated hot path
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
				pass.Reportf(n.Pos(), "&composite literal in a hot path escapes to the heap; reuse scratch space instead")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if obj, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch obj.Name() {
					case "new", "make":
						pass.Reportf(n.Pos(), "%s in a hot path allocates per call; preallocate in the arena and reuse", obj.Name())
					}
				}
			}
			checkBoxingCall(pass, n)
		case *ast.AssignStmt:
			checkHotAssign(pass, n)
		}
		return true
	})
}

// checkHotAssign flags interface boxing in assignments and append growth
// into a fresh variable.
func checkHotAssign(pass *Pass, n *ast.AssignStmt) {
	info := pass.TypesInfo
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" && len(call.Args) > 0 {
					dst := exprString(sliceBase(n.Lhs[i]))
					src := exprString(sliceBase(call.Args[0]))
					if dst != src {
						pass.Reportf(n.Pos(), "append grows into %q instead of back into %q: the copy allocates; use x = append(x, ...) over a reused buffer", dst, src)
					}
					continue
				}
			}
		}
		lt := info.TypeOf(n.Lhs[i])
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		if boxes(info, rhs) {
			pass.Reportf(rhs.Pos(), "assignment boxes a concrete value into interface %s; keep hot-path state concrete", lt.String())
		}
	}
}

// checkBoxingCall flags concrete non-pointer arguments passed to interface
// parameters.
func checkBoxingCall(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if boxes(info, arg) {
			pass.Reportf(arg.Pos(), "argument boxes a concrete value into interface %s; pass a pointer or keep the callee concrete", pt.String())
		}
	}
}

// boxes reports whether storing e into an interface allocates: a concrete
// non-pointer, non-nil, non-interface value does (small-integer interning
// aside); pointers, interfaces and nil do not.
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	t := tv.Type
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		// pointer-shaped: the interface holds the word directly
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}
