package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The analyzers in this file are self-contained reimplementations of the
// staticcheck/x-tools standard passes the repo wants in its single lint
// entrypoint (ISSUE 8 satellite: nilness, unusedresult, copylocks beyond
// default vet, sortslice). They are deliberately narrower than the
// originals — no SSA, no full dataflow — but cover the bug shapes that
// matter here, and ship with the same golden-test treatment as the
// repo-contract analyzers.

// Nilness flags uses of a pointer-shaped value inside the branch that just
// established it is nil: `if x == nil { ... x.f ... }` (and the else branch
// of `x != nil`) dereferences, calls, or indexes a value known to be nil.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc:  "flag dereference/call/index of a value inside the branch proving it nil",
	Run:  runNilness,
}

func runNilness(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			if x, ok := ast.Unparen(bin.X).(*ast.Ident); ok && isNilExpr(pass, bin.Y) {
				id = x
			} else if y, ok := ast.Unparen(bin.Y).(*ast.Ident); ok && isNilExpr(pass, bin.X) {
				id = y
			}
			if id == nil || id.Name == "_" {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !nilable(obj.Type()) {
				return true
			}
			var nilBlock ast.Stmt
			switch bin.Op {
			case token.EQL:
				nilBlock = ifs.Body
			case token.NEQ:
				nilBlock = ifs.Else
			}
			if nilBlock == nil {
				return true
			}
			reportNilUses(pass, nilBlock, id.Name, obj)
			return true
		})
	}
	return nil
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Slice, *types.Signature, *types.Chan:
		return true
	}
	return false
}

// reportNilUses walks the branch where obj is known nil and flags
// dereferencing uses. It stops at any assignment to the variable.
func reportNilUses(pass *Pass, block ast.Stmt, name string, obj types.Object) {
	reassigned := false
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == name && pass.TypesInfo.Uses[id] == obj
	}
	ast.Inspect(block, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
					reassigned = true
				}
			}
		case *ast.SelectorExpr:
			// x.f on a nil pointer to struct panics; on interfaces a method
			// call through nil panics too. Package selectors are filtered by
			// the object identity check.
			if usesObj(n.X) {
				pass.Reportf(n.Pos(), "%s is nil in this branch; selecting %s.%s will panic", name, name, n.Sel.Name)
			}
		case *ast.StarExpr:
			if usesObj(n.X) {
				pass.Reportf(n.Pos(), "%s is nil in this branch; dereferencing it will panic", name)
			}
		case *ast.IndexExpr:
			if usesObj(n.X) {
				if _, isMap := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); !isMap {
					pass.Reportf(n.Pos(), "%s is nil in this branch; indexing it will panic", name)
				}
			}
		case *ast.CallExpr:
			if usesObj(n.Fun) {
				pass.Reportf(n.Pos(), "%s is nil in this branch; calling it will panic", name)
			}
		}
		return true
	})
}

// UnusedResult flags calls whose only effect is their return value when that
// value is discarded: pure stdlib helpers (fmt.Sprintf, errors.New,
// strings transforms, sort predicates) called as bare statements.
var UnusedResult = &Analyzer{
	Name: "unusedresult",
	Doc:  "flag discarded results of side-effect-free calls",
	Run:  runUnusedResult,
}

// pureFuncs: package path -> function names whose result is the whole point.
var pureFuncs = map[string]map[string]bool{
	"fmt": {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true},
	"errors": {
		"New": true, "Is": true, "As": true, "Unwrap": true, "Join": true,
	},
	"strings": {
		"ToUpper": true, "ToLower": true, "TrimSpace": true, "Trim": true,
		"TrimPrefix": true, "TrimSuffix": true, "Repeat": true, "Replace": true,
		"ReplaceAll": true, "Join": true, "Split": true, "Fields": true,
		"Contains": true, "HasPrefix": true, "HasSuffix": true, "Index": true,
	},
	"sort":                 {"SliceIsSorted": true, "IsSorted": true, "SearchInts": true, "Search": true},
	"repro/internal/sweep": {"IsSortedByXL": true, "Pairs": true, "NestedLoopPairs": true},
}

func runUnusedResult(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Signature().Recv() != nil {
				return true
			}
			if set := pureFuncs[fn.Pkg().Path()]; set != nil && set[fn.Name()] {
				pass.Reportf(stmt.Pos(), "result of %s.%s is discarded: the call has no side effects", fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil
}

// CopyLocks flags copies of values whose type contains a lock
// (sync.Mutex/RWMutex/Once/WaitGroup/Cond/Pool/Map) by value: assignments,
// call arguments, and range value variables. It overlaps with
// `go vet`'s copylocks on purpose — cmd/repolint is the single lint
// entrypoint — and extends it to range-element copies.
var CopyLocks = &Analyzer{
	Name: "copylocks",
	Doc:  "flag by-value copies of lock-containing values",
	Run:  runCopyLocks,
}

func runCopyLocks(pass *Pass) error {
	info := pass.TypesInfo
	flag := func(pos token.Pos, what string, t types.Type) {
		pass.Reportf(pos, "%s copies a value of type %s which contains a lock; use a pointer", what, t.String())
	}
	// addressable source expressions only: composite literals and call
	// results are fresh values, copying them is fine.
	copiesLock := func(e ast.Expr) (types.Type, bool) {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			return nil, false
		}
		t := info.TypeOf(e)
		if t != nil && containsLock(t, nil) {
			return t, true
		}
		return nil, false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue // discarding is not copying into anything
						}
					}
					if t, bad := copiesLock(rhs); bad {
						flag(rhs.Pos(), "assignment", t)
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						return true // len/cap/append on lock-bearing slices are fine
					}
				}
				for _, arg := range n.Args {
					if t, bad := copiesLock(arg); bad {
						flag(arg.Pos(), "call argument", t)
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if t := info.TypeOf(n.Value); t != nil && containsLock(t, nil) {
					if id, ok := n.Value.(*ast.Ident); !ok || id.Name != "_" {
						flag(n.Value.Pos(), "range value", t)
					}
				}
			}
			return true
		})
	}
	return nil
}

var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true,
	"Cond": true, "Pool": true, "Map": true,
}

func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	case *types.Named:
		return containsLock(u, seen)
	}
	return false
}

// SortSlice flags sort.Slice/SliceStable/SliceIsSorted whose first argument
// is not a slice — at runtime that panics; statically it is always a bug.
var SortSlice = &Analyzer{
	Name: "sortslice",
	Doc:  "flag sort.Slice* calls whose first argument is not a slice",
	Run:  runSortSlice,
}

var sortSliceFuncs = map[string]bool{"Slice": true, "SliceStable": true, "SliceIsSorted": true}

func runSortSlice(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" || !sortSliceFuncs[fn.Name()] || len(call.Args) == 0 {
				return true
			}
			t := pass.TypesInfo.TypeOf(call.Args[0])
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
			case *types.Interface:
				// a statically-typed any could hold a slice; stay quiet
			default:
				pass.Reportf(call.Args[0].Pos(), "sort.%s expects a slice, got %s: this panics at runtime", fn.Name(), t.String())
			}
			return true
		})
	}
	return nil
}

// All is the complete repolint suite in reporting order: the repo-contract
// analyzers first, then the standard passes.
var All = []*Analyzer{
	Determinism,
	Accounting,
	PinUnpin,
	GuardedBy,
	LatchedErr,
	HotPath,
	Nilness,
	UnusedResult,
	CopyLocks,
	SortSlice,
}
