package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PinUnpin enforces the paired pin/unpin discipline of the epoch lifecycle
// (server.pin/unpin) and the buffer pin protocol (Tracker.Pin/Unpin,
// LRU.Pin/Unpin): a function that pins must release on every path.
//
// Two shapes are recognized:
//
//   - `e := x.pin()` / `e := x.Pin()` returning a handle: the function must
//     either `defer x.unpin(e)` or call unpin on e before every later
//     return (and before falling off the end).
//   - `x.Pin(args...)` returning nothing: a structurally matching
//     `x.Unpin(args...)` (same receiver and arguments) must follow on every
//     path, or be deferred.
//
// The path check is lexical, not a full CFG: an unpin anywhere between the
// pin and a return satisfies that return. That is exactly the discipline
// the server and join code follow; exotic control flow that releases on a
// different line documents itself with //repolint:ignore.
var PinUnpin = &Analyzer{
	Name: "pinunpin",
	Doc:  "every Pin must be matched by an Unpin on all paths (deferred, or before each return)",
	Run:  runPinUnpin,
}

func isPinName(name string) bool   { return name == "pin" || name == "Pin" }
func isUnpinName(name string) bool { return name == "unpin" || name == "Unpin" }

// callName returns the bare selector/ident name of the call's callee.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

type unpinSite struct {
	pos      token.Pos
	deferred bool
	key      string // canonical receiver+args, or the handle argument
}

func runPinUnpin(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Pin/Unpin wrappers forward to an inner pin; the discipline
			// binds their callers, not them.
			if isPinName(fd.Name.Name) || isUnpinName(fd.Name.Name) {
				continue
			}
			checkPinUnpinFunc(pass, fd)
		}
	}
	return nil
}

func checkPinUnpinFunc(pass *Pass, fd *ast.FuncDecl) {
	type pinSite struct {
		pos token.Pos
		key string // see unpinSite
	}
	var pins []pinSite
	var unpins []unpinSite
	var returns []token.Pos
	assigned := make(map[*ast.CallExpr]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isUnpinName(callName(n.Call)) {
				unpins = append(unpins, unpinSite{pos: n.Pos(), deferred: true, key: unpinKey(n.Call)})
				return false
			}
			return true
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.AssignStmt:
			// e := x.pin()
			if len(n.Rhs) == 1 && len(n.Lhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isPinName(callName(call)) && len(call.Args) == 0 {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						pins = append(pins, pinSite{pos: n.Pos(), key: id.Name})
						assigned[call] = true
						return true
					}
				}
			}
		case *ast.CallExpr:
			name := callName(n)
			if isPinName(name) && !assigned[n] {
				switch {
				case len(n.Args) > 0:
					// Tracker.Pin(tree, id) shape: pair by receiver+args.
					pins = append(pins, pinSite{pos: n.Pos(), key: unpinKey(n)})
				case !resultless(pass.TypesInfo, n):
					// A handle-returning pin whose handle is not bound to a
					// variable can never be unpinned.
					pass.Reportf(n.Pos(), "pinned handle is discarded: assign it and unpin on every path")
				}
			} else if isUnpinName(name) {
				unpins = append(unpins, unpinSite{pos: n.Pos(), key: unpinKey(n)})
			}
		}
		return true
	})

	end := fd.Body.Rbrace
	for _, pin := range pins {
		if covered(pin.pos, end, pin.key, unpins, returns) {
			continue
		}
		pass.Reportf(pin.pos, "pin of %s is not released on every path: defer the matching unpin, or unpin before each return", pin.key)
	}
}

// covered reports whether every exit after pinPos sees a matching unpin.
func covered(pinPos, end token.Pos, key string, unpins []unpinSite, returns []token.Pos) bool {
	matches := func(u unpinSite) bool {
		if u.key == key {
			return true
		}
		for _, part := range strings.Split(u.key, ",") {
			if part == key {
				return true
			}
		}
		return false
	}
	for _, u := range unpins {
		if u.deferred && matches(u) {
			return true
		}
	}
	exits := make([]token.Pos, 0, len(returns)+1)
	for _, r := range returns {
		if r > pinPos {
			exits = append(exits, r)
		}
	}
	exits = append(exits, end)
	for _, exit := range exits {
		ok := false
		for _, u := range unpins {
			if !u.deferred && u.pos > pinPos && u.pos < exit && matches(u) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func unpinKey(call *ast.CallExpr) string {
	var parts []string
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		parts = append(parts, exprString(sel.X))
	}
	for _, a := range call.Args {
		parts = append(parts, exprString(a))
	}
	return strings.Join(parts, ",")
}

func resultless(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return true
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len() == 0
	}
	return tv.IsVoid()
}

// GuardedBy enforces `//repro:guardedBy <mutex>` field annotations: outside
// the declaring struct's constructor literals, an annotated field may only
// be read or written in a function that locks the named mutex (a call chain
// ending in <mutex>.Lock() or <mutex>.RLock()) or that is annotated
// `//repro:locked` — meaning the caller holds the lock, or the value is not
// yet shared (constructor/pre-publication paths).
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated //repro:guardedBy must only be touched under their mutex (or in //repro:locked functions)",
	Run:  runGuardedBy,
}

func runGuardedBy(pass *Pass) error {
	// Pass 1: collect annotated fields: *types.Var -> mutex field name.
	guarded := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotationArg(field.Doc, "repro:guardedBy")
				if mu == "" {
					mu = annotationArg(field.Comment, "repro:guardedBy")
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[v] = mu
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	// Pass 2: flag selector accesses outside the lock discipline.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasAnnotation(fd.Doc, "repro:locked") {
				continue
			}
			locked := lockedMutexes(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := pass.TypesInfo.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				field, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				mu, ok := guarded[field]
				if !ok || locked[mu] {
					return true
				}
				pass.Reportf(sel.Pos(), "access to %s without holding %s (annotate the function //repro:locked if the caller holds it)", field.Name(), mu)
				return true
			})
		}
	}
	return nil
}

// lockedMutexes returns the set of field names m for which the body contains
// a call `<chain>.m.Lock()` or `<chain>.m.RLock()`.
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			out[inner.Sel.Name] = true
		} else if id, ok := sel.X.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// LatchedErr enforces the sticky-error discipline: the APIs that latch a
// broken state (pager commits/writes/reads, tree-store commits, the
// tracker's physical-read error) return errors that must reach a check —
// discarding one (calling as a bare statement, deferring without capture,
// or assigning to _) lets a caller keep using a broken component and lose
// committed state silently.
var LatchedErr = &Analyzer{
	Name: "latchederr",
	Doc:  "never discard errors from latching APIs (Pager/TreeStore/Tracker/Server)",
	Run:  runLatchedErr,
}

// latchedMethods maps type name -> methods whose error result must be used.
// All types live under the repro module; matching is by (suffix of package
// path, type name, method name).
var latchedMethods = map[string]map[string]bool{
	"Pager":     {"Commit": true, "Write": true, "Read": true, "Checkpoint": true, "Close": true},
	"TreeStore": {"Commit": true, "ReadPage": true},
	"Tracker":   {"ReadErr": true},
	"Server":    {"Round": true, "Reopen": true, "Close": true},
}

func runLatchedErr(pass *Pass) error {
	check := func(call *ast.CallExpr) (string, bool) {
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "repro") {
			return "", false
		}
		recv := fn.Signature().Recv()
		if recv == nil {
			return "", false
		}
		_, tname := namedOrigin(recv.Type())
		if m := latchedMethods[tname]; m != nil && m[fn.Name()] {
			return tname + "." + fn.Name(), true
		}
		return "", false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := check(call); ok {
						pass.Reportf(n.Pos(), "result of %s is discarded: the error latches broken state and must be checked before reuse", name)
					}
				}
			case *ast.DeferStmt:
				if name, ok := check(n.Call); ok {
					pass.Reportf(n.Pos(), "deferred %s discards its error: capture it (defer func(){ ... }()) or check it before returning", name)
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					name, ok := check(call)
					if !ok {
						continue
					}
					// Multi-value: error is the last result; with a single
					// rhs call, the last lhs receives it.
					if len(n.Rhs) == 1 {
						if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
							pass.Reportf(n.Pos(), "error of %s is assigned to _: the error latches broken state and must be checked before reuse", name)
						}
					} else if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(n.Pos(), "error of %s is assigned to _: the error latches broken state and must be checked before reuse", name)
					}
				}
			}
			return true
		})
	}
	return nil
}
