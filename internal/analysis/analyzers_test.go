package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer has a golden package under testdata/src/<name> covering at
// least one true positive (a `// want` comment) and one documented
// suppression (a //repolint:ignore with no want: the runner applies the
// driver's suppression first, so the test fails if the ignore stops
// working).

func TestDeterminism(t *testing.T)  { analysistest.Run(t, "determinism", analysis.Determinism) }
func TestAccounting(t *testing.T)   { analysistest.Run(t, "accounting", analysis.Accounting) }
func TestPinUnpin(t *testing.T)     { analysistest.Run(t, "pinunpin", analysis.PinUnpin) }
func TestGuardedBy(t *testing.T)    { analysistest.Run(t, "guardedby", analysis.GuardedBy) }
func TestLatchedErr(t *testing.T)   { analysistest.Run(t, "latchederr", analysis.LatchedErr) }
func TestHotPath(t *testing.T)      { analysistest.Run(t, "hotpath", analysis.HotPath) }
func TestNilness(t *testing.T)      { analysistest.Run(t, "nilness", analysis.Nilness) }
func TestUnusedResult(t *testing.T) { analysistest.Run(t, "unusedresult", analysis.UnusedResult) }
func TestCopyLocks(t *testing.T)    { analysistest.Run(t, "copylocks", analysis.CopyLocks) }
func TestSortSlice(t *testing.T)    { analysistest.Run(t, "sortslice", analysis.SortSlice) }

// TestIgnoreWithoutReasonIsAFinding pins the mandatory-reason rule of the
// suppression grammar: a bare `//repolint:ignore <analyzer>` (no reason) is
// itself a finding. A want comment cannot express this — it would become
// the ignore's reason — so the diagnostics are checked directly.
func TestIgnoreWithoutReasonIsAFinding(t *testing.T) {
	diags, _ := analysistest.Diagnostics(t, "badignore")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the malformed ignore: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "repolint" || !strings.Contains(diags[0].Message, "needs an analyzer name and a reason") {
		t.Fatalf("unexpected diagnostic: %s", diags[0])
	}
}
