package analysis

import (
	"go/ast"
	"strings"
)

// Accounting enforces the counted-I/O contract: every page that leaves the
// disk must be charged through buffer.Tracker (whose counted miss performs
// the physical read via the PageReader hook), so the simulation's counted
// reads and the pager's measured reads can never diverge. Raw page reads —
// (*storage.Pager).Read — and raw node decodes — storage.DecodeNode — are
// therefore confined to:
//
//   - the storage package itself (the pager owns its own frames), and
//   - functions annotated `//repro:io-boundary`: the sanctioned wrappers
//     (TreeStore.ReadPage, EpochReader.ReadPage, the persist/recovery
//     walks) that sit between the tracker and the pager.
//
// Everything else — a join path, an experiment, a test helper promoted into
// shipped code — gets flagged: read through the tracker, or add the page to
// the sanctioned surface explicitly.
var Accounting = &Analyzer{
	Name: "accounting",
	Doc:  "confine raw pager reads and node decodes to //repro:io-boundary wrappers",
	Run:  runAccounting,
}

func runAccounting(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/storage") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/storage") {
				return true
			}
			var what string
			if recv := fn.Signature().Recv(); recv != nil {
				_, name := namedOrigin(recv.Type())
				if name == "Pager" && fn.Name() == "Read" {
					what = "raw page read (*storage.Pager).Read"
				}
			} else if fn.Name() == "DecodeNode" {
				what = "raw node decode storage.DecodeNode"
			}
			if what == "" {
				return true
			}
			if fd := funcDeclFor(f, call.Pos()); fd != nil && hasAnnotation(fd.Doc, "repro:io-boundary") {
				return true
			}
			pass.Reportf(call.Pos(), "%s outside a //repro:io-boundary wrapper: counted I/O would diverge from measured I/O; read through buffer.Tracker instead", what)
			return true
		})
	}
	return nil
}
