// Package accounting is a golden package for the accounting analyzer: it
// plays the role of a join-path package that must not read pages or decode
// nodes behind the tracker's back. The imports are the real storage types,
// so seeding a raw (*storage.Pager).Read into a join-like package is
// exactly the violation the acceptance criteria demand to fail the build.
package accounting

import "repro/internal/storage"

// JoinLikeRead performs a raw page read outside any sanctioned wrapper —
// the counted I/O would silently diverge from measured I/O.
func JoinLikeRead(p *storage.Pager, id storage.PageID) ([]byte, error) {
	return p.Read(id) // want `raw page read \(\*storage\.Pager\)\.Read outside a //repro:io-boundary wrapper`
}

// JoinLikeDecode decodes a node from raw bytes outside a sanctioned wrapper.
func JoinLikeDecode(buf []byte, pageSize int) error {
	_, err := storage.DecodeNode(buf, pageSize) // want `raw node decode storage\.DecodeNode`
	return err
}

// BoundaryRead is a sanctioned wrapper: the annotation admits it to the
// measured-I/O surface, like TreeStore.ReadPage and EpochReader.ReadPage.
//
//repro:io-boundary
func BoundaryRead(p *storage.Pager, id storage.PageID) ([]byte, error) {
	buf, err := p.Read(id)
	if err != nil {
		return nil, err
	}
	if _, err := storage.DecodeNode(buf, len(buf)); err != nil {
		return nil, err
	}
	return buf, nil
}

// SuppressedRead documents a deliberate exception at the call site.
func SuppressedRead(p *storage.Pager, id storage.PageID) ([]byte, error) {
	//repolint:ignore accounting recovery path reads before any tracker exists
	return p.Read(id)
}
