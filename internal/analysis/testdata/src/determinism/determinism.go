// Package determinism is a golden package for the determinism analyzer: it
// is annotated as a measured package, so wall-clock reads, global
// randomness and map-order dependence must be flagged.
//
//repro:measured
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// Clock reads the wall clock in a measured package.
func Clock() int64 {
	t := time.Now() // want `call to time\.Now in a measured package`
	return t.Unix()
}

// Elapsed uses time.Since, which reads the wall clock too.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `call to time\.Since in a measured package`
}

// GlobalRand draws from the process-global source.
func GlobalRand(n int) int {
	return rand.Intn(n) // want `process-global random source`
}

// SeededRand is the sanctioned form: a local, explicitly seeded generator.
func SeededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// SumOrdered ranges over a map to build an output whose order matters.
func SumOrdered(m map[int]int) []int {
	var out []int
	for k := range m { // want `range over a map in a measured package`
		out = append(out, k)
	}
	return out
}

// SumSorted collects then sorts, so the map order cannot leak; the ignore
// documents why the range is safe.
func SumSorted(m map[int]int) []int {
	var out []int
	//repolint:ignore determinism keys are collected and sorted below
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
