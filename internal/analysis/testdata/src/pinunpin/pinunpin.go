// Package pinunpin is a golden package for the pin/unpin lifecycle
// analyzer, modeling both protocols of the repo: the server's
// handle-returning epoch pin and the tracker's keyed page pin.
package pinunpin

type epoch struct{ readers int }

type server struct{ cur *epoch }

func (s *server) pin() *epoch {
	s.cur.readers++
	return s.cur
}

func (s *server) unpin(e *epoch) { e.readers-- }

type tracker struct{ pins map[int]int }

// Pin pins the page of the given tree.
func (t *tracker) Pin(tree, id int) { t.pins[tree<<32|id]++ }

// Unpin releases a pin taken with Pin.
func (t *tracker) Unpin(tree, id int) { t.pins[tree<<32|id]-- }

// LeakOnEarlyReturn pins an epoch and leaks it on the error path: the
// early return has no unpin before it.
func LeakOnEarlyReturn(s *server, fail bool) int {
	e := s.pin() // want `pin of e is not released on every path`
	if fail {
		return -1
	}
	n := e.readers
	s.unpin(e)
	return n
}

// DeferredRelease is the canonical protocol: pin, defer unpin.
func DeferredRelease(s *server) int {
	e := s.pin()
	defer s.unpin(e)
	return e.readers
}

// ReleaseBeforeEachReturn unpins explicitly on both paths.
func ReleaseBeforeEachReturn(s *server, fast bool) int {
	e := s.pin()
	if fast {
		s.unpin(e)
		return 0
	}
	n := e.readers
	s.unpin(e)
	return n
}

// KeyedLeak pins a page and never unpins that key.
func KeyedLeak(t *tracker, tree, id int) {
	t.Pin(tree, id) // want `pin of t,tree,id is not released on every path`
	t.Unpin(tree, id+1)
}

// KeyedPaired pins and unpins the same key.
func KeyedPaired(t *tracker, tree, id int) {
	t.Pin(tree, id)
	t.Unpin(tree, id)
}

// SuppressedHandoff documents a pin that is intentionally released by the
// caller, not here.
func SuppressedHandoff(s *server) *epoch {
	//repolint:ignore pinunpin ownership transfers to the caller, which unpins
	e := s.pin()
	return e
}
