// Package guardedby is a golden package for the guardedBy analyzer: fields
// annotated //repro:guardedBy must only be touched under their mutex.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //repro:guardedBy mu

	// stats is guarded by its own lock to show per-field mutex binding.
	statsMu sync.Mutex
	stats   []int //repro:guardedBy statsMu
}

// Inc holds the lock: no finding.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// RacyRead touches n without the lock.
func (c *counter) RacyRead() int {
	return c.n // want `access to n without holding mu`
}

// WrongLock holds mu but touches the statsMu-guarded field.
func (c *counter) WrongLock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.stats) // want `access to stats without holding statsMu`
}

// addLocked is called with mu held; the annotation states the discipline is
// satisfied externally.
//
//repro:locked
func (c *counter) addLocked(d int) {
	c.n += d
}

// Snapshot locks both mutexes and may touch both fields.
func (c *counter) Snapshot() (int, int) {
	c.mu.Lock()
	c.statsMu.Lock()
	defer c.mu.Unlock()
	defer c.statsMu.Unlock()
	return c.n, len(c.stats)
}

// PrePublication documents a constructor-time access before the value is
// shared.
func PrePublication() *counter {
	c := &counter{}
	//repolint:ignore guardedby c is not yet shared with any other goroutine
	c.n = 1
	return c
}
