// Package nilness is a golden package for the nilness analyzer: using a
// value inside the branch that just proved it nil.
package nilness

type node struct {
	next  *node
	value int
}

// DerefInNilBranch selects through a pointer known to be nil.
func DerefInNilBranch(n *node) int {
	if n == nil {
		return n.value // want `n is nil in this branch; selecting n\.value will panic`
	}
	return n.value
}

// CallNilFunc calls a func value known to be nil.
func CallNilFunc(f func() int) int {
	if f == nil {
		return f() // want `f is nil in this branch; calling it will panic`
	}
	return f()
}

// ElseBranch proves nilness through the negated condition.
func ElseBranch(n *node) int {
	if n != nil {
		return n.value
	} else {
		return n.value // want `n is nil in this branch; selecting n\.value will panic`
	}
}

// Reassigned is fine: the branch replaces the nil value before use.
func Reassigned(n *node) int {
	if n == nil {
		n = &node{}
		return n.value
	}
	return n.value
}

// NilMapRead is fine: reading a nil map yields the zero value.
func NilMapRead(m map[int]int) int {
	if m == nil {
		return m[1]
	}
	return m[1]
}

// Suppressed documents a deliberate dereference (e.g. to force a panic in
// a must-style helper).
func Suppressed(n *node) int {
	if n == nil {
		//repolint:ignore nilness must-helper: panicking here is the contract
		return n.value
	}
	return n.value
}
