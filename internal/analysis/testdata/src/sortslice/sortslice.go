// Package sortslice is a golden package for the sortslice analyzer:
// sort.Slice over a non-slice panics at runtime.
package sortslice

import "sort"

// NotASlice passes an array (not a slice) to sort.Slice.
func NotASlice(a [4]int) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] }) // want `sort\.Slice expects a slice, got \[4\]int`
}

// NotEvenIndexable passes a scalar.
func NotEvenIndexable(n int) bool {
	return sort.SliceIsSorted(n, func(i, j int) bool { return i < j }) // want `sort\.SliceIsSorted expects a slice, got int`
}

// RealSlice is fine.
func RealSlice(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Suppressed documents a value of static type any that always holds a
// slice — shown here with a concrete array to exercise the suppression.
func Suppressed(a [4]int) {
	//repolint:ignore sortslice golden test for the suppression path
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
