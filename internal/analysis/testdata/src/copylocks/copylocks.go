// Package copylocks is a golden package for the copylocks analyzer:
// by-value copies of lock-containing values.
package copylocks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// CopyAssign copies a mutex-bearing struct by value.
func CopyAssign(g *guarded) {
	snapshot := *g // want `assignment copies a value of type .*guarded which contains a lock`
	_ = snapshot
}

// CopyArg passes a mutex-bearing struct by value.
func CopyArg(g guarded) int {
	return use(g) // want `call argument copies a value of type .*guarded`
}

func use(g guarded) int { return g.n }

// CopyRange copies each element of a mutex-bearing slice.
func CopyRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies a value of type .*guarded`
		total += g.n
	}
	return total
}

// PointerUse is the correct form: no findings.
func PointerUse(gs []*guarded) int {
	total := 0
	for _, g := range gs {
		g.mu.Lock()
		total += g.n
		g.mu.Unlock()
	}
	return total
}

// Suppressed documents a copy of a never-shared value.
func Suppressed() guarded {
	var g guarded
	g.n = 1
	//repolint:ignore copylocks g never escapes this goroutine before the copy
	cp := g
	return cp
}
