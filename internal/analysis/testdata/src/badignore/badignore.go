// Package badignore pins the suppression grammar: an ignore comment without
// a reason is itself a finding, so every suppression stays documented. The
// assertion lives in analyzers_test.go (a want comment here would become
// the ignore's reason).
package badignore

// Undocumented carries an ignore with an analyzer name but no reason.
func Undocumented() int {
	//repolint:ignore determinism
	return 1
}
