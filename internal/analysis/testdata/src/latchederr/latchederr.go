// Package latchederr is a golden package for the latched-error analyzer:
// the pager/tree-store/tracker APIs latch sticky broken state through their
// error results, so discarding one hides a broken component.
package latchederr

import (
	"repro/internal/buffer"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// DropCommit discards the commit error as a bare statement.
func DropCommit(p *storage.Pager) {
	p.Commit() // want `result of Pager\.Commit is discarded`
}

// DeferClose discards the close error (a failed final checkpoint would be
// invisible).
func DeferClose(p *storage.Pager) {
	defer p.Close() // want `deferred Pager\.Close discards its error`
	p.Allocate()
}

// BlankCommit assigns the error to the blank identifier.
func BlankCommit(s *rtree.TreeStore) {
	_, _ = s.Commit() // want `error of TreeStore\.Commit is assigned to _`
}

// DropReadErr discards the tracker's latched physical-read error.
func DropReadErr(t *buffer.Tracker) {
	t.ReadErr() // want `result of Tracker\.ReadErr is discarded`
}

// CheckedCommit handles the error: no finding.
func CheckedCommit(p *storage.Pager) error {
	if _, err := p.Commit(); err != nil {
		return err
	}
	return nil
}

// SuppressedClose documents a shutdown path where the error is deliberately
// dropped.
func SuppressedClose(p *storage.Pager) {
	//repolint:ignore latchederr process is exiting, a close failure has no consumer
	defer p.Close()
	p.Allocate()
}
