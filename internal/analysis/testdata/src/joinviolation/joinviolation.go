// Package joinviolation is the driver's acceptance fixture: a join-shaped
// descent that reads pages raw from the pager instead of through the buffer
// tracker, with no suppression.  cmd/repolint's tests lint this package
// explicitly (testdata is excluded from ./... patterns) and require the run
// to fail — proving a deliberately smuggled raw read cannot pass CI.
//
//repro:measured
package joinviolation

import "repro/internal/storage"

// DescendRaw walks a page chain by reading straight from the pager: every
// read here is invisible to the counted I/O the experiments report.
func DescendRaw(p *storage.Pager, id storage.PageID, pageSize int) error {
	buf, err := p.Read(id)
	if err != nil {
		return err
	}
	_, err = storage.DecodeNode(buf, pageSize)
	return err
}
