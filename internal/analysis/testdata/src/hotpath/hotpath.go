// Package hotpath is a golden package for the hot-path allocation
// analyzer: functions annotated //repro:hotpath must not allocate.
package hotpath

type counter interface{ Add(int64) }

type pair struct{ a, b int32 }

type scratch struct {
	pairs []pair
	buf   []int32
}

// Emit is the annotated inner loop.
//
//repro:hotpath
func Emit(s *scratch, n int, c counter) {
	cb := func(i int) { s.buf = append(s.buf, int32(i)) } // want `closure literal in a hot path`
	for i := 0; i < n; i++ {
		cb(i)
	}
	p := &pair{a: 1, b: 2} // want `&composite literal in a hot path escapes`
	_ = p
	tmp := make([]int32, n) // want `make in a hot path allocates per call`
	_ = tmp
	fresh := append(s.buf[:0:0], 1) // want `append grows into "fresh" instead of back into "s.buf"`
	_ = fresh
	c.Add(1)
	var total int64
	for _, p := range s.pairs {
		total += int64(p.a)
	}
	c.Add(total)
}

// Boxes passes a concrete value where an interface is expected.
//
//repro:hotpath
func Boxes(s *scratch, sink func(any)) {
	sink(*s) // want `argument boxes a concrete value into interface`
	sink(s)  // a pointer is interface-word-sized: no finding
}

// Amortized uses the sanctioned reuse idioms: same-variable append and
// value composites that stay on the stack.
//
//repro:hotpath
func Amortized(s *scratch, a, b int32) {
	s.pairs = append(s.pairs, pair{a: a, b: b})
	s.buf = s.buf[:0]
}

// Cold is not annotated: the same constructs are fine here.
func Cold(n int) []int32 {
	out := make([]int32, 0, n)
	add := func(v int32) { out = append(out, v) }
	for i := 0; i < n; i++ {
		add(int32(i))
	}
	return out
}

// Warmup documents a sanctioned one-time growth inside a hot path.
//
//repro:hotpath
func Warmup(s *scratch, n int) {
	if cap(s.buf) < n {
		//repolint:ignore hotpath one-time pool growth until the working set is reached
		s.buf = make([]int32, 0, n)
	}
}
