// Package unusedresult is a golden package for the unusedresult analyzer:
// side-effect-free calls whose result is discarded.
package unusedresult

import (
	"errors"
	"fmt"
	"strings"
)

// Discarded drops pure results on the floor.
func Discarded(name string) {
	fmt.Sprintf("hello %s", name) // want `result of fmt\.Sprintf is discarded`
	errors.New("lost")            // want `result of errors\.New is discarded`
	strings.ToUpper(name)         // want `result of strings\.ToUpper is discarded`
}

// Used consumes every result: no findings.
func Used(name string) (string, error) {
	msg := fmt.Sprintf("hello %s", name)
	return strings.ToUpper(msg), errors.New("kept")
}

// Suppressed documents a deliberate discard (e.g. warming a cache inside
// the callee would be a side effect the analyzer cannot see).
func Suppressed(name string) {
	//repolint:ignore unusedresult exercising the formatter for a benchmark warm-up
	fmt.Sprintf("hello %s", name)
}
