package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the bit-identical-output contract of the measured
// packages: any package whose doc comment carries `//repro:measured` (the
// join, rtree, sweep and costmodel packages — their outputs are pinned by
// seed goldens) must not read wall-clock time, draw from math/rand's global
// source, or depend on map iteration order.
//
// Flagged inside measured packages:
//   - time.Now / time.Since / time.Until (wall-clock reads);
//   - package-level functions of math/rand and math/rand/v2 except the
//     New* constructors — rand.New(rand.NewSource(seed)) is deterministic,
//     the process-global source is not;
//   - `for ... range m` over a map: iteration order is randomized per run.
//     Ranges that only collect and then sort, or whose body is order-
//     independent, are suppressed with a documented //repolint:ignore.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global randomness and map-order dependence in //repro:measured packages",
	Run:  runDeterminism,
}

var timeNondet = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(pass *Pass) error {
	if !packageAnnotated(pass.Files, "repro:measured") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // methods are fine; only package-level sources below
				}
				switch fn.Pkg().Path() {
				case "time":
					if timeNondet[fn.Name()] {
						pass.Reportf(n.Pos(), "call to time.%s in a measured package: outputs must be bit-identical across runs", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !strings.HasPrefix(fn.Name(), "New") {
						pass.Reportf(n.Pos(), "call to %s.%s uses the process-global random source; use a rand.New(rand.NewSource(seed)) local to the computation", fn.Pkg().Path(), fn.Name())
					}
				}
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over a map in a measured package: iteration order is nondeterministic; collect keys and sort, or document order-independence with //repolint:ignore")
					}
				}
			}
			return true
		})
	}
	return nil
}
