package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/join")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module without the
// go/packages driver: module-local imports resolve to directories under the
// module root, everything else (the standard library — this module has no
// external dependencies) resolves through the stdlib source importer, which
// works offline. Loaded packages are memoized, so one Loader amortizes the
// stdlib type-checking across a whole `repolint ./...` run.
type Loader struct {
	ModulePath string
	Root       string // absolute module root directory
	Fset       *token.FileSet

	std  types.Importer
	pkgs map[string]*Package
	errs map[string]error // import path -> sticky load error (cycle-safe)
}

// NewLoader builds a loader for the module rooted at root, reading the module
// path from go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		Root:       abs,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		errs:       make(map[string]error),
	}, nil
}

// Load type-checks the package at the given import path (the module path or a
// path below it). Test files (_test.go) are excluded: repolint's contracts
// govern the shipped code, and tests legitimately use seeded randomness and
// raw storage access.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	dir, err := l.dirFor(path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	p, err := l.LoadDir(dir, path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	return p, nil
}

// LoadDir type-checks the package in dir under the given import path. It is
// the entry point for testdata packages, whose directories live outside the
// regular package tree.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModulePath {
		return l.Root, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("analysis: %q is outside module %s", path, l.ModulePath)
}

func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts the Loader to types.Importer: module-local paths
// recurse into the loader, everything else goes to the stdlib source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// ExpandPatterns resolves package patterns relative to the module root:
// "./..." (or "all") walks every package directory; "./x/y" names one
// directory. Directories named testdata, examples hidden dirs, and
// dependency-free data dirs without Go files are skipped.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				ok, err := hasGoFiles(p)
				if err != nil {
					return err
				}
				if ok {
					add(l.pathFor(p))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			ok, err := hasGoFiles(dir)
			if err != nil {
				return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
			}
			if !ok {
				return nil, fmt.Errorf("analysis: pattern %q: no Go files in %s", pat, dir)
			}
			add(l.pathFor(dir))
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
