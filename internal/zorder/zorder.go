// Package zorder implements the space-filling curves used by the spatial-join
// read-schedule heuristics: the z-order (Peano) curve of section 4.3 (used by
// SpatialJoin5 to sort intersection-rectangle centres) and, as an extension,
// the Hilbert curve used by Hilbert-packed bulk loading.
//
// Both curves map a two-dimensional point in the unit square to a one-
// dimensional key; sorting by the key clusters points that are close in space.
package zorder

import "repro/internal/geom"

// Resolution is the number of bits per dimension used when quantising a
// coordinate in the unit square to a grid cell.  With 16 bits the grid has
// 65,536 × 65,536 cells, far finer than any node's rectangle set, so ordering
// ties are negligible.
const Resolution = 16

// maxCell is the largest cell index per dimension.
const maxCell = (1 << Resolution) - 1

// cellOf quantises a coordinate in [lo, hi] to a grid cell index.
// Values outside the range are clamped.
func cellOf(v, lo, hi float64) uint32 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return uint32(f * maxCell)
}

// interleave spreads the lower 16 bits of v so that there is one zero bit
// between every original bit ("part1by1" bit trick).
func interleave(v uint32) uint64 {
	x := uint64(v) & 0xFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// Key returns the z-order (Morton) key of the grid cell containing p, where
// the grid covers the rectangle world.  Points outside world are clamped to
// its border.
func Key(p geom.Point, world geom.Rect) uint64 {
	cx := cellOf(p.X, world.XL, world.XU)
	cy := cellOf(p.Y, world.YL, world.YU)
	return KeyOfCell(cx, cy)
}

// KeyOfCell returns the z-order key of the grid cell with the given column
// and row indices (each at most 2^Resolution-1).
func KeyOfCell(cx, cy uint32) uint64 {
	return interleave(cx) | interleave(cy)<<1
}

// RectKey returns the z-order key of the centre of r relative to world.  The
// local z-order read schedule (SpatialJoin5) sorts intersection rectangles by
// the key of their centres.
func RectKey(r geom.Rect, world geom.Rect) uint64 {
	return Key(r.Center(), world)
}

// HilbertKey returns the Hilbert-curve index of the grid cell containing p,
// where the grid covers world.  The Hilbert curve preserves locality better
// than the z-order curve (no long jumps between quadrant boundaries) and is
// used by the Hilbert-packed bulk loader.
func HilbertKey(p geom.Point, world geom.Rect) uint64 {
	cx := cellOf(p.X, world.XL, world.XU)
	cy := cellOf(p.Y, world.YL, world.YU)
	return HilbertKeyOfCell(cx, cy)
}

// HilbertKeyOfCell converts grid-cell coordinates to the distance along the
// Hilbert curve of order Resolution.
func HilbertKeyOfCell(cx, cy uint32) uint64 {
	x, y := cx, cy
	var d uint64
	for s := uint32(1 << (Resolution - 1)); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// CellOf exposes the quantisation used by the curves so that callers (for
// example the z-ordering join baseline) can decompose rectangles into the
// same grid.
func CellOf(v, lo, hi float64) uint32 { return cellOf(v, lo, hi) }
