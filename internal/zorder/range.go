package zorder

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// KeySpace is the number of distinct Hilbert keys at the curve's resolution:
// every key lies in [0, KeySpace).  The sharding layer assigns each shard a
// half-open sub-range of this space.
const KeySpace uint64 = 1 << (2 * Resolution)

// KeyRange is a half-open range [Lo, Hi) of Hilbert keys.  The shard
// processes each own one range; together the ranges of a deployment tile
// [0, KeySpace) exactly, so every rectangle (routed by the Hilbert key of
// its centre) has exactly one home.
type KeyRange struct {
	Lo, Hi uint64
}

// Contains reports whether key falls inside the range.
func (r KeyRange) Contains(key uint64) bool { return key >= r.Lo && key < r.Hi }

// Empty reports whether the range holds no keys.
func (r KeyRange) Empty() bool { return r.Hi <= r.Lo }

// Overlaps reports whether the two half-open ranges share any key.
func (r KeyRange) Overlaps(o KeyRange) bool {
	return r.Lo < o.Hi && o.Lo < r.Hi && !r.Empty() && !o.Empty()
}

// String formats the range as "lo:hi", the form ParseKeyRange accepts and
// the daemon's -shard flag takes.
func (r KeyRange) String() string { return fmt.Sprintf("%d:%d", r.Lo, r.Hi) }

// ParseKeyRange parses a "lo:hi" half-open Hilbert key range as accepted by
// the daemon's -shard flag.  lo must be strictly below hi and hi at most
// KeySpace.
func ParseKeyRange(s string) (KeyRange, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return KeyRange{}, fmt.Errorf("zorder: key range %q is not of the form lo:hi", s)
	}
	l, err := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
	if err != nil {
		return KeyRange{}, fmt.Errorf("zorder: key range %q: bad lower bound: %w", s, err)
	}
	h, err := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
	if err != nil {
		return KeyRange{}, fmt.Errorf("zorder: key range %q: bad upper bound: %w", s, err)
	}
	if l >= h {
		return KeyRange{}, fmt.Errorf("zorder: key range %q is empty", s)
	}
	if h > KeySpace {
		return KeyRange{}, fmt.Errorf("zorder: key range %q exceeds the key space %d", s, KeySpace)
	}
	return KeyRange{Lo: l, Hi: h}, nil
}

// UniformKeyRanges tiles [0, KeySpace) into n contiguous near-equal ranges,
// the default shard assignment when nothing is known about the data
// distribution.  Uniform key ranges are not uniform data shares — the
// Hilbert curve clusters dense areas into key runs — but they are the
// deterministic starting point the coverage statistics then inform.
func UniformKeyRanges(n int) []KeyRange {
	if n < 1 {
		n = 1
	}
	ranges := make([]KeyRange, n)
	base := KeySpace / uint64(n)
	rem := KeySpace % uint64(n)
	lo := uint64(0)
	for i := range ranges {
		hi := lo + base
		if uint64(i) < rem {
			hi++
		}
		ranges[i] = KeyRange{Lo: lo, Hi: hi}
		lo = hi
	}
	return ranges
}

// TilesKeySpace reports whether the ranges cover [0, KeySpace) exactly once:
// sorted by Lo they must be non-empty, gap-free and overlap-free from 0 to
// KeySpace.  The router refuses a shard set that fails this, since a gap
// loses updates and an overlap duplicates join pairs.
func TilesKeySpace(ranges []KeyRange) bool {
	if len(ranges) == 0 {
		return false
	}
	sorted := append([]KeyRange(nil), ranges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	next := uint64(0)
	for _, r := range sorted {
		if r.Empty() || r.Lo != next {
			return false
		}
		next = r.Hi
	}
	return next == KeySpace
}

// HilbertCover returns a sorted, coalesced set of key ranges that together
// contain the Hilbert key of every grid cell a point of rect can quantise
// to.  The cover is a superset: descending the Hilbert quadtree is cut off
// at maxDepth levels (and at single cells), and any block still straddling
// the rectangle's border at the cut-off is included whole.  A larger
// maxDepth gives a tighter cover in exchange for more ranges; maxDepth <= 0
// covers the whole key space with one range.
//
// The contiguity that makes this work: an axis-aligned 2^k x 2^k cell block
// aligned to its own size is one full sub-quadrant of the Hilbert recursion,
// so its keys form one contiguous run of length 4^k starting at the block
// corner the curve enters through (the minimum of the four corner keys).
func HilbertCover(rect geom.Rect, world geom.Rect, maxDepth int) []KeyRange {
	cxl := CellOf(rect.XL, world.XL, world.XU)
	cxu := CellOf(rect.XU, world.XL, world.XU)
	cyl := CellOf(rect.YL, world.YL, world.YU)
	cyu := CellOf(rect.YU, world.YL, world.YU)

	var cover []KeyRange
	var descend func(qx, qy uint32, size uint32, depth int)
	descend = func(qx, qy, size uint32, depth int) {
		// Disjoint from the quantised query block: nothing to cover.
		if qx > cxu || qx+size-1 < cxl || qy > cyu || qy+size-1 < cyl {
			return
		}
		inside := qx >= cxl && qx+size-1 <= cxu && qy >= cyl && qy+size-1 <= cyu
		if inside || size == 1 || depth >= maxDepth {
			cover = append(cover, blockRange(qx, qy, size))
			return
		}
		half := size / 2
		descend(qx, qy, half, depth+1)
		descend(qx+half, qy, half, depth+1)
		descend(qx, qy+half, half, depth+1)
		descend(qx+half, qy+half, half, depth+1)
	}
	descend(0, 0, 1<<Resolution, 0)

	sort.Slice(cover, func(i, j int) bool { return cover[i].Lo < cover[j].Lo })
	out := cover[:0]
	for _, r := range cover {
		if n := len(out); n > 0 && out[n-1].Hi >= r.Lo {
			if r.Hi > out[n-1].Hi {
				out[n-1].Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// blockRange returns the contiguous key range of the aligned size x size
// cell block anchored at (qx, qy).
func blockRange(qx, qy, size uint32) KeyRange {
	lo := HilbertKeyOfCell(qx, qy)
	for _, k := range [3]uint64{
		HilbertKeyOfCell(qx+size-1, qy),
		HilbertKeyOfCell(qx, qy+size-1),
		HilbertKeyOfCell(qx+size-1, qy+size-1),
	} {
		if k < lo {
			lo = k
		}
	}
	return KeyRange{Lo: lo, Hi: lo + uint64(size)*uint64(size)}
}
