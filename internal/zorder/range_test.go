package zorder

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestParseKeyRange(t *testing.T) {
	good := map[string]KeyRange{
		"0:100":          {Lo: 0, Hi: 100},
		"100:4294967296": {Lo: 100, Hi: KeySpace},
		" 7 : 9 ":        {Lo: 7, Hi: 9},
	}
	for s, want := range good {
		got, err := ParseKeyRange(s)
		if err != nil {
			t.Errorf("ParseKeyRange(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseKeyRange(%q) = %v, want %v", s, got, want)
		}
		if rt, err := ParseKeyRange(got.String()); err != nil || rt != got {
			t.Errorf("round trip of %v failed: %v, %v", got, rt, err)
		}
	}
	for _, s := range []string{"", "100", "5:5", "9:5", "a:b", "0:4294967297", "-1:5"} {
		if r, err := ParseKeyRange(s); err == nil {
			t.Errorf("ParseKeyRange(%q) = %v, want error", s, r)
		}
	}
}

func TestUniformKeyRangesTileKeySpace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		ranges := UniformKeyRanges(n)
		if len(ranges) != n {
			t.Fatalf("UniformKeyRanges(%d) returned %d ranges", n, len(ranges))
		}
		if !TilesKeySpace(ranges) {
			t.Errorf("UniformKeyRanges(%d) does not tile the key space: %v", n, ranges)
		}
	}
	if !TilesKeySpace([]KeyRange{{Lo: 100, Hi: KeySpace}, {Lo: 0, Hi: 100}}) {
		t.Error("TilesKeySpace must accept unsorted tilings")
	}
	for _, bad := range [][]KeyRange{
		nil,
		{{Lo: 0, Hi: KeySpace - 1}}, // short
		{{Lo: 0, Hi: 10}, {Lo: 11, Hi: KeySpace}},            // gap
		{{Lo: 0, Hi: 10}, {Lo: 9, Hi: KeySpace}},             // overlap
		{{Lo: 0, Hi: 0}, {Lo: 0, Hi: KeySpace}},              // empty member
		{{Lo: 0, Hi: KeySpace}, {Lo: 0, Hi: KeySpace}},       // duplicate
		{{Lo: 1, Hi: KeySpace}, {Lo: KeySpace, Hi: 1 << 40}}, // off the end
	} {
		if TilesKeySpace(bad) {
			t.Errorf("TilesKeySpace(%v) = true, want false", bad)
		}
	}
}

func TestKeyRangePredicates(t *testing.T) {
	r := KeyRange{Lo: 10, Hi: 20}
	for key, want := range map[uint64]bool{9: false, 10: true, 19: true, 20: false} {
		if r.Contains(key) != want {
			t.Errorf("Contains(%d) = %v, want %v", key, !want, want)
		}
	}
	cases := []struct {
		a, b KeyRange
		want bool
	}{
		{KeyRange{0, 10}, KeyRange{10, 20}, false},
		{KeyRange{0, 11}, KeyRange{10, 20}, true},
		{KeyRange{12, 15}, KeyRange{10, 20}, true},
		{KeyRange{5, 5}, KeyRange{0, 20}, false}, // empty never overlaps
	}
	for _, c := range cases {
		if c.a.Overlaps(c.b) != c.want || c.b.Overlaps(c.a) != c.want {
			t.Errorf("Overlaps(%v, %v) != %v", c.a, c.b, c.want)
		}
	}
}

// TestBlockRangeContiguity verifies the property HilbertCover is built on:
// an aligned 2^k x 2^k cell block holds exactly the keys of one contiguous
// range of length 4^k.
func TestBlockRangeContiguity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []uint32{1, 2, 4, 8, 16} {
		for trial := 0; trial < 20; trial++ {
			qx := (rng.Uint32() % (1 << Resolution / size)) * size
			qy := (rng.Uint32() % (1 << Resolution / size)) * size
			r := blockRange(qx, qy, size)
			if r.Hi-r.Lo != uint64(size)*uint64(size) {
				t.Fatalf("block (%d,%d)x%d: range %v has wrong length", qx, qy, size, r)
			}
			seen := make(map[uint64]bool, size*size)
			for dx := uint32(0); dx < size; dx++ {
				for dy := uint32(0); dy < size; dy++ {
					k := HilbertKeyOfCell(qx+dx, qy+dy)
					if !r.Contains(k) {
						t.Fatalf("block (%d,%d)x%d: cell key %d outside range %v", qx, qy, size, k, r)
					}
					if seen[k] {
						t.Fatalf("block (%d,%d)x%d: duplicate key %d", qx, qy, size, k)
					}
					seen[k] = true
				}
			}
		}
	}
}

// TestHilbertCoverContainsAllCells cross-checks the cover against brute
// force: every grid cell a point of the query rectangle can quantise to must
// have its Hilbert key inside some cover range, at every cut-off depth.
func TestHilbertCoverContainsAllCells(t *testing.T) {
	world := geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		xl, yl := rng.Float64(), rng.Float64()
		rect := geom.Rect{
			XL: xl, YL: yl,
			XU: xl + rng.Float64()*0.002,
			YU: yl + rng.Float64()*0.002,
		}
		cxl := CellOf(rect.XL, 0, 1)
		cxu := CellOf(rect.XU, 0, 1)
		cyl := CellOf(rect.YL, 0, 1)
		cyu := CellOf(rect.YU, 0, 1)
		for _, depth := range []int{0, 4, 10, Resolution} {
			cover := HilbertCover(rect, world, depth)
			if len(cover) == 0 {
				t.Fatalf("depth %d: empty cover for %+v", depth, rect)
			}
			for i := 1; i < len(cover); i++ {
				if cover[i].Lo <= cover[i-1].Hi {
					t.Fatalf("depth %d: cover not sorted/coalesced: %v", depth, cover)
				}
			}
			for cx := cxl; cx <= cxu; cx++ {
				for cy := cyl; cy <= cyu; cy++ {
					k := HilbertKeyOfCell(cx, cy)
					found := false
					for _, r := range cover {
						if r.Contains(k) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("depth %d: cell (%d,%d) key %d not covered by %v", depth, cx, cy, k, cover)
					}
				}
			}
		}
	}
}

// TestHilbertCoverDepthZeroIsWholeSpace pins the coarse end: with no depth
// budget the cover must be the single full-key-space range.
func TestHilbertCoverDepthZeroIsWholeSpace(t *testing.T) {
	world := geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}
	rect := geom.Rect{XL: 0.4, YL: 0.4, XU: 0.6, YU: 0.6}
	cover := HilbertCover(rect, world, 0)
	if len(cover) != 1 || cover[0] != (KeyRange{Lo: 0, Hi: KeySpace}) {
		t.Fatalf("depth-0 cover = %v, want [0:%d]", cover, KeySpace)
	}
}

// TestHilbertCoverTightensWithDepth checks that deeper covers never cover
// more keys than shallower ones.
func TestHilbertCoverTightensWithDepth(t *testing.T) {
	world := geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}
	rect := geom.Rect{XL: 0.30, YL: 0.70, XU: 0.31, YU: 0.72}
	keys := func(cover []KeyRange) uint64 {
		var n uint64
		for _, r := range cover {
			n += r.Hi - r.Lo
		}
		return n
	}
	prev := uint64(1<<63) + uint64(1<<63-1)
	for depth := 0; depth <= Resolution; depth += 2 {
		n := keys(HilbertCover(rect, world, depth))
		if n > prev {
			t.Fatalf("depth %d covers %d keys, more than the shallower %d", depth, n, prev)
		}
		prev = n
	}
}
