package zorder

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestKeyOfCellKnownValues(t *testing.T) {
	tests := []struct {
		cx, cy uint32
		want   uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{2, 2, 12},
		{3, 3, 15},
	}
	for _, tt := range tests {
		if got := KeyOfCell(tt.cx, tt.cy); got != tt.want {
			t.Errorf("KeyOfCell(%d,%d) = %d, want %d", tt.cx, tt.cy, got, tt.want)
		}
	}
}

func TestKeyMonotoneInQuadrants(t *testing.T) {
	world := geom.WorldRect()
	// All points in the lower-left quadrant must sort before all points in the
	// upper-right quadrant on the z-curve.
	llMax := Key(geom.Point{X: 0.49, Y: 0.49}, world)
	urMin := Key(geom.Point{X: 0.51, Y: 0.51}, world)
	if llMax >= urMin {
		t.Fatalf("expected lower-left key %d < upper-right key %d", llMax, urMin)
	}
}

func TestKeyClampsOutsideWorld(t *testing.T) {
	world := geom.WorldRect()
	if got := Key(geom.Point{X: -5, Y: -5}, world); got != 0 {
		t.Errorf("clamped key below = %d, want 0", got)
	}
	maxKey := KeyOfCell(maxCell, maxCell)
	if got := Key(geom.Point{X: 5, Y: 5}, world); got != maxKey {
		t.Errorf("clamped key above = %d, want %d", got, maxKey)
	}
}

func TestKeyDegenerateWorld(t *testing.T) {
	world := geom.Rect{XL: 1, YL: 1, XU: 1, YU: 1}
	if got := Key(geom.Point{X: 1, Y: 1}, world); got != 0 {
		t.Errorf("degenerate world key = %d, want 0", got)
	}
}

func TestRectKeyUsesCenter(t *testing.T) {
	world := geom.WorldRect()
	r := geom.Rect{XL: 0.2, YL: 0.2, XU: 0.4, YU: 0.4}
	if got, want := RectKey(r, world), Key(geom.Point{X: 0.3, Y: 0.3}, world); got != want {
		t.Errorf("RectKey = %d, want %d", got, want)
	}
}

func TestHilbertKeyOfCellFirstOrderSteps(t *testing.T) {
	// The four coarse quadrants of the Hilbert curve are visited in the order
	// lower-left, upper-left, upper-right, lower-right.
	half := uint32(1 << (Resolution - 1))
	keys := []uint64{
		HilbertKeyOfCell(0, 0),
		HilbertKeyOfCell(0, half),
		HilbertKeyOfCell(half, half),
		HilbertKeyOfCell(half, 0),
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("Hilbert quadrant order violated: %v", keys)
		}
	}
}

func TestHilbertKeyIsBijectiveOnSmallGrid(t *testing.T) {
	// On a coarse sub-grid the Hilbert keys must be pairwise distinct.
	seen := make(map[uint64][2]uint32)
	step := uint32(1 << (Resolution - 4)) // 16x16 coarse grid
	for cx := uint32(0); cx < 1<<Resolution; cx += step {
		for cy := uint32(0); cy < 1<<Resolution; cy += step {
			k := HilbertKeyOfCell(cx, cy)
			if prev, dup := seen[k]; dup {
				t.Fatalf("duplicate Hilbert key %d for (%d,%d) and %v", k, cx, cy, prev)
			}
			seen[k] = [2]uint32{cx, cy}
		}
	}
}

// Property: z-order keys of distinct cells are distinct (the interleaving is
// injective).
func TestKeyInjective(t *testing.T) {
	f := func(ax, ay, bx, by uint16) bool {
		ka := KeyOfCell(uint32(ax), uint32(ay))
		kb := KeyOfCell(uint32(bx), uint32(by))
		if ax == bx && ay == by {
			return ka == kb
		}
		return ka != kb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: sorting random points by z-order key groups points from the same
// quadrant together (locality sanity check): the number of quadrant changes
// along the sorted sequence is at most 2x the number of quadrants minus 1 on
// average for clustered data.  We assert the weaker invariant that sorting is
// deterministic and stable with respect to the key.
func TestSortingByKeyIsDeterministic(t *testing.T) {
	world := geom.WorldRect()
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	order := func() []uint64 {
		keys := make([]uint64, len(pts))
		for i, p := range pts {
			keys[i] = Key(p, world)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return keys
	}
	a, b := order(), order()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic ordering at %d", i)
		}
	}
}

func TestCellOfClamping(t *testing.T) {
	if got := CellOf(0.5, 0, 1); got != maxCell/2 {
		t.Errorf("CellOf(0.5) = %d, want %d", got, maxCell/2)
	}
	if got := CellOf(-1, 0, 1); got != 0 {
		t.Errorf("CellOf(-1) = %d, want 0", got)
	}
	if got := CellOf(2, 0, 1); got != maxCell {
		t.Errorf("CellOf(2) = %d, want %d", got, maxCell)
	}
}
