package buffer

import (
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Tracker simulates the I/O path of the paper's join experiments: every node
// access first consults the owning tree's path buffer, then the shared LRU
// buffer, and only on a miss performs (and counts) a disk access.  All reads
// performed through one Tracker therefore share a single buffer, the way the
// paper assumes "the R*-trees involved in the spatial join exclusively use
// all pages of the LRU-buffer".
type Tracker struct {
	lru      *LRU
	metrics  *metrics.Collector
	pageSize int
	usePath  bool
	paths    map[int]*PathBuffer
	readers  map[int]PageReader
	cache    *PageCache
	readErr  error
}

// PageReader is the measured-I/O hook: when a tree has one attached, every
// counted disk access also performs a real page read against it, so the
// simulation's counted I/O and the pager's measured I/O describe the same
// run.  storage.Pager implements the contract through rtree.TreeStore.
type PageReader interface {
	ReadPage(id storage.PageID) ([]byte, error)
}

// NewTracker creates a tracker that charges accesses to m.  pageSize is used
// for byte accounting of disk transfers.  If usePathBuffer is false only the
// LRU buffer is consulted.
func NewTracker(lru *LRU, m *metrics.Collector, pageSize int, usePathBuffer bool) *Tracker {
	if lru == nil {
		lru = NewLRU(0)
	}
	return &Tracker{
		lru:      lru,
		metrics:  m,
		pageSize: pageSize,
		usePath:  usePathBuffer,
		paths:    make(map[int]*PathBuffer),
	}
}

// LRU returns the shared LRU buffer (for tests and statistics).
func (t *Tracker) LRU() *LRU { return t.lru }

// Metrics returns the collector accesses are charged to.
func (t *Tracker) Metrics() *metrics.Collector { return t.metrics }

// PageSize returns the page size used for byte accounting.
func (t *Tracker) PageSize() int { return t.pageSize }

func (t *Tracker) path(tree int) *PathBuffer {
	p, ok := t.paths[tree]
	if !ok {
		p = NewPathBuffer(0)
		t.paths[tree] = p
	}
	return p
}

// Access simulates reading the page with identifier id of the given tree at
// the given level (0 = leaf).  It returns true if the request was satisfied
// from a buffer and false if it required a disk access.
//
//repro:hotpath
func (t *Tracker) Access(tree, level int, id storage.PageID) bool {
	key := FrameKey{Tree: tree, Page: id}
	if t.usePath {
		p := t.path(tree)
		if p.Contains(level, id) {
			t.metrics.AddPathHit()
			// A path hit still refreshes the page's LRU recency if buffered.
			t.lru.Touch(key)
			return true
		}
		p.Record(level, id)
	}
	if t.lru.Touch(key) {
		t.metrics.AddBufferHit()
		return true
	}
	t.metrics.AddDiskRead(int64(t.pageSize))
	if r, ok := t.readers[tree]; ok && t.readErr == nil {
		// Counted miss = real read: the page leaves the disk exactly when the
		// simulation says it does.  A read failure (torn page, dead sector
		// after retries) is latched and surfaced by the join, not swallowed.
		// With a page cache attached the hierarchy is real: a cached frame is
		// served from memory and only a cache miss reaches the pager.
		if t.cache != nil {
			if _, ok := t.cache.Get(key); !ok {
				if data, err := r.ReadPage(id); err != nil {
					t.readErr = err
				} else {
					t.cache.Put(key, data)
				}
			}
		} else if _, err := r.ReadPage(id); err != nil {
			t.readErr = err
		}
	}
	t.lru.Insert(key)
	return false
}

// SetPageCache attaches a shared page cache below the counted LRU: counted
// misses of trees with an attached PageReader are first served from the
// cache, and only cache misses perform a physical read (whose bytes are then
// cached).  Pass nil to detach and restore the strict counted-miss ==
// physical-read invariant of the disk experiments.
func (t *Tracker) SetPageCache(c *PageCache) { t.cache = c }

// PageCache returns the attached page cache, or nil.
func (t *Tracker) PageCache() *PageCache { return t.cache }

// SetPageReader attaches a real page source for the given tree; pass nil to
// detach.  While attached, every counted disk read of that tree performs a
// physical read through it.
func (t *Tracker) SetPageReader(tree int, r PageReader) {
	if t.readers == nil {
		t.readers = make(map[int]PageReader)
	}
	if r == nil {
		delete(t.readers, tree)
		return
	}
	t.readers[tree] = r
}

// ReadErr returns the first physical read error encountered through an
// attached PageReader, or nil.
func (t *Tracker) ReadErr() error { return t.readErr }

// Pin keeps the page of the given tree in the LRU buffer until Unpin.
func (t *Tracker) Pin(tree int, id storage.PageID) {
	t.lru.Pin(FrameKey{Tree: tree, Page: id})
}

// Unpin releases a pin taken with Pin.
func (t *Tracker) Unpin(tree int, id storage.PageID) {
	t.lru.Unpin(FrameKey{Tree: tree, Page: id})
}

// Reset clears the LRU buffer and all path buffers, keeping the metrics
// collector untouched.
func (t *Tracker) Reset() {
	t.lru.Reset()
	for _, p := range t.paths {
		p.Reset()
	}
}

// Reconfigure prepares a pooled tracker for a new run: accesses are charged
// to m with the given page size and path-buffer setting, and the per-tree
// path buffers are dropped (the next run joins different trees).  The LRU
// buffer is not touched; callers reconfigure it separately.
func (t *Tracker) Reconfigure(m *metrics.Collector, pageSize int, usePathBuffer bool) {
	t.metrics = m
	t.pageSize = pageSize
	t.usePath = usePathBuffer
	clear(t.paths)
	clear(t.readers)
	t.cache = nil
	t.readErr = nil
}
