// Package buffer implements the buffering machinery the paper places between
// the spatial-join algorithms and secondary storage: an LRU page buffer of
// configurable size shared by both R*-trees, per-tree path buffers holding
// the most recently accessed root-to-leaf path, and page pinning as used by
// SpatialJoin4/5.
package buffer

import (
	"container/list"
	"fmt"

	"repro/internal/storage"
)

// FrameKey identifies a buffered page.  Pages of the two trees participating
// in a join share one LRU buffer, so the key carries the tree identifier.
type FrameKey struct {
	Tree int
	Page storage.PageID
}

// LRU is a least-recently-used page buffer with a fixed capacity measured in
// pages.  Pinned pages are never evicted.  A capacity of zero means no
// buffering at all (every access misses), which models the paper's
// "buffer size = 0" experiments.
//
// LRU is not safe for concurrent use; the join algorithms are sequential, as
// in the paper.
type LRU struct {
	capacity int
	order    *list.List // front = most recently used; stores FrameKey
	frames   map[FrameKey]*list.Element
	pinned   map[FrameKey]int
	evicted  int64
}

// NewLRU returns a buffer holding at most capacity pages.
func NewLRU(capacity int) *LRU {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		frames:   make(map[FrameKey]*list.Element),
		pinned:   make(map[FrameKey]int),
	}
}

// NewLRUForBytes returns a buffer sized bufferBytes/pageSize pages, the way
// the paper derives the number of buffer frames from the buffer size in
// KBytes and the page size.
func NewLRUForBytes(bufferBytes, pageSize int) *LRU {
	if pageSize <= 0 {
		return NewLRU(0)
	}
	return NewLRU(bufferBytes / pageSize)
}

// Capacity returns the number of page frames.
func (b *LRU) Capacity() int { return b.capacity }

// Len returns the number of pages currently buffered.
func (b *LRU) Len() int { return len(b.frames) }

// Evictions returns how many pages have been evicted so far.
func (b *LRU) Evictions() int64 { return b.evicted }

// Contains reports whether the page is buffered, without touching its
// recency.
func (b *LRU) Contains(k FrameKey) bool {
	_, ok := b.frames[k]
	return ok
}

// Touch marks the page as most recently used and reports whether it was
// buffered.
func (b *LRU) Touch(k FrameKey) bool {
	el, ok := b.frames[k]
	if !ok {
		return false
	}
	b.order.MoveToFront(el)
	return true
}

// Insert places the page into the buffer as most recently used, evicting the
// least recently used unpinned page if the buffer is full.  Inserting an
// already buffered page is equivalent to Touch.  With capacity zero the call
// is a no-op.
func (b *LRU) Insert(k FrameKey) {
	if b.capacity == 0 {
		return
	}
	if el, ok := b.frames[k]; ok {
		b.order.MoveToFront(el)
		return
	}
	if len(b.frames) >= b.capacity {
		b.evictOne()
	}
	b.frames[k] = b.order.PushFront(k)
}

// evictOne removes the least recently used unpinned page.  If every buffered
// page is pinned the buffer temporarily grows beyond its capacity; this
// mirrors the paper's pinning, which never pins more than one page at a time.
func (b *LRU) evictOne() {
	for el := b.order.Back(); el != nil; el = el.Prev() {
		k := el.Value.(FrameKey)
		if b.pinned[k] > 0 {
			continue
		}
		b.order.Remove(el)
		delete(b.frames, k)
		b.evicted++
		return
	}
}

// Pin prevents the page from being evicted until a matching Unpin.  Pinning a
// page that is not buffered inserts it first (the join algorithms pin a page
// they have just read).  Pins nest.
func (b *LRU) Pin(k FrameKey) {
	if b.capacity == 0 {
		// Without a buffer there is nothing to keep; pinning is a no-op and
		// the caller pays a disk access on the next request, as in the paper's
		// zero-buffer configuration.
		return
	}
	b.Insert(k)
	b.pinned[k]++
}

// Unpin releases one pin of the page.  Unpinning a page that is not pinned is
// a no-op.
func (b *LRU) Unpin(k FrameKey) {
	if n, ok := b.pinned[k]; ok {
		if n <= 1 {
			delete(b.pinned, k)
		} else {
			b.pinned[k] = n - 1
		}
	}
}

// Pinned reports whether the page currently holds at least one pin.
func (b *LRU) Pinned(k FrameKey) bool { return b.pinned[k] > 0 }

// Reset empties the buffer and clears all pins.
func (b *LRU) Reset() {
	b.order.Init()
	b.frames = make(map[FrameKey]*list.Element)
	b.pinned = make(map[FrameKey]int)
	b.evicted = 0
}

// String implements fmt.Stringer.
func (b *LRU) String() string {
	return fmt.Sprintf("LRU{capacity=%d, len=%d, pinned=%d, evicted=%d}",
		b.capacity, len(b.frames), len(b.pinned), b.evicted)
}
