// Package buffer implements the buffering machinery the paper places between
// the spatial-join algorithms and secondary storage: an LRU page buffer of
// configurable size shared by both R*-trees, per-tree path buffers holding
// the most recently accessed root-to-leaf path, and page pinning as used by
// SpatialJoin4/5.
package buffer

import (
	"fmt"

	"repro/internal/storage"
)

// FrameKey identifies a buffered page.  Pages of the two trees participating
// in a join share one LRU buffer, so the key carries the tree identifier.
type FrameKey struct {
	Tree int
	Page storage.PageID
}

// lruNode is one frame of the buffer, linked into either the recency list or
// the free list.  Frames are recycled on eviction, so the buffer performs no
// steady-state allocations no matter how many pages stream through it.
type lruNode struct {
	key        FrameKey
	prev, next int32
	pins       int32
}

const nilNode = int32(-1)

// LRU is a least-recently-used page buffer with a fixed capacity measured in
// pages.  Pinned pages are never evicted.  A capacity of zero means no
// buffering at all (every access misses), which models the paper's
// "buffer size = 0" experiments.
//
// The recency order is an intrusive doubly-linked list over a frame slice
// that is reused through a free list, so after warm-up Touch/Insert/evict
// cycles allocate nothing.
//
// LRU is not safe for concurrent use; the join algorithms are sequential, as
// in the paper (ParallelJoin gives each worker its own buffer).
type LRU struct {
	capacity    int
	nodes       []lruNode
	frames      map[FrameKey]int32
	head, tail  int32 // head = most recently used
	free        int32 // head of the free list (linked via next)
	pinnedPages int
	evicted     int64
}

// NewLRU returns a buffer holding at most capacity pages.
func NewLRU(capacity int) *LRU {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU{
		capacity: capacity,
		nodes:    make([]lruNode, 0, capacity),
		frames:   make(map[FrameKey]int32, capacity),
		head:     nilNode,
		tail:     nilNode,
		free:     nilNode,
	}
}

// framesForBytes derives the number of buffer frames from a buffer size and
// a page size, the way the paper derives them from the buffer size in KBytes.
// NewLRUForBytes and ReconfigureForBytes share it so pooled and fresh buffers
// always agree on capacity.
func framesForBytes(bufferBytes, pageSize int) int {
	if pageSize <= 0 {
		return 0
	}
	return bufferBytes / pageSize
}

// NewLRUForBytes returns a buffer sized bufferBytes/pageSize pages.
func NewLRUForBytes(bufferBytes, pageSize int) *LRU {
	return NewLRU(framesForBytes(bufferBytes, pageSize))
}

// Capacity returns the number of page frames.
func (b *LRU) Capacity() int { return b.capacity }

// Len returns the number of pages currently buffered.
func (b *LRU) Len() int { return len(b.frames) }

// Evictions returns how many pages have been evicted so far.
func (b *LRU) Evictions() int64 { return b.evicted }

// Contains reports whether the page is buffered, without touching its
// recency.
func (b *LRU) Contains(k FrameKey) bool {
	_, ok := b.frames[k]
	return ok
}

// unlink removes node i from the recency list.
//
//repro:hotpath
func (b *LRU) unlink(i int32) {
	n := &b.nodes[i]
	if n.prev != nilNode {
		b.nodes[n.prev].next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nilNode {
		b.nodes[n.next].prev = n.prev
	} else {
		b.tail = n.prev
	}
}

// pushFront links node i in front of the recency list.
//
//repro:hotpath
func (b *LRU) pushFront(i int32) {
	n := &b.nodes[i]
	n.prev = nilNode
	n.next = b.head
	if b.head != nilNode {
		b.nodes[b.head].prev = i
	}
	b.head = i
	if b.tail == nilNode {
		b.tail = i
	}
}

// Touch marks the page as most recently used and reports whether it was
// buffered.
//
//repro:hotpath
func (b *LRU) Touch(k FrameKey) bool {
	i, ok := b.frames[k]
	if !ok {
		return false
	}
	if b.head != i {
		b.unlink(i)
		b.pushFront(i)
	}
	return true
}

// Insert places the page into the buffer as most recently used, evicting the
// least recently used unpinned page if the buffer is full.  Inserting an
// already buffered page is equivalent to Touch.  With capacity zero the call
// is a no-op.
//
//repro:hotpath
func (b *LRU) Insert(k FrameKey) {
	if b.capacity == 0 {
		return
	}
	if i, ok := b.frames[k]; ok {
		if b.head != i {
			b.unlink(i)
			b.pushFront(i)
		}
		return
	}
	if len(b.frames) >= b.capacity {
		b.evictOne()
	}
	var i int32
	if b.free != nilNode {
		i = b.free
		b.free = b.nodes[i].next
	} else {
		// Appends happen only until the frame pool reaches its working-set
		// size (capacity frames, plus slack while every frame is pinned).
		b.nodes = append(b.nodes, lruNode{})
		i = int32(len(b.nodes) - 1)
	}
	b.nodes[i] = lruNode{key: k, prev: nilNode, next: nilNode}
	b.frames[k] = i
	b.pushFront(i)
}

// evictOne removes the least recently used unpinned page.  If every buffered
// page is pinned the buffer temporarily grows beyond its capacity; this
// mirrors the paper's pinning, which never pins more than one page at a time.
//
//repro:hotpath
func (b *LRU) evictOne() {
	for i := b.tail; i != nilNode; i = b.nodes[i].prev {
		if b.nodes[i].pins > 0 {
			continue
		}
		b.unlink(i)
		delete(b.frames, b.nodes[i].key)
		b.nodes[i].next = b.free
		b.free = i
		b.evicted++
		return
	}
}

// Pin prevents the page from being evicted until a matching Unpin.  Pinning a
// page that is not buffered inserts it first (the join algorithms pin a page
// they have just read).  Pins nest.
func (b *LRU) Pin(k FrameKey) {
	if b.capacity == 0 {
		// Without a buffer there is nothing to keep; pinning is a no-op and
		// the caller pays a disk access on the next request, as in the paper's
		// zero-buffer configuration.
		return
	}
	b.Insert(k)
	i := b.frames[k]
	if b.nodes[i].pins == 0 {
		b.pinnedPages++
	}
	b.nodes[i].pins++
}

// Unpin releases one pin of the page.  Unpinning a page that is not pinned is
// a no-op.
func (b *LRU) Unpin(k FrameKey) {
	i, ok := b.frames[k]
	if !ok || b.nodes[i].pins == 0 {
		return
	}
	b.nodes[i].pins--
	if b.nodes[i].pins == 0 {
		b.pinnedPages--
	}
}

// Pinned reports whether the page currently holds at least one pin.
func (b *LRU) Pinned(k FrameKey) bool {
	i, ok := b.frames[k]
	return ok && b.nodes[i].pins > 0
}

// ReconfigureForBytes empties the buffer and resizes it to bufferBytes /
// pageSize frames, keeping the frame pool and map storage.  Pooled buffers
// (ParallelJoin's resident worker state) use it to be reused across joins
// with different buffer configurations without reallocating.
func (b *LRU) ReconfigureForBytes(bufferBytes, pageSize int) {
	capacity := framesForBytes(bufferBytes, pageSize)
	if capacity < 0 {
		capacity = 0
	}
	b.capacity = capacity
	b.Reset()
}

// Reset empties the buffer and clears all pins, keeping the frame pool so a
// reused buffer stays allocation-free.
func (b *LRU) Reset() {
	b.nodes = b.nodes[:0]
	clear(b.frames)
	b.head, b.tail, b.free = nilNode, nilNode, nilNode
	b.pinnedPages = 0
	b.evicted = 0
}

// String implements fmt.Stringer.
func (b *LRU) String() string {
	return fmt.Sprintf("LRU{capacity=%d, len=%d, pinned=%d, evicted=%d}",
		b.capacity, len(b.frames), b.pinnedPages, b.evicted)
}
