package buffer

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// payloadReader serves deterministic per-page payloads and counts reads.
type payloadReader struct {
	reads int
}

func (r *payloadReader) ReadPage(id storage.PageID) ([]byte, error) {
	r.reads++
	return []byte(fmt.Sprintf("page-%d", id)), nil
}

// TestPageCacheBasics: put/get round trip, LRU eviction at the page budget,
// invalidation, and the stats counters.
func TestPageCacheBasics(t *testing.T) {
	c := NewPageCache(2)
	k1 := FrameKey{Tree: 1, Page: 1}
	k2 := FrameKey{Tree: 1, Page: 2}
	k3 := FrameKey{Tree: 1, Page: 3}

	c.Put(k1, []byte("one"))
	c.Put(k2, []byte("two"))
	if got, ok := c.Get(k1); !ok || !bytes.Equal(got, []byte("one")) {
		t.Fatalf("get k1 = %q, %v", got, ok)
	}
	c.Put(k3, []byte("three")) // evicts k2 (k1 was just touched)
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 survived eviction past the budget")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 evicted although most recently used")
	}
	c.Invalidate(k1)
	if _, ok := c.Get(k1); ok {
		t.Fatal("k1 served after invalidation")
	}
	st := c.Stats()
	if st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v: want capacity 2, 1 eviction", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats %+v: hits and misses must both have counted", st)
	}

	// The cached payload is a private copy: mutating the source buffer after
	// Put must not corrupt the cache.
	src := []byte("mutable")
	c.Put(k2, src)
	src[0] = 'X'
	if got, _ := c.Get(k2); !bytes.Equal(got, []byte("mutable")) {
		t.Fatalf("cache shares the caller's buffer: %q", got)
	}

	// Zero capacity disables caching.
	z := NewPageCache(0)
	z.Put(k1, []byte("x"))
	if _, ok := z.Get(k1); ok {
		t.Fatal("zero-capacity cache stored a page")
	}
}

// TestTrackerPageCacheServesMisses pins the satellite contract: with a page
// cache attached, a counted miss whose frame is cached performs no physical
// read — only cold misses reach the pager — while the counted disk reads
// (the simulation's I/O measure) are unchanged.
func TestTrackerPageCacheServesMisses(t *testing.T) {
	m := metrics.NewCollector()
	// Counted LRU of 1 page: alternating accesses to two pages are counted
	// misses every time.
	tr := NewTracker(NewLRU(1), m, 1024, false)
	r := &payloadReader{}
	tr.SetPageReader(1, r)
	tr.SetPageCache(NewPageCache(16))

	for i := 0; i < 10; i++ {
		tr.Access(1, 0, 7)
		tr.Access(1, 0, 8)
	}
	if got := m.Snapshot().DiskReads; got != 20 {
		t.Fatalf("counted %d disk reads, want 20 (cache must not change counting)", got)
	}
	if r.reads != 2 {
		t.Fatalf("%d physical reads, want 2: the cache must serve repeated misses", r.reads)
	}
	st := tr.PageCache().Stats()
	if st.Hits != 18 || st.Misses != 2 {
		t.Fatalf("cache stats %+v, want 18 hits / 2 misses", st)
	}

	// Invalidation punches through to the pager again.
	tr.PageCache().Invalidate(FrameKey{Tree: 1, Page: 7})
	tr.Access(1, 0, 7)
	if r.reads != 3 {
		t.Fatalf("%d physical reads after invalidation, want 3", r.reads)
	}

	// Detaching restores the strict mirror-read invariant.
	tr.SetPageCache(nil)
	tr.Access(1, 0, 8)
	tr.Access(1, 0, 7)
	if r.reads != 5 {
		t.Fatalf("%d physical reads after detach, want 5", r.reads)
	}
}

// TestPageCacheConcurrent hammers one cache from many goroutines (for -race).
func TestPageCacheConcurrent(t *testing.T) {
	c := NewPageCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := FrameKey{Tree: g % 3, Page: storage.PageID(i % 100)}
				if i%7 == 0 {
					c.Invalidate(key)
				} else if i%3 == 0 {
					c.Put(key, []byte{byte(i)})
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Pages > 64 {
		t.Fatalf("cache exceeded its budget: %d pages", st.Pages)
	}
}

// TestPageCacheEvictionOrder pins the exact LRU order over a longer churn:
// touching via Get and re-putting both refresh recency, and eviction always
// takes the coldest page.
func TestPageCacheEvictionOrder(t *testing.T) {
	c := NewPageCache(3)
	key := func(p int) FrameKey { return FrameKey{Tree: 1, Page: storage.PageID(p)} }
	c.Put(key(1), []byte("1"))
	c.Put(key(2), []byte("2"))
	c.Put(key(3), []byte("3"))

	c.Get(key(1))               // order (MRU..LRU): 1 3 2
	c.Put(key(2), []byte("2'")) // re-put refreshes: 2 1 3
	c.Put(key(4), []byte("4"))  // evicts 3:         4 2 1
	if _, ok := c.Get(key(3)); ok {
		t.Fatal("page 3 survived although least recently used")
	}
	for _, p := range []int{1, 2, 4} {
		if _, ok := c.Get(key(p)); !ok {
			t.Fatalf("page %d evicted out of LRU order", p)
		}
	}
	if got, _ := c.Get(key(2)); !bytes.Equal(got, []byte("2'")) {
		t.Fatalf("re-put did not replace payload: %q", got)
	}
	if st := c.Stats(); st.Evictions != 1 || st.Pages != 3 {
		t.Fatalf("stats %+v: want exactly 1 eviction, 3 pages", st)
	}

	// Reset drops pages and counters alike.
	c.Reset()
	if st := c.Stats(); st.Pages != 0 || st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 {
		t.Fatalf("stats after Reset %+v: want all zero", st)
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("page served after Reset")
	}
}

// TestPageCacheInvalidateTree pins the per-tree isolation the server's epoch
// flips rely on: dropping one tree's pages leaves every other tree's pages
// untouched, so invalidating the churned R tree cannot cold-start S.
func TestPageCacheInvalidateTree(t *testing.T) {
	c := NewPageCache(16)
	for p := 0; p < 4; p++ {
		c.Put(FrameKey{Tree: 1, Page: storage.PageID(p)}, []byte{1, byte(p)})
		c.Put(FrameKey{Tree: 2, Page: storage.PageID(p)}, []byte{2, byte(p)})
	}
	c.InvalidateTree(1)
	for p := 0; p < 4; p++ {
		if _, ok := c.Get(FrameKey{Tree: 1, Page: storage.PageID(p)}); ok {
			t.Fatalf("tree 1 page %d survived InvalidateTree(1)", p)
		}
		if got, ok := c.Get(FrameKey{Tree: 2, Page: storage.PageID(p)}); !ok || !bytes.Equal(got, []byte{2, byte(p)}) {
			t.Fatalf("tree 2 page %d lost or corrupted by InvalidateTree(1): %q, %v", p, got, ok)
		}
	}
	if st := c.Stats(); st.Pages != 4 {
		t.Fatalf("%d pages cached after InvalidateTree, want 4", st.Pages)
	}
}

// TestPageCacheEpochIsolation drives the cache the way the server does across
// a commit boundary: two trackers (the old and the new epoch) share one
// cache; the commit invalidates the pages it rewrote, so the new epoch reads
// fresh bytes while untouched pages are still served from memory.
func TestPageCacheEpochIsolation(t *testing.T) {
	cache := NewPageCache(16)

	// Epoch 1 warms the cache with generation-1 payloads.
	gen := byte(1)
	read := 0
	reader := readerFunc(func(id storage.PageID) ([]byte, error) {
		read++
		return []byte{gen, byte(id)}, nil
	})
	warm := NewTracker(NewLRU(1), metrics.NewCollector(), 1024, false)
	warm.SetPageReader(1, reader)
	warm.SetPageCache(cache)
	warm.Access(1, 0, 10)
	warm.Access(1, 0, 11)
	if read != 2 {
		t.Fatalf("%d physical reads warming, want 2", read)
	}

	// The commit rewrites page 10 (and only page 10).
	gen = 2
	cache.Invalidate(FrameKey{Tree: 1, Page: 10})

	// Epoch 2: a fresh tracker (fresh counted LRU, as a new epoch gets) over
	// the same cache. Page 11 must come from memory with its old bytes;
	// page 10 must be re-read and serve generation-2 bytes.
	next := NewTracker(NewLRU(1), metrics.NewCollector(), 1024, false)
	next.SetPageReader(1, reader)
	next.SetPageCache(cache)
	next.Access(1, 0, 11)
	if read != 2 {
		t.Fatalf("epoch 2 re-read an unchanged page (%d physical reads)", read)
	}
	next.Access(1, 0, 10)
	if read != 3 {
		t.Fatalf("%d physical reads after the rewritten page, want 3", read)
	}
	if got, ok := cache.Get(FrameKey{Tree: 1, Page: 10}); !ok || !bytes.Equal(got, []byte{2, 10}) {
		t.Fatalf("rewritten page served stale bytes: %q, %v", got, ok)
	}
	if got, ok := cache.Get(FrameKey{Tree: 1, Page: 11}); !ok || !bytes.Equal(got, []byte{1, 11}) {
		t.Fatalf("unchanged page lost its bytes: %q, %v", got, ok)
	}
}

// readerFunc adapts a function to the PageReader interface.
type readerFunc func(storage.PageID) ([]byte, error)

func (f readerFunc) ReadPage(id storage.PageID) ([]byte, error) { return f(id) }

// TestNewPageCacheForBytes pins the byte-budget sizing: whole pages, at
// least one page for any positive budget, zero for a zero budget.
func TestNewPageCacheForBytes(t *testing.T) {
	if got := NewPageCacheForBytes(8192, 1024).Stats().Capacity; got != 8 {
		t.Fatalf("8 KiB / 1 KiB pages: capacity %d, want 8", got)
	}
	if got := NewPageCacheForBytes(100, 1024).Stats().Capacity; got != 1 {
		t.Fatalf("sub-page budget: capacity %d, want 1", got)
	}
	if got := NewPageCacheForBytes(0, 1024).Stats().Capacity; got != 0 {
		t.Fatalf("zero budget: capacity %d, want 0", got)
	}
	if got := NewPageCache(-5).Stats().Capacity; got != 0 {
		t.Fatalf("negative capacity: %d, want 0", got)
	}
}
