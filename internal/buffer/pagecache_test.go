package buffer

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// payloadReader serves deterministic per-page payloads and counts reads.
type payloadReader struct {
	reads int
}

func (r *payloadReader) ReadPage(id storage.PageID) ([]byte, error) {
	r.reads++
	return []byte(fmt.Sprintf("page-%d", id)), nil
}

// TestPageCacheBasics: put/get round trip, LRU eviction at the page budget,
// invalidation, and the stats counters.
func TestPageCacheBasics(t *testing.T) {
	c := NewPageCache(2)
	k1 := FrameKey{Tree: 1, Page: 1}
	k2 := FrameKey{Tree: 1, Page: 2}
	k3 := FrameKey{Tree: 1, Page: 3}

	c.Put(k1, []byte("one"))
	c.Put(k2, []byte("two"))
	if got, ok := c.Get(k1); !ok || !bytes.Equal(got, []byte("one")) {
		t.Fatalf("get k1 = %q, %v", got, ok)
	}
	c.Put(k3, []byte("three")) // evicts k2 (k1 was just touched)
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 survived eviction past the budget")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 evicted although most recently used")
	}
	c.Invalidate(k1)
	if _, ok := c.Get(k1); ok {
		t.Fatal("k1 served after invalidation")
	}
	st := c.Stats()
	if st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v: want capacity 2, 1 eviction", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats %+v: hits and misses must both have counted", st)
	}

	// The cached payload is a private copy: mutating the source buffer after
	// Put must not corrupt the cache.
	src := []byte("mutable")
	c.Put(k2, src)
	src[0] = 'X'
	if got, _ := c.Get(k2); !bytes.Equal(got, []byte("mutable")) {
		t.Fatalf("cache shares the caller's buffer: %q", got)
	}

	// Zero capacity disables caching.
	z := NewPageCache(0)
	z.Put(k1, []byte("x"))
	if _, ok := z.Get(k1); ok {
		t.Fatal("zero-capacity cache stored a page")
	}
}

// TestTrackerPageCacheServesMisses pins the satellite contract: with a page
// cache attached, a counted miss whose frame is cached performs no physical
// read — only cold misses reach the pager — while the counted disk reads
// (the simulation's I/O measure) are unchanged.
func TestTrackerPageCacheServesMisses(t *testing.T) {
	m := metrics.NewCollector()
	// Counted LRU of 1 page: alternating accesses to two pages are counted
	// misses every time.
	tr := NewTracker(NewLRU(1), m, 1024, false)
	r := &payloadReader{}
	tr.SetPageReader(1, r)
	tr.SetPageCache(NewPageCache(16))

	for i := 0; i < 10; i++ {
		tr.Access(1, 0, 7)
		tr.Access(1, 0, 8)
	}
	if got := m.Snapshot().DiskReads; got != 20 {
		t.Fatalf("counted %d disk reads, want 20 (cache must not change counting)", got)
	}
	if r.reads != 2 {
		t.Fatalf("%d physical reads, want 2: the cache must serve repeated misses", r.reads)
	}
	st := tr.PageCache().Stats()
	if st.Hits != 18 || st.Misses != 2 {
		t.Fatalf("cache stats %+v, want 18 hits / 2 misses", st)
	}

	// Invalidation punches through to the pager again.
	tr.PageCache().Invalidate(FrameKey{Tree: 1, Page: 7})
	tr.Access(1, 0, 7)
	if r.reads != 3 {
		t.Fatalf("%d physical reads after invalidation, want 3", r.reads)
	}

	// Detaching restores the strict mirror-read invariant.
	tr.SetPageCache(nil)
	tr.Access(1, 0, 8)
	tr.Access(1, 0, 7)
	if r.reads != 5 {
		t.Fatalf("%d physical reads after detach, want 5", r.reads)
	}
}

// TestPageCacheConcurrent hammers one cache from many goroutines (for -race).
func TestPageCacheConcurrent(t *testing.T) {
	c := NewPageCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := FrameKey{Tree: g % 3, Page: storage.PageID(i % 100)}
				if i%7 == 0 {
					c.Invalidate(key)
				} else if i%3 == 0 {
					c.Put(key, []byte{byte(i)})
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Pages > 64 {
		t.Fatalf("cache exceeded its budget: %d pages", st.Pages)
	}
}
