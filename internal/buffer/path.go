package buffer

import "repro/internal/storage"

// PathBuffer models the R*-tree's private path buffer: it holds the nodes of
// the root-to-leaf path that was accessed last (section 4.1).  The path
// buffer belongs to the data structure itself, independent of the shared LRU
// buffer of the underlying system, so each tree owns one.
type PathBuffer struct {
	levels []storage.PageID // index = level, 0 = leaf
}

// NewPathBuffer returns a path buffer for a tree of the given height (number
// of levels).  Height may be zero; the buffer grows on demand.
func NewPathBuffer(height int) *PathBuffer {
	if height < 0 {
		height = 0
	}
	return &PathBuffer{levels: make([]storage.PageID, height)}
}

// Contains reports whether the page at the given level is the one on the most
// recently accessed path.
func (p *PathBuffer) Contains(level int, id storage.PageID) bool {
	if level < 0 || level >= len(p.levels) {
		return false
	}
	return p.levels[level] == id && id != storage.InvalidPage
}

// Record notes that the page at the given level is now on the current path.
// Deeper levels (below the given one) are invalidated because descending via
// a different parent abandons the previously buffered subpath.
func (p *PathBuffer) Record(level int, id storage.PageID) {
	if level < 0 {
		return
	}
	for len(p.levels) <= level {
		p.levels = append(p.levels, storage.InvalidPage)
	}
	p.levels[level] = id
	for l := 0; l < level; l++ {
		p.levels[l] = storage.InvalidPage
	}
}

// Reset clears the buffered path.
func (p *PathBuffer) Reset() {
	for i := range p.levels {
		p.levels[i] = storage.InvalidPage
	}
}
