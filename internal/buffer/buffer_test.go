package buffer

import (
	"errors"

	"testing"

	"repro/internal/metrics"
	"repro/internal/storage"
)

func key(tree int, page storage.PageID) FrameKey { return FrameKey{Tree: tree, Page: page} }

func TestLRUBasicEviction(t *testing.T) {
	b := NewLRU(2)
	b.Insert(key(0, 1))
	b.Insert(key(0, 2))
	if !b.Contains(key(0, 1)) || !b.Contains(key(0, 2)) {
		t.Fatal("expected both pages buffered")
	}
	b.Insert(key(0, 3)) // evicts page 1 (least recently used)
	if b.Contains(key(0, 1)) {
		t.Fatal("page 1 should have been evicted")
	}
	if !b.Contains(key(0, 2)) || !b.Contains(key(0, 3)) {
		t.Fatal("pages 2 and 3 should be buffered")
	}
	if b.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", b.Evictions())
	}
}

func TestLRUTouchChangesEvictionOrder(t *testing.T) {
	b := NewLRU(2)
	b.Insert(key(0, 1))
	b.Insert(key(0, 2))
	if !b.Touch(key(0, 1)) {
		t.Fatal("Touch of buffered page must return true")
	}
	b.Insert(key(0, 3)) // now page 2 is LRU and is evicted
	if b.Contains(key(0, 2)) {
		t.Fatal("page 2 should have been evicted")
	}
	if !b.Contains(key(0, 1)) {
		t.Fatal("page 1 should have survived")
	}
	if b.Touch(key(0, 99)) {
		t.Fatal("Touch of unknown page must return false")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	b := NewLRU(0)
	b.Insert(key(0, 1))
	if b.Contains(key(0, 1)) {
		t.Fatal("zero-capacity buffer must not retain pages")
	}
	b.Pin(key(0, 1))
	if b.Pinned(key(0, 1)) {
		t.Fatal("zero-capacity buffer must not pin pages")
	}
	if b.Len() != 0 {
		t.Fatal("zero-capacity buffer must stay empty")
	}
}

func TestNewLRUForBytes(t *testing.T) {
	if got := NewLRUForBytes(128<<10, storage.PageSize4K).Capacity(); got != 32 {
		t.Errorf("capacity = %d, want 32", got)
	}
	if got := NewLRUForBytes(0, storage.PageSize4K).Capacity(); got != 0 {
		t.Errorf("capacity = %d, want 0", got)
	}
	if got := NewLRUForBytes(8<<10, 0).Capacity(); got != 0 {
		t.Errorf("capacity with zero page size = %d, want 0", got)
	}
	if got := NewLRU(-5).Capacity(); got != 0 {
		t.Errorf("negative capacity = %d, want 0", got)
	}
}

func TestLRUPinPreventsEviction(t *testing.T) {
	b := NewLRU(2)
	b.Insert(key(0, 1))
	b.Pin(key(0, 1))
	b.Insert(key(0, 2))
	b.Insert(key(0, 3)) // page 1 is pinned, so page 2 must be evicted instead
	if !b.Contains(key(0, 1)) {
		t.Fatal("pinned page must not be evicted")
	}
	if b.Contains(key(0, 2)) {
		t.Fatal("page 2 should have been evicted instead of the pinned page")
	}
	b.Unpin(key(0, 1))
	b.Insert(key(0, 4)) // now page 1 can go (it is the least recently used)
	if b.Contains(key(0, 1)) {
		t.Fatal("page 1 should be evictable after Unpin")
	}
}

func TestLRUNestedPins(t *testing.T) {
	b := NewLRU(1)
	b.Pin(key(0, 1))
	b.Pin(key(0, 1))
	b.Unpin(key(0, 1))
	if !b.Pinned(key(0, 1)) {
		t.Fatal("page must stay pinned until all pins are released")
	}
	b.Unpin(key(0, 1))
	if b.Pinned(key(0, 1)) {
		t.Fatal("page must be unpinned after releasing all pins")
	}
	// Unpinning an unpinned page is a no-op.
	b.Unpin(key(0, 2))
}

func TestLRUAllPinnedGrowsTemporarily(t *testing.T) {
	b := NewLRU(1)
	b.Pin(key(0, 1))
	b.Insert(key(0, 2)) // nothing evictable; buffer grows
	if !b.Contains(key(0, 1)) || !b.Contains(key(0, 2)) {
		t.Fatal("both pages should be resident when the only candidate is pinned")
	}
}

func TestLRUResetAndString(t *testing.T) {
	b := NewLRU(4)
	b.Insert(key(0, 1))
	b.Pin(key(0, 1))
	b.Reset()
	if b.Len() != 0 || b.Pinned(key(0, 1)) || b.Evictions() != 0 {
		t.Fatal("Reset must clear frames, pins and statistics")
	}
	if b.String() == "" {
		t.Fatal("String must not be empty")
	}
}

func TestPathBuffer(t *testing.T) {
	p := NewPathBuffer(3)
	if p.Contains(0, 1) {
		t.Fatal("empty path buffer must not contain pages")
	}
	p.Record(2, 10)
	p.Record(1, 11)
	p.Record(0, 12)
	if !p.Contains(2, 10) || !p.Contains(1, 11) || !p.Contains(0, 12) {
		t.Fatal("recorded path must be contained")
	}
	// Recording a new node at level 1 invalidates the leaf below it.
	p.Record(1, 20)
	if p.Contains(0, 12) {
		t.Fatal("deeper levels must be invalidated when the path changes")
	}
	if !p.Contains(2, 10) {
		t.Fatal("levels above the change must stay valid")
	}
	// Out-of-range queries and records are harmless.
	if p.Contains(-1, 10) || p.Contains(99, 10) {
		t.Fatal("out-of-range levels must not be contained")
	}
	p.Record(-1, 5)
	p.Record(5, 5)
	if !p.Contains(5, 5) {
		t.Fatal("path buffer must grow on demand")
	}
	p.Reset()
	if p.Contains(2, 10) {
		t.Fatal("Reset must clear the path")
	}
	if NewPathBuffer(-1) == nil {
		t.Fatal("negative height must still produce a buffer")
	}
}

func TestTrackerCountsDiskAccessesAndHits(t *testing.T) {
	m := metrics.NewCollector()
	tr := NewTracker(NewLRU(2), m, storage.PageSize1K, false)

	if hit := tr.Access(0, 0, 1); hit {
		t.Fatal("first access must miss")
	}
	if hit := tr.Access(0, 0, 1); !hit {
		t.Fatal("second access must hit the LRU buffer")
	}
	tr.Access(0, 0, 2)
	tr.Access(0, 0, 3) // evicts page 1
	if hit := tr.Access(0, 0, 1); hit {
		t.Fatal("evicted page must miss again")
	}
	if m.DiskReads() != 4 {
		t.Fatalf("DiskReads = %d, want 4", m.DiskReads())
	}
	if m.BufferHits() != 1 {
		t.Fatalf("BufferHits = %d, want 1", m.BufferHits())
	}
	if m.BytesRead() != 4*storage.PageSize1K {
		t.Fatalf("BytesRead = %d", m.BytesRead())
	}
}

func TestTrackerPathBuffer(t *testing.T) {
	m := metrics.NewCollector()
	tr := NewTracker(NewLRU(0), m, storage.PageSize1K, true)

	tr.Access(0, 1, 10) // miss
	if hit := tr.Access(0, 1, 10); !hit {
		t.Fatal("re-access of the node on the current path must hit")
	}
	if m.PathHits() != 1 {
		t.Fatalf("PathHits = %d, want 1", m.PathHits())
	}
	// A different tree has an independent path.
	if hit := tr.Access(1, 1, 10); hit {
		t.Fatal("path buffer must be per tree")
	}
	if m.DiskReads() != 2 {
		t.Fatalf("DiskReads = %d, want 2", m.DiskReads())
	}
}

func TestTrackerSharedAcrossTrees(t *testing.T) {
	m := metrics.NewCollector()
	tr := NewTracker(NewLRU(1), m, storage.PageSize1K, false)
	tr.Access(0, 0, 1)
	tr.Access(1, 0, 1) // same page id but different tree: distinct frame, evicts tree 0's page
	if hit := tr.Access(0, 0, 1); hit {
		t.Fatal("frames must be namespaced by tree")
	}
}

func TestTrackerPinAndReset(t *testing.T) {
	m := metrics.NewCollector()
	tr := NewTracker(NewLRU(1), m, storage.PageSize1K, false)
	tr.Access(0, 0, 1)
	tr.Pin(0, 1)
	tr.Access(0, 0, 2) // cannot evict pinned page
	if hit := tr.Access(0, 0, 1); !hit {
		t.Fatal("pinned page must remain buffered")
	}
	tr.Unpin(0, 1)
	tr.Reset()
	if hit := tr.Access(0, 0, 1); hit {
		t.Fatal("Reset must clear the buffer")
	}
	if tr.LRU() == nil || tr.Metrics() != m || tr.PageSize() != storage.PageSize1K {
		t.Fatal("accessors must expose construction parameters")
	}
}

func TestTrackerNilLRU(t *testing.T) {
	tr := NewTracker(nil, metrics.NewCollector(), storage.PageSize1K, false)
	if tr.LRU() == nil {
		t.Fatal("nil LRU must be replaced by an empty buffer")
	}
	tr.Access(0, 0, 1)
}

// stubReader records the pages it was asked to read and fails on demand.
type stubReader struct {
	reads []storage.PageID
	fail  error
}

func (r *stubReader) ReadPage(id storage.PageID) ([]byte, error) {
	r.reads = append(r.reads, id)
	return nil, r.fail
}

// TestTrackerPageReaderMirrorsCountedMisses pins the measured-I/O hook: an
// attached PageReader is invoked exactly once per counted disk read (never on
// a buffer hit), and a read failure is latched and surfaced through ReadErr
// instead of being swallowed mid-join.
func TestTrackerPageReaderMirrorsCountedMisses(t *testing.T) {
	m := metrics.NewCollector()
	tr := NewTracker(NewLRU(10), m, 1024, false)
	r := &stubReader{}
	tr.SetPageReader(1, r)

	tr.Access(1, 0, 7) // miss: physical read
	tr.Access(1, 0, 7) // LRU hit: no read
	tr.Access(1, 0, 8) // miss: physical read
	tr.Access(2, 0, 9) // other tree, no reader attached
	if len(r.reads) != 2 || r.reads[0] != 7 || r.reads[1] != 8 {
		t.Fatalf("reader saw %v, want [7 8]", r.reads)
	}
	if got := m.Snapshot().DiskReads; got != 3 {
		t.Fatalf("counted %d disk reads, want 3", got)
	}
	if err := tr.ReadErr(); err != nil {
		t.Fatalf("ReadErr: %v", err)
	}

	// Detaching stops the mirroring.
	tr.SetPageReader(1, nil)
	tr.Access(1, 0, 10)
	if len(r.reads) != 2 {
		t.Fatalf("detached reader still called: %v", r.reads)
	}

	// A failing read is latched: the tracker keeps counting, but the error
	// stays visible until Reconfigure.
	fail := &stubReader{fail: storage.ErrReadExhausted}
	tr.SetPageReader(1, fail)
	tr.Access(1, 0, 11)
	tr.Access(1, 0, 12)
	if err := tr.ReadErr(); !errors.Is(err, storage.ErrReadExhausted) {
		t.Fatalf("ReadErr after failure: %v", err)
	}
	if len(fail.reads) != 1 {
		t.Fatalf("reader called %d times after a latched error, want 1", len(fail.reads))
	}
	tr.Reconfigure(m, 1024, false)
	if err := tr.ReadErr(); err != nil {
		t.Fatalf("Reconfigure did not clear the latched error: %v", err)
	}
}
