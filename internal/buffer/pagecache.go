package buffer

import "sync"

// PageCache is a real page cache: unlike the counted LRU — which only decides
// whether an access would have been a hit — it holds the page payloads, so a
// counted miss whose frame is cached is served from memory without touching
// the pager at all.  This promotes the tracker's measured-I/O mode from
// "every counted miss mirrors one physical read" to a genuine two-level
// hierarchy: counted LRU (the paper's simulated join buffer) over a shared
// byte cache over the pager.
//
// The cache is safe for concurrent use by any number of trackers and
// readers; the server's query workers share one instance across epochs.
// Eviction is LRU over a fixed page budget.  Attaching a PageCache is opt-in
// (see Tracker.SetPageCache): the disk experiments keep the exact
// counted-miss == physical-read invariant by simply not attaching one.
type PageCache struct {
	mu       sync.Mutex
	capacity int // max cached pages; <= 0 disables caching entirely
	//repro:guardedBy mu
	frames map[FrameKey]*pcEntry
	//repro:guardedBy mu
	head *pcEntry // most recently used
	//repro:guardedBy mu
	tail *pcEntry // least recently used

	//repro:guardedBy mu
	hits int64
	//repro:guardedBy mu
	misses int64
	//repro:guardedBy mu
	evictions int64
}

type pcEntry struct {
	key        FrameKey
	data       []byte
	prev, next *pcEntry
}

// PageCacheStats is a snapshot of the cache's counters.
type PageCacheStats struct {
	Pages     int   // currently cached pages
	Capacity  int   // page budget
	Hits      int64 // Get calls served from the cache
	Misses    int64 // Get calls that found nothing
	Evictions int64 // pages dropped to make room
}

// NewPageCache returns a cache holding at most capacity pages.
func NewPageCache(capacity int) *PageCache {
	if capacity < 0 {
		capacity = 0
	}
	return &PageCache{capacity: capacity, frames: make(map[FrameKey]*pcEntry)}
}

// NewPageCacheForBytes sizes the cache for a byte budget at the given page
// size (at least one page when bytes > 0).
func NewPageCacheForBytes(bytes, pageSize int) *PageCache {
	if bytes <= 0 || pageSize <= 0 {
		return NewPageCache(0)
	}
	pages := bytes / pageSize
	if pages < 1 {
		pages = 1
	}
	return NewPageCache(pages)
}

// Get returns the cached payload for key and whether it was present.  The
// returned slice is shared — callers must treat it as read-only.
func (c *PageCache) Get(key FrameKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.frames[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.data, true
}

// Put stores the payload for key, copying it so later mutations of the
// caller's buffer cannot corrupt the cache.  A zero-capacity cache ignores
// the call.
func (c *PageCache) Put(key FrameKey, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if e, ok := c.frames[key]; ok {
		e.data = append(e.data[:0], data...)
		c.moveToFront(e)
		return
	}
	for len(c.frames) >= c.capacity {
		c.evictTail()
	}
	e := &pcEntry{key: key, data: append([]byte(nil), data...)}
	c.frames[key] = e
	c.pushFront(e)
}

// Invalidate drops the cached payload for key, if any.  TreeStore calls it
// for every page a commit rewrites or frees, so the cache never serves bytes
// the pager has replaced.
func (c *PageCache) Invalidate(key FrameKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.frames[key]; ok {
		c.unlink(e)
		delete(c.frames, key)
	}
}

// InvalidateTree drops every cached page of the given tree.
func (c *PageCache) InvalidateTree(tree int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.frames {
		if key.Tree == tree {
			c.unlink(e)
			delete(c.frames, key)
		}
	}
}

// Stats returns a snapshot of the counters.
func (c *PageCache) Stats() PageCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PageCacheStats{
		Pages:     len(c.frames),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// Reset drops all cached pages and counters.
func (c *PageCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.frames)
	c.head, c.tail = nil, nil
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// pushFront links e as the most recently used entry.
//
//repro:locked
func (c *PageCache) pushFront(e *pcEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the recency list.
//
//repro:locked
func (c *PageCache) unlink(e *pcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks e as the most recently used entry.
//
//repro:locked
func (c *PageCache) moveToFront(e *pcEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// evictTail drops the least recently used entry.
//
//repro:locked
func (c *PageCache) evictTail() {
	e := c.tail
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.frames, e.key)
	c.evictions++
}
