// Package btree implements an in-memory B+-tree over uint64 keys with int32
// values.  It is the storage substrate of the z-ordering spatial-join
// baseline (internal/zbjoin): spatial objects are decomposed into z-order
// cells and the cells are stored in a B+-tree, the access-method family the
// paper contrasts R-trees with (Orenstein's approach, section 2).
//
// Duplicate keys are allowed; values with equal keys are returned in
// insertion order.  The tree supports insertion, exact lookup and ordered
// range scans, which is all the merge-style spatial join needs.
package btree

import (
	"fmt"
	"sort"
)

// DefaultOrder is the default maximum number of keys per node, chosen so a
// node of 12-byte pairs fits a 4 KByte page like the R*-tree's.
const DefaultOrder = 256

// Pair is one key/value entry of the tree.
type Pair struct {
	Key   uint64
	Value int32
}

// node is a B+-tree node.  Leaves hold pairs and are linked; internal nodes
// hold separator keys and children.
type node struct {
	leaf     bool
	keys     []uint64
	values   []int32 // leaves only, parallel to keys
	children []*node // internal nodes only, len(children) == len(keys)+1
	next     *node   // leaf-chain pointer
}

// Tree is a B+-tree.  The zero value is not usable; use New.
type Tree struct {
	order int
	root  *node
	size  int
	// firstLeaf anchors the leaf chain for full scans.
	firstLeaf *node
}

// New returns an empty B+-tree with the given order (maximum keys per node).
// Orders below 4 are raised to 4.
func New(order int) *Tree {
	if order < 4 {
		order = 4
	}
	leaf := &node{leaf: true}
	return &Tree{order: order, root: leaf, firstLeaf: leaf}
}

// NewDefault returns an empty tree with DefaultOrder.
func NewDefault() *Tree { return New(DefaultOrder) }

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return t.size }

// Order returns the maximum number of keys per node.
func (t *Tree) Order() int { return t.order }

// Height returns the number of levels.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Insert adds a key/value pair.  Duplicate keys are allowed.
func (t *Tree) Insert(key uint64, value int32) {
	t.size++
	midKey, sibling := t.insert(t.root, key, value)
	if sibling == nil {
		return
	}
	newRoot := &node{
		keys:     []uint64{midKey},
		children: []*node{t.root, sibling},
	}
	t.root = newRoot
}

// insert adds the pair to the subtree rooted at n.  If n is split, the
// separator key and the new right sibling are returned.
func (t *Tree) insert(n *node, key uint64, value int32) (uint64, *node) {
	if n.leaf {
		idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n.keys = append(n.keys, 0)
		copy(n.keys[idx+1:], n.keys[idx:])
		n.keys[idx] = key
		n.values = append(n.values, 0)
		copy(n.values[idx+1:], n.values[idx:])
		n.values[idx] = value
		if len(n.keys) > t.order {
			return t.splitLeaf(n)
		}
		return 0, nil
	}
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	midKey, sibling := t.insert(n.children[idx], key, value)
	if sibling == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = midKey
	n.children = append(n.children, nil)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = sibling
	if len(n.keys) > t.order {
		return t.splitInternal(n)
	}
	return 0, nil
}

// splitLeaf splits an overflowing leaf, links it into the leaf chain and
// returns the first key of the new right sibling as the separator.
func (t *Tree) splitLeaf(n *node) (uint64, *node) {
	mid := len(n.keys) / 2
	sibling := &node{
		leaf:   true,
		keys:   append([]uint64(nil), n.keys[mid:]...),
		values: append([]int32(nil), n.values[mid:]...),
		next:   n.next,
	}
	n.keys = n.keys[:mid]
	n.values = n.values[:mid]
	n.next = sibling
	return sibling.keys[0], sibling
}

// splitInternal splits an overflowing internal node; the middle key moves up.
func (t *Tree) splitInternal(n *node) (uint64, *node) {
	mid := len(n.keys) / 2
	midKey := n.keys[mid]
	sibling := &node{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return midKey, sibling
}

// findLeaf returns the leaf that would contain key and the index of the first
// entry >= key within it (which may equal len(keys)).
func (t *Tree) findLeaf(key uint64) (*node, int) {
	n := t.root
	for !n.leaf {
		idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n = n.children[idx]
	}
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	return n, idx
}

// Get returns all values stored under key, in insertion order.
func (t *Tree) Get(key uint64) []int32 {
	var out []int32
	t.Scan(key, func(k uint64, v int32) bool {
		if k != key {
			return false
		}
		out = append(out, v)
		return true
	})
	return out
}

// Contains reports whether at least one pair with the given key exists.
func (t *Tree) Contains(key uint64) bool {
	n, idx := t.findLeaf(key)
	for ; n != nil; n = n.next {
		for ; idx < len(n.keys); idx++ {
			if n.keys[idx] == key {
				return true
			}
			if n.keys[idx] > key {
				return false
			}
		}
		idx = 0
	}
	return false
}

// Scan visits all pairs with key >= from in ascending key order until fn
// returns false.
func (t *Tree) Scan(from uint64, fn func(key uint64, value int32) bool) {
	n, idx := t.findLeaf(from)
	for ; n != nil; n = n.next {
		for ; idx < len(n.keys); idx++ {
			if !fn(n.keys[idx], n.values[idx]) {
				return
			}
		}
		idx = 0
	}
}

// ScanAll visits every pair in ascending key order until fn returns false.
func (t *Tree) ScanAll(fn func(key uint64, value int32) bool) {
	for n := t.firstLeaf; n != nil; n = n.next {
		for i := range n.keys {
			if !fn(n.keys[i], n.values[i]) {
				return
			}
		}
	}
}

// Pairs returns every stored pair in ascending key order.
func (t *Tree) Pairs() []Pair {
	out := make([]Pair, 0, t.size)
	t.ScanAll(func(k uint64, v int32) bool {
		out = append(out, Pair{Key: k, Value: v})
		return true
	})
	return out
}

// CheckInvariants verifies the B+-tree structural invariants: keys are sorted
// within nodes, leaf-chain order equals tree order, all leaves are at the
// same depth and internal separator keys bound their subtrees.
func (t *Tree) CheckInvariants() error {
	depth := -1
	var checkNode func(n *node, d int, lo, hi uint64) (int, error)
	checkNode = func(n *node, d int, lo, hi uint64) (int, error) {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] > n.keys[i] {
				return 0, fmt.Errorf("btree: unsorted keys at depth %d", d)
			}
		}
		for _, k := range n.keys {
			if k < lo || k > hi {
				return 0, fmt.Errorf("btree: key %d outside separator bounds [%d,%d]", k, lo, hi)
			}
		}
		if n.leaf {
			if depth == -1 {
				depth = d
			}
			if d != depth {
				return 0, fmt.Errorf("btree: leaves at depths %d and %d", depth, d)
			}
			return len(n.keys), nil
		}
		if len(n.children) != len(n.keys)+1 {
			return 0, fmt.Errorf("btree: internal node with %d keys and %d children", len(n.keys), len(n.children))
		}
		total := 0
		for i, c := range n.children {
			childLo, childHi := lo, hi
			if i > 0 {
				childLo = n.keys[i-1]
			}
			if i < len(n.keys) {
				childHi = n.keys[i]
			}
			cnt, err := checkNode(c, d+1, childLo, childHi)
			if err != nil {
				return 0, err
			}
			total += cnt
		}
		return total, nil
	}
	total, err := checkNode(t.root, 0, 0, ^uint64(0))
	if err != nil {
		return err
	}
	if total != t.size {
		return fmt.Errorf("btree: counted %d pairs, size is %d", total, t.size)
	}
	// The leaf chain must enumerate exactly the sorted pairs.
	chain := 0
	var prev uint64
	first := true
	for n := t.firstLeaf; n != nil; n = n.next {
		for _, k := range n.keys {
			if !first && k < prev {
				return fmt.Errorf("btree: leaf chain out of order (%d after %d)", k, prev)
			}
			prev, first = k, false
			chain++
		}
	}
	if chain != t.size {
		return fmt.Errorf("btree: leaf chain holds %d pairs, size is %d", chain, t.size)
	}
	return nil
}
