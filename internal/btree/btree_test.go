package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := NewDefault()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d", tr.Height())
	}
	if tr.Contains(5) {
		t.Fatal("empty tree must not contain keys")
	}
	if got := tr.Get(5); len(got) != 0 {
		t.Fatalf("Get on empty tree = %v", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Order() != DefaultOrder {
		t.Fatalf("Order = %d", tr.Order())
	}
}

func TestSmallOrderClamped(t *testing.T) {
	if got := New(1).Order(); got != 4 {
		t.Fatalf("Order = %d, want 4", got)
	}
}

func TestInsertAndScanSorted(t *testing.T) {
	tr := New(8)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(rng.Intn(100000))
		tr.Insert(keys[i], int32(i))
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Fatalf("expected a multi-level tree, height = %d", tr.Height())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var got []uint64
	tr.ScanAll(func(k uint64, _ int32) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(keys))
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("scan out of order at %d: %d != %d", i, got[i], keys[i])
		}
	}
}

func TestGetDuplicatesAndContains(t *testing.T) {
	tr := New(4)
	tr.Insert(10, 1)
	tr.Insert(10, 2)
	tr.Insert(10, 3)
	tr.Insert(20, 4)
	got := tr.Get(10)
	if len(got) != 3 {
		t.Fatalf("Get(10) = %v", got)
	}
	if !tr.Contains(20) || tr.Contains(15) {
		t.Fatal("Contains answered incorrectly")
	}
	if got := tr.Get(99); len(got) != 0 {
		t.Fatalf("Get(99) = %v", got)
	}
}

func TestScanFrom(t *testing.T) {
	tr := New(6)
	for i := 0; i < 1000; i++ {
		tr.Insert(uint64(i*2), int32(i))
	}
	// Scan from an absent key: must start at the next greater key.
	var first uint64
	found := false
	tr.Scan(501, func(k uint64, _ int32) bool {
		first = k
		found = true
		return false
	})
	if !found || first != 502 {
		t.Fatalf("Scan(501) started at %d (found=%v), want 502", first, found)
	}
	// Early termination.
	n := 0
	tr.Scan(0, func(uint64, int32) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early termination visited %d", n)
	}
	// Scan beyond the maximum key yields nothing.
	tr.Scan(10_000, func(uint64, int32) bool {
		t.Fatal("unexpected pair")
		return false
	})
}

func TestPairs(t *testing.T) {
	tr := New(4)
	tr.Insert(3, 30)
	tr.Insert(1, 10)
	tr.Insert(2, 20)
	pairs := tr.Pairs()
	want := []Pair{{1, 10}, {2, 20}, {3, 30}}
	if len(pairs) != len(want) {
		t.Fatalf("Pairs = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("Pairs[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}
}

func TestScanAllEarlyStop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(uint64(i), int32(i))
	}
	n := 0
	tr.ScanAll(func(uint64, int32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("ScanAll early stop visited %d", n)
	}
}

// Property: for any multiset of keys the tree enumerates exactly the sorted
// multiset and satisfies its invariants.
func TestTreeMatchesSortedMultisetProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := New(5)
		keys := make([]uint64, len(raw))
		for i, k := range raw {
			keys[i] = uint64(k)
			tr.Insert(uint64(k), int32(i))
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		got := tr.Pairs()
		if len(got) != len(keys) {
			return false
		}
		for i := range keys {
			if got[i].Key != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
