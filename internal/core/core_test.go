package core

import (
	"errors"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/refine"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func smallTreeOpts() rtree.Options {
	return rtree.Options{PageSize: storage.PageSize1K}
}

func TestRelationAddRemoveQuery(t *testing.T) {
	rel, err := NewRelation("forests", smallTreeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Name() != "forests" {
		t.Errorf("Name = %q", rel.Name())
	}
	obj := Object{ID: 1, MBR: geom.Rect{XL: 0.1, YL: 0.1, XU: 0.2, YU: 0.2}}
	if err := rel.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := rel.Add(obj); err == nil {
		t.Fatal("duplicate id must be rejected")
	}
	if err := rel.Add(Object{ID: 2, MBR: geom.Rect{XL: 1, YL: 1, XU: 0, YU: 0}}); err == nil {
		t.Fatal("invalid MBR must be rejected")
	}
	if rel.Len() != 1 {
		t.Fatalf("Len = %d", rel.Len())
	}
	if _, ok := rel.Object(1); !ok {
		t.Fatal("Object(1) not found")
	}
	if _, ok := rel.Object(9); ok {
		t.Fatal("Object(9) unexpectedly found")
	}
	got := rel.WindowQuery(geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}, false)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("WindowQuery = %v", got)
	}
	if !rel.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	if rel.Remove(1) {
		t.Fatal("Remove(1) must fail the second time")
	}
	if rel.Len() != 0 || rel.Tree().Len() != 0 {
		t.Fatal("relation not empty after Remove")
	}
}

func TestBuildRelationDynamicAndBulk(t *testing.T) {
	items := datagen.Generate(datagen.Config{Kind: datagen.Streets, Count: 2000, Seed: 1})
	objects := LineObjectsFromItems(items)
	for _, bulk := range []bool{false, true} {
		rel, err := BuildRelation("streets", objects, smallTreeOpts(), bulk)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != len(items) || rel.Tree().Len() != len(items) {
			t.Fatalf("bulk=%v: relation holds %d objects, tree %d", bulk, rel.Len(), rel.Tree().Len())
		}
		if err := rel.Tree().CheckInvariants(); err != nil {
			t.Fatalf("bulk=%v: %v", bulk, err)
		}
	}
	// Duplicate ids are rejected in both paths.
	dup := []Object{{ID: 1, MBR: geom.Rect{XU: 1, YU: 1}}, {ID: 1, MBR: geom.Rect{XU: 1, YU: 1}}}
	if _, err := BuildRelation("dup", dup, smallTreeOpts(), false); err == nil {
		t.Fatal("expected duplicate error (dynamic)")
	}
	if _, err := BuildRelation("dup", dup, smallTreeOpts(), true); err == nil {
		t.Fatal("expected duplicate error (bulk)")
	}
	if _, err := NewRelation("bad", rtree.Options{PageSize: 16}); err == nil {
		t.Fatal("expected error for invalid tree options")
	}
	if _, err := BuildRelation("bad", objects, rtree.Options{PageSize: 16}, true); err == nil {
		t.Fatal("expected error for invalid tree options (bulk)")
	}
}

func TestWindowQueryExactRefinement(t *testing.T) {
	// A diagonal line whose MBR intersects the window but whose geometry does
	// not: the exact query must drop it, the filter-only query must keep it.
	line := refine.Polyline{Points: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}}
	rel, err := NewRelation("lines", smallTreeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Add(Object{ID: 1, Geometry: line, MBR: line.MBR()}); err != nil {
		t.Fatal(err)
	}
	window := geom.Rect{XL: 0.6, YL: 0.0, XU: 0.9, YU: 0.3} // below the diagonal
	if got := rel.WindowQuery(window, false); len(got) != 1 {
		t.Fatalf("filter-only query returned %d objects", len(got))
	}
	if got := rel.WindowQuery(window, true); len(got) != 0 {
		t.Fatalf("exact query returned %d objects, want 0", len(got))
	}
	// A geometry-less object is kept by the exact query.
	if err := rel.Add(Object{ID: 2, MBR: window}); err != nil {
		t.Fatal(err)
	}
	if got := rel.WindowQuery(window, true); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("exact query = %v", got)
	}
}

func buildJoinRelations(t *testing.T, n int) (*Relation, *Relation) {
	t.Helper()
	itemsR := datagen.Generate(datagen.Config{Kind: datagen.Streets, Count: n, Seed: 10})
	itemsS := datagen.Generate(datagen.Config{Kind: datagen.Rivers, Count: n, Seed: 11})
	r, err := BuildRelation("streets", LineObjectsFromItems(itemsR), smallTreeOpts(), false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildRelation("rivers", LineObjectsFromItems(itemsS), smallTreeOpts(), false)
	if err != nil {
		t.Fatal(err)
	}
	return r, s
}

func TestSpatialJoinMBRvsIDvsObject(t *testing.T) {
	r, s := buildJoinRelations(t, 2500)
	mbr, err := SpatialJoin(r, s, JoinOptions{Type: MBRJoin, Filter: join.Options{Method: join.SJ4, BufferBytes: 64 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	id, err := SpatialJoin(r, s, JoinOptions{Type: IDJoin, Filter: join.Options{Method: join.SJ4, BufferBytes: 64 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := SpatialJoin(r, s, JoinOptions{Type: ObjectJoin, Filter: join.Options{Method: join.SJ4, BufferBytes: 64 << 10}})
	if err != nil {
		t.Fatal(err)
	}

	if mbr.FilterPairs != len(mbr.Pairs) {
		t.Fatalf("MBR join must keep every filter pair: %d vs %d", mbr.FilterPairs, len(mbr.Pairs))
	}
	if len(id.Pairs) > len(mbr.Pairs) {
		t.Fatalf("refinement cannot add pairs: %d exact vs %d filter", len(id.Pairs), len(mbr.Pairs))
	}
	if len(id.Pairs) == 0 {
		t.Fatal("expected some exact intersections")
	}
	if len(obj.Pairs) != len(id.Pairs) {
		t.Fatalf("object join must report the same pairs as the ID join: %d vs %d", len(obj.Pairs), len(id.Pairs))
	}
	withPoints := 0
	for _, p := range obj.Pairs {
		if len(p.Points) > 0 {
			withPoints++
		}
	}
	if withPoints == 0 {
		t.Fatal("object join must compute intersection points for crossing polylines")
	}
	if mbr.Metrics.Comparisons == 0 || mbr.Estimate.TotalSeconds() <= 0 {
		t.Fatal("join must report metrics and a cost estimate")
	}
	if mbr.Type != MBRJoin || id.Type != IDJoin || obj.Type != ObjectJoin {
		t.Fatal("result types must echo the request")
	}
	if mbr.Method != join.SJ4 {
		t.Fatalf("result method = %v", mbr.Method)
	}

	// Cross-check the ID join against a brute-force refinement of the filter
	// result.
	wantExact := 0
	for _, p := range mbr.Pairs {
		ro, _ := r.Object(p.R)
		so, _ := s.Object(p.S)
		if ro.Geometry.IntersectsGeometry(so.Geometry) {
			wantExact++
		}
	}
	if wantExact != len(id.Pairs) {
		t.Fatalf("ID join found %d pairs, brute-force refinement %d", len(id.Pairs), wantExact)
	}
}

func TestSpatialJoinRefinementFallsBackToMBR(t *testing.T) {
	// Objects without geometry behave like rectangles in the refinement step.
	itemsR := datagen.Generate(datagen.Config{Kind: datagen.Regions, Count: 400, Seed: 3})
	itemsS := datagen.Generate(datagen.Config{Kind: datagen.Regions, Count: 400, Seed: 4})
	r, err := BuildRelation("r", MBRObjectsFromItems(itemsR), smallTreeOpts(), false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildRelation("s", RegionObjectsFromItems(itemsS), smallTreeOpts(), false)
	if err != nil {
		t.Fatal(err)
	}
	id, err := SpatialJoin(r, s, JoinOptions{Type: IDJoin, Filter: join.Options{Method: join.SJ2}})
	if err != nil {
		t.Fatal(err)
	}
	if id.FilterPairs != len(id.Pairs) {
		// Region geometries are exactly their MBRs, so refinement must not
		// drop anything.
		t.Fatalf("refinement dropped pairs: %d filter, %d exact", id.FilterPairs, len(id.Pairs))
	}
}

func TestSpatialJoinErrors(t *testing.T) {
	r, s := buildJoinRelations(t, 200)
	if _, err := SpatialJoin(nil, s, JoinOptions{}); !errors.Is(err, ErrNilRelation) {
		t.Fatalf("expected ErrNilRelation, got %v", err)
	}
	if _, err := SpatialJoin(r, nil, JoinOptions{}); !errors.Is(err, ErrNilRelation) {
		t.Fatalf("expected ErrNilRelation, got %v", err)
	}
	if _, err := SpatialJoin(r, s, JoinOptions{Type: JoinType(9)}); err == nil {
		t.Fatal("expected error for unknown join type")
	}
	other, err := NewRelation("other", rtree.Options{PageSize: storage.PageSize2K})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SpatialJoin(r, other, JoinOptions{}); err == nil {
		t.Fatal("expected error for page-size mismatch")
	}
}

func TestJoinTypeString(t *testing.T) {
	for _, jt := range []JoinType{MBRJoin, IDJoin, ObjectJoin, JoinType(9)} {
		if jt.String() == "" {
			t.Errorf("empty string for join type %d", int(jt))
		}
	}
}

func TestObjectConverters(t *testing.T) {
	items := []rtree.Item{{Rect: geom.Rect{XL: 0, YL: 0, XU: 1, YU: 2}, Data: 7}}
	lines := LineObjectsFromItems(items)
	if len(lines) != 1 || lines[0].ID != 7 {
		t.Fatalf("LineObjectsFromItems = %v", lines)
	}
	if _, ok := lines[0].Geometry.(refine.Polyline); !ok {
		t.Fatal("line objects must carry polyline geometry")
	}
	regions := RegionObjectsFromItems(items)
	if _, ok := regions[0].Geometry.(refine.Polygon); !ok {
		t.Fatal("region objects must carry polygon geometry")
	}
	plain := MBRObjectsFromItems(items)
	if plain[0].Geometry != nil {
		t.Fatal("MBR objects must not carry geometry")
	}
}
