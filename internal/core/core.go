// Package core ties the substrates together into the system the paper
// describes: spatial relations indexed by R*-trees, the filter step
// (MBR-spatial-join over the indexes, internal/join) and the refinement step
// (exact geometry tests, internal/refine).  It exposes the three join types
// of section 2.1 — MBR-, ID- and object-spatial-join — behind one call.
package core

import (
	"errors"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/metrics"
	"repro/internal/refine"
	"repro/internal/rtree"
)

// Object is one spatial object of a relation: a unique identifier, its exact
// geometry (optional) and the minimum bounding rectangle used by the filter
// step.
type Object struct {
	ID       int32
	Geometry refine.Geometry
	MBR      geom.Rect
}

// Relation is a named set of spatial objects indexed by an R*-tree over their
// MBRs, the standing assumption of the paper ("a spatial index exists on a
// spatial relation").
type Relation struct {
	name    string
	objects map[int32]Object
	tree    *rtree.Tree
}

// NewRelation creates an empty relation whose index uses the given tree
// options.
func NewRelation(name string, opts rtree.Options) (*Relation, error) {
	t, err := rtree.New(opts)
	if err != nil {
		return nil, fmt.Errorf("core: creating index for %q: %w", name, err)
	}
	return &Relation{name: name, objects: make(map[int32]Object), tree: t}, nil
}

// BuildRelation creates a relation holding the given objects.  With bulk set
// the index is packed with STR bulk loading instead of repeated insertion.
func BuildRelation(name string, objects []Object, opts rtree.Options, bulk bool) (*Relation, error) {
	if bulk {
		items := make([]rtree.Item, len(objects))
		objMap := make(map[int32]Object, len(objects))
		for i, o := range objects {
			if _, dup := objMap[o.ID]; dup {
				return nil, fmt.Errorf("core: duplicate object id %d in %q", o.ID, name)
			}
			items[i] = rtree.Item{Rect: o.MBR, Data: o.ID}
			objMap[o.ID] = o
		}
		t, err := rtree.BulkLoadSTR(opts, items)
		if err != nil {
			return nil, fmt.Errorf("core: bulk loading %q: %w", name, err)
		}
		return &Relation{name: name, objects: objMap, tree: t}, nil
	}
	rel, err := NewRelation(name, opts)
	if err != nil {
		return nil, err
	}
	for _, o := range objects {
		if err := rel.Add(o); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// Add inserts one object into the relation and its index.
func (r *Relation) Add(o Object) error {
	if _, dup := r.objects[o.ID]; dup {
		return fmt.Errorf("core: duplicate object id %d in %q", o.ID, r.name)
	}
	if !o.MBR.Valid() {
		return fmt.Errorf("core: object %d has an invalid MBR %v", o.ID, o.MBR)
	}
	r.objects[o.ID] = o
	r.tree.Insert(o.MBR, o.ID)
	return nil
}

// Remove deletes the object with the given identifier from the relation and
// its index.  It reports whether the object existed.
func (r *Relation) Remove(id int32) bool {
	o, ok := r.objects[id]
	if !ok {
		return false
	}
	delete(r.objects, id)
	return r.tree.Delete(o.MBR, id)
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Len returns the number of objects.
func (r *Relation) Len() int { return len(r.objects) }

// Tree returns the R*-tree index.
func (r *Relation) Tree() *rtree.Tree { return r.tree }

// Object returns the object with the given identifier.
func (r *Relation) Object(id int32) (Object, bool) {
	o, ok := r.objects[id]
	return o, ok
}

// WindowQuery returns the objects whose MBR intersects the window (the filter
// step).  With exact set, objects carrying a geometry are additionally tested
// against the window rectangle's exact extent (the refinement step); objects
// without geometry are kept.
func (r *Relation) WindowQuery(window geom.Rect, exact bool) []Object {
	var out []Object
	windowPoly := refine.RectPolygon(window)
	r.tree.Search(window, func(e rtree.Entry) bool {
		o, ok := r.objects[e.Data]
		if !ok {
			return true
		}
		if exact && o.Geometry != nil && !o.Geometry.IntersectsGeometry(windowPoly) {
			return true
		}
		out = append(out, o)
		return true
	})
	return out
}

// JoinType selects which of the three spatial joins of section 2.1 to
// compute.
type JoinType int

const (
	// MBRJoin reports pairs of identifiers whose MBRs intersect (the filter
	// step only; what the paper's evaluation measures).
	MBRJoin JoinType = iota
	// IDJoin reports pairs of identifiers whose exact geometries intersect
	// (filter step plus refinement step).
	IDJoin
	// ObjectJoin additionally computes the intersection geometry for
	// polyline/polyline pairs.
	ObjectJoin
)

// String implements fmt.Stringer.
func (t JoinType) String() string {
	switch t {
	case MBRJoin:
		return "MBR-spatial-join"
	case IDJoin:
		return "ID-spatial-join"
	case ObjectJoin:
		return "object-spatial-join"
	default:
		return fmt.Sprintf("JoinType(%d)", int(t))
	}
}

// JoinOptions configures a spatial join.
type JoinOptions struct {
	// Type selects MBR-, ID- or object-spatial-join.  Default MBRJoin.
	Type JoinType
	// Filter configures the R*-tree join used as the filter step.
	Filter join.Options
	// CostModel converts the counted costs into estimated times; the zero
	// value uses the paper's HP 720 constants.
	CostModel *costmodel.Model
}

// ResultPair is one pair of the join result.  For ObjectJoin of two polylines
// Points holds the intersection points.
type ResultPair struct {
	R, S   int32
	Points []geom.Point
}

// Result is the outcome of a spatial join.
type Result struct {
	// Pairs are the result pairs after the refinement step (if any).
	Pairs []ResultPair
	// FilterPairs is the number of candidates produced by the filter step.
	FilterPairs int
	// Metrics are the counted costs of the filter step.
	Metrics metrics.Snapshot
	// Estimate is the execution-time estimate of the filter step under the
	// paper's cost model.
	Estimate costmodel.Estimate
	// RefineOps is the counted refinement work (ID- and object-joins) in the
	// cost model's comparison unit; zero for MBRJoin.
	RefineOps int64
	// RefineSeconds prices RefineOps with the model's comparison constant:
	// the refinement step's CPU, reported separately from the filter step's
	// I/O and CPU the way Section 5 of the paper separates them.
	RefineSeconds float64
	// Type records the join type.
	Type JoinType
	// Method records the filter algorithm used.
	Method join.Method
	// Predicate records the join predicate the filter ran.
	Predicate join.Predicate
}

// ErrNilRelation is returned when a nil relation is passed to SpatialJoin.
var ErrNilRelation = errors.New("core: nil relation")

// SpatialJoin joins two relations.  The filter step runs over the R*-tree
// indexes with the configured algorithm and predicate; for IDJoin and
// ObjectJoin the candidates are refined with the exact geometries (objects
// without geometry are treated as rectangles).  The refinement test follows
// the predicate: intersection refines with the exact intersection test,
// within-distance with the exact distance test.  kNN candidates pass the
// refinement unchanged — the K nearest by MBR distance is the filter's
// answer, and exact-geometry re-ranking would need a candidate set larger
// than K, which the filter does not produce.
func SpatialJoin(r, s *Relation, opts JoinOptions) (*Result, error) {
	if r == nil || s == nil {
		return nil, ErrNilRelation
	}
	if opts.Type != MBRJoin && opts.Type != IDJoin && opts.Type != ObjectJoin {
		return nil, fmt.Errorf("core: unknown join type %v", opts.Type)
	}
	filterRes, err := join.Join(r.tree, s.tree, withMaterialised(opts.Filter))
	if err != nil {
		return nil, fmt.Errorf("core: filter step: %w", err)
	}
	model := costmodel.Default()
	if opts.CostModel != nil {
		model = *opts.CostModel
	}
	res := &Result{
		FilterPairs: filterRes.Count,
		Metrics:     filterRes.Metrics,
		Estimate:    model.Estimate(filterRes.Metrics.DiskAccesses(), r.tree.PageSize(), filterRes.Metrics.TotalComparisons()),
		Type:        opts.Type,
		Method:      opts.Filter.Method,
		Predicate:   opts.Filter.Predicate,
	}
	for _, p := range filterRes.Pairs {
		ro, okR := r.objects[p.R]
		so, okS := s.objects[p.S]
		if !okR || !okS {
			continue
		}
		switch opts.Type {
		case MBRJoin:
			res.Pairs = append(res.Pairs, ResultPair{R: p.R, S: p.S})
		case IDJoin:
			ok, ops := refinePair(ro, so, opts.Filter.Predicate)
			res.RefineOps += ops
			if ok {
				res.Pairs = append(res.Pairs, ResultPair{R: p.R, S: p.S})
			}
		case ObjectJoin:
			ok, ops := refinePair(ro, so, opts.Filter.Predicate)
			res.RefineOps += ops
			if !ok {
				continue
			}
			pair := ResultPair{R: p.R, S: p.S}
			if rl, ok := ro.Geometry.(refine.Polyline); ok {
				if sl, ok := so.Geometry.(refine.Polyline); ok {
					pair.Points = refine.IntersectionPoints(rl, sl)
				}
			}
			res.Pairs = append(res.Pairs, pair)
		default:
			return nil, fmt.Errorf("core: unknown join type %v", opts.Type)
		}
	}
	res.RefineSeconds = float64(res.RefineOps) * model.ComparisonSeconds
	return res, nil
}

// withMaterialised ensures the filter step materialises its pairs, which the
// refinement step needs, regardless of the caller's DiscardPairs setting.
func withMaterialised(o join.Options) join.Options {
	o.DiscardPairs = false
	return o
}

// refinePair applies the predicate's refinement test to one candidate pair
// and returns the verdict plus the counted refinement operations.  Objects
// without exact geometry fall back to their MBR's rectangle polygon, so a
// pair of two geometry-less objects is always accepted under intersection
// (the filter already proved the MBR predicate) and tested on MBR extent
// under within-distance.  kNN candidates pass unchanged at zero cost.
func refinePair(a, b Object, pred join.Predicate) (bool, int64) {
	if pred.Kind == join.PredKNN {
		return true, 0
	}
	ga, gb := a.Geometry, b.Geometry
	if ga == nil && gb == nil && pred.Kind == join.PredIntersects {
		return true, 0
	}
	if ga == nil {
		ga = refine.RectPolygon(a.MBR)
	}
	if gb == nil {
		gb = refine.RectPolygon(b.MBR)
	}
	if pred.Kind == join.PredWithinDist {
		return refine.DistanceWithin(ga, gb, pred.Epsilon)
	}
	return refine.IntersectsCost(ga, gb)
}

// geometriesIntersect is the boolean refinement test for intersection (kept
// for WindowQuery-style callers that do not account costs).
func geometriesIntersect(a, b Object) bool {
	ok, _ := refinePair(a, b, join.Intersects())
	return ok
}

// LineObjectsFromItems converts MBR items (as produced by internal/datagen
// for street and river maps) into objects whose exact geometry is the line
// segment spanning the MBR diagonal — exactly the segment the generator
// derived the MBR from.
func LineObjectsFromItems(items []rtree.Item) []Object {
	out := make([]Object, len(items))
	for i, it := range items {
		line := refine.Polyline{Points: []geom.Point{
			{X: it.Rect.XL, Y: it.Rect.YL},
			{X: it.Rect.XU, Y: it.Rect.YU},
		}}
		out[i] = Object{ID: it.Data, Geometry: line, MBR: it.Rect}
	}
	return out
}

// RegionObjectsFromItems converts MBR items of region maps into objects whose
// exact geometry is the rectangle polygon of the MBR.
func RegionObjectsFromItems(items []rtree.Item) []Object {
	out := make([]Object, len(items))
	for i, it := range items {
		out[i] = Object{ID: it.Data, Geometry: refine.RectPolygon(it.Rect), MBR: it.Rect}
	}
	return out
}

// MBRObjectsFromItems converts MBR items into geometry-less objects for pure
// filter-step workloads.
func MBRObjectsFromItems(items []rtree.Item) []Object {
	out := make([]Object, len(items))
	for i, it := range items {
		out[i] = Object{ID: it.Data, MBR: it.Rect}
	}
	return out
}
