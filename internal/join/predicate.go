package join

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// PredicateKind enumerates the join predicates the stack evaluates.
type PredicateKind int

const (
	// PredIntersects is the MBR-intersection join of the paper (section 2.1).
	// It is the zero value, so existing callers that never mention a
	// predicate keep running the exact code paths they always did.
	PredIntersects PredicateKind = iota
	// PredWithinDist reports pairs whose MBRs are within Euclidean distance
	// Epsilon of each other.  The filter runs the unchanged intersection
	// machinery over epsilon-expanded R-side rectangles (a Chebyshev
	// over-approximation that is exact on each axis), and leaf pairs get the
	// exact counted Euclidean test before they are emitted.
	PredWithinDist
	// PredKNN reports, for every R item, its K nearest S items by MBR
	// distance.  It replaces the synchronized descent with a best-first
	// traversal over node-pair MBR distance (see knn.go); ties are broken by
	// the smaller S identifier so the result set is deterministic.
	PredKNN
)

// Predicate selects the join condition evaluated by Join and ParallelJoin.
// The zero value is the intersection predicate, which keeps every existing
// call site — and its cost accounting — bit-identical.
type Predicate struct {
	// Kind selects the predicate.
	Kind PredicateKind
	// Epsilon is the distance threshold of PredWithinDist (>= 0; 0 reduces
	// to intersection-of-touching-MBRs semantics, still evaluated by the
	// distance machinery).
	Epsilon float64
	// K is the number of neighbours per R item for PredKNN (>= 1).
	K int
}

// Intersects returns the intersection predicate (the zero value, spelled
// out for call-site clarity).
func Intersects() Predicate { return Predicate{Kind: PredIntersects} }

// WithinDistance returns the within-distance predicate with threshold eps.
func WithinDistance(eps float64) Predicate {
	return Predicate{Kind: PredWithinDist, Epsilon: eps}
}

// NearestNeighbors returns the k-nearest-neighbours predicate.
func NearestNeighbors(k int) Predicate { return Predicate{Kind: PredKNN, K: k} }

// String implements fmt.Stringer.
func (p Predicate) String() string {
	switch p.Kind {
	case PredIntersects:
		return "intersects"
	case PredWithinDist:
		return fmt.Sprintf("within(%g)", p.Epsilon)
	case PredKNN:
		return fmt.Sprintf("knn(%d)", p.K)
	default:
		return fmt.Sprintf("Predicate(%d)", int(p.Kind))
	}
}

// ErrBadPredicate reports an invalid predicate configuration.
var ErrBadPredicate = errors.New("join: invalid predicate")

// ParsePredicate parses the textual predicate form shared by command-line
// flags and the HTTP wire: "intersects" (or the empty string, the backward
// compatible default), "within:EPS" and "knn:K".  The parsed predicate is
// validated before it is returned.
func ParsePredicate(s string) (Predicate, error) {
	switch {
	case s == "" || s == "intersects":
		return Intersects(), nil
	case strings.HasPrefix(s, "within:"):
		eps, err := strconv.ParseFloat(s[len("within:"):], 64)
		if err != nil {
			return Predicate{}, fmt.Errorf("%w: %q: %v", ErrBadPredicate, s, err)
		}
		p := WithinDistance(eps)
		if err := p.Validate(); err != nil {
			return Predicate{}, err
		}
		return p, nil
	case strings.HasPrefix(s, "knn:"):
		k, err := strconv.Atoi(s[len("knn:"):])
		if err != nil {
			return Predicate{}, fmt.Errorf("%w: %q: %v", ErrBadPredicate, s, err)
		}
		p := NearestNeighbors(k)
		if err := p.Validate(); err != nil {
			return Predicate{}, err
		}
		return p, nil
	default:
		return Predicate{}, fmt.Errorf("%w: unknown predicate %q", ErrBadPredicate, s)
	}
}

// Validate checks the predicate's parameters.
func (p Predicate) Validate() error {
	switch p.Kind {
	case PredIntersects:
		return nil
	case PredWithinDist:
		if math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) || p.Epsilon < 0 {
			return fmt.Errorf("%w: within-distance epsilon %v", ErrBadPredicate, p.Epsilon)
		}
		return nil
	case PredKNN:
		if p.K < 1 {
			return fmt.Errorf("%w: kNN k %d (must be >= 1)", ErrBadPredicate, p.K)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadPredicate, int(p.Kind))
	}
}

// expandEps returns the rectangle expanded by eps on every side, or the
// rectangle itself when eps is zero — the free-function form of the
// executor's expandR, used by the parallel planner, which tests R-side
// rectangles before any executor exists.
func expandEps(r geom.Rect, eps float64) geom.Rect {
	if eps == 0 {
		return r
	}
	return geom.ExpandRect(r, eps)
}

// expandR applies the predicate's epsilon expansion to an R-side rectangle.
// The within-distance join is, at the filter level, the intersection join
// over (expand(R, eps), S): every test an R rectangle takes part in sees the
// expanded rectangle, and the rest of the machinery — restriction, sorting,
// plane sweep, read schedules, task splitting — is inherited unchanged.  For
// the intersection predicate eps is 0 and the rectangle is returned as is,
// keeping that path bit-identical.
func (e *executor) expandR(r geom.Rect) geom.Rect {
	if e.eps == 0 {
		return r
	}
	return geom.ExpandRect(r, e.eps)
}

// leafTest evaluates the join condition between two data rectangles: the
// exact counted Euclidean distance test for the within-distance predicate,
// the plain intersection test otherwise.  The expanded-rectangle filter only
// over-approximates at corners (it is a Chebyshev ball, the predicate a
// Euclidean one), so every emitted pair must pass this exact test.
func (e *executor) leafTest(r, s geom.Rect) (bool, int64) {
	if e.eps > 0 {
		return geom.WithinDistSquaredCost(r, s, e.eps2)
	}
	return geom.IntersectsCost(r, s)
}
