package join

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// kNN join: for every R item, report its K nearest S items by the minimum
// Euclidean distance between the minimum bounding rectangles.
//
// The traversal is best-first over node pairs: a priority queue keyed by the
// squared MBR distance of the pair (ties broken by insertion sequence, so the
// schedule is deterministic) repeatedly pops the closest pair, descends it,
// and stops once the popped distance exceeds every item's current kth-best
// distance — from then on no remaining pair can improve any result heap,
// because a child pair is never closer than its parent.  Each R item carries
// a bounded max-heap of its best (distance, S id) candidates; ties on
// distance are broken towards the smaller S identifier, which makes the
// result set independent of the traversal order and therefore identical
// across sequential, parallel and sharded executions.
//
// Distances stay squared end to end (no square root is ever taken or
// charged); every distance computation is charged through the counted
// geom.RectDistSquaredCost and every heap admission test charges one
// threshold comparison, extending the paper's comparison-based CPU measure
// to the new predicate.

// nnCand is one candidate neighbour in an item's result heap.
type nnCand struct {
	d2  float64
	sID int32
}

// worse reports whether a ranks strictly after b in the (distance, S id)
// order — the order the K nearest are selected under.
func (a nnCand) worse(b nnCand) bool {
	if a.d2 != b.d2 {
		return a.d2 > b.d2
	}
	return a.sID > b.sID
}

// nnHeap is a bounded max-heap over the (distance, S id) order: the root is
// the worst of the current candidates, so a full heap admits a new candidate
// exactly when the candidate ranks before the root.
type nnHeap []nnCand

func (h nnHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].worse(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (h nnHeap) siftDown(i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && h[l].worse(h[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && h[r].worse(h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// knnItem is the per-R-item result state.
type knnItem struct {
	id   int32
	heap nnHeap
}

// tau returns the item's pruning bound: the distance of its kth-best
// candidate, or +Inf while the heap is not full.
func (it *knnItem) tau(k int) float64 {
	if len(it.heap) < k {
		return math.Inf(1)
	}
	return it.heap[0].d2
}

// offer admits the candidate if it ranks among the item's K best, charging
// one threshold comparison for the admission test (the distance computation
// itself is charged by the caller).
func (it *knnItem) offer(c nnCand, k int, comps *int64) {
	if len(it.heap) < k {
		it.heap = append(it.heap, c)
		it.heap.siftUp(len(it.heap) - 1)
		return
	}
	*comps++
	if !c.worse(it.heap[0]) && c != it.heap[0] {
		it.heap[0] = c
		it.heap.siftDown(0)
	}
}

// knnPair is one entry of the best-first queue.
type knnPair struct {
	d2  float64
	seq int64
	rn  *rtree.Node
	sn  *rtree.Node
}

// knnQueue is a min-heap of node pairs keyed by (distance, insertion
// sequence).  The sequence tie-break pins the pop order of equidistant
// pairs, keeping the read schedule deterministic.
type knnQueue []knnPair

func (q knnQueue) before(i, j int) bool {
	if q[i].d2 != q[j].d2 {
		return q[i].d2 < q[j].d2
	}
	return q[i].seq < q[j].seq
}

func (q *knnQueue) push(p knnPair) {
	*q = append(*q, p)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(i, parent) {
			break
		}
		(*q)[i], (*q)[parent] = (*q)[parent], (*q)[i]
		i = parent
	}
}

func (q *knnQueue) pop() knnPair {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	*q = h
	i := 0
	for {
		best := i
		if l := 2*i + 1; l < len(h) && q.before(l, best) {
			best = l
		}
		if r := 2*i + 2; r < len(h) && q.before(r, best) {
			best = r
		}
		if best == i {
			return top
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// knnState bundles the traversal state of one kNN run over one R subtree.
type knnState struct {
	k     int
	items []knnItem
	slot  map[int32]int32 // R item id -> index into items
	queue knnQueue
	seq   int64
}

// registerItems collects the R items of the subtree rooted at rn in
// depth-first entry order, so the emission order is deterministic and
// independent of the traversal.
func (st *knnState) registerItems(rn *rtree.Node) {
	if rn.IsLeaf() {
		for i := range rn.Entries {
			id := rn.Entries[i].Data
			st.slot[id] = int32(len(st.items))
			st.items = append(st.items, knnItem{id: id})
		}
		return
	}
	for i := range rn.Entries {
		st.registerItems(rn.Entries[i].Child)
	}
}

// tauMax returns the exact current maximum pruning bound over all items.
// The popped distances are non-decreasing (a child pair is at least as far
// apart as its parent), so once a popped distance exceeds this bound the
// traversal can stop: no remaining pair can improve any heap.
func (st *knnState) tauMax() float64 {
	worst := 0.0
	for i := range st.items {
		if t := st.items[i].tau(st.k); t > worst {
			worst = t
			if math.IsInf(worst, 1) {
				return worst
			}
		}
	}
	return worst
}

// runKNN executes the kNN join with the best-first node-pair traversal.
// The read-schedule methods SJ1-SJ5 do not apply here: the priority order
// *is* the read schedule.
func (e *executor) runKNN() {
	e.knnFrom(e.r.Root(), e.s.Root())
}

// knnFrom joins the R subtree rooted at rn against the S subtree rooted at
// sn and emits K nearest neighbours for every R item of the subtree.  Pages
// are read when their pair is popped — the queue's priority order is the
// read schedule, and pairs the stop bound prunes are never charged.
// ParallelJoin calls it once per R root entry, so the per-task results are
// disjoint in R and merge by concatenation under any schedule.
func (e *executor) knnFrom(rn, sn *rtree.Node) {
	st := knnState{
		k:    e.opts.Predicate.K,
		slot: make(map[int32]int32),
	}
	st.registerItems(rn)
	if len(st.items) == 0 {
		return
	}

	d2, cost := geom.RectDistSquaredCost(rn.MBR(), sn.MBR())
	e.local.Comparisons += cost
	st.queue.push(knnPair{d2: d2, seq: st.seq, rn: rn, sn: sn})
	st.seq++

	for len(st.queue) > 0 {
		if e.cancel.cancelled() {
			return
		}
		p := st.queue.pop()
		if p.d2 > st.tauMax() {
			break
		}
		e.r.AccessNode(e.tracker, p.rn)
		e.s.AccessNode(e.tracker, p.sn)
		e.knnProcess(&st, p)
		e.local.FlushTo(e.metrics)
	}

	// Emit in registration (depth-first R entry) order, each item's
	// neighbours ascending by (distance, S id).
	for i := range st.items {
		it := &st.items[i]
		sort.Slice(it.heap, func(a, b int) bool { return it.heap[b].worse(it.heap[a]) })
		for _, c := range it.heap {
			e.emit(Pair{R: it.id, S: c.sID})
		}
	}
	e.local.FlushTo(e.metrics)
}

// knnProcess expands one popped node pair: leaf-leaf pairs feed the result
// heaps, directory levels push their child pairs keyed by entry-rectangle
// distance (the entry rectangles are in the already-read parent, so pushing
// costs no I/O).
func (e *executor) knnProcess(st *knnState, p knnPair) {
	rLeaf, sLeaf := p.rn.IsLeaf(), p.sn.IsLeaf()
	switch {
	case rLeaf && sLeaf:
		var comps int64
		for ir := range p.rn.Entries {
			er := &p.rn.Entries[ir]
			it := &st.items[st.slot[er.Data]]
			for is := range p.sn.Entries {
				es := &p.sn.Entries[is]
				d2, cost := geom.RectDistSquaredCost(er.Rect, es.Rect)
				comps += cost
				it.offer(nnCand{d2: d2, sID: es.Data}, st.k, &comps)
			}
		}
		e.local.Comparisons += comps
		e.local.PairsTested += int64(len(p.rn.Entries) * len(p.sn.Entries))
	case rLeaf:
		// Heights differ: only the S side descends.
		rMBR := p.rn.MBR()
		var comps int64
		for is := range p.sn.Entries {
			es := &p.sn.Entries[is]
			d2, cost := geom.RectDistSquaredCost(rMBR, es.Rect)
			comps += cost
			st.queue.push(knnPair{d2: d2, seq: st.seq, rn: p.rn, sn: es.Child})
			st.seq++
		}
		e.local.Comparisons += comps
	case sLeaf:
		sMBR := p.sn.MBR()
		var comps int64
		for ir := range p.rn.Entries {
			er := &p.rn.Entries[ir]
			d2, cost := geom.RectDistSquaredCost(er.Rect, sMBR)
			comps += cost
			st.queue.push(knnPair{d2: d2, seq: st.seq, rn: er.Child, sn: p.sn})
			st.seq++
		}
		e.local.Comparisons += comps
	default:
		var comps int64
		for ir := range p.rn.Entries {
			er := &p.rn.Entries[ir]
			for is := range p.sn.Entries {
				es := &p.sn.Entries[is]
				d2, cost := geom.RectDistSquaredCost(er.Rect, es.Rect)
				comps += cost
				st.queue.push(knnPair{d2: d2, seq: st.seq, rn: er.Child, sn: es.Child})
				st.seq++
			}
		}
		e.local.Comparisons += comps
	}
}

// nestedLoopKNN is the index-free kNN baseline and oracle: every R item is
// tested against every S item, each keeping its K best candidates.
func (e *executor) nestedLoopKNN() {
	var rLeaves, sLeaves []*rtree.Node
	e.r.Walk(func(n *rtree.Node) {
		if n.IsLeaf() {
			rLeaves = append(rLeaves, n)
		}
	})
	e.s.Walk(func(n *rtree.Node) {
		if n.IsLeaf() {
			sLeaves = append(sLeaves, n)
		}
	})
	k := e.opts.Predicate.K
	var items []knnItem
	for _, rn := range rLeaves {
		if e.cancel.cancelled() {
			return
		}
		e.r.AccessNode(e.tracker, rn)
		base := len(items)
		for i := range rn.Entries {
			items = append(items, knnItem{id: rn.Entries[i].Data})
		}
		for _, sn := range sLeaves {
			if e.cancel.cancelled() {
				return
			}
			e.s.AccessNode(e.tracker, sn)
			var comps int64
			for ir := range rn.Entries {
				it := &items[base+ir]
				for is := range sn.Entries {
					es := &sn.Entries[is]
					d2, cost := geom.RectDistSquaredCost(rn.Entries[ir].Rect, es.Rect)
					comps += cost
					it.offer(nnCand{d2: d2, sID: es.Data}, k, &comps)
				}
			}
			e.local.Comparisons += comps
			e.local.FlushTo(e.metrics)
		}
	}
	for i := range items {
		it := &items[i]
		sort.Slice(it.heap, func(a, b int) bool { return it.heap[b].worse(it.heap[a]) })
		for _, c := range it.heap {
			e.emit(Pair{R: it.id, S: c.sID})
		}
	}
	e.local.FlushTo(e.metrics)
}
