package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// These property tests pin down invariants that must hold for every join
// algorithm regardless of data distribution, buffer size or tree shape:
// the result set depends only on the data, never on the physical
// configuration.

// randomTreePair builds two trees over rectangles derived from a quick.Check
// seed, using a tiny node capacity so that even small inputs produce
// multi-level trees.
func randomTreePair(seed int64, n int) (*rtree.Tree, *rtree.Tree, []rtree.Item, []rtree.Item) {
	rng := rand.New(rand.NewSource(seed))
	opts := rtree.Options{PageSize: 8 * storage.EntrySize}
	makeItems := func(count int) []rtree.Item {
		items := make([]rtree.Item, count)
		for i := range items {
			x, y := rng.Float64(), rng.Float64()
			items[i] = rtree.Item{
				Rect: geom.Rect{XL: x, YL: y, XU: x + rng.Float64()*0.1, YU: y + rng.Float64()*0.1},
				Data: int32(i),
			}
		}
		return items
	}
	itemsR := makeItems(n)
	itemsS := makeItems(n)
	r := rtree.MustNew(opts)
	s := rtree.MustNew(opts)
	r.InsertItems(itemsR)
	s.InsertItems(itemsS)
	return r, s, itemsR, itemsS
}

// TestJoinResultIndependentOfPhysicalConfiguration: the same pair set must be
// produced for every method, buffer size and path-buffer setting.
func TestJoinResultIndependentOfPhysicalConfiguration(t *testing.T) {
	f := func(seed int64, sizeSeed uint8) bool {
		n := 20 + int(sizeSeed)%180
		r, s, itemsR, itemsS := randomTreePair(seed, n)
		want := bruteForce(itemsR, itemsS)
		for _, method := range Methods {
			for _, buf := range []int{0, 4 << 10, 256 << 10} {
				for _, path := range []bool{false, true} {
					res, err := Join(r, s, Options{Method: method, BufferBytes: buf, UsePathBuffer: path})
					if err != nil {
						return false
					}
					got := asPairSet(res.Pairs)
					if len(got) != len(want) {
						return false
					}
					for p := range want {
						if !got[p] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestJoinCommutativity: joining S with R yields the mirrored pair set.
func TestJoinCommutativity(t *testing.T) {
	f := func(seed int64) bool {
		r, s, _, _ := randomTreePair(seed, 150)
		a, err := Join(r, s, Options{Method: SJ4, BufferBytes: 64 << 10})
		if err != nil {
			return false
		}
		b, err := Join(s, r, Options{Method: SJ4, BufferBytes: 64 << 10})
		if err != nil {
			return false
		}
		if a.Count != b.Count {
			return false
		}
		mirror := make(map[Pair]bool, b.Count)
		for _, p := range b.Pairs {
			mirror[Pair{R: p.S, S: p.R}] = true
		}
		for _, p := range a.Pairs {
			if !mirror[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestSortMergeAgreesWithTreeJoin: the index-free sort-merge baseline and the
// R*-tree join compute the same result on arbitrary data.
func TestSortMergeAgreesWithTreeJoin(t *testing.T) {
	f := func(seed int64) bool {
		r, s, itemsR, itemsS := randomTreePair(seed, 200)
		tree, err := Join(r, s, Options{Method: SJ4, BufferBytes: 64 << 10})
		if err != nil {
			return false
		}
		merge := SortMergeJoin(itemsR, itemsS, nil)
		if tree.Count != merge.Count {
			return false
		}
		got := asPairSet(merge.Pairs)
		for _, p := range tree.Pairs {
			if !got[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestComparisonsAreDeterministic: repeating the same join produces exactly
// the same cost counters, which the experiment harness relies on.
func TestComparisonsAreDeterministic(t *testing.T) {
	r, s, _, _ := randomTreePair(99, 300)
	for _, method := range Methods {
		a, err := Join(r, s, Options{Method: method, BufferBytes: 32 << 10, UsePathBuffer: true, DiscardPairs: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Join(r, s, Options{Method: method, BufferBytes: 32 << 10, UsePathBuffer: true, DiscardPairs: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Metrics != b.Metrics {
			t.Fatalf("%v: metrics differ between identical runs:\n%+v\n%+v", method, a.Metrics, b.Metrics)
		}
	}
}

// TestBufferOnlyAffectsIO: CPU comparisons must not depend on the buffer
// size; I/O must not depend on anything but the buffer configuration.
func TestBufferOnlyAffectsIO(t *testing.T) {
	r, s, _, _ := randomTreePair(7, 400)
	var comparisons []int64
	for _, buf := range []int{0, 8 << 10, 512 << 10} {
		res, err := Join(r, s, Options{Method: SJ4, BufferBytes: buf, DiscardPairs: true})
		if err != nil {
			t.Fatal(err)
		}
		comparisons = append(comparisons, res.Metrics.TotalComparisons())
	}
	for i := 1; i < len(comparisons); i++ {
		if comparisons[i] != comparisons[0] {
			t.Fatalf("comparisons changed with the buffer size: %v", comparisons)
		}
	}
}
