package join

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// TestBufferedBuildJoinsIdentical: trees built through the Hilbert insertion
// buffer have a different (equally valid) shape than plain dynamic builds,
// but every join algorithm must produce the bit-identical result set over
// them — the shape is an index property, the result is a data property.
func TestBufferedBuildJoinsIdentical(t *testing.T) {
	itemsR := datagen.Generate(datagen.Config{Kind: datagen.Streets, Count: 2500, Seed: 51})
	itemsS := datagen.Generate(datagen.Config{Kind: datagen.Rivers, Count: 2500, Seed: 52})

	plainR := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	plainS := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	plainR.InsertItems(itemsR)
	plainS.InsertItems(itemsS)

	bufR, err := rtree.BuildBuffered(rtree.Options{PageSize: storage.PageSize1K}, itemsR)
	if err != nil {
		t.Fatal(err)
	}
	bufS, err := rtree.BuildBuffered(rtree.Options{PageSize: storage.PageSize1K}, itemsS)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []*rtree.Tree{bufR, bufS} {
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("buffered-built tree invalid: %v", err)
		}
	}

	for _, method := range Methods {
		t.Run(fmt.Sprint(method), func(t *testing.T) {
			want, err := Join(plainR, plainS, Options{Method: method, BufferBytes: 64 << 10})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Join(bufR, bufS, Options{Method: method, BufferBytes: 64 << 10})
			if err != nil {
				t.Fatal(err)
			}
			if got.Count != want.Count {
				t.Fatalf("buffered-built join found %d pairs, plain-built %d", got.Count, want.Count)
			}
			if gh, wh := sortedPairHash(got.Pairs), sortedPairHash(want.Pairs); gh != wh {
				t.Fatalf("result sets differ: hash %d vs %d", gh, wh)
			}
		})
	}

	// Mixed pairing (buffered R against plain S) through the parallel
	// executor, so the estimator consumes the buffered tree's maintained
	// catalog statistics too.
	want, err := Join(plainR, plainS, Options{Method: SJ4, BufferBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range PartitionStrategies {
		res, err := ParallelJoin(bufR, plainS, ParallelOptions{
			Options:  Options{Method: SJ4, BufferBytes: 64 << 10},
			Workers:  4,
			Strategy: strategy,
		})
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		if res.Count != want.Count || sortedPairHash(res.Pairs) != sortedPairHash(want.Pairs) {
			t.Fatalf("%v: parallel join over buffered-built tree diverged", strategy)
		}
	}
	if walks := bufR.CatalogRecollections() + plainS.CatalogRecollections(); walks != 0 {
		t.Fatalf("planning performed %d catalog recollection walks, want 0", walks)
	}
}
