package join

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// buildPair constructs two small R*-trees over synthetic street and river
// data; sizes are kept small so the full matrix of algorithms can be verified
// against the brute-force reference in a few hundred milliseconds.
func buildPair(t testing.TB, nR, nS, pageSize int) (*rtree.Tree, *rtree.Tree, []rtree.Item, []rtree.Item) {
	t.Helper()
	itemsR := datagen.Generate(datagen.Config{Kind: datagen.Streets, Count: nR, Seed: 42})
	itemsS := datagen.Generate(datagen.Config{Kind: datagen.Rivers, Count: nS, Seed: 43})
	r := rtree.MustNew(rtree.Options{PageSize: pageSize})
	s := rtree.MustNew(rtree.Options{PageSize: pageSize})
	r.InsertItems(itemsR)
	s.InsertItems(itemsS)
	return r, s, itemsR, itemsS
}

// bruteForce computes the reference result set.
func bruteForce(itemsR, itemsS []rtree.Item) map[Pair]bool {
	want := make(map[Pair]bool)
	for _, a := range itemsR {
		for _, b := range itemsS {
			if a.Rect.Intersects(b.Rect) {
				want[Pair{R: a.Data, S: b.Data}] = true
			}
		}
	}
	return want
}

func asPairSet(pairs []Pair) map[Pair]bool {
	set := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		set[p] = true
	}
	return set
}

func TestAllMethodsProduceTheSameResult(t *testing.T) {
	r, s, itemsR, itemsS := buildPair(t, 3000, 3000, storage.PageSize1K)
	want := bruteForce(itemsR, itemsS)

	for _, method := range append([]Method{NestedLoop}, Methods...) {
		res, err := Join(r, s, Options{Method: method, BufferBytes: 64 << 10})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		got := asPairSet(res.Pairs)
		if len(got) != len(want) {
			t.Fatalf("%v: %d pairs, want %d", method, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%v: missing pair %v", method, p)
			}
		}
		if res.Count != len(res.Pairs) {
			t.Fatalf("%v: Count=%d but %d pairs materialised", method, res.Count, len(res.Pairs))
		}
		if res.Method != method {
			t.Fatalf("result method = %v, want %v", res.Method, method)
		}
	}
}

func TestJoinNoDuplicatePairs(t *testing.T) {
	r, s, _, _ := buildPair(t, 2000, 2000, storage.PageSize1K)
	for _, method := range Methods {
		res, err := Join(r, s, Options{Method: method, BufferBytes: 32 << 10})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[Pair]bool, len(res.Pairs))
		for _, p := range res.Pairs {
			if seen[p] {
				t.Fatalf("%v: duplicate pair %v", method, p)
			}
			seen[p] = true
		}
	}
}

func TestJoinErrors(t *testing.T) {
	r, _, _, _ := buildPair(t, 100, 100, storage.PageSize1K)
	if _, err := Join(nil, r, Options{}); !errors.Is(err, ErrNilTree) {
		t.Fatalf("expected ErrNilTree, got %v", err)
	}
	if _, err := Join(r, nil, Options{}); !errors.Is(err, ErrNilTree) {
		t.Fatalf("expected ErrNilTree, got %v", err)
	}
	other := rtree.MustNew(rtree.Options{PageSize: storage.PageSize2K})
	if _, err := Join(r, other, Options{}); !errors.Is(err, ErrPageSizeMismatch) {
		t.Fatalf("expected ErrPageSizeMismatch, got %v", err)
	}
	if _, err := Join(r, r, Options{Method: Method(99)}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestJoinEmptyTrees(t *testing.T) {
	empty := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	full := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	full.Insert(geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}, 1)
	for _, method := range append([]Method{NestedLoop}, Methods...) {
		for _, pair := range [][2]*rtree.Tree{{empty, full}, {full, empty}, {empty, empty}} {
			res, err := Join(pair[0], pair[1], Options{Method: method})
			if err != nil {
				t.Fatalf("%v: %v", method, err)
			}
			if res.Count != 0 {
				t.Fatalf("%v: expected empty result, got %d", method, res.Count)
			}
		}
	}
}

func TestJoinDisjointTrees(t *testing.T) {
	r := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	s := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		x, y := rng.Float64()*0.4, rng.Float64()*0.4
		r.Insert(geom.Rect{XL: x, YL: y, XU: x + 0.01, YU: y + 0.01}, int32(i))
		x, y = 0.6+rng.Float64()*0.4, 0.6+rng.Float64()*0.4
		s.Insert(geom.Rect{XL: x, YL: y, XU: x + 0.01, YU: y + 0.01}, int32(i))
	}
	for _, method := range Methods {
		res, err := Join(r, s, Options{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 0 {
			t.Fatalf("%v: expected no pairs for disjoint data, got %d", method, res.Count)
		}
	}
}

func TestSelfJoinFindsAllIdentityPairs(t *testing.T) {
	// Test (D) of the paper joins a relation with itself; every object must
	// at least pair with itself.
	items := datagen.Generate(datagen.Config{Kind: datagen.Rivers, Count: 1500, Seed: 7})
	r := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	s := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	r.InsertItems(items)
	s.InsertItems(items)
	res, err := Join(r, s, Options{Method: SJ4, BufferBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	got := asPairSet(res.Pairs)
	for _, it := range items {
		if !got[Pair{R: it.Data, S: it.Data}] {
			t.Fatalf("self join missing identity pair for %d", it.Data)
		}
	}
}

func TestDiscardPairsAndOnPair(t *testing.T) {
	r, s, _, _ := buildPair(t, 1000, 1000, storage.PageSize1K)
	streamed := 0
	res, err := Join(r, s, Options{
		Method:       SJ4,
		DiscardPairs: true,
		OnPair:       func(Pair) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("DiscardPairs left %d pairs materialised", len(res.Pairs))
	}
	if res.Count == 0 || streamed != res.Count {
		t.Fatalf("streamed %d pairs, count %d", streamed, res.Count)
	}
	if res.Metrics.PairsReported != int64(res.Count) {
		t.Fatalf("metrics reported %d pairs, count %d", res.Metrics.PairsReported, res.Count)
	}
}

func TestExternalCollectorReceivesCounts(t *testing.T) {
	r, s, _, _ := buildPair(t, 500, 500, storage.PageSize1K)
	c := metrics.NewCollector()
	c.AddComparisons(123) // pre-existing counts must not leak into the result
	res, err := Join(r, s, Options{Method: SJ1, Collector: c})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Comparisons <= 0 {
		t.Fatal("expected comparisons in result metrics")
	}
	if c.Comparisons() != res.Metrics.Comparisons+123 {
		t.Fatalf("collector holds %d comparisons, result says %d (+123 pre-existing)",
			c.Comparisons(), res.Metrics.Comparisons)
	}
}

func TestSJ2UsesFewerComparisonsThanSJ1(t *testing.T) {
	r, s, _, _ := buildPair(t, 6000, 6000, storage.PageSize2K)
	res1, err := Join(r, s, Options{Method: SJ1, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Join(r, s, Options{Method: SJ2, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.Comparisons >= res1.Metrics.Comparisons {
		t.Fatalf("SJ2 comparisons (%d) should be below SJ1 (%d)",
			res2.Metrics.Comparisons, res1.Metrics.Comparisons)
	}
	// Paper Table 3: the improvement factor is roughly 4.6-8.9; on synthetic
	// data we only require a clear improvement (> 2x).
	if factor := float64(res1.Metrics.Comparisons) / float64(res2.Metrics.Comparisons); factor < 2 {
		t.Errorf("restriction improvement factor %.2f is implausibly small", factor)
	}
}

func TestSweepJoinUsesFewerJoinComparisonsThanSJ2(t *testing.T) {
	// Paper Table 4 (version II): with restriction, the sorted intersection
	// test further reduces the join comparisons.
	r, s, _, _ := buildPair(t, 6000, 6000, storage.PageSize4K)
	res2, err := Join(r, s, Options{Method: SJ2, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := Join(r, s, Options{Method: SJ4, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res4.Metrics.Comparisons >= res2.Metrics.Comparisons {
		t.Fatalf("SJ4 join comparisons (%d) should be below SJ2 (%d)",
			res4.Metrics.Comparisons, res2.Metrics.Comparisons)
	}
	if res4.Metrics.SortComparisons == 0 {
		t.Fatal("SJ4 must charge sorting comparisons")
	}
	if res4.Metrics.NodeSorts == 0 {
		t.Fatal("SJ4 must record node sorts")
	}
	if res2.Metrics.SortComparisons != 0 {
		t.Fatal("SJ2 must not charge sorting comparisons")
	}
}

func TestLargerBufferNeverIncreasesDiskAccesses(t *testing.T) {
	r, s, _, _ := buildPair(t, 4000, 4000, storage.PageSize1K)
	for _, method := range []Method{SJ1, SJ4} {
		prev := int64(-1)
		for _, bufBytes := range []int{0, 8 << 10, 32 << 10, 128 << 10, 512 << 10} {
			res, err := Join(r, s, Options{Method: method, BufferBytes: bufBytes, DiscardPairs: true})
			if err != nil {
				t.Fatal(err)
			}
			accesses := res.Metrics.DiskAccesses()
			if prev >= 0 && accesses > prev {
				t.Fatalf("%v: disk accesses increased from %d to %d when the buffer grew to %d bytes",
					method, prev, accesses, bufBytes)
			}
			prev = accesses
		}
	}
}

func TestBufferedJoinApproachesOptimum(t *testing.T) {
	// With a buffer comparable to the tree sizes, the number of disk accesses
	// of SJ4 must approach the optimum |R| + |S| (every required page read
	// once) -- the headline I/O result of the paper (Table 6).
	r, s, _, _ := buildPair(t, 4000, 4000, storage.PageSize1K)
	optimum := int64(r.Stats().TotalPages() + s.Stats().TotalPages())
	res, err := Join(r, s, Options{Method: SJ4, BufferBytes: 1 << 20, UsePathBuffer: true, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.DiskAccesses(); got > optimum {
		t.Fatalf("SJ4 with a large buffer performed %d accesses, optimum is %d", got, optimum)
	}
}

func TestSJ4NeedsFewerAccessesThanSJ1SmallBuffer(t *testing.T) {
	r, s, _, _ := buildPair(t, 6000, 6000, storage.PageSize1K)
	res1, err := Join(r, s, Options{Method: SJ1, BufferBytes: 32 << 10, UsePathBuffer: true, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := Join(r, s, Options{Method: SJ4, BufferBytes: 32 << 10, UsePathBuffer: true, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res4.Metrics.DiskAccesses() > res1.Metrics.DiskAccesses() {
		t.Fatalf("SJ4 accesses (%d) should not exceed SJ1 accesses (%d) for a small buffer",
			res4.Metrics.DiskAccesses(), res1.Metrics.DiskAccesses())
	}
}

func TestPathBufferReducesAccesses(t *testing.T) {
	r, s, _, _ := buildPair(t, 3000, 3000, storage.PageSize1K)
	without, err := Join(r, s, Options{Method: SJ1, BufferBytes: 0, UsePathBuffer: false, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Join(r, s, Options{Method: SJ1, BufferBytes: 0, UsePathBuffer: true, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Metrics.DiskAccesses() > without.Metrics.DiskAccesses() {
		t.Fatalf("path buffer increased accesses: %d vs %d",
			with.Metrics.DiskAccesses(), without.Metrics.DiskAccesses())
	}
	if with.Metrics.PathHits == 0 {
		t.Fatal("expected path-buffer hits")
	}
}

func TestMethodAndPolicyStrings(t *testing.T) {
	for _, m := range append([]Method{NestedLoop, Method(77)}, Methods...) {
		if m.String() == "" {
			t.Errorf("empty string for method %d", int(m))
		}
	}
	for _, p := range []HeightPolicy{PolicyWindowPerPair, PolicyBatchedWindows, PolicySweepOrder, HeightPolicy(9)} {
		if p.String() == "" {
			t.Errorf("empty string for policy %d", int(p))
		}
	}
}
