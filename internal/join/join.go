// Package join implements the spatial-join algorithms of the paper: the
// straightforward R*-tree join (SpatialJoin1), its CPU-tuned variants
// (search-space restriction and the sorted intersection test), the I/O-tuned
// read schedules (local plane-sweep order, pinning, local z-order) and the
// policies for joining trees of different heights, plus a nested-loop
// baseline without index support.
//
// All algorithms compute the MBR-spatial-join: the set of pairs of object
// identifiers whose minimum bounding rectangles satisfy the configured join
// predicate — intersection (section 2.1), within-distance (epsilon-expanded
// rectangles through the same machinery) or k-nearest-neighbours (a
// best-first traversal over node-pair MBR distance).  CPU cost is charged to
// a metrics.Collector as floating-point comparisons and I/O cost as page
// accesses through a shared LRU buffer, mirroring the paper's cost measures.
//
//repro:measured
package join

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/rtree"
)

// Method selects the join algorithm.
type Method int

const (
	// NestedLoop is the baseline without index support: every object of R is
	// tested against every object of S.
	NestedLoop Method = iota
	// SJ1 is the straightforward R*-tree join of section 4.1: synchronized
	// depth-first traversal, every entry of one node tested against every
	// entry of the other.
	SJ1
	// SJ2 adds the search-space restriction of section 4.2: only entries
	// intersecting the intersection rectangle of the two parent entries are
	// tested against each other.
	SJ2
	// SJ3 adds spatial sorting and the plane-sweep intersection test of
	// section 4.2 and uses the sweep output order as the read schedule
	// ("local plane-sweep order", section 4.3).
	SJ3
	// SJ4 is SJ3 plus pinning: after joining a pair of directory pages, the
	// page whose rectangle intersects the most unprocessed rectangles of the
	// other node is pinned in the buffer and completely processed first.
	// This is the algorithm the paper recommends.
	SJ4
	// SJ5 orders the read schedule by the z-order value of the intersection
	// rectangles' centres instead of the plane-sweep order (with pinning).
	SJ5
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case NestedLoop:
		return "NestedLoop"
	case SJ1:
		return "SpatialJoin1"
	case SJ2:
		return "SpatialJoin2"
	case SJ3:
		return "SpatialJoin3"
	case SJ4:
		return "SpatialJoin4"
	case SJ5:
		return "SpatialJoin5"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists all tree-based join algorithms in the order the paper
// introduces them.
var Methods = []Method{SJ1, SJ2, SJ3, SJ4, SJ5}

// HeightPolicy selects how a directory node of the taller tree is joined with
// a data node of the shorter tree (section 4.4).
type HeightPolicy int

const (
	// PolicyWindowPerPair performs one window query on the directory subtree
	// for every intersecting pair of entries (policy (a)).
	PolicyWindowPerPair HeightPolicy = iota
	// PolicyBatchedWindows performs all window queries that fall into one
	// subtree in a single traversal, so each page of the subtree is read at
	// most once (policy (b); the paper's recommendation).
	PolicyBatchedWindows
	// PolicySweepOrder performs the window queries in local plane-sweep order
	// of the intersecting pairs (policy (c)).
	PolicySweepOrder
)

// String implements fmt.Stringer.
func (p HeightPolicy) String() string {
	switch p {
	case PolicyWindowPerPair:
		return "policy(a)"
	case PolicyBatchedWindows:
		return "policy(b)"
	case PolicySweepOrder:
		return "policy(c)"
	default:
		return fmt.Sprintf("HeightPolicy(%d)", int(p))
	}
}

// Pair is one result of the MBR-spatial-join: the identifiers of two objects
// whose minimum bounding rectangles intersect.
type Pair struct {
	R, S int32
}

// Options configures a join run.
type Options struct {
	// Method selects the algorithm.  The default is SJ4, the paper's best
	// performing variant.
	Method Method
	// BufferBytes is the size of the shared LRU buffer in bytes (0 disables
	// buffering, reproducing the paper's "buffer size = 0" rows).
	BufferBytes int
	// UsePathBuffer enables the per-tree path buffer in addition to the LRU
	// buffer, as the paper's R*-tree implementation does.
	UsePathBuffer bool
	// HeightPolicy selects the strategy for joining trees of different
	// heights.  The default is PolicyBatchedWindows (policy (b)).
	HeightPolicy HeightPolicy
	// Collector receives the cost counters.  If nil a fresh collector is used
	// and returned in the result.
	Collector *metrics.Collector
	// DiscardPairs suppresses materialising the result pairs; only the count
	// is reported.  Benchmarks use it to avoid measuring slice growth.
	DiscardPairs bool
	// DisableRestriction turns off the search-space restriction in the
	// sweep-based joins (SJ3-SJ5).  It reproduces "version (I)" of the
	// paper's Table 4, which isolates the effect of spatial sorting from the
	// effect of restricting the search space.
	DisableRestriction bool
	// Predicate selects the join condition.  The zero value is the
	// MBR-intersection predicate of the paper; see PredWithinDist and
	// PredKNN for the distance-based extensions.
	Predicate Predicate
	// OnPair, if non-nil, is called for every result pair in the order the
	// algorithm produces them (before any materialisation).
	OnPair func(Pair)
	// Context, if non-nil, cancels the join: the traversal polls the
	// context's Done signal (mirrored into an atomic flag) at node-pair
	// granularity, abandons the descent and returns ErrCancelled wrapping
	// the context's cause, so errors.Is against context.Canceled and
	// context.DeadlineExceeded distinguishes cancellation from a deadline.
	// Partial results are discarded deterministically — a cancelled join
	// never returns a Result — though an OnPair callback may have observed
	// a prefix of the pair stream.
	Context context.Context
	// PageReaderR and PageReaderS attach real page sources for the two trees
	// (keyed by their node identifiers, as rtree.TreeStore serves them).
	// When set, every counted disk read of the sequential join also performs
	// a physical page read — the measured-I/O mode of the disk experiments.
	// A physical read failure aborts the join with the wrapped error.
	PageReaderR buffer.PageReader
	PageReaderS buffer.PageReader
	// PageCache, if non-nil, attaches a shared byte cache below the counted
	// LRU: counted misses of trees with an attached PageReader are served
	// from the cache when possible and only cache misses reach the pager.
	// Leaving it nil keeps the strict counted-miss == physical-read
	// invariant of the disk experiments.
	PageCache *buffer.PageCache
}

// Result is the outcome of a join.
type Result struct {
	// Pairs holds the result pairs unless Options.DiscardPairs was set.
	Pairs []Pair
	// Count is the number of result pairs.
	Count int
	// Metrics is a snapshot of the counters accumulated during the join.
	Metrics metrics.Snapshot
	// Method records the algorithm that produced the result.
	Method Method
	// Predicate records the join condition the result answers.
	Predicate Predicate
	// WorkerMetrics holds one counter snapshot per worker for a ParallelJoin
	// (nil for sequential joins and for parallel runs that fell back to the
	// sequential algorithm).  The experiments use it to report load-balance
	// skew across workers.
	WorkerMetrics []metrics.Snapshot
	// WorkerTasks[i] is the number of sub-join tasks worker i executed
	// (pulled from the shared queue, or assigned by the static schedule); it
	// is aligned with WorkerMetrics.
	WorkerTasks []int
	// Strategy records the partition strategy of a ParallelJoin (zero for
	// sequential joins and sequential fallbacks).
	Strategy PartitionStrategy
	// WorkerSteals[i] is the number of successful steal operations worker i
	// performed as a thief (PartitionStealing only; nil otherwise).
	WorkerSteals []int
	// StolenTasks is the total number of tasks that changed owners through
	// stealing (PartitionStealing only).
	StolenTasks int
	// WorkerEstSeconds[i] is the cost-model estimate of worker i's initial
	// schedule (the sum of its tasks' estimates), published by the
	// estimate-driven strategies (LPT, spatial, stealing; nil otherwise).
	// Comparing it against the measured per-worker costs gives the
	// estimator's error; for PartitionStealing it describes the initial
	// queues, before any run-time rebalancing.
	WorkerEstSeconds []float64
	// PlanMetrics is the planning-only slice of Metrics for a ParallelJoin:
	// the root and split reads plus the qualifying-pair comparisons charged
	// before any worker ran.  Metrics minus PlanMetrics is the sum of
	// WorkerMetrics; on the sequential fallback (no workers) PlanMetrics
	// equals Metrics.
	PlanMetrics metrics.Snapshot
}

// workerSkew folds one value per worker with fn and returns max/mean over
// the workers (1.0 = perfectly balanced), or 0 when there are no workers or
// the values sum to zero.
func (r *Result) workerSkew(fn func(metrics.Snapshot) int64) float64 {
	if len(r.WorkerMetrics) == 0 {
		return 0
	}
	var sum, max int64
	for _, m := range r.WorkerMetrics {
		v := fn(m)
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(r.WorkerMetrics)) / float64(sum)
}

// TaskSkew returns max/mean of the per-worker task counts of a ParallelJoin
// (1.0 = perfectly balanced, 0 for sequential results).
func (r *Result) TaskSkew() float64 {
	if len(r.WorkerTasks) == 0 {
		return 0
	}
	var sum, max int
	for _, n := range r.WorkerTasks {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(r.WorkerTasks)) / float64(sum)
}

// ComparisonSkew returns max/mean of the per-worker join comparisons.
func (r *Result) ComparisonSkew() float64 {
	return r.workerSkew(func(m metrics.Snapshot) int64 { return m.Comparisons })
}

// DiskSkew returns max/mean of the per-worker disk accesses.
func (r *Result) DiskSkew() float64 {
	return r.workerSkew(func(m metrics.Snapshot) int64 { return m.DiskAccesses() })
}

// PairSkew returns max/mean of the per-worker reported pairs.
func (r *Result) PairSkew() float64 {
	return r.workerSkew(func(m metrics.Snapshot) int64 { return m.PairsReported })
}

// TimeSkew returns max/mean of the per-worker estimated execution times
// under the given cost model — the load-balance measure the parallel
// critical path actually depends on.  Comparison and disk skew each watch
// one cost component; a worker can trade I/O against CPU (locality-driven
// schedules do), so only the combined time says whether the workers finish
// together.  It returns 0 for sequential results or a zero-cost run.
func (r *Result) TimeSkew(model costmodel.Model, pageSize int) float64 {
	if len(r.WorkerMetrics) == 0 {
		return 0
	}
	var sum, max float64
	for _, m := range r.WorkerMetrics {
		v := model.EstimateSnapshot(m, pageSize).TotalSeconds()
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	return max * float64(len(r.WorkerMetrics)) / sum
}

// WorkerBufferHitRate returns the share of worker node accesses satisfied
// from a buffer (LRU or path), the locality measure of the partitioning: a
// schedule whose tasks share subtrees hits its per-worker buffer partition
// more often.  It returns a NaN-free 0 when no worker metrics are present
// or no worker performed any node access.
func (r *Result) WorkerBufferHitRate() float64 {
	var hits, reads int64
	for _, m := range r.WorkerMetrics {
		hits += m.BufferHits + m.PathHits
		reads += m.DiskReads
	}
	total := hits + reads
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// WorkerBufferHitRates returns one buffer hit rate per worker, aligned with
// WorkerMetrics.  A worker that performed no node accesses — its region was
// empty, held only non-intersecting pairs, or was stolen before it ran —
// reports a NaN-free 0 instead of 0/0.
func (r *Result) WorkerBufferHitRates() []float64 {
	if len(r.WorkerMetrics) == 0 {
		return nil
	}
	rates := make([]float64, len(r.WorkerMetrics))
	for i, m := range r.WorkerMetrics {
		hits := m.BufferHits + m.PathHits
		if total := hits + m.DiskReads; total > 0 {
			rates[i] = float64(hits) / float64(total)
		}
	}
	return rates
}

// Errors returned by Join.
var (
	ErrNilTree          = errors.New("join: nil tree")
	ErrPageSizeMismatch = errors.New("join: trees must use the same page size")
)

// Join computes the MBR-spatial-join of the two trees.
func Join(r, s *rtree.Tree, opts Options) (*Result, error) {
	if r == nil || s == nil {
		return nil, ErrNilTree
	}
	if r.PageSize() != s.PageSize() {
		return nil, fmt.Errorf("%w: %d vs %d", ErrPageSizeMismatch, r.PageSize(), s.PageSize())
	}
	if err := opts.Predicate.Validate(); err != nil {
		return nil, err
	}
	if opts.Context != nil && opts.Context.Err() != nil {
		return nil, cancelErr(opts.Context)
	}
	collector := opts.Collector
	if collector == nil {
		collector = metrics.NewCollector()
	}
	before := collector.Snapshot()

	lru := buffer.NewLRUForBytes(opts.BufferBytes, r.PageSize())
	tracker := buffer.NewTracker(lru, collector, r.PageSize(), opts.UsePathBuffer)
	if opts.PageReaderR != nil {
		tracker.SetPageReader(r.ID(), opts.PageReaderR)
	}
	if opts.PageReaderS != nil {
		tracker.SetPageReader(s.ID(), opts.PageReaderS)
	}
	if opts.PageCache != nil {
		tracker.SetPageCache(opts.PageCache)
	}

	watch := newCancelWatch(opts.Context)
	defer watch.stop()
	ar := arenaPool.Get().(*arena)
	e := &executor{
		r:       r,
		s:       s,
		tracker: tracker,
		metrics: collector,
		opts:    opts,
		arena:   ar,
		cancel:  watch,
		onPair:  opts.OnPair,
		discard: opts.DiscardPairs,
	}
	if opts.Predicate.Kind == PredWithinDist {
		e.eps = opts.Predicate.Epsilon
		e.eps2 = e.eps * e.eps
	}

	switch {
	case opts.Predicate.Kind == PredKNN:
		// The kNN predicate replaces the synchronized descent with a
		// best-first traversal over node-pair MBR distance; the read-schedule
		// variants SJ1-SJ5 do not apply.  NestedLoop remains the index-free
		// oracle baseline.
		if opts.Method == NestedLoop {
			e.nestedLoopKNN()
		} else {
			e.runKNN()
		}
	case opts.Method == NestedLoop:
		e.nestedLoop()
	case opts.Method == SJ1:
		e.runSJ1()
	case opts.Method == SJ2:
		e.runSJ2()
	case opts.Method == SJ3, opts.Method == SJ5:
		e.runSweep(opts.Method)
	case opts.Method == SJ4:
		e.runSweep(SJ4)
	default:
		arenaPool.Put(ar)
		return nil, fmt.Errorf("join: unknown method %v", opts.Method)
	}
	e.local.FlushTo(collector)
	arenaPool.Put(ar)

	if opts.Context != nil && opts.Context.Err() != nil {
		return nil, cancelErr(opts.Context)
	}
	if err := tracker.ReadErr(); err != nil {
		return nil, fmt.Errorf("join: physical page read failed: %w", err)
	}
	res := &Result{Method: opts.Method, Predicate: opts.Predicate, Pairs: e.pairs, Count: e.count}
	res.Metrics = collector.Snapshot().Sub(before)
	return res, nil
}

// executor bundles the state shared by all join algorithms of one run.
//
// Cost accounting goes through the plain (non-atomic) local batch counter,
// which every node-pair routine flushes to the shared collector when it is
// done; only the buffer tracker charges the collector directly, once per
// page access.  Scratch space comes from the per-depth arena, so after the
// first descent the join loop performs no allocations at all (results are
// appended to pairs unless Options.DiscardPairs was set).
type executor struct {
	r, s    *rtree.Tree
	tracker *buffer.Tracker
	metrics *metrics.Collector
	local   metrics.Local
	opts    Options
	arena   *arena
	cancel  *cancelWatch
	sorter  idxSorter
	zsorter zkeySorter

	// eps and eps2 cache the within-distance threshold (and its square) of
	// Options.Predicate; both stay 0 for every other predicate, which keeps
	// expandR an identity and the intersection paths bit-identical.
	eps, eps2 float64

	onPair  func(Pair)
	discard bool
	pairs   []Pair
	count   int
}

// emit reports one result pair.
func (e *executor) emit(p Pair) {
	e.count++
	e.local.PairsReported++
	if e.onPair != nil {
		e.onPair(p)
	}
	if !e.discard {
		e.pairs = append(e.pairs, p)
	}
}

// sortIdxByXL stable-sorts idx so the referenced entries ascend by their
// lower x-corner, charging one node sort and the exact key comparisons the
// entry-slice sort it replaces would have charged.
func (e *executor) sortIdxByXL(idx []int32, entries []rtree.Entry) {
	e.local.NodeSorts++
	e.sorter.idx = idx
	e.sorter.entries = entries
	e.sorter.comps = 0
	stableSort(&e.sorter, len(idx))
	e.local.SortComparisons += e.sorter.comps
	e.sorter.idx, e.sorter.entries = nil, nil
}

// accessRoots charges the initial read of both root pages, which every
// tree-based join performs exactly once.
func (e *executor) accessRoots() {
	e.r.AccessNode(e.tracker, e.r.Root())
	e.s.AccessNode(e.tracker, e.s.Root())
}
