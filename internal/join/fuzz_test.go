package join

import (
	"encoding/binary"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Native Go fuzz targets for the pure scheduling kernels.  CI runs each as a
// short fuzzing smoke (-fuzztime per target) on top of the seed corpora
// below; locally, `go test -fuzz FuzzContiguousSplit ./internal/join` digs
// deeper.

// fuzzPairs decodes a byte string into join pairs, 8 bytes per pair.
func fuzzPairs(data []byte) []Pair {
	pairs := make([]Pair, 0, len(data)/8)
	for len(data) >= 8 {
		pairs = append(pairs, Pair{
			R: int32(binary.LittleEndian.Uint32(data[:4])),
			S: int32(binary.LittleEndian.Uint32(data[4:8])),
		})
		data = data[8:]
	}
	return pairs
}

// FuzzSortPairs checks that SortPairs is a permutation (the multiset of
// pairs is preserved) and actually sorts by (R, S) for arbitrary inputs,
// including duplicates and negative identifiers.
func FuzzSortPairs(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{
		2, 0, 0, 0, 1, 0, 0, 0,
		1, 0, 0, 0, 2, 0, 0, 0,
		1, 0, 0, 0, 1, 0, 0, 0,
		255, 255, 255, 255, 0, 0, 0, 0, // negative R
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		pairs := fuzzPairs(data)
		want := make(map[Pair]int, len(pairs))
		for _, p := range pairs {
			want[p]++
		}
		SortPairs(pairs)
		for i := 1; i < len(pairs); i++ {
			a, b := pairs[i-1], pairs[i]
			if a.R > b.R || (a.R == b.R && a.S > b.S) {
				t.Fatalf("pairs[%d]=%v > pairs[%d]=%v", i-1, a, i, b)
			}
		}
		for _, p := range pairs {
			want[p]--
			if want[p] < 0 {
				t.Fatalf("pair %v appears more often after sorting", p)
			}
		}
		for p, n := range want {
			if n != 0 {
				t.Fatalf("pair %v lost by sorting (%d missing)", p, n)
			}
		}
	})
}

// FuzzContiguousSplit checks the spatial cut on arbitrary estimate vectors
// (one byte per task, so zeros and heavy skews both occur) and bin counts:
// the result must always be a partition of the input order into exactly
// bins non-empty contiguous runs, in order — every task scheduled exactly
// once, no duplicates, prefix structure intact.
func FuzzContiguousSplit(f *testing.F) {
	f.Add([]byte{10, 20, 30}, uint8(2))
	f.Add([]byte{0, 0, 0, 0}, uint8(4))
	f.Add([]byte{255, 0, 0, 0, 0, 0, 0, 255}, uint8(3))
	f.Add([]byte{1}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, binSeed uint8) {
		n := len(data)
		if n == 0 {
			return
		}
		est := make([]float64, n)
		order := make([]int32, n)
		for i, v := range data {
			est[i] = float64(v)
			order[i] = int32(i)
		}
		bins := 1 + int(binSeed)%n
		split := contiguousSplit(order, est, bins)
		if len(split) != bins {
			t.Fatalf("got %d bins, want %d", len(split), bins)
		}
		pos := 0
		for b, run := range split {
			if len(run) == 0 {
				t.Fatalf("bin %d is empty (n=%d bins=%d)", b, n, bins)
			}
			for _, i := range run {
				if pos >= n || order[pos] != i {
					t.Fatalf("bin %d breaks the order at position %d", b, pos)
				}
				pos++
			}
		}
		if pos != n {
			t.Fatalf("split covers %d of %d tasks", pos, n)
		}
	})
}

// fuzzItems decodes a byte string into R*-tree items, 4 bytes per item
// (centre x, centre y, width, height quantised to the unit square), capped
// at max items so tree builds stay fuzz-speed.
func fuzzItems(data []byte, max int) []rtree.Item {
	var items []rtree.Item
	for i := 0; len(data) >= 4 && i < max; i++ {
		x := float64(data[0]) / 256
		y := float64(data[1]) / 256
		w := float64(data[2]%32) / 256
		h := float64(data[3]%32) / 256
		items = append(items, rtree.Item{
			Rect: geom.Rect{XL: x, YL: y, XU: x + w, YU: y + h},
			Data: int32(i),
		})
		data = data[4:]
	}
	return items
}

// fuzzJoinPair builds the two trees and runs the predicate join with the
// method selected by methodByte, returning the sorted pairs.
func fuzzJoinPair(t *testing.T, rItems, sItems []rtree.Item, pred Predicate, methodByte uint8) []Pair {
	t.Helper()
	r, err := rtree.Build(rtree.Options{PageSize: 1024}, rItems, false)
	if err != nil {
		t.Fatalf("building R: %v", err)
	}
	s, err := rtree.Build(rtree.Options{PageSize: 1024}, sItems, false)
	if err != nil {
		t.Fatalf("building S: %v", err)
	}
	method := Method(int(SJ1) + int(methodByte)%5)
	res, err := Join(r, s, Options{Method: method, Predicate: pred})
	if err != nil {
		t.Fatalf("join %v %v: %v", method, pred, err)
	}
	return res.Pairs
}

// FuzzWithinDistance pins the within-distance join — every sequential method,
// arbitrary rectangle sets and radii — against the naive oracle.
func FuzzWithinDistance(f *testing.F) {
	f.Add([]byte{10, 10, 4, 4, 200, 200, 8, 8}, []byte{12, 12, 4, 4}, uint8(20), uint8(0))
	f.Add([]byte{0, 0, 0, 0}, []byte{255, 255, 0, 0}, uint8(255), uint8(3))
	f.Add([]byte{128, 128, 31, 31, 1, 1, 1, 1}, []byte{130, 130, 2, 2, 50, 50, 10, 10}, uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, rData, sData []byte, epsByte, methodByte uint8) {
		rItems := fuzzItems(rData, 48)
		sItems := fuzzItems(sData, 48)
		if len(rItems) == 0 || len(sItems) == 0 {
			return
		}
		eps := float64(epsByte) / 256 * 0.3
		got := fuzzJoinPair(t, rItems, sItems, WithinDistance(eps), methodByte)
		comparePairSets(t, "fuzz within-distance", got, bruteForceDistance(rItems, sItems, eps))
	})
}

// FuzzKNN pins the kNN join against the naive oracle, including the
// deterministic (distance, S-id) tie-break on duplicate rectangles.
func FuzzKNN(f *testing.F) {
	f.Add([]byte{10, 10, 4, 4, 200, 200, 8, 8}, []byte{12, 12, 4, 4, 40, 40, 2, 2}, uint8(2), uint8(0))
	f.Add([]byte{0, 0, 0, 0}, []byte{255, 255, 0, 0, 255, 255, 0, 0}, uint8(5), uint8(4))
	f.Add([]byte{128, 128, 31, 31}, []byte{130, 130, 2, 2, 130, 130, 2, 2, 50, 50, 10, 10}, uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, rData, sData []byte, kByte, methodByte uint8) {
		rItems := fuzzItems(rData, 48)
		sItems := fuzzItems(sData, 48)
		if len(rItems) == 0 || len(sItems) == 0 {
			return
		}
		k := 1 + int(kByte)%6
		got := fuzzJoinPair(t, rItems, sItems, NearestNeighbors(k), methodByte)
		comparePairSets(t, "fuzz kNN", got, bruteForceKNN(rItems, sItems, k))
	})
}
