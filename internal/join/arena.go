package join

import (
	"sync"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/sweep"
)

// frame is the scratch space one recursion depth of the synchronized descent
// needs: the restricted entry indices of both nodes, the gathered rectangle
// sequences for the plane sweep, the qualifying pairs, and the bookkeeping of
// the pinning schedule.  Frames are reused across all node pairs visited at
// the same depth, so the steady-state join performs no allocations.
type frame struct {
	rIdx, sIdx     []int32
	rRects, sRects []geom.Rect
	pairs          []sweep.Pair
	zkeys          []uint64
	processed      []bool
	degR, degS     []int32
}

// heightsScratch is the scratch space of joinLeafWithDirectory.  The routine
// never nests (it descends via window queries, not via itself), so one
// instance per executor suffices regardless of the depth it is entered at.
// batch carries the per-depth active sets of the batched subtree searches of
// policy (b), so a run issuing one batch search per directory entry stops
// allocating active sets per node visited.
type heightsScratch struct {
	leafIdx, dirIdx     []int32
	leafRects, dirRects []geom.Rect
	pairs               []sweep.Pair
	queries             []geom.Rect
	ids                 []int32
	// exact keeps the unexpanded leaf rectangles aligned with queries, so
	// the within-distance predicate can run its exact Euclidean test on the
	// original geometry when a batched window query reports a hit.
	exact []geom.Rect
	batch rtree.BatchScratch
}

// arena bundles all scratch buffers of one join run.  Arenas are recycled
// through a sync.Pool so repeated joins (benchmarks, experiment sweeps,
// parallel workers) reach a steady state without any per-run slice growth.
type arena struct {
	frames  []*frame
	heights heightsScratch
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// frame returns the scratch frame for the given recursion depth, growing the
// per-depth list on first use (tree heights are single digits, so this
// settles after the first descent).
func (a *arena) frame(depth int) *frame {
	for len(a.frames) <= depth {
		a.frames = append(a.frames, new(frame))
	}
	return a.frames[depth]
}

// appendAllIdx appends 0..n-1 to idx, the no-restriction index set.
//
//repro:hotpath
func appendAllIdx(idx []int32, n int) []int32 {
	for i := 0; i < n; i++ {
		idx = append(idx, int32(i))
	}
	return idx
}

// gatherRects appends the rectangles of the selected entries, in index order.
//
//repro:hotpath
func gatherRects(dst []geom.Rect, entries []rtree.Entry, idx []int32) []geom.Rect {
	for _, i := range idx {
		dst = append(dst, entries[i].Rect)
	}
	return dst
}

// gatherRectsEps appends the epsilon-expanded rectangles of the selected
// entries — the R-side view of the within-distance filter.  With eps == 0 it
// is gatherRects.
//
//repro:hotpath
func gatherRectsEps(dst []geom.Rect, entries []rtree.Entry, idx []int32, eps float64) []geom.Rect {
	if eps == 0 {
		return gatherRects(dst, entries, idx)
	}
	for _, i := range idx {
		dst = append(dst, geom.ExpandRect(entries[i].Rect, eps))
	}
	return dst
}

// --- stable index sort ------------------------------------------------------
//
// The paper sorts the entries of a node by the lower x-corner every time the
// node takes part in a sweep, and charges the comparisons to the "sorting"
// cost measure (Table 4).  The seed implementation used sort.SliceStable over
// a copy of the entry slice, which allocates (closure, reflection header,
// symmerge bookkeeping) on every node pair and moves 48-byte entries around.
// This implementation sorts a reusable []int32 index vector instead and
// replicates sort.SliceStable's exact algorithm -- insertion sort on blocks
// of 20 followed by SymMerge (Kim & Kutzner) -- so the number of key
// comparisons charged is bit-identical to the slice sort it replaces.

// sortBlockSize matches the insertion-sort block size of the stdlib's stable
// sort; changing it would change the charged comparison counts.
const sortBlockSize = 20

// lessSwapper is the minimal sorting contract.  It is instantiated with
// concrete pointer types only, so all calls are devirtualised and the sorters
// can live inside the executor without escaping.
type lessSwapper interface {
	Less(i, j int) bool
	Swap(i, j int)
}

// idxSorter stable-sorts idx so that entries[idx[k]].Rect.XL ascends,
// counting every key comparison in Comps.
type idxSorter struct {
	idx     []int32
	entries []rtree.Entry
	comps   int64
}

func (d *idxSorter) Less(i, j int) bool {
	d.comps++
	return d.entries[d.idx[i]].Rect.XL < d.entries[d.idx[j]].Rect.XL
}

func (d *idxSorter) Swap(i, j int) { d.idx[i], d.idx[j] = d.idx[j], d.idx[i] }

// zkeySorter stable-sorts the qualifying pairs of one node pair by the
// z-order key of their intersection rectangles (SpatialJoin5's read
// schedule).  The z-order sort is a scheduling decision, not a cost the paper
// charges, so it counts nothing.
type zkeySorter struct {
	pairs []sweep.Pair
	zkeys []uint64
}

func (d *zkeySorter) Less(i, j int) bool { return d.zkeys[i] < d.zkeys[j] }

func (d *zkeySorter) Swap(i, j int) {
	d.pairs[i], d.pairs[j] = d.pairs[j], d.pairs[i]
	d.zkeys[i], d.zkeys[j] = d.zkeys[j], d.zkeys[i]
}

// stableSort sorts data[0:n] stably: insertion sort on blocks of
// sortBlockSize, then repeated SymMerge rounds, mirroring the stdlib's
// sort.SliceStable so comparison counts (and therefore the charged sorting
// cost) match it exactly.
func stableSort[T lessSwapper](data T, n int) {
	blockSize := sortBlockSize
	a, b := 0, blockSize
	for b <= n {
		insertionSort(data, a, b)
		a = b
		b += blockSize
	}
	insertionSort(data, a, n)

	for blockSize < n {
		a, b = 0, 2*blockSize
		for b <= n {
			symMerge(data, a, a+blockSize, b)
			a = b
			b += 2 * blockSize
		}
		if m := a + blockSize; m < n {
			symMerge(data, a, m, n)
		}
		blockSize *= 2
	}
}

func insertionSort[T lessSwapper](data T, a, b int) {
	for i := a + 1; i < b; i++ {
		for j := i; j > a && data.Less(j, j-1); j-- {
			data.Swap(j, j-1)
		}
	}
}

// symMerge merges the two sorted subsequences data[a:m] and data[m:b] using
// the SymMerge algorithm (Kim & Kutzner, "Stable Minimum Storage Merging by
// Symmetric Comparisons"), with the stdlib's special cases for subsequences
// of length one.
func symMerge[T lessSwapper](data T, a, m, b int) {
	if m-a == 1 {
		// data[a] into data[m:b]: binary search for the lowest index i such
		// that data[i] >= data[a], then rotate.
		i := m
		j := b
		for i < j {
			h := int(uint(i+j) >> 1)
			if data.Less(h, a) {
				i = h + 1
			} else {
				j = h
			}
		}
		for k := a; k < i-1; k++ {
			data.Swap(k, k+1)
		}
		return
	}
	if b-m == 1 {
		// data[m] into data[a:m]: binary search for the lowest index i such
		// that data[i] > data[m], then rotate.
		i := a
		j := m
		for i < j {
			h := int(uint(i+j) >> 1)
			if !data.Less(m, h) {
				i = h + 1
			} else {
				j = h
			}
		}
		for k := m; k > i; k-- {
			data.Swap(k, k-1)
		}
		return
	}

	mid := int(uint(a+b) >> 1)
	n := mid + m
	var start, r int
	if m > mid {
		start = n - b
		r = mid
	} else {
		start = a
		r = m
	}
	p := n - 1
	for start < r {
		c := int(uint(start+r) >> 1)
		if !data.Less(p-c, c) {
			start = c + 1
		} else {
			r = c
		}
	}
	end := n - start
	if start < m && m < end {
		rotate(data, start, m, end)
	}
	if a < start && start < mid {
		symMerge(data, a, start, mid)
	}
	if mid < end && end < b {
		symMerge(data, mid, end, b)
	}
}

// rotate exchanges the consecutive blocks data[a:m] and data[m:b] using the
// juggling scheme of the stdlib implementation (no comparisons).
func rotate[T lessSwapper](data T, a, m, b int) {
	i := m - a
	j := b - m
	for i != j {
		if i > j {
			swapRange(data, m-i, m, j)
			i -= j
		} else {
			swapRange(data, m-i, m+j-i, i)
			j -= i
		}
	}
	swapRange(data, m-i, m, i)
}

func swapRange[T lessSwapper](data T, a, b, n int) {
	for i := 0; i < n; i++ {
		data.Swap(a+i, b+i)
	}
}
