package join

import (
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/sweep"
	"repro/internal/zorder"
)

// runSweep executes SpatialJoin3, 4 or 5: search-space restriction plus the
// sorted intersection test, with the read schedule given by the plane-sweep
// output order (SJ3), the plane-sweep order with pinning (SJ4) or the local
// z-order with pinning (SJ5).
func (e *executor) runSweep(method Method) {
	e.accessRoots()
	rootRect, ok := e.rootRect()
	if !ok {
		return
	}
	e.sweepJoin(e.r.Root(), e.s.Root(), rootRect, method, 0)
}

// sweepJoin joins two nodes using spatial sorting and the plane-sweep
// intersection test (section 4.2) and schedules the child reads according to
// the selected method (section 4.3).  All scratch space comes from the
// arena's frame for this depth, so in steady state the routine allocates
// nothing; the accumulated costs are flushed to the shared collector once
// when the node pair is done.
//
//repro:hotpath
func (e *executor) sweepJoin(nr, ns *rtree.Node, rect geom.Rect, method Method, depth int) {
	// One cancellation poll per node pair (see Options.Context): the descent
	// unwinds without reading further pages and Join discards the partials.
	if e.cancel.cancelled() {
		return
	}
	if handled := e.handleHeightDifference(nr, ns, &rect); handled {
		e.local.FlushTo(e.metrics)
		return
	}

	// Restrict the search space to the parents' intersection rectangle, then
	// sort the surviving entries by their lower x-corner.  In the paper the
	// entries are sorted each time a page is read into the buffer; the
	// sorting comparisons are charged separately (Table 4).  Version (I) of
	// Table 4 skips the restriction to isolate the effect of sorting.  The
	// entries themselves are never copied or reordered: the sort permutes a
	// reusable index vector.
	f := e.arena.frame(depth)
	if e.opts.DisableRestriction {
		f.rIdx = appendAllIdx(f.rIdx[:0], len(nr.Entries))
		f.sIdx = appendAllIdx(f.sIdx[:0], len(ns.Entries))
	} else {
		f.rIdx = e.restrictIdxEps(nr.Entries, rect, f.rIdx[:0], e.eps)
		f.sIdx = e.restrictIdx(ns.Entries, rect, f.sIdx[:0])
	}
	if len(f.rIdx) == 0 || len(f.sIdx) == 0 {
		e.local.FlushTo(e.metrics)
		return
	}
	// Sorting by the lower x-corner is expansion-invariant (the expansion
	// shifts every key by the same eps), so the sort runs on the stored
	// entries for every predicate; only the gathered sweep input differs.
	e.sortIdxByXL(f.rIdx, nr.Entries)
	e.sortIdxByXL(f.sIdx, ns.Entries)
	f.rRects = gatherRectsEps(f.rRects[:0], nr.Entries, f.rIdx, e.eps)
	f.sRects = gatherRects(f.sRects[:0], ns.Entries, f.sIdx)

	// The sorted intersection test produces the qualifying pairs in local
	// plane-sweep order.
	f.pairs = sweep.AppendPairs(f.rRects, f.sRects, &e.local, f.pairs[:0])
	e.local.PairsTested += int64(len(f.pairs))
	if len(f.pairs) == 0 {
		e.local.FlushTo(e.metrics)
		return
	}

	if nr.IsLeaf() && ns.IsLeaf() {
		if e.eps > 0 {
			// The sweep filtered on expanded rectangles (a Chebyshev ball);
			// the predicate is Euclidean, so corner pairs need the exact
			// counted distance test before emission.
			var comps int64
			for _, p := range f.pairs {
				er := &nr.Entries[f.rIdx[p.R]]
				es := &ns.Entries[f.sIdx[p.S]]
				ok, cost := geom.WithinDistSquaredCost(er.Rect, es.Rect, e.eps2)
				comps += cost
				if ok {
					e.emit(Pair{R: er.Data, S: es.Data})
				}
			}
			e.local.Comparisons += comps
		} else {
			for _, p := range f.pairs {
				e.emit(Pair{R: nr.Entries[f.rIdx[p.R]].Data, S: ns.Entries[f.sIdx[p.S]].Data})
			}
		}
		e.local.FlushTo(e.metrics)
		return
	}

	if method == SJ5 {
		// Local z-order: sort the qualifying pairs by the z-order value of
		// the centre of their intersection rectangles.  The grid covers the
		// current node pair's search space.
		world := nr.MBR().Union(ns.MBR())
		f.zkeys = f.zkeys[:0]
		for _, p := range f.pairs {
			in, _ := e.expandR(nr.Entries[f.rIdx[p.R]].Rect).Intersection(ns.Entries[f.sIdx[p.S]].Rect)
			f.zkeys = append(f.zkeys, zorder.RectKey(in, world))
		}
		e.zsorter.pairs = f.pairs
		e.zsorter.zkeys = f.zkeys
		stableSort(&e.zsorter, len(f.pairs))
		e.zsorter.pairs, e.zsorter.zkeys = nil, nil
	}
	e.local.FlushTo(e.metrics)

	switch method {
	case SJ3:
		for _, p := range f.pairs {
			e.descend(nr.Entries[f.rIdx[p.R]], ns.Entries[f.sIdx[p.S]], method, depth)
		}
	default: // SJ4 and SJ5 use pinning.
		e.processWithPinning(nr, ns, f, method, depth)
	}
}

// descend reads the two child pages and joins them recursively.
//
//repro:hotpath
func (e *executor) descend(er, es rtree.Entry, method Method, depth int) {
	childRect, ok := e.expandR(er.Rect).Intersection(es.Rect)
	if !ok {
		return
	}
	e.r.AccessNode(e.tracker, er.Child)
	e.s.AccessNode(e.tracker, es.Child)
	e.sweepJoin(er.Child, es.Child, childRect, method, depth+1)
}

// processWithPinning processes the qualifying pairs in schedule order and,
// after each pair, pins the page whose rectangle has the maximal degree (the
// number of unprocessed rectangles of the other node it intersects) and
// completely processes that page before returning to the schedule
// (section 4.3, "local plane-sweep order with pinning").
func (e *executor) processWithPinning(nr, ns *rtree.Node, f *frame, method Method, depth int) {
	pairs := f.pairs
	f.processed = f.processed[:0]
	f.degR = f.degR[:0]
	f.degS = f.degS[:0]
	for range pairs {
		f.processed = append(f.processed, false)
	}
	// degR[i] counts the remaining pairs involving f.rIdx[i]; degS likewise.
	for range f.rIdx {
		f.degR = append(f.degR, 0)
	}
	for range f.sIdx {
		f.degS = append(f.degS, 0)
	}
	for _, p := range pairs {
		f.degR[p.R]++
		f.degS[p.S]++
	}
	processPair := func(idx int) {
		p := pairs[idx]
		f.processed[idx] = true
		f.degR[p.R]--
		f.degS[p.S]--
		e.descend(nr.Entries[f.rIdx[p.R]], ns.Entries[f.sIdx[p.S]], method, depth)
	}

	for i := range pairs {
		if f.processed[i] {
			continue
		}
		p := pairs[i]
		processPair(i)

		// Pin the page with the larger remaining degree and finish all of its
		// pairs while it is guaranteed to stay in the buffer.
		if f.degR[p.R] >= f.degS[p.S] && f.degR[p.R] > 0 {
			er := nr.Entries[f.rIdx[p.R]]
			e.tracker.Pin(e.r.ID(), er.Child.ID)
			for j := i + 1; j < len(pairs); j++ {
				if !f.processed[j] && pairs[j].R == p.R {
					processPair(j)
				}
			}
			e.tracker.Unpin(e.r.ID(), er.Child.ID)
		} else if f.degS[p.S] > 0 {
			es := ns.Entries[f.sIdx[p.S]]
			e.tracker.Pin(e.s.ID(), es.Child.ID)
			for j := i + 1; j < len(pairs); j++ {
				if !f.processed[j] && pairs[j].S == p.S {
					processPair(j)
				}
			}
			e.tracker.Unpin(e.s.ID(), es.Child.ID)
		}
	}
}
