package join

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/sweep"
	"repro/internal/zorder"
)

// runSweep executes SpatialJoin3, 4 or 5: search-space restriction plus the
// sorted intersection test, with the read schedule given by the plane-sweep
// output order (SJ3), the plane-sweep order with pinning (SJ4) or the local
// z-order with pinning (SJ5).
func (e *executor) runSweep(method Method) {
	e.accessRoots()
	rootRect, ok := rootIntersection(e.r, e.s)
	if !ok {
		return
	}
	e.sweepJoin(e.r.Root(), e.s.Root(), rootRect, method)
}

// nodePair is one qualifying pair of entries produced by the intersection
// test of a node pair, carrying the indexes into the restricted entry slices.
type nodePair struct {
	ri, si int
	zkey   uint64
}

// sweepJoin joins two nodes using spatial sorting and the plane-sweep
// intersection test (section 4.2) and schedules the child reads according to
// the selected method (section 4.3).
func (e *executor) sweepJoin(nr, ns *rtree.Node, rect geom.Rect, method Method) {
	if handled := e.handleHeightDifference(nr, ns, &rect); handled {
		return
	}

	// Restrict the search space to the parents' intersection rectangle, then
	// sort the surviving entries by their lower x-corner.  In the paper the
	// entries are sorted each time a page is read into the buffer; the
	// sorting comparisons are charged separately (Table 4).  Version (I) of
	// Table 4 skips the restriction to isolate the effect of sorting.
	var rEntries, sEntries []rtree.Entry
	if e.opts.DisableRestriction {
		rEntries = append([]rtree.Entry(nil), nr.Entries...)
		sEntries = append([]rtree.Entry(nil), ns.Entries...)
	} else {
		rEntries = e.restrict(nr.Entries, rect)
		sEntries = e.restrict(ns.Entries, rect)
	}
	if len(rEntries) == 0 || len(sEntries) == 0 {
		return
	}
	rRects := e.sortEntries(rEntries)
	sRects := e.sortEntries(sEntries)

	// The sorted intersection test produces the qualifying pairs in local
	// plane-sweep order.
	var pairs []nodePair
	sweep.SortedIntersectionTest(rRects, sRects, e.metrics, func(p sweep.Pair) {
		e.metrics.AddPairTested()
		pairs = append(pairs, nodePair{ri: p.R, si: p.S})
	})
	if len(pairs) == 0 {
		return
	}

	if nr.IsLeaf() && ns.IsLeaf() {
		for _, p := range pairs {
			e.emit(Pair{R: rEntries[p.ri].Data, S: sEntries[p.si].Data})
		}
		return
	}

	if method == SJ5 {
		// Local z-order: sort the qualifying pairs by the z-order value of
		// the centre of their intersection rectangles.  The grid covers the
		// current node pair's search space.
		world := nr.MBR().Union(ns.MBR())
		for i := range pairs {
			in, _ := rEntries[pairs[i].ri].Rect.Intersection(sEntries[pairs[i].si].Rect)
			pairs[i].zkey = zorder.RectKey(in, world)
		}
		sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].zkey < pairs[j].zkey })
	}

	switch method {
	case SJ3:
		for _, p := range pairs {
			e.descend(rEntries[p.ri], sEntries[p.si], method)
		}
	default: // SJ4 and SJ5 use pinning.
		e.processWithPinning(rEntries, sEntries, pairs, method)
	}
}

// sortEntries sorts the entries in place by the lower x-corner of their
// rectangles and returns the parallel slice of rectangles.  Sorting
// comparisons are charged to the sorting counter and the sort itself is
// recorded for the repeat-factor statistics.
func (e *executor) sortEntries(entries []rtree.Entry) []geom.Rect {
	e.metrics.AddNodeSort()
	sort.SliceStable(entries, func(i, j int) bool {
		e.metrics.AddSortComparisons(1)
		return entries[i].Rect.XL < entries[j].Rect.XL
	})
	rects := make([]geom.Rect, len(entries))
	for i, en := range entries {
		rects[i] = en.Rect
	}
	return rects
}

// descend reads the two child pages and joins them recursively.
func (e *executor) descend(er, es rtree.Entry, method Method) {
	childRect, ok := er.Rect.Intersection(es.Rect)
	if !ok {
		return
	}
	e.r.AccessNode(e.tracker, er.Child)
	e.s.AccessNode(e.tracker, es.Child)
	e.sweepJoin(er.Child, es.Child, childRect, method)
}

// processWithPinning processes the qualifying pairs in schedule order and,
// after each pair, pins the page whose rectangle has the maximal degree (the
// number of unprocessed rectangles of the other node it intersects) and
// completely processes that page before returning to the schedule
// (section 4.3, "local plane-sweep order with pinning").
func (e *executor) processWithPinning(rEntries, sEntries []rtree.Entry, pairs []nodePair, method Method) {
	processed := make([]bool, len(pairs))
	// degR[i] counts the remaining pairs involving rEntries[i]; degS likewise.
	degR := make([]int, len(rEntries))
	degS := make([]int, len(sEntries))
	for _, p := range pairs {
		degR[p.ri]++
		degS[p.si]++
	}
	processPair := func(idx int) {
		p := pairs[idx]
		processed[idx] = true
		degR[p.ri]--
		degS[p.si]--
		e.descend(rEntries[p.ri], sEntries[p.si], method)
	}

	for i := range pairs {
		if processed[i] {
			continue
		}
		p := pairs[i]
		processPair(i)

		// Pin the page with the larger remaining degree and finish all of its
		// pairs while it is guaranteed to stay in the buffer.
		if degR[p.ri] >= degS[p.si] && degR[p.ri] > 0 {
			er := rEntries[p.ri]
			e.tracker.Pin(e.r.ID(), er.Child.ID)
			for j := i + 1; j < len(pairs); j++ {
				if !processed[j] && pairs[j].ri == p.ri {
					processPair(j)
				}
			}
			e.tracker.Unpin(e.r.ID(), er.Child.ID)
		} else if degS[p.si] > 0 {
			es := sEntries[p.si]
			e.tracker.Pin(e.s.ID(), es.Child.ID)
			for j := i + 1; j < len(pairs); j++ {
				if !processed[j] && pairs[j].si == p.si {
					processPair(j)
				}
			}
			e.tracker.Unpin(e.s.ID(), es.Child.ID)
		}
	}
}
