package join

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrCancelled marks a join abandoned because its context was cancelled or
// its deadline expired.  The returned error wraps the context's cause, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) distinguish the two.
var ErrCancelled = errors.New("join: cancelled")

// cancelErr builds the typed error Join and ParallelJoin return for an
// aborted run.
func cancelErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx))
}

// cancelWatch mirrors a context's Done signal into an atomic flag the join
// traversals can poll at node-pair granularity.  Polling ctx.Err() directly
// would take the context's mutex on every node pair; one goroutine watching
// Done and a single atomic load per pair keeps the cancellation check off
// the join's critical path.  The watcher exits when stop is called, so a
// completed join never leaks it.
type cancelWatch struct {
	flag atomic.Bool
	quit chan struct{}
}

// newCancelWatch starts a watcher for ctx; it returns nil (a no-op watch)
// for a nil context or one that can never be cancelled.
func newCancelWatch(ctx context.Context) *cancelWatch {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	w := &cancelWatch{quit: make(chan struct{})}
	go func() {
		select {
		case <-ctx.Done():
			w.flag.Store(true)
		case <-w.quit:
		}
	}()
	return w
}

// cancelled reports whether the watched context fired.
func (w *cancelWatch) cancelled() bool { return w != nil && w.flag.Load() }

// stop releases the watcher goroutine.  Safe on a nil watch.
func (w *cancelWatch) stop() {
	if w != nil {
		close(w.quit)
	}
}
