package join

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// rectDist2 is the oracle's squared rectangle distance, computed with the
// clamp formulation (independent of the counted production code).
func rectDist2(a, b geom.Rect) float64 {
	dx := math.Max(0, math.Max(a.XL-b.XU, b.XL-a.XU))
	dy := math.Max(0, math.Max(a.YL-b.YU, b.YL-a.YU))
	return dx*dx + dy*dy
}

// bruteForceDistance computes the within-distance reference result set.
func bruteForceDistance(itemsR, itemsS []rtree.Item, eps float64) map[Pair]bool {
	want := make(map[Pair]bool)
	for _, a := range itemsR {
		for _, b := range itemsS {
			if rectDist2(a.Rect, b.Rect) <= eps*eps {
				want[Pair{R: a.Data, S: b.Data}] = true
			}
		}
	}
	return want
}

// bruteForceKNN computes the kNN reference result set: for every R item the
// k smallest (distance, S id) candidates.
func bruteForceKNN(itemsR, itemsS []rtree.Item, k int) map[Pair]bool {
	want := make(map[Pair]bool)
	type cand struct {
		d2  float64
		sID int32
	}
	cands := make([]cand, 0, len(itemsS))
	for _, a := range itemsR {
		cands = cands[:0]
		for _, b := range itemsS {
			cands = append(cands, cand{d2: rectDist2(a.Rect, b.Rect), sID: b.Data})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d2 != cands[j].d2 {
				return cands[i].d2 < cands[j].d2
			}
			return cands[i].sID < cands[j].sID
		})
		n := k
		if n > len(cands) {
			n = len(cands)
		}
		for _, c := range cands[:n] {
			want[Pair{R: a.Data, S: c.sID}] = true
		}
	}
	return want
}

func comparePairSets(t *testing.T, label string, got []Pair, want map[Pair]bool) {
	t.Helper()
	gotSet := asPairSet(got)
	if len(gotSet) != len(got) {
		t.Fatalf("%s: %d pairs materialised but only %d distinct", label, len(got), len(gotSet))
	}
	for p := range want {
		if !gotSet[p] {
			t.Fatalf("%s: missing pair %v", label, p)
		}
	}
	for p := range gotSet {
		if !want[p] {
			t.Fatalf("%s: spurious pair %v", label, p)
		}
	}
}

// epsSuite spans thresholds from "barely more than intersection" to "most
// pairs qualify" on the unit-world synthetic data.
var epsSuite = []float64{0, 0.002, 0.01, 0.05}

func TestWithinDistanceMatchesBruteForceAllMethods(t *testing.T) {
	r, s, itemsR, itemsS := buildPair(t, 1500, 1500, storage.PageSize1K)
	for _, eps := range epsSuite {
		want := bruteForceDistance(itemsR, itemsS, eps)
		for _, method := range append([]Method{NestedLoop}, Methods...) {
			res, err := Join(r, s, Options{
				Method:      method,
				BufferBytes: 64 << 10,
				Predicate:   WithinDistance(eps),
			})
			if err != nil {
				t.Fatalf("%v eps=%v: %v", method, eps, err)
			}
			comparePairSets(t, method.String(), res.Pairs, want)
			if res.Predicate.Kind != PredWithinDist {
				t.Fatalf("result predicate = %v", res.Predicate)
			}
		}
	}
}

// TestWithinDistanceZeroEqualsIntersection pins the eps=0 degenerate case:
// rectangles at distance zero are exactly the touching-or-overlapping ones,
// so the result equals the intersection join's.
func TestWithinDistanceZeroEqualsIntersection(t *testing.T) {
	r, s, itemsR, itemsS := buildPair(t, 1200, 1200, storage.PageSize1K)
	want := bruteForce(itemsR, itemsS)
	res, err := Join(r, s, Options{Method: SJ4, BufferBytes: 64 << 10, Predicate: WithinDistance(0)})
	if err != nil {
		t.Fatal(err)
	}
	comparePairSets(t, "within(0)", res.Pairs, want)
}

func TestWithinDistanceHeightDifference(t *testing.T) {
	// A large R against a tiny S forces leaf-vs-directory pairs through all
	// three height policies, in both orientations.
	for _, sizes := range [][2]int{{2400, 60}, {60, 2400}} {
		r, s, itemsR, itemsS := buildPair(t, sizes[0], sizes[1], storage.PageSize1K)
		want := bruteForceDistance(itemsR, itemsS, 0.01)
		for _, policy := range []HeightPolicy{PolicyWindowPerPair, PolicyBatchedWindows, PolicySweepOrder} {
			for _, method := range Methods {
				res, err := Join(r, s, Options{
					Method:       method,
					BufferBytes:  64 << 10,
					HeightPolicy: policy,
					Predicate:    WithinDistance(0.01),
				})
				if err != nil {
					t.Fatalf("%v/%v: %v", method, policy, err)
				}
				comparePairSets(t, method.String()+"/"+policy.String(), res.Pairs, want)
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	r, s, itemsR, itemsS := buildPair(t, 1200, 1200, storage.PageSize1K)
	for _, k := range []int{1, 3, 10} {
		want := bruteForceKNN(itemsR, itemsS, k)
		for _, method := range append([]Method{NestedLoop}, Methods...) {
			res, err := Join(r, s, Options{
				Method:      method,
				BufferBytes: 64 << 10,
				Predicate:   NearestNeighbors(k),
			})
			if err != nil {
				t.Fatalf("%v k=%d: %v", method, k, err)
			}
			if res.Count != len(want) {
				t.Fatalf("%v k=%d: %d pairs, want %d", method, k, res.Count, len(want))
			}
			comparePairSets(t, method.String(), res.Pairs, want)
		}
	}
}

// TestKNNMoreNeighboursThanItems pins the k > |S| degenerate case: every R
// item reports all of S.
func TestKNNMoreNeighboursThanItems(t *testing.T) {
	r, s, itemsR, itemsS := buildPair(t, 300, 40, storage.PageSize1K)
	want := bruteForceKNN(itemsR, itemsS, 100)
	if len(want) != len(itemsR)*len(itemsS) {
		t.Fatalf("oracle: %d pairs, want full cross product %d", len(want), len(itemsR)*len(itemsS))
	}
	res, err := Join(r, s, Options{Method: SJ4, BufferBytes: 64 << 10, Predicate: NearestNeighbors(100)})
	if err != nil {
		t.Fatal(err)
	}
	comparePairSets(t, "knn(100)", res.Pairs, want)
}

// TestKNNHeightDifference joins trees of different heights under kNN.
func TestKNNHeightDifference(t *testing.T) {
	for _, sizes := range [][2]int{{2400, 60}, {60, 2400}} {
		r, s, itemsR, itemsS := buildPair(t, sizes[0], sizes[1], storage.PageSize1K)
		want := bruteForceKNN(itemsR, itemsS, 3)
		res, err := Join(r, s, Options{Method: SJ4, BufferBytes: 64 << 10, Predicate: NearestNeighbors(3)})
		if err != nil {
			t.Fatal(err)
		}
		comparePairSets(t, "knn heights", res.Pairs, want)
	}
}

func TestPredicateValidation(t *testing.T) {
	r, s, _, _ := buildPair(t, 50, 50, storage.PageSize1K)
	bad := []Predicate{
		{Kind: PredWithinDist, Epsilon: -1},
		{Kind: PredWithinDist, Epsilon: math.NaN()},
		{Kind: PredWithinDist, Epsilon: math.Inf(1)},
		{Kind: PredKNN, K: 0},
		{Kind: PredKNN, K: -3},
		{Kind: PredicateKind(99)},
	}
	for _, p := range bad {
		if _, err := Join(r, s, Options{Method: SJ4, Predicate: p}); err == nil {
			t.Fatalf("predicate %v: expected validation error", p)
		}
	}
	if Intersects().Validate() != nil || WithinDistance(1).Validate() != nil || NearestNeighbors(2).Validate() != nil {
		t.Fatal("valid predicates must validate")
	}
	if (Predicate{}) != Intersects() {
		t.Fatal("zero predicate must be the intersection predicate")
	}
}

// TestIntersectionCostUnchangedByPredicatePlumbing pins the bit-identical
// guarantee: a join with the zero predicate must report exactly the same
// cost counters as one with an explicit intersection predicate, and the
// within-distance machinery with a tiny epsilon must not disturb them.
func TestIntersectionCostUnchangedByPredicatePlumbing(t *testing.T) {
	r, s, _, _ := buildPair(t, 1000, 1000, storage.PageSize1K)
	base, err := Join(r, s, Options{Method: SJ4, BufferBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Join(r, s, Options{Method: SJ4, BufferBytes: 32 << 10, Predicate: Intersects()})
	if err != nil {
		t.Fatal(err)
	}
	if base.Metrics != explicit.Metrics {
		t.Fatalf("explicit intersection predicate changed the cost accounting:\n%+v\nvs\n%+v", base.Metrics, explicit.Metrics)
	}
	if sortedPairHash(base.Pairs) != sortedPairHash(explicit.Pairs) {
		t.Fatal("explicit intersection predicate changed the result")
	}
}

// TestParallelPredicateInvariants runs the full schedule matrix over the new
// predicates: every tree algorithm SJ1-SJ5 under every partition strategy
// (dynamic queue, the static schedules and the stealing scheduler) must
// produce exactly the brute-force within-distance and kNN result sets.
// MinTasksPerWorker forces split rounds, so the epsilon-expanded task
// splitting and the R-side-only kNN splitting are exercised too.
func TestParallelPredicateInvariants(t *testing.T) {
	r, s, itemsR, itemsS := buildPair(t, 1500, 1500, storage.PageSize1K)
	preds := []struct {
		pred Predicate
		want map[Pair]bool
	}{
		{WithinDistance(0.01), bruteForceDistance(itemsR, itemsS, 0.01)},
		{NearestNeighbors(3), bruteForceKNN(itemsR, itemsS, 3)},
	}
	for _, pc := range preds {
		for _, method := range Methods {
			for _, strategy := range parallelVariants {
				res, err := ParallelJoin(r, s, ParallelOptions{
					Options: Options{
						Method:      method,
						BufferBytes: 64 << 10,
						Predicate:   pc.pred,
					},
					Workers:           4,
					Strategy:          strategy,
					MinTasksPerWorker: 4,
				})
				label := pc.pred.String() + "/" + method.String() + "/" + strategy.String()
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				comparePairSets(t, label, res.Pairs, pc.want)
				if res.Predicate != pc.pred {
					t.Fatalf("%s: result predicate = %v", label, res.Predicate)
				}
			}
		}
	}
}

// TestParallelPredicateHeights runs the parallel predicate matrix over trees
// of different heights, so the leaf-vs-directory orientation logic runs
// inside worker tasks under every strategy.
func TestParallelPredicateHeights(t *testing.T) {
	for _, sizes := range [][2]int{{2400, 60}, {60, 2400}} {
		r, s, itemsR, itemsS := buildPair(t, sizes[0], sizes[1], storage.PageSize1K)
		wantDist := bruteForceDistance(itemsR, itemsS, 0.01)
		wantKNN := bruteForceKNN(itemsR, itemsS, 3)
		for _, strategy := range parallelVariants {
			res, err := ParallelJoin(r, s, ParallelOptions{
				Options:  Options{Method: SJ4, BufferBytes: 64 << 10, Predicate: WithinDistance(0.01)},
				Workers:  3,
				Strategy: strategy,
			})
			if err != nil {
				t.Fatal(err)
			}
			comparePairSets(t, "dist/"+strategy.String(), res.Pairs, wantDist)
			res, err = ParallelJoin(r, s, ParallelOptions{
				Options:  Options{Method: SJ4, BufferBytes: 64 << 10, Predicate: NearestNeighbors(3)},
				Workers:  3,
				Strategy: strategy,
			})
			if err != nil {
				t.Fatal(err)
			}
			comparePairSets(t, "knn/"+strategy.String(), res.Pairs, wantKNN)
		}
	}
}

// TestParallelPredicateValidation pins that ParallelJoin rejects invalid
// predicates before planning.
func TestParallelPredicateValidation(t *testing.T) {
	r, s, _, _ := buildPair(t, 200, 200, storage.PageSize1K)
	_, err := ParallelJoin(r, s, ParallelOptions{
		Options: Options{Method: SJ4, Predicate: Predicate{Kind: PredWithinDist, Epsilon: -1}},
	})
	if err == nil {
		t.Fatal("expected validation error")
	}
}

// TestParallelIntersectionPlanUnchanged pins that the predicate threading
// left the intersection plan bit-identical: plan metrics, worker metrics and
// result hash all match between an implicit and an explicit intersection
// predicate.
func TestParallelIntersectionPlanUnchanged(t *testing.T) {
	r, s, _, _ := buildPair(t, 1500, 1500, storage.PageSize1K)
	run := func(p Predicate) *Result {
		res, err := ParallelJoin(r, s, ParallelOptions{
			Options:           Options{Method: SJ3, BufferBytes: 64 << 10, Predicate: p},
			Workers:           4,
			Strategy:          PartitionLPT,
			MinTasksPerWorker: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, explicit := run(Predicate{}), run(Intersects())
	if base.PlanMetrics != explicit.PlanMetrics {
		t.Fatalf("plan metrics changed:\n%+v\nvs\n%+v", base.PlanMetrics, explicit.PlanMetrics)
	}
	if base.Metrics != explicit.Metrics {
		t.Fatalf("metrics changed:\n%+v\nvs\n%+v", base.Metrics, explicit.Metrics)
	}
	if sortedPairHash(sortedCopy(base.Pairs)) != sortedPairHash(sortedCopy(explicit.Pairs)) {
		t.Fatal("result changed")
	}
}

func sortedCopy(pairs []Pair) []Pair {
	out := append([]Pair(nil), pairs...)
	SortPairs(out)
	return out
}
