package join

import (
	"fmt"
	"testing"

	"repro/internal/storage"
)

// sortedPairHash returns the order-insensitive golden hash of a result set:
// the FNV-1a fold of the pairs after SortPairs.  The pairs slice is sorted
// in place.
func sortedPairHash(pairs []Pair) uint64 {
	SortPairs(pairs)
	h := uint64(14695981039346656037)
	for _, p := range pairs {
		h = (h ^ uint64(uint32(p.R))) * 1099511628211
		h = (h ^ uint64(uint32(p.S))) * 1099511628211
	}
	return h
}

// parallelVariants enumerates the schedule dimension of the invariant suite:
// the dynamic queue plus the three static strategies.
var parallelVariants = []PartitionStrategy{
	PartitionDynamic, PartitionRoundRobin, PartitionLPT, PartitionSpatial,
}

// checkParallelAgainst runs ParallelJoin in both pair modes (materialised
// and OnPair+DiscardPairs) and checks the result-set invariants against the
// sequential golden hash and count.
func checkParallelAgainst(t *testing.T, label string, wantHash uint64, wantCount int,
	run func(onPair func(Pair), discard bool) (*Result, error)) {
	t.Helper()

	// Materialised pairs: sorted set equals the sequential result, and the
	// count matches the materialisation.
	res, err := run(nil, false)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if res.Count != len(res.Pairs) {
		t.Errorf("%s: Count=%d but %d pairs materialised", label, res.Count, len(res.Pairs))
	}
	if got := sortedPairHash(res.Pairs); got != wantHash || res.Count != wantCount {
		t.Errorf("%s: materialised result differs from sequential join (count %d vs %d, hash %d vs %d)",
			label, res.Count, wantCount, got, wantHash)
	}

	// Streaming: OnPair with DiscardPairs sees the same set, with nothing
	// materialised.
	var streamed []Pair
	res, err = run(func(p Pair) { streamed = append(streamed, p) }, true)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(res.Pairs) != 0 {
		t.Errorf("%s: DiscardPairs materialised %d pairs", label, len(res.Pairs))
	}
	if res.Count != len(streamed) {
		t.Errorf("%s: Count=%d but %d pairs streamed", label, res.Count, len(streamed))
	}
	if got := sortedPairHash(streamed); got != wantHash {
		t.Errorf("%s: streamed result differs from sequential join (hash %d vs %d)", label, got, wantHash)
	}
}

// TestParallelJoinInvariants checks result-set equality of ParallelJoin with
// the sequential join over the full matrix: every tree algorithm SJ1-SJ5,
// every partition strategy (dynamic queue plus the three static schedules),
// and both pair modes.  Equality is by sorted-pair golden hash, since the
// parallel pair order is schedule-dependent.
func TestParallelJoinInvariants(t *testing.T) {
	r, s, _, _ := buildPair(t, 1500, 1500, storage.PageSize1K)
	for _, method := range Methods {
		opts := Options{Method: method, BufferBytes: 64 << 10, UsePathBuffer: true, DiscardPairs: true}
		seq, err := Join(r, s, Options{Method: method, BufferBytes: 64 << 10, UsePathBuffer: true})
		if err != nil {
			t.Fatal(err)
		}
		wantHash := sortedPairHash(seq.Pairs)
		for _, strategy := range parallelVariants {
			label := fmt.Sprintf("%v/%v", method, strategy)
			checkParallelAgainst(t, label, wantHash, seq.Count,
				func(onPair func(Pair), discard bool) (*Result, error) {
					o := opts
					o.OnPair = onPair
					o.DiscardPairs = discard
					return ParallelJoin(r, s, ParallelOptions{Options: o, Workers: 4, Strategy: strategy})
				})
		}
	}
}

// TestParallelJoinInvariantsHeights runs the same invariants on trees of
// different heights, sweeping the section-4.4 height policies against every
// partition strategy.
func TestParallelJoinInvariantsHeights(t *testing.T) {
	r, s := buildHeightPair(t)
	for _, policy := range []HeightPolicy{PolicyWindowPerPair, PolicyBatchedWindows, PolicySweepOrder} {
		opts := Options{Method: SJ4, BufferBytes: 32 << 10, UsePathBuffer: true, HeightPolicy: policy}
		seq, err := Join(r, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantHash := sortedPairHash(seq.Pairs)
		for _, strategy := range parallelVariants {
			label := fmt.Sprintf("heights/%v/%v", policy, strategy)
			checkParallelAgainst(t, label, wantHash, seq.Count,
				func(onPair func(Pair), discard bool) (*Result, error) {
					o := opts
					o.OnPair = onPair
					o.DiscardPairs = discard
					return ParallelJoin(r, s, ParallelOptions{Options: o, Workers: 3, Strategy: strategy})
				})
		}
	}
}
