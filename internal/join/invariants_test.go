package join

import (
	"fmt"
	"testing"

	"repro/internal/storage"
)

// sortedPairHash returns the order-insensitive golden hash of a result set:
// the FNV-1a fold of the pairs after SortPairs.  The pairs slice is sorted
// in place.
func sortedPairHash(pairs []Pair) uint64 {
	SortPairs(pairs)
	h := uint64(14695981039346656037)
	for _, p := range pairs {
		h = (h ^ uint64(uint32(p.R))) * 1099511628211
		h = (h ^ uint64(uint32(p.S))) * 1099511628211
	}
	return h
}

// parallelVariants enumerates the schedule dimension of the invariant suite:
// the dynamic queue, the three static strategies and the work-stealing
// scheduler.
var parallelVariants = []PartitionStrategy{
	PartitionDynamic, PartitionRoundRobin, PartitionLPT, PartitionSpatial, PartitionStealing,
}

// checkParallelAgainst runs ParallelJoin in both pair modes (materialised
// and OnPair+DiscardPairs) and checks the result-set invariants against the
// sequential golden hash and count.
func checkParallelAgainst(t *testing.T, label string, wantHash uint64, wantCount int,
	run func(onPair func(Pair), discard bool) (*Result, error)) {
	t.Helper()

	// Materialised pairs: sorted set equals the sequential result, and the
	// count matches the materialisation.
	res, err := run(nil, false)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if res.Count != len(res.Pairs) {
		t.Errorf("%s: Count=%d but %d pairs materialised", label, res.Count, len(res.Pairs))
	}
	if got := sortedPairHash(res.Pairs); got != wantHash || res.Count != wantCount {
		t.Errorf("%s: materialised result differs from sequential join (count %d vs %d, hash %d vs %d)",
			label, res.Count, wantCount, got, wantHash)
	}

	// Streaming: OnPair with DiscardPairs sees the same set, with nothing
	// materialised.
	var streamed []Pair
	res, err = run(func(p Pair) { streamed = append(streamed, p) }, true)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(res.Pairs) != 0 {
		t.Errorf("%s: DiscardPairs materialised %d pairs", label, len(res.Pairs))
	}
	if res.Count != len(streamed) {
		t.Errorf("%s: Count=%d but %d pairs streamed", label, res.Count, len(streamed))
	}
	if got := sortedPairHash(streamed); got != wantHash {
		t.Errorf("%s: streamed result differs from sequential join (hash %d vs %d)", label, got, wantHash)
	}
}

// TestParallelJoinInvariants checks result-set equality of ParallelJoin with
// the sequential join over the full matrix: every tree algorithm SJ1-SJ5,
// every partition strategy (dynamic queue plus the three static schedules),
// and both pair modes.  Equality is by sorted-pair golden hash, since the
// parallel pair order is schedule-dependent.
func TestParallelJoinInvariants(t *testing.T) {
	r, s, _, _ := buildPair(t, 1500, 1500, storage.PageSize1K)
	for _, method := range Methods {
		opts := Options{Method: method, BufferBytes: 64 << 10, UsePathBuffer: true, DiscardPairs: true}
		seq, err := Join(r, s, Options{Method: method, BufferBytes: 64 << 10, UsePathBuffer: true})
		if err != nil {
			t.Fatal(err)
		}
		wantHash := sortedPairHash(seq.Pairs)
		for _, strategy := range parallelVariants {
			label := fmt.Sprintf("%v/%v", method, strategy)
			checkParallelAgainst(t, label, wantHash, seq.Count,
				func(onPair func(Pair), discard bool) (*Result, error) {
					o := opts
					o.OnPair = onPair
					o.DiscardPairs = discard
					return ParallelJoin(r, s, ParallelOptions{Options: o, Workers: 4, Strategy: strategy})
				})
		}
	}
}

// TestStealingJoinInvariants is the stealing strategy's own wall: SJ1-SJ5,
// worker counts 1, 2 and 8, both pair modes, a fine task granularity so that
// steals actually fire, and the catalog-average estimator ablation — the
// result set must equal the sequential join's in every cell no matter how
// the nondeterministic steal/pop interleaving plays out.  CI runs the
// package under -race, which turns this into the stealing data-race wall.
func TestStealingJoinInvariants(t *testing.T) {
	r, s, _, _ := buildPair(t, 1500, 1500, storage.PageSize1K)
	for _, method := range Methods {
		seq, err := Join(r, s, Options{Method: method, BufferBytes: 64 << 10, UsePathBuffer: true})
		if err != nil {
			t.Fatal(err)
		}
		wantHash := sortedPairHash(seq.Pairs)
		for _, workers := range []int{1, 2, 8} {
			for _, catalogAvg := range []bool{false, true} {
				label := fmt.Sprintf("%v/stealing/workers=%d/catalogAvg=%v", method, workers, catalogAvg)
				checkParallelAgainst(t, label, wantHash, seq.Count,
					func(onPair func(Pair), discard bool) (*Result, error) {
						o := Options{Method: method, BufferBytes: 64 << 10, UsePathBuffer: true,
							OnPair: onPair, DiscardPairs: discard}
						return ParallelJoin(r, s, ParallelOptions{
							Options:             o,
							Workers:             workers,
							Strategy:            PartitionStealing,
							MinTasksPerWorker:   4,
							DisableSampledStats: catalogAvg,
						})
					})
			}
		}
	}
}

// TestStealingExecutesEveryTaskOnce checks the scheduling invariant behind
// the result-set equality: across all workers exactly len(tasks) sub-joins
// run, no matter how many runs changed owners through stealing.
func TestStealingExecutesEveryTaskOnce(t *testing.T) {
	r, s, _, _ := buildPair(t, 3000, 3000, storage.PageSize1K)
	for _, workers := range []int{2, 4, 8} {
		ref, err := ParallelJoin(r, s, ParallelOptions{
			Options:           Options{Method: SJ4, BufferBytes: 64 << 10, DiscardPairs: true},
			Workers:           workers,
			Strategy:          PartitionSpatial,
			MinTasksPerWorker: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ParallelJoin(r, s, ParallelOptions{
			Options:           Options{Method: SJ4, BufferBytes: 64 << 10, DiscardPairs: true},
			Workers:           workers,
			Strategy:          PartitionStealing,
			MinTasksPerWorker: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		want, got := 0, 0
		for _, n := range ref.WorkerTasks {
			want += n
		}
		for _, n := range res.WorkerTasks {
			got += n
		}
		if got != want {
			t.Errorf("workers=%d: stealing executed %d tasks, spatial schedule has %d", workers, got, want)
		}
		if len(res.WorkerSteals) != workers {
			t.Errorf("workers=%d: WorkerSteals has %d entries", workers, len(res.WorkerSteals))
		}
		steals := 0
		for _, n := range res.WorkerSteals {
			steals += n
		}
		if steals == 0 && res.StolenTasks != 0 {
			t.Errorf("workers=%d: StolenTasks=%d with zero steal operations", workers, res.StolenTasks)
		}
	}
}

// TestParallelJoinInvariantsHeights runs the same invariants on trees of
// different heights, sweeping the section-4.4 height policies against every
// partition strategy.
func TestParallelJoinInvariantsHeights(t *testing.T) {
	r, s := buildHeightPair(t)
	for _, policy := range []HeightPolicy{PolicyWindowPerPair, PolicyBatchedWindows, PolicySweepOrder} {
		opts := Options{Method: SJ4, BufferBytes: 32 << 10, UsePathBuffer: true, HeightPolicy: policy}
		seq, err := Join(r, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantHash := sortedPairHash(seq.Pairs)
		for _, strategy := range parallelVariants {
			label := fmt.Sprintf("heights/%v/%v", policy, strategy)
			checkParallelAgainst(t, label, wantHash, seq.Count,
				func(onPair func(Pair), discard bool) (*Result, error) {
					o := opts
					o.OnPair = onPair
					o.DiscardPairs = discard
					return ParallelJoin(r, s, ParallelOptions{Options: o, Workers: 3, Strategy: strategy})
				})
		}
	}
}
