package join

import (
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/sweep"
)

// SortMergeJoin computes the MBR-spatial-join of two relations that have no
// spatial index: both relations are sorted by the lower x-corner of their
// rectangles and swept with the sorted intersection test.  This is the
// "similar to a sort-merge join" alternative the paper mentions for the case
// that no R*-tree exists on the relations (section 2.1); it serves as the
// second index-free baseline next to the nested loop.
//
// Sorting comparisons are charged to the collector's sorting counter and the
// sweep's comparisons to the join counter, so the result is directly
// comparable with the tree-based algorithms' CPU measure.  No I/O is charged:
// the relations are scanned once, which is exactly what makes this approach
// attractive only when the data is not already indexed.
func SortMergeJoin(itemsR, itemsS []rtree.Item, collector *metrics.Collector) *Result {
	if collector == nil {
		collector = metrics.NewCollector()
	}
	before := collector.Snapshot()

	rectsR := make([]geom.Rect, len(itemsR))
	for i, it := range itemsR {
		rectsR[i] = it.Rect
	}
	rectsS := make([]geom.Rect, len(itemsS))
	for i, it := range itemsS {
		rectsS[i] = it.Rect
	}
	permR := sweep.SortByXL(rectsR, collector)
	permS := sweep.SortByXL(rectsS, collector)

	res := &Result{Method: NestedLoop}
	sweep.SortedIntersectionTest(rectsR, rectsS, collector, func(p sweep.Pair) {
		pair := Pair{R: itemsR[permR[p.R]].Data, S: itemsS[permS[p.S]].Data}
		res.Count++
		collector.AddPairReported()
		res.Pairs = append(res.Pairs, pair)
	})
	res.Metrics = collector.Snapshot().Sub(before)
	return res
}
