package join

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func cancelTestTrees(t testing.TB, n int) (*rtree.Tree, *rtree.Tree) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	makeItems := func() []rtree.Item {
		items := make([]rtree.Item, n)
		for i := range items {
			x, y := rng.Float64(), rng.Float64()
			items[i] = rtree.Item{
				Rect: geom.Rect{XL: x, YL: y, XU: x + rng.Float64()*0.02, YU: y + rng.Float64()*0.02},
				Data: int32(i),
			}
		}
		return items
	}
	r := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	s := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	r.InsertItems(makeItems())
	s.InsertItems(makeItems())
	return r, s
}

// TestJoinCancelledBeforeStart: a join handed an already-cancelled context
// performs no work and returns the typed error immediately.
func TestJoinCancelledBeforeStart(t *testing.T) {
	r, s := cancelTestTrees(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Join(r, s, Options{Method: SJ4, Context: ctx})
	if res != nil {
		t.Fatal("cancelled join returned a result")
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCancelled wrapping context.Canceled, got %v", err)
	}
}

// TestJoinDeadlineExceeded: an expired deadline is distinguishable from an
// explicit cancellation through errors.Is.
func TestJoinDeadlineExceeded(t *testing.T) {
	r, s := cancelTestTrees(t, 200)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Join(r, s, Options{Method: SJ3, Context: ctx})
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCancelled wrapping DeadlineExceeded, got %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("deadline error must not match context.Canceled: %v", err)
	}
}

// TestJoinCancelMidRun cancels from inside the pair stream: every method must
// abandon the traversal and report the typed error instead of a partial
// result.
func TestJoinCancelMidRun(t *testing.T) {
	r, s := cancelTestTrees(t, 2000)
	for _, m := range append([]Method{NestedLoop}, Methods...) {
		ctx, cancel := context.WithCancel(context.Background())
		fired := 0
		res, err := Join(r, s, Options{
			Method:  m,
			Context: ctx,
			OnPair: func(Pair) {
				fired++
				if fired == 1 {
					cancel()
				}
			},
		})
		cancel()
		if res != nil {
			t.Fatalf("%v: cancelled join returned a result", m)
		}
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: want ErrCancelled, got %v", m, err)
		}
	}
}

// TestJoinContextCompletesUnchanged: a live context that never fires must not
// change the result or the counted costs in any way.
func TestJoinContextCompletesUnchanged(t *testing.T) {
	r, s := cancelTestTrees(t, 800)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plain, err := Join(r, s, Options{Method: SJ4, BufferBytes: 8 * storage.PageSize1K})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := Join(r, s, Options{Method: SJ4, BufferBytes: 8 * storage.PageSize1K, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Count != ctxed.Count || plain.Metrics != ctxed.Metrics {
		t.Fatalf("context plumbing changed the join: count %d vs %d, metrics %+v vs %+v",
			plain.Count, ctxed.Count, plain.Metrics, ctxed.Metrics)
	}
}

// TestParallelJoinCancel: cancellation mid-run stops every worker of every
// partition strategy, recycles their state, and yields the typed error.
func TestParallelJoinCancel(t *testing.T) {
	r, s := cancelTestTrees(t, 2000)
	strategies := []PartitionStrategy{
		PartitionDynamic, PartitionRoundRobin, PartitionLPT, PartitionSpatial, PartitionStealing,
	}
	for _, strat := range strategies {
		ctx, cancel := context.WithCancel(context.Background())
		fired := 0
		res, err := ParallelJoin(r, s, ParallelOptions{
			Workers:  4,
			Strategy: strat,
			Options: Options{
				Method:  SJ4,
				Context: ctx,
				OnPair: func(Pair) {
					fired++
					if fired == 1 {
						cancel()
					}
				},
			},
		})
		cancel()
		if res != nil {
			t.Fatalf("%v: cancelled parallel join returned a result", strat)
		}
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: want ErrCancelled, got %v", strat, err)
		}
	}
}

// TestJoinCancelNoGoroutineLeak: the context watcher must exit with the join,
// cancelled or not.
func TestJoinCancelNoGoroutineLeak(t *testing.T) {
	r, s := cancelTestTrees(t, 300)
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i%2 == 0 {
			cancel() // half the joins abort, half complete
		}
		_, _ = Join(r, s, Options{Method: SJ4, Context: ctx})
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
