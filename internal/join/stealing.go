package join

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Locality-preserving work stealing (PartitionStealing).
//
// Every worker owns the Hilbert-contiguous region queue the spatial schedule
// assigned to it and consumes it front to back, so as long as the estimates
// hold, execution is exactly the spatial schedule: contiguous Hilbert runs
// per worker, private-buffer reuse intact.  When a worker drains its queue it
// becomes a thief: it picks the victim with the largest remaining estimated
// load and takes half of the *tail* of the victim's remaining run.  The
// victim keeps the prefix it is already sweeping — its buffer keeps the
// subtrees of that prefix resident — and the thief receives a run that is
// itself Hilbert-contiguous, so locality degrades by one region split per
// steal instead of collapsing to the interleaved shared queue.  Steals move
// whole runs between queues under per-queue mutexes; a task is therefore
// executed exactly once regardless of how steals and pops interleave (the
// race/property tests in stealing_test.go pin this).

// The executed split must be a property of the queues, the estimates and the
// steals — not of the host scheduler.  The repo measures parallel scaling in
// counted-cost simulated time (est-speedup), because the bench host need not
// have the cores; for the same reason the stealing workers advance in
// *virtual* time: each worker keeps a clock of the cost-model seconds of the
// work it has executed (actual counted comparisons and disk accesses, not
// estimates) and yields while it is more than a bounded window ahead of the
// slowest worker that still has work.  This is a conservative time-window
// simulation: within the window workers run truly concurrently, so real
// cores are still used, while across hosts the queues drain at rates
// proportional to the cost model — which is what makes a drained queue's
// steal pick the victim that a real N-core machine's laggard would be.
// Without pacing the split collapses into host artifacts in both directions:
// on one core with task-granular yielding the queues drain at equal *task*
// rates (so cost-heavy regions never fall behind and steals never fire), and
// with kernel timeslices far coarser than one sub-join a worker bursts
// through its whole region and over-steals from workers that were merely
// descheduled.

// stealPacingWindowTasks sizes the virtual-time window in units of the mean
// task estimate: small enough that queue drain rates track the cost model,
// large enough that workers within a region run concurrently on real cores.
const stealPacingWindowTasks = 1

// stealPacer is the shared virtual clock of a stealing execution.
type stealPacer struct {
	clocks []atomic.Uint64 // float64 bits of executed cost-model seconds
	done   []atomic.Bool
	window float64
}

func newStealPacer(workers int, est []float64) *stealPacer {
	var total float64
	for _, e := range est {
		total += e
	}
	mean := 0.0
	if len(est) > 0 {
		mean = total / float64(len(est))
	}
	return &stealPacer{
		clocks: make([]atomic.Uint64, workers),
		done:   make([]atomic.Bool, workers),
		window: stealPacingWindowTasks * mean,
	}
}

// wait blocks (by yielding) while worker w is more than the window ahead of
// the slowest worker that still has work.  The slowest worker never waits,
// so the pacer cannot deadlock; when every other worker has finished, wait
// returns immediately.
func (p *stealPacer) wait(w int) {
	for {
		my := math.Float64frombits(p.clocks[w].Load())
		min := math.Inf(1)
		for i := range p.clocks {
			if i == w || p.done[i].Load() {
				continue
			}
			if v := math.Float64frombits(p.clocks[i].Load()); v < min {
				min = v
			}
		}
		if my <= min+p.window { // min is +Inf when w is the last worker running
			return
		}
		runtime.Gosched()
	}
}

// advance adds dv executed cost-model seconds to worker w's clock.
func (p *stealPacer) advance(w int, dv float64) {
	my := math.Float64frombits(p.clocks[w].Load())
	p.clocks[w].Store(math.Float64bits(my + dv))
}

// finish marks worker w done so that others stop waiting for its clock.
func (p *stealPacer) finish(w int) {
	p.done[w].Store(true)
}

// stealQueue is one worker's region queue.  The owner pops from the head;
// thieves remove the tail half of the remaining run.  All fields are guarded
// by mu except approx, an atomically readable copy of load that victim
// selection reads without locking every queue.
type stealQueue struct {
	mu     sync.Mutex
	tasks  []int32 // task indices in Hilbert order; tasks[head:] remain
	head   int
	load   float64       // remaining estimated seconds of tasks[head:]
	approx atomic.Uint64 // float64 bits of load, for lock-free victim scans

	// Owner-side steal accounting (written only by the owning worker).
	steals      int // successful steal operations performed as thief
	stolenTasks int // tasks acquired through stealing
}

// newStealQueues builds one queue per worker from the spatial schedule and
// the per-task estimates.  The schedule slices are private per worker, so the
// queues can adopt them without copying.
func newStealQueues(schedule [][]int32, est []float64) []*stealQueue {
	queues := make([]*stealQueue, len(schedule))
	for w, run := range schedule {
		q := &stealQueue{tasks: run}
		var load float64
		for _, i := range run {
			load += est[i]
		}
		q.setLoadLocked(load)
		queues[w] = q
	}
	return queues
}

// setLoadLocked updates load and its atomic shadow; the caller holds mu (or
// has exclusive access during construction).
func (q *stealQueue) setLoadLocked(v float64) {
	if v < 0 {
		// Guard against float drift when subtracting the last task.
		v = 0
	}
	q.load = v
	q.approx.Store(math.Float64bits(v))
}

// remainingApprox returns the queue's remaining estimated load without
// locking; victim selection tolerates the slight staleness.
func (q *stealQueue) remainingApprox() float64 {
	return math.Float64frombits(q.approx.Load())
}

// pop removes the next task from the head of the queue, preserving the
// Hilbert order of the owner's region.
func (q *stealQueue) pop(est []float64) (int32, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.tasks) {
		return 0, false
	}
	i := q.tasks[q.head]
	q.head++
	q.setLoadLocked(q.load - est[i])
	return i, true
}

// stealTail removes the latter half of the queue's remaining run into buf and
// returns it with its estimated load.  The victim keeps the first half — the
// prefix of its Hilbert run it is already processing.  Runs of fewer than two
// tasks are not stealable: the victim's last task stays with its owner, which
// bounds the steal churn at the very tail of the join.
func (q *stealQueue) stealTail(buf []int32, est []float64) ([]int32, float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	remaining := len(q.tasks) - q.head
	if remaining < 2 {
		return buf[:0], 0
	}
	n := remaining / 2
	cut := len(q.tasks) - n
	buf = append(buf[:0], q.tasks[cut:]...)
	q.tasks = q.tasks[:cut]
	var load float64
	for _, i := range buf {
		load += est[i]
	}
	q.setLoadLocked(q.load - load)
	return buf, load
}

// install replaces the (drained) queue's run with a stolen one.  The run is
// copied out of the thief's scratch buffer so the queue stays stealable by
// other workers without aliasing.
func (q *stealQueue) install(run []int32, load float64) {
	q.mu.Lock()
	q.tasks = append(q.tasks[:0], run...)
	q.head = 0
	q.setLoadLocked(load)
	q.mu.Unlock()
}

// steal refills worker w's drained queue from the most-loaded victim.  It
// returns false when no stealable work remains: every other queue is either
// empty or down to a single task, which its owner will finish.  A stolen run
// is invisible while it moves between queues (removed from the victim, not
// yet installed in the thief), so inFlight tracks moves in progress and a
// scanner that finds nothing stealable waits for them to land before
// concluding the tail is unstealable — otherwise a worker could exit early
// while a large run is mid-flight and its new owner would finish it alone.
// Victim selection reads the atomic load shadows, so the scan takes no
// locks; only the chosen victim is locked, and never while holding the
// thief's own lock, so thieves cannot deadlock on each other.
func steal(queues []*stealQueue, w int, buf *[]int32, est []float64, inFlight *atomic.Int32) bool {
	skip := make([]bool, len(queues))
	for {
		victim, best := -1, 0.0
		for i, q := range queues {
			if i == w || skip[i] {
				continue
			}
			if l := q.remainingApprox(); l > best {
				best, victim = l, i
			}
		}
		if victim < 0 {
			if inFlight.Load() > 0 {
				// A run is moving between queues; once installed it may be
				// stealable (or a skipped victim may have been refilled), so
				// rescan from scratch instead of giving up.
				runtime.Gosched()
				for i := range skip {
					skip[i] = false
				}
				continue
			}
			return false
		}
		inFlight.Add(1)
		run, load := queues[victim].stealTail(*buf, est)
		*buf = run
		if len(run) == 0 {
			// The victim drained (or shrank to one task) between the scan and
			// the lock; it can only shrink further, so skip it and rescan.
			inFlight.Add(-1)
			skip[victim] = true
			continue
		}
		self := queues[w]
		self.install(run, load)
		inFlight.Add(-1)
		self.steals++
		self.stolenTasks += len(run)
		return true
	}
}
