package join

import (
	"math"
	"sync"
	"sync/atomic"
)

// Locality-preserving work stealing (PartitionStealing).
//
// Every worker owns the Hilbert-contiguous region queue the spatial schedule
// assigned to it and consumes it front to back, so as long as the estimates
// hold, execution is exactly the spatial schedule: contiguous Hilbert runs
// per worker, private-buffer reuse intact.  When a worker drains its queue it
// becomes a thief: it picks the victim with the largest remaining load and
// takes half of the *tail* of the victim's remaining run.  The victim keeps
// the prefix it is already sweeping — its buffer keeps the subtrees of that
// prefix resident — and the thief receives a run that is itself
// Hilbert-contiguous, so locality degrades by one region split per steal
// instead of collapsing to the interleaved shared queue.  Steals move whole
// runs between queues under per-queue mutexes; a task is therefore executed
// exactly once regardless of how steals and pops interleave (the
// race/property tests in stealing_test.go pin this).
//
// Remaining load is the *estimated* seconds of the tasks still queued,
// corrected by the owner's observed actual/estimated ratio: each worker
// continuously compares its virtual clock (the cost-model seconds of the
// counted work it actually executed) against the drained estimate of the
// tasks it executed, and publishes the ratio.  A region whose estimates run
// systematically low (dense data the sampled statistics under-predict) then
// looks as heavy to thieves as it really is, so victim selection no longer
// chases the raw estimate's bias.

// The executed split must be a property of the queues, the estimates and the
// steals — not of the host scheduler.  The repo measures parallel scaling in
// counted-cost simulated time (est-speedup), because the bench host need not
// have the cores; for the same reason the stealing workers advance in
// *virtual* time: each worker keeps a clock of the cost-model seconds of the
// work it has executed (actual counted comparisons and disk accesses, not
// estimates) and waits while it is more than a bounded window ahead of the
// slowest worker that still has work.  This is a conservative time-window
// simulation: within the window workers run truly concurrently, so real
// cores are still used, while across hosts the queues drain at rates
// proportional to the cost model — which is what makes a drained queue's
// steal pick the victim that a real N-core machine's laggard would be.
// Without pacing the split collapses into host artifacts in both directions:
// on one core with task-granular yielding the queues drain at equal *task*
// rates (so cost-heavy regions never fall behind and steals never fire), and
// with kernel timeslices far coarser than one sub-join a worker bursts
// through its whole region and over-steals from workers that were merely
// descheduled.
//
// A worker ahead of the window parks on a condition variable instead of
// spinning in runtime.Gosched (the PR-4 implementation burned a full host
// core per waiting worker): the admission predicate — clear() — is unchanged
// bit for bit, only the idling mechanism differs, so the pacer admits
// exactly the same executions it always did (stealing_test.go pins the
// predicate against a reference implementation).  The fast path stays
// lock-free: advance is one atomic store plus one atomic load; the mutex and
// broadcast are touched only when some worker is actually parked.

// stealPacingWindowTasks sizes the virtual-time window in units of the mean
// task estimate: small enough that queue drain rates track the cost model,
// large enough that workers within a region run concurrently on real cores.
const stealPacingWindowTasks = 1

// stealPacer is the shared virtual clock of a stealing execution.
type stealPacer struct {
	clocks []atomic.Uint64 // float64 bits of executed cost-model seconds
	done   []atomic.Bool
	window float64

	mu      sync.Mutex
	cond    sync.Cond
	waiters atomic.Int32 // workers parked on cond; advance wakes only if > 0
}

func newStealPacer(workers int, est []float64) *stealPacer {
	var total float64
	for _, e := range est {
		total += e
	}
	mean := 0.0
	if len(est) > 0 {
		mean = total / float64(len(est))
	}
	p := &stealPacer{
		clocks: make([]atomic.Uint64, workers),
		done:   make([]atomic.Bool, workers),
		window: stealPacingWindowTasks * mean,
	}
	p.cond.L = &p.mu
	return p
}

// clear reports whether worker w may proceed: it is at most the window ahead
// of the slowest worker that still has work.  The slowest worker is always
// clear, so the pacer cannot deadlock; when every other worker has finished,
// min is +Inf and everyone is clear.  This predicate is the PR-4 spin
// condition verbatim — the waiting mechanism around it must never change it.
func (p *stealPacer) clear(w int) bool {
	my := math.Float64frombits(p.clocks[w].Load())
	min := math.Inf(1)
	for i := range p.clocks {
		if i == w || p.done[i].Load() {
			continue
		}
		if v := math.Float64frombits(p.clocks[i].Load()); v < min {
			min = v
		}
	}
	return my <= min+p.window
}

// wait parks worker w until it is clear to proceed.  The common case — the
// worker is within the window — is a lock-free check; only a worker actually
// ahead of the window takes the mutex and sleeps on the condition variable,
// to be woken by the next advance or finish of any other worker.
func (p *stealPacer) wait(w int) {
	if p.clear(w) {
		return
	}
	p.mu.Lock()
	p.waiters.Add(1)
	for !p.clear(w) {
		p.cond.Wait()
	}
	p.waiters.Add(-1)
	p.mu.Unlock()
}

// advance adds dv executed cost-model seconds to worker w's clock and wakes
// any parked workers, whose window may now have moved.
func (p *stealPacer) advance(w int, dv float64) {
	my := math.Float64frombits(p.clocks[w].Load())
	p.clocks[w].Store(math.Float64bits(my + dv))
	p.wake()
}

// finish marks worker w done so that others stop waiting for its clock.
func (p *stealPacer) finish(w int) {
	p.done[w].Store(true)
	p.wake()
}

// wake broadcasts to parked workers.  Taking the mutex orders the broadcast
// after any in-progress park: a waiter either saw the new clock value during
// its predicate check under the mutex, or is already asleep on the condition
// variable when the broadcast fires — a wakeup cannot fall between the two.
func (p *stealPacer) wake() {
	if p.waiters.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// stealQueue is one worker's region queue.  The owner pops from the head;
// thieves remove the tail half of the remaining run.  All fields are guarded
// by mu except approx and bias, atomically readable copies that victim
// selection reads without locking every queue.
type stealQueue struct {
	mu     sync.Mutex
	tasks  []int32 // task indices in Hilbert order; tasks[head:] remain
	head   int
	load   float64       // remaining estimated seconds of tasks[head:]
	approx atomic.Uint64 // float64 bits of load, for lock-free victim scans
	bias   atomic.Uint64 // float64 bits of the owner's actual/estimated ratio

	// Owner-side steal accounting (written only by the owning worker).
	steals      int // successful steal operations performed as thief
	stolenTasks int // tasks acquired through stealing
}

// newStealQueues builds one queue per worker from the spatial schedule and
// the per-task estimates.  The schedule slices are private per worker, so the
// queues can adopt them without copying.
func newStealQueues(schedule [][]int32, est []float64) []*stealQueue {
	queues := make([]*stealQueue, len(schedule))
	for w, run := range schedule {
		q := &stealQueue{tasks: run}
		var load float64
		for _, i := range run {
			load += est[i]
		}
		q.setLoadLocked(load)
		queues[w] = q
	}
	return queues
}

// setLoadLocked updates load and its atomic shadow; the caller holds mu (or
// has exclusive access during construction).
func (q *stealQueue) setLoadLocked(v float64) {
	if v < 0 {
		// Guard against float drift when subtracting the last task.
		v = 0
	}
	q.load = v
	q.approx.Store(math.Float64bits(v))
}

// remainingApprox returns the queue's remaining estimated load without
// locking; victim selection tolerates the slight staleness.
func (q *stealQueue) remainingApprox() float64 {
	return math.Float64frombits(q.approx.Load())
}

// biasClamp bounds the published actual/estimated ratio: a worker's first
// task or a degenerate estimate must not make its whole region look 100x
// heavier (or lighter) to thieves than the estimator said.
const biasClamp = 8

// setBiasRatio publishes the owner's observed actual/estimated cost ratio.
func (q *stealQueue) setBiasRatio(r float64) {
	if !(r > 0) { // also catches NaN
		return
	}
	if r < 1/float64(biasClamp) {
		r = 1 / float64(biasClamp)
	} else if r > biasClamp {
		r = biasClamp
	}
	q.bias.Store(math.Float64bits(r))
}

// biasRatio returns the owner's published actual/estimated ratio (1 until
// the owner has executed enough to publish one).
func (q *stealQueue) biasRatio() float64 {
	if b := q.bias.Load(); b != 0 {
		return math.Float64frombits(b)
	}
	return 1
}

// pop removes the next task from the head of the queue, preserving the
// Hilbert order of the owner's region.
func (q *stealQueue) pop(est []float64) (int32, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.tasks) {
		return 0, false
	}
	i := q.tasks[q.head]
	q.head++
	q.setLoadLocked(q.load - est[i])
	return i, true
}

// stealTail removes the latter half of the queue's remaining run into buf and
// returns it with its estimated load.  The victim keeps the first half — the
// prefix of its Hilbert run it is already processing.  Runs of fewer than two
// tasks are not stealable: the victim's last task stays with its owner, which
// bounds the steal churn at the very tail of the join.
func (q *stealQueue) stealTail(buf []int32, est []float64) ([]int32, float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	remaining := len(q.tasks) - q.head
	if remaining < 2 {
		return buf[:0], 0
	}
	n := remaining / 2
	cut := len(q.tasks) - n
	buf = append(buf[:0], q.tasks[cut:]...)
	q.tasks = q.tasks[:cut]
	var load float64
	for _, i := range buf {
		load += est[i]
	}
	q.setLoadLocked(q.load - load)
	return buf, load
}

// install replaces the (drained) queue's run with a stolen one.  The run is
// copied out of the thief's scratch buffer so the queue stays stealable by
// other workers without aliasing.
func (q *stealQueue) install(run []int32, load float64) {
	q.mu.Lock()
	q.tasks = append(q.tasks[:0], run...)
	q.head = 0
	q.setLoadLocked(load)
	q.mu.Unlock()
}

// stealFlight tracks stolen runs in transit between queues.  A stolen run is
// invisible while it moves (removed from the victim, not yet installed in the
// thief); a thief whose victim scan comes up empty must therefore wait for
// in-transit moves to land before concluding the tail is unstealable —
// otherwise a worker could exit early while a large run is mid-flight and its
// new owner would finish it alone.  The wait parks on a condition variable
// (the PR-4 implementation re-scanned in a runtime.Gosched loop, burning a
// core for as long as a move was in progress): moving counts the runs in
// transit and seq bumps whenever one lands or aborts, so settle can
// distinguish "rescan, something changed" from "nothing in transit, the
// conclusion is final".
type stealFlight struct {
	mu     sync.Mutex
	cond   sync.Cond
	moving int
	seq    uint64
}

func newStealFlight() *stealFlight {
	f := &stealFlight{}
	f.cond.L = &f.mu
	return f
}

// begin records a run leaving a victim's queue.
func (f *stealFlight) begin() {
	f.mu.Lock()
	f.moving++
	f.mu.Unlock()
}

// finishMove records the end of one move — landed in the thief's queue or
// aborted because the victim drained between the scan and the lock.  Both
// outcomes wake settled thieves: a landing may expose stealable work, an
// abort may leave moving at 0, making their empty scan final.
func (f *stealFlight) finishMove() {
	f.mu.Lock()
	f.moving--
	f.seq++
	f.cond.Broadcast()
	f.mu.Unlock()
}

// settle is called by a thief that found nothing stealable.  It returns
// false when no move is in transit — the conclusion is final, the thief can
// exit.  Otherwise it parks until a move lands or aborts and returns true:
// the landed run may be stealable (or a skipped victim refilled), so the
// thief must rescan from scratch.
func (f *stealFlight) settle() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.moving == 0 {
		return false
	}
	s := f.seq
	for f.moving > 0 && f.seq == s {
		f.cond.Wait()
	}
	return true
}

// steal refills worker w's drained queue from the victim with the largest
// bias-corrected remaining load — the raw estimate times the victim owner's
// published actual/estimated ratio, so systematically under- (or over-)
// estimated regions are ranked by what they will really cost.  It returns
// false when no stealable work remains: every other queue is either empty or
// down to a single task, which its owner will finish.  Victim selection
// reads the atomic load and bias shadows, so the scan takes no locks; only
// the chosen victim is locked, and never while holding the thief's own lock,
// so thieves cannot deadlock on each other.
func steal(queues []*stealQueue, w int, buf *[]int32, est []float64, flight *stealFlight) bool {
	skip := make([]bool, len(queues))
	for {
		victim, best := -1, 0.0
		for i, q := range queues {
			if i == w || skip[i] {
				continue
			}
			if l := q.remainingApprox() * q.biasRatio(); l > best {
				best, victim = l, i
			}
		}
		if victim < 0 {
			if !flight.settle() {
				return false
			}
			// A run landed somewhere (or a skipped victim may have been
			// refilled); rescan from scratch.
			for i := range skip {
				skip[i] = false
			}
			continue
		}
		flight.begin()
		run, load := queues[victim].stealTail(*buf, est)
		*buf = run
		if len(run) == 0 {
			// The victim drained (or shrank to one task) between the scan and
			// the lock; it can only shrink further, so skip it and rescan.
			flight.finishMove()
			skip[victim] = true
			continue
		}
		self := queues[w]
		self.install(run, load)
		// The stolen run comes from the victim's region, so the victim's
		// observed ratio is the best available bias for it; the thief's own
		// ratio described the region it just finished.  The caller resets its
		// accumulators so the published ratio stays scoped to the run at hand.
		self.bias.Store(queues[victim].bias.Load())
		flight.finishMove()
		self.steals++
		self.stolenTasks += len(run)
		return true
	}
}
