package join

import (
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/sweep"
)

// handleHeightDifference deals with the case of section 4.4: the two trees
// have different heights, so the synchronized descent eventually pairs a data
// (leaf) node of the shorter tree with a directory node of the taller tree.
// In that case the data rectangles of the leaf node are evaluated as window
// queries against the subtrees referenced by the directory node, following
// the configured HeightPolicy.  It reports whether the pair was handled here;
// if both nodes are of the same kind the caller continues its normal
// algorithm.
//
// rect optionally restricts the search space (it is the intersection of the
// parents' rectangles); SJ1 passes nil.
func (e *executor) handleHeightDifference(nr, ns *rtree.Node, rect *geom.Rect) bool {
	switch {
	case nr.IsLeaf() == ns.IsLeaf():
		return false
	case nr.IsLeaf():
		// nr holds data rectangles of R, ns is a directory node of S.
		e.joinLeafWithDirectory(nr, ns, e.s, rect, false)
	default:
		// ns holds data rectangles of S, nr is a directory node of R.
		e.joinLeafWithDirectory(ns, nr, e.r, rect, true)
	}
	return true
}

// emitLeafDir reports one (data entry, subtree entry) result, preserving the
// R/S orientation chosen by handleHeightDifference: with swapped set, the
// leaf holds data of S and the directory subtree data of R.
func (e *executor) emitLeafDir(dataID, subtreeID int32, swapped bool) {
	if swapped {
		e.emit(Pair{R: subtreeID, S: dataID})
	} else {
		e.emit(Pair{R: dataID, S: subtreeID})
	}
}

// joinLeafWithDirectory joins the data node leaf with the directory node dir
// belonging to dirTree.  The routine never nests, so all scratch space comes
// from the executor's single heights arena.
func (e *executor) joinLeafWithDirectory(leaf, dir *rtree.Node, dirTree *rtree.Tree, rect *geom.Rect, swapped bool) {
	h := &e.arena.heights
	// Under the within-distance predicate the R-side rectangles are the
	// expanded ones; which physical side that is depends on the orientation
	// chosen by handleHeightDifference.  The pairwise leaf-vs-directory tests
	// below expand the leaf rectangle instead — the expanded-intersection
	// test is symmetric in the per-axis gaps, so the two conventions accept
	// exactly the same pairs.
	leafEps, dirEps := e.eps, 0.0
	if swapped {
		leafEps, dirEps = 0, e.eps
	}
	if rect != nil {
		h.leafIdx = e.restrictIdxEps(leaf.Entries, *rect, h.leafIdx[:0], leafEps)
		h.dirIdx = e.restrictIdxEps(dir.Entries, *rect, h.dirIdx[:0], dirEps)
	} else {
		h.leafIdx = appendAllIdx(h.leafIdx[:0], len(leaf.Entries))
		h.dirIdx = appendAllIdx(h.dirIdx[:0], len(dir.Entries))
	}
	if len(h.leafIdx) == 0 || len(h.dirIdx) == 0 {
		return
	}

	switch e.opts.HeightPolicy {
	case PolicyBatchedWindows:
		// Policy (b): for each directory entry, run all window queries that
		// intersect it in one traversal of its subtree, so that every page of
		// the subtree is read at most once.  The callback is hoisted out of
		// the loop (it reads the current h.ids at call time), so the loop body
		// allocates nothing.
		emit := func(q int, found rtree.Entry) {
			if e.eps > 0 {
				ok, cost := geom.WithinDistSquaredCost(h.exact[q], found.Rect, e.eps2)
				e.local.Comparisons += cost
				if !ok {
					return
				}
			}
			e.emitLeafDir(h.ids[q], found.Data, swapped)
		}
		for _, id := range h.dirIdx {
			if e.cancel.cancelled() {
				return
			}
			de := dir.Entries[id]
			h.queries = h.queries[:0]
			h.ids = h.ids[:0]
			h.exact = h.exact[:0]
			var comps int64
			for _, il := range h.leafIdx {
				le := &leaf.Entries[il]
				e.local.PairsTested++
				q := e.expandR(le.Rect)
				ok, cost := geom.IntersectsCost(q, de.Rect)
				comps += cost
				if ok {
					h.queries = append(h.queries, q)
					h.ids = append(h.ids, le.Data)
					h.exact = append(h.exact, le.Rect)
				}
			}
			e.local.Comparisons += comps
			if len(h.queries) == 0 {
				continue
			}
			e.local.FlushTo(e.metrics)
			dirTree.AccessNode(e.tracker, de.Child)
			dirTree.BatchSearchSubtreeScratch(de.Child, h.queries, e.tracker, &h.batch, emit)
		}

	case PolicySweepOrder:
		// Policy (c): determine the intersecting (data, directory) pairs with
		// the sorted intersection test and run the window queries in that
		// spatially local order; the shared LRU buffer provides the reuse.
		e.sortIdxByXL(h.leafIdx, leaf.Entries)
		e.sortIdxByXL(h.dirIdx, dir.Entries)
		h.leafRects = gatherRectsEps(h.leafRects[:0], leaf.Entries, h.leafIdx, e.eps)
		h.dirRects = gatherRects(h.dirRects[:0], dir.Entries, h.dirIdx)
		h.pairs = sweep.AppendPairs(h.leafRects, h.dirRects, &e.local, h.pairs[:0])
		e.local.PairsTested += int64(len(h.pairs))
		e.local.FlushTo(e.metrics)
		for _, p := range h.pairs {
			if e.cancel.cancelled() {
				return
			}
			le := leaf.Entries[h.leafIdx[p.R]]
			de := dir.Entries[h.dirIdx[p.S]]
			dirTree.AccessNode(e.tracker, de.Child)
			dirTree.SearchSubtree(de.Child, e.expandR(le.Rect), e.tracker, func(found rtree.Entry) bool {
				if e.eps > 0 {
					ok, cost := geom.WithinDistSquaredCost(le.Rect, found.Rect, e.eps2)
					e.local.Comparisons += cost
					if !ok {
						return true
					}
				}
				e.emitLeafDir(le.Data, found.Data, swapped)
				return true
			})
		}

	default:
		// Policy (a): an individual window query per intersecting pair; the
		// pages of a subtree are read again for every query unless the buffer
		// still holds them.
		for _, il := range h.leafIdx {
			le := leaf.Entries[il]
			for _, id := range h.dirIdx {
				if e.cancel.cancelled() {
					return
				}
				de := dir.Entries[id]
				e.local.PairsTested++
				ok, cost := geom.IntersectsCost(e.expandR(le.Rect), de.Rect)
				e.local.Comparisons += cost
				if !ok {
					continue
				}
				e.local.FlushTo(e.metrics)
				dirTree.AccessNode(e.tracker, de.Child)
				dirTree.SearchSubtree(de.Child, e.expandR(le.Rect), e.tracker, func(found rtree.Entry) bool {
					if e.eps > 0 {
						ok, cost := geom.WithinDistSquaredCost(le.Rect, found.Rect, e.eps2)
						e.local.Comparisons += cost
						if !ok {
							return true
						}
					}
					e.emitLeafDir(le.Data, found.Data, swapped)
					return true
				})
			}
		}
	}
}
