package join

import (
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/sweep"
)

// handleHeightDifference deals with the case of section 4.4: the two trees
// have different heights, so the synchronized descent eventually pairs a data
// (leaf) node of the shorter tree with a directory node of the taller tree.
// In that case the data rectangles of the leaf node are evaluated as window
// queries against the subtrees referenced by the directory node, following
// the configured HeightPolicy.  It reports whether the pair was handled here;
// if both nodes are of the same kind the caller continues its normal
// algorithm.
//
// rect optionally restricts the search space (it is the intersection of the
// parents' rectangles); SJ1 passes nil.
func (e *executor) handleHeightDifference(nr, ns *rtree.Node, rect *geom.Rect) bool {
	switch {
	case nr.IsLeaf() == ns.IsLeaf():
		return false
	case nr.IsLeaf():
		// nr holds data rectangles of R, ns is a directory node of S.
		e.joinLeafWithDirectory(nr, ns, e.s, rect, func(dataID, subtreeID int32) Pair {
			return Pair{R: dataID, S: subtreeID}
		})
	default:
		// ns holds data rectangles of S, nr is a directory node of R.
		e.joinLeafWithDirectory(ns, nr, e.r, rect, func(dataID, subtreeID int32) Pair {
			return Pair{R: subtreeID, S: dataID}
		})
	}
	return true
}

// joinLeafWithDirectory joins the data node leaf with the directory node dir
// belonging to dirTree.  makePair builds a result pair from the identifier of
// a data entry of the leaf node and the identifier of a data entry found in
// the directory subtree, preserving the R/S orientation chosen by the caller.
func (e *executor) joinLeafWithDirectory(leaf, dir *rtree.Node, dirTree *rtree.Tree, rect *geom.Rect, makePair func(dataID, subtreeID int32) Pair) {
	leafEntries := leaf.Entries
	dirEntries := dir.Entries
	if rect != nil {
		leafEntries = e.restrict(leafEntries, *rect)
		dirEntries = e.restrict(dirEntries, *rect)
	}
	if len(leafEntries) == 0 || len(dirEntries) == 0 {
		return
	}

	switch e.opts.HeightPolicy {
	case PolicyBatchedWindows:
		// Policy (b): for each directory entry, run all window queries that
		// intersect it in one traversal of its subtree, so that every page of
		// the subtree is read at most once.
		for _, de := range dirEntries {
			var queries []geom.Rect
			var ids []int32
			for _, le := range leafEntries {
				e.metrics.AddPairTested()
				if geom.IntersectsCounted(le.Rect, de.Rect, e.metrics) {
					queries = append(queries, le.Rect)
					ids = append(ids, le.Data)
				}
			}
			if len(queries) == 0 {
				continue
			}
			dirTree.AccessNode(e.tracker, de.Child)
			dirTree.BatchSearchSubtree(de.Child, queries, e.tracker, func(q int, found rtree.Entry) {
				e.emit(makePair(ids[q], found.Data))
			})
		}

	case PolicySweepOrder:
		// Policy (c): determine the intersecting (data, directory) pairs with
		// the sorted intersection test and run the window queries in that
		// spatially local order; the shared LRU buffer provides the reuse.
		leafSorted := append([]rtree.Entry(nil), leafEntries...)
		dirSorted := append([]rtree.Entry(nil), dirEntries...)
		leafRects := e.sortEntries(leafSorted)
		dirRects := e.sortEntries(dirSorted)
		sweep.SortedIntersectionTest(leafRects, dirRects, e.metrics, func(p sweep.Pair) {
			e.metrics.AddPairTested()
			le := leafSorted[p.R]
			de := dirSorted[p.S]
			dirTree.AccessNode(e.tracker, de.Child)
			dirTree.SearchSubtree(de.Child, le.Rect, e.tracker, func(found rtree.Entry) bool {
				e.emit(makePair(le.Data, found.Data))
				return true
			})
		})

	default:
		// Policy (a): an individual window query per intersecting pair; the
		// pages of a subtree are read again for every query unless the buffer
		// still holds them.
		for _, le := range leafEntries {
			for _, de := range dirEntries {
				e.metrics.AddPairTested()
				if !geom.IntersectsCounted(le.Rect, de.Rect, e.metrics) {
					continue
				}
				dirTree.AccessNode(e.tracker, de.Child)
				dirTree.SearchSubtree(de.Child, le.Rect, e.tracker, func(found rtree.Entry) bool {
					e.emit(makePair(le.Data, found.Data))
					return true
				})
			}
		}
	}
}
