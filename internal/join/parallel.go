package join

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/sweep"
)

// ParallelOptions configures ParallelJoin.
type ParallelOptions struct {
	// Options are the per-worker join options; the method must be one of the
	// tree-based algorithms (SJ1-SJ5).  Each worker receives its own LRU
	// buffer of Options.BufferBytes / Workers bytes (but at least one page),
	// modelling a partitioned buffer pool.
	Options Options
	// Workers is the number of concurrent workers; 0 means GOMAXPROCS.
	// Workers is clamped to the number of tasks, so small joins never spin up
	// idle goroutines with starved buffer partitions.
	Workers int
	// Strategy selects how tasks are assigned to workers.  The default,
	// PartitionDynamic, lets workers pull from a shared queue; the static
	// strategies (PartitionRoundRobin, PartitionLPT, PartitionSpatial)
	// compute a deterministic per-worker schedule, which makes the
	// per-worker snapshots reproducible and the cost-model speedup of a
	// simulated N-worker execution meaningful on any machine.
	Strategy PartitionStrategy
	// MinTasksPerWorker, when above 1, makes the planner keep splitting
	// tasks one level deeper until it has at least MinTasksPerWorker tasks
	// per worker (or only leaf-level tasks remain).  Bulk-loaded trees have
	// root fan-outs near the page capacity, so the root level often yields a
	// handful of giant tasks; finer tasks cost extra planning work but let
	// the static strategies balance load and, for PartitionSpatial, give
	// each worker enough neighbouring tasks to share subtrees.  0 or 1
	// keeps the default: split only while there are fewer tasks than
	// workers.  The split rounds themselves run on the worker goroutines
	// (restriction and plane-sweep in parallel, I/O charged deterministically
	// afterwards), so fine granularities no longer make planning the
	// critical-path floor.
	MinTasksPerWorker int
	// DisableSampledStats makes the task estimator fall back to the
	// catalog-average subtree model even when the trees carry sampled
	// catalog statistics (rtree.Tree.CatalogStats).  By default the
	// estimate-driven strategies (LPT, spatial, stealing) use the sampled
	// per-level node counts and leaf extents, which track the tree as built;
	// the flag exists for the estimator ablation in the experiments.
	DisableSampledStats bool
}

// parallelTask is one independent sub-join: the pair of subtrees referenced
// by two intersecting directory entries.
type parallelTask struct {
	er, es rtree.Entry
}

// parallelWorker is the resident state of one ParallelJoin worker: its
// private collector, its partition of the buffer pool (LRU plus tracker) and
// its pair buffer.  Workers are recycled through a sync.Pool so repeated
// joins (benchmarks, experiment sweeps, servers running one join per
// request) reuse the LRU frame pool, the collector and the grown pair buffer
// instead of rebuilding them per join.
type parallelWorker struct {
	col     *metrics.Collector
	lru     *buffer.LRU
	tracker *buffer.Tracker
	pairs   []Pair
	tasks   int
}

var parallelWorkerPool sync.Pool

// planState is the planning-side buffer state (LRU plus tracker), recycled
// through a pool like the worker state so repeated joins do not rebuild the
// frame pool per run.
type planState struct {
	lru     *buffer.LRU
	tracker *buffer.Tracker
}

var planPool sync.Pool

// getPlanState returns a plan tracker backed by a buffer of bufferBytes,
// charging accesses to col.
func getPlanState(bufferBytes, pageSize int, usePathBuffer bool, col *metrics.Collector) *planState {
	v := planPool.Get()
	if v == nil {
		lru := buffer.NewLRUForBytes(bufferBytes, pageSize)
		return &planState{lru: lru, tracker: buffer.NewTracker(lru, col, pageSize, usePathBuffer)}
	}
	p := v.(*planState)
	p.lru.ReconfigureForBytes(bufferBytes, pageSize)
	p.tracker.Reconfigure(col, pageSize, usePathBuffer)
	return p
}

// getParallelWorker returns a worker configured for this run's buffer
// partition, reusing pooled state when available.
func getParallelWorker(bufferBytes, pageSize int, usePathBuffer bool) *parallelWorker {
	v := parallelWorkerPool.Get()
	if v == nil {
		col := metrics.NewCollector()
		lru := buffer.NewLRUForBytes(bufferBytes, pageSize)
		return &parallelWorker{
			col:     col,
			lru:     lru,
			tracker: buffer.NewTracker(lru, col, pageSize, usePathBuffer),
		}
	}
	w := v.(*parallelWorker)
	w.col.Reset()
	w.lru.ReconfigureForBytes(bufferBytes, pageSize)
	w.tracker.Reconfigure(w.col, pageSize, usePathBuffer)
	w.pairs = w.pairs[:0]
	w.tasks = 0
	return w
}

// ParallelJoin computes the MBR-spatial-join of two trees by partitioning the
// pairs of qualifying directory entries across workers, each of which runs
// the configured sequential algorithm on its partition.  This implements the
// parallel execution the paper lists as future work (section 6, referring to
// parallel R-trees); it is an extension beyond the published algorithms.
//
// The execution is contention-free in steady state: every worker owns its
// collector, its LRU buffer and its result buffer, and pulls tasks off a
// shared, pre-materialised task list with a single atomic fetch-add per
// task.  Worker state is resident: collectors, LRU frame pools, trackers and
// pair buffers are recycled through a pool across joins, so repeated joins
// reach a steady state without per-run buffer construction.  The per-worker
// results and counters are merged into the shared result exactly once at the
// end, and the per-worker snapshots are published as Result.WorkerMetrics /
// Result.WorkerTasks for load-balance diagnostics.  When the root fan-out is
// smaller than the worker count, the planner splits the qualifying pairs one
// level deeper (repeatedly, while it helps) so every worker has work to do.
//
// The result set is identical to the sequential join; the order of the
// materialised pairs depends on the scheduling (SortPairs restores a
// canonical order).  OnPair, if set, is invoked while the workers run,
// serialised by a mutex, so streaming consumers keep O(1) memory with
// DiscardPairs — opting into the callback is what buys back that one
// contention point.  The reported metrics are the sums over all workers plus
// the planning costs (also published separately as Result.PlanMetrics), so
// disk accesses are those of a partitioned buffer rather than one shared
// buffer.  Planning reads go through their own LRU buffer of
// Options.BufferBytes — the whole buffer, since planning precedes the
// partitioning — so a node inspected for several qualifying pairs is charged
// one disk read, exactly as the sequential join would charge it.  When the
// planner splits, the node pairs it expands are charged the restriction,
// sorting and sweep comparisons the CPU-tuned sequential algorithms would
// charge (but no PairsTested accounting), so CPU measures are comparable
// only between runs with the same effective task depth.
func ParallelJoin(r, s *rtree.Tree, popts ParallelOptions) (*Result, error) {
	if r == nil || s == nil {
		return nil, ErrNilTree
	}
	if r.PageSize() != s.PageSize() {
		return nil, ErrPageSizeMismatch
	}
	opts := popts.Options
	if opts.Method == NestedLoop {
		return nil, ErrParallelNestedLoop
	}
	if err := opts.Predicate.Validate(); err != nil {
		return nil, err
	}
	switch popts.Strategy {
	case PartitionDynamic, PartitionRoundRobin, PartitionLPT, PartitionSpatial, PartitionStealing:
	default:
		return nil, fmt.Errorf("join: %w: %v", ErrUnknownPartitionStrategy, popts.Strategy)
	}
	// eps is the within-distance expansion the planner applies to every
	// R-side rectangle test; zero for the other predicates, keeping their
	// plans bit-identical to the pre-predicate code.
	var eps float64
	if opts.Predicate.Kind == PredWithinDist {
		eps = opts.Predicate.Epsilon
	}
	knn := opts.Predicate.Kind == PredKNN
	if r.Root().IsLeaf() || s.Root().IsLeaf() {
		// Trees this small offer no parallelism; run the sequential join.
		// No workers ran, so the whole cost is "planning": PlanMetrics =
		// Metrics keeps the invariant that Metrics minus PlanMetrics is the
		// sum of WorkerMetrics, and cost-model consumers (ParallelEstimate)
		// see the sequential cost instead of zero.
		res, err := Join(r, s, opts)
		if err == nil {
			res.PlanMetrics = res.Metrics
		}
		return res, err
	}
	if opts.Context != nil && opts.Context.Err() != nil {
		return nil, cancelErr(opts.Context)
	}
	watch := newCancelWatch(opts.Context)
	defer watch.stop()
	workers := popts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}

	collector := opts.Collector
	if collector == nil {
		collector = metrics.NewCollector()
	}
	before := collector.Snapshot()

	// Planning: enumerate all pairs of root entries whose rectangles
	// intersect; each is an independent sub-join of two subtrees.  Planning
	// reads (the roots and any nodes opened while splitting) go through a
	// plan tracker backed by the full configured buffer — planning runs
	// before the buffer is partitioned across workers — so a child node that
	// qualifies in several pairs is charged one disk read, not one per pair.
	var plan metrics.Local
	ps := getPlanState(opts.BufferBytes, r.PageSize(), opts.UsePathBuffer, collector)
	planTracker := ps.tracker
	attachReaders(planTracker, r, s, opts)
	r.AccessNode(planTracker, r.Root())
	s.AccessNode(planTracker, s.Root())
	var tasks []parallelTask
	if knn {
		// kNN tasks pair one R root entry with the whole of S: every S item
		// is a potential neighbour of every R item, so the intersection test
		// does not partition the work — disjointness in R does.  The per-task
		// result sets are disjoint in R and merge by concatenation under any
		// schedule.
		sRoot := rtree.Entry{Rect: s.Root().MBR(), Child: s.Root()}
		for _, er := range r.Root().Entries {
			tasks = append(tasks, parallelTask{er: er, es: sRoot})
		}
	} else {
		var comps int64
		for _, er := range r.Root().Entries {
			for _, es := range s.Root().Entries {
				ok, cost := geom.IntersectsCost(expandEps(er.Rect, eps), es.Rect)
				comps += cost
				if ok {
					tasks = append(tasks, parallelTask{er: er, es: es})
				}
			}
		}
		plan.Comparisons += comps
	}
	// With fewer qualifying root pairs than workers (times the configured
	// granularity), split one level deeper so the task list offers enough
	// parallelism; repeat while it helps.
	minTasks := workers
	if popts.MinTasksPerWorker > 1 {
		minTasks = workers * popts.MinTasksPerWorker
	}
	var scratches []*splitScratch
	for len(tasks) > 0 && len(tasks) < minTasks && !watch.cancelled() {
		var split []parallelTask
		var ok bool
		if knn {
			split, ok = splitTasksKNN(r, tasks, planTracker)
		} else {
			split, ok = splitTasksParallel(r, s, tasks, planTracker, &plan, workers, &scratches, eps)
		}
		if !ok {
			break
		}
		tasks = split
	}
	plan.FlushTo(collector)
	planErr := planTracker.ReadErr()
	planPool.Put(ps)
	if watch.cancelled() {
		return nil, cancelErr(opts.Context)
	}
	if planErr != nil {
		return nil, fmt.Errorf("join: physical page read failed while planning: %w", planErr)
	}

	res := &Result{Method: opts.Method, Strategy: popts.Strategy, Predicate: opts.Predicate}
	res.PlanMetrics = collector.Snapshot().Sub(before)
	if len(tasks) == 0 {
		res.Metrics = res.PlanMetrics
		return res, nil
	}
	if popts.Strategy == PartitionDynamic || popts.Strategy == PartitionRoundRobin {
		// Larger intersection areas first gives a better load balance for
		// the queue and the round-robin deal; the LPT and spatial strategies
		// define their own task orders.
		sort.SliceStable(tasks, func(i, j int) bool {
			return expandEps(tasks[i].er.Rect, eps).IntersectionArea(tasks[i].es.Rect) >
				expandEps(tasks[j].er.Rect, eps).IntersectionArea(tasks[j].es.Rect)
		})
	}

	if workers > len(tasks) {
		workers = len(tasks)
	}
	// The estimate-driven strategies need per-task cost estimates; the
	// estimator reads only the trees' catalog statistics (sampled, or
	// catalog averages as a fallback), never the unvisited child pages, so
	// estimation charges no I/O.  The estimates are (io, cpu) vectors: the
	// spatial/stealing region packing balances the components separately,
	// while the scalar views below (LPT, queue loads, pacing bias) use the
	// io+cpu totals.
	var vecs []costVec
	var est []float64
	switch popts.Strategy {
	case PartitionLPT, PartitionSpatial, PartitionStealing:
		vecs = newTaskEstimator(r, s, !popts.DisableSampledStats, opts.Predicate).vectors(tasks)
		est = scalars(vecs)
	}
	schedule := buildSchedule(popts.Strategy, r, s, tasks, vecs, workers)
	if schedule != nil && est != nil {
		// Publish the predicted per-worker loads of the initial schedule so
		// the experiments can report estimator error against the measured
		// per-worker costs.
		res.WorkerEstSeconds = make([]float64, workers)
		for w, idxs := range schedule {
			for _, i := range idxs {
				res.WorkerEstSeconds[w] += est[i]
			}
		}
	}
	var queues []*stealQueue
	var pacer *stealPacer
	var flight *stealFlight
	if popts.Strategy == PartitionStealing {
		// The spatial schedule becomes the workers' initial region queues;
		// from here on ownership of task runs moves between queues at run
		// time, so the static schedule slices must no longer be read.
		queues = newStealQueues(schedule, est)
		pacer = newStealPacer(workers, est)
		flight = newStealFlight()
		schedule = nil
	}
	perWorkerBuffer := opts.BufferBytes / workers
	if opts.BufferBytes > 0 && perWorkerBuffer < r.PageSize() {
		// A configured buffer smaller than one page per worker would silently
		// disable buffering; give each worker at least one page instead.
		perWorkerBuffer = r.PageSize()
	}

	// Workers pull tasks with one atomic fetch-add each and accumulate pairs
	// and counters privately; everything is merged once below.  Only an
	// OnPair callback reintroduces a shared lock, since the caller asked to
	// observe the stream as it is produced.
	var next atomic.Int64
	ws := make([]*parallelWorker, workers)
	workerCounts := make([]int, workers)
	onPair := opts.OnPair
	if onPair != nil {
		var mu sync.Mutex
		inner := onPair
		onPair = func(p Pair) {
			mu.Lock()
			inner(p)
			mu.Unlock()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws[w] = getParallelWorker(perWorkerBuffer, r.PageSize(), opts.UsePathBuffer)
		attachReaders(ws[w].tracker, r, s, opts)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := ws[w]
			ar := arenaPool.Get().(*arena)
			e := &executor{
				r:       r,
				s:       s,
				tracker: worker.tracker,
				metrics: worker.col,
				opts:    opts,
				arena:   ar,
				cancel:  watch,
				onPair:  onPair,
				discard: opts.DiscardPairs,
				pairs:   worker.pairs,
				eps:     eps,
				eps2:    eps * eps,
			}
			runTask := func(t parallelTask) {
				if watch.cancelled() {
					return
				}
				worker.tasks++
				if knn {
					// The best-first traversal reads its pages on pop,
					// including the task's two subtree roots.
					e.knnFrom(t.er.Child, t.es.Child)
					return
				}
				rect, ok := e.expandR(t.er.Rect).Intersection(t.es.Rect)
				if !ok {
					return
				}
				e.r.AccessNode(e.tracker, t.er.Child)
				e.s.AccessNode(e.tracker, t.es.Child)
				switch opts.Method {
				case SJ1:
					e.sj1(t.er.Child, t.es.Child)
				case SJ2:
					e.sj2(t.er.Child, t.es.Child, rect, 0)
				default:
					e.sweepJoin(t.er.Child, t.es.Child, rect, opts.Method, 0)
				}
			}
			switch {
			case queues != nil:
				// Stealing: consume the owned region queue front to back,
				// then refill by stealing the tail half of the most-loaded
				// victim.  Progress is paced in counted-cost virtual time
				// (see stealing.go): each task advances this worker's clock
				// by the cost-model seconds of its actual counted work, and
				// the worker yields while more than a bounded window ahead
				// of the slowest active worker, so queues drain at
				// cost-proportional rates on any host.
				q := queues[w]
				stealModel := costmodel.Default()
				pageSize := r.PageSize()
				var stealBuf []int32
				var drainedEst, actualSec float64
				// The pacing clock advances on the same (io, cpu) vector the
				// region packing balances: the worker's virtual time is the
				// max of its accumulated I/O seconds and accumulated CPU
				// seconds, so a comparison-heavy worker and an I/O-heavy
				// worker with the same bottleneck progress at the same rate
				// instead of the I/O-heavy one (whose scalar total is larger)
				// being throttled first.  Both sums are monotone, so the max
				// never decreases and advance() always receives a
				// non-negative delta.
				var vio, vcpu, vclock float64
				for {
					if watch.cancelled() {
						break
					}
					i, ok := q.pop(est)
					if !ok {
						if !steal(queues, w, &stealBuf, est, flight) {
							break
						}
						// A fresh region was installed (carrying the victim's
						// published bias); start its ratio from scratch so the
						// published value describes this run, not the region
						// this worker just finished.
						drainedEst, actualSec = 0, 0
						continue
					}
					pacer.wait(w)
					c0 := worker.col.Snapshot()
					l0c, l0s := e.local.Comparisons, e.local.SortComparisons
					runTask(tasks[i])
					// The per-node-pair flushes move local counts into the
					// collector, so the collector delta plus the (possibly
					// negative) local delta is the task's true cost.
					c1 := worker.col.Snapshot()
					disk := c1.DiskAccesses() - c0.DiskAccesses()
					comps := c1.TotalComparisons() - c0.TotalComparisons() +
						(e.local.Comparisons - l0c) + (e.local.SortComparisons - l0s)
					cost := stealModel.Estimate(disk, pageSize, comps)
					sec := cost.TotalSeconds()
					vio += cost.IOSeconds
					vcpu += cost.CPUSeconds
					if c := math.Max(vio, vcpu); c > vclock {
						pacer.advance(w, c-vclock)
						vclock = c
					}
					// Publish the observed actual/estimated ratio so victim
					// selection can correct this region's estimate bias.
					drainedEst += est[i]
					actualSec += sec
					if drainedEst > 0 {
						q.setBiasRatio(actualSec / drainedEst)
					}
				}
				pacer.finish(w)
			case schedule != nil:
				for _, i := range schedule[w] {
					if watch.cancelled() {
						break
					}
					runTask(tasks[i])
				}
			default:
				for {
					i := next.Add(1) - 1
					if i >= int64(len(tasks)) || watch.cancelled() {
						break
					}
					runTask(tasks[i])
				}
			}
			e.local.FlushTo(worker.col)
			arenaPool.Put(ar)
			worker.pairs = e.pairs
			workerCounts[w] = e.count
		}(w)
	}
	wg.Wait()

	if queues != nil {
		res.WorkerSteals = make([]int, workers)
		for w, q := range queues {
			res.WorkerSteals[w] = q.steals
			res.StolenTasks += q.stolenTasks
		}
	}
	res.WorkerMetrics = make([]metrics.Snapshot, workers)
	res.WorkerTasks = make([]int, workers)
	var readErr error
	for w := 0; w < workers; w++ {
		worker := ws[w]
		res.WorkerMetrics[w] = worker.col.Snapshot()
		res.WorkerTasks[w] = worker.tasks
		if err := worker.tracker.ReadErr(); err != nil && readErr == nil {
			readErr = err
		}
		collector.AddSnapshot(res.WorkerMetrics[w])
		res.Count += workerCounts[w]
		if !opts.DiscardPairs {
			res.Pairs = append(res.Pairs, worker.pairs...)
		}
		// The pair buffer has been copied out (or is empty); the worker and
		// its grown state go back to the pool for the next join.
		parallelWorkerPool.Put(worker)
	}
	res.Metrics = collector.Snapshot().Sub(before)
	// Worker state went back to the pools above even on cancellation; only
	// the assembled result is withheld, deterministically.
	if opts.Context != nil && opts.Context.Err() != nil {
		return nil, cancelErr(opts.Context)
	}
	if readErr != nil {
		return nil, fmt.Errorf("join: physical page read failed: %w", readErr)
	}
	return res, nil
}

// attachReaders wires the measured-I/O hooks (per-tree PageReaders and the
// optional shared PageCache) into a tracker, so ParallelJoin's planning and
// worker trackers follow the same physical-read discipline as the
// sequential join.
func attachReaders(tr *buffer.Tracker, r, s *rtree.Tree, opts Options) {
	if opts.PageReaderR != nil {
		tr.SetPageReader(r.ID(), opts.PageReaderR)
	}
	if opts.PageReaderS != nil {
		tr.SetPageReader(s.ID(), opts.PageReaderS)
	}
	if opts.PageCache != nil {
		tr.SetPageCache(opts.PageCache)
	}
}

// splitScratch holds the buffers splitTasks reuses across split rounds: the
// restricted, x-sorted entry and rectangle sequences of the two nodes being
// expanded, the sweep's output pairs, and the index-sort machinery shared
// with the executor (arena.go's idxSorter/stableSort), so repeated split
// rounds charge the same comparison counts as the worker-side sorts and
// allocate nothing per node pair.
type splitScratch struct {
	rEnts, sEnts   []rtree.Entry
	rRects, sRects []geom.Rect
	pairs          []sweep.Pair
	idx            []int32
	sorted         []rtree.Entry
	sorter         idxSorter
}

// restrict appends the entries of n intersecting the parent intersection
// rectangle (the section-4.2 search-space restriction), charging the
// comparisons to plan, and returns them sorted by lower x-corner together
// with the parallel rectangle sequence the sweep consumes.  eps, non-zero
// only on the R side of a within-distance plan, expands every entry
// rectangle before it is tested and gathered, mirroring the executor's
// restrictIdxEps/gatherRectsEps pair; the x-sort order is unchanged by the
// constant shift.
func (sc *splitScratch) restrict(n *rtree.Node, inter geom.Rect, ents []rtree.Entry, rects []geom.Rect, plan *metrics.Local, eps float64) ([]rtree.Entry, []geom.Rect) {
	ents = ents[:0]
	var comps int64
	for _, e := range n.Entries {
		ok, cost := geom.IntersectsCost(expandEps(e.Rect, eps), inter)
		comps += cost
		if ok {
			ents = append(ents, e)
		}
	}
	plan.Comparisons += comps
	plan.NodeSorts++
	sc.idx = sc.idx[:0]
	for i := range ents {
		sc.idx = append(sc.idx, int32(i))
	}
	sc.sorter.idx, sc.sorter.entries, sc.sorter.comps = sc.idx, ents, 0
	stableSort(&sc.sorter, len(sc.idx))
	plan.SortComparisons += sc.sorter.comps
	sc.sorter.idx, sc.sorter.entries = nil, nil
	sc.sorted = sc.sorted[:0]
	rects = rects[:0]
	for _, i := range sc.idx {
		sc.sorted = append(sc.sorted, ents[i])
		rects = append(rects, expandEps(ents[i].Rect, eps))
	}
	copy(ents, sc.sorted)
	return ents, rects
}

// expandTasks is the CPU half of one split round over a contiguous chunk of
// the task list: every task whose two subtrees are directory nodes is
// replaced by the qualifying pairs of their children, charging the
// restriction, sorting and sweep comparisons to plan but performing no I/O
// accounting.  It appends to out and reports whether anything was split.
//
// The qualifying child pairs are found the way the CPU-tuned sequential
// algorithms find them — restrict both entry sets to the parents'
// intersection rectangle, sort by lower x-corner and run the sorted
// intersection test — so splitting a level of bulk-loaded trees with
// page-capacity fan-outs costs O(n log n) planning comparisons per node
// pair instead of the n² of the naive pairing.
//
// Splitting preserves the result set: a child pair whose rectangles do not
// intersect cannot contribute any result, and the search-space restriction
// never removes entries that take part in an intersecting pair.
func expandTasks(tasks []parallelTask, sc *splitScratch, plan *metrics.Local, out []parallelTask, eps float64) ([]parallelTask, bool) {
	split := false
	if out == nil {
		out = make([]parallelTask, 0, 2*len(tasks))
	}
	for _, t := range tasks {
		if t.er.Child.IsLeaf() || t.es.Child.IsLeaf() {
			out = append(out, t)
			continue
		}
		inter, ok := expandEps(t.er.Rect, eps).Intersection(t.es.Rect)
		if !ok {
			continue // qualifying tasks always intersect; degenerate guard
		}
		split = true
		sc.rEnts, sc.rRects = sc.restrict(t.er.Child, inter, sc.rEnts, sc.rRects, plan, eps)
		sc.sEnts, sc.sRects = sc.restrict(t.es.Child, inter, sc.sEnts, sc.sRects, plan, 0)
		sc.pairs = sweep.AppendPairs(sc.rRects, sc.sRects, plan, sc.pairs[:0])
		for _, p := range sc.pairs {
			out = append(out, parallelTask{er: sc.rEnts[p.R], es: sc.sEnts[p.S]})
		}
	}
	return out, split
}

// chargeSplitReads is the I/O half of one split round: it charges the node
// reads of every expanded task to the plan tracker serially, in task order —
// exactly the access sequence the sequential split performed — so the
// planning I/O accounting is bit-identical no matter how many goroutines ran
// the CPU half.
func chargeSplitReads(r, s *rtree.Tree, tasks []parallelTask, tracker *buffer.Tracker, eps float64) {
	for _, t := range tasks {
		if t.er.Child.IsLeaf() || t.es.Child.IsLeaf() {
			continue
		}
		if !expandEps(t.er.Rect, eps).Intersects(t.es.Rect) {
			continue
		}
		r.AccessNode(tracker, t.er.Child)
		s.AccessNode(tracker, t.es.Child)
	}
}

// splitTasks runs one split round on a single goroutine.  It reports false
// when nothing could be split (all tasks reference leaf nodes), in which
// case the task list is returned unchanged.
func splitTasks(r, s *rtree.Tree, tasks []parallelTask, tracker *buffer.Tracker, plan *metrics.Local, sc *splitScratch, eps float64) ([]parallelTask, bool) {
	out, split := expandTasks(tasks, sc, plan, nil, eps)
	if !split {
		return tasks, false
	}
	chargeSplitReads(r, s, tasks, tracker, eps)
	return out, true
}

// splitTasksKNN runs one split round of a kNN plan: every task whose R
// subtree root is a directory node is replaced by one task per child entry,
// against the same unchanged S side.  No predicate tests run — every R item
// has neighbours, so every child task qualifies unconditionally and the
// round charges only the read of the expanded R node.  The output stays
// disjoint in R, which is the property the merge relies on.
func splitTasksKNN(r *rtree.Tree, tasks []parallelTask, tracker *buffer.Tracker) ([]parallelTask, bool) {
	split := false
	out := make([]parallelTask, 0, 2*len(tasks))
	for _, t := range tasks {
		if t.er.Child.IsLeaf() {
			out = append(out, t)
			continue
		}
		split = true
		r.AccessNode(tracker, t.er.Child)
		for _, er := range t.er.Child.Entries {
			out = append(out, parallelTask{er: er, es: t.es})
		}
	}
	if !split {
		return tasks, false
	}
	return out, true
}

// planChunkMinTasks is the smallest chunk worth a planning goroutine; finer
// chunks would spend more on spawning than on the restriction sweeps.
const planChunkMinTasks = 16

// splitTasksParallel runs one split round with the restriction and
// plane-sweep work fanned out over up to workers goroutines, each with its
// own scratch and local counters (grown in scratches and reused across
// rounds).  The deterministic parts of the plan are preserved exactly: the
// output task order equals the sequential round's (chunks are contiguous and
// concatenated in order), the comparison counters are order-independent
// sums, and the I/O is charged serially in task order afterwards, so plan
// metrics are bit-identical to the single-goroutine round
// (TestParallelPlanningMatchesSequential pins this).  This closes the
// planning critical-path floor: at fine MinTasksPerWorker granularities the
// split rounds dominated planning and ran on one goroutine only.
func splitTasksParallel(r, s *rtree.Tree, tasks []parallelTask, tracker *buffer.Tracker, plan *metrics.Local, workers int, scratches *[]*splitScratch, eps float64) ([]parallelTask, bool) {
	chunks := workers
	if max := len(tasks) / planChunkMinTasks; chunks > max {
		chunks = max
	}
	for len(*scratches) < chunks || len(*scratches) == 0 {
		*scratches = append(*scratches, &splitScratch{})
	}
	if chunks <= 1 {
		return splitTasks(r, s, tasks, tracker, plan, (*scratches)[0], eps)
	}
	outs := make([][]parallelTask, chunks)
	locals := make([]metrics.Local, chunks)
	splits := make([]bool, chunks)
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo, hi := c*len(tasks)/chunks, (c+1)*len(tasks)/chunks
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			outs[c], splits[c] = expandTasks(tasks[lo:hi], (*scratches)[c], &locals[c], nil, eps)
		}(c, lo, hi)
	}
	wg.Wait()
	split := false
	for c := range locals {
		split = split || splits[c]
		plan.Comparisons += locals[c].Comparisons
		plan.SortComparisons += locals[c].SortComparisons
		plan.NodeSorts += locals[c].NodeSorts
	}
	if !split {
		return tasks, false
	}
	chargeSplitReads(r, s, tasks, tracker, eps)
	out := outs[0]
	for _, o := range outs[1:] {
		out = append(out, o...)
	}
	return out, true
}

// ErrParallelNestedLoop is returned when ParallelJoin is asked to run the
// index-free nested-loop baseline, which it does not support.
var ErrParallelNestedLoop = errors.New("join: ParallelJoin supports only the tree-based methods SJ1-SJ5")

// ErrUnknownPartitionStrategy is returned when ParallelOptions.Strategy is
// not one of the defined strategies.
var ErrUnknownPartitionStrategy = errors.New("unknown partition strategy")
