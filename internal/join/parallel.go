package join

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rtree"
)

// ParallelOptions configures ParallelJoin.
type ParallelOptions struct {
	// Options are the per-worker join options; the method must be one of the
	// tree-based algorithms (SJ1-SJ5).  Each worker receives its own LRU
	// buffer of Options.BufferBytes / Workers bytes (but at least one page),
	// modelling a partitioned buffer pool.
	Options Options
	// Workers is the number of concurrent workers; 0 means GOMAXPROCS.
	// Workers is clamped to the number of tasks, so small joins never spin up
	// idle goroutines with starved buffer partitions.
	Workers int
	// StaticPartition assigns tasks to workers round-robin over the
	// area-sorted task list instead of letting workers pull from the shared
	// queue.  The dynamic queue balances better on real multi-core machines,
	// but its distribution depends on scheduling (on a single core one worker
	// may drain the whole queue before the others start); the static schedule
	// is deterministic, which makes the per-worker snapshots reproducible and
	// the cost-model speedup of a simulated N-worker execution meaningful on
	// any machine.
	StaticPartition bool
}

// parallelTask is one independent sub-join: the pair of subtrees referenced
// by two intersecting directory entries.
type parallelTask struct {
	er, es rtree.Entry
}

// parallelWorker is the resident state of one ParallelJoin worker: its
// private collector, its partition of the buffer pool (LRU plus tracker) and
// its pair buffer.  Workers are recycled through a sync.Pool so repeated
// joins (benchmarks, experiment sweeps, servers running one join per
// request) reuse the LRU frame pool, the collector and the grown pair buffer
// instead of rebuilding them per join.
type parallelWorker struct {
	col     *metrics.Collector
	lru     *buffer.LRU
	tracker *buffer.Tracker
	pairs   []Pair
	tasks   int
}

var parallelWorkerPool sync.Pool

// getParallelWorker returns a worker configured for this run's buffer
// partition, reusing pooled state when available.
func getParallelWorker(bufferBytes, pageSize int, usePathBuffer bool) *parallelWorker {
	v := parallelWorkerPool.Get()
	if v == nil {
		col := metrics.NewCollector()
		lru := buffer.NewLRUForBytes(bufferBytes, pageSize)
		return &parallelWorker{
			col:     col,
			lru:     lru,
			tracker: buffer.NewTracker(lru, col, pageSize, usePathBuffer),
		}
	}
	w := v.(*parallelWorker)
	w.col.Reset()
	w.lru.ReconfigureForBytes(bufferBytes, pageSize)
	w.tracker.Reconfigure(w.col, pageSize, usePathBuffer)
	w.pairs = w.pairs[:0]
	w.tasks = 0
	return w
}

// ParallelJoin computes the MBR-spatial-join of two trees by partitioning the
// pairs of qualifying directory entries across workers, each of which runs
// the configured sequential algorithm on its partition.  This implements the
// parallel execution the paper lists as future work (section 6, referring to
// parallel R-trees); it is an extension beyond the published algorithms.
//
// The execution is contention-free in steady state: every worker owns its
// collector, its LRU buffer and its result buffer, and pulls tasks off a
// shared, pre-materialised task list with a single atomic fetch-add per
// task.  Worker state is resident: collectors, LRU frame pools, trackers and
// pair buffers are recycled through a pool across joins, so repeated joins
// reach a steady state without per-run buffer construction.  The per-worker
// results and counters are merged into the shared result exactly once at the
// end, and the per-worker snapshots are published as Result.WorkerMetrics /
// Result.WorkerTasks for load-balance diagnostics.  When the root fan-out is
// smaller than the worker count, the planner splits the qualifying pairs one
// level deeper (repeatedly, while it helps) so every worker has work to do.
//
// The result set is identical to the sequential join; the order of the
// materialised pairs depends on the scheduling.  OnPair, if set, is invoked
// while the workers run, serialised by a mutex, so streaming consumers keep
// O(1) memory with DiscardPairs — opting into the callback is what buys back
// that one contention point.  The reported metrics are the sums over all
// workers plus the planning costs, so disk accesses are those of a
// partitioned buffer rather than one shared buffer; when the planner splits,
// the node pairs it expands are charged as plain planning comparisons rather
// than the PairsTested/sorting accounting the sequential algorithms would
// record for the same pairs, so CPU measures are comparable only between
// runs with the same effective task depth.
func ParallelJoin(r, s *rtree.Tree, popts ParallelOptions) (*Result, error) {
	if r == nil || s == nil {
		return nil, ErrNilTree
	}
	if r.PageSize() != s.PageSize() {
		return nil, ErrPageSizeMismatch
	}
	opts := popts.Options
	if opts.Method == NestedLoop {
		return nil, ErrParallelNestedLoop
	}
	if r.Root().IsLeaf() || s.Root().IsLeaf() {
		// Trees this small offer no parallelism; run the sequential join.
		return Join(r, s, opts)
	}
	workers := popts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}

	collector := opts.Collector
	if collector == nil {
		collector = metrics.NewCollector()
	}
	before := collector.Snapshot()

	// Planning: enumerate all pairs of root entries whose rectangles
	// intersect; each is an independent sub-join of two subtrees.  Planning
	// reads (the roots and any nodes opened while splitting) go through a
	// bufferless tracker charged to the shared collector.
	var plan metrics.Local
	planTracker := buffer.NewTracker(buffer.NewLRUForBytes(0, r.PageSize()), collector, r.PageSize(), opts.UsePathBuffer)
	r.AccessNode(planTracker, r.Root())
	s.AccessNode(planTracker, s.Root())
	var tasks []parallelTask
	var comps int64
	for _, er := range r.Root().Entries {
		for _, es := range s.Root().Entries {
			ok, cost := geom.IntersectsCost(er.Rect, es.Rect)
			comps += cost
			if ok {
				tasks = append(tasks, parallelTask{er: er, es: es})
			}
		}
	}
	plan.Comparisons += comps
	// With fewer qualifying root pairs than workers, split one level deeper
	// so the task list offers enough parallelism; repeat while it helps.
	for len(tasks) > 0 && len(tasks) < workers {
		split, ok := splitTasks(r, s, tasks, planTracker, &plan)
		if !ok {
			break
		}
		tasks = split
	}
	plan.FlushTo(collector)

	res := &Result{Method: opts.Method}
	if len(tasks) == 0 {
		res.Metrics = collector.Snapshot().Sub(before)
		return res, nil
	}
	// Larger intersection areas first gives a better load balance.
	sort.SliceStable(tasks, func(i, j int) bool {
		return tasks[i].er.Rect.IntersectionArea(tasks[i].es.Rect) >
			tasks[j].er.Rect.IntersectionArea(tasks[j].es.Rect)
	})

	if workers > len(tasks) {
		workers = len(tasks)
	}
	perWorkerBuffer := opts.BufferBytes / workers
	if opts.BufferBytes > 0 && perWorkerBuffer < r.PageSize() {
		// A configured buffer smaller than one page per worker would silently
		// disable buffering; give each worker at least one page instead.
		perWorkerBuffer = r.PageSize()
	}

	// Workers pull tasks with one atomic fetch-add each and accumulate pairs
	// and counters privately; everything is merged once below.  Only an
	// OnPair callback reintroduces a shared lock, since the caller asked to
	// observe the stream as it is produced.
	var next atomic.Int64
	ws := make([]*parallelWorker, workers)
	workerCounts := make([]int, workers)
	onPair := opts.OnPair
	if onPair != nil {
		var mu sync.Mutex
		inner := onPair
		onPair = func(p Pair) {
			mu.Lock()
			inner(p)
			mu.Unlock()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws[w] = getParallelWorker(perWorkerBuffer, r.PageSize(), opts.UsePathBuffer)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := ws[w]
			ar := arenaPool.Get().(*arena)
			e := &executor{
				r:       r,
				s:       s,
				tracker: worker.tracker,
				metrics: worker.col,
				opts:    opts,
				arena:   ar,
				onPair:  onPair,
				discard: opts.DiscardPairs,
				pairs:   worker.pairs,
			}
			runTask := func(t parallelTask) {
				worker.tasks++
				rect, ok := t.er.Rect.Intersection(t.es.Rect)
				if !ok {
					return
				}
				e.r.AccessNode(e.tracker, t.er.Child)
				e.s.AccessNode(e.tracker, t.es.Child)
				switch opts.Method {
				case SJ1:
					e.sj1(t.er.Child, t.es.Child)
				case SJ2:
					e.sj2(t.er.Child, t.es.Child, rect, 0)
				default:
					e.sweepJoin(t.er.Child, t.es.Child, rect, opts.Method, 0)
				}
			}
			if popts.StaticPartition {
				for i := w; i < len(tasks); i += workers {
					runTask(tasks[i])
				}
			} else {
				for {
					i := next.Add(1) - 1
					if i >= int64(len(tasks)) {
						break
					}
					runTask(tasks[i])
				}
			}
			e.local.FlushTo(worker.col)
			arenaPool.Put(ar)
			worker.pairs = e.pairs
			workerCounts[w] = e.count
		}(w)
	}
	wg.Wait()

	res.WorkerMetrics = make([]metrics.Snapshot, workers)
	res.WorkerTasks = make([]int, workers)
	for w := 0; w < workers; w++ {
		worker := ws[w]
		res.WorkerMetrics[w] = worker.col.Snapshot()
		res.WorkerTasks[w] = worker.tasks
		collector.AddSnapshot(res.WorkerMetrics[w])
		res.Count += workerCounts[w]
		if !opts.DiscardPairs {
			res.Pairs = append(res.Pairs, worker.pairs...)
		}
		// The pair buffer has been copied out (or is empty); the worker and
		// its grown state go back to the pool for the next join.
		parallelWorkerPool.Put(worker)
	}
	res.Metrics = collector.Snapshot().Sub(before)
	return res, nil
}

// splitTasks replaces every task whose two subtrees are directory nodes by
// the qualifying pairs of their children, reading the two nodes through the
// planning tracker.  It reports false when nothing could be split (all tasks
// reference leaf nodes), in which case the task list is returned unchanged.
//
// Splitting preserves the result set: a child pair whose rectangles do not
// intersect cannot contribute any result, and the search-space restriction
// applied by the sequential algorithms never removes entries that take part
// in an intersecting pair.
func splitTasks(r, s *rtree.Tree, tasks []parallelTask, tracker *buffer.Tracker, plan *metrics.Local) ([]parallelTask, bool) {
	split := false
	out := make([]parallelTask, 0, 2*len(tasks))
	var comps int64
	for _, t := range tasks {
		if t.er.Child.IsLeaf() || t.es.Child.IsLeaf() {
			out = append(out, t)
			continue
		}
		split = true
		r.AccessNode(tracker, t.er.Child)
		s.AccessNode(tracker, t.es.Child)
		for _, er := range t.er.Child.Entries {
			for _, es := range t.es.Child.Entries {
				ok, cost := geom.IntersectsCost(er.Rect, es.Rect)
				comps += cost
				if ok {
					out = append(out, parallelTask{er: er, es: es})
				}
			}
		}
	}
	plan.Comparisons += comps
	if !split {
		return tasks, false
	}
	return out, true
}

// ErrParallelNestedLoop is returned when ParallelJoin is asked to run the
// index-free nested-loop baseline, which it does not support.
var ErrParallelNestedLoop = errors.New("join: ParallelJoin supports only the tree-based methods SJ1-SJ5")
