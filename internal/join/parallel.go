package join

import (
	"errors"
	"runtime"
	"sort"
	"sync"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rtree"
)

// ParallelOptions configures ParallelJoin.
type ParallelOptions struct {
	// Options are the per-worker join options; the method must be one of the
	// tree-based algorithms (SJ1-SJ5).  Each worker receives its own LRU
	// buffer of Options.BufferBytes / Workers bytes, modelling a partitioned
	// buffer pool.
	Options Options
	// Workers is the number of concurrent workers; 0 means GOMAXPROCS.
	Workers int
}

// ParallelJoin computes the MBR-spatial-join of two trees by partitioning the
// pairs of qualifying root entries across workers, each of which runs the
// configured sequential algorithm on its partition.  This implements the
// parallel execution the paper lists as future work (section 6, referring to
// parallel R-trees); it is an extension beyond the published algorithms.
//
// The result set is identical to the sequential join.  The reported metrics
// are the sums over all workers, so disk accesses are those of a partitioned
// buffer rather than one shared buffer.
func ParallelJoin(r, s *rtree.Tree, popts ParallelOptions) (*Result, error) {
	if r == nil || s == nil {
		return nil, ErrNilTree
	}
	if r.PageSize() != s.PageSize() {
		return nil, ErrPageSizeMismatch
	}
	opts := popts.Options
	if opts.Method == NestedLoop {
		return nil, ErrParallelNestedLoop
	}
	if r.Root().IsLeaf() || s.Root().IsLeaf() {
		// Trees this small offer no parallelism; run the sequential join.
		return Join(r, s, opts)
	}
	workers := popts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}

	collector := opts.Collector
	if collector == nil {
		collector = metrics.NewCollector()
	}
	before := collector.Snapshot()

	// Partition: all pairs of root entries whose rectangles intersect.  Each
	// pair is an independent sub-join of two subtrees.
	type task struct {
		er, es rtree.Entry
	}
	var tasks []task
	for _, er := range r.Root().Entries {
		for _, es := range s.Root().Entries {
			if geom.IntersectsCounted(er.Rect, es.Rect, collector) {
				tasks = append(tasks, task{er: er, es: es})
			}
		}
	}
	// Larger intersection areas first gives a better load balance.
	sort.SliceStable(tasks, func(i, j int) bool {
		return tasks[i].er.Rect.IntersectionArea(tasks[i].es.Rect) >
			tasks[j].er.Rect.IntersectionArea(tasks[j].es.Rect)
	})

	res := &Result{Method: opts.Method}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		jobs = make(chan task)
	)
	emit := func(p Pair) {
		mu.Lock()
		defer mu.Unlock()
		res.Count++
		collector.AddPairReported()
		if opts.OnPair != nil {
			opts.OnPair(p)
		}
		if !opts.DiscardPairs {
			res.Pairs = append(res.Pairs, p)
		}
	}

	perWorkerBuffer := opts.BufferBytes / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lru := buffer.NewLRUForBytes(perWorkerBuffer, r.PageSize())
			tracker := buffer.NewTracker(lru, collector, r.PageSize(), opts.UsePathBuffer)
			e := &executor{r: r, s: s, tracker: tracker, metrics: collector, opts: opts, emit: emit}
			for t := range jobs {
				rect, ok := t.er.Rect.Intersection(t.es.Rect)
				if !ok {
					continue
				}
				e.r.AccessNode(e.tracker, t.er.Child)
				e.s.AccessNode(e.tracker, t.es.Child)
				switch opts.Method {
				case SJ1:
					e.sj1(t.er.Child, t.es.Child)
				case SJ2:
					e.sj2(t.er.Child, t.es.Child, rect)
				default:
					e.sweepJoin(t.er.Child, t.es.Child, rect, opts.Method)
				}
			}
		}()
	}
	for _, t := range tasks {
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	res.Metrics = collector.Snapshot().Sub(before)
	return res, nil
}

// ErrParallelNestedLoop is returned when ParallelJoin is asked to run the
// index-free nested-loop baseline, which it does not support.
var ErrParallelNestedLoop = errors.New("join: ParallelJoin supports only the tree-based methods SJ1-SJ5")
