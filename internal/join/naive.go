package join

import (
	"repro/internal/geom"
	"repro/internal/rtree"
)

// nestedLoop is the index-free baseline of section 2.1: every object of R is
// tested against every object of S.  Its I/O model is a block nested loop:
// every data page of R is read once, and for every data page of R every data
// page of S is read (subject to the shared buffer), which is why the paper
// dismisses it for large relations.
func (e *executor) nestedLoop() {
	var rLeaves, sLeaves []*rtree.Node
	e.r.Walk(func(n *rtree.Node) {
		if n.IsLeaf() {
			rLeaves = append(rLeaves, n)
		}
	})
	e.s.Walk(func(n *rtree.Node) {
		if n.IsLeaf() {
			sLeaves = append(sLeaves, n)
		}
	})
	for _, rn := range rLeaves {
		if e.cancel.cancelled() {
			return
		}
		e.r.AccessNode(e.tracker, rn)
		for _, sn := range sLeaves {
			if e.cancel.cancelled() {
				return
			}
			e.s.AccessNode(e.tracker, sn)
			var comps int64
			for _, er := range rn.Entries {
				for _, es := range sn.Entries {
					ok, cost := e.leafTest(er.Rect, es.Rect)
					comps += cost
					if ok {
						e.emit(Pair{R: er.Data, S: es.Data})
					}
				}
			}
			e.local.Comparisons += comps
			e.local.FlushTo(e.metrics)
		}
	}
}

// runSJ1 executes SpatialJoin1 (section 4.1).
func (e *executor) runSJ1() {
	e.accessRoots()
	e.sj1(e.r.Root(), e.s.Root())
}

// sj1 is the straightforward join: every entry of nr is tested against every
// entry of ns; qualifying directory pairs are descended into.
func (e *executor) sj1(nr, ns *rtree.Node) {
	// One cancellation poll per node pair: an abandoned descent unwinds here
	// without touching further pages, and Join discards the partial result.
	if e.cancel.cancelled() {
		return
	}
	if leafDir := e.handleHeightDifference(nr, ns, nil); leafDir {
		e.local.FlushTo(e.metrics)
		return
	}
	if nr.IsLeaf() && ns.IsLeaf() {
		var comps int64
		for is := range ns.Entries {
			es := &ns.Entries[is]
			for ir := range nr.Entries {
				er := &nr.Entries[ir]
				ok, cost := e.leafTest(er.Rect, es.Rect)
				comps += cost
				if ok {
					e.emit(Pair{R: er.Data, S: es.Data})
				}
			}
		}
		e.local.Comparisons += comps
		e.local.PairsTested += int64(len(nr.Entries) * len(ns.Entries))
		e.local.FlushTo(e.metrics)
		return
	}
	for is := range ns.Entries {
		es := ns.Entries[is]
		for ir := range nr.Entries {
			er := nr.Entries[ir]
			e.local.PairsTested++
			ok, cost := geom.IntersectsCost(e.expandR(er.Rect), es.Rect)
			e.local.Comparisons += cost
			if !ok {
				continue
			}
			e.r.AccessNode(e.tracker, er.Child)
			e.s.AccessNode(e.tracker, es.Child)
			e.sj1(er.Child, es.Child)
		}
	}
	e.local.FlushTo(e.metrics)
}

// runSJ2 executes SpatialJoin2: SJ1 plus the search-space restriction.
func (e *executor) runSJ2() {
	e.accessRoots()
	rootRect, ok := e.rootRect()
	if !ok {
		return
	}
	e.sj2(e.r.Root(), e.s.Root(), rootRect, 0)
}

// rootIntersection returns the intersection of the MBRs of both trees; if the
// trees do not overlap at all the join result is empty.
func rootIntersection(r, s *rtree.Tree) (geom.Rect, bool) {
	rb, okR := r.Bounds()
	sb, okS := s.Bounds()
	if !okR || !okS {
		return geom.Rect{}, false
	}
	return rb.Intersection(sb)
}

// rootRect returns the initial search-space restriction of this run: the
// intersection of the (epsilon-expanded, for within-distance) R bounds with
// the S bounds.  An empty intersection means an empty join result.
func (e *executor) rootRect() (geom.Rect, bool) {
	rb, okR := e.r.Bounds()
	sb, okS := e.s.Bounds()
	if !okR || !okS {
		return geom.Rect{}, false
	}
	return e.expandR(rb).Intersection(sb)
}

// sj2 joins two nodes considering only entries that intersect rect, the
// intersection of the parents' rectangles (section 4.2, "restricting the
// search space").  The marking scans are charged one comparison predicate per
// entry, as in the paper's accounting.  The surviving entries are recorded as
// indices in the depth's scratch frame, so the restriction allocates nothing
// in steady state.
func (e *executor) sj2(nr, ns *rtree.Node, rect geom.Rect, depth int) {
	if e.cancel.cancelled() {
		return
	}
	if leafDir := e.handleHeightDifference(nr, ns, &rect); leafDir {
		e.local.FlushTo(e.metrics)
		return
	}
	f := e.arena.frame(depth)
	f.rIdx = e.restrictIdxEps(nr.Entries, rect, f.rIdx[:0], e.eps)
	f.sIdx = e.restrictIdx(ns.Entries, rect, f.sIdx[:0])
	if nr.IsLeaf() && ns.IsLeaf() {
		var comps, tested int64
		for _, is := range f.sIdx {
			es := &ns.Entries[is]
			for _, ir := range f.rIdx {
				er := &nr.Entries[ir]
				tested++
				ok, cost := e.leafTest(er.Rect, es.Rect)
				comps += cost
				if ok {
					e.emit(Pair{R: er.Data, S: es.Data})
				}
			}
		}
		e.local.Comparisons += comps
		e.local.PairsTested += tested
		e.local.FlushTo(e.metrics)
		return
	}
	for _, is := range f.sIdx {
		es := ns.Entries[is]
		for _, ir := range f.rIdx {
			er := nr.Entries[ir]
			e.local.PairsTested++
			erRect := e.expandR(er.Rect)
			ok, cost := geom.IntersectsCost(erRect, es.Rect)
			e.local.Comparisons += cost
			if !ok {
				continue
			}
			childRect, _ := erRect.Intersection(es.Rect)
			e.r.AccessNode(e.tracker, er.Child)
			e.s.AccessNode(e.tracker, es.Child)
			e.sj2(er.Child, es.Child, childRect, depth+1)
		}
	}
	e.local.FlushTo(e.metrics)
}

// restrictIdx appends to idx the indices of the entries whose rectangle
// intersects rect, charging one intersection predicate per entry for the
// marking scan.
func (e *executor) restrictIdx(entries []rtree.Entry, rect geom.Rect, idx []int32) []int32 {
	var comps int64
	for i := range entries {
		ok, cost := geom.IntersectsCost(entries[i].Rect, rect)
		comps += cost
		if ok {
			idx = append(idx, int32(i))
		}
	}
	e.local.Comparisons += comps
	return idx
}

// restrictIdxEps is restrictIdx for entries of the R tree: under the
// within-distance predicate the R-side rectangles are epsilon-expanded in
// every test they take part in, including the marking scan against the
// parents' intersection rectangle.  With eps == 0 it is restrictIdx.
func (e *executor) restrictIdxEps(entries []rtree.Entry, rect geom.Rect, idx []int32, eps float64) []int32 {
	if eps == 0 {
		return e.restrictIdx(entries, rect, idx)
	}
	var comps int64
	for i := range entries {
		ok, cost := geom.IntersectsCost(geom.ExpandRect(entries[i].Rect, eps), rect)
		comps += cost
		if ok {
			idx = append(idx, int32(i))
		}
	}
	e.local.Comparisons += comps
	return idx
}
