package join

import (
	"repro/internal/geom"
	"repro/internal/rtree"
)

// nestedLoop is the index-free baseline of section 2.1: every object of R is
// tested against every object of S.  Its I/O model is a block nested loop:
// every data page of R is read once, and for every data page of R every data
// page of S is read (subject to the shared buffer), which is why the paper
// dismisses it for large relations.
func (e *executor) nestedLoop() {
	var rLeaves, sLeaves []*rtree.Node
	e.r.Walk(func(n *rtree.Node) {
		if n.IsLeaf() {
			rLeaves = append(rLeaves, n)
		}
	})
	e.s.Walk(func(n *rtree.Node) {
		if n.IsLeaf() {
			sLeaves = append(sLeaves, n)
		}
	})
	for _, rn := range rLeaves {
		e.r.AccessNode(e.tracker, rn)
		for _, sn := range sLeaves {
			e.s.AccessNode(e.tracker, sn)
			for _, er := range rn.Entries {
				for _, es := range sn.Entries {
					if geom.IntersectsCounted(er.Rect, es.Rect, e.metrics) {
						e.emit(Pair{R: er.Data, S: es.Data})
					}
				}
			}
		}
	}
}

// runSJ1 executes SpatialJoin1 (section 4.1).
func (e *executor) runSJ1() {
	e.accessRoots()
	e.sj1(e.r.Root(), e.s.Root())
}

// sj1 is the straightforward join: every entry of nr is tested against every
// entry of ns; qualifying directory pairs are descended into.
func (e *executor) sj1(nr, ns *rtree.Node) {
	if leafDir := e.handleHeightDifference(nr, ns, nil); leafDir {
		return
	}
	for is := range ns.Entries {
		es := ns.Entries[is]
		for ir := range nr.Entries {
			er := nr.Entries[ir]
			e.metrics.AddPairTested()
			if !geom.IntersectsCounted(er.Rect, es.Rect, e.metrics) {
				continue
			}
			if nr.IsLeaf() && ns.IsLeaf() {
				e.emit(Pair{R: er.Data, S: es.Data})
				continue
			}
			e.r.AccessNode(e.tracker, er.Child)
			e.s.AccessNode(e.tracker, es.Child)
			e.sj1(er.Child, es.Child)
		}
	}
}

// runSJ2 executes SpatialJoin2: SJ1 plus the search-space restriction.
func (e *executor) runSJ2() {
	e.accessRoots()
	rootRect, ok := rootIntersection(e.r, e.s)
	if !ok {
		return
	}
	e.sj2(e.r.Root(), e.s.Root(), rootRect)
}

// rootIntersection returns the intersection of the MBRs of both trees; if the
// trees do not overlap at all the join result is empty.
func rootIntersection(r, s *rtree.Tree) (geom.Rect, bool) {
	rb, okR := r.Bounds()
	sb, okS := s.Bounds()
	if !okR || !okS {
		return geom.Rect{}, false
	}
	return rb.Intersection(sb)
}

// sj2 joins two nodes considering only entries that intersect rect, the
// intersection of the parents' rectangles (section 4.2, "restricting the
// search space").  The marking scans are charged one comparison predicate per
// entry, as in the paper's accounting.
func (e *executor) sj2(nr, ns *rtree.Node, rect geom.Rect) {
	if leafDir := e.handleHeightDifference(nr, ns, &rect); leafDir {
		return
	}
	rEntries := e.restrict(nr.Entries, rect)
	sEntries := e.restrict(ns.Entries, rect)
	for _, es := range sEntries {
		for _, er := range rEntries {
			e.metrics.AddPairTested()
			if !geom.IntersectsCounted(er.Rect, es.Rect, e.metrics) {
				continue
			}
			if nr.IsLeaf() && ns.IsLeaf() {
				e.emit(Pair{R: er.Data, S: es.Data})
				continue
			}
			childRect, _ := er.Rect.Intersection(es.Rect)
			e.r.AccessNode(e.tracker, er.Child)
			e.s.AccessNode(e.tracker, es.Child)
			e.sj2(er.Child, es.Child, childRect)
		}
	}
}

// restrict returns the entries whose rectangle intersects rect, charging one
// intersection predicate per entry for the marking scan.
func (e *executor) restrict(entries []rtree.Entry, rect geom.Rect) []rtree.Entry {
	out := make([]rtree.Entry, 0, len(entries))
	for _, en := range entries {
		if geom.IntersectsCounted(en.Rect, rect, e.metrics) {
			out = append(out, en)
		}
	}
	return out
}
