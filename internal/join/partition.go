package join

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/zorder"
)

// PartitionStrategy selects how ParallelJoin assigns the planned sub-join
// tasks to workers.  The zero value is the dynamic shared queue; the three
// static strategies produce a deterministic per-worker schedule, which makes
// the per-worker snapshots (Result.WorkerMetrics) reproducible machine
// properties of the plan rather than of goroutine scheduling.
type PartitionStrategy int

const (
	// PartitionDynamic lets workers pull tasks off a shared queue with one
	// atomic fetch-add per task.  It balances best on real multi-core
	// machines but its per-worker split depends on scheduling (on a single
	// core one worker may drain the whole queue before the others start).
	PartitionDynamic PartitionStrategy = iota
	// PartitionRoundRobin deals the tasks, sorted by descending intersection
	// area, round-robin over the workers.  This was the original static
	// schedule; it balances task counts but ignores both cost and locality.
	PartitionRoundRobin
	// PartitionLPT packs tasks onto workers greedily by descending cost-model
	// estimate (longest-processing-time bin packing): each task goes to the
	// currently least-loaded worker.  It minimises the estimated critical
	// path but, like round-robin, scatters spatially adjacent tasks across
	// workers.
	PartitionLPT
	// PartitionSpatial tiles the joint root intersection into contiguous
	// spatial regions: tasks are ordered along the Hilbert curve of their
	// intersection-rectangle centres (the same curve the Hilbert bulk loader
	// packs with) and cut into one contiguous, estimate-balanced run per
	// worker.  Tasks that share a subtree have nearby intersection centres,
	// so they land on the same worker and its private LRU partition actually
	// gets reuse — the shared-nothing region assignment the paper's
	// future-work section points at.
	PartitionSpatial
	// PartitionStealing starts from the spatial schedule — each worker owns
	// one Hilbert-contiguous region queue — and lets a worker whose queue
	// drains steal half of the *tail* of the most-loaded victim's queue.
	// Tail-stealing keeps the victim's Hilbert prefix intact, so locality
	// degrades gracefully under estimation error instead of collapsing to the
	// shared dynamic queue, while the stealing supplies the wall-clock load
	// balance no static cut can guarantee.  The result set is identical to
	// the sequential join; the per-worker split (and therefore the worker
	// snapshots) depends on runtime scheduling, unlike the static strategies.
	PartitionStealing
)

// String implements fmt.Stringer.
func (s PartitionStrategy) String() string {
	switch s {
	case PartitionDynamic:
		return "dynamic"
	case PartitionRoundRobin:
		return "round-robin"
	case PartitionLPT:
		return "lpt"
	case PartitionSpatial:
		return "spatial"
	case PartitionStealing:
		return "stealing"
	default:
		return fmt.Sprintf("PartitionStrategy(%d)", int(s))
	}
}

// StaticPartitionStrategies lists the deterministic strategies in the order
// the experiments sweep them.
var StaticPartitionStrategies = []PartitionStrategy{PartitionRoundRobin, PartitionLPT, PartitionSpatial}

// PartitionStrategies lists every strategy with a per-worker schedule (the
// static schedules plus the stealing scheduler); the experiments sweep them
// in this order.
var PartitionStrategies = []PartitionStrategy{PartitionRoundRobin, PartitionLPT, PartitionSpatial, PartitionStealing}

// subtreeModel estimates the size of a subtree from catalog statistics (the
// tree's page and entry counts), the kind of metadata a query planner has
// without performing any I/O.
type subtreeModel struct {
	fanout  float64 // average directory fan-out
	leafEnt float64 // average data entries per leaf
}

func newSubtreeModel(t *rtree.Tree) subtreeModel {
	st := t.Stats()
	m := subtreeModel{fanout: float64(t.MaxEntries()), leafEnt: float64(t.MaxEntries())}
	if st.DirPages > 0 {
		m.fanout = float64(st.DirEntries) / float64(st.DirPages)
	}
	if st.DataPages > 0 {
		m.leafEnt = float64(st.DataEntries) / float64(st.DataPages)
	}
	return m
}

// pages returns the expected page count of a subtree whose root node sits at
// the given level (0 = leaf).
func (m subtreeModel) pages(level int) float64 {
	pages, width := 1.0, 1.0
	for l := 0; l < level; l++ {
		width *= m.fanout
		pages += width
	}
	return pages
}

// entries returns the expected data-entry count below a node at the given
// level.
func (m subtreeModel) entries(level int) float64 {
	width := m.leafEnt
	for l := 0; l < level; l++ {
		width *= m.fanout
	}
	return width
}

// sideModel estimates one tree's side of a task: from sampled catalog
// statistics when the tree carries them (the default), falling back to the
// catalog-average subtreeModel otherwise.  The sampled per-level node counts
// replace the fan-out^level geometric model with the tree as actually built,
// and the sampled leaf extents feed a plane-sweep selectivity estimate
// instead of the all-pairs product.
type sideModel struct {
	avg     subtreeModel
	cat     costmodel.Catalog
	sampled bool
}

func newSideModel(t *rtree.Tree, useSampled bool) sideModel {
	m := sideModel{avg: newSubtreeModel(t)}
	if useSampled {
		if cat := t.CatalogStats(); cat.Valid() {
			m.cat, m.sampled = cat, true
		}
	}
	return m
}

func (m sideModel) pages(level int) float64 {
	if m.sampled {
		return m.cat.SubtreePages(level)
	}
	return m.avg.pages(level)
}

func (m sideModel) entries(level int) float64 {
	if m.sampled {
		return m.cat.SubtreeEntries(level)
	}
	return m.avg.entries(level)
}

// taskEstimator converts one planned task into an estimated execution time
// under the paper's cost model.  The expected I/O is the share of each
// subtree's pages overlapping the task's intersection rectangle.  The
// expected CPU is, with sampled statistics on both sides, a plane-sweep
// selectivity estimate (sort cost plus the expected x-overlapping pairs,
// derived from the sampled mean data-rectangle extents); without samples it
// falls back to the product of the expected data entries on either side.
// The estimates only rank tasks for scheduling, so fidelity matters less
// than determinism: identical inputs always produce identical schedules
// (the sampling RNG is deterministically seeded).
type taskEstimator struct {
	model    costmodel.Model
	pageSize int
	r, s     sideModel
	sampled  bool      // both sides carry sampled statistics
	pred     Predicate // the predicate the tasks will execute
}

func newTaskEstimator(r, s *rtree.Tree, useSampled bool, pred Predicate) taskEstimator {
	e := taskEstimator{
		model:    costmodel.Default(),
		pageSize: r.PageSize(),
		r:        newSideModel(r, useSampled),
		s:        newSideModel(s, useSampled),
		pred:     pred,
	}
	e.sampled = e.r.sampled && e.s.sampled
	return e
}

// areaFraction returns the share of an entry rectangle covered by the
// intersection, treating degenerate (zero-area) rectangles as fully covered.
func areaFraction(intersection, area float64) float64 {
	if area <= 0 {
		return 1
	}
	f := intersection / area
	if f > 1 {
		return 1
	}
	return f
}

// extentFraction returns the probability that two intervals of combined
// length sum, placed uniformly in an interval of the given extent, overlap —
// clamped to 1 and treating a degenerate extent as certain overlap.
func extentFraction(sum, extent float64) float64 {
	if extent <= 0 {
		return 1
	}
	if f := sum / extent; f < 1 {
		return f
	}
	return 1
}

// costVec is a per-task cost estimate split into its I/O and CPU components.
// The scalar LPT packing balances the sum io+cpu, which lets a worker collect
// all the comparison-heavy tasks as long as another worker absorbs the I/O:
// the totals match but the comparison skew does not.  Packing on the vector
// with a max-of-components objective balances each resource separately.
type costVec struct {
	io, cpu float64
}

func (v costVec) total() float64 { return v.io + v.cpu }

func (v costVec) add(o costVec) costVec { return costVec{v.io + o.io, v.cpu + o.cpu} }

// vec estimates the cost-model execution time of one task, split into I/O
// and CPU seconds.  Only the task's rectangles and the catalog statistics
// feed the estimate — never the contents of the referenced child nodes,
// which the planner has not read (and so has not paid I/O for).
func (e taskEstimator) vec(t parallelTask) costVec {
	if e.pred.Kind == PredKNN {
		return e.vecKNN(t)
	}
	// Under the within-distance predicate every R-side rectangle test sees
	// the epsilon-expanded rectangle, so the estimate uses the same view:
	// the expansion grows the intersection, the covered page share and the
	// expected entry counts exactly as it grows the executed work.
	var eps float64
	if e.pred.Kind == PredWithinDist {
		eps = e.pred.Epsilon
	}
	erRect := expandEps(t.er.Rect, eps)
	inter := erRect.IntersectionArea(t.es.Rect)
	fr := areaFraction(inter, erRect.Area())
	fs := areaFraction(inter, t.es.Rect.Area())
	pages := fr*e.r.pages(t.er.Child.Level) + fs*e.s.pages(t.es.Child.Level)
	if pages < 2 {
		// Every task reads at least its two subtree roots.
		pages = 2
	}
	er := fr * e.r.entries(t.er.Child.Level)
	es := fs * e.s.entries(t.es.Child.Level)
	comps := er * es
	if e.sampled {
		// Plane-sweep selectivity: the CPU-tuned algorithms sort both
		// restricted entry sequences and test only the x-overlapping pairs.
		// The sampled mean data-rectangle extents give the probability that
		// two entries drawn uniformly from the task's intersection rectangle
		// overlap in x, turning the all-pairs product into the sweep's
		// expected test count; the n·log n term models the sorting.
		wr, _, _ := e.r.cat.LeafExtent()
		ws, _, _ := e.s.cat.LeafExtent()
		var ix float64
		if rect, ok := erRect.Intersection(t.es.Rect); ok {
			ix = rect.Width()
		}
		tests := er * es * extentFraction(wr+ws, ix)
		sorts := (er + es) * math.Log2(er+es+2)
		comps = sorts + tests
	}
	c := e.model.Estimate(int64(pages+0.5), e.pageSize, int64(comps+0.5))
	return costVec{io: c.IOSeconds, cpu: c.CPUSeconds}
}

// vecKNN estimates one kNN task: the best-first traversal reads the whole R
// subtree (every R item must fill its heap) plus the S pages the pruning
// leaves, modelled as the full S-side subtree — an overestimate, but one
// shared by every task, so the *ranking* the schedules consume is driven by
// the R-side differences.  The CPU estimate charges each expected R data
// entry a near-logarithmic descent of S plus its K heap admissions.
func (e taskEstimator) vecKNN(t parallelTask) costVec {
	pages := e.r.pages(t.er.Child.Level) + e.s.pages(t.es.Child.Level)
	if pages < 2 {
		pages = 2
	}
	er := e.r.entries(t.er.Child.Level)
	es := e.s.entries(t.es.Child.Level)
	comps := er * (math.Log2(es+2) + float64(e.pred.K))
	c := e.model.Estimate(int64(pages+0.5), e.pageSize, int64(comps+0.5))
	return costVec{io: c.IOSeconds, cpu: c.CPUSeconds}
}

// seconds estimates the total cost-model execution time of one task.
func (e taskEstimator) seconds(t parallelTask) float64 { return e.vec(t).total() }

// vectors returns the per-task (io, cpu) cost vectors.
func (e taskEstimator) vectors(tasks []parallelTask) []costVec {
	vecs := make([]costVec, len(tasks))
	for i, t := range tasks {
		vecs[i] = e.vec(t)
	}
	return vecs
}

// estimates returns the per-task scalar cost estimates.
func (e taskEstimator) estimates(tasks []parallelTask) []float64 {
	est := make([]float64, len(tasks))
	for i, t := range tasks {
		est[i] = e.seconds(t)
	}
	return est
}

// scalars projects cost vectors onto their io+cpu totals.
func scalars(vecs []costVec) []float64 {
	est := make([]float64, len(vecs))
	for i, v := range vecs {
		est[i] = v.total()
	}
	return est
}

// buildSchedule returns the per-worker schedule of one strategy: for each
// worker the ordered indices into tasks it executes.  It returns nil for
// PartitionDynamic, where workers pull from the shared queue instead.  vecs
// holds the per-task (io, cpu) cost vectors for the estimate-driven
// strategies (LPT, spatial, stealing) and may be nil for the others; LPT
// packs on the scalar total while the spatial/stealing region packing
// balances the components separately.  The stealing strategy starts from the
// spatial schedule; the queues built over it are then rebalanced at run
// time.  workers must already be clamped to len(tasks), so every worker
// receives at least one task.  ParallelJoin validates the strategy before
// planning, so an unknown value cannot reach this switch.
func buildSchedule(strategy PartitionStrategy, r, s *rtree.Tree, tasks []parallelTask, vecs []costVec, workers int) [][]int32 {
	switch strategy {
	case PartitionRoundRobin:
		return scheduleRoundRobin(tasks, workers)
	case PartitionLPT:
		return scheduleLPT(scalars(vecs), workers)
	case PartitionSpatial, PartitionStealing:
		return scheduleSpatial(r, s, tasks, vecs, workers)
	default:
		return nil
	}
}

// scheduleRoundRobin deals the area-sorted tasks round-robin; task i goes to
// worker i mod workers, preserving the descending-area order within each
// worker.
func scheduleRoundRobin(tasks []parallelTask, workers int) [][]int32 {
	schedule := make([][]int32, workers)
	per := (len(tasks) + workers - 1) / workers
	for w := range schedule {
		schedule[w] = make([]int32, 0, per)
	}
	for i := range tasks {
		w := i % workers
		schedule[w] = append(schedule[w], int32(i))
	}
	return schedule
}

// scheduleLPT performs greedy longest-processing-time bin packing: tasks in
// descending estimate order each go to the currently least-loaded worker
// (ties to the lowest worker index, so the schedule is deterministic).
func scheduleLPT(est []float64, workers int) [][]int32 {
	order := make([]int32, len(est))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return est[order[a]] > est[order[b]] })

	schedule := make([][]int32, workers)
	loads := make([]float64, workers)
	for _, i := range order {
		w := 0
		for v := 1; v < workers; v++ {
			if loads[v] < loads[w] {
				w = v
			}
		}
		schedule[w] = append(schedule[w], i)
		loads[w] += est[i]
	}
	return schedule
}

// spatialRegionsPerWorker is how many contiguous Hilbert regions the spatial
// partitioner cuts per worker before packing regions onto workers.  One
// region per worker maximises locality but inherits every estimation error
// of the single cut; more regions per worker let the vector packing smooth
// the errors out while each region stays contiguous, so the locality
// survives.  Balancing two components at once needs finer grain than the
// scalar packing did: regions are cut on near-equal io+cpu totals, so the
// packing's only freedom to balance the components separately is in which
// regions it combines, and with only a few regions per worker every
// combination carries the same majority component.  Twenty regions per
// worker holds the measured comparison skew of the 120k pair at 8 workers
// under 1.05 (the scalar packing left it at 1.15 with no granularity able
// to fix it) while the worker-buffer hit rate stays within a point of the
// coarser cut's.
const spatialRegionsPerWorker = 20

// scheduleSpatial orders the tasks along the Hilbert curve of their
// intersection-rectangle centres over the joint root intersection, cuts the
// curve into a few contiguous, estimate-balanced regions per worker, and
// packs the regions onto the workers on their (io, cpu) cost vectors with a
// max-of-components objective.  Workers keep the Hilbert order within every
// region, so consecutive tasks share subtrees and the worker's buffer
// partition sees reuse, while the region-level packing keeps both the
// estimated I/O load and the estimated comparison load balanced — a scalar
// packing of the totals can hide a comparison skew behind an opposite I/O
// skew.
func scheduleSpatial(r, s *rtree.Tree, tasks []parallelTask, vecs []costVec, workers int) [][]int32 {
	est := scalars(vecs)
	world := jointWorld(r, s)
	keys := make([]uint64, len(tasks))
	for i, t := range tasks {
		rect := t.er.Rect
		if inter, ok := t.er.Rect.Intersection(t.es.Rect); ok {
			rect = inter
		}
		keys[i] = zorder.HilbertKey(rect.Center(), world)
	}
	order := make([]int32, len(tasks))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	if workers == 1 {
		// A single worker keeps the pure Hilbert order; packing regions by
		// load would only shuffle the run and hurt the buffer.
		return [][]int32{order}
	}

	regions := workers * spatialRegionsPerWorker
	if regions > len(tasks) {
		regions = len(tasks)
	}
	runs := contiguousSplit(order, est, regions)

	// Vector packing over the regions: each region's load is the (io, cpu)
	// sum of its tasks, and the heaviest region (by normalised bottleneck
	// component) goes to the worker it overloads least.
	loads := make([]costVec, len(runs))
	for i, run := range runs {
		for _, t := range run {
			loads[i] = loads[i].add(vecs[t])
		}
	}
	schedule := make([][]int32, workers)
	for w, packed := range packRegionsVector(loads, workers) {
		for _, region := range packed {
			schedule[w] = append(schedule[w], runs[region]...)
		}
	}
	return schedule
}

// packRegionsVector packs region cost vectors onto workers minimising the
// maximum normalised component: each component is measured against its fair
// per-worker share, so a second of I/O and a second of CPU weigh the same
// relative to their totals and neither resource can hide behind the other.
// Regions are placed in descending order of their own normalised bottleneck
// (the vector analogue of LPT's descending-estimate order); each goes to the
// worker whose post-placement bottleneck is smallest, ties to the lowest
// worker index, so the packing is deterministic.
func packRegionsVector(loads []costVec, workers int) [][]int32 {
	var total costVec
	for _, v := range loads {
		total = total.add(v)
	}
	shareIO := total.io / float64(workers)
	shareCPU := total.cpu / float64(workers)
	if shareIO <= 0 {
		shareIO = 1
	}
	if shareCPU <= 0 {
		shareCPU = 1
	}
	norm := func(v costVec) float64 {
		return math.Max(v.io/shareIO, v.cpu/shareCPU)
	}

	order := make([]int32, len(loads))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return norm(loads[order[a]]) > norm(loads[order[b]]) })

	// The placement objective is lexicographic: minimise the post-placement
	// bottleneck first, then the sum of the normalised components.  The
	// bottleneck alone goes blind to the secondary resource once the primary
	// binds everywhere (every placement then scores the same max), and it is
	// exactly the secondary resource the scalar packing already failed to
	// balance.
	sum := func(v costVec) float64 {
		return v.io/shareIO + v.cpu/shareCPU
	}
	schedule := make([][]int32, workers)
	acc := make([]costVec, workers)
	for _, i := range order {
		w := 0
		after := acc[0].add(loads[i])
		bestMax, bestSum := norm(after), sum(after)
		for v := 1; v < workers; v++ {
			after = acc[v].add(loads[i])
			m, s := norm(after), sum(after)
			if m < bestMax || (m == bestMax && s < bestSum) {
				w, bestMax, bestSum = v, m, s
			}
		}
		schedule[w] = append(schedule[w], i)
		acc[w] = acc[w].add(loads[i])
	}
	return schedule
}

// jointWorld returns the region the spatial partitioner tiles: the
// intersection of the two root MBRs (all results live there), falling back
// to their union for trees that barely overlap.
func jointWorld(r, s *rtree.Tree) geom.Rect {
	rm, sm := r.Root().MBR(), s.Root().MBR()
	if inter, ok := rm.Intersection(sm); ok && inter.Area() > 0 {
		return inter
	}
	return rm.Union(sm)
}

// contiguousSplit cuts the ordered task list into bins contiguous runs of
// near-equal total estimate: each bin takes tasks until it reaches its share
// of the remaining load (taking the task that crosses the target only when
// that leaves the bin closer to it), always leaving at least one task for
// every bin still to come.
func contiguousSplit(order []int32, est []float64, bins int) [][]int32 {
	remaining := 0.0
	for _, i := range order {
		remaining += est[i]
	}
	split := make([][]int32, bins)
	next := 0
	for b := 0; b < bins; b++ {
		if b == bins-1 {
			split[b] = order[next:]
			break
		}
		maxEnd := len(order) - (bins - 1 - b)
		target := remaining / float64(bins-b)
		load := 0.0
		start := next
		for next < maxEnd {
			e := est[order[next]]
			if next > start && (load >= target || load+e-target > target-load) {
				break
			}
			load += e
			next++
		}
		split[b] = order[start:next]
		remaining -= load
	}
	return split
}

// SortPairs sorts result pairs by (R, S).  ParallelJoin's pair order depends
// on the schedule, so tests and golden comparisons sort both sides before
// comparing against the sequential result.
func SortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].R != pairs[j].R {
			return pairs[i].R < pairs[j].R
		}
		return pairs[i].S < pairs[j].S
	})
}
