package join

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/sweep"
)

// pairOf builds a distinguishable pair for position i.
func pairOf(i int) sweep.Pair { return sweep.Pair{R: i, S: ^i} }

// TestStableSortMatchesSliceStable asserts that the manual stable sort
// charges exactly as many key comparisons as sort.SliceStable and produces
// the same permutation, across sizes below, at and far above the insertion
// block size.  The join's sorting cost measure (paper Table 4) depends on
// this equivalence.
func TestStableSortMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 5, 19, 20, 21, 40, 57, 100, 333, 1000} {
		for trial := 0; trial < 20; trial++ {
			entries := make([]rtree.Entry, n)
			for i := range entries {
				// Coarse keys force ties, exercising stability.
				x := float64(rng.Intn(n/4 + 1))
				entries[i] = rtree.Entry{Rect: geom.Rect{XL: x, XU: x + 1}, Data: int32(i)}
			}

			// Reference: sort.SliceStable over a copy, counting comparisons.
			ref := append([]rtree.Entry(nil), entries...)
			var refComps int64
			sort.SliceStable(ref, func(i, j int) bool {
				refComps++
				return ref[i].Rect.XL < ref[j].Rect.XL
			})

			idx := make([]int32, n)
			for i := range idx {
				idx[i] = int32(i)
			}
			s := idxSorter{idx: idx, entries: entries}
			stableSort(&s, n)

			if s.comps != refComps {
				t.Fatalf("n=%d trial=%d: %d comparisons, sort.SliceStable charged %d", n, trial, s.comps, refComps)
			}
			for i, id := range idx {
				if entries[id].Data != ref[i].Data {
					t.Fatalf("n=%d trial=%d: permutation differs from sort.SliceStable at %d", n, trial, i)
				}
			}
		}
	}
}

// TestZkeySorterIsStable asserts the z-order schedule sort keeps the sweep
// order of pairs with equal keys, as the stable slice sort it replaced did.
func TestZkeySorterIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		z := &zkeySorter{}
		for i := 0; i < n; i++ {
			z.pairs = append(z.pairs, pairOf(i))
			z.zkeys = append(z.zkeys, uint64(rng.Intn(5)))
		}
		refKeys := append([]uint64(nil), z.zkeys...)
		refPairs := make([]int, 0, n)
		for i := 0; i < n; i++ {
			refPairs = append(refPairs, i)
		}
		sort.SliceStable(refPairs, func(i, j int) bool { return refKeys[refPairs[i]] < refKeys[refPairs[j]] })

		stableSort(z, n)
		for i := 0; i < n; i++ {
			if z.pairs[i] != pairOf(refPairs[i]) {
				t.Fatalf("trial=%d: order differs from stable reference at %d", trial, i)
			}
		}
	}
}
