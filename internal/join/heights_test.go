package join

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// buildUnevenPair builds two trees of different heights: a large street
// relation and a small river relation, as in section 4.4 / test (C) of the
// paper (scaled down).
func buildUnevenPair(t testing.TB, nBig, nSmall int) (*rtree.Tree, *rtree.Tree, []rtree.Item, []rtree.Item) {
	t.Helper()
	big := datagen.Generate(datagen.Config{Kind: datagen.Streets, Count: nBig, Seed: 11})
	small := datagen.Generate(datagen.Config{Kind: datagen.Rivers, Count: nSmall, Seed: 12})
	r := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	s := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	r.InsertItems(big)
	s.InsertItems(small)
	if r.Height() == s.Height() {
		t.Fatalf("test setup: expected different heights, both are %d", r.Height())
	}
	return r, s, big, small
}

func TestDifferentHeightsAllPoliciesCorrect(t *testing.T) {
	r, s, big, small := buildUnevenPair(t, 9000, 300)
	want := bruteForce(big, small)
	for _, policy := range []HeightPolicy{PolicyWindowPerPair, PolicyBatchedWindows, PolicySweepOrder} {
		for _, method := range []Method{SJ1, SJ2, SJ4} {
			res, err := Join(r, s, Options{Method: method, HeightPolicy: policy, BufferBytes: 64 << 10})
			if err != nil {
				t.Fatalf("%v/%v: %v", method, policy, err)
			}
			got := asPairSet(res.Pairs)
			if len(got) != len(want) {
				t.Fatalf("%v/%v: %d pairs, want %d", method, policy, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%v/%v: missing pair %v", method, policy, p)
				}
			}
		}
	}
}

func TestDifferentHeightsSwappedOrientation(t *testing.T) {
	// The shorter tree may equally be the first operand; results must carry
	// the correct orientation either way.
	r, s, big, small := buildUnevenPair(t, 9000, 300)
	want := bruteForce(big, small)
	res, err := Join(s, r, Options{Method: SJ4, HeightPolicy: PolicyBatchedWindows, BufferBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[Pair]bool, res.Count)
	for _, p := range res.Pairs {
		got[Pair{R: p.S, S: p.R}] = true // swap back to (big, small) orientation
	}
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing pair %v", p)
		}
	}
}

func TestPolicyBReadsSubtreePagesAtMostOnceWithoutBuffer(t *testing.T) {
	// Policy (b)'s defining property: each page of a directory subtree is
	// read at most once per node-pair join, even with no buffer at all.
	// Globally this means policy (b) with zero buffer needs no more accesses
	// than policy (a) with zero buffer.
	r, s, _, _ := buildUnevenPair(t, 9000, 300)
	a, err := Join(r, s, Options{Method: SJ4, HeightPolicy: PolicyWindowPerPair, BufferBytes: 0, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Join(r, s, Options{Method: SJ4, HeightPolicy: PolicyBatchedWindows, BufferBytes: 0, DiscardPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Metrics.DiskAccesses() > a.Metrics.DiskAccesses() {
		t.Fatalf("policy (b) accesses (%d) exceed policy (a) accesses (%d)",
			b.Metrics.DiskAccesses(), a.Metrics.DiskAccesses())
	}
	// Paper Table 7: for a zero-size buffer the gap is large (111,140 vs
	// 24,111 accesses); require at least a 1.5x gap on synthetic data.
	if factor := float64(a.Metrics.DiskAccesses()) / float64(b.Metrics.DiskAccesses()); factor < 1.5 {
		t.Errorf("policy (b) improvement factor %.2f is implausibly small", factor)
	}
}

func TestPoliciesConvergeWithLargeBuffer(t *testing.T) {
	// Paper Table 7: with a large buffer all three policies need (almost) the
	// same number of accesses.
	r, s, _, _ := buildUnevenPair(t, 9000, 300)
	var accesses []int64
	for _, policy := range []HeightPolicy{PolicyWindowPerPair, PolicyBatchedWindows, PolicySweepOrder} {
		res, err := Join(r, s, Options{Method: SJ4, HeightPolicy: policy, BufferBytes: 2 << 20, UsePathBuffer: true, DiscardPairs: true})
		if err != nil {
			t.Fatal(err)
		}
		accesses = append(accesses, res.Metrics.DiskAccesses())
	}
	min, max := accesses[0], accesses[0]
	for _, a := range accesses {
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if float64(max) > 1.2*float64(min) {
		t.Errorf("policies diverge with a large buffer: %v", accesses)
	}
}
