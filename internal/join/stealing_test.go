package join

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// These tests are the race wall of the stealing scheduler: they hammer the
// queue operations from many goroutines and check the exactly-once delivery
// invariant that the join's correctness rests on.  CI runs them under -race.

// TestStealQueuesConcurrentExactlyOnce runs the real worker loop shape —
// pop-own-queue-then-steal — over many goroutines and asserts that every
// task is delivered to exactly one worker, whatever interleaving the
// scheduler produces.
func TestStealQueuesConcurrentExactlyOnce(t *testing.T) {
	for _, cfg := range []struct{ workers, tasks int }{
		{2, 64}, {4, 400}, {8, 1000}, {16, 97},
	} {
		est := make([]float64, cfg.tasks)
		for i := range est {
			est[i] = 1 + float64(i%13)
		}
		schedule := make([][]int32, cfg.workers)
		for i := 0; i < cfg.tasks; i++ {
			w := i * cfg.workers / cfg.tasks
			schedule[w] = append(schedule[w], int32(i))
		}
		queues := newStealQueues(schedule, est)

		counts := make([]atomic.Int32, cfg.tasks)
		var inFlight atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				q := queues[w]
				var buf []int32
				for {
					i, ok := q.pop(est)
					if !ok {
						if !steal(queues, w, &buf, est, &inFlight) {
							return
						}
						continue
					}
					counts[i].Add(1)
				}
			}(w)
		}
		wg.Wait()

		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d tasks=%d: task %d executed %d times", cfg.workers, cfg.tasks, i, got)
			}
		}
		for w, q := range queues {
			if q.remainingApprox() != 0 {
				t.Errorf("workers=%d: queue %d reports %.3f remaining load after drain",
					cfg.workers, w, q.remainingApprox())
			}
		}
	}
}

// TestStealingJoinUnderContention runs the full ParallelJoin with the
// stealing strategy repeatedly and concurrently with itself on the same
// trees (trees are read-only during joins), so the race detector sees the
// queues, the worker pools and the catalog-statistics cache under real
// contention.  Every run must reproduce the sequential result set.
func TestStealingJoinUnderContention(t *testing.T) {
	r, s, _, _ := buildPair(t, 2000, 2000, storage.PageSize1K)
	seq, err := Join(r, s, Options{Method: SJ4, BufferBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	wantHash := sortedPairHash(seq.Pairs)

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, 2*rounds)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := ParallelJoin(r, s, ParallelOptions{
					Options:           Options{Method: SJ4, BufferBytes: 64 << 10},
					Workers:           4,
					Strategy:          PartitionStealing,
					MinTasksPerWorker: 6,
				})
				if err != nil {
					errs <- err
					return
				}
				if got := sortedPairHash(res.Pairs); got != wantHash || res.Count != seq.Count {
					t.Errorf("stealing join diverged: count %d vs %d, hash %d vs %d",
						res.Count, seq.Count, got, wantHash)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
