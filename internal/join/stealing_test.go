package join

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
)

// These tests are the race wall of the stealing scheduler: they hammer the
// queue operations from many goroutines and check the exactly-once delivery
// invariant that the join's correctness rests on.  CI runs them under -race.

// TestStealQueuesConcurrentExactlyOnce runs the real worker loop shape —
// pop-own-queue-then-steal — over many goroutines and asserts that every
// task is delivered to exactly one worker, whatever interleaving the
// scheduler produces.
func TestStealQueuesConcurrentExactlyOnce(t *testing.T) {
	for _, cfg := range []struct{ workers, tasks int }{
		{2, 64}, {4, 400}, {8, 1000}, {16, 97},
	} {
		est := make([]float64, cfg.tasks)
		for i := range est {
			est[i] = 1 + float64(i%13)
		}
		schedule := make([][]int32, cfg.workers)
		for i := 0; i < cfg.tasks; i++ {
			w := i * cfg.workers / cfg.tasks
			schedule[w] = append(schedule[w], int32(i))
		}
		queues := newStealQueues(schedule, est)

		counts := make([]atomic.Int32, cfg.tasks)
		flight := newStealFlight()
		var wg sync.WaitGroup
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				q := queues[w]
				var buf []int32
				for {
					i, ok := q.pop(est)
					if !ok {
						if !steal(queues, w, &buf, est, flight) {
							return
						}
						continue
					}
					counts[i].Add(1)
				}
			}(w)
		}
		wg.Wait()

		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d tasks=%d: task %d executed %d times", cfg.workers, cfg.tasks, i, got)
			}
		}
		for w, q := range queues {
			if q.remainingApprox() != 0 {
				t.Errorf("workers=%d: queue %d reports %.3f remaining load after drain",
					cfg.workers, w, q.remainingApprox())
			}
		}
	}
}

// TestStealingJoinUnderContention runs the full ParallelJoin with the
// stealing strategy repeatedly and concurrently with itself on the same
// trees (trees are read-only during joins), so the race detector sees the
// queues, the worker pools and the catalog-statistics cache under real
// contention.  Every run must reproduce the sequential result set.
func TestStealingJoinUnderContention(t *testing.T) {
	r, s, _, _ := buildPair(t, 2000, 2000, storage.PageSize1K)
	seq, err := Join(r, s, Options{Method: SJ4, BufferBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	wantHash := sortedPairHash(seq.Pairs)

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, 2*rounds)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := ParallelJoin(r, s, ParallelOptions{
					Options:           Options{Method: SJ4, BufferBytes: 64 << 10},
					Workers:           4,
					Strategy:          PartitionStealing,
					MinTasksPerWorker: 6,
				})
				if err != nil {
					errs <- err
					return
				}
				if got := sortedPairHash(res.Pairs); got != wantHash || res.Count != seq.Count {
					t.Errorf("stealing join diverged: count %d vs %d, hash %d vs %d",
						res.Count, seq.Count, got, wantHash)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// spinClearReference is the PR-4 busy-yield admission predicate, kept
// verbatim as the reference: a worker may proceed while it is at most the
// window ahead of the slowest not-yet-finished other worker.  The
// condition-variable pacer must admit bit-identically — the waiting
// mechanism changed, the executed split must not.
func spinClearReference(p *stealPacer, w int) bool {
	my := math.Float64frombits(p.clocks[w].Load())
	min := math.Inf(1)
	for i := range p.clocks {
		if i == w || p.done[i].Load() {
			continue
		}
		if v := math.Float64frombits(p.clocks[i].Load()); v < min {
			min = v
		}
	}
	return my <= min+p.window
}

// TestStealPacerAdmissionMatchesSpinReference drives the pacer through
// random clock/done states and checks the condition-variable predicate
// against the spin reference on every worker.  This is the bit-identical
// regression guard for the busy-wait fix: identical admissions mean identical
// queue drain orders, steals and executed splits for any given interleaving.
func TestStealPacerAdmissionMatchesSpinReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		workers := 2 + rng.Intn(7)
		est := make([]float64, 1+rng.Intn(20))
		for i := range est {
			est[i] = rng.Float64() * 10
		}
		p := newStealPacer(workers, est)
		for w := 0; w < workers; w++ {
			p.clocks[w].Store(math.Float64bits(rng.Float64() * 20))
			if rng.Intn(4) == 0 {
				p.done[w].Store(true)
			}
		}
		for w := 0; w < workers; w++ {
			if got, want := p.clear(w), spinClearReference(p, w); got != want {
				t.Fatalf("trial %d worker %d: clear=%v, spin reference=%v (clocks=%v)",
					trial, w, got, want, p.clocks)
			}
		}
	}
}

// TestStealPacerWaitParksAndWakes: a worker ahead of the window must block in
// wait (without burning CPU in a yield loop — it parks on the condition
// variable) and must return promptly once the lagging worker advances past
// the window, or finishes.
func TestStealPacerWaitParksAndWakes(t *testing.T) {
	est := []float64{1, 1} // window = mean = 1 cost-model second
	p := newStealPacer(2, est)
	p.clocks[0].Store(math.Float64bits(10)) // worker 0 is far ahead of worker 1 at 0

	released := make(chan struct{})
	go func() {
		p.wait(0)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("wait returned while worker 0 was 10 seconds ahead of a 1-second window")
	case <-time.After(50 * time.Millisecond):
	}
	p.advance(1, 5) // still ahead: 10 > 5+1
	select {
	case <-released:
		t.Fatal("wait returned while still ahead of the window")
	case <-time.After(50 * time.Millisecond):
	}
	p.advance(1, 4.5) // 10 <= 9.5+1: clear
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("wait did not wake after the lagging worker advanced past the window")
	}

	// A waiter must also wake when the last other worker finishes.
	p2 := newStealPacer(2, est)
	p2.clocks[0].Store(math.Float64bits(10))
	released2 := make(chan struct{})
	go func() {
		p2.wait(0)
		close(released2)
	}()
	select {
	case <-released2:
		t.Fatal("wait returned before the other worker finished")
	case <-time.After(50 * time.Millisecond):
	}
	p2.finish(1)
	select {
	case <-released2:
	case <-time.After(2 * time.Second):
		t.Fatal("wait did not wake after finish")
	}
}

// TestStealFlightSettle: a thief that finds nothing stealable must give up
// only when no run is in transit, and must wake (to rescan) when one lands.
func TestStealFlightSettle(t *testing.T) {
	f := newStealFlight()
	if f.settle() {
		t.Fatal("settle with nothing in transit must be final")
	}
	f.begin()
	woke := make(chan bool)
	go func() { woke <- f.settle() }()
	select {
	case <-woke:
		t.Fatal("settle returned while a run was in transit")
	case <-time.After(50 * time.Millisecond):
	}
	f.finishMove()
	select {
	case again := <-woke:
		if !again {
			t.Fatal("settle after a landing must request a rescan")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("settle did not wake on landing")
	}
}

// TestStealVictimBiasCorrection: two victims with equal remaining estimates,
// one of which has published that its region actually costs 4x its estimate
// — the thief must steal from the under-estimated (really heavier) one.
func TestStealVictimBiasCorrection(t *testing.T) {
	est := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	schedule := [][]int32{{}, {0, 1, 2, 3}, {4, 5, 6, 7}}
	queues := newStealQueues(schedule, est)
	queues[2].setBiasRatio(4) // worker 2's region runs 4x over estimate
	var buf []int32
	if !steal(queues, 0, &buf, est, newStealFlight()) {
		t.Fatal("steal found nothing with two loaded victims")
	}
	if queues[2].remainingApprox() >= 4 {
		t.Fatalf("thief ignored the bias-corrected heavier victim: victim loads %.1f / %.1f",
			queues[1].remainingApprox(), queues[2].remainingApprox())
	}
	// The stolen run came from victim 2's region, so the thief must now
	// publish that region's ratio, not its own stale one.
	if got := queues[0].biasRatio(); got != 4 {
		t.Fatalf("thief publishes bias %v after the steal, want the victim's 4", got)
	}
	// And the clamp: a degenerate ratio must not poison victim selection.
	var q stealQueue
	q.setBiasRatio(math.NaN())
	if q.biasRatio() != 1 {
		t.Fatalf("NaN ratio published as %v, want the default 1", q.biasRatio())
	}
	q.setBiasRatio(1e9)
	if q.biasRatio() != biasClamp {
		t.Fatalf("ratio %v escaped the clamp %v", q.biasRatio(), float64(biasClamp))
	}
}
