package join

import (
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func TestParallelJoinMatchesSequential(t *testing.T) {
	r, s, itemsR, itemsS := buildPair(t, 4000, 4000, storage.PageSize1K)
	want := bruteForce(itemsR, itemsS)

	for _, method := range []Method{SJ1, SJ4} {
		for _, workers := range []int{0, 1, 4} {
			res, err := ParallelJoin(r, s, ParallelOptions{
				Options: Options{Method: method, BufferBytes: 128 << 10, UsePathBuffer: true},
				Workers: workers,
			})
			if err != nil {
				t.Fatalf("%v/%d workers: %v", method, workers, err)
			}
			got := asPairSet(res.Pairs)
			if len(got) != len(want) {
				t.Fatalf("%v/%d workers: %d pairs, want %d", method, workers, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%v/%d workers: missing pair %v", method, workers, p)
				}
			}
			if res.Metrics.Comparisons == 0 || res.Metrics.DiskReads == 0 {
				t.Fatalf("%v/%d workers: missing metrics", method, workers)
			}
		}
	}
}

func TestParallelJoinErrorsAndFallbacks(t *testing.T) {
	r, s, _, _ := buildPair(t, 500, 500, storage.PageSize1K)
	if _, err := ParallelJoin(nil, s, ParallelOptions{}); !errors.Is(err, ErrNilTree) {
		t.Fatalf("expected ErrNilTree, got %v", err)
	}
	other := rtree.MustNew(rtree.Options{PageSize: storage.PageSize2K})
	if _, err := ParallelJoin(r, other, ParallelOptions{}); !errors.Is(err, ErrPageSizeMismatch) {
		t.Fatalf("expected ErrPageSizeMismatch, got %v", err)
	}
	if _, err := ParallelJoin(r, s, ParallelOptions{Options: Options{Method: NestedLoop}}); !errors.Is(err, ErrParallelNestedLoop) {
		t.Fatalf("expected ErrParallelNestedLoop, got %v", err)
	}

	// Tiny trees (single leaf) fall back to the sequential join.
	tiny1 := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	tiny2 := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	tiny1.Insert(geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}, 1)
	tiny2.Insert(geom.Rect{XL: 0.5, YL: 0.5, XU: 2, YU: 2}, 2)
	res, err := ParallelJoin(tiny1, tiny2, ParallelOptions{Options: Options{Method: SJ4}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("tiny-tree fallback found %d pairs, want 1", res.Count)
	}
}

func TestParallelJoinStreamsPairs(t *testing.T) {
	r, s, _, _ := buildPair(t, 2000, 2000, storage.PageSize1K)
	streamed := 0
	res, err := ParallelJoin(r, s, ParallelOptions{
		Options: Options{
			Method:       SJ4,
			DiscardPairs: true,
			OnPair:       func(Pair) { streamed++ },
		},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 || streamed != res.Count || res.Count == 0 {
		t.Fatalf("streamed=%d count=%d pairs=%d", streamed, res.Count, len(res.Pairs))
	}
}

func TestSortMergeJoinMatchesBruteForce(t *testing.T) {
	_, _, itemsR, itemsS := buildPair(t, 3000, 3000, storage.PageSize1K)
	want := bruteForce(itemsR, itemsS)
	res := SortMergeJoin(itemsR, itemsS, nil)
	got := asPairSet(res.Pairs)
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing pair %v", p)
		}
	}
	if res.Metrics.SortComparisons == 0 || res.Metrics.Comparisons == 0 {
		t.Fatal("sort-merge join must charge sorting and join comparisons")
	}
	if res.Metrics.DiskReads != 0 {
		t.Fatal("sort-merge join charges no I/O")
	}
	if res.Count != len(res.Pairs) {
		t.Fatal("count mismatch")
	}
}

func TestSortMergeJoinEmpty(t *testing.T) {
	res := SortMergeJoin(nil, nil, nil)
	if res.Count != 0 {
		t.Fatalf("empty join produced %d pairs", res.Count)
	}
}
