package join

import (
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func TestParallelJoinMatchesSequential(t *testing.T) {
	r, s, itemsR, itemsS := buildPair(t, 4000, 4000, storage.PageSize1K)
	want := bruteForce(itemsR, itemsS)

	for _, method := range []Method{SJ1, SJ4} {
		for _, workers := range []int{0, 1, 4} {
			res, err := ParallelJoin(r, s, ParallelOptions{
				Options: Options{Method: method, BufferBytes: 128 << 10, UsePathBuffer: true},
				Workers: workers,
			})
			if err != nil {
				t.Fatalf("%v/%d workers: %v", method, workers, err)
			}
			got := asPairSet(res.Pairs)
			if len(got) != len(want) {
				t.Fatalf("%v/%d workers: %d pairs, want %d", method, workers, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%v/%d workers: missing pair %v", method, workers, p)
				}
			}
			if res.Metrics.Comparisons == 0 || res.Metrics.DiskReads == 0 {
				t.Fatalf("%v/%d workers: missing metrics", method, workers)
			}
			if workers > 1 {
				// Skew accessors are max/mean over the workers, so they are
				// at least 1 whenever any worker did the respective work.
				for name, skew := range map[string]float64{
					"task": res.TaskSkew(), "comp": res.ComparisonSkew(),
					"disk": res.DiskSkew(), "pair": res.PairSkew(),
				} {
					if skew < 1 {
						t.Errorf("%v/%d workers: %s skew %.3f < 1", method, workers, name, skew)
					}
				}
			}
		}
	}
}

func TestParallelJoinErrorsAndFallbacks(t *testing.T) {
	r, s, _, _ := buildPair(t, 500, 500, storage.PageSize1K)
	if _, err := ParallelJoin(nil, s, ParallelOptions{}); !errors.Is(err, ErrNilTree) {
		t.Fatalf("expected ErrNilTree, got %v", err)
	}
	other := rtree.MustNew(rtree.Options{PageSize: storage.PageSize2K})
	if _, err := ParallelJoin(r, other, ParallelOptions{}); !errors.Is(err, ErrPageSizeMismatch) {
		t.Fatalf("expected ErrPageSizeMismatch, got %v", err)
	}
	if _, err := ParallelJoin(r, s, ParallelOptions{Options: Options{Method: NestedLoop}}); !errors.Is(err, ErrParallelNestedLoop) {
		t.Fatalf("expected ErrParallelNestedLoop, got %v", err)
	}

	// Tiny trees (single leaf) fall back to the sequential join.
	tiny1 := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	tiny2 := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	tiny1.Insert(geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}, 1)
	tiny2.Insert(geom.Rect{XL: 0.5, YL: 0.5, XU: 2, YU: 2}, 2)
	res, err := ParallelJoin(tiny1, tiny2, ParallelOptions{Options: Options{Method: SJ4}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("tiny-tree fallback found %d pairs, want 1", res.Count)
	}
}

func TestParallelJoinStreamsPairs(t *testing.T) {
	r, s, _, _ := buildPair(t, 2000, 2000, storage.PageSize1K)
	streamed := 0
	res, err := ParallelJoin(r, s, ParallelOptions{
		Options: Options{
			Method:       SJ4,
			DiscardPairs: true,
			OnPair:       func(Pair) { streamed++ },
		},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 || streamed != res.Count || res.Count == 0 {
		t.Fatalf("streamed=%d count=%d pairs=%d", streamed, res.Count, len(res.Pairs))
	}
}

// TestParallelWorkers1MatchesSequentialDiskAccesses pins the planning-I/O
// fix: with one worker the parallel join reads the pages the sequential join
// reads — the plan tracker's buffer dedupes planning reads the way the
// sequential join's shared buffer would.  The documented delta: exactly zero
// once the buffer holds the working set (every distinct page is read once on
// either side, independent of task order); for smaller buffers the parallel
// task order differs from the sequential read schedule, so path-buffer hits
// and eviction order may shift the count by a handful of accesses.  Before
// the fix, any run whose planner split tasks over-counted by one read per
// extra qualifying pair (see TestParallelPlanningChargesNodesOnce).
func TestParallelWorkers1MatchesSequentialDiskAccesses(t *testing.T) {
	r, s, _, _ := buildPair(t, 3000, 3000, storage.PageSize1K)
	for _, method := range []Method{SJ1, SJ4} {
		for _, cfg := range []struct {
			bufferBytes int
			maxDelta    int64
		}{
			{0, 2},
			{32 << 10, 6},
			{128 << 10, 0},
			{512 << 10, 0},
		} {
			opts := Options{Method: method, BufferBytes: cfg.bufferBytes, UsePathBuffer: true, DiscardPairs: true}
			seq, err := Join(r, s, opts)
			if err != nil {
				t.Fatal(err)
			}
			// With one worker the stealing strategy has no victims, so it
			// degenerates to the spatial schedule and the same bounds apply.
			for _, strategy := range PartitionStrategies {
				par, err := ParallelJoin(r, s, ParallelOptions{Options: opts, Workers: 1, Strategy: strategy})
				if err != nil {
					t.Fatal(err)
				}
				delta := par.Metrics.DiskAccesses() - seq.Metrics.DiskAccesses()
				if delta < 0 {
					delta = -delta
				}
				if delta > cfg.maxDelta {
					t.Errorf("%v/%v buffer=%d: parallel workers=1 charged %d disk accesses, sequential %d (delta %d > %d)",
						method, strategy, cfg.bufferBytes, par.Metrics.DiskAccesses(), seq.Metrics.DiskAccesses(), delta, cfg.maxDelta)
				}
				if par.PlanMetrics.DiskReads != 2 {
					t.Errorf("%v/%v: planning with no split must read exactly the two roots, got %d",
						method, strategy, par.PlanMetrics.DiskReads)
				}
			}
		}
	}
}

// TestParallelPlanningChargesNodesOnce forces the planner to split tasks one
// level deeper and asserts that planning disk reads stay bounded by the
// number of distinct directory pages of the two trees.  The pre-fix
// bufferless plan tracker charged a child node once per qualifying pair it
// appeared in, which exceeds this bound as soon as entries qualify in more
// than one pair.
func TestParallelPlanningChargesNodesOnce(t *testing.T) {
	r, s, _, _ := buildPair(t, 3000, 3000, storage.PageSize1K)
	rootPairs := len(planTasks(r, s))
	if rootPairs < 2 {
		t.Fatalf("want at least 2 qualifying root pairs, got %d", rootPairs)
	}
	res, err := ParallelJoin(r, s, ParallelOptions{
		Options:  Options{Method: SJ4, BufferBytes: 128 << 10, UsePathBuffer: true, DiscardPairs: true},
		Workers:  rootPairs + 1, // more workers than root pairs forces a split
		Strategy: PartitionRoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	tasks := 0
	for _, n := range res.WorkerTasks {
		tasks += n
	}
	if tasks <= rootPairs {
		t.Fatalf("planner did not split: %d tasks from %d root pairs", tasks, rootPairs)
	}
	maxDistinct := int64(r.Stats().DirPages + s.Stats().DirPages)
	if res.PlanMetrics.DiskReads > maxDistinct {
		t.Errorf("planning charged %d disk reads for at most %d distinct directory pages (over-count regression)",
			res.PlanMetrics.DiskReads, maxDistinct)
	}
	if got := res.Metrics.Sub(res.PlanMetrics).DiskReads; got <= 0 {
		t.Errorf("worker disk reads = %d, want > 0", got)
	}
}

// TestParallelPlanningMatchesSequential pins the parallelised split rounds:
// fanning the restriction+plane-sweep work over worker goroutines must not
// change the plan by a single counter.  Both runs below reach the same
// minimum task count (workers * MinTasksPerWorker = 64), so they perform the
// same split rounds — one on a single goroutine, one fanned out — and their
// planning metrics must be bit-identical (comparisons are order-independent
// sums and the I/O is charged serially in task order).
func TestParallelPlanningMatchesSequential(t *testing.T) {
	r, s, _, _ := buildPair(t, 4000, 4000, storage.PageSize1K)
	opts := Options{Method: SJ4, BufferBytes: 128 << 10, UsePathBuffer: true, DiscardPairs: true}
	one, err := ParallelJoin(r, s, ParallelOptions{
		Options: opts, Workers: 1, Strategy: PartitionSpatial, MinTasksPerWorker: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	many, err := ParallelJoin(r, s, ParallelOptions{
		Options: opts, Workers: 8, Strategy: PartitionSpatial, MinTasksPerWorker: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if one.PlanMetrics != many.PlanMetrics {
		t.Errorf("plan metrics differ between 1 and 8 planning goroutines:\n1: %+v\n8: %+v",
			one.PlanMetrics, many.PlanMetrics)
	}
	oneTasks, manyTasks := 0, 0
	for _, n := range one.WorkerTasks {
		oneTasks += n
	}
	for _, n := range many.WorkerTasks {
		manyTasks += n
	}
	if oneTasks != manyTasks {
		t.Errorf("task lists differ: %d vs %d tasks", oneTasks, manyTasks)
	}
}

// TestWorkerBufferHitRatesNaNFree pins the divide-by-zero fix: a worker with
// no node accesses (an empty region — all its tasks stolen, or only
// non-intersecting pairs) must report hit rate 0, not NaN, both per worker
// and in the aggregate.
func TestWorkerBufferHitRatesNaNFree(t *testing.T) {
	res := &Result{WorkerMetrics: make([]metrics.Snapshot, 3)}
	res.WorkerMetrics[1] = metrics.Snapshot{BufferHits: 3, DiskReads: 1}
	if got := res.WorkerBufferHitRate(); got != 0.75 {
		t.Errorf("aggregate hit rate = %v, want 0.75", got)
	}
	rates := res.WorkerBufferHitRates()
	if len(rates) != 3 {
		t.Fatalf("got %d rates, want 3", len(rates))
	}
	for i, rate := range rates {
		if rate != rate { // NaN check
			t.Errorf("worker %d: hit rate is NaN", i)
		}
	}
	if rates[0] != 0 || rates[2] != 0 {
		t.Errorf("idle workers must report 0, got %v", rates)
	}
	if rates[1] != 0.75 {
		t.Errorf("worker 1 hit rate = %v, want 0.75", rates[1])
	}

	// All-idle aggregate: still 0, never 0/0.
	empty := &Result{WorkerMetrics: make([]metrics.Snapshot, 2)}
	if got := empty.WorkerBufferHitRate(); got != 0 {
		t.Errorf("all-idle aggregate = %v, want 0", got)
	}
	if got := empty.WorkerBufferHitRates(); got[0] != 0 || got[1] != 0 {
		t.Errorf("all-idle per-worker rates = %v, want zeros", got)
	}
	if (&Result{}).WorkerBufferHitRates() != nil {
		t.Error("sequential result must report nil per-worker rates")
	}

	// End to end: a real stealing run must produce finite rates for every
	// worker even when steals leave some queue empty.
	r, s, _, _ := buildPair(t, 1500, 1500, storage.PageSize1K)
	res2, err := ParallelJoin(r, s, ParallelOptions{
		Options:           Options{Method: SJ4, BufferBytes: 32 << 10, DiscardPairs: true},
		Workers:           8,
		Strategy:          PartitionStealing,
		MinTasksPerWorker: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for w, rate := range res2.WorkerBufferHitRates() {
		if rate != rate || rate < 0 || rate > 1 {
			t.Errorf("worker %d: hit rate %v outside [0,1]", w, rate)
		}
	}
}

func TestSortMergeJoinMatchesBruteForce(t *testing.T) {
	_, _, itemsR, itemsS := buildPair(t, 3000, 3000, storage.PageSize1K)
	want := bruteForce(itemsR, itemsS)
	res := SortMergeJoin(itemsR, itemsS, nil)
	got := asPairSet(res.Pairs)
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing pair %v", p)
		}
	}
	if res.Metrics.SortComparisons == 0 || res.Metrics.Comparisons == 0 {
		t.Fatal("sort-merge join must charge sorting and join comparisons")
	}
	if res.Metrics.DiskReads != 0 {
		t.Fatal("sort-merge join charges no I/O")
	}
	if res.Count != len(res.Pairs) {
		t.Fatal("count mismatch")
	}
}

func TestSortMergeJoinEmpty(t *testing.T) {
	res := SortMergeJoin(nil, nil, nil)
	if res.Count != 0 {
		t.Fatalf("empty join produced %d pairs", res.Count)
	}
}
