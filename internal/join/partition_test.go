package join

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/zorder"
)

// planTasks reproduces the planner's first enumeration step: all pairs of
// root entries whose rectangles intersect.
func planTasks(r, s *rtree.Tree) []parallelTask {
	var tasks []parallelTask
	for _, er := range r.Root().Entries {
		for _, es := range s.Root().Entries {
			if er.Rect.Intersects(es.Rect) {
				tasks = append(tasks, parallelTask{er: er, es: es})
			}
		}
	}
	return tasks
}

// checkSchedule asserts that a schedule is a partition of all task indices
// with every worker non-empty.
func checkSchedule(t *testing.T, schedule [][]int32, tasks, workers int) {
	t.Helper()
	if len(schedule) != workers {
		t.Fatalf("schedule has %d workers, want %d", len(schedule), workers)
	}
	seen := make(map[int32]bool, tasks)
	for w, idxs := range schedule {
		if len(idxs) == 0 {
			t.Errorf("worker %d received no tasks", w)
		}
		for _, i := range idxs {
			if i < 0 || int(i) >= tasks {
				t.Fatalf("worker %d: index %d out of range [0,%d)", w, i, tasks)
			}
			if seen[i] {
				t.Fatalf("task %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != tasks {
		t.Fatalf("schedule covers %d of %d tasks", len(seen), tasks)
	}
}

func TestBuildScheduleCoversAllTasks(t *testing.T) {
	r, s, _, _ := buildPair(t, 3000, 3000, storage.PageSize1K)
	tasks := planTasks(r, s)
	if len(tasks) < 4 {
		t.Fatalf("want at least 4 root tasks, got %d", len(tasks))
	}
	vecs := newTaskEstimator(r, s, true, Intersects()).vectors(tasks)
	for _, strategy := range PartitionStrategies {
		for _, workers := range []int{1, 2, 3, len(tasks)} {
			checkSchedule(t, buildSchedule(strategy, r, s, tasks, vecs, workers), len(tasks), workers)
		}
	}
	if schedule := buildSchedule(PartitionDynamic, r, s, tasks, vecs, 4); schedule != nil {
		t.Fatalf("dynamic strategy must return a nil schedule, got %v", schedule)
	}
	if _, err := ParallelJoin(r, s, ParallelOptions{
		Options:  Options{Method: SJ4},
		Strategy: PartitionStrategy(99),
	}); !errors.Is(err, ErrUnknownPartitionStrategy) {
		t.Fatalf("unknown strategy must be rejected, got %v", err)
	}
}

func TestBuildScheduleIsDeterministic(t *testing.T) {
	r, s, _, _ := buildPair(t, 3000, 3000, storage.PageSize1K)
	tasks := planTasks(r, s)
	vecs := newTaskEstimator(r, s, true, Intersects()).vectors(tasks)
	for _, strategy := range PartitionStrategies {
		a := buildSchedule(strategy, r, s, tasks, vecs, 4)
		b := buildSchedule(strategy, r, s, tasks, vecs, 4)
		for w := range a {
			if len(a[w]) != len(b[w]) {
				t.Fatalf("%v: worker %d sizes differ between runs", strategy, w)
			}
			for i := range a[w] {
				if a[w][i] != b[w][i] {
					t.Fatalf("%v: worker %d schedule differs between runs", strategy, w)
				}
			}
		}
	}
}

// TestLPTBalancesEstimates checks the defining property of the greedy LPT
// packing: its maximum per-worker estimated load never exceeds the
// round-robin deal's.
func TestLPTBalancesEstimates(t *testing.T) {
	r, s, _, _ := buildPair(t, 4000, 4000, storage.PageSize1K)
	tasks := planTasks(r, s)
	est := newTaskEstimator(r, s, true, Intersects()).estimates(tasks)
	for _, e := range est {
		if e <= 0 {
			t.Fatal("task estimates must be positive")
		}
	}
	maxLoad := func(schedule [][]int32) float64 {
		worst := 0.0
		for _, idxs := range schedule {
			load := 0.0
			for _, i := range idxs {
				load += est[i]
			}
			if load > worst {
				worst = load
			}
		}
		return worst
	}
	for _, workers := range []int{2, 4, 8} {
		if workers > len(tasks) {
			continue
		}
		lpt := scheduleLPT(est, workers)
		rr := scheduleRoundRobin(tasks, workers)
		checkSchedule(t, lpt, len(tasks), workers)
		if maxLoad(lpt) > maxLoad(rr)+1e-12 {
			t.Errorf("%d workers: LPT max load %.6f exceeds round-robin's %.6f",
				workers, maxLoad(lpt), maxLoad(rr))
		}
	}
}

// TestSpatialScheduleIsHilbertContiguous checks the locality property of the
// spatial strategy: every worker's task list is a concatenation of at most
// spatialRegionsPerWorker runs, each contiguous in the global Hilbert order
// of the task list.
func TestSpatialScheduleIsHilbertContiguous(t *testing.T) {
	r, s, _, _ := buildPair(t, 4000, 4000, storage.PageSize1K)
	tasks := planTasks(r, s)
	// The root level yields a handful of tasks; split one level deeper so
	// the regions have something to tile, as the planner itself does.
	var plan metrics.Local
	tracker := buffer.NewTracker(nil, metrics.NewCollector(), r.PageSize(), false)
	tasks, ok := splitTasks(r, s, tasks, tracker, &plan, &splitScratch{}, 0)
	if !ok {
		t.Fatal("expected the root tasks to be splittable")
	}
	workers := 4
	if len(tasks) < workers*spatialRegionsPerWorker {
		t.Fatalf("want at least %d tasks, got %d", workers*spatialRegionsPerWorker, len(tasks))
	}
	schedule := scheduleSpatial(r, s, tasks, newTaskEstimator(r, s, true, Intersects()).vectors(tasks), workers)
	checkSchedule(t, schedule, len(tasks), workers)

	world := jointWorld(r, s)
	keys := make([]uint64, len(tasks))
	for i, task := range tasks {
		rect := task.er.Rect
		if inter, ok := task.er.Rect.Intersection(task.es.Rect); ok {
			rect = inter
		}
		keys[i] = zorder.HilbertKey(rect.Center(), world)
	}
	// Reconstruct each task's rank in the Hilbert order the scheduler used.
	order := make([]int32, len(tasks))
	for i := range order {
		order[i] = int32(i)
	}
	sortStableByKey := func() {
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && (keys[order[j]] < keys[order[j-1]] ||
				(keys[order[j]] == keys[order[j-1]] && order[j] < order[j-1])); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	}
	sortStableByKey()
	rank := make([]int, len(tasks))
	for r, i := range order {
		rank[i] = r
	}
	for w, idxs := range schedule {
		runs := 1
		for k := 1; k < len(idxs); k++ {
			if rank[idxs[k]] != rank[idxs[k-1]]+1 {
				runs++
			}
		}
		if runs > spatialRegionsPerWorker {
			t.Errorf("worker %d: %d tasks form %d Hilbert runs, want at most %d",
				w, len(idxs), runs, spatialRegionsPerWorker)
		}
	}
}

// TestContiguousSplitProperties pins the invariants of the spatial cut with
// testing/quick: for arbitrary non-negative estimates and any feasible bin
// count, the concatenation of the bins is exactly the input order (every
// task scheduled exactly once, prefix structure preserved, no duplicates)
// and no bin is empty.
func TestContiguousSplitProperties(t *testing.T) {
	f := func(raw []uint16, binSeed uint8) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		est := make([]float64, n)
		order := make([]int32, n)
		for i, v := range raw {
			est[i] = float64(v) / 16 // non-negative, zeros allowed
			order[i] = int32(i)
		}
		bins := 1 + int(binSeed)%n
		split := contiguousSplit(order, est, bins)
		if len(split) != bins {
			return false
		}
		pos := 0
		for _, run := range split {
			if len(run) == 0 {
				return false
			}
			for _, i := range run {
				if pos >= n || order[pos] != i {
					return false
				}
				pos++
			}
		}
		return pos == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStealQueueProperties drives one queue with an arbitrary interleaving
// of owner pops and tail steals (testing/quick) and checks the tail-stealing
// invariants: the owner always consumes a prefix of the original run in
// order, every stolen run is a contiguous tail of the victim's remainder in
// original order, no task is ever delivered twice, and pops plus steals
// together deliver every task exactly once.
func TestStealQueueProperties(t *testing.T) {
	f := func(sizeSeed uint16, ops []bool) bool {
		n := 1 + int(sizeSeed)%300
		est := make([]float64, n)
		orig := make([]int32, n)
		for i := range orig {
			est[i] = 1 + float64(i%7)
			orig[i] = int32(n - 1 - i) // arbitrary task ids, not positions
		}
		q := &stealQueue{tasks: append([]int32(nil), orig...)}
		var load float64
		for _, i := range orig {
			load += est[i]
		}
		q.setLoadLocked(load)

		delivered := make(map[int32]int, n)
		popped := 0
		var stolen [][]int32
		var buf []int32
		for _, stealOp := range ops {
			if stealOp {
				run, _ := q.stealTail(buf, est)
				if len(run) > 0 {
					cp := append([]int32(nil), run...)
					stolen = append(stolen, cp)
					for _, i := range cp {
						delivered[i]++
					}
				}
				buf = run
			} else {
				i, ok := q.pop(est)
				if !ok {
					continue
				}
				// Owner pops must walk the original prefix in order.
				if i != orig[popped] {
					return false
				}
				delivered[i]++
				popped++
			}
		}
		// Drain the queue; the remainder plus everything delivered must be
		// the original run, each task exactly once.
		for {
			i, ok := q.pop(est)
			if !ok {
				break
			}
			if i != orig[popped] {
				return false
			}
			delivered[i]++
			popped++
		}
		// Stolen runs are contiguous tails in original order: each steal
		// removed the tail of the then-remainder, so the last steal sits
		// closest to the popped prefix and concatenating the runs in reverse
		// steal order must reconstruct orig[popped:] exactly.
		tail := make([]int32, 0, n-popped)
		for s := len(stolen) - 1; s >= 0; s-- {
			tail = append(tail, stolen[s]...)
		}
		if len(tail) != n-popped {
			return false
		}
		for k, i := range tail {
			if orig[popped+k] != i {
				return false
			}
		}
		for _, i := range orig {
			if delivered[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionStrategyString(t *testing.T) {
	want := map[PartitionStrategy]string{
		PartitionDynamic:      "dynamic",
		PartitionRoundRobin:   "round-robin",
		PartitionLPT:          "lpt",
		PartitionSpatial:      "spatial",
		PartitionStealing:     "stealing",
		PartitionStrategy(42): "PartitionStrategy(42)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("String(%d) = %q, want %q", int(s), s.String(), str)
		}
	}
}

func TestSortPairs(t *testing.T) {
	pairs := []Pair{{R: 2, S: 1}, {R: 1, S: 2}, {R: 1, S: 1}, {R: 2, S: 0}}
	SortPairs(pairs)
	want := []Pair{{R: 1, S: 1}, {R: 1, S: 2}, {R: 2, S: 0}, {R: 2, S: 1}}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}
}
