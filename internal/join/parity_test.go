package join

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// The golden values below were captured from the pre-refactor implementation
// (per-operation atomic counting, entry-copy sorts, closure-based sweep) on
// the deterministic datasets built by buildPair and buildHeightPair.  The
// batched metrics.Local accounting, the index sorts and the allocation-free
// sweep must reproduce every counter bit-identically, and the order-sensitive
// hash pins the exact pair emission order (which the stable sorts and the
// read schedules determine).
type goldenRun struct {
	label   string
	metrics metrics.Snapshot
	count   int
	hash    uint64 // 0 = order not pinned for this configuration
}

// snap builds a Snapshot from the counters in declaration order:
// comparisons, sort comparisons, disk reads/writes, buffer/path hits, bytes
// read/written, node sorts, pairs tested/reported.
func snap(comp, sortComp, dr, dw, bh, ph, br, bw, ns, pt, pr int64) metrics.Snapshot {
	return metrics.Snapshot{
		Comparisons: comp, SortComparisons: sortComp,
		DiskReads: dr, DiskWrites: dw,
		BufferHits: bh, PathHits: ph,
		BytesRead: br, BytesWritten: bw,
		NodeSorts: ns, PairsTested: pt, PairsReported: pr,
	}
}

var goldenEqualHeights = []goldenRun{
	{"NestedLoop", snap(5948377, 0, 118, 0, 3416, 0, 120832, 0, 0, 0, 46), 46, 2455035320889178970},
	{"SpatialJoin1", snap(198998, 0, 97, 0, 53, 64, 99328, 0, 0, 127696, 46), 46, 8541608788100112254},
	{"SpatialJoin2", snap(33006, 0, 97, 0, 53, 64, 99328, 0, 0, 7710, 46), 46, 8541608788100112254},
	{"SpatialJoin3", snap(24227, 6197, 97, 0, 47, 70, 99328, 0, 158, 152, 46), 46, 8945983103180869958},
	{"SpatialJoin4", snap(24227, 6197, 97, 0, 41, 76, 99328, 0, 158, 152, 46), 46, 15461635527682096422},
	{"SpatialJoin5", snap(24227, 6197, 97, 0, 36, 81, 99328, 0, 158, 152, 46), 46, 8774010023287257590},
}

var goldenNoRestrict = goldenRun{
	"SJ3-noRestrict", snap(16866, 36852, 97, 0, 117, 0, 99328, 0, 214, 152, 46), 46, 0,
}

var goldenHeights = []goldenRun{
	{"heights-policy(a)", snap(30085, 28, 34, 0, 39, 311, 34816, 0, 2, 1197, 25), 25, 0},
	{"heights-policy(b)", snap(30085, 28, 34, 0, 16, 15, 34816, 0, 2, 1197, 25), 25, 0},
	{"heights-policy(c)", snap(28981, 1396, 34, 0, 17, 333, 34816, 0, 30, 366, 25), 25, 0},
}

// pairHash folds the pair stream into an order-sensitive FNV-1a hash.
func pairHash(h *uint64) func(Pair) {
	*h = 14695981039346656037
	return func(p Pair) {
		*h = (*h ^ uint64(uint32(p.R))) * 1099511628211
		*h = (*h ^ uint64(uint32(p.S))) * 1099511628211
	}
}

func buildHeightPair(t testing.TB) (*rtree.Tree, *rtree.Tree) {
	t.Helper()
	big := datagen.Generate(datagen.Config{Kind: datagen.Streets, Count: 6000, Seed: 42})
	small := datagen.Generate(datagen.Config{Kind: datagen.Rivers, Count: 300, Seed: 43})
	rb := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	sb := rtree.MustNew(rtree.Options{PageSize: storage.PageSize1K})
	rb.InsertItems(big)
	sb.InsertItems(small)
	if rb.Height() == sb.Height() {
		t.Fatalf("want different heights, got %d and %d", rb.Height(), sb.Height())
	}
	return rb, sb
}

func checkGolden(t *testing.T, want goldenRun, got metrics.Snapshot, count int, hash uint64) {
	t.Helper()
	if got != want.metrics {
		t.Errorf("%s: metrics drifted from the per-op counting baseline:\n got  %#v\n want %#v", want.label, got, want.metrics)
	}
	if count != want.count {
		t.Errorf("%s: count = %d, want %d", want.label, count, want.count)
	}
	if want.hash != 0 && hash != want.hash {
		t.Errorf("%s: pair emission order changed: hash %d, want %d", want.label, hash, want.hash)
	}
}

// TestBatchedCountingMatchesPerOpGolden asserts that the batched
// metrics.Local accounting of the join hot path yields snapshots that are
// byte-identical to the per-operation atomic counting it replaced, for every
// algorithm SJ1-SJ5, the nested-loop baseline, the no-restriction ablation
// and all three height policies.
func TestBatchedCountingMatchesPerOpGolden(t *testing.T) {
	r, s, _, _ := buildPair(t, 2000, 2000, storage.PageSize1K)
	for i, m := range append([]Method{NestedLoop}, Methods...) {
		var h uint64
		res, err := Join(r, s, Options{Method: m, BufferBytes: 64 << 10, UsePathBuffer: true, OnPair: pairHash(&h)})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, goldenEqualHeights[i], res.Metrics, res.Count, h)
	}

	res, err := Join(r, s, Options{Method: SJ3, BufferBytes: 64 << 10, DisableRestriction: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, goldenNoRestrict, res.Metrics, res.Count, 0)

	rb, sb := buildHeightPair(t)
	for i, pol := range []HeightPolicy{PolicyWindowPerPair, PolicyBatchedWindows, PolicySweepOrder} {
		res, err := Join(rb, sb, Options{Method: SJ4, BufferBytes: 32 << 10, UsePathBuffer: true, HeightPolicy: pol})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, goldenHeights[i], res.Metrics, res.Count, 0)
	}
}

// TestJoinIsDeterministic asserts that repeated runs of every algorithm
// produce identical snapshots and identical pair orders: batch flushing must
// not introduce any run-to-run variation.
func TestJoinIsDeterministic(t *testing.T) {
	r, s, _, _ := buildPair(t, 1500, 1500, storage.PageSize1K)
	for _, m := range Methods {
		var h1, h2 uint64
		res1, err := Join(r, s, Options{Method: m, BufferBytes: 32 << 10, UsePathBuffer: true, OnPair: pairHash(&h1)})
		if err != nil {
			t.Fatal(err)
		}
		res2, err := Join(r, s, Options{Method: m, BufferBytes: 32 << 10, UsePathBuffer: true, OnPair: pairHash(&h2)})
		if err != nil {
			t.Fatal(err)
		}
		if res1.Metrics != res2.Metrics || res1.Count != res2.Count || h1 != h2 {
			t.Errorf("%v: two identical runs disagree: %+v/%d/%d vs %+v/%d/%d",
				m, res1.Metrics, res1.Count, h1, res2.Metrics, res2.Count, h2)
		}
	}
}

// TestParallelJoinCountsMatchSequential asserts that the contention-free
// parallel execution reports exactly the sequential result count and pair set
// for every method and worker count (run under -race in CI).
func TestParallelJoinCountsMatchSequential(t *testing.T) {
	r, s, _, _ := buildPair(t, 3000, 3000, storage.PageSize1K)
	for _, method := range Methods {
		seq, err := Join(r, s, Options{Method: method, BufferBytes: 128 << 10, UsePathBuffer: true})
		if err != nil {
			t.Fatal(err)
		}
		want := asPairSet(seq.Pairs)
		for _, workers := range []int{1, 3, 8, 64} {
			par, err := ParallelJoin(r, s, ParallelOptions{
				Options: Options{Method: method, BufferBytes: 128 << 10, UsePathBuffer: true},
				Workers: workers,
			})
			if err != nil {
				t.Fatalf("%v/%d: %v", method, workers, err)
			}
			if par.Count != seq.Count {
				t.Fatalf("%v/%d workers: count %d, sequential %d", method, workers, par.Count, seq.Count)
			}
			got := asPairSet(par.Pairs)
			if len(got) != len(want) {
				t.Fatalf("%v/%d workers: %d distinct pairs, want %d", method, workers, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%v/%d workers: missing pair %v", method, workers, p)
				}
			}
		}
	}
}

// TestParallelJoinTinyBufferStillBuffers exercises the buffer-partitioning
// fix: with BufferBytes set to less than one page per worker, every worker
// must still get at least one page instead of silently losing buffering.
func TestParallelJoinTinyBufferStillBuffers(t *testing.T) {
	r, s, _, _ := buildPair(t, 3000, 3000, storage.PageSize1K)
	seq, err := Join(r, s, Options{Method: SJ4})
	if err != nil {
		t.Fatal(err)
	}
	// 3 workers but only 2 pages worth of buffer: the unfixed partitioning
	// computed 2048/3 = 682 bytes per worker, truncating to a zero-page
	// buffer and silently disabling buffering (and with it SJ4's pinning).
	res, err := ParallelJoin(r, s, ParallelOptions{
		Options: Options{Method: SJ4, BufferBytes: 2 * storage.PageSize1K},
		Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != seq.Count {
		t.Fatalf("count %d, sequential %d", res.Count, seq.Count)
	}
	if res.Metrics.BufferHits == 0 {
		t.Fatal("per-worker buffers must hold at least one page, got zero buffer hits")
	}
}

// TestParallelJoinSplitsSmallFanOut asserts that a worker count exceeding the
// root fan-out still yields the sequential result (the planner splits the
// task list one level deeper until it offers enough parallelism).
func TestParallelJoinSplitsSmallFanOut(t *testing.T) {
	r, s, itemsR, itemsS := buildPair(t, 2000, 2000, storage.PageSize4K)
	rootFanOut := len(r.Root().Entries) * len(s.Root().Entries)
	workers := rootFanOut + 13
	res, err := ParallelJoin(r, s, ParallelOptions{
		Options: Options{Method: SJ4, BufferBytes: 64 << 10},
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(itemsR, itemsS)
	got := asPairSet(res.Pairs)
	if len(got) != len(want) {
		t.Fatalf("%d distinct pairs, want %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing pair %v", p)
		}
	}
}
