package metrics

import (
	"math/rand"
	"testing"
)

// TestLocalFlushMatchesDirectCounting drives one random operation sequence
// into (a) a Collector charged per operation and (b) a Local flushed at
// random batch boundaries, and asserts the final snapshots are byte
// identical.  This is the contract the join hot path relies on: batching the
// counter updates must not change any reported number.
func TestLocalFlushMatchesDirectCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	direct := NewCollector()
	batched := NewCollector()
	var local Local

	for op := 0; op < 10000; op++ {
		n := int64(rng.Intn(5) + 1)
		switch rng.Intn(8) {
		case 0:
			direct.AddComparisons(n)
			local.AddComparisons(n)
		case 1:
			direct.AddSortComparisons(n)
			local.AddSortComparisons(n)
		case 2:
			direct.AddDiskRead(n * 1024)
			local.DiskReads++
			local.BytesRead += n * 1024
		case 3:
			direct.AddDiskWrite(n * 1024)
			local.DiskWrites++
			local.BytesWritten += n * 1024
		case 4:
			direct.AddBufferHit()
			local.BufferHits++
		case 5:
			direct.AddPathHit()
			local.PathHits++
		case 6:
			direct.AddNodeSort()
			local.AddNodeSort()
		case 7:
			direct.AddPairTested()
			local.AddPairTested()
			direct.AddPairReported()
			local.AddPairReported()
		}
		if rng.Intn(13) == 0 {
			local.FlushTo(batched)
		}
	}
	local.FlushTo(batched)

	if got, want := batched.Snapshot(), direct.Snapshot(); got != want {
		t.Fatalf("batched flushing drifted from per-op counting:\n got  %#v\n want %#v", got, want)
	}
	if (local != Local{}) {
		t.Fatalf("flush must zero the local counter, got %#v", local)
	}
}

func TestLocalNilSafety(t *testing.T) {
	var l *Local
	l.AddComparisons(1)
	l.AddSortComparisons(1)
	l.AddNodeSort()
	l.AddPairTested()
	l.AddPairReported()
	l.Reset()
	l.FlushTo(nil)
	l.FlushTo(NewCollector())
	if l.Snapshot() != (Snapshot{}) {
		t.Fatal("nil Local must snapshot to zero")
	}
}

func TestAddSnapshotMerges(t *testing.T) {
	c := NewCollector()
	c.AddComparisons(5)
	c.AddSnapshot(Snapshot{Comparisons: 10, DiskReads: 3, BytesRead: 3072, PairsReported: 2})
	s := c.Snapshot()
	if s.Comparisons != 15 || s.DiskReads != 3 || s.BytesRead != 3072 || s.PairsReported != 2 {
		t.Fatalf("unexpected merged snapshot %#v", s)
	}
	var nilC *Collector
	nilC.AddSnapshot(Snapshot{Comparisons: 1}) // must not panic
}
