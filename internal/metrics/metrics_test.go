package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCollectorBasicCounting(t *testing.T) {
	c := NewCollector()
	c.AddComparisons(4)
	c.AddComparisons(3)
	c.AddSortComparisons(10)
	c.AddDiskRead(1024)
	c.AddDiskRead(1024)
	c.AddDiskWrite(2048)
	c.AddBufferHit()
	c.AddPathHit()
	c.AddNodeSort()
	c.AddPairTested()
	c.AddPairReported()

	if got := c.Comparisons(); got != 7 {
		t.Errorf("Comparisons = %d, want 7", got)
	}
	if got := c.SortComparisons(); got != 10 {
		t.Errorf("SortComparisons = %d, want 10", got)
	}
	if got := c.TotalComparisons(); got != 17 {
		t.Errorf("TotalComparisons = %d, want 17", got)
	}
	if got := c.DiskReads(); got != 2 {
		t.Errorf("DiskReads = %d, want 2", got)
	}
	if got := c.DiskWrites(); got != 1 {
		t.Errorf("DiskWrites = %d, want 1", got)
	}
	if got := c.DiskAccesses(); got != 3 {
		t.Errorf("DiskAccesses = %d, want 3", got)
	}
	if got := c.BytesRead(); got != 2048 {
		t.Errorf("BytesRead = %d, want 2048", got)
	}
	if got := c.BytesWritten(); got != 2048 {
		t.Errorf("BytesWritten = %d, want 2048", got)
	}
	if got := c.BufferHits(); got != 1 {
		t.Errorf("BufferHits = %d, want 1", got)
	}
	if got := c.PathHits(); got != 1 {
		t.Errorf("PathHits = %d, want 1", got)
	}
	if got := c.NodeSorts(); got != 1 {
		t.Errorf("NodeSorts = %d, want 1", got)
	}
	if got := c.PairsTested(); got != 1 {
		t.Errorf("PairsTested = %d, want 1", got)
	}
	if got := c.PairsReported(); got != 1 {
		t.Errorf("PairsReported = %d, want 1", got)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	c.AddComparisons(5)
	c.AddDiskRead(100)
	c.Reset()
	s := c.Snapshot()
	if s != (Snapshot{}) {
		t.Fatalf("after Reset snapshot = %+v, want zero", s)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	// None of these may panic.
	c.AddComparisons(1)
	c.AddSortComparisons(1)
	c.AddDiskRead(1)
	c.AddDiskWrite(1)
	c.AddBufferHit()
	c.AddPathHit()
	c.AddNodeSort()
	c.AddPairTested()
	c.AddPairReported()
}

func TestSnapshotSub(t *testing.T) {
	c := NewCollector()
	c.AddComparisons(10)
	c.AddDiskRead(512)
	before := c.Snapshot()
	c.AddComparisons(7)
	c.AddDiskRead(512)
	c.AddDiskRead(512)
	diff := c.Snapshot().Sub(before)
	if diff.Comparisons != 7 {
		t.Errorf("diff.Comparisons = %d, want 7", diff.Comparisons)
	}
	if diff.DiskReads != 2 {
		t.Errorf("diff.DiskReads = %d, want 2", diff.DiskReads)
	}
	if diff.DiskAccesses() != 2 {
		t.Errorf("diff.DiskAccesses = %d, want 2", diff.DiskAccesses())
	}
}

func TestSnapshotString(t *testing.T) {
	c := NewCollector()
	c.AddComparisons(3)
	s := c.Snapshot().String()
	if !strings.Contains(s, "comparisons=3") {
		t.Errorf("String() = %q, missing comparison count", s)
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := NewCollector()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.AddComparisons(1)
				c.AddDiskRead(16)
			}
		}()
	}
	wg.Wait()
	if got := c.Comparisons(); got != workers*perWorker {
		t.Errorf("Comparisons = %d, want %d", got, workers*perWorker)
	}
	if got := c.DiskReads(); got != workers*perWorker {
		t.Errorf("DiskReads = %d, want %d", got, workers*perWorker)
	}
}
