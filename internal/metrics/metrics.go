// Package metrics collects the two cost measures used by the paper to
// evaluate spatial-join algorithms: the number of floating-point comparisons
// (CPU time) and the number of disk accesses (I/O time), plus auxiliary
// counters such as buffer hits and node sorts that the experiments report.
//
// A Collector is safe for concurrent use; all counters are updated with
// atomic operations so that parallel benchmark workers can share one
// collector.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Collector accumulates cost counters for one experiment run.
// The zero value is ready to use.
type Collector struct {
	comparisons     atomic.Int64
	sortComparisons atomic.Int64
	diskReads       atomic.Int64
	diskWrites      atomic.Int64
	bufferHits      atomic.Int64
	pathHits        atomic.Int64
	bytesRead       atomic.Int64
	bytesWritten    atomic.Int64
	nodeSorts       atomic.Int64
	pairsTested     atomic.Int64
	pairsReported   atomic.Int64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// AddComparisons charges n floating-point comparisons spent on evaluating the
// join condition.  It implements geom.ComparisonCounter.
func (c *Collector) AddComparisons(n int64) {
	if c == nil {
		return
	}
	c.comparisons.Add(n)
}

// AddSortComparisons charges n comparisons spent on sorting node entries
// (the "sorting" row of the paper's Table 4).
func (c *Collector) AddSortComparisons(n int64) {
	if c == nil {
		return
	}
	c.sortComparisons.Add(n)
}

// AddDiskRead records a page read from (simulated) secondary storage of the
// given size in bytes.
func (c *Collector) AddDiskRead(bytes int64) {
	if c == nil {
		return
	}
	c.diskReads.Add(1)
	c.bytesRead.Add(bytes)
}

// AddDiskWrite records a page written to (simulated) secondary storage of the
// given size in bytes.
func (c *Collector) AddDiskWrite(bytes int64) {
	if c == nil {
		return
	}
	c.diskWrites.Add(1)
	c.bytesWritten.Add(bytes)
}

// AddBufferHit records a page request satisfied by the LRU buffer.
func (c *Collector) AddBufferHit() {
	if c == nil {
		return
	}
	c.bufferHits.Add(1)
}

// AddPathHit records a page request satisfied by the path buffer.
func (c *Collector) AddPathHit() {
	if c == nil {
		return
	}
	c.pathHits.Add(1)
}

// AddNodeSort records that one node's entries were sorted after being read
// into the buffer (used to compute the paper's repeat-factor).
func (c *Collector) AddNodeSort() {
	if c == nil {
		return
	}
	c.nodeSorts.Add(1)
}

// AddPairTested records that one pair of entries was tested for the join
// condition.
func (c *Collector) AddPairTested() {
	if c == nil {
		return
	}
	c.pairsTested.Add(1)
}

// AddPairReported records that one pair of entries was reported as a join
// result.
func (c *Collector) AddPairReported() {
	if c == nil {
		return
	}
	c.pairsReported.Add(1)
}

// Comparisons returns the number of join-condition comparisons charged so far.
func (c *Collector) Comparisons() int64 { return c.comparisons.Load() }

// SortComparisons returns the number of comparisons charged to node sorting.
func (c *Collector) SortComparisons() int64 { return c.sortComparisons.Load() }

// TotalComparisons returns join plus sorting comparisons.
func (c *Collector) TotalComparisons() int64 {
	return c.comparisons.Load() + c.sortComparisons.Load()
}

// DiskReads returns the number of page reads that went to secondary storage.
func (c *Collector) DiskReads() int64 { return c.diskReads.Load() }

// DiskWrites returns the number of page writes to secondary storage.
func (c *Collector) DiskWrites() int64 { return c.diskWrites.Load() }

// DiskAccesses returns reads plus writes; the paper's I/O measure.
func (c *Collector) DiskAccesses() int64 { return c.diskReads.Load() + c.diskWrites.Load() }

// BufferHits returns the number of page requests served from the LRU buffer.
func (c *Collector) BufferHits() int64 { return c.bufferHits.Load() }

// PathHits returns the number of page requests served from the path buffer.
func (c *Collector) PathHits() int64 { return c.pathHits.Load() }

// BytesRead returns the number of bytes read from secondary storage.
func (c *Collector) BytesRead() int64 { return c.bytesRead.Load() }

// BytesWritten returns the number of bytes written to secondary storage.
func (c *Collector) BytesWritten() int64 { return c.bytesWritten.Load() }

// NodeSorts returns how many times a node was sorted after being read.
func (c *Collector) NodeSorts() int64 { return c.nodeSorts.Load() }

// PairsTested returns the number of entry pairs tested for the join condition.
func (c *Collector) PairsTested() int64 { return c.pairsTested.Load() }

// PairsReported returns the number of result pairs reported.
func (c *Collector) PairsReported() int64 { return c.pairsReported.Load() }

// AddSnapshot adds every counter of s to the collector.  ParallelJoin uses it
// to merge per-worker collectors into the shared one once at the end of the
// run instead of contending on shared atomics throughout.
func (c *Collector) AddSnapshot(s Snapshot) {
	if c == nil {
		return
	}
	c.comparisons.Add(s.Comparisons)
	c.sortComparisons.Add(s.SortComparisons)
	c.diskReads.Add(s.DiskReads)
	c.diskWrites.Add(s.DiskWrites)
	c.bufferHits.Add(s.BufferHits)
	c.pathHits.Add(s.PathHits)
	c.bytesRead.Add(s.BytesRead)
	c.bytesWritten.Add(s.BytesWritten)
	c.nodeSorts.Add(s.NodeSorts)
	c.pairsTested.Add(s.PairsTested)
	c.pairsReported.Add(s.PairsReported)
}

// Reset zeroes every counter.
func (c *Collector) Reset() {
	c.comparisons.Store(0)
	c.sortComparisons.Store(0)
	c.diskReads.Store(0)
	c.diskWrites.Store(0)
	c.bufferHits.Store(0)
	c.pathHits.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.nodeSorts.Store(0)
	c.pairsTested.Store(0)
	c.pairsReported.Store(0)
}

// Snapshot is an immutable copy of all counters, suitable for reporting.
type Snapshot struct {
	Comparisons     int64
	SortComparisons int64
	DiskReads       int64
	DiskWrites      int64
	BufferHits      int64
	PathHits        int64
	BytesRead       int64
	BytesWritten    int64
	NodeSorts       int64
	PairsTested     int64
	PairsReported   int64
}

// Snapshot returns a point-in-time copy of the counters.
func (c *Collector) Snapshot() Snapshot {
	return Snapshot{
		Comparisons:     c.comparisons.Load(),
		SortComparisons: c.sortComparisons.Load(),
		DiskReads:       c.diskReads.Load(),
		DiskWrites:      c.diskWrites.Load(),
		BufferHits:      c.bufferHits.Load(),
		PathHits:        c.pathHits.Load(),
		BytesRead:       c.bytesRead.Load(),
		BytesWritten:    c.bytesWritten.Load(),
		NodeSorts:       c.nodeSorts.Load(),
		PairsTested:     c.pairsTested.Load(),
		PairsReported:   c.pairsReported.Load(),
	}
}

// DiskAccesses returns reads plus writes captured by the snapshot.
func (s Snapshot) DiskAccesses() int64 { return s.DiskReads + s.DiskWrites }

// TotalComparisons returns join plus sorting comparisons captured by the
// snapshot.
func (s Snapshot) TotalComparisons() int64 { return s.Comparisons + s.SortComparisons }

// Sub returns the per-counter difference s - other.  Experiments use it to
// isolate the cost of a single phase from cumulative counters.
func (s Snapshot) Sub(other Snapshot) Snapshot {
	return Snapshot{
		Comparisons:     s.Comparisons - other.Comparisons,
		SortComparisons: s.SortComparisons - other.SortComparisons,
		DiskReads:       s.DiskReads - other.DiskReads,
		DiskWrites:      s.DiskWrites - other.DiskWrites,
		BufferHits:      s.BufferHits - other.BufferHits,
		PathHits:        s.PathHits - other.PathHits,
		BytesRead:       s.BytesRead - other.BytesRead,
		BytesWritten:    s.BytesWritten - other.BytesWritten,
		NodeSorts:       s.NodeSorts - other.NodeSorts,
		PairsTested:     s.PairsTested - other.PairsTested,
		PairsReported:   s.PairsReported - other.PairsReported,
	}
}

// String implements fmt.Stringer with a compact one-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("comparisons=%d sort=%d diskReads=%d diskWrites=%d bufferHits=%d pathHits=%d pairs=%d",
		s.Comparisons, s.SortComparisons, s.DiskReads, s.DiskWrites, s.BufferHits, s.PathHits, s.PairsReported)
}
