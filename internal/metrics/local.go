package metrics

// Local is a plain, non-atomic batch counter for the hot join loops.  Hot
// code charges a Local with ordinary integer additions and flushes the
// accumulated deltas to a shared Collector at a coarse granularity (once per
// node pair in the join executor), so the per-comparison cost of atomic
// read-modify-write operations disappears from the steady-state path while
// the Collector still ends up with exactly the same totals.
//
// A Local is NOT safe for concurrent use; give each goroutine its own and
// flush into the shared Collector.  The zero value is ready to use.
type Local struct {
	Comparisons     int64
	SortComparisons int64
	DiskReads       int64
	DiskWrites      int64
	BufferHits      int64
	PathHits        int64
	BytesRead       int64
	BytesWritten    int64
	NodeSorts       int64
	PairsTested     int64
	PairsReported   int64
}

// AddComparisons charges n join-condition comparisons.  It implements
// geom.ComparisonCounter so a *Local can stand in wherever a *Collector is
// accepted for comparison counting.
func (l *Local) AddComparisons(n int64) {
	if l == nil {
		return
	}
	l.Comparisons += n
}

// AddSortComparisons charges n comparisons spent on sorting node entries.
func (l *Local) AddSortComparisons(n int64) {
	if l == nil {
		return
	}
	l.SortComparisons += n
}

// AddNodeSort records that one node's entries were sorted.
func (l *Local) AddNodeSort() {
	if l == nil {
		return
	}
	l.NodeSorts++
}

// AddPairTested records that one pair of entries was tested for the join
// condition.
func (l *Local) AddPairTested() {
	if l == nil {
		return
	}
	l.PairsTested++
}

// AddPairReported records that one result pair was reported.
func (l *Local) AddPairReported() {
	if l == nil {
		return
	}
	l.PairsReported++
}

// Snapshot returns the deltas accumulated since the last flush.
func (l *Local) Snapshot() Snapshot {
	if l == nil {
		return Snapshot{}
	}
	return Snapshot(*l)
}

// Reset zeroes every counter without flushing.
func (l *Local) Reset() {
	if l == nil {
		return
	}
	*l = Local{}
}

// FlushTo adds the accumulated deltas to c and zeroes the Local.  Only
// non-zero counters touch the shared cache line, so a flush after a node pair
// that performed no I/O costs a handful of predictable branches.
func (l *Local) FlushTo(c *Collector) {
	if l == nil || c == nil {
		return
	}
	if l.Comparisons != 0 {
		c.comparisons.Add(l.Comparisons)
	}
	if l.SortComparisons != 0 {
		c.sortComparisons.Add(l.SortComparisons)
	}
	if l.DiskReads != 0 {
		c.diskReads.Add(l.DiskReads)
	}
	if l.DiskWrites != 0 {
		c.diskWrites.Add(l.DiskWrites)
	}
	if l.BufferHits != 0 {
		c.bufferHits.Add(l.BufferHits)
	}
	if l.PathHits != 0 {
		c.pathHits.Add(l.PathHits)
	}
	if l.BytesRead != 0 {
		c.bytesRead.Add(l.BytesRead)
	}
	if l.BytesWritten != 0 {
		c.bytesWritten.Add(l.BytesWritten)
	}
	if l.NodeSorts != 0 {
		c.nodeSorts.Add(l.NodeSorts)
	}
	if l.PairsTested != 0 {
		c.pairsTested.Add(l.PairsTested)
	}
	if l.PairsReported != 0 {
		c.pairsReported.Add(l.PairsReported)
	}
	*l = Local{}
}
