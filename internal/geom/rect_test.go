package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalisesCorners(t *testing.T) {
	r := NewRect(3, 4, 1, 2)
	want := Rect{XL: 1, YL: 2, XU: 3, YU: 4}
	if r != want {
		t.Fatalf("NewRect(3,4,1,2) = %v, want %v", r, want)
	}
}

func TestRectFromPoints(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	r := RectFromPoints(pts)
	want := Rect{XL: -2, YL: -1, XU: 4, YU: 5}
	if r != want {
		t.Fatalf("RectFromPoints = %v, want %v", r, want)
	}
}

func TestRectFromPointsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty point slice")
		}
	}()
	RectFromPoints(nil)
}

func TestValid(t *testing.T) {
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"unit square", Rect{0, 0, 1, 1}, true},
		{"degenerate point", Rect{1, 1, 1, 1}, true},
		{"inverted x", Rect{2, 0, 1, 1}, false},
		{"inverted y", Rect{0, 2, 1, 1}, false},
		{"nan", Rect{math.NaN(), 0, 1, 1}, false},
		{"inf", Rect{0, 0, math.Inf(1), 1}, false},
	}
	for _, tt := range tests {
		if got := tt.r.Valid(); got != tt.want {
			t.Errorf("%s: Valid() = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestAreaMarginCenter(t *testing.T) {
	r := Rect{XL: 1, YL: 2, XU: 4, YU: 8}
	if got := r.Width(); got != 3 {
		t.Errorf("Width = %g, want 3", got)
	}
	if got := r.Height(); got != 6 {
		t.Errorf("Height = %g, want 6", got)
	}
	if got := r.Area(); got != 18 {
		t.Errorf("Area = %g, want 18", got)
	}
	if got := r.Margin(); got != 9 {
		t.Errorf("Margin = %g, want 9", got)
	}
	if got := r.Center(); got != (Point{2.5, 5}) {
		t.Errorf("Center = %v, want (2.5,5)", got)
	}
}

func TestIntersects(t *testing.T) {
	base := Rect{XL: 0, YL: 0, XU: 2, YU: 2}
	tests := []struct {
		name string
		s    Rect
		want bool
	}{
		{"identical", base, true},
		{"contained", Rect{0.5, 0.5, 1.5, 1.5}, true},
		{"overlap corner", Rect{1, 1, 3, 3}, true},
		{"touch edge", Rect{2, 0, 3, 2}, true},
		{"touch corner", Rect{2, 2, 3, 3}, true},
		{"disjoint right", Rect{2.1, 0, 3, 2}, false},
		{"disjoint above", Rect{0, 2.1, 2, 3}, false},
		{"disjoint left", Rect{-3, 0, -1, 2}, false},
		{"disjoint below", Rect{0, -3, 2, -1}, false},
	}
	for _, tt := range tests {
		if got := base.Intersects(tt.s); got != tt.want {
			t.Errorf("%s: Intersects = %v, want %v", tt.name, got, tt.want)
		}
		// Intersection must be symmetric.
		if got := tt.s.Intersects(base); got != tt.want {
			t.Errorf("%s: reverse Intersects = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestIntersection(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	got, ok := a.Intersection(b)
	if !ok {
		t.Fatal("expected intersection")
	}
	want := Rect{1, 1, 2, 2}
	if got != want {
		t.Fatalf("Intersection = %v, want %v", got, want)
	}
	if _, ok := a.Intersection(Rect{5, 5, 6, 6}); ok {
		t.Fatal("expected no intersection")
	}
}

func TestIntersectionArea(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	if got := a.IntersectionArea(Rect{1, 1, 3, 3}); got != 1 {
		t.Errorf("IntersectionArea = %g, want 1", got)
	}
	if got := a.IntersectionArea(Rect{3, 3, 4, 4}); got != 0 {
		t.Errorf("disjoint IntersectionArea = %g, want 0", got)
	}
	if got := a.IntersectionArea(Rect{2, 0, 3, 2}); got != 0 {
		t.Errorf("touching IntersectionArea = %g, want 0", got)
	}
}

func TestContains(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	if !outer.Contains(Rect{1, 1, 9, 9}) {
		t.Error("expected containment of inner rect")
	}
	if !outer.Contains(outer) {
		t.Error("expected containment of itself")
	}
	if outer.Contains(Rect{1, 1, 11, 9}) {
		t.Error("did not expect containment of overflowing rect")
	}
	if !outer.ContainsPoint(Point{5, 5}) {
		t.Error("expected point containment")
	}
	if outer.ContainsPoint(Point{11, 5}) {
		t.Error("did not expect point containment outside")
	}
}

func TestUnionAndEnlargement(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 2, 3, 3}
	u := a.Union(b)
	want := Rect{0, 0, 3, 3}
	if u != want {
		t.Fatalf("Union = %v, want %v", u, want)
	}
	if got := a.Enlargement(b); got != 8 {
		t.Errorf("Enlargement = %g, want 8", got)
	}
	if got := a.Enlargement(Rect{0.2, 0.2, 0.8, 0.8}); got != 0 {
		t.Errorf("Enlargement of contained rect = %g, want 0", got)
	}
}

func TestCenterDistance(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{3, 4, 5, 6}
	// centres are (1,1) and (4,5): distance 5.
	if got := a.CenterDistance(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("CenterDistance = %g, want 5", got)
	}
}

func TestPointDistanceAndRect(t *testing.T) {
	p := Point{1, 2}
	q := Point{4, 6}
	if got := p.Distance(q); math.Abs(got-5) > 1e-12 {
		t.Errorf("Distance = %g, want 5", got)
	}
	if got := p.Rect(); got != (Rect{1, 2, 1, 2}) {
		t.Errorf("Rect = %v", got)
	}
}

func TestStringFormat(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	if got := r.String(); got != "[1,3]x[2,4]" {
		t.Errorf("String = %q", got)
	}
}

func randomRect(rng *rand.Rand) Rect {
	x := rng.Float64() * 100
	y := rng.Float64() * 100
	return Rect{XL: x, YL: y, XU: x + rng.Float64()*10, YU: y + rng.Float64()*10}
}

// Property: union always contains both operands and intersection (when
// non-empty) is contained in both operands.
func TestUnionIntersectionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := randomRect(rng), randomRect(rng)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			t.Fatalf("union %v does not contain operands %v %v", u, a, b)
		}
		if in, ok := a.Intersection(b); ok {
			if !a.Contains(in) || !b.Contains(in) {
				t.Fatalf("intersection %v not contained in operands %v %v", in, a, b)
			}
			if !a.Intersects(b) {
				t.Fatalf("Intersection returned ok but Intersects is false for %v %v", a, b)
			}
			if got, want := in.Area(), a.IntersectionArea(b); math.Abs(got-want) > 1e-9 {
				t.Fatalf("IntersectionArea mismatch: %g vs %g", got, want)
			}
		} else if a.IntersectionArea(b) != 0 {
			t.Fatalf("no intersection but positive area for %v %v", a, b)
		}
	}
}

// Property: enlargement is never negative and is zero exactly when the
// argument is contained.
func TestEnlargementProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := Rect{float64(ax), float64(ay), float64(ax) + float64(aw), float64(ay) + float64(ah)}
		b := Rect{float64(bx), float64(by), float64(bx) + float64(bw), float64(by) + float64(bh)}
		e := a.Enlargement(b)
		if e < 0 {
			return false
		}
		if a.Contains(b) && e != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
