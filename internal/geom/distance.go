package geom

// Distance primitives for the within-distance and kNN join predicates.
//
// The paper's CPU cost measure is the number of floating-point comparisons
// spent evaluating the join condition (section 4).  The distance predicates
// extend that accounting in the same spirit: computing the minimum distance
// between two rectilinear rectangles requires locating the relative position
// of the two intervals on each axis, which costs one comparison when the
// first test resolves it and two otherwise — mirroring the short-circuit
// structure of IntersectsCost.  All distances are kept in squared form so the
// predicates never pay (or have to account for) a square root.

// ExpandRect grows r by eps on every side.  The within-distance filter runs
// the unchanged intersection machinery over epsilon-expanded rectangles: two
// rectangles are within distance eps only if the expansion of one intersects
// the other (the converse does not hold at corners, which is why leaf pairs
// get the exact RectDistSquaredCost test).
func ExpandRect(r Rect, eps float64) Rect {
	return Rect{XL: r.XL - eps, YL: r.YL - eps, XU: r.XU + eps, YU: r.YU + eps}
}

// RectDistSquaredCost returns the squared minimum (Euclidean) distance
// between the rectangles r and s, together with the number of floating-point
// comparisons charged for computing it.  Intersecting or touching rectangles
// have distance zero.
//
// Per axis the interval gap is located with the comparison sequence
//
//	s.XU < r.XL   (gap on the low side of r)
//	r.XU < s.XL   (gap on the high side of r; only evaluated if the first fails)
//
// so each axis costs one or two comparisons and the whole computation two to
// four, matching the granularity of IntersectsCost.
func RectDistSquaredCost(r, s Rect) (float64, int64) {
	var n int64 = 1
	var dx, dy float64
	if s.XU < r.XL {
		dx = r.XL - s.XU
	} else {
		n++
		if r.XU < s.XL {
			dx = s.XL - r.XU
		}
	}
	n++
	if s.YU < r.YL {
		dy = r.YL - s.YU
	} else {
		n++
		if r.YU < s.YL {
			dy = s.YL - r.YU
		}
	}
	return dx*dx + dy*dy, n
}

// WithinDistSquaredCost evaluates the join condition "the minimum distance
// between r and s is at most sqrt(eps2)" and returns the comparison cost: the
// distance computation of RectDistSquaredCost plus one threshold comparison.
// Callers pass eps*eps so the threshold test needs no square root.
func WithinDistSquaredCost(r, s Rect, eps2 float64) (bool, int64) {
	d2, n := RectDistSquaredCost(r, s)
	return d2 <= eps2, n + 1
}
