package geom

import (
	"math"
	"testing"
)

func TestExpandRect(t *testing.T) {
	r := Rect{XL: 1, YL: 2, XU: 3, YU: 4}
	got := ExpandRect(r, 0.5)
	want := Rect{XL: 0.5, YL: 1.5, XU: 3.5, YU: 4.5}
	if got != want {
		t.Fatalf("ExpandRect = %v, want %v", got, want)
	}
	if ExpandRect(r, 0) != r {
		t.Fatalf("ExpandRect(r, 0) must be identity")
	}
}

// naiveRectDist computes the minimum distance between two rectangles by
// brute force over the corner/edge cases using per-axis clamps.
func naiveRectDist(r, s Rect) float64 {
	dx := math.Max(0, math.Max(r.XL-s.XU, s.XL-r.XU))
	dy := math.Max(0, math.Max(r.YL-s.YU, s.YL-r.YU))
	return math.Hypot(dx, dy)
}

func TestRectDistSquaredCost(t *testing.T) {
	cases := []struct {
		name  string
		r, s  Rect
		comps int64
	}{
		{"overlap", Rect{0, 0, 2, 2}, Rect{1, 1, 3, 3}, 4},
		{"touching", Rect{0, 0, 1, 1}, Rect{1, 0, 2, 1}, 4},
		{"left gap", Rect{5, 0, 6, 1}, Rect{0, 0, 1, 1}, 3},
		{"right gap", Rect{0, 0, 1, 1}, Rect{5, 0, 6, 1}, 4},
		{"below gap", Rect{0, 5, 1, 6}, Rect{0, 0, 1, 1}, 3},
		{"corner gap", Rect{3, 4, 5, 6}, Rect{0, 0, 1, 1}, 2},
		{"identical", Rect{0, 0, 1, 1}, Rect{0, 0, 1, 1}, 4},
	}
	for _, tc := range cases {
		d2, n := RectDistSquaredCost(tc.r, tc.s)
		want := naiveRectDist(tc.r, tc.s)
		if math.Abs(math.Sqrt(d2)-want) > 1e-12 {
			t.Errorf("%s: dist = %v, want %v", tc.name, math.Sqrt(d2), want)
		}
		if n != tc.comps {
			t.Errorf("%s: comparisons = %d, want %d", tc.name, n, tc.comps)
		}
		// The distance function must be symmetric in its arguments.
		d2s, _ := RectDistSquaredCost(tc.s, tc.r)
		if d2 != d2s {
			t.Errorf("%s: asymmetric distance %v vs %v", tc.name, d2, d2s)
		}
	}
}

func TestWithinDistSquaredCost(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	s := Rect{4, 4, 5, 5} // corner gap: distance = sqrt(9+9) = 4.2426...
	eps := 4.0
	ok, n := WithinDistSquaredCost(r, s, eps*eps)
	if ok {
		t.Fatalf("corner distance %.4f must exceed eps %.4f", math.Sqrt(18), eps)
	}
	if n != 5 { // 2 per axis (gap on the high side of r) + 1 threshold
		t.Fatalf("comparisons = %d, want 5", n)
	}
	ok, _ = WithinDistSquaredCost(r, s, 18.0)
	if !ok {
		t.Fatalf("distance sqrt(18) must be within sqrt(18)")
	}
	// The expanded-rectangle filter must never reject a within-distance pair:
	// dist(r,s) <= eps implies ExpandRect(r, eps) intersects s.
	for _, eps := range []float64{0.5, 1, 3, 4.3} {
		within, _ := WithinDistSquaredCost(r, s, eps*eps)
		if within && !ExpandRect(r, eps).Intersects(s) {
			t.Fatalf("eps=%v: filter rejected a qualifying pair", eps)
		}
	}
}
