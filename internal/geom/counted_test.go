package geom

import (
	"math/rand"
	"testing"
)

// intCounter is a trivial ComparisonCounter for tests.
type intCounter struct{ n int64 }

func (c *intCounter) AddComparisons(n int64) { c.n += n }

func TestIntersectsCountedAgreesWithIntersects(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b := randomRect(rng), randomRect(rng)
		var c intCounter
		got := IntersectsCounted(a, b, &c)
		if got != a.Intersects(b) {
			t.Fatalf("IntersectsCounted disagrees with Intersects for %v %v", a, b)
		}
		if c.n < 1 || c.n > 4 {
			t.Fatalf("comparison count %d out of [1,4]", c.n)
		}
		if got && c.n != 4 {
			t.Fatalf("intersecting pair must cost exactly 4 comparisons, got %d", c.n)
		}
	}
}

func TestIntersectsCountedShortCircuit(t *testing.T) {
	// r.XL > s.XU fails the very first conjunct: exactly one comparison.
	r := Rect{10, 0, 11, 1}
	s := Rect{0, 0, 1, 1}
	var c intCounter
	if IntersectsCounted(r, s, &c) {
		t.Fatal("rectangles should not intersect")
	}
	if c.n != 1 {
		t.Fatalf("expected 1 comparison, got %d", c.n)
	}

	// Failure on the second conjunct: two comparisons.
	c = intCounter{}
	if IntersectsCounted(s, r, &c) {
		t.Fatal("rectangles should not intersect")
	}
	if c.n != 2 {
		t.Fatalf("expected 2 comparisons, got %d", c.n)
	}

	// x-overlapping but y-disjoint above: fails on third conjunct.
	r = Rect{0, 10, 1, 11}
	c = intCounter{}
	if IntersectsCounted(r, s, &c) {
		t.Fatal("rectangles should not intersect")
	}
	if c.n != 3 {
		t.Fatalf("expected 3 comparisons, got %d", c.n)
	}

	// y-disjoint the other way: fails on fourth conjunct.
	c = intCounter{}
	if IntersectsCounted(s, r, &c) {
		t.Fatal("rectangles should not intersect")
	}
	if c.n != 4 {
		t.Fatalf("expected 4 comparisons, got %d", c.n)
	}
}

func TestIntersectsCountedNilCounter(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{0.5, 0.5, 2, 2}
	if !IntersectsCounted(a, b, nil) {
		t.Fatal("expected intersection with nil counter")
	}
}

func TestIntersectsIntervalCounted(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{0, 0.5, 1, 2}
	var c intCounter
	if !IntersectsIntervalCounted(a, b, &c) {
		t.Fatal("expected y-interval intersection")
	}
	if c.n != 2 {
		t.Fatalf("expected 2 comparisons, got %d", c.n)
	}
	// a.YL <= s.YU holds but a.YU >= s.YL fails: two comparisons.
	c = intCounter{}
	if IntersectsIntervalCounted(a, Rect{0, 2, 1, 3}, &c) {
		t.Fatal("expected no y-interval intersection")
	}
	if c.n != 2 {
		t.Fatalf("expected 2 comparisons, got %d", c.n)
	}
	// t.YL <= s.YU already fails: a single comparison.
	c = intCounter{}
	if IntersectsIntervalCounted(Rect{0, 2, 1, 3}, a, &c) {
		t.Fatal("expected no y-interval intersection")
	}
	if c.n != 1 {
		t.Fatalf("expected 1 comparison, got %d", c.n)
	}
}

func TestCompareCounted(t *testing.T) {
	var c intCounter
	if !CompareCounted(1, 2, &c) {
		t.Fatal("1 < 2 expected true")
	}
	if CompareCounted(2, 1, &c) {
		t.Fatal("2 < 1 expected false")
	}
	if CompareCounted(1, 1, nil) {
		t.Fatal("1 < 1 expected false")
	}
	if c.n != 2 {
		t.Fatalf("expected 2 comparisons, got %d", c.n)
	}
}
