package geom

// ComparisonCounter receives the number of floating-point comparisons spent
// while evaluating intersection predicates.  internal/metrics.Collector
// satisfies it; tests may use a plain integer adapter.
type ComparisonCounter interface {
	AddComparisons(n int64)
}

// IntersectsCounted evaluates the join condition "r intersects s" and charges
// the exact number of floating-point comparisons to c, following the paper's
// accounting: a fulfilled join condition costs exactly four comparisons, a
// failed one costs between one and four depending on which conjunct fails
// first.
//
// The evaluation order matches the textual predicate
//
//	r.XL <= s.XU  AND  s.XL <= r.XU  AND  r.YL <= s.YU  AND  s.YL <= r.YU
//
// with short-circuiting after the first false conjunct.
func IntersectsCounted(r, s Rect, c ComparisonCounter) bool {
	ok, n := IntersectsCost(r, s)
	if c != nil {
		c.AddComparisons(n)
	}
	return ok
}

// IntersectsCost evaluates the join condition "r intersects s" and returns
// the number of floating-point comparisons the paper's accounting charges for
// it, without touching any counter.  Hot loops accumulate the returned costs
// in a plain local integer and flush the batch once (see metrics.Local),
// which keeps the steady-state join path free of per-predicate counter
// updates while producing bit-identical totals.
func IntersectsCost(r, s Rect) (bool, int64) {
	var n int64 = 1
	ok := r.XL <= s.XU
	if ok {
		n++
		ok = s.XL <= r.XU
		if ok {
			n++
			ok = r.YL <= s.YU
			if ok {
				n++
				ok = s.YL <= r.YU
			}
		}
	}
	return ok, n
}

// IntersectsIntervalCounted evaluates the one-dimensional interval overlap
// test used by the plane-sweep algorithm on the y-projection:
//
//	t.YL <= s.YU  AND  t.YU >= s.YL
//
// and charges the comparisons performed (two if the first conjunct holds, one
// otherwise).
func IntersectsIntervalCounted(t, s Rect, c ComparisonCounter) bool {
	ok, n := IntersectsIntervalCost(t, s)
	if c != nil {
		c.AddComparisons(n)
	}
	return ok
}

// IntersectsIntervalCost is the batch-accounting variant of
// IntersectsIntervalCounted: it returns the comparison cost instead of
// charging a counter.
func IntersectsIntervalCost(t, s Rect) (bool, int64) {
	var n int64 = 1
	ok := t.YL <= s.YU
	if ok {
		n++
		ok = t.YU >= s.YL
	}
	return ok, n
}

// CompareCounted charges a single floating-point comparison to c and reports
// whether a < b.  The plane-sweep algorithms use it for the x-axis scans so
// that their comparisons are included in the CPU cost measure, exactly as the
// paper's Table 4 separates "join" and "sorting" comparisons.
func CompareCounted(a, b float64, c ComparisonCounter) bool {
	if c != nil {
		c.AddComparisons(1)
	}
	return a < b
}
