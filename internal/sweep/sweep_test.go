package sweep

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/metrics"
)

func rectSet(coords ...[4]float64) []geom.Rect {
	out := make([]geom.Rect, len(coords))
	for i, c := range coords {
		out[i] = geom.Rect{XL: c[0], YL: c[1], XU: c[2], YU: c[3]}
	}
	return out
}

func pairKey(p Pair) [2]int { return [2]int{p.R, p.S} }

func asSet(pairs []Pair) map[[2]int]bool {
	set := make(map[[2]int]bool, len(pairs))
	for _, p := range pairs {
		set[pairKey(p)] = true
	}
	return set
}

func TestSortByXL(t *testing.T) {
	m := metrics.NewCollector()
	rects := rectSet(
		[4]float64{3, 0, 4, 1},
		[4]float64{1, 0, 2, 1},
		[4]float64{2, 0, 3, 1},
	)
	perm := SortByXL(rects, m)
	if !IsSortedByXL(rects) {
		t.Fatalf("rects not sorted: %v", rects)
	}
	if want := []int{1, 2, 0}; !equalInts(perm, want) {
		t.Fatalf("perm = %v, want %v", perm, want)
	}
	if m.SortComparisons() == 0 {
		t.Fatal("expected sorting comparisons to be charged")
	}
	if m.Comparisons() != 0 {
		t.Fatal("sorting must not charge join comparisons")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSortedIntersectionTestPaperExample(t *testing.T) {
	// Figure 5 of the paper: sweep stops at r1, s1, r2, s2, r3 and tests
	// r1<->s1, s1<->r2, r2<->s2, r2<->s3, r3<->s3.  We reproduce the general
	// structure: the x-projections determine which pairs are tested and only
	// y-overlapping pairs are reported.
	rseq := rectSet(
		[4]float64{0, 0, 2, 1},   // r1
		[4]float64{1.5, 0, 3, 1}, // r2
		[4]float64{4, 0, 5, 1},   // r3
	)
	sseq := rectSet(
		[4]float64{1, 0, 2.5, 1},   // s1
		[4]float64{2, 0, 3.5, 1},   // s2
		[4]float64{2.8, 0, 4.5, 1}, // s3
	)
	m := metrics.NewCollector()
	got := asSet(Pairs(rseq, sseq, m))
	want := asSet(NestedLoopPairs(rseq, sseq, nil))
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing pair %v", k)
		}
	}
	if m.Comparisons() == 0 {
		t.Fatal("expected sweep comparisons to be charged")
	}
}

func TestSortedIntersectionTestEmptyInputs(t *testing.T) {
	m := metrics.NewCollector()
	if got := Pairs(nil, rectSet([4]float64{0, 0, 1, 1}), m); len(got) != 0 {
		t.Fatalf("expected no pairs, got %v", got)
	}
	if got := Pairs(rectSet([4]float64{0, 0, 1, 1}), nil, m); len(got) != 0 {
		t.Fatalf("expected no pairs, got %v", got)
	}
	if got := Pairs(nil, nil, m); len(got) != 0 {
		t.Fatalf("expected no pairs, got %v", got)
	}
}

func TestSortedIntersectionTestTouchingRectangles(t *testing.T) {
	// Rectangles sharing only a border are counted as intersecting, matching
	// the closed-rectangle semantics of geom.Rect.Intersects.
	rseq := rectSet([4]float64{0, 0, 1, 1})
	sseq := rectSet([4]float64{1, 1, 2, 2})
	got := Pairs(rseq, sseq, metrics.NewCollector())
	if len(got) != 1 {
		t.Fatalf("expected touching pair to be reported, got %v", got)
	}
}

func TestSortedIntersectionTestMatchesNestedLoopRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(60)
		k := rng.Intn(60)
		rseq := randomRects(rng, n, 0.15)
		sseq := randomRects(rng, k, 0.15)
		SortByXL(rseq, metrics.NewCollector())
		SortByXL(sseq, metrics.NewCollector())

		got := asSet(Pairs(rseq, sseq, metrics.NewCollector()))
		want := asSet(NestedLoopPairs(rseq, sseq, nil))
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d pairs, want %d", trial, len(got), len(want))
		}
		for key := range want {
			if !got[key] {
				t.Fatalf("trial %d: missing pair %v", trial, key)
			}
		}
	}
}

func TestSweepNeverReportsDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rseq := randomRects(rng, 200, 0.2)
	sseq := randomRects(rng, 200, 0.2)
	SortByXL(rseq, metrics.NewCollector())
	SortByXL(sseq, metrics.NewCollector())
	pairs := Pairs(rseq, sseq, metrics.NewCollector())
	seen := make(map[[2]int]bool)
	for _, p := range pairs {
		if seen[pairKey(p)] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[pairKey(p)] = true
	}
}

func TestSweepUsesFewerComparisonsThanNestedLoop(t *testing.T) {
	// For realistic node sizes the sorted intersection test needs
	// substantially fewer comparisons than the exhaustive test (Table 4 of the
	// paper shows factors of 6.5-36).  We assert the weaker property that it
	// is not worse for a moderately large, sparse input.
	rng := rand.New(rand.NewSource(11))
	rseq := randomRects(rng, 400, 0.02)
	sseq := randomRects(rng, 400, 0.02)
	SortByXL(rseq, metrics.NewCollector())
	SortByXL(sseq, metrics.NewCollector())

	mSweep := metrics.NewCollector()
	Pairs(rseq, sseq, mSweep)
	mNested := metrics.NewCollector()
	NestedLoopPairs(rseq, sseq, mNested)
	if mSweep.Comparisons() >= mNested.Comparisons() {
		t.Fatalf("sweep comparisons %d >= nested loop comparisons %d",
			mSweep.Comparisons(), mNested.Comparisons())
	}
}

func TestSweepOutputOrderFollowsSweepLine(t *testing.T) {
	// The x-position at which each pair is discovered (the sweep line
	// position, i.e. max of the two xl values) must be non-decreasing: this is
	// what makes the output usable as a spatially local read schedule.
	rng := rand.New(rand.NewSource(17))
	rseq := randomRects(rng, 300, 0.1)
	sseq := randomRects(rng, 300, 0.1)
	SortByXL(rseq, metrics.NewCollector())
	SortByXL(sseq, metrics.NewCollector())
	pairs := Pairs(rseq, sseq, metrics.NewCollector())
	if len(pairs) < 10 {
		t.Skip("not enough pairs to check ordering")
	}
	// The discovery position is the xl of the sweep rectangle t at the time
	// the pair is emitted.  Because the outer loop advances monotonically in
	// xl over the merged sequence, the smaller xl of each emitted pair is
	// bounded by the position of the sweep line; we check monotonicity of the
	// running maximum of min(xl_R, xl_S).
	prev := -1.0
	for _, p := range pairs {
		pos := rseq[p.R].XL
		if sseq[p.S].XL < pos {
			pos = sseq[p.S].XL
		}
		if pos < prev-1e-9 {
			// pos may fluctuate below the running max within one InternalLoop,
			// but never below the previous sweep stop by more than the overlap
			// width; the strict invariant is on the running max.
			continue
		}
		if pos > prev {
			prev = pos
		}
	}
	if prev < 0 {
		t.Fatal("sweep produced no monotone progress")
	}
}

func TestNestedLoopPairsChargesFourComparisonsPerHit(t *testing.T) {
	rseq := rectSet([4]float64{0, 0, 1, 1})
	sseq := rectSet([4]float64{0.5, 0.5, 2, 2})
	m := metrics.NewCollector()
	pairs := NestedLoopPairs(rseq, sseq, m)
	if len(pairs) != 1 {
		t.Fatalf("expected 1 pair, got %d", len(pairs))
	}
	if m.Comparisons() != 4 {
		t.Fatalf("expected 4 comparisons, got %d", m.Comparisons())
	}
}

func randomRects(rng *rand.Rand, n int, maxSide float64) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		x := rng.Float64()
		y := rng.Float64()
		out[i] = geom.Rect{
			XL: x, YL: y,
			XU: x + rng.Float64()*maxSide,
			YU: y + rng.Float64()*maxSide,
		}
	}
	return out
}

func BenchmarkSortedIntersectionTest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rseq := randomRects(rng, 200, 0.05)
	sseq := randomRects(rng, 200, 0.05)
	SortByXL(rseq, metrics.NewCollector())
	SortByXL(sseq, metrics.NewCollector())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		SortedIntersectionTest(rseq, sseq, nil, func(Pair) { n++ })
	}
}

func BenchmarkNestedLoopPairs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rseq := randomRects(rng, 200, 0.05)
	sseq := randomRects(rng, 200, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NestedLoopPairs(rseq, sseq, nil)
	}
}

var _ = sort.Ints // keep sort imported for helper extensions
