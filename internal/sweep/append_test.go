package sweep

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// TestAppendPairsMatchesSortedIntersectionTest asserts that the
// allocation-free batched sweep produces exactly the pairs, pair order and
// comparison count of the callback-based reference implementation.
func TestAppendPairsMatchesSortedIntersectionTest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		rseq := randomRects(rng, rng.Intn(60), 0.2)
		sseq := randomRects(rng, rng.Intn(60), 0.2)
		SortByXL(rseq, metrics.NewCollector())
		SortByXL(sseq, metrics.NewCollector())

		ref := metrics.NewCollector()
		var want []Pair
		SortedIntersectionTest(rseq, sseq, ref, func(p Pair) { want = append(want, p) })

		var local metrics.Local
		got := AppendPairs(rseq, sseq, &local, nil)

		if local.Comparisons != ref.Comparisons() {
			t.Fatalf("trial=%d: AppendPairs charged %d comparisons, reference charged %d",
				trial, local.Comparisons, ref.Comparisons())
		}
		if len(got) != len(want) {
			t.Fatalf("trial=%d: %d pairs, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial=%d: pair %d is %v, want %v (order must match)", trial, i, got[i], want[i])
			}
		}
	}
}

// TestAppendPairsReusesBuffer asserts the append contract: passing the
// previous result truncated to zero length must reuse its backing array.
func TestAppendPairsReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rseq := randomRects(rng, 40, 0.2)
	sseq := randomRects(rng, 40, 0.2)
	SortByXL(rseq, metrics.NewCollector())
	SortByXL(sseq, metrics.NewCollector())

	buf := AppendPairs(rseq, sseq, nil, nil)
	if cap(buf) == 0 {
		t.Skip("no intersecting pairs in random data")
	}
	again := AppendPairs(rseq, sseq, nil, buf[:0])
	if &again[0] != &buf[0] {
		t.Fatal("AppendPairs must append into the provided buffer")
	}
}
