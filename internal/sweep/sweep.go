// Package sweep implements the SortedIntersectionTest of section 4.2 of the
// paper: given two sequences of rectangles, each sorted by the lower x-corner
// of its rectangles, it reports all intersecting pairs by moving a sweep line
// from left to right using only two pointers and no additional dynamic data
// structures.
//
// The algorithm runs in O(|R| + |S| + k_x) time where k_x is the number of
// pairs whose x-projections intersect.  Its output order ("local plane-sweep
// order") doubles as the read schedule of SpatialJoin3/4.
//
//repro:measured
package sweep

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/metrics"
)

// Pair identifies one rectangle of the R sequence and one of the S sequence
// by their positions in the input slices.
type Pair struct {
	R, S int
}

// SortByXL sorts rects in place by their lower x-corner and charges the
// comparisons performed to the collector's sorting counter (the "sorting" row
// of the paper's Table 4).  The permutation applied to rects is returned so
// callers can reorder parallel slices.
func SortByXL(rects []geom.Rect, m *metrics.Collector) []int {
	perm := make([]int, len(rects))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool {
		m.AddSortComparisons(1)
		return rects[perm[i]].XL < rects[perm[j]].XL
	})
	applyPermutation(rects, perm)
	return perm
}

// applyPermutation reorders rects so that rects[i] becomes old rects[perm[i]].
func applyPermutation(rects []geom.Rect, perm []int) {
	out := make([]geom.Rect, len(rects))
	for i, p := range perm {
		out[i] = rects[p]
	}
	copy(rects, out)
}

// IsSortedByXL reports whether rects is sorted by the lower x-corner.
func IsSortedByXL(rects []geom.Rect) bool {
	return sort.SliceIsSorted(rects, func(i, j int) bool { return rects[i].XL < rects[j].XL })
}

// SortedIntersectionTest reports every intersecting pair between rseq and
// sseq to emit, in local plane-sweep order.  Both sequences must already be
// sorted by the lower x-corner (use SortByXL).  Floating-point comparisons
// spent on the sweep (x-axis scans and y-interval tests) are charged to c;
// both *metrics.Collector and *metrics.Local satisfy the interface.
//
// The implementation follows the paper's two-procedure formulation: the outer
// loop advances the sweep line to the unprocessed rectangle with the smallest
// xl value; InternalLoop then scans the other sequence from its first
// unprocessed rectangle until the x-projections no longer overlap.
func SortedIntersectionTest(rseq, sseq []geom.Rect, c geom.ComparisonCounter, emit func(Pair)) {
	i, j := 0, 0
	for i < len(rseq) && j < len(sseq) {
		if geom.CompareCounted(rseq[i].XL, sseq[j].XL, c) {
			// The sweep line stops at t = rseq[i]; scan sseq from j.
			internalLoop(rseq[i], sseq, j, c, func(k int) {
				emit(Pair{R: i, S: k})
			})
			i++
		} else {
			// The sweep line stops at t = sseq[j]; scan rseq from i.
			internalLoop(sseq[j], rseq, i, c, func(k int) {
				emit(Pair{R: k, S: j})
			})
			j++
		}
	}
}

// internalLoop scans seq starting at position unmarked while the x-projection
// of seq[k] still intersects the x-projection of t, reporting indices whose
// y-projections intersect as well.
func internalLoop(t geom.Rect, seq []geom.Rect, unmarked int, c geom.ComparisonCounter, hit func(k int)) {
	for k := unmarked; k < len(seq); k++ {
		// x-intersection test: seq[k].xl <= t.xu.
		if geom.CompareCounted(t.XU, seq[k].XL, c) {
			// seq[k].xl > t.xu: no further rectangle can overlap in x.
			return
		}
		if geom.IntersectsIntervalCounted(t, seq[k], c) {
			hit(k)
		}
	}
}

// AppendPairs is the allocation-free form of SortedIntersectionTest used by
// the join hot path: instead of invoking a callback per pair (whose closure
// would escape and allocate once per node pair) it appends the pairs to out
// and returns the extended slice.  The comparison cost is accumulated in a
// plain local integer and charged to c exactly once, so a node pair costs one
// counter update instead of one per comparison.  The pair order and the total
// number of comparisons charged are identical to SortedIntersectionTest.
//
//repro:hotpath
func AppendPairs(rseq, sseq []geom.Rect, c geom.ComparisonCounter, out []Pair) []Pair {
	var n int64
	i, j := 0, 0
	for i < len(rseq) && j < len(sseq) {
		n++
		if rseq[i].XL < sseq[j].XL {
			// The sweep line stops at t = rseq[i]; scan sseq from j.
			t := rseq[i]
			for k := j; k < len(sseq); k++ {
				n++
				if t.XU < sseq[k].XL {
					break
				}
				ok, cost := geom.IntersectsIntervalCost(t, sseq[k])
				n += cost
				if ok {
					out = append(out, Pair{R: i, S: k})
				}
			}
			i++
		} else {
			// The sweep line stops at t = sseq[j]; scan rseq from i.
			t := sseq[j]
			for k := i; k < len(rseq); k++ {
				n++
				if t.XU < rseq[k].XL {
					break
				}
				ok, cost := geom.IntersectsIntervalCost(t, rseq[k])
				n += cost
				if ok {
					out = append(out, Pair{R: k, S: j})
				}
			}
			j++
		}
	}
	if c != nil && n != 0 {
		c.AddComparisons(n)
	}
	return out
}

// Pairs runs the sorted intersection test and collects the result into a
// fresh slice.
func Pairs(rseq, sseq []geom.Rect, c geom.ComparisonCounter) []Pair {
	return AppendPairs(rseq, sseq, c, nil)
}

// NestedLoopPairs computes all intersecting pairs by testing every rectangle
// of rseq against every rectangle of sseq, charging the join-condition
// comparisons to c.  It is the reference algorithm for correctness tests and
// the CPU-cost baseline of SpatialJoin1.
func NestedLoopPairs(rseq, sseq []geom.Rect, c geom.ComparisonCounter) []Pair {
	var out []Pair
	for i, r := range rseq {
		for j, s := range sseq {
			if geom.IntersectsCounted(r, s, c) {
				out = append(out, Pair{R: i, S: j})
			}
		}
	}
	return out
}
