package dataio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/rtree"
)

func TestWriteReadRoundTrip(t *testing.T) {
	items := datagen.Generate(datagen.Config{Kind: datagen.Streets, Count: 500, Seed: 1})
	var buf bytes.Buffer
	if err := Write(&buf, items); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("round trip returned %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].Data != items[i].Data || !got[i].Rect.Equal(items[i].Rect) {
			t.Fatalf("item %d mismatch: %v vs %v", i, got[i], items[i])
		}
	}
}

func TestReadWithoutHeader(t *testing.T) {
	in := "1,0.1,0.2,0.3,0.4\n2,0.5,0.5,0.6,0.7\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Data != 2 {
		t.Fatalf("Read = %v", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad id after header": "id,xl,yl,xu,yu\noops,0,0,1,1\n",
		"bad coordinate":      "1,0,zero,1,1\n",
		"invalid rect":        "1,1,1,0,0\n",
		"wrong field count":   "1,2,3\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	empty, err := Read(strings.NewReader(""))
	if err != nil || len(empty) != 0 {
		t.Errorf("empty input: %v, %v", empty, err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "items.csv")
	items := []rtree.Item{{Rect: geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}, Data: 7}}
	if err := WriteFile(path, items); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Data != 7 {
		t.Fatalf("ReadFile = %v", got)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("expected error for missing file")
	}
	if err := WriteFile(filepath.Join(dir, "no-such-dir", "x.csv"), items); err == nil {
		t.Fatal("expected error for unwritable path")
	}
}
