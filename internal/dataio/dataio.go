// Package dataio reads and writes spatial relations as CSV files so that the
// command-line tools can exchange data sets: one rectangle per line in the
// form
//
//	id,xl,yl,xu,yu
//
// with an optional header line.  The format is deliberately trivial — it
// stands in for the TIGER/Line extracts the paper used, which are themselves
// simple per-record coordinate files.
package dataio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// header is written as the first line of every file produced by Write.
var header = []string{"id", "xl", "yl", "xu", "yu"}

// Write writes the items to w in CSV form, including a header line.
func Write(w io.Writer, items []rtree.Item) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataio: writing header: %w", err)
	}
	for _, it := range items {
		rec := []string{
			strconv.FormatInt(int64(it.Data), 10),
			strconv.FormatFloat(it.Rect.XL, 'g', -1, 64),
			strconv.FormatFloat(it.Rect.YL, 'g', -1, 64),
			strconv.FormatFloat(it.Rect.XU, 'g', -1, 64),
			strconv.FormatFloat(it.Rect.YU, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataio: writing record %d: %w", it.Data, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile writes the items to the named file, creating or truncating it.
func WriteFile(path string, items []rtree.Item) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	if err := Write(f, items); err != nil {
		return err
	}
	return f.Close()
}

// Read parses items from r.  A header line (any line whose first field is not
// an integer) is skipped.  Invalid rectangles are rejected.
func Read(r io.Reader) ([]rtree.Item, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	var items []rtree.Item
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: %w", line+1, err)
		}
		line++
		id, err := strconv.ParseInt(rec[0], 10, 32)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("dataio: line %d: bad id %q", line, rec[0])
		}
		coords := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataio: line %d: bad coordinate %q", line, rec[i+1])
			}
			coords[i] = v
		}
		rect := geom.Rect{XL: coords[0], YL: coords[1], XU: coords[2], YU: coords[3]}
		if !rect.Valid() {
			return nil, fmt.Errorf("dataio: line %d: invalid rectangle %v", line, rect)
		}
		items = append(items, rtree.Item{Rect: rect, Data: int32(id)})
	}
	return items, nil
}

// ReadFile reads items from the named file.
func ReadFile(path string) ([]rtree.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return Read(f)
}
