// Package server is the concurrent join front-end over one mutable indexed
// dataset: many readers join against an immutable epoch snapshot while a
// single writer applies Hilbert-ordered mixed batches, flipping snapshots
// atomically at round boundaries.  The robustness layer bounds every failure
// mode with a typed error: overload sheds (ErrShed with a retry hint),
// deadlines cancel mid-traversal (ErrDeadline), and storage faults that
// survive retry make the server sticky-broken (ErrServerBroken) until Reopen
// recovers it — an admitted query therefore always terminates with either a
// result identical to the sequential join on its snapshot or one of these
// errors, never a hang and never a torn tree.
package server

import (
	"errors"
	"fmt"
	"time"
)

// Typed errors every admitted or rejected request resolves to.
var (
	// ErrShed rejects a request at admission: the queued work already
	// exceeds the server's cost budget or its slot capacity.  The error is
	// a *ShedError carrying a retry hint.
	ErrShed = errors.New("server: overloaded, request shed")
	// ErrDeadline marks a request cancelled by its deadline; the join's
	// partial work was discarded deterministically.
	ErrDeadline = errors.New("server: deadline exceeded")
	// ErrServerBroken is returned for every request after a storage fault
	// survived the retry budget (or the pager itself reported
	// storage.ErrPagerBroken).  The state is sticky: only Reopen, which
	// re-runs pager recovery and rebuilds the epoch, clears it.
	ErrServerBroken = errors.New("server: storage broken, reopen required")
	// ErrClosed is returned once Close has begun.
	ErrClosed = errors.New("server: closed")
)

// ShedError is the concrete type behind ErrShed.
type ShedError struct {
	// RetryAfter estimates when enough queued work will have drained for
	// the request to be admitted.
	RetryAfter time.Duration
	// Queued is the number of requests in flight when the request was
	// rejected.
	Queued int
	// EstimatedCost is the cost-model estimate for the rejected request.
	EstimatedCost time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("server: overloaded, request shed (%d queued, est %v, retry after %v)",
		e.Queued, e.EstimatedCost, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrShed) true for every *ShedError.
func (e *ShedError) Unwrap() error { return ErrShed }
