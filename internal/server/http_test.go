package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/zorder"
)

func doHTTP(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(method, path, &buf))
	return w
}

// TestHandlerRetryAfterIsIntegerSeconds is the satellite regression for the
// RFC 9110 violation: a shed response's Retry-After must parse as a whole
// number of seconds (strconv.Atoi) and be at least 1.  The old %g formatting
// produced values like "0.0005", which conforming clients parse as 0 and
// retry immediately — the exact opposite of shedding.
func TestHandlerRetryAfterIsIntegerSeconds(t *testing.T) {
	fx := newFixture(t, Config{CostBudget: 1}) // 1ns: every join sheds
	h := NewHandler(fx.srv, HandlerConfig{})

	w := doHTTP(t, h, "POST", "/join", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed join: %d %s", w.Code, w.Body)
	}
	ra := w.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q does not parse as RFC 9110 integer seconds: %v", ra, err)
	}
	if secs < 1 {
		t.Fatalf("Retry-After = %d, want >= 1", secs)
	}
}

// TestHandlerPairsAreSorted pins the wire contract the router's sorted merge
// depends on: /join responses carry their pairs in ascending (R, S) order,
// whatever worker split produced them.
func TestHandlerPairsAreSorted(t *testing.T) {
	fx := newFixture(t, Config{})
	h := NewHandler(fx.srv, HandlerConfig{})

	for _, workers := range []int{0, 4} {
		w := doHTTP(t, h, "POST", "/join", JoinRequestWire{Workers: workers})
		if w.Code != http.StatusOK {
			t.Fatalf("join (workers=%d): %d %s", workers, w.Code, w.Body)
		}
		var resp JoinResponseWire
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Count == 0 || len(resp.Pairs) != resp.Count {
			t.Fatalf("workers=%d: count=%d pairs=%d", workers, resp.Count, len(resp.Pairs))
		}
		for i := 1; i < len(resp.Pairs); i++ {
			a, b := resp.Pairs[i-1], resp.Pairs[i]
			if a[0] > b[0] || (a[0] == b[0] && a[1] > b[1]) {
				t.Fatalf("workers=%d: pairs not in (R, S) order at %d: %v > %v", workers, i, a, b)
			}
		}
	}
}

// TestHandlerStatsCarriesCoverage checks that /stats publishes the snapshot
// coverage a router plans with, including the shard range when configured.
func TestHandlerStatsCarriesCoverage(t *testing.T) {
	fx := newFixture(t, Config{})
	shard := zorder.KeyRange{Lo: 0, Hi: zorder.KeySpace}
	h := NewHandler(fx.srv, HandlerConfig{Shard: &shard})

	w := doHTTP(t, h, "GET", "/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", w.Code, w.Body)
	}
	var stats StatsWire
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shard != shard.String() {
		t.Fatalf("shard = %q, want %q", stats.Shard, shard.String())
	}
	cov := stats.Coverage
	if cov.Epoch == 0 || cov.RItems != len(fx.rItems) || cov.SItems != len(fx.sItems) {
		t.Fatalf("coverage = %+v, want epoch > 0, R=%d, S=%d", cov, len(fx.rItems), len(fx.sItems))
	}
	if !cov.RCatalog.Valid() || !cov.SCatalog.Valid() {
		t.Fatalf("coverage catalogs invalid: %+v", cov)
	}
	if cov.RMBR.XU <= cov.RMBR.XL || cov.RMBR.YU <= cov.RMBR.YL {
		t.Fatalf("degenerate R MBR: %+v", cov.RMBR)
	}
}
