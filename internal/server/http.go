package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/zorder"
)

// The HTTP surface of a join server: spatialjoind mounts it over its single
// process; with a HandlerConfig.Shard range the same surface serves one
// Hilbert shard of a sharded deployment, and the router in internal/router
// fans out across many of them.  The wire types are exported so router and
// shard agree on the protocol by construction.

// OpWire is one staged mutation on the wire.
type OpWire struct {
	XL     float64 `json:"xl"`
	YL     float64 `json:"yl"`
	XU     float64 `json:"xu"`
	YU     float64 `json:"yu"`
	Data   int32   `json:"data"`
	Delete bool    `json:"delete,omitempty"`
}

// Rect returns the op's rectangle.
func (o OpWire) Rect() geom.Rect {
	return geom.Rect{XL: o.XL, YL: o.YL, XU: o.XU, YU: o.YU}
}

// JoinRequestWire is the POST /join body.  All fields are optional; the
// zero value runs the configured default join.
type JoinRequestWire struct {
	// Method selects the join algorithm (join.SJ1 .. join.SJ5) when
	// non-zero.
	Method int `json:"method,omitempty"`
	// Workers > 1 runs a parallel join with that many workers.
	Workers int `json:"workers,omitempty"`
	// Predicate selects the join condition in join.ParsePredicate's textual
	// form: "intersects" (the default — old request bodies that omit the
	// field keep their behaviour), "within:EPS" or "knn:K".
	Predicate string `json:"predicate,omitempty"`
	// DiscardPairs suppresses materialising the pairs in the response.
	DiscardPairs bool `json:"discard_pairs,omitempty"`
}

// JoinResponseWire is the POST /join response.  Pairs are sorted by (R, S) —
// the SortJoinPairs order — so a router can merge shard streams with a
// sorted merge and any client sees a deterministic order.
type JoinResponseWire struct {
	Epoch   uint64     `json:"epoch"`
	Count   int        `json:"count"`
	Retries int        `json:"retries,omitempty"`
	Pairs   [][2]int32 `json:"pairs,omitempty"`
}

// StatsWire is the GET /stats response: the server counters, the snapshot's
// coverage summary, the shard's key range (empty for an unsharded daemon)
// and the number of staged-but-uncommitted mutations.
type StatsWire struct {
	Stats    StatsSnapshot `json:"stats"`
	Coverage Coverage      `json:"coverage"`
	Shard    string        `json:"shard,omitempty"`
	Pending  int           `json:"pending"`
}

// HandlerConfig configures the HTTP surface.
type HandlerConfig struct {
	// Shard, when non-nil, is the half-open Hilbert key range this server
	// owns.  POST /update rejects (400) any op whose rectangle centre keys
	// outside the range: a misrouted op silently indexed on the wrong shard
	// would be unreachable for the router's key-range planning, so the shard
	// refuses it outright.
	Shard *zorder.KeyRange
	// World is the rectangle the Hilbert key grid covers; the zero value
	// means the unit square.  Router and shards must agree on it.
	World geom.Rect
}

// UnitWorld is the default key-grid world: the synthetic datasets live in
// the unit square.
var UnitWorld = geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}

func (c HandlerConfig) withDefaults() HandlerConfig {
	if c.World == (geom.Rect{}) {
		c.World = UnitWorld
	}
	return c
}

// NewHandler builds the HTTP surface over a join server.
func NewHandler(srv *Server, cfg HandlerConfig) http.Handler {
	cfg = cfg.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		var ops []OpWire
		if err := json.NewDecoder(r.Body).Decode(&ops); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		batch := make([]Op, len(ops))
		for i, op := range ops {
			rect := op.Rect()
			if cfg.Shard != nil {
				if key := zorder.HilbertKey(rect.Center(), cfg.World); !cfg.Shard.Contains(key) {
					httpError(w, http.StatusBadRequest,
						fmt.Errorf("op %d: centre key %d outside shard range %s", i, key, cfg.Shard))
					return
				}
			}
			batch[i] = Op{Rect: rect, Data: op.Data, Delete: op.Delete}
		}
		if err := srv.Update(batch); err != nil {
			WriteJoinError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]int{"staged": len(batch)})
	})
	mux.HandleFunc("POST /round", func(w http.ResponseWriter, r *http.Request) {
		rs, err := srv.Round()
		if err != nil {
			WriteJoinError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rs)
	})
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		var req JoinRequestWire
		if r.ContentLength != 0 {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		pred, err := join.ParsePredicate(req.Predicate)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := srv.Join(r.Context(), JoinRequest{
			Method:       join.Method(req.Method),
			Workers:      req.Workers,
			Predicate:    pred,
			DiscardPairs: req.DiscardPairs,
		})
		if err != nil {
			WriteJoinError(w, err)
			return
		}
		out := JoinResponseWire{Epoch: resp.Epoch, Count: resp.Count, Retries: resp.Retries}
		if !req.DiscardPairs {
			// The worker split makes the in-memory order schedule-dependent;
			// the wire order is pinned to (R, S) so shard responses merge
			// deterministically.
			join.SortPairs(resp.Pairs)
			out.Pairs = make([][2]int32, len(resp.Pairs))
			for i, p := range resp.Pairs {
				out.Pairs[i] = [2]int32{p.R, p.S}
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		out := StatsWire{
			Stats:    srv.Snapshot(),
			Coverage: srv.Coverage(),
			Pending:  srv.Pending(),
		}
		if cfg.Shard != nil {
			out.Shard = cfg.Shard.String()
		}
		writeJSON(w, http.StatusOK, out)
	})
	return mux
}

// WriteJoinError maps the server's typed errors onto HTTP status codes.
func WriteJoinError(w http.ResponseWriter, err error) {
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		// RFC 9110 requires Retry-After in whole seconds; a fractional value
		// like "0.5" parses as 0 on conforming clients, which then retry
		// immediately and defeat the shedding.  Round up, never below 1.
		secs := int(math.Ceil(shed.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrDeadline):
		httpError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, join.ErrCancelled):
		// 499: client closed request (nginx convention).
		httpError(w, 499, err)
	case errors.Is(err, ErrServerBroken), errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
