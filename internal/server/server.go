package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Op is one staged mutation of the indexed dataset.
type Op struct {
	Rect   geom.Rect
	Data   int32
	Delete bool
}

// Config assembles a Server.
type Config struct {
	// Store is the mutable, pager-backed side of every join (the churn
	// target).  The server takes over commit responsibility; the caller
	// keeps ownership of the pager's lifetime.
	Store *rtree.TreeStore
	// S is the static reference tree queries join the snapshot against.
	S *rtree.Tree
	// Reopen rebuilds the store after a storage fault broke the server:
	// typically by reopening the pager (running WAL recovery) and calling
	// rtree.OpenTreeStore.  Without it, Reopen fails and the broken state
	// is terminal.
	Reopen func() (*rtree.TreeStore, error)

	// BatchCapacity is the insert buffer's round size (staged ops per
	// Hilbert-ordered flush).  0 means 256.
	BatchCapacity int
	// MaxInflight bounds the admission queue: at most this many requests
	// are admitted concurrently; the rest shed.  0 means 64.
	MaxInflight int
	// CostBudget sheds a request when (queued requests + 1) x its
	// cost-model estimate exceeds this much estimated work.  0 means 30s of
	// estimated cost; negative disables cost-based shedding.
	CostBudget time.Duration
	// DefaultDeadline is applied to requests whose context has no deadline.
	// 0 means 10s; negative leaves such requests deadline-free.
	DefaultDeadline time.Duration
	// RetryAttempts is how many times a join hit by a transient storage
	// fault (storage.ErrQuarantined, storage.ErrReadExhausted) is re-run
	// before the server marks itself broken.  0 means 2.
	RetryAttempts int
	// RetryBackoff is the base of the exponential backoff between retry
	// attempts.  0 means 1ms.
	RetryBackoff time.Duration
	// Sleep is the backoff clock, injectable so fault tests run at full
	// speed.  Defaults to a context-aware time.Sleep.
	Sleep func(context.Context, time.Duration)
	// CacheBytes sizes the per-epoch page cache below the counted LRU (page
	// bytes served to trackers without a physical read).  The cache is
	// private to each epoch — COW copies keep their page identifier, so one
	// (tree, node) key names different bytes in different epochs — and is
	// dropped with it.  0 disables caching.
	CacheBytes int
	// JoinDefaults seeds every request's join options (method, buffer
	// size, path buffer, height policy).  Per-request fields of
	// JoinRequest override it.
	JoinDefaults join.Options
}

func (c Config) withDefaults() Config {
	if c.BatchCapacity == 0 {
		c.BatchCapacity = 256
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 64
	}
	if c.CostBudget == 0 {
		c.CostBudget = 30 * time.Second
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 2
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.JoinDefaults.Method == join.NestedLoop {
		// The zero method is the quadratic nested loop — never what a
		// server wants as its default; SJ4 is the paper's best variant.
		c.JoinDefaults.Method = join.SJ4
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	return c
}

// JoinRequest is one query: join the current snapshot against S.
type JoinRequest struct {
	// Method overrides the configured join method when non-zero.
	Method join.Method
	// Workers > 1 runs a ParallelJoin with that many workers.
	Workers int
	// Strategy selects the parallel partition strategy (Workers > 1 only).
	Strategy join.PartitionStrategy
	// BufferBytes overrides the configured LRU budget when non-zero.
	BufferBytes int
	// Predicate selects the join condition; the zero value runs the
	// configured default (normally intersection), keeping old callers and
	// old wire requests bit-compatible.
	Predicate join.Predicate
	// DiscardPairs suppresses materialising the pairs.
	DiscardPairs bool
	// OnPair, if non-nil, observes the pair stream.
	OnPair func(join.Pair)
}

// JoinResponse carries the join result and the epoch it was computed on.
type JoinResponse struct {
	*join.Result
	// Epoch is the snapshot generation the join ran against; two responses
	// with equal Epoch saw bit-identical trees.
	Epoch uint64
	// Retries is how many transient storage faults were retried away.
	Retries int
}

// RoundStats describes one writer round.
type RoundStats struct {
	Epoch   uint64 // the new epoch's sequence
	Applied int    // ops applied in this round's flush
	Commit  rtree.CommitStats
}

// Stats are the server's monotonic counters (atomic; read with Snapshot).
type Stats struct {
	Admitted      atomic.Int64
	Shed          atomic.Int64
	Done          atomic.Int64
	Cancelled     atomic.Int64
	Deadlined     atomic.Int64
	Failed        atomic.Int64 // broken or unclassified errors
	Retries       atomic.Int64
	Rounds        atomic.Int64
	OpsApplied    atomic.Int64
	EpochsCreated atomic.Int64
	EpochsRetired atomic.Int64
}

// StatsSnapshot is a point-in-time copy of Stats plus derived gauges.
type StatsSnapshot struct {
	Admitted, Shed, Done, Cancelled, Deadlined, Failed int64
	Retries, Rounds, OpsApplied                        int64
	EpochsCreated, EpochsRetired, EpochsLive           int64
	Inflight                                           int64
	Broken                                             bool
}

// Server is the concurrent join service.  Join may be called from any number
// of goroutines; Update, Round, and Reopen follow the single-writer
// discipline and are serialized internally.  The server spawns no background
// goroutines of its own — rounds happen when the owner calls Round — so its
// behaviour under a deterministic driver is deterministic.
type Server struct {
	cfg   Config
	model costmodel.Model

	cur      atomic.Pointer[epoch]
	inflight atomic.Int64
	wg       sync.WaitGroup
	closed   atomic.Bool

	// wmu serializes the writer side: staged ops, rounds, reopen.
	wmu     sync.Mutex
	store   *rtree.TreeStore
	buf     *rtree.InsertBuffer
	applied int // ops applied before the current round's boundary

	// brokenMu guards the sticky broken cause.
	brokenMu sync.Mutex
	//repro:guardedBy brokenMu
	brokenErr error

	stats Stats
}

// New builds a server over an already-bound store and publishes epoch 1 by
// committing the store's current state.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil || cfg.S == nil {
		return nil, fmt.Errorf("server: config needs both Store and S")
	}
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, model: costmodel.Default(), store: cfg.Store}
	s.buf = rtree.NewInsertBuffer(cfg.Store.Tree(), cfg.BatchCapacity)
	if _, err := s.round(); err != nil {
		return nil, fmt.Errorf("server: publishing the initial epoch: %w", err)
	}
	return s, nil
}

// Update stages a batch of mutations for the next round.  Staged ops are
// invisible to readers until Round commits and flips the snapshot; the
// insert buffer may apply them to the writer's private tree earlier (in
// Hilbert order, a full batch at a time) without affecting any epoch.
func (s *Server) Update(ops []Op) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := s.brokenCause(); err != nil {
		return fmt.Errorf("%w: %w", ErrServerBroken, err)
	}
	for _, op := range ops {
		if op.Delete {
			s.buf.StageDelete(op.Rect, op.Data)
		} else {
			s.buf.Stage(op.Rect, op.Data)
		}
	}
	return nil
}

// Round is the writer's round boundary: flush the staged batch in Hilbert
// order, commit the tree as one pager transaction, and atomically flip the
// published snapshot.  Any commit failure marks the server broken — the
// store's diff state can no longer be trusted against the disk — and only
// Reopen recovers.
func (s *Server) Round() (RoundStats, error) {
	if s.closed.Load() {
		return RoundStats{}, ErrClosed
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := s.brokenCause(); err != nil {
		return RoundStats{}, fmt.Errorf("%w: %w", ErrServerBroken, err)
	}
	return s.round()
}

// round does the flush-commit-flip with the writer lock held.
func (s *Server) round() (RoundStats, error) {
	s.buf.Flush()
	applied := s.opsProcessed() - s.applied
	cs, err := s.store.Commit()
	if err != nil {
		s.markBroken(err)
		return RoundStats{}, fmt.Errorf("%w: %w", ErrServerBroken, err)
	}
	s.applied = s.opsProcessed()
	snap := s.store.Tree().Snapshot()
	seq := s.store.Seq()
	var cache *buffer.PageCache
	if s.cfg.CacheBytes > 0 {
		cache = buffer.NewPageCacheForBytes(s.cfg.CacheBytes, snap.PageSize())
	}
	s.flip(newEpoch(seq, snap, s.store.EpochReader(snap), cache))
	s.stats.Rounds.Add(1)
	s.stats.OpsApplied.Add(int64(applied))
	return RoundStats{Epoch: seq, Applied: applied, Commit: cs}, nil
}

// opsProcessed is the total number of staged ops the insert buffer has
// resolved: inserts applied plus deletes applied plus delete misses.
func (s *Server) opsProcessed() int {
	return s.buf.Applied() + s.buf.DeletesApplied() + s.buf.DeleteMisses()
}

// Pending returns the number of mutations waiting for the next round: ops
// still staged in the buffer plus ops already applied to the writer's tree
// but not yet committed.  A driver can use it to skip no-op rounds.
func (s *Server) Pending() int {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.buf.Len() + (s.opsProcessed() - s.applied)
}

// Join runs one query against the current epoch.  It either returns the
// join's result — identical to a sequential join over the same snapshot —
// or one of the typed errors: *ShedError (ErrShed) at admission,
// ErrDeadline/join.ErrCancelled for expired or cancelled contexts,
// ErrServerBroken once storage faults exhaust the retry budget, ErrClosed
// after shutdown.
func (s *Server) Join(ctx context.Context, req JoinRequest) (*JoinResponse, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := s.brokenCause(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrServerBroken, err)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	pred := req.Predicate
	if pred == (join.Predicate{}) {
		pred = s.cfg.JoinDefaults.Predicate
	}
	if err := pred.Validate(); err != nil {
		return nil, err
	}

	e := s.pin()
	defer s.unpin(e)

	est := s.estimate(e, pred)
	if err := s.admit(est); err != nil {
		return nil, err
	}
	s.wg.Add(1)
	defer func() { s.inflight.Add(-1); s.wg.Done() }()

	if _, ok := ctx.Deadline(); !ok && s.cfg.DefaultDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultDeadline)
		defer cancel()
	}

	opts := s.cfg.JoinDefaults
	opts.Context = ctx
	opts.Collector = nil
	opts.PageReaderR = e.reader
	opts.PageReaderS = nil
	opts.PageCache = e.cache
	opts.DiscardPairs = req.DiscardPairs
	opts.OnPair = req.OnPair
	if req.Method != 0 {
		opts.Method = req.Method
	}
	if req.BufferBytes != 0 {
		opts.BufferBytes = req.BufferBytes
	}
	opts.Predicate = pred

	var retries int
	for attempt := 0; ; attempt++ {
		var res *join.Result
		var err error
		if req.Workers > 1 {
			res, err = join.ParallelJoin(e.tree, s.cfg.S, join.ParallelOptions{
				Options:  opts,
				Workers:  req.Workers,
				Strategy: req.Strategy,
			})
		} else {
			res, err = join.Join(e.tree, s.cfg.S, opts)
		}
		if err == nil {
			s.stats.Done.Add(1)
			return &JoinResponse{Result: res, Epoch: e.seq, Retries: retries}, nil
		}
		switch {
		case errors.Is(err, join.ErrCancelled):
			if errors.Is(err, context.DeadlineExceeded) {
				s.stats.Deadlined.Add(1)
				return nil, fmt.Errorf("%w: %w", ErrDeadline, err)
			}
			s.stats.Cancelled.Add(1)
			return nil, err
		case errors.Is(err, storage.ErrPagerBroken):
			s.markBroken(err)
			s.stats.Failed.Add(1)
			return nil, fmt.Errorf("%w: %w", ErrServerBroken, err)
		case errors.Is(err, storage.ErrQuarantined), errors.Is(err, storage.ErrReadExhausted):
			if attempt < s.cfg.RetryAttempts {
				retries++
				s.stats.Retries.Add(1)
				s.cfg.Sleep(ctx, s.cfg.RetryBackoff<<uint(attempt))
				if ctx.Err() == nil {
					continue
				}
				s.stats.Deadlined.Add(1)
				return nil, fmt.Errorf("%w: %w", ErrDeadline, ctx.Err())
			}
			s.markBroken(err)
			s.stats.Failed.Add(1)
			return nil, fmt.Errorf("%w: %w", ErrServerBroken, err)
		default:
			s.stats.Failed.Add(1)
			return nil, err
		}
	}
}

// admit applies the load-shedding policy: a request is rejected when the
// queue is at slot capacity or when admitting it would push the outstanding
// estimated work — (queued + 1) x this request's estimate — past the cost
// budget.  Rejection is immediate (open-loop), with a retry hint sized to
// half the outstanding work.
func (s *Server) admit(est costmodel.Estimate) error {
	cost := est.Total()
	for {
		queued := s.inflight.Load()
		overCost := s.cfg.CostBudget > 0 &&
			time.Duration(queued+1)*cost > s.cfg.CostBudget
		if int(queued) >= s.cfg.MaxInflight || overCost {
			s.stats.Shed.Add(1)
			retry := time.Duration(queued) * cost / 2
			if retry < time.Millisecond {
				retry = time.Millisecond
			}
			return &ShedError{RetryAfter: retry, Queued: int(queued), EstimatedCost: cost}
		}
		if s.inflight.CompareAndSwap(queued, queued+1) {
			s.stats.Admitted.Add(1)
			return nil
		}
	}
}

// estimate prices one join from the catalogs alone (no page touched): every
// page of both trees read once plus one comparison per data entry per
// thousand of the other side — a deliberately crude planner estimate whose
// job is relative ordering under load, not accuracy.  The predicate scales
// the comparison term: within-distance inflates it by the area growth of the
// epsilon-expanded R MBR (the filter runs over expanded rectangles, so its
// selectivity grows exactly that way), and kNN replaces the product with one
// near-logarithmic probe of S plus K heap admissions per R item.
func (s *Server) estimate(e *epoch, pred join.Predicate) costmodel.Estimate {
	pages := treePages(e.tree) + treePages(s.cfg.S)
	nR, nS := float64(e.tree.Len()), float64(s.cfg.S.Len())
	var comparisons int64
	switch pred.Kind {
	case join.PredKNN:
		comparisons = int64(nR*(math.Log2(nS+2)+float64(pred.K))) + int64(nR+nS)
	case join.PredWithinDist:
		inflate := 1.0
		if e.tree.Len() > 0 {
			m := e.tree.Root().MBR()
			if a := m.Area(); a > 0 {
				inflate = geom.ExpandRect(m, pred.Epsilon).Area() / a
			}
		}
		comparisons = int64(nR*nS/1000*inflate) + int64(nR+nS)
	default:
		comparisons = int64(nR*nS/1000) + int64(nR+nS)
	}
	return s.model.Estimate(int64(pages), e.tree.PageSize(), comparisons)
}

func treePages(t *rtree.Tree) float64 {
	if cat := t.CatalogStats(); cat.Valid() {
		return cat.SubtreePages(cat.Height - 1)
	}
	// Degenerate or empty tree: charge a single page.
	return 1
}

// Reopen recovers a broken server: the config's Reopen callback rebuilds
// the store (running pager recovery), the page cache is dropped, staged but
// uncommitted ops are discarded — exactly what a crash would have lost —
// and a fresh epoch over the recovered state is published.
func (s *Server) Reopen() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.cfg.Reopen == nil {
		return fmt.Errorf("server: no Reopen callback configured")
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	store, err := s.cfg.Reopen()
	if err != nil {
		return fmt.Errorf("server: reopen: %w", err)
	}
	s.store = store
	s.buf = rtree.NewInsertBuffer(store.Tree(), s.cfg.BatchCapacity)
	s.applied = 0
	s.brokenMu.Lock()
	s.brokenErr = nil
	s.brokenMu.Unlock()
	if _, err := s.round(); err != nil {
		return err
	}
	return nil
}

// Close stops admitting work and waits for in-flight joins to drain.  The
// pager stays open — its lifetime belongs to the caller.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.wg.Wait()
	return nil
}

// Broken reports whether the server is in the sticky broken state.
func (s *Server) Broken() bool { return s.brokenCause() != nil }

func (s *Server) brokenCause() error {
	s.brokenMu.Lock()
	defer s.brokenMu.Unlock()
	return s.brokenErr
}

// markBroken latches the first fault as the sticky cause.
func (s *Server) markBroken(err error) {
	s.brokenMu.Lock()
	defer s.brokenMu.Unlock()
	if s.brokenErr == nil {
		s.brokenErr = err
	}
}

// CurrentEpoch returns the published epoch's sequence number.
func (s *Server) CurrentEpoch() uint64 { return s.cur.Load().seq }

// Coverage summarises what the published snapshot holds: item counts, the
// churned relation's MBR, and both trees' sampled catalog statistics.  It is
// the per-shard summary a query router plans with — enough to run the
// sweep-selectivity cost estimate remotely without touching a page — and it
// is advisory only: a router must never prune a shard on coverage (the next
// round may move the MBR), only order and budget its fan-out with it.
type Coverage struct {
	// Epoch is the snapshot generation the summary was read from.
	Epoch uint64
	// PageSize is the page size of both trees in bytes.
	PageSize int
	// RItems is the number of rectangles in the churned relation R.
	RItems int
	// RMBR is R's root MBR (zero when R is empty).
	RMBR geom.Rect
	// RCatalog holds R's sampled catalog statistics.
	RCatalog costmodel.Catalog
	// SItems is the number of rectangles in the static relation S.
	SItems int
	// SCatalog holds S's sampled catalog statistics.
	SCatalog costmodel.Catalog
}

// Coverage returns the current epoch's coverage summary.  It pins the epoch
// only while reading the catalogs, so it never blocks a round flip.
func (s *Server) Coverage() Coverage {
	e := s.pin()
	defer s.unpin(e)
	cov := Coverage{
		Epoch:    e.seq,
		PageSize: e.tree.PageSize(),
		RItems:   e.tree.Len(),
		RCatalog: e.tree.CatalogStats(),
		SItems:   s.cfg.S.Len(),
		SCatalog: s.cfg.S.CatalogStats(),
	}
	if e.tree.Len() > 0 {
		cov.RMBR = e.tree.Root().MBR()
	}
	return cov
}

// Cache exposes the current epoch's page cache (nil when disabled).
func (s *Server) Cache() *buffer.PageCache { return s.cur.Load().cache }

// Snapshot returns the server's counters.
func (s *Server) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Admitted:      s.stats.Admitted.Load(),
		Shed:          s.stats.Shed.Load(),
		Done:          s.stats.Done.Load(),
		Cancelled:     s.stats.Cancelled.Load(),
		Deadlined:     s.stats.Deadlined.Load(),
		Failed:        s.stats.Failed.Load(),
		Retries:       s.stats.Retries.Load(),
		Rounds:        s.stats.Rounds.Load(),
		OpsApplied:    s.stats.OpsApplied.Load(),
		EpochsCreated: s.stats.EpochsCreated.Load(),
		EpochsRetired: s.stats.EpochsRetired.Load(),
		EpochsLive:    s.stats.EpochsCreated.Load() - s.stats.EpochsRetired.Load(),
		Inflight:      s.inflight.Load(),
		Broken:        s.Broken(),
	}
}
