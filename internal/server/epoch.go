package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/rtree"
)

// epoch is one published snapshot generation: the immutable tree readers
// join against and the page source serving its committed pages.  Readers pin
// an epoch with a refcount before touching it and release it when the join
// finishes; the writer supersedes the current epoch at each round boundary.
// A superseded epoch is retired the moment its last reader drains — or
// immediately, on the zero-reader fast path.  Retirement is bookkeeping, not
// a lifetime hazard: the snapshot and its EpochReader stay valid for any
// reader that pinned before the flip, however many rounds the writer has
// moved on (the version store keeps serving pages the writer rewrote), so a
// parked reader can never observe a torn tree.
type epoch struct {
	seq    uint64
	tree   *rtree.Tree        // immutable snapshot
	reader *rtree.EpochReader // page source at this epoch's commit boundary

	// cache is the epoch-private page cache.  It must not be shared across
	// epochs: a COW copy keeps its page identifier, so the same (tree, node)
	// key names different bytes in different epochs — a shared cache would
	// let a parked reader serve one epoch's bytes to another.  Within one
	// epoch every page is immutable, so the private cache needs no
	// invalidation, and it dies with the epoch.
	cache *buffer.PageCache

	readers    atomic.Int64
	superseded atomic.Bool
	retireOnce sync.Once
	retired    chan struct{} // closed on retirement
}

func newEpoch(seq uint64, tree *rtree.Tree, reader *rtree.EpochReader, cache *buffer.PageCache) *epoch {
	return &epoch{seq: seq, tree: tree, reader: reader, cache: cache, retired: make(chan struct{})}
}

// retire runs the epoch's retirement exactly once.
func (e *epoch) retire(onRetire func(*epoch)) {
	e.retireOnce.Do(func() {
		close(e.retired)
		if onRetire != nil {
			onRetire(e)
		}
	})
}

// pin acquires a read reference on the server's current epoch.  The recheck
// loop guarantees freshness, not safety: pinning an epoch the writer flipped
// away a moment earlier would still be sound, but re-reading the pointer
// keeps readers on the newest snapshot and keeps the transient reference
// from delaying the old epoch's retirement.
func (s *Server) pin() *epoch {
	for {
		e := s.cur.Load()
		e.readers.Add(1)
		if s.cur.Load() == e {
			return e
		}
		s.unpin(e)
	}
}

// unpin releases a read reference; the last reader out of a superseded epoch
// retires it.  The retireOnce makes the race against the writer's own
// zero-reader check (and against transient pin/unpin pairs from the recheck
// loop) harmless.
func (s *Server) unpin(e *epoch) {
	if e.readers.Add(-1) == 0 && e.superseded.Load() {
		e.retire(s.onRetire)
	}
}

// flip publishes a new epoch and supersedes the previous one, retiring it on
// the spot when no reader holds it (the zero-reader fast path).
func (s *Server) flip(next *epoch) {
	prev := s.cur.Swap(next)
	s.stats.EpochsCreated.Add(1)
	if prev == nil {
		return
	}
	prev.superseded.Store(true)
	if prev.readers.Load() == 0 {
		prev.retire(s.onRetire)
	}
}

func (s *Server) onRetire(*epoch) {
	s.stats.EpochsRetired.Add(1)
}
