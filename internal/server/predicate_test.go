package server

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rtree"
)

// rectDist2 is the oracle's squared rectangle distance (clamp formulation,
// independent of the counted production code in geom).
func rectDist2(a, b geom.Rect) float64 {
	dx := math.Max(0, math.Max(a.XL-b.XU, b.XL-a.XU))
	dy := math.Max(0, math.Max(a.YL-b.YU, b.YL-a.YU))
	return dx*dx + dy*dy
}

func bruteDistancePairs(rItems, sItems []rtree.Item, eps float64) map[join.Pair]bool {
	out := make(map[join.Pair]bool)
	for _, r := range rItems {
		for _, s := range sItems {
			if rectDist2(r.Rect, s.Rect) <= eps*eps {
				out[join.Pair{R: r.Data, S: s.Data}] = true
			}
		}
	}
	return out
}

func bruteKNNPairs(rItems, sItems []rtree.Item, k int) map[join.Pair]bool {
	out := make(map[join.Pair]bool)
	type cand struct {
		d2  float64
		sID int32
	}
	for _, r := range rItems {
		cands := make([]cand, 0, len(sItems))
		for _, s := range sItems {
			cands = append(cands, cand{d2: rectDist2(r.Rect, s.Rect), sID: s.Data})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d2 != cands[j].d2 {
				return cands[i].d2 < cands[j].d2
			}
			return cands[i].sID < cands[j].sID
		})
		n := k
		if n > len(cands) {
			n = len(cands)
		}
		for _, c := range cands[:n] {
			out[join.Pair{R: r.Data, S: c.sID}] = true
		}
	}
	return out
}

// TestServerPredicateJoinsUnderChurn drives rounds of inserts and deletes
// through the server and, after every flip, checks that within-distance and
// kNN joins over the published snapshot — sequential and parallel — match
// the brute-force oracles over the model item set.
func TestServerPredicateJoinsUnderChurn(t *testing.T) {
	f := newFixture(t, Config{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(71))
	model := append([]rtree.Item(nil), f.rItems...)
	nextID := int32(500_000)

	const eps, k = 0.015, 3
	check := func(round int) {
		t.Helper()
		wantDist := bruteDistancePairs(model, f.sItems, eps)
		wantKNN := bruteKNNPairs(model, f.sItems, k)
		for _, workers := range []int{0, 4} {
			resp, err := f.srv.Join(ctx, JoinRequest{Workers: workers, Predicate: join.WithinDistance(eps)})
			if err != nil {
				t.Fatalf("round %d workers=%d within: %v", round, workers, err)
			}
			samePairs(t, pairSet(resp.Pairs), wantDist, "within-distance under churn")
			resp, err = f.srv.Join(ctx, JoinRequest{Workers: workers, Predicate: join.NearestNeighbors(k)})
			if err != nil {
				t.Fatalf("round %d workers=%d knn: %v", round, workers, err)
			}
			samePairs(t, pairSet(resp.Pairs), wantKNN, "kNN under churn")
		}
	}

	check(0)
	for round := 1; round <= 3; round++ {
		// Delete a random prefix slice and insert a fresh batch.
		var ops []Op
		del := rng.Intn(40) + 10
		for i := 0; i < del && len(model) > 0; i++ {
			j := rng.Intn(len(model))
			ops = append(ops, Op{Rect: model[j].Rect, Data: model[j].Data, Delete: true})
			model = append(model[:j], model[j+1:]...)
		}
		ins := genItems(rng, rng.Intn(60)+20, nextID, 0.02)
		nextID += int32(len(ins))
		for _, it := range ins {
			ops = append(ops, Op{Rect: it.Rect, Data: it.Data})
			model = append(model, it)
		}
		if err := f.srv.Update(ops); err != nil {
			t.Fatal(err)
		}
		if _, err := f.srv.Round(); err != nil {
			t.Fatal(err)
		}
		check(round)
	}
}

// TestServerRejectsBadPredicate pins that validation happens before
// admission, with the join package's typed error.
func TestServerRejectsBadPredicate(t *testing.T) {
	f := newFixture(t, Config{})
	_, err := f.srv.Join(context.Background(), JoinRequest{
		Predicate: join.Predicate{Kind: join.PredWithinDist, Epsilon: -1},
	})
	if err == nil {
		t.Fatal("expected a validation error")
	}
}
