package server

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func genItems(rng *rand.Rand, n int, base int32, side float64) []rtree.Item {
	items := make([]rtree.Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = rtree.Item{
			Rect: geom.Rect{XL: x, YL: y, XU: x + side, YU: y + side},
			Data: base + int32(i),
		}
	}
	return items
}

var testTreeOpts = rtree.Options{PageSize: storage.PageSize1K}

func fastPagerOpts() storage.PagerOptions {
	return storage.PagerOptions{ReadRetries: 1, Sleep: func(time.Duration) {}}
}

// fixture is a server over a FaultFS-wrapped pager plus the item sets the
// model-based assertions recompute joins from.
type fixture struct {
	srv    *Server
	fs     *storage.FaultFS
	rItems []rtree.Item
	sItems []rtree.Item
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	rItems := genItems(rng, 400, 0, 0.02)
	sItems := genItems(rng, 300, 1_000_000, 0.02)
	rTree, err := rtree.BulkLoadSTR(testTreeOpts, rItems)
	if err != nil {
		t.Fatal(err)
	}
	sTree, err := rtree.BulkLoadSTR(testTreeOpts, sItems)
	if err != nil {
		t.Fatal(err)
	}
	fs := storage.NewFaultFS(storage.NewMemVFS(), storage.FaultScript{})
	p, err := storage.OpenPager(fs, "r.db", storage.PageSize1K, fastPagerOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	store, err := rtree.NewTreeStore(rTree, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	cfg.S = sTree
	if cfg.Reopen == nil {
		cfg.Reopen = func() (*rtree.TreeStore, error) {
			p2, err := storage.OpenPager(fs, "r.db", storage.PageSize1K, fastPagerOpts())
			if err != nil {
				return nil, err
			}
			return rtree.OpenTreeStore(p2, testTreeOpts)
		}
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(context.Context, time.Duration) {}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &fixture{srv: srv, fs: fs, rItems: rItems, sItems: sItems}
}

// brutePairs is the model answer: every intersecting (r, s) id pair.
func brutePairs(rItems, sItems []rtree.Item) map[join.Pair]bool {
	out := make(map[join.Pair]bool)
	for _, r := range rItems {
		for _, s := range sItems {
			if r.Rect.Intersects(s.Rect) {
				out[join.Pair{R: r.Data, S: s.Data}] = true
			}
		}
	}
	return out
}

func pairSet(pairs []join.Pair) map[join.Pair]bool {
	out := make(map[join.Pair]bool, len(pairs))
	for _, p := range pairs {
		out[p] = true
	}
	return out
}

func samePairs(t *testing.T, got map[join.Pair]bool, want map[join.Pair]bool, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", what, len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("%s: missing pair %v", what, p)
		}
	}
}

func TestServerJoinMatchesSequential(t *testing.T) {
	f := newFixture(t, Config{})
	want := brutePairs(f.rItems, f.sItems)

	resp, err := f.srv.Join(context.Background(), JoinRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != f.srv.CurrentEpoch() {
		t.Fatalf("response epoch %d, current %d", resp.Epoch, f.srv.CurrentEpoch())
	}
	samePairs(t, pairSet(resp.Pairs), want, "sequential server join")

	// The measured path must agree with a pure in-memory sequential join,
	// pair for pair and in the same order.
	seq, err := join.Join(f.srv.cfg.Store.Tree(), f.srv.cfg.S, join.Options{Method: join.SJ4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Pairs) != len(resp.Pairs) {
		t.Fatalf("server %d pairs, sequential %d", len(resp.Pairs), len(seq.Pairs))
	}
	for i := range seq.Pairs {
		if seq.Pairs[i] != resp.Pairs[i] {
			t.Fatalf("pair %d: server %v, sequential %v", i, resp.Pairs[i], seq.Pairs[i])
		}
	}

	// Parallel requests return the same pair set.
	par, err := f.srv.Join(context.Background(), JoinRequest{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, pairSet(par.Pairs), want, "parallel server join")
}

func TestServerUpdateInvisibleUntilRound(t *testing.T) {
	f := newFixture(t, Config{})
	want0 := brutePairs(f.rItems, f.sItems)

	// Stage churn: delete 80 items, insert 90 fresh ones.
	rng := rand.New(rand.NewSource(62))
	var ops []Op
	for _, it := range f.rItems[:80] {
		ops = append(ops, Op{Rect: it.Rect, Data: it.Data, Delete: true})
	}
	freshItems := genItems(rng, 90, 500_000, 0.02)
	for _, it := range freshItems {
		ops = append(ops, Op{Rect: it.Rect, Data: it.Data})
	}
	if err := f.srv.Update(ops); err != nil {
		t.Fatal(err)
	}

	resp, err := f.srv.Join(context.Background(), JoinRequest{})
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, pairSet(resp.Pairs), want0, "join before round (staged ops must be invisible)")

	rs, err := f.srv.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Applied != len(ops) {
		t.Fatalf("round applied %d ops, staged %d", rs.Applied, len(ops))
	}
	after := append(append([]rtree.Item{}, f.rItems[80:]...), freshItems...)
	resp, err = f.srv.Join(context.Background(), JoinRequest{})
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, pairSet(resp.Pairs), brutePairs(after, f.sItems), "join after round")
}

// TestServerParkedReaderAcrossRounds pins a reader (a join blocked inside its
// OnPair callback) on one epoch while the writer commits three rounds past
// it.  The parked join must complete with the pair set of ITS snapshot —
// untouched by any later round — and its epoch must retire once it drains.
func TestServerParkedReaderAcrossRounds(t *testing.T) {
	f := newFixture(t, Config{DefaultDeadline: -1})
	want := brutePairs(f.rItems, f.sItems)
	firstEpoch := f.srv.CurrentEpoch()

	started := make(chan struct{})
	unblock := make(chan struct{})
	type outcome struct {
		resp *JoinResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		var once sync.Once
		resp, err := f.srv.Join(context.Background(), JoinRequest{
			OnPair: func(join.Pair) {
				once.Do(func() {
					close(started)
					<-unblock
				})
			},
		})
		done <- outcome{resp, err}
	}()
	<-started

	// Three rounds of churn while the reader is parked.
	rng := rand.New(rand.NewSource(63))
	live := append([]rtree.Item{}, f.rItems...)
	for round := 0; round < 3; round++ {
		var ops []Op
		for _, it := range live[:40] {
			ops = append(ops, Op{Rect: it.Rect, Data: it.Data, Delete: true})
		}
		live = live[40:]
		fresh := genItems(rng, 30, int32(600_000+round*1000), 0.02)
		for _, it := range fresh {
			ops = append(ops, Op{Rect: it.Rect, Data: it.Data})
		}
		live = append(live, fresh...)
		if err := f.srv.Update(ops); err != nil {
			t.Fatal(err)
		}
		if _, err := f.srv.Round(); err != nil {
			t.Fatal(err)
		}
	}
	if cur := f.srv.CurrentEpoch(); cur != firstEpoch+3 {
		t.Fatalf("current epoch %d, want %d", cur, firstEpoch+3)
	}

	close(unblock)
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.resp.Epoch != firstEpoch {
		t.Fatalf("parked join ran on epoch %d, pinned %d", out.resp.Epoch, firstEpoch)
	}
	samePairs(t, pairSet(out.resp.Pairs), want, "parked reader (must see its own epoch)")

	// The parked epoch drained with the join; only the current one is live.
	st := f.srv.Snapshot()
	if st.EpochsLive != 1 {
		t.Fatalf("%d live epochs after the parked reader drained, want 1", st.EpochsLive)
	}

	// The fresh epoch serves the churned state.
	resp, err := f.srv.Join(context.Background(), JoinRequest{})
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, pairSet(resp.Pairs), brutePairs(live, f.sItems), "join after churn")
}

// TestServerZeroReaderFastPath: flipping with no readers retires the old
// epoch synchronously inside Round.
func TestServerZeroReaderFastPath(t *testing.T) {
	f := newFixture(t, Config{})
	for i := 0; i < 3; i++ {
		if _, err := f.srv.Round(); err != nil {
			t.Fatal(err)
		}
		if st := f.srv.Snapshot(); st.EpochsLive != 1 {
			t.Fatalf("round %d: %d live epochs, want 1 (zero-reader fast path)", i, st.EpochsLive)
		}
	}
}

func TestServerShedAtSlotCapacity(t *testing.T) {
	f := newFixture(t, Config{MaxInflight: 1, CostBudget: -1, DefaultDeadline: -1})

	started := make(chan struct{})
	unblock := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		var once sync.Once
		_, err := f.srv.Join(context.Background(), JoinRequest{
			DiscardPairs: true,
			OnPair: func(join.Pair) {
				once.Do(func() {
					close(started)
					<-unblock
				})
			},
		})
		done <- err
	}()
	<-started

	_, err := f.srv.Join(context.Background(), JoinRequest{})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("join at capacity returned %v, want ErrShed", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("shed error is %T, want *ShedError", err)
	}
	if shed.RetryAfter <= 0 || shed.Queued != 1 {
		t.Fatalf("shed hint %+v: want positive RetryAfter and Queued=1", shed)
	}

	close(unblock)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.Join(context.Background(), JoinRequest{}); err != nil {
		t.Fatalf("join after the queue drained: %v", err)
	}
	if st := f.srv.Snapshot(); st.Shed != 1 {
		t.Fatalf("shed counter %d, want 1", st.Shed)
	}
}

func TestServerShedOnCostBudget(t *testing.T) {
	f := newFixture(t, Config{CostBudget: time.Nanosecond})
	_, err := f.srv.Join(context.Background(), JoinRequest{})
	var shed *ShedError
	if !errors.Is(err, ErrShed) || !errors.As(err, &shed) {
		t.Fatalf("join over budget returned %v, want *ShedError", err)
	}
	if shed.EstimatedCost <= 0 {
		t.Fatalf("shed hint carries no cost estimate: %+v", shed)
	}
}

func TestServerDeadline(t *testing.T) {
	f := newFixture(t, Config{})

	// Already-expired context: typed error before any work.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := f.srv.Join(ctx, JoinRequest{})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired context returned %v, want ErrDeadline", err)
	}

	// Deadline hit mid-join: the traversal is abandoned, partial results
	// are discarded, and the error is the same typed ErrDeadline.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	var once sync.Once
	_, err = f.srv.Join(ctx2, JoinRequest{
		OnPair: func(join.Pair) {
			once.Do(func() { time.Sleep(80 * time.Millisecond) })
		},
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("mid-join deadline returned %v, want ErrDeadline", err)
	}
	if st := f.srv.Snapshot(); st.Deadlined != 2 {
		t.Fatalf("deadline counter %d, want 2", st.Deadlined)
	}
}

func TestServerCancelTyped(t *testing.T) {
	f := newFixture(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	_, err := f.srv.Join(ctx, JoinRequest{
		OnPair: func(join.Pair) { once.Do(cancel) },
	})
	if !errors.Is(err, join.ErrCancelled) {
		t.Fatalf("cancelled join returned %v, want join.ErrCancelled", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Fatal("caller cancellation must not be classified as a deadline")
	}
}

// TestServerCancellationRacingFlip races cancelling readers against writer
// rounds.  Run under -race this pins the epoch pin/unpin discipline; the
// assertion is that every outcome is a result or a typed error and that the
// server converges to one live epoch.
func TestServerCancellationRacingFlip(t *testing.T) {
	f := newFixture(t, Config{MaxInflight: 64, CostBudget: -1, DefaultDeadline: -1})

	var wg, writerWG sync.WaitGroup
	stopWriter := make(chan struct{})
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		rng := rand.New(rand.NewSource(64))
		next := int32(700_000)
		var prev []rtree.Item
		for {
			select {
			case <-stopWriter:
				return
			default:
			}
			// Replace the previous round's inserts so the tree (and the
			// pager file) stay bounded however long the readers take.
			fresh := genItems(rng, 10, next, 0.02)
			next += 10
			ops := make([]Op, 0, len(prev)+len(fresh))
			for _, it := range prev {
				ops = append(ops, Op{Rect: it.Rect, Data: it.Data, Delete: true})
			}
			for _, it := range fresh {
				ops = append(ops, Op{Rect: it.Rect, Data: it.Data})
			}
			prev = fresh
			if err := f.srv.Update(ops); err != nil {
				t.Errorf("update: %v", err)
				return
			}
			if _, err := f.srv.Round(); err != nil {
				t.Errorf("round: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if (g+i)%2 == 0 {
					// Cancel racing the join (and the writer's flips).
					go cancel()
				}
				resp, err := f.srv.Join(ctx, JoinRequest{DiscardPairs: true})
				cancel()
				switch {
				case err == nil:
					if resp.Count < 0 {
						t.Errorf("negative count")
					}
				case errors.Is(err, join.ErrCancelled),
					errors.Is(err, ErrDeadline),
					errors.Is(err, ErrShed):
				default:
					t.Errorf("untyped error: %v", err)
				}
			}
		}(g)
	}

	// Let readers finish, then stop the writer.
	waitReaders := make(chan struct{})
	go func() { wg.Wait(); close(waitReaders) }()
	select {
	case <-waitReaders:
		close(stopWriter)
	case <-time.After(30 * time.Second):
		close(stopWriter)
		writerWG.Wait()
		t.Fatal("joins did not drain — hang under churn")
	}
	writerWG.Wait()

	if st := f.srv.Snapshot(); st.EpochsLive != 1 {
		t.Fatalf("%d live epochs after drain, want 1", st.EpochsLive)
	}
}

func TestServerBrokenThenReopen(t *testing.T) {
	f := newFixture(t, Config{RetryAttempts: 2})
	want := brutePairs(f.rItems, f.sItems)

	if _, err := f.srv.Join(context.Background(), JoinRequest{}); err != nil {
		t.Fatalf("clean join: %v", err)
	}

	// Dead sector: every physical read fails, pager retries exhaust, the
	// server retries the join, then latches broken.
	f.fs.SetScript(storage.FaultScript{ReadErrEvery: 1})
	_, err := f.srv.Join(context.Background(), JoinRequest{})
	if !errors.Is(err, ErrServerBroken) {
		t.Fatalf("join on dead disk returned %v, want ErrServerBroken", err)
	}
	if !f.srv.Broken() {
		t.Fatal("server not marked broken")
	}
	st := f.srv.Snapshot()
	if st.Retries == 0 {
		t.Fatal("no retry recorded before breaking")
	}

	// Sticky: everything fails fast without touching the disk.
	if _, err := f.srv.Join(context.Background(), JoinRequest{}); !errors.Is(err, ErrServerBroken) {
		t.Fatalf("join while broken returned %v", err)
	}
	if err := f.srv.Update([]Op{{Rect: geom.Rect{XU: 0.1, YU: 0.1}, Data: 1}}); !errors.Is(err, ErrServerBroken) {
		t.Fatalf("update while broken returned %v", err)
	}
	if _, err := f.srv.Round(); !errors.Is(err, ErrServerBroken) {
		t.Fatalf("round while broken returned %v", err)
	}

	// Disk replaced: reopen recovers to the last committed state.
	f.fs.SetScript(storage.FaultScript{})
	if err := f.srv.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if f.srv.Broken() {
		t.Fatal("server still broken after reopen")
	}
	resp, err := f.srv.Join(context.Background(), JoinRequest{})
	if err != nil {
		t.Fatalf("join after reopen: %v", err)
	}
	samePairs(t, pairSet(resp.Pairs), want, "join after recovery")
}

// TestServerQuickSequences drives random op sequences (stage, delete, round,
// join) against a brute-force model of the committed item set: every join
// must return exactly the model's pair set for the epoch it ran on.
func TestServerQuickSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	sItems := genItems(rng, 80, 1_000_000, 0.04)
	sTree, err := rtree.BulkLoadSTR(testTreeOpts, sItems)
	if err != nil {
		t.Fatal(err)
	}

	run := func(script []byte) bool {
		seedItems := genItems(rng, 120, 0, 0.04)
		rTree, err := rtree.BulkLoadSTR(testTreeOpts, seedItems)
		if err != nil {
			t.Fatal(err)
		}
		p, err := storage.OpenPager(storage.NewMemVFS(), "r.db", storage.PageSize1K, fastPagerOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		store, err := rtree.NewTreeStore(rTree, p)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{Store: store, S: sTree, BatchCapacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		// committed is what readers must see; writerSet tracks the writer's
		// state including staged-but-uncommitted ops.
		committed := append([]rtree.Item{}, seedItems...)
		writerSet := append([]rtree.Item{}, seedItems...)
		var staged []Op
		next := int32(10_000)
		if len(script) > 48 {
			script = script[:48]
		}
		for _, b := range script {
			switch b % 4 {
			case 0: // stage inserts
				fresh := genItems(rng, 3, next, 0.04)
				next += 3
				for _, it := range fresh {
					staged = append(staged, Op{Rect: it.Rect, Data: it.Data})
				}
				if err := srv.Update(staged[len(staged)-3:]); err != nil {
					t.Fatal(err)
				}
			case 1: // stage deletes of items committed in an earlier round
				for k := 0; k < 2 && len(writerSet) > 0; k++ {
					idx := int(b+byte(k)) % len(writerSet)
					it := writerSet[idx]
					writerSet = append(writerSet[:idx], writerSet[idx+1:]...)
					op := Op{Rect: it.Rect, Data: it.Data, Delete: true}
					staged = append(staged, op)
					if err := srv.Update([]Op{op}); err != nil {
						t.Fatal(err)
					}
				}
			case 2: // round boundary: staged churn becomes visible
				if _, err := srv.Round(); err != nil {
					t.Fatal(err)
				}
				for _, op := range staged {
					if !op.Delete {
						writerSet = append(writerSet, rtree.Item{Rect: op.Rect, Data: op.Data})
					}
				}
				staged = staged[:0]
				committed = append(committed[:0:0], writerSet...)
			case 3: // join must match the committed model exactly
				resp, err := srv.Join(context.Background(), JoinRequest{})
				if err != nil {
					t.Fatal(err)
				}
				want := brutePairs(committed, sItems)
				if len(resp.Pairs) != len(want) {
					return false
				}
				for _, pr := range resp.Pairs {
					if !want[pr] {
						return false
					}
				}
			}
		}
		return srv.Snapshot().EpochsLive == 1
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(66))}
	if err := quick.Check(run, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestServerCloseDrainsNoGoroutineLeak: after a mix of clean, cancelled and
// deadline-hit joins, Close drains and no goroutine survives.
func TestServerCloseDrainsNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		f := newFixture(t, Config{})
		for i := 0; i < 10; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			if i%3 == 0 {
				var once sync.Once
				_, _ = f.srv.Join(ctx, JoinRequest{OnPair: func(join.Pair) { once.Do(cancel) }})
			} else {
				_, _ = f.srv.Join(ctx, JoinRequest{DiscardPairs: true})
			}
			cancel()
		}
		if err := f.srv.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.srv.Join(context.Background(), JoinRequest{}); !errors.Is(err, ErrClosed) {
			t.Fatalf("join after close returned %v, want ErrClosed", err)
		}
	}()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
