package storage

import (
	"fmt"
	"sort"
	"sync"
)

// PageFile is an in-memory simulation of a file of fixed-size pages.  It is
// the persistence substrate for R*-trees: each tree node can be written to
// and read from its page.  The file is safe for concurrent use.
type PageFile struct {
	mu       sync.RWMutex
	pageSize int
	pages    map[PageID][]byte
	free     []PageID // identifiers released by Free, reused by Allocate
	next     PageID
}

// NewPageFile creates an empty page file with the given page size.
// It panics if the page size cannot hold a single entry.
func NewPageFile(pageSize int) *PageFile {
	if CapacityForPage(pageSize) < 1 {
		panic(fmt.Sprintf("storage: page size %d too small", pageSize))
	}
	return &PageFile{
		pageSize: pageSize,
		pages:    make(map[PageID][]byte),
		next:     1,
	}
}

// PageSize returns the page size in bytes.
func (f *PageFile) PageSize() int { return f.pageSize }

// Allocate reserves a page and returns its identifier, reusing freed pages
// before extending the file — without the free list, delete-heavy workloads
// would leak identifiers and the simulated file would only ever grow.
func (f *PageFile) Allocate() PageID {
	f.mu.Lock()
	defer f.mu.Unlock()
	var id PageID
	if n := len(f.free); n > 0 {
		id = f.free[n-1]
		f.free = f.free[:n-1]
	} else {
		id = f.next
		f.next++
	}
	f.pages[id] = nil
	return id
}

// Write stores the page contents for id.  The page must have been allocated
// and buf must not exceed the physical page frame (header plus payload).
func (f *PageFile) Write(id PageID, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.pages[id]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPage, id)
	}
	frame := nodeHeaderSize + CapacityForPage(f.pageSize)*EntrySize
	if len(buf) > frame {
		return fmt.Errorf("%w: %d bytes exceed frame of %d", ErrPageOverflow, len(buf), frame)
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	f.pages[id] = cp
	return nil
}

// Read returns a copy of the page contents for id.
func (f *PageFile) Read(id PageID) ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	buf, ok := f.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPage, id)
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	return cp, nil
}

// Free releases the page and queues its identifier for reuse.  Reading a
// freed page fails.  Freeing an unallocated page is a no-op.
func (f *PageFile) Free(id PageID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.pages[id]; !ok {
		return
	}
	delete(f.pages, id)
	f.free = append(f.free, id)
}

// Len returns the number of allocated pages.
func (f *PageFile) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.pages)
}

// IDs returns the identifiers of all allocated pages in ascending order.
func (f *PageFile) IDs() []PageID {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ids := make([]PageID, 0, len(f.pages))
	for id := range f.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
