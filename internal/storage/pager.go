package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// NodeStore is the persistence substrate an R*-tree serialises into: the
// in-memory PageFile (the counted-I/O simulation) and the durable Pager (the
// measured-I/O disk file) both implement it.
type NodeStore interface {
	PageSize() int
	Allocate() PageID
	Write(id PageID, buf []byte) error
	Read(id PageID) ([]byte, error)
	Free(id PageID)
}

// Pager errors.
var (
	// ErrReadExhausted marks a page read that kept failing after every
	// scheduled retry; the underlying error is wrapped and surfaced, never
	// swallowed.
	ErrReadExhausted = errors.New("storage: page read retries exhausted")
	// ErrQuarantined is returned for pages whose frame failed its checksum:
	// the page is quarantined and reported, never silently decoded.
	ErrQuarantined = errors.New("storage: page quarantined")
	// ErrPagerBroken is returned for every operation after a write-back
	// failure left the main file behind the WAL; reopening the pager runs
	// recovery and clears the condition.
	ErrPagerBroken = errors.New("storage: pager needs recovery (reopen)")
)

// Page frame layout of the main file: slot i at offset i*frameSize holds
//
//	crc32 | length | payload (padded to pageSize)
//
// with the checksum covering length and payload.  Slot 0 is the pager's meta
// frame — conveniently, InvalidPage is 0, so client page ids map 1:1 onto
// slots.  Freed pages stay in the file as links of the free chain:
//
//	freeMagic | next free PageID
const (
	frameHeaderSize = 8
	freeMagic       = 0x46524545 // "FREE"

	pagerMagic   uint32 = 0x52504732 // "RPG2"
	pagerVersion uint32 = 1
	metaBodySize        = 4 + 4 + 4 + 4 + 4 + 4 + 8
)

// DefaultCheckpointEvery is the number of commits between automatic
// checkpoints (fsync the main file, truncate the WAL).
const DefaultCheckpointEvery = 8

// PagerOptions tunes durability and fault handling.
type PagerOptions struct {
	// ReadRetries is how many times a failed frame read is retried before
	// the error surfaces (default 3).  Retries back off exponentially
	// starting at RetryBackoff (default 50µs).
	ReadRetries  int
	RetryBackoff time.Duration
	// Sleep is the backoff clock, injectable so fault tests run at full
	// speed.  Defaults to time.Sleep.
	Sleep func(time.Duration)
	// CheckpointEvery is the number of commits between automatic
	// checkpoints; 0 means DefaultCheckpointEvery, negative disables
	// automatic checkpoints (Close still checkpoints).
	CheckpointEvery int
}

func (o PagerOptions) withDefaults() PagerOptions {
	if o.ReadRetries == 0 {
		o.ReadRetries = 3
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 50 * time.Microsecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	return o
}

// PagerStats counts the real I/O the pager performed — the measured
// counterpart of the simulation's counted page accesses.
type PagerStats struct {
	Reads, Writes    int64 // frame reads/writes against the main file
	BytesRead        int64
	BytesWritten     int64
	ReadRetries      int64 // failed read attempts that were retried
	Commits          int64
	WALAppends       int64 // WAL write calls (one per group commit)
	WALBytes         int64
	Syncs            int64 // fsyncs across both files
	Checkpoints      int64
	RecoveredTxns    int64 // transactions replayed from the WAL at open
	RecoveredPages   int64
	Quarantined      int64
	ReadNanos        int64 // wall time inside main-file frame reads
	WriteNanos       int64 // wall time inside main-file frame writes
	SyncNanos        int64 // wall time inside fsyncs
	CommitNanos      int64 // wall time inside Commit (WAL append + apply)
	ReuseAllocations int64 // allocations served from the free list
	FreshAllocations int64
}

// Pager is a crash-safe file of fixed-size checksummed pages: the durable
// replacement for the in-memory PageFile.  All mutations (Allocate, Write,
// Free, SetRoot) are staged in memory and become durable atomically at
// Commit, which appends one checksummed group of records to the write-ahead
// log, fsyncs it once, and only then writes the frames back to the main
// file.  Opening a pager replays every committed transaction left in the WAL
// (redo recovery), so a crash at any moment loses at most the uncommitted
// tail.  Torn or corrupted frames are detected by per-page checksums on
// read, quarantined and reported.  Freed pages form an on-disk chain and are
// reused by Allocate.
//
// A Pager is safe for concurrent use.
type Pager struct {
	mu   sync.Mutex
	vfs  VFS
	db   File
	wal  File
	path string
	opts PagerOptions

	pageSize  int
	frameSize int

	next         PageID
	root         PageID
	seq          uint64
	freeList     []PageID // uncommitted-reuse stack: last element pops first
	metaFreeHead PageID   // committed head of the on-disk free chain
	alive        map[PageID]bool

	staged      map[PageID][]byte
	freed       map[PageID]bool
	metaDirty   bool
	walSize     int64
	sinceCkpt   int
	broken      error
	quarantined map[PageID]error

	stats PagerStats
}

// OpenPager opens (or creates) the page file at path on the given VFS, with
// its WAL at path+".wal".  Opening an existing file replays any committed
// transactions left in the WAL and rebuilds the free list; opening a fresh
// path initialises an empty, durable file.
func OpenPager(fs VFS, path string, pageSize int, opts PagerOptions) (*Pager, error) {
	if CapacityForPage(pageSize) < 1 {
		return nil, fmt.Errorf("storage: page size %d too small", pageSize)
	}
	p := &Pager{
		vfs:         fs,
		path:        path,
		opts:        opts.withDefaults(),
		pageSize:    pageSize,
		frameSize:   frameHeaderSize + pageSize,
		next:        1,
		alive:       make(map[PageID]bool),
		staged:      make(map[PageID][]byte),
		freed:       make(map[PageID]bool),
		quarantined: make(map[PageID]error),
	}
	var err error
	if p.db, err = fs.Open(path); err != nil {
		return nil, fmt.Errorf("storage: opening %s: %w", path, err)
	}
	if p.wal, err = fs.Open(path + ".wal"); err != nil {
		p.db.Close()
		return nil, fmt.Errorf("storage: opening %s.wal: %w", path, err)
	}
	if err := p.open(); err != nil {
		p.db.Close()
		p.wal.Close()
		return nil, err
	}
	return p, nil
}

// open initialises a fresh file or recovers an existing one.
func (p *Pager) open() error {
	size, err := p.db.Size()
	if err != nil {
		return fmt.Errorf("storage: sizing %s: %w", p.path, err)
	}
	if size == 0 {
		return p.initFresh()
	}

	// Read the meta frame.  A torn or short meta frame is survivable as long
	// as the WAL holds a commit record to restore it from — that is
	// precisely the mid-checkpoint (or mid-first-init) crash window.
	metaOK := true
	metaErr := p.readMeta()
	if metaErr != nil {
		if errors.Is(metaErr, ErrPageSizeAgain) {
			return metaErr // a healthy file opened with the wrong page size
		}
		metaOK = false
	}

	// Redo pass: replay every committed transaction left in the WAL.
	walSize, err := p.wal.Size()
	if err != nil {
		return fmt.Errorf("storage: sizing WAL: %w", err)
	}
	walBuf := make([]byte, walSize)
	if walSize > 0 {
		if _, err := p.readFullRetry(p.wal, walBuf, 0); err != nil {
			return fmt.Errorf("storage: reading WAL: %w", err)
		}
	}
	recovered, err := scanWAL(walBuf, p.pageSize, func(pages []walPage, c walCommit) error {
		for _, pg := range pages {
			if err := p.writeFrame(pg.ID, pg.Data); err != nil {
				return fmt.Errorf("storage: replaying page %d: %w", pg.ID, err)
			}
			p.stats.RecoveredPages++
		}
		p.seq, p.next, p.root = c.Seq, c.Next, c.Root
		p.metaFreeHead = c.FreeHead
		metaOK = true
		return nil
	})
	if err != nil {
		if !errors.Is(err, ErrWALHeader) {
			return err
		}
		// A torn WAL header means the crash hit before the first record of
		// this generation was durable: there is nothing to replay.
		recovered = 0
	}
	p.stats.RecoveredTxns = int64(recovered)
	if !metaOK {
		if recovered == 0 && size < int64(p.frameSize) {
			// The first meta write never became durable: the power failed
			// while the file was being created (a completed pager always has
			// a durable, full meta frame and a synced WAL header).  Start
			// the creation over.
			if err := p.db.Truncate(0); err != nil {
				return fmt.Errorf("storage: resetting interrupted init: %w", err)
			}
			return p.initFresh()
		}
		return fmt.Errorf("storage: %s: meta frame unreadable and no WAL commit to restore it: %w",
			p.path, metaErr)
	}
	if recovered > 0 {
		// The replayed state is now in the main file; make it durable and
		// start a fresh WAL generation.
		if err := p.checkpointLocked(); err != nil {
			return err
		}
		delete(p.quarantined, InvalidPage) // the meta frame was rebuilt
	} else if err := p.initWAL(); err != nil {
		// Reset the WAL even when nothing was replayed: a torn tail from the
		// crashed append must never sit in front of future commit records.
		return err
	}
	return p.loadFreeList()
}

// initFresh writes an empty, durable pager: meta frame, synced, WAL header,
// synced.
func (p *Pager) initFresh() error {
	if err := p.writeMeta(); err != nil {
		return err
	}
	if err := p.sync(p.db); err != nil {
		return err
	}
	return p.initWAL()
}

func (p *Pager) initWAL() error {
	hdr := appendWALHeader(nil, p.pageSize)
	if _, err := p.wal.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("storage: writing WAL header: %w", err)
	}
	if err := p.wal.Truncate(int64(len(hdr))); err != nil {
		return fmt.Errorf("storage: truncating WAL: %w", err)
	}
	if err := p.sync(p.wal); err != nil {
		return err
	}
	p.walSize = int64(len(hdr))
	return nil
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// Stats returns a snapshot of the measured I/O counters.
func (p *Pager) Stats() PagerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Seq returns the sequence number of the last committed transaction.
func (p *Pager) Seq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// Root returns the client root pointer (InvalidPage until SetRoot).
func (p *Pager) Root() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.root
}

// SetRoot stages a new client root pointer; it becomes durable with the next
// Commit.  On a broken pager it is a no-op: nothing staged after the break
// can ever commit.
func (p *Pager) SetRoot(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return
	}
	if p.root != id {
		p.root = id
		p.metaDirty = true
	}
}

// Len returns the number of live (allocated, unfreed) pages.
func (p *Pager) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.alive)
}

// IDs returns the live page identifiers in ascending order.
func (p *Pager) IDs() []PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]PageID, 0, len(p.alive))
	for id := range p.alive {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Quarantined returns the identifiers of pages whose frames failed their
// checksum, in ascending order.
func (p *Pager) Quarantined() []PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]PageID, 0, len(p.quarantined))
	for id := range p.quarantined {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Allocate reserves a page id, reusing the free list first.  The allocation
// becomes durable with the next Commit.  A broken pager (see ErrPagerBroken)
// refuses all mutations and returns InvalidPage; any Write against it
// surfaces the underlying error.
func (p *Pager) Allocate() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return InvalidPage
	}
	var id PageID
	if n := len(p.freeList); n > 0 {
		// The stack top is the chain head; popping it promotes the next
		// link (still intact on disk) to head.
		id = p.freeList[n-1]
		p.freeList = p.freeList[:n-1]
		if n > 1 {
			p.metaFreeHead = p.freeList[n-2]
		} else {
			p.metaFreeHead = InvalidPage
		}
		p.stats.ReuseAllocations++
	} else {
		id = p.next
		p.next++
		p.stats.FreshAllocations++
	}
	p.alive[id] = true
	p.staged[id] = []byte{}
	delete(p.freed, id)
	delete(p.quarantined, id)
	p.metaDirty = true
	return id
}

// Write stages the page contents for id; they become durable with the next
// Commit.  The page must be live and buf must fit the page.
func (p *Pager) Write(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return p.broken
	}
	if !p.alive[id] {
		return fmt.Errorf("%w: %d", ErrUnknownPage, id)
	}
	if len(buf) > p.pageSize {
		return fmt.Errorf("%w: %d bytes exceed page size %d", ErrPageOverflow, len(buf), p.pageSize)
	}
	p.staged[id] = append([]byte(nil), buf...)
	delete(p.quarantined, id)
	return nil
}

// Free releases a live page.  The page joins the on-disk free chain at the
// next Commit and is immediately available to Allocate after that commit.
// Freeing an unknown or already freed page is a no-op, matching PageFile.
// On a broken pager Free is also a no-op — the free could never commit.
func (p *Pager) Free(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil || !p.alive[id] {
		return
	}
	delete(p.alive, id)
	delete(p.staged, id)
	delete(p.quarantined, id)
	p.freed[id] = true
	p.metaDirty = true
}

// Read returns the contents of the page: staged bytes if the page was
// written since the last commit, otherwise the checksum-verified frame from
// disk.  Read errors are retried with exponential backoff and surfaced after
// exhaustion; checksum failures quarantine the page.
func (p *Pager) Read(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return nil, p.broken
	}
	if err, ok := p.quarantined[id]; ok {
		return nil, err
	}
	if buf, ok := p.staged[id]; ok {
		return append([]byte(nil), buf...), nil
	}
	if !p.alive[id] {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPage, id)
	}
	return p.readFrame(id)
}

// Commit makes every staged mutation durable as one atomic transaction: page
// images and free-chain links are appended to the WAL as a single
// checksummed group, the WAL is fsynced once (group commit), and only then
// are the frames written back to the main file.  It returns the committed
// sequence number.
//
// The error reports on the commit itself: a nil error means the transaction
// is durable, a non-nil error means it is not and the staged state is intact
// for a retry — unless the error is ErrPagerBroken, in which case the
// transaction was durably logged but the main file fell behind the WAL and
// the pager must be reopened (recovery replays the log).  A failed automatic
// checkpoint after a durable commit does not fail the commit: Commit returns
// nil and the checkpoint failure marks the pager broken, surfacing on every
// subsequent operation until a reopen.
func (p *Pager) Commit() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.commitLocked()
}

func (p *Pager) commitLocked() (uint64, error) {
	if p.broken != nil {
		return p.seq, p.broken
	}
	if len(p.staged) == 0 && len(p.freed) == 0 && !p.metaDirty {
		return p.seq, nil
	}
	start := time.Now()

	// Deterministic record order: staged pages ascending, then the freed
	// pages ascending as links of the free chain.
	stagedIDs := make([]PageID, 0, len(p.staged))
	for id := range p.staged {
		stagedIDs = append(stagedIDs, id)
	}
	sort.Slice(stagedIDs, func(i, j int) bool { return stagedIDs[i] < stagedIDs[j] })
	freedIDs := make([]PageID, 0, len(p.freed))
	for id := range p.freed {
		freedIDs = append(freedIDs, id)
	}
	sort.Slice(freedIDs, func(i, j int) bool { return freedIDs[i] < freedIDs[j] })

	var buf []byte
	for _, id := range stagedIDs {
		buf = appendPageRecord(buf, id, p.staged[id])
	}
	head := p.metaFreeHead
	var freeFrames [][]byte
	for _, id := range freedIDs {
		link := make([]byte, 8)
		binary.LittleEndian.PutUint32(link[0:], freeMagic)
		binary.LittleEndian.PutUint32(link[4:], uint32(head))
		buf = appendPageRecord(buf, id, link)
		freeFrames = append(freeFrames, link)
		head = id
	}
	commit := walCommit{
		Seq:      p.seq + 1,
		Next:     p.next,
		FreeHead: head,
		Root:     p.root,
		Pages:    uint32(len(stagedIDs) + len(freedIDs)),
	}
	buf = appendCommitRecord(buf, commit)

	// Group commit: one append, one fsync.  On failure nothing moved — the
	// write offset stays, so a retry overwrites the partial tail.
	if n, err := p.wal.WriteAt(buf, p.walSize); err != nil {
		return p.seq, fmt.Errorf("storage: WAL append (%d of %d bytes): %w", n, len(buf), err)
	}
	if err := p.sync(p.wal); err != nil {
		return p.seq, fmt.Errorf("storage: WAL fsync: %w", err)
	}
	p.walSize += int64(len(buf))
	p.stats.WALAppends++
	p.stats.WALBytes += int64(len(buf))

	// The transaction is durable; write back the frames.  A write-back
	// failure leaves the main file behind the WAL — the pager is marked
	// broken and reopening replays the WAL.
	for _, id := range stagedIDs {
		if err := p.writeFrame(id, p.staged[id]); err != nil {
			p.broken = fmt.Errorf("%w: write-back of page %d: %w", ErrPagerBroken, id, err)
			return p.seq, p.broken
		}
	}
	for i, id := range freedIDs {
		if err := p.writeFrame(id, freeFrames[i]); err != nil {
			p.broken = fmt.Errorf("%w: write-back of freed page %d: %w", ErrPagerBroken, id, err)
			return p.seq, p.broken
		}
	}

	p.seq = commit.Seq
	p.metaFreeHead = commit.FreeHead
	clear(p.staged)
	for _, id := range freedIDs {
		delete(p.freed, id)
	}
	p.freeList = append(p.freeList, freedIDs...)
	p.metaDirty = false
	p.stats.Commits++
	p.stats.CommitNanos += time.Since(start).Nanoseconds()
	p.sinceCkpt++
	if p.opts.CheckpointEvery > 0 && p.sinceCkpt >= p.opts.CheckpointEvery {
		// The transaction is already durable in the WAL and applied to the
		// main file; an automatic-checkpoint failure is not a commit failure.
		// checkpointLocked marks the pager broken (sticky, surfaced by every
		// later operation until a reopen), so the durable commit is reported
		// truthfully here.
		_ = p.checkpointLocked()
	}
	return p.seq, nil
}

// Checkpoint makes the main file fully durable and truncates the WAL: meta
// frame written, main file fsynced, WAL reset to its header.  The ordering
// is the crash-safety invariant — the WAL is discarded only after everything
// it describes is durably in the main file.  Staged mutations are committed
// first so the checkpointed meta never describes uncommitted state.
func (p *Pager) Checkpoint() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return p.broken
	}
	if len(p.staged) > 0 || len(p.freed) > 0 || p.metaDirty {
		if _, err := p.commitLocked(); err != nil {
			return err
		}
	}
	return p.checkpointLocked()
}

func (p *Pager) checkpointLocked() error {
	if p.broken != nil {
		return p.broken
	}
	// A failure anywhere in here is sticky: the meta frame, the main-file
	// durability and the WAL offset (p.walSize) are only consistent with the
	// files after every step succeeds.  In particular, if initWAL dies after
	// a partial header write or a failed truncate, appending at the stale
	// walSize would leave a gap the recovery scan stops at — silently losing
	// committed transactions.  Marking the pager broken forces a reopen,
	// which re-derives all of that state from the durable files.
	if err := p.writeMeta(); err != nil {
		p.broken = fmt.Errorf("%w: checkpoint meta write: %w", ErrPagerBroken, err)
		return p.broken
	}
	if err := p.sync(p.db); err != nil {
		p.broken = fmt.Errorf("%w: checkpoint fsync: %w", ErrPagerBroken, err)
		return p.broken
	}
	if err := p.initWAL(); err != nil {
		p.broken = fmt.Errorf("%w: checkpoint WAL reset: %w", ErrPagerBroken, err)
		return p.broken
	}
	p.sinceCkpt = 0
	p.stats.Checkpoints++
	return nil
}

// Close checkpoints and releases the files.  Staged, uncommitted mutations
// are discarded (commit first to keep them).
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	if p.broken == nil && len(p.staged) == 0 && len(p.freed) == 0 && !p.metaDirty {
		err = p.checkpointLocked()
	}
	if e := p.db.Close(); err == nil {
		err = e
	}
	if e := p.wal.Close(); err == nil {
		err = e
	}
	return err
}

// ---------------------------------------------------------------------------
// Frames, meta and the free chain
// ---------------------------------------------------------------------------

// writeFrame writes one checksummed frame (full slot, zero-padded).
func (p *Pager) writeFrame(id PageID, payload []byte) error {
	if len(payload) > p.pageSize {
		return fmt.Errorf("%w: %d bytes", ErrPageOverflow, len(payload))
	}
	frame := make([]byte, p.frameSize)
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
	copy(frame[frameHeaderSize:], payload)
	binary.LittleEndian.PutUint32(frame[0:], Checksum(frame[4:frameHeaderSize+len(payload)]))
	start := time.Now()
	n, err := p.db.WriteAt(frame, int64(id)*int64(p.frameSize))
	p.stats.WriteNanos += time.Since(start).Nanoseconds()
	if err != nil {
		return fmt.Errorf("storage: writing frame %d (%d of %d bytes): %w", id, n, len(frame), err)
	}
	p.stats.Writes++
	p.stats.BytesWritten += int64(len(frame))
	return nil
}

// readFrame reads and verifies one frame, retrying I/O errors with backoff.
// Checksum failures quarantine the page.
func (p *Pager) readFrame(id PageID) ([]byte, error) {
	frame := make([]byte, p.frameSize)
	if _, err := p.readFullRetry(p.db, frame, int64(id)*int64(p.frameSize)); err != nil {
		return nil, fmt.Errorf("storage: reading frame %d: %w", id, err)
	}
	length := int(binary.LittleEndian.Uint32(frame[4:]))
	if length > p.pageSize {
		return nil, p.quarantine(id, fmt.Errorf("%w: frame %d declares %d payload bytes",
			ErrCorruptPage, id, length))
	}
	want := binary.LittleEndian.Uint32(frame[0:])
	if got := Checksum(frame[4 : frameHeaderSize+length]); got != want {
		return nil, p.quarantine(id, fmt.Errorf("%w: frame %d checksum %#x, want %#x (torn or corrupted page)",
			ErrCorruptPage, id, got, want))
	}
	return append([]byte(nil), frame[frameHeaderSize:frameHeaderSize+length]...), nil
}

// quarantine records a corrupt page and returns its error; subsequent reads
// report it without touching the disk until the page is rewritten or freed.
func (p *Pager) quarantine(id PageID, cause error) error {
	err := fmt.Errorf("%w: page %d: %w", ErrQuarantined, id, cause)
	p.quarantined[id] = err
	p.stats.Quarantined++
	return err
}

// readFullRetry reads len(buf) bytes at off, retrying transient errors with
// exponential backoff and surfacing the final error after exhaustion.
func (p *Pager) readFullRetry(f File, buf []byte, off int64) (int, error) {
	backoff := p.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= p.opts.ReadRetries; attempt++ {
		if attempt > 0 {
			p.stats.ReadRetries++
			p.opts.Sleep(backoff)
			backoff *= 2
		}
		start := time.Now()
		n, err := f.ReadAt(buf, off)
		p.stats.ReadNanos += time.Since(start).Nanoseconds()
		if n == len(buf) {
			// A full buffer is success: the io.ReaderAt contract allows
			// (len(buf), io.EOF) when the read ends exactly at end-of-file.
			p.stats.Reads++
			p.stats.BytesRead += int64(n)
			return n, nil
		}
		if err == nil {
			err = fmt.Errorf("short read: %d of %d bytes", n, len(buf))
		}
		lastErr = err
	}
	return 0, fmt.Errorf("%w: %d attempts: %w", ErrReadExhausted, p.opts.ReadRetries+1, lastErr)
}

// writeMeta writes the meta frame from the in-memory state.
func (p *Pager) writeMeta() error {
	body := make([]byte, metaBodySize)
	binary.LittleEndian.PutUint32(body[0:], pagerMagic)
	binary.LittleEndian.PutUint32(body[4:], pagerVersion)
	binary.LittleEndian.PutUint32(body[8:], uint32(p.pageSize))
	binary.LittleEndian.PutUint32(body[12:], uint32(p.next))
	binary.LittleEndian.PutUint32(body[16:], uint32(p.metaFreeHead))
	binary.LittleEndian.PutUint32(body[20:], uint32(p.root))
	binary.LittleEndian.PutUint64(body[24:], p.seq)
	return p.writeFrame(InvalidPage, body)
}

// readMeta loads the meta frame.
func (p *Pager) readMeta() error {
	body, err := p.readFrame(InvalidPage)
	if err != nil {
		return err
	}
	if len(body) != metaBodySize {
		return fmt.Errorf("%w: meta frame is %d bytes", ErrCorruptPage, len(body))
	}
	if m := binary.LittleEndian.Uint32(body[0:]); m != pagerMagic {
		return fmt.Errorf("%w: meta magic %#x", ErrCorruptPage, m)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != pagerVersion {
		return fmt.Errorf("%w: meta version %d", ErrCorruptPage, v)
	}
	if ps := int(binary.LittleEndian.Uint32(body[8:])); ps != p.pageSize {
		return fmt.Errorf("%w: file has %d-byte pages, want %d", ErrPageSizeAgain, ps, p.pageSize)
	}
	p.next = PageID(binary.LittleEndian.Uint32(body[12:]))
	p.metaFreeHead = PageID(binary.LittleEndian.Uint32(body[16:]))
	p.root = PageID(binary.LittleEndian.Uint32(body[20:]))
	p.seq = binary.LittleEndian.Uint64(body[24:])
	if p.next < 1 {
		p.next = 1
	}
	return nil
}

// loadFreeList walks the on-disk free chain into the in-memory stack and
// derives the live-page set.  The walk is cycle-guarded: a corrupt chain is
// an error, never an endless loop.
func (p *Pager) loadFreeList() error {
	seen := make(map[PageID]bool)
	var chain []PageID // head first
	for id := p.metaFreeHead; id != InvalidPage; {
		if seen[id] || id >= p.next || int64(len(chain)) > int64(p.next) {
			return fmt.Errorf("%w: free chain cycles at page %d", ErrCorruptPage, id)
		}
		seen[id] = true
		body, err := p.readFrame(id)
		if err != nil {
			return fmt.Errorf("storage: free chain at page %d: %w", id, err)
		}
		if len(body) != 8 || binary.LittleEndian.Uint32(body[0:]) != freeMagic {
			return fmt.Errorf("%w: page %d is linked free but holds no free frame", ErrCorruptPage, id)
		}
		chain = append(chain, id)
		id = PageID(binary.LittleEndian.Uint32(body[4:]))
	}
	// Stack order: deepest link first so the head is popped first.
	p.freeList = p.freeList[:0]
	for i := len(chain) - 1; i >= 0; i-- {
		p.freeList = append(p.freeList, chain[i])
	}
	clear(p.alive)
	for id := PageID(1); id < p.next; id++ {
		if !seen[id] {
			p.alive[id] = true
		}
	}
	return nil
}

// sync fsyncs one file, charging the measured counters.
func (p *Pager) sync(f File) error {
	start := time.Now()
	err := f.Sync()
	p.stats.SyncNanos += time.Since(start).Nanoseconds()
	if err != nil {
		return fmt.Errorf("storage: fsync: %w", err)
	}
	p.stats.Syncs++
	return nil
}
