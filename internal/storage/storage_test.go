package storage

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestCapacityForPageMatchesPaperTable1(t *testing.T) {
	// Table 1 of the paper reports M = 51, 102, 204 and 409 for page sizes of
	// 1, 2, 4 and 8 KByte.
	tests := []struct {
		pageSize int
		want     int
	}{
		{PageSize1K, 51},
		{PageSize2K, 102},
		{PageSize4K, 204},
		{PageSize8K, 409},
	}
	for _, tt := range tests {
		if got := CapacityForPage(tt.pageSize); got != tt.want {
			t.Errorf("CapacityForPage(%d) = %d, want %d", tt.pageSize, got, tt.want)
		}
	}
	if got := CapacityForPage(10); got != 0 {
		t.Errorf("CapacityForPage(10) = %d, want 0", got)
	}
}

func TestMinEntriesFor(t *testing.T) {
	tests := []struct {
		capacity int
		want     int
	}{
		{51, 20},
		{102, 40},
		{204, 81},
		{409, 163},
		{4, 2},
		{5, 2},
		{3, 1},
	}
	for _, tt := range tests {
		got := MinEntriesFor(tt.capacity)
		if got != tt.want {
			t.Errorf("MinEntriesFor(%d) = %d, want %d", tt.capacity, got, tt.want)
		}
		if tt.capacity >= 4 && (got < 2 || got > tt.capacity/2) {
			t.Errorf("MinEntriesFor(%d) = %d violates 2 <= m <= M/2", tt.capacity, got)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		pageSize := PageSizes[rng.Intn(len(PageSizes))]
		capacity := CapacityForPage(pageSize)
		n := DiskNode{Level: uint16(rng.Intn(5))}
		count := rng.Intn(capacity + 1)
		for i := 0; i < count; i++ {
			x := rng.Float64()
			y := rng.Float64()
			n.Entries = append(n.Entries, DiskEntry{
				Rect: geom.Rect{XL: x, YL: y, XU: x + rng.Float64()*0.01, YU: y + rng.Float64()*0.01},
				Ref:  rng.Uint32(),
			})
		}
		buf, err := EncodeNode(n, pageSize)
		if err != nil {
			t.Fatalf("EncodeNode: %v", err)
		}
		got, err := DecodeNode(buf, pageSize)
		if err != nil {
			t.Fatalf("DecodeNode: %v", err)
		}
		if got.Level != n.Level || len(got.Entries) != len(n.Entries) {
			t.Fatalf("round trip mismatch: level %d->%d, count %d->%d",
				n.Level, got.Level, len(n.Entries), len(got.Entries))
		}
		for i := range n.Entries {
			if got.Entries[i].Ref != n.Entries[i].Ref {
				t.Fatalf("entry %d ref mismatch", i)
			}
			// float32 round trip: coordinates agree to float32 precision.
			if d := got.Entries[i].Rect.XL - n.Entries[i].Rect.XL; d > 1e-6 || d < -1e-6 {
				t.Fatalf("entry %d coordinate drift %g", i, d)
			}
		}
	}
}

func TestEncodeNodeOverflow(t *testing.T) {
	capacity := CapacityForPage(PageSize1K)
	n := DiskNode{Entries: make([]DiskEntry, capacity+1)}
	if _, err := EncodeNode(n, PageSize1K); !errors.Is(err, ErrPageOverflow) {
		t.Fatalf("expected ErrPageOverflow, got %v", err)
	}
}

func TestDecodeNodeErrors(t *testing.T) {
	if _, err := DecodeNode(make([]byte, 10), PageSize1K); !errors.Is(err, ErrPageSizeAgain) {
		t.Fatalf("expected ErrPageSizeAgain, got %v", err)
	}
	buf, err := EncodeNode(DiskNode{}, PageSize1K)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry count beyond capacity.
	buf[2] = 0xFF
	buf[3] = 0xFF
	if _, err := DecodeNode(buf, PageSize1K); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("expected ErrCorruptPage, got %v", err)
	}
}

func TestPageFileBasicLifecycle(t *testing.T) {
	f := NewPageFile(PageSize1K)
	if f.PageSize() != PageSize1K {
		t.Fatalf("PageSize = %d", f.PageSize())
	}
	id1 := f.Allocate()
	id2 := f.Allocate()
	if id1 == id2 || id1 == InvalidPage {
		t.Fatalf("allocation produced ids %d, %d", id1, id2)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	n := DiskNode{Level: 1, Entries: []DiskEntry{{Rect: geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}, Ref: 7}}}
	buf, err := EncodeNode(n, PageSize1K)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(id1, buf); err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(id1)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := DecodeNode(got, PageSize1K)
	if err != nil {
		t.Fatal(err)
	}
	if dn.Entries[0].Ref != 7 {
		t.Fatalf("ref = %d, want 7", dn.Entries[0].Ref)
	}
	ids := f.IDs()
	if len(ids) != 2 || ids[0] != id1 || ids[1] != id2 {
		t.Fatalf("IDs = %v", ids)
	}
	f.Free(id2)
	if _, err := f.Read(id2); !errors.Is(err, ErrUnknownPage) {
		t.Fatalf("expected ErrUnknownPage after Free, got %v", err)
	}
}

func TestPageFileWriteErrors(t *testing.T) {
	f := NewPageFile(PageSize1K)
	if err := f.Write(99, []byte{1}); !errors.Is(err, ErrUnknownPage) {
		t.Fatalf("expected ErrUnknownPage, got %v", err)
	}
	id := f.Allocate()
	tooBig := make([]byte, PageSize1K*2)
	if err := f.Write(id, tooBig); !errors.Is(err, ErrPageOverflow) {
		t.Fatalf("expected ErrPageOverflow, got %v", err)
	}
}

func TestNewPageFilePanicsOnTinyPage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tiny page size")
		}
	}()
	NewPageFile(8)
}

// Property: encoding never exceeds the physical frame and decoding recovers
// the entry count for any count within capacity.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(countSeed uint16, level uint8) bool {
		capacity := CapacityForPage(PageSize2K)
		count := int(countSeed) % (capacity + 1)
		n := DiskNode{Level: uint16(level)}
		for i := 0; i < count; i++ {
			n.Entries = append(n.Entries, DiskEntry{Rect: geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}, Ref: uint32(i)})
		}
		buf, err := EncodeNode(n, PageSize2K)
		if err != nil {
			return false
		}
		got, err := DecodeNode(buf, PageSize2K)
		if err != nil {
			return false
		}
		return got.Level == uint16(level) && len(got.Entries) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
