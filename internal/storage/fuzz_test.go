package storage

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzNodeCodec throws arbitrary bytes at DecodeNode and checks that it never
// panics or over-reads, and that anything it accepts survives an
// encode/decode round trip unchanged.
func FuzzNodeCodec(f *testing.F) {
	// Seed corpus: a valid empty node, a full node, and a few malformed
	// shapes (truncated page, oversized count).
	empty, _ := EncodeNode(DiskNode{Level: 0}, PageSize1K)
	f.Add(empty)
	full := DiskNode{Level: 3}
	for i := 0; i < CapacityForPage(PageSize1K); i++ {
		full.Entries = append(full.Entries, DiskEntry{Ref: uint32(i)})
	}
	fullBuf, _ := EncodeNode(full, PageSize1K)
	f.Add(fullBuf)
	f.Add(fullBuf[:100])
	evil := append([]byte(nil), empty...)
	binary.LittleEndian.PutUint16(evil[2:4], math.MaxUint16)
	f.Add(evil)

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeNode(data, PageSize1K)
		if err != nil {
			return
		}
		if len(n.Entries) > CapacityForPage(PageSize1K) {
			t.Fatalf("decoded %d entries, capacity %d", len(n.Entries), CapacityForPage(PageSize1K))
		}
		out, err := EncodeNode(n, PageSize1K)
		if err != nil {
			t.Fatalf("re-encoding an accepted node failed: %v", err)
		}
		back, err := DecodeNode(out, PageSize1K)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if back.Level != n.Level || len(back.Entries) != len(n.Entries) {
			t.Fatalf("round trip changed the node: %+v vs %+v", back, n)
		}
		// Compare at the byte level: NaN coordinates are preserved bit-for-bit
		// but compare unequal as floats.
		out2, err := EncodeNode(back, PageSize1K)
		if err != nil || !bytes.Equal(out, out2) {
			t.Fatalf("second round trip not byte-identical (%v)", err)
		}
	})
}

// FuzzWALRecord feeds arbitrary bytes to the WAL scanner.  Whatever the
// input, scanWAL must not panic, must never replay a transaction from a
// buffer without a valid header, and must replay only checksummed committed
// prefixes — so appending garbage to a valid log never changes what it
// recovers.
func FuzzWALRecord(f *testing.F) {
	var valid []byte
	valid = appendWALHeader(valid, PageSize1K)
	valid = appendPageRecord(valid, 1, []byte("page one"))
	valid = appendCommitRecord(valid, walCommit{Seq: 1, Next: 2, Root: 1, Pages: 1})
	f.Add(valid)
	f.Add(valid[:walHeaderSize])
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := scanWAL(data, PageSize1K, func(pages []walPage, c walCommit) error {
			for _, pg := range pages {
				if len(pg.Data) > PageSize1K {
					t.Fatalf("replayed page %d with %d bytes > page size", pg.ID, len(pg.Data))
				}
			}
			return nil
		})
		if err != nil && n != 0 {
			t.Fatalf("scanWAL replayed %d txns and then errored: %v", n, err)
		}
		// Committed prefixes are stable: appending arbitrary bytes to a valid
		// log must not change the number of recovered transactions.
		if len(data) <= PageSize1K {
			var log []byte
			log = appendWALHeader(log, PageSize1K)
			log = appendPageRecord(log, 2, data)
			log = appendCommitRecord(log, walCommit{Seq: 1, Next: 3, Pages: 1})
			base, err := scanWAL(log, PageSize1K, func([]walPage, walCommit) error { return nil })
			if err != nil || base != 1 {
				t.Fatalf("valid single-txn log: %d txns, %v", base, err)
			}
			tail, err := scanWAL(append(log, data...), PageSize1K,
				func([]walPage, walCommit) error { return nil })
			if err != nil || tail != 1 {
				t.Fatalf("garbage tail changed recovery: %d txns, %v", tail, err)
			}
		}
	})
}
