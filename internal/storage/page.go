// Package storage models the secondary-storage layer underneath the R*-trees:
// fixed-size pages, the on-disk layout of tree nodes and a simulated page
// file.  One tree node corresponds to exactly one page, as in the paper
// (section 3.1), and the node capacity M is derived from the page size and
// the 20-byte entry layout, which reproduces the capacities of Table 1
// (M = 51, 102, 204, 409 for 1, 2, 4 and 8 KByte pages).
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// PageID identifies a page (equivalently, a tree node).  IDs are unique
// within a page file / tree; the buffer manager additionally namespaces them
// by tree so that two trees joined together never collide.
type PageID uint32

// InvalidPage is the zero PageID; valid pages start at 1.
const InvalidPage PageID = 0

// Common page sizes studied in the paper's evaluation.
const (
	PageSize1K = 1 << 10
	PageSize2K = 2 << 10
	PageSize4K = 4 << 10
	PageSize8K = 8 << 10
)

// EntrySize is the on-disk size of a single node entry: a rectangle stored as
// four 32-bit floats plus a 32-bit reference (child page or object
// identifier), 20 bytes in total.  This is the layout implied by the node
// capacities reported in Table 1 of the paper.
const EntrySize = 20

// nodeHeaderSize is the fixed per-node header: level (uint16) and entry count
// (uint16).  The header lives in the page frame in front of the entry
// payload; the paper's capacity M counts only entry slots, so CapacityForPage
// ignores the header (see the package documentation of internal/rtree for the
// resulting physical page size).
const nodeHeaderSize = 4

// PageSizes lists the page sizes swept by the paper's experiments, in bytes.
var PageSizes = []int{PageSize1K, PageSize2K, PageSize4K, PageSize8K}

// CapacityForPage returns the maximum number of entries M that fit into a
// page of the given size, matching Table 1 of the paper.
func CapacityForPage(pageSize int) int {
	if pageSize < EntrySize {
		return 0
	}
	return pageSize / EntrySize
}

// MinEntriesFor returns the minimum node fill m used for a given capacity M.
// The paper requires 2 <= m <= M/2; following the R*-tree paper we use
// m = 40% of M, which the authors found to be the best overall setting.
func MinEntriesFor(capacity int) int {
	m := capacity * 40 / 100
	if m < 2 {
		m = 2
	}
	if m > capacity/2 {
		m = capacity / 2
	}
	return m
}

// DiskEntry is the serialised form of one node entry.
type DiskEntry struct {
	Rect geom.Rect
	Ref  uint32
}

// DiskNode is the serialised form of one tree node.
type DiskNode struct {
	Level   uint16
	Entries []DiskEntry
}

// Errors returned by the encoding and page-file functions.
var (
	ErrPageOverflow  = errors.New("storage: node does not fit into page")
	ErrCorruptPage   = errors.New("storage: corrupt page")
	ErrUnknownPage   = errors.New("storage: unknown page id")
	ErrPageSizeAgain = errors.New("storage: page size mismatch")
)

// EncodeNode serialises the node into a byte slice of exactly
// nodeHeaderSize + capacity*EntrySize bytes, where capacity is derived from
// pageSize.  Rectangle coordinates are stored as float32, as in the original
// system; the loss of precision is irrelevant for MBRs of map data in unit
// space.  It returns ErrPageOverflow if the node holds more entries than the
// page capacity.
func EncodeNode(n DiskNode, pageSize int) ([]byte, error) {
	capacity := CapacityForPage(pageSize)
	if len(n.Entries) > capacity {
		return nil, fmt.Errorf("%w: %d entries, capacity %d", ErrPageOverflow, len(n.Entries), capacity)
	}
	buf := make([]byte, nodeHeaderSize+capacity*EntrySize)
	binary.LittleEndian.PutUint16(buf[0:2], n.Level)
	binary.LittleEndian.PutUint16(buf[2:4], uint16(len(n.Entries)))
	off := nodeHeaderSize
	for _, e := range n.Entries {
		binary.LittleEndian.PutUint32(buf[off+0:], math.Float32bits(float32(e.Rect.XL)))
		binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(float32(e.Rect.YL)))
		binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(float32(e.Rect.XU)))
		binary.LittleEndian.PutUint32(buf[off+12:], math.Float32bits(float32(e.Rect.YU)))
		binary.LittleEndian.PutUint32(buf[off+16:], e.Ref)
		off += EntrySize
	}
	return buf, nil
}

// DecodeNode deserialises a node previously produced by EncodeNode for the
// same page size.
func DecodeNode(buf []byte, pageSize int) (DiskNode, error) {
	capacity := CapacityForPage(pageSize)
	want := nodeHeaderSize + capacity*EntrySize
	if len(buf) != want {
		return DiskNode{}, fmt.Errorf("%w: page is %d bytes, want %d", ErrPageSizeAgain, len(buf), want)
	}
	level := binary.LittleEndian.Uint16(buf[0:2])
	count := int(binary.LittleEndian.Uint16(buf[2:4]))
	if count > capacity {
		return DiskNode{}, fmt.Errorf("%w: entry count %d exceeds capacity %d", ErrCorruptPage, count, capacity)
	}
	n := DiskNode{Level: level, Entries: make([]DiskEntry, count)}
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		xl := math.Float32frombits(binary.LittleEndian.Uint32(buf[off+0:]))
		yl := math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4:]))
		xu := math.Float32frombits(binary.LittleEndian.Uint32(buf[off+8:]))
		yu := math.Float32frombits(binary.LittleEndian.Uint32(buf[off+12:]))
		ref := binary.LittleEndian.Uint32(buf[off+16:])
		n.Entries[i] = DiskEntry{
			Rect: geom.Rect{XL: float64(xl), YL: float64(yl), XU: float64(xu), YU: float64(yu)},
			Ref:  ref,
		}
		off += EntrySize
	}
	return n, nil
}
