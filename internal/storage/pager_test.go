package storage

import (
	"errors"
	"io"
	"testing"
	"time"
)

// noSleep makes retry backoff free in tests.
var noSleep = func(time.Duration) {}

func testPagerOptions() PagerOptions {
	return PagerOptions{Sleep: noSleep}
}

// mustOpen opens a pager or fails the test.
func mustOpen(t *testing.T, fs VFS, path string, pageSize int, opts PagerOptions) *Pager {
	t.Helper()
	p, err := OpenPager(fs, path, pageSize, opts)
	if err != nil {
		t.Fatalf("OpenPager: %v", err)
	}
	return p
}

func TestMemVFSDurabilityModel(t *testing.T) {
	fs := NewMemVFS()
	f, err := fs.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	// Unsynced writes are visible to reads but are not guaranteed to survive
	// a crash: a seeded prefix may persist, wholly or torn, like a real disk.
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "hello" {
		t.Fatalf("read before crash: %q, %v", buf, err)
	}
	fs.Crash(1)
	if n, err := f.Size(); err != nil || n > 5 {
		t.Fatalf("size after crash: %d, %v", n, err)
	}
	// Synced writes survive.
	if _, err := f.WriteAt([]byte("world"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash(2)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "world" {
		t.Fatalf("read after synced crash: %q, %v", buf, err)
	}
}

func TestMemVFSCrashIsDeterministic(t *testing.T) {
	image := func(seed int64) []byte {
		fs := NewMemVFS()
		f, _ := fs.Open("x")
		for i := 0; i < 8; i++ {
			f.WriteAt([]byte{byte(i), byte(i), byte(i), byte(i)}, int64(4*i))
		}
		fs.Crash(seed)
		n, _ := f.Size()
		buf := make([]byte, n)
		f.ReadAt(buf, 0)
		return buf
	}
	a, b := image(7), image(7)
	if string(a) != string(b) {
		t.Fatalf("same seed, different surviving images: %x vs %x", a, b)
	}
}

func TestFaultFSCrashPointFiresOnce(t *testing.T) {
	fs := NewFaultFS(NewMemVFS(), FaultScript{CrashAtOp: 3})
	f, err := fs.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("a"), 0); err != nil {
		t.Fatalf("op 1 should succeed: %v", err)
	}
	if _, err := f.WriteAt([]byte("b"), 1); err != nil {
		t.Fatalf("op 2 should succeed: %v", err)
	}
	if _, err := f.WriteAt([]byte("c"), 2); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("op 3 should crash, got %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() should report true")
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("every op after the crash must fail, got %v", err)
	}
}

func TestFaultFSInjectsTransientFaults(t *testing.T) {
	fs := NewFaultFS(NewMemVFS(), FaultScript{ReadErrEvery: 2, SyncErrEvery: 2, WriteShortEvery: 2})
	f, _ := fs.Open("x")
	if _, err := f.WriteAt([]byte("abcd"), 0); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if n, err := f.WriteAt([]byte("efgh"), 4); !errors.Is(err, ErrInjectedWrite) || n != 2 {
		t.Fatalf("write 2 should be short (2 bytes), got n=%d err=%v", n, err)
	}
	buf := make([]byte, 2)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("read 2 should fail, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync 2 should fail, got %v", err)
	}
}

func TestPagerLifecycleAndReopen(t *testing.T) {
	for name, fs := range map[string]VFS{"mem": NewMemVFS(), "os": OSVFS{}} {
		t.Run(name, func(t *testing.T) {
			path := "t.db"
			if _, ok := fs.(OSVFS); ok {
				path = t.TempDir() + "/t.db"
			}
			p := mustOpen(t, fs, path, PageSize1K, testPagerOptions())
			a, b := p.Allocate(), p.Allocate()
			if err := p.Write(a, []byte("alpha")); err != nil {
				t.Fatal(err)
			}
			if err := p.Write(b, []byte("beta")); err != nil {
				t.Fatal(err)
			}
			p.SetRoot(b)
			if _, err := p.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}

			q := mustOpen(t, fs, path, PageSize1K, testPagerOptions())
			defer q.Close()
			if got := q.Root(); got != b {
				t.Fatalf("root after reopen: %d, want %d", got, b)
			}
			if buf, err := q.Read(a); err != nil || string(buf) != "alpha" {
				t.Fatalf("page a after reopen: %q, %v", buf, err)
			}
			if buf, err := q.Read(b); err != nil || string(buf) != "beta" {
				t.Fatalf("page b after reopen: %q, %v", buf, err)
			}
			if q.Len() != 2 {
				t.Fatalf("Len after reopen: %d", q.Len())
			}
			// Wrong page size must be rejected, not misread.
			if _, err := OpenPager(fs, path, PageSize2K, testPagerOptions()); !errors.Is(err, ErrPageSizeAgain) {
				t.Fatalf("wrong page size: %v", err)
			}
		})
	}
}

func TestPagerUncommittedStateIsInvisible(t *testing.T) {
	fs := NewMemVFS()
	p := mustOpen(t, fs, "t.db", PageSize1K, testPagerOptions())
	id := p.Allocate()
	if err := p.Write(id, []byte("staged")); err != nil {
		t.Fatal(err)
	}
	// Staged reads come back before commit...
	if buf, err := p.Read(id); err != nil || string(buf) != "staged" {
		t.Fatalf("staged read: %q, %v", buf, err)
	}
	// ...but a crash before commit loses them.
	fs.Crash(3)
	q := mustOpen(t, fs, "t.db", PageSize1K, testPagerOptions())
	defer q.Close()
	if q.Len() != 0 || q.Seq() != 0 {
		t.Fatalf("uncommitted allocation survived: len=%d seq=%d", q.Len(), q.Seq())
	}
}

func TestPagerWALReplayAfterCrash(t *testing.T) {
	fs := NewMemVFS()
	// Disable auto-checkpoints so the committed state lives in the WAL only.
	opts := PagerOptions{Sleep: noSleep, CheckpointEvery: -1}
	p := mustOpen(t, fs, "t.db", PageSize1K, opts)
	id := p.Allocate()
	if err := p.Write(id, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	p.SetRoot(id)
	seq, err := p.Commit()
	if err != nil {
		t.Fatal(err)
	}
	// Power cut: the db writes were never synced, only the WAL was.  The
	// unsynced db state may die (wholly or torn); recovery must replay the
	// WAL so the outcome is the same either way.
	fs.Crash(4)
	q := mustOpen(t, fs, "t.db", PageSize1K, opts)
	defer q.Close()
	if q.Stats().RecoveredTxns == 0 {
		t.Fatal("reopen after crash replayed no WAL transactions")
	}
	if q.Seq() != seq {
		t.Fatalf("recovered seq %d, want %d", q.Seq(), seq)
	}
	if buf, err := q.Read(id); err != nil || string(buf) != "durable" {
		t.Fatalf("recovered page: %q, %v", buf, err)
	}
	if q.Root() != id {
		t.Fatalf("recovered root %d, want %d", q.Root(), id)
	}
}

func TestPagerFreeListReuseAcrossReopen(t *testing.T) {
	fs := NewMemVFS()
	p := mustOpen(t, fs, "t.db", PageSize1K, testPagerOptions())
	var ids []PageID
	for i := 0; i < 4; i++ {
		id := p.Allocate()
		ids = append(ids, id)
		if err := p.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	p.Free(ids[1])
	p.Free(ids[2])
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(ids[1]); !errors.Is(err, ErrUnknownPage) {
		t.Fatalf("freed page still readable: %v", err)
	}
	// Freed ids are reused before the file grows.
	got := map[PageID]bool{p.Allocate(): true, p.Allocate(): true}
	if !got[ids[1]] || !got[ids[2]] {
		t.Fatalf("allocate after free returned %v, want the freed ids %d and %d", got, ids[1], ids[2])
	}
	next := p.Allocate()
	if next != ids[3]+1 {
		t.Fatalf("after draining the free list, allocate should extend the file: got %d, want %d",
			next, ids[3]+1)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// The free chain also survives a reopen (this pager freed two more).
	q := mustOpen(t, fs, "t.db", PageSize1K, testPagerOptions())
	q.Free(ids[0])
	if _, err := q.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, fs, "t.db", PageSize1K, testPagerOptions())
	defer r.Close()
	if id := r.Allocate(); id != ids[0] {
		t.Fatalf("reopened pager should reuse freed page %d, got %d", ids[0], id)
	}
	if r.Stats().ReuseAllocations != 1 {
		t.Fatalf("ReuseAllocations = %d, want 1", r.Stats().ReuseAllocations)
	}
}

func TestPagerChecksumQuarantinesCorruptPage(t *testing.T) {
	fs := NewMemVFS()
	p := mustOpen(t, fs, "t.db", PageSize1K, testPagerOptions())
	id := p.Allocate()
	if err := p.Write(id, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte behind the pager's back.
	f, _ := fs.Open("t.db")
	if _, err := f.WriteAt([]byte{0xFF}, int64(id)*int64(frameHeaderSize+PageSize1K)+frameHeaderSize); err != nil {
		t.Fatal(err)
	}
	_, err := p.Read(id)
	if !errors.Is(err, ErrCorruptPage) || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("corrupt read error: %v", err)
	}
	// The page is quarantined and reported, and stays that way without
	// touching the disk again.
	if q := p.Quarantined(); len(q) != 1 || q[0] != id {
		t.Fatalf("Quarantined() = %v", q)
	}
	if _, err2 := p.Read(id); !errors.Is(err2, ErrQuarantined) {
		t.Fatalf("second read: %v", err2)
	}
	// Rewriting the page clears the quarantine.
	if err := p.Write(id, []byte("restored")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if buf, err := p.Read(id); err != nil || string(buf) != "restored" {
		t.Fatalf("after rewrite: %q, %v", buf, err)
	}
	if len(p.Quarantined()) != 0 {
		t.Fatalf("quarantine not cleared: %v", p.Quarantined())
	}
}

func TestPagerReadRetriesTransientErrors(t *testing.T) {
	base := NewMemVFS()
	p := mustOpen(t, base, "t.db", PageSize1K, testPagerOptions())
	id := p.Allocate()
	if err := p.Write(id, []byte("flaky")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Every second read fails: each frame read needs one retry and succeeds.
	fs := NewFaultFS(base, FaultScript{ReadErrEvery: 2})
	var slept []time.Duration
	opts := PagerOptions{Sleep: func(d time.Duration) { slept = append(slept, d) }}
	q := mustOpen(t, fs, "t.db", PageSize1K, opts)
	defer q.Close()
	if buf, err := q.Read(id); err != nil || string(buf) != "flaky" {
		t.Fatalf("read through transient faults: %q, %v", buf, err)
	}
	if q.Stats().ReadRetries == 0 {
		t.Fatal("no retries recorded")
	}
	if len(slept) == 0 {
		t.Fatal("retries did not back off")
	}
	for i := 1; i < len(slept); i++ {
		if slept[i] < slept[i-1] && slept[i] != slept[0] {
			// Backoff resets per read call; within a call it must not shrink.
			continue
		}
	}
}

func TestPagerReadExhaustionSurfaces(t *testing.T) {
	base := NewMemVFS()
	p := mustOpen(t, base, "t.db", PageSize1K, testPagerOptions())
	id := p.Allocate()
	if err := p.Write(id, []byte("dead sector")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	q := mustOpen(t, base, "t.db", PageSize1K, testPagerOptions())
	defer q.Close()
	// Every read fails from here on: retries must exhaust and the error must
	// surface with both the retry marker and the injected cause.
	q.db = &failingFile{q.db}
	_, err := q.Read(id)
	if !errors.Is(err, ErrReadExhausted) || !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("exhausted read error: %v", err)
	}
	if q.Stats().ReadRetries != int64(q.opts.ReadRetries) {
		t.Fatalf("retries = %d, want %d", q.Stats().ReadRetries, q.opts.ReadRetries)
	}
}

// failingFile fails every read; writes pass through.
type failingFile struct{ File }

func (f *failingFile) ReadAt(p []byte, off int64) (int, error) { return 0, ErrInjectedRead }

func TestPagerCommitRetryAfterSyncFailure(t *testing.T) {
	base := NewMemVFS()
	p := mustOpen(t, base, "t.db", PageSize1K, PagerOptions{Sleep: noSleep, CheckpointEvery: -1})
	id := p.Allocate()
	if err := p.Write(id, []byte("persist me")); err != nil {
		t.Fatal(err)
	}
	// The first commit's WAL fsync dies; the staged state must survive the
	// failure so a retry can land it.
	p.wal = &failingSyncs{File: p.wal, fails: 1}
	if _, err := p.Commit(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("commit with dead fsync: %v", err)
	}
	seq, err := p.Commit()
	if err != nil {
		t.Fatalf("retried commit: %v", err)
	}
	if seq != 1 {
		t.Fatalf("committed seq %d, want 1", seq)
	}
	if buf, err := p.Read(id); err != nil || string(buf) != "persist me" {
		t.Fatalf("after retried commit: %q, %v", buf, err)
	}
}

func TestPagerBrokenAfterWriteBackFailure(t *testing.T) {
	base := NewMemVFS()
	p := mustOpen(t, base, "t.db", PageSize1K, PagerOptions{Sleep: noSleep, CheckpointEvery: -1})
	id := p.Allocate()
	if err := p.Write(id, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// Break the db handle: the next commit's WAL append succeeds but the
	// write-back fails, leaving the main file behind the WAL.
	p.db = &failingWrites{p.db}
	if err := p.Write(id, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(); !errors.Is(err, ErrPagerBroken) {
		t.Fatalf("commit after write-back failure: %v", err)
	}
	if _, err := p.Read(id); !errors.Is(err, ErrPagerBroken) {
		t.Fatalf("reads must refuse stale state: %v", err)
	}
	// Reopening replays the WAL: v2 was durable the moment the WAL synced.
	q := mustOpen(t, base, "t.db", PageSize1K, testPagerOptions())
	defer q.Close()
	if buf, err := q.Read(id); err != nil || string(buf) != "v2" {
		t.Fatalf("recovered page: %q, %v", buf, err)
	}
}

func TestPagerCheckpointFailureIsStickyAndRecoverable(t *testing.T) {
	base := NewMemVFS()
	p := mustOpen(t, base, "t.db", PageSize1K, PagerOptions{Sleep: noSleep, CheckpointEvery: 1})
	id := p.Allocate()
	if err := p.Write(id, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	p.SetRoot(id)
	// The commit's WAL append and fsync succeed; the embedded auto-checkpoint
	// dies on the main-file fsync.  The transaction is durable, so Commit must
	// report success — and the checkpoint failure must break the pager.
	p.db = &failingSyncs{File: p.db, fails: 1}
	seq, err := p.Commit()
	if err != nil {
		t.Fatalf("durable commit reported failure: %v", err)
	}
	if seq != 1 {
		t.Fatalf("committed seq %d, want 1", seq)
	}
	// Every mutation refuses work on the broken pager: nothing staged after
	// the break could ever commit.
	if _, err := p.Commit(); !errors.Is(err, ErrPagerBroken) {
		t.Fatalf("commit on broken pager: %v", err)
	}
	if err := p.Checkpoint(); !errors.Is(err, ErrPagerBroken) {
		t.Fatalf("checkpoint on broken pager: %v", err)
	}
	if got := p.Allocate(); got != InvalidPage {
		t.Fatalf("Allocate on broken pager returned %d, want InvalidPage", got)
	}
	p.Free(id)
	if p.Len() != 1 {
		t.Fatalf("Free mutated a broken pager: Len = %d", p.Len())
	}
	p.SetRoot(InvalidPage)
	if p.Root() != id {
		t.Fatalf("SetRoot mutated a broken pager: root = %d", p.Root())
	}
	// The committed transaction survives a power cut: the WAL was synced
	// before the checkpoint began, so recovery replays it.
	base.Crash(11)
	q := mustOpen(t, base, "t.db", PageSize1K, testPagerOptions())
	defer q.Close()
	if q.Seq() != 1 {
		t.Fatalf("recovered seq %d, want 1", q.Seq())
	}
	if buf, err := q.Read(id); err != nil || string(buf) != "v1" {
		t.Fatalf("recovered page: %q, %v", buf, err)
	}
}

func TestPagerNoLossAfterWALResetFailure(t *testing.T) {
	// The regression this pins: a checkpoint whose WAL reset fails used to
	// leave walSize stale, so the next commit appended past a gap the
	// recovery scan stops at — committed transactions silently vanished.
	// The failure must instead be sticky until a reopen.
	base := NewMemVFS()
	p := mustOpen(t, base, "t.db", PageSize1K, PagerOptions{Sleep: noSleep, CheckpointEvery: 1})
	id := p.Allocate()
	if err := p.Write(id, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Sync #1 is the group commit (must succeed); sync #2 is the WAL reset
	// of the embedded auto-checkpoint (dies).
	p.wal = &syncFailsOn{File: p.wal, n: 2}
	if _, err := p.Commit(); err != nil {
		t.Fatalf("durable commit reported failure: %v", err)
	}
	// The pager must refuse further commits rather than append at the stale
	// WAL offset.
	if err := p.Write(id, []byte("v2")); !errors.Is(err, ErrPagerBroken) {
		t.Fatalf("write on broken pager: %v", err)
	}
	// Reopening re-derives the WAL state; new commits land and recover.
	q := mustOpen(t, base, "t.db", PageSize1K, testPagerOptions())
	if buf, err := q.Read(id); err != nil || string(buf) != "v1" {
		t.Fatalf("page after reopen: %q, %v", buf, err)
	}
	if err := q.Write(id, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, base, "t.db", PageSize1K, testPagerOptions())
	defer r.Close()
	if buf, err := r.Read(id); err != nil || string(buf) != "v2" {
		t.Fatalf("commit after recovery lost: %q, %v", buf, err)
	}
}

func TestPagerFullReadWithEOFIsSuccess(t *testing.T) {
	// io.ReaderAt allows (len(p), io.EOF) for a read ending exactly at
	// end-of-file; the retry loop must treat a full buffer as success.
	base := NewMemVFS()
	p := mustOpen(t, base, "t.db", PageSize1K, testPagerOptions())
	id := p.Allocate()
	if err := p.Write(id, []byte("edge")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	q := mustOpen(t, base, "t.db", PageSize1K, testPagerOptions())
	defer q.Close()
	q.db = eofFile{q.db}
	if buf, err := q.Read(id); err != nil || string(buf) != "edge" {
		t.Fatalf("full read with io.EOF: %q, %v", buf, err)
	}
	if n := q.Stats().ReadRetries; n != 0 {
		t.Fatalf("full read with io.EOF burned %d retries", n)
	}
}

// eofFile returns io.EOF alongside every full read, as io.ReaderAt permits.
type eofFile struct{ File }

func (f eofFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	if err == nil && n == len(p) {
		return n, io.EOF
	}
	return n, err
}

// failingSyncs fails the first `fails` Sync calls, then passes through.
type failingSyncs struct {
	File
	fails int
}

func (f *failingSyncs) Sync() error {
	if f.fails > 0 {
		f.fails--
		return ErrInjectedSync
	}
	return f.File.Sync()
}

// syncFailsOn fails the n-th Sync call (1-based) and passes the rest through.
type syncFailsOn struct {
	File
	n, count int
}

func (f *syncFailsOn) Sync() error {
	f.count++
	if f.count == f.n {
		return ErrInjectedSync
	}
	return f.File.Sync()
}

// failingWrites fails every write; reads pass through.
type failingWrites struct{ File }

func (f *failingWrites) WriteAt(p []byte, off int64) (int, error) { return 0, ErrInjectedWrite }

func TestPagerErrors(t *testing.T) {
	p := mustOpen(t, NewMemVFS(), "t.db", PageSize1K, testPagerOptions())
	defer p.Close()
	if err := p.Write(99, []byte("x")); !errors.Is(err, ErrUnknownPage) {
		t.Fatalf("write to unallocated page: %v", err)
	}
	if _, err := p.Read(99); !errors.Is(err, ErrUnknownPage) {
		t.Fatalf("read of unallocated page: %v", err)
	}
	id := p.Allocate()
	if err := p.Write(id, make([]byte, PageSize1K+1)); !errors.Is(err, ErrPageOverflow) {
		t.Fatalf("oversized write: %v", err)
	}
	p.Free(99) // no-op, must not panic
	p.Free(id)
	p.Free(id) // double free is a no-op
	if _, err := OpenPager(NewMemVFS(), "tiny.db", 8, testPagerOptions()); err == nil {
		t.Fatal("tiny page size accepted")
	}
}

func TestWALCodecRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendWALHeader(buf, PageSize1K)
	buf = appendPageRecord(buf, 7, []byte("page seven"))
	buf = appendPageRecord(buf, 9, []byte("page nine"))
	buf = appendCommitRecord(buf, walCommit{Seq: 3, Next: 10, FreeHead: 2, Root: 7, Pages: 2})

	var gotPages []walPage
	var gotCommit walCommit
	n, err := scanWAL(buf, PageSize1K, func(pages []walPage, c walCommit) error {
		gotPages = append(gotPages, pages...)
		gotCommit = c
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("scan: %d txns, %v", n, err)
	}
	if len(gotPages) != 2 || gotPages[0].ID != 7 || string(gotPages[1].Data) != "page nine" {
		t.Fatalf("pages: %+v", gotPages)
	}
	if gotCommit.Seq != 3 || gotCommit.Root != 7 || gotCommit.FreeHead != 2 || gotCommit.Next != 10 {
		t.Fatalf("commit: %+v", gotCommit)
	}
}

func TestWALScanStopsAtTornTail(t *testing.T) {
	var buf []byte
	buf = appendWALHeader(buf, PageSize1K)
	buf = appendPageRecord(buf, 1, []byte("committed"))
	buf = appendCommitRecord(buf, walCommit{Seq: 1, Next: 2, Pages: 1})
	whole := len(buf)
	buf = appendPageRecord(buf, 2, []byte("torn away"))
	buf = appendCommitRecord(buf, walCommit{Seq: 2, Next: 3, Pages: 1})

	for cut := whole; cut < len(buf); cut++ {
		n, err := scanWAL(buf[:cut], PageSize1K, func([]walPage, walCommit) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n != 1 {
			t.Fatalf("cut %d: %d txns replayed, want 1 (the committed prefix)", cut, n)
		}
	}
	// A page record without its commit is not replayed either.
	n, _ := scanWAL(buf[:whole+walRecHeaderSize+pageRecOverhead+9], PageSize1K,
		func([]walPage, walCommit) error { return nil })
	if n != 1 {
		t.Fatalf("uncommitted page record replayed: %d txns", n)
	}
	// A flipped bit in the committed region ends the scan at the flip.
	evil := append([]byte(nil), buf[:whole]...)
	evil[walHeaderSize+walRecHeaderSize] ^= 0x01
	if n, _ := scanWAL(evil, PageSize1K, func([]walPage, walCommit) error { return nil }); n != 0 {
		t.Fatalf("corrupted record replayed: %d txns", n)
	}
}
