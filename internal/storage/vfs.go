package storage

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
)

// VFS is the seam between the pager and the operating system: everything the
// durable storage layer does to a disk goes through this interface.  The
// production implementation is OSVFS; MemVFS simulates a disk with a
// power-cut model for crash testing, and FaultFS wraps MemVFS to inject
// faults deterministically.
type VFS interface {
	// Open opens the named file for reading and writing, creating it empty
	// if it does not exist.
	Open(name string) (File, error)
	// Remove deletes the named file.  Removing a missing file is an error.
	Remove(name string) error
}

// File is the subset of file operations the pager needs.  All writes are
// positioned (no seek state), mirroring the pager's fixed-size frame layout;
// durability is explicit through Sync, exactly the contract the WAL protocol
// is written against.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync forces everything written so far to durable storage.
	Sync() error
	// Truncate changes the file size.
	Truncate(size int64) error
	// Size returns the current file size in bytes.
	Size() (int64, error)
	// Close releases the handle.  It does not imply Sync.
	Close() error
}

// OSVFS is the real-disk implementation of VFS on top of the os package.
type OSVFS struct{}

// Open implements VFS.
func (OSVFS) Open(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements VFS.
func (OSVFS) Remove(name string) error { return os.Remove(name) }

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ---------------------------------------------------------------------------
// MemVFS: an in-memory disk with an explicit durability model.
// ---------------------------------------------------------------------------

// MemVFS simulates a disk for crash testing.  Every file keeps two images:
// the durable one (what survives a power cut) and the current one (what reads
// observe).  Writes and truncates are applied to the current image and queued
// in a single VFS-wide pending log; Sync promotes a file's pending operations
// into its durable image.  Crash throws away a deterministic suffix of the
// pending log — possibly tearing the last surviving write in half, which is
// exactly the torn-page scenario the pager's checksums must catch — and
// resets every file to the resulting durable state.  Note the real-disk
// semantics: an unsynced write is not guaranteed to die in a crash — it may
// survive wholly, survive torn, or vanish.  Only Sync guarantees survival,
// which is precisely the contract the WAL protocol must be correct against.
//
// MemVFS is safe for concurrent use.
type MemVFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	pending []memOp
}

type memFile struct {
	durable []byte
	current []byte
}

type memOp struct {
	file     string
	truncate bool
	off      int64 // truncate: the new size
	data     []byte
}

// NewMemVFS returns an empty in-memory disk.
func NewMemVFS() *MemVFS {
	return &MemVFS{files: make(map[string]*memFile)}
}

// Open implements VFS.
func (v *MemVFS) Open(name string) (File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.files[name]; !ok {
		v.files[name] = &memFile{}
	}
	return &memHandle{vfs: v, name: name}, nil
}

// Remove implements VFS.
func (v *MemVFS) Remove(name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.files[name]; !ok {
		return fmt.Errorf("memvfs: remove %s: %w", name, os.ErrNotExist)
	}
	delete(v.files, name)
	kept := v.pending[:0]
	for _, op := range v.pending {
		if op.file != name {
			kept = append(kept, op)
		}
	}
	v.pending = kept
	return nil
}

// Crash simulates a power cut: a deterministic (seeded) prefix of the pending
// operations survives, the operation at the cut — if it is a write — survives
// only partially (a torn write), and everything after it is lost.  All files
// are reset to the resulting durable images and the pending log is cleared.
func (v *MemVFS) Crash(seed int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	rng := rand.New(rand.NewSource(seed))
	cut := 0
	if len(v.pending) > 0 {
		cut = rng.Intn(len(v.pending) + 1)
	}
	for i := 0; i < cut; i++ {
		v.applyToDurable(v.pending[i], -1)
	}
	if cut < len(v.pending) {
		if op := v.pending[cut]; !op.truncate && len(op.data) > 0 {
			// The interrupted write reached the platter only in part.
			v.applyToDurable(op, rng.Intn(len(op.data)))
		}
	}
	for _, f := range v.files {
		f.current = append(f.current[:0:0], f.durable...)
	}
	v.pending = v.pending[:0]
}

// applyToDurable replays one pending operation onto its file's durable image;
// limit >= 0 truncates a write to its first limit bytes (a torn write).
func (v *MemVFS) applyToDurable(op memOp, limit int) {
	f, ok := v.files[op.file]
	if !ok {
		return
	}
	if op.truncate {
		f.durable = resize(f.durable, op.off)
		return
	}
	data := op.data
	if limit >= 0 && limit < len(data) {
		data = data[:limit]
	}
	if end := op.off + int64(len(data)); int64(len(f.durable)) < end {
		f.durable = resize(f.durable, end)
	}
	copy(f.durable[op.off:], data)
}

func resize(b []byte, size int64) []byte {
	n := int(size)
	if n <= len(b) {
		return b[:n]
	}
	return append(b, make([]byte, n-len(b))...)
}

type memHandle struct {
	vfs  *MemVFS
	name string
}

func (h *memHandle) file() (*memFile, error) {
	f, ok := h.vfs.files[h.name]
	if !ok {
		return nil, fmt.Errorf("memvfs: %s: %w", h.name, os.ErrNotExist)
	}
	return f, nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.vfs.mu.Lock()
	defer h.vfs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	if off >= int64(len(f.current)) {
		return 0, io.EOF
	}
	n := copy(p, f.current[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.vfs.mu.Lock()
	defer h.vfs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	if end := off + int64(len(p)); int64(len(f.current)) < end {
		f.current = resize(f.current, end)
	}
	copy(f.current[off:], p)
	h.vfs.pending = append(h.vfs.pending, memOp{
		file: h.name, off: off, data: append([]byte(nil), p...),
	})
	return len(p), nil
}

func (h *memHandle) Truncate(size int64) error {
	h.vfs.mu.Lock()
	defer h.vfs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	f.current = resize(f.current, size)
	h.vfs.pending = append(h.vfs.pending, memOp{file: h.name, truncate: true, off: size})
	return nil
}

func (h *memHandle) Sync() error {
	h.vfs.mu.Lock()
	defer h.vfs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	// The file's current image becomes durable; its pending operations are
	// settled and leave the log (other files' operations keep their order).
	kept := h.vfs.pending[:0]
	for _, op := range h.vfs.pending {
		if op.file != h.name {
			kept = append(kept, op)
		}
	}
	h.vfs.pending = kept
	f.durable = append(f.durable[:0:0], f.current...)
	return nil
}

func (h *memHandle) Size() (int64, error) {
	h.vfs.mu.Lock()
	defer h.vfs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	return int64(len(f.current)), nil
}

func (h *memHandle) Close() error { return nil }
