package storage

import (
	"errors"
	"fmt"
	"sync"
)

// Injected fault errors.  ErrInjectedCrash marks the scripted power cut; the
// transient errors model the flaky reads, failed fsyncs and short writes a
// real disk produces under load.
var (
	ErrInjectedCrash = errors.New("storage: injected crash point")
	ErrInjectedRead  = errors.New("storage: injected read error")
	ErrInjectedSync  = errors.New("storage: injected fsync failure")
	ErrInjectedWrite = errors.New("storage: injected short write")
)

// FaultScript configures the deterministic fault injection of a FaultFS.
// All schedules count operations across every file of the FS, so a script
// replayed against the same workload always fires at the same points.
type FaultScript struct {
	// CrashAtOp is the 1-based operation index at which the power fails: the
	// operation returns ErrInjectedCrash without touching the disk, the
	// underlying MemVFS crashes (a seeded prefix of the unsynced writes
	// survives, the last one possibly torn) and every later operation fails
	// too.  Zero disables the crash point.
	CrashAtOp int64
	// TornSeed seeds the crash's torn-write cut.
	TornSeed int64
	// ReadErrEvery makes every k-th read attempt fail with ErrInjectedRead.
	// 1 fails every read (modelling a dead sector: retries are exhausted and
	// the error must surface); larger values model transient errors that a
	// retry recovers from.
	ReadErrEvery int64
	// SyncErrEvery makes every k-th Sync fail with ErrInjectedSync without
	// making anything durable.
	SyncErrEvery int64
	// WriteShortEvery makes every k-th write a short write: only half the
	// buffer reaches the file and ErrInjectedWrite is returned.
	WriteShortEvery int64
}

// FaultFS wraps a MemVFS and injects the scripted faults.  The pager opened
// on top of it must detect, retry or surface every one of them; the
// crash-recovery harness (internal/experiments) uses the operation counter to
// enumerate crash points covering the entire WAL protocol.
type FaultFS struct {
	mu      sync.Mutex
	base    *MemVFS
	script  FaultScript
	ops     int64
	reads   int64
	writes  int64
	syncs   int64
	crashed bool
}

// NewFaultFS wraps base with the given script.
func NewFaultFS(base *MemVFS, script FaultScript) *FaultFS {
	return &FaultFS{base: base, script: script}
}

// SetScript replaces the fault script mid-run.  The operation counters keep
// counting, so schedules like ReadErrEvery stay deterministic across the
// switch; a fired crash is not un-fired.  The server torture harness uses
// this to drive phased workloads (clean, then flaky reads, then a failing
// sync) over one filesystem.
func (f *FaultFS) SetScript(script FaultScript) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.script = script
}

// Ops returns the number of file operations observed so far (including the
// failing one, if the crash fired).
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the scripted crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Base returns the wrapped MemVFS; after a crash the harness reopens the
// pager directly on it to recover.
func (f *FaultFS) Base() *MemVFS { return f.base }

// step accounts one operation and fires the crash point if it is due.
func (f *FaultFS) step() error {
	if f.crashed {
		return ErrInjectedCrash
	}
	f.ops++
	if f.script.CrashAtOp > 0 && f.ops >= f.script.CrashAtOp {
		f.crashed = true
		f.base.Crash(f.script.TornSeed ^ f.script.CrashAtOp)
		return ErrInjectedCrash
	}
	return nil
}

// Open implements VFS.
func (f *FaultFS) Open(name string) (File, error) {
	base, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, f: base}, nil
}

// Remove implements VFS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	return f.base.Remove(name)
}

type faultFile struct {
	fs   *FaultFS
	name string
	f    File
}

func (x *faultFile) ReadAt(p []byte, off int64) (int, error) {
	x.fs.mu.Lock()
	if err := x.fs.step(); err != nil {
		x.fs.mu.Unlock()
		return 0, err
	}
	x.fs.reads++
	if k := x.fs.script.ReadErrEvery; k > 0 && x.fs.reads%k == 0 {
		x.fs.mu.Unlock()
		return 0, fmt.Errorf("%w: %s at %d", ErrInjectedRead, x.name, off)
	}
	x.fs.mu.Unlock()
	return x.f.ReadAt(p, off)
}

func (x *faultFile) WriteAt(p []byte, off int64) (int, error) {
	x.fs.mu.Lock()
	if err := x.fs.step(); err != nil {
		x.fs.mu.Unlock()
		return 0, err
	}
	x.fs.writes++
	short := false
	if k := x.fs.script.WriteShortEvery; k > 0 && x.fs.writes%k == 0 {
		short = true
	}
	x.fs.mu.Unlock()
	if short {
		n, err := x.f.WriteAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: %s at %d (%d of %d bytes)", ErrInjectedWrite, x.name, off, n, len(p))
	}
	return x.f.WriteAt(p, off)
}

func (x *faultFile) Sync() error {
	x.fs.mu.Lock()
	if err := x.fs.step(); err != nil {
		x.fs.mu.Unlock()
		return err
	}
	x.fs.syncs++
	if k := x.fs.script.SyncErrEvery; k > 0 && x.fs.syncs%k == 0 {
		x.fs.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrInjectedSync, x.name)
	}
	x.fs.mu.Unlock()
	return x.f.Sync()
}

func (x *faultFile) Truncate(size int64) error {
	x.fs.mu.Lock()
	if err := x.fs.step(); err != nil {
		x.fs.mu.Unlock()
		return err
	}
	x.fs.mu.Unlock()
	return x.f.Truncate(size)
}

func (x *faultFile) Size() (int64, error) {
	// Size is metadata, not disk traffic: it does not advance the fault
	// clock, so crash-point enumeration covers only operations that move or
	// persist bytes.
	x.fs.mu.Lock()
	if x.fs.crashed {
		x.fs.mu.Unlock()
		return 0, ErrInjectedCrash
	}
	x.fs.mu.Unlock()
	return x.f.Size()
}

func (x *faultFile) Close() error { return x.f.Close() }
