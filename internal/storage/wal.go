package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Write-ahead log format.
//
// The WAL is the redo log of the pager: a transaction is a run of page-image
// records followed by one commit record carrying the allocator metadata.  A
// transaction is durable exactly when its commit record is fully on disk —
// the pager fsyncs the WAL once per commit batch (group commit), only then
// applies the images to the main file, and never fsyncs the main file outside
// a checkpoint.  Recovery scans the WAL from the start, replays every
// complete transaction in order and stops at the first record whose checksum
// or length does not verify: that is the torn tail of the crashed append, and
// everything before it is exactly the committed prefix.
//
//	header:  magic | version | pageSize | reserved          (16 bytes)
//	record:  crc32 | length  | payload                      (8-byte header)
//	payload: type  | body
//
// The record checksum covers the payload, so a torn record, a bit flip and a
// stale tail from a previous WAL generation are all detected the same way.

const (
	walMagic   uint32 = 0x574A4C31 // "WJL1"
	walVersion uint32 = 1

	walHeaderSize    = 16
	walRecHeaderSize = 8

	recPage   byte = 1
	recCommit byte = 2

	pageRecOverhead   = 1 + 4 + 4 // type, page id, payload length
	commitRecBodySize = 1 + 8 + 4 + 4 + 4 + 4
)

// Errors of the WAL codec and recovery scan.
var (
	ErrWALHeader = errors.New("storage: bad WAL header")
	ErrWALRecord = errors.New("storage: bad WAL record")
)

// walCommit is the metadata a commit record carries: the transaction
// sequence number and the allocator state (next unallocated page, head of the
// free-page chain, the client root pointer) as of that transaction.
type walCommit struct {
	Seq      uint64
	Next     PageID
	FreeHead PageID
	Root     PageID
	Pages    uint32 // number of page records in the transaction (sanity check)
}

// appendWALHeader appends the WAL file header.
func appendWALHeader(dst []byte, pageSize int) []byte {
	var h [walHeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:], walMagic)
	binary.LittleEndian.PutUint32(h[4:], walVersion)
	binary.LittleEndian.PutUint32(h[8:], uint32(pageSize))
	return append(dst, h[:]...)
}

// checkWALHeader verifies the WAL file header against the pager's page size.
func checkWALHeader(buf []byte, pageSize int) error {
	if len(buf) < walHeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrWALHeader, len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf[0:]); m != walMagic {
		return fmt.Errorf("%w: magic %#x", ErrWALHeader, m)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != walVersion {
		return fmt.Errorf("%w: version %d", ErrWALHeader, v)
	}
	if ps := binary.LittleEndian.Uint32(buf[8:]); int(ps) != pageSize {
		return fmt.Errorf("%w: page size %d, want %d", ErrWALHeader, ps, pageSize)
	}
	return nil
}

// appendRecord appends one checksummed record framing the given payload.
func appendRecord(dst, payload []byte) []byte {
	var h [walRecHeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:], Checksum(payload))
	binary.LittleEndian.PutUint32(h[4:], uint32(len(payload)))
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// appendPageRecord appends a page-image record: on replay the payload is
// written back to the page's frame.
func appendPageRecord(dst []byte, id PageID, data []byte) []byte {
	payload := make([]byte, pageRecOverhead+len(data))
	payload[0] = recPage
	binary.LittleEndian.PutUint32(payload[1:], uint32(id))
	binary.LittleEndian.PutUint32(payload[5:], uint32(len(data)))
	copy(payload[9:], data)
	return appendRecord(dst, payload)
}

// appendCommitRecord appends the commit record sealing a transaction.
func appendCommitRecord(dst []byte, c walCommit) []byte {
	payload := make([]byte, commitRecBodySize)
	payload[0] = recCommit
	binary.LittleEndian.PutUint64(payload[1:], c.Seq)
	binary.LittleEndian.PutUint32(payload[9:], uint32(c.Next))
	binary.LittleEndian.PutUint32(payload[13:], uint32(c.FreeHead))
	binary.LittleEndian.PutUint32(payload[17:], uint32(c.Root))
	binary.LittleEndian.PutUint32(payload[21:], c.Pages)
	return appendRecord(dst, payload)
}

// parseRecord splits the next record off buf.  It returns the verified
// payload and the remaining bytes, or an error for a torn, truncated or
// corrupted record (recovery treats any error as the end of the log).
// maxPayload bounds the declared length so a corrupt header cannot demand an
// absurd allocation.
func parseRecord(buf []byte, maxPayload int) (payload, rest []byte, err error) {
	if len(buf) < walRecHeaderSize {
		return nil, nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrWALRecord, len(buf))
	}
	crc := binary.LittleEndian.Uint32(buf[0:])
	length := int(binary.LittleEndian.Uint32(buf[4:]))
	if length < 1 || length > maxPayload {
		return nil, nil, fmt.Errorf("%w: payload length %d", ErrWALRecord, length)
	}
	if len(buf) < walRecHeaderSize+length {
		return nil, nil, fmt.Errorf("%w: torn payload (%d of %d bytes)",
			ErrWALRecord, len(buf)-walRecHeaderSize, length)
	}
	payload = buf[walRecHeaderSize : walRecHeaderSize+length]
	if got := Checksum(payload); got != crc {
		return nil, nil, fmt.Errorf("%w: checksum %#x, want %#x", ErrWALRecord, got, crc)
	}
	return payload, buf[walRecHeaderSize+length:], nil
}

// parsePageRecord decodes a verified page-image payload.
func parsePageRecord(payload []byte, pageSize int) (PageID, []byte, error) {
	if len(payload) < pageRecOverhead || payload[0] != recPage {
		return 0, nil, fmt.Errorf("%w: malformed page record", ErrWALRecord)
	}
	id := PageID(binary.LittleEndian.Uint32(payload[1:]))
	n := int(binary.LittleEndian.Uint32(payload[5:]))
	if n != len(payload)-pageRecOverhead || n > pageSize {
		return 0, nil, fmt.Errorf("%w: page record length %d", ErrWALRecord, n)
	}
	if id == InvalidPage {
		return 0, nil, fmt.Errorf("%w: page record for invalid page", ErrWALRecord)
	}
	return id, payload[pageRecOverhead:], nil
}

// parseCommitRecord decodes a verified commit payload.
func parseCommitRecord(payload []byte) (walCommit, error) {
	if len(payload) != commitRecBodySize || payload[0] != recCommit {
		return walCommit{}, fmt.Errorf("%w: malformed commit record", ErrWALRecord)
	}
	return walCommit{
		Seq:      binary.LittleEndian.Uint64(payload[1:]),
		Next:     PageID(binary.LittleEndian.Uint32(payload[9:])),
		FreeHead: PageID(binary.LittleEndian.Uint32(payload[13:])),
		Root:     PageID(binary.LittleEndian.Uint32(payload[17:])),
		Pages:    binary.LittleEndian.Uint32(payload[21:]),
	}, nil
}

// walPage is one page image of a transaction being replayed.
type walPage struct {
	ID   PageID
	Data []byte
}

// scanWAL replays the committed transactions of a WAL image.  apply is called
// once per complete transaction, in order.  The scan stops silently at the
// first torn or corrupt record — the defining property of redo recovery: the
// committed prefix is replayed, the crashed suffix is discarded.  It returns
// the number of transactions applied.
func scanWAL(buf []byte, pageSize int, apply func(pages []walPage, c walCommit) error) (int, error) {
	if err := checkWALHeader(buf, pageSize); err != nil {
		if len(buf) == 0 {
			return 0, nil // a never-created WAL: nothing to recover
		}
		return 0, err
	}
	rest := buf[walHeaderSize:]
	maxPayload := pageRecOverhead + pageSize
	applied := 0
	var txn []walPage
	for len(rest) > 0 {
		payload, r, err := parseRecord(rest, maxPayload)
		if err != nil {
			return applied, nil // torn tail: the crashed append ends here
		}
		rest = r
		switch payload[0] {
		case recPage:
			id, data, err := parsePageRecord(payload, pageSize)
			if err != nil {
				return applied, nil
			}
			txn = append(txn, walPage{ID: id, Data: append([]byte(nil), data...)})
		case recCommit:
			c, err := parseCommitRecord(payload)
			if err != nil {
				return applied, nil
			}
			if int(c.Pages) != len(txn) {
				return applied, nil // commit does not match its transaction
			}
			if err := apply(txn, c); err != nil {
				return applied, err
			}
			applied++
			txn = txn[:0]
		default:
			return applied, nil
		}
	}
	return applied, nil
}
