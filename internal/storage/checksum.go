package storage

import "hash/crc32"

// castagnoli is the CRC-32C polynomial table; Castagnoli is the checksum
// SQLite's WAL and most storage engines use because commodity CPUs compute it
// in hardware.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksumSeed is folded into every checksum so that an all-zero frame (a
// file hole, an unwritten slot, a torn write that zeroed the header) never
// validates against an all-zero stored checksum.
const checksumSeed = 0x9e3779b9

// Checksum returns the CRC-32C of b, seeded so a zeroed frame is detectably
// invalid.  It guards both page frames and WAL records.
func Checksum(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli) ^ checksumSeed
}
