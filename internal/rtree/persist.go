package rtree

import (
	"fmt"

	"repro/internal/storage"
)

// Save serialises every node of the tree into the given node store using the
// on-disk layout of internal/storage and returns the page identifier of the
// root.  Directory entries reference their child's page identifier; data
// entries carry the object identifier.  The store may be the in-memory
// PageFile or the durable Pager — Save only stages pages; durability is the
// store's concern (commit a Pager afterwards).
//
// Save demonstrates that every node fits its page; it returns an error
// otherwise, which would indicate a capacity-accounting bug.
func (t *Tree) Save(f storage.NodeStore) (storage.PageID, error) {
	if f.PageSize() != t.opts.PageSize {
		return storage.InvalidPage, fmt.Errorf("rtree: page file size %d does not match tree page size %d",
			f.PageSize(), t.opts.PageSize)
	}
	// Allocate page ids in the target file for every node first so that
	// directory entries can reference children.
	ids := make(map[*Node]storage.PageID)
	t.Walk(func(n *Node) { ids[n] = f.Allocate() })

	var saveErr error
	t.Walk(func(n *Node) {
		if saveErr != nil {
			return
		}
		dn := storage.DiskNode{Level: uint16(n.Level)}
		for _, e := range n.Entries {
			ref := uint32(e.Data)
			if e.Child != nil {
				ref = uint32(ids[e.Child])
			}
			dn.Entries = append(dn.Entries, storage.DiskEntry{Rect: e.Rect, Ref: ref})
		}
		buf, err := storage.EncodeNode(dn, t.opts.PageSize)
		if err != nil {
			saveErr = fmt.Errorf("rtree: encoding node %d: %w", n.ID, err)
			return
		}
		if err := f.Write(ids[n], buf); err != nil {
			saveErr = fmt.Errorf("rtree: writing node %d: %w", n.ID, err)
		}
	})
	if saveErr != nil {
		return storage.InvalidPage, saveErr
	}
	return ids[t.root], nil
}

// Load reconstructs a tree previously stored with Save.  opts must carry the
// same page size the tree was saved with.
//
// Load never trusts the pages it reads: a decode failure is an error, a page
// referenced twice is an error, and a child whose stored level does not sit
// exactly one below its parent is an error.  Together these bound the
// recursion by the root's level and make Load terminate on any input —
// corrupted or adversarial page graphs (cycles, diamonds, level loops)
// produce a wrapped error, never a crash or an endless walk.
func Load(f storage.NodeStore, root storage.PageID, opts Options) (*Tree, error) {
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	if f.PageSize() != t.opts.PageSize {
		return nil, fmt.Errorf("rtree: page file size %d does not match options page size %d",
			f.PageSize(), t.opts.PageSize)
	}
	visited := make(map[storage.PageID]bool)
	node, size, err := t.loadNode(f, root, -1, visited)
	if err != nil {
		return nil, err
	}
	t.root = node
	t.height = node.Level + 1
	t.size = size
	// Initialise the maintained catalog statistics with one sampling walk;
	// loading already visited every page, so this keeps CatalogStats walk-free
	// for the lifetime of the loaded tree.
	t.adoptWalkSampler()
	return t, nil
}

// loadNode reads the page with the given id, decodes it and recursively loads
// its children.  wantLevel is the level the parent expects (-1 for the root,
// whose level is read from its page); visited holds every page id already on
// or below the walked path, so a cycle or shared subtree is detected the
// moment it is re-entered.  It returns the node and the number of data
// entries below it.  Loading runs once at open, before any measured join,
// so its decodes bypass the tracker by design.
//
//repro:io-boundary
func (t *Tree) loadNode(f storage.NodeStore, id storage.PageID, wantLevel int, visited map[storage.PageID]bool) (*Node, int, error) {
	if visited[id] {
		return nil, 0, fmt.Errorf("rtree: page %d referenced twice (cycle or shared subtree): %w",
			id, storage.ErrCorruptPage)
	}
	visited[id] = true
	buf, err := f.Read(id)
	if err != nil {
		return nil, 0, fmt.Errorf("rtree: reading page %d: %w", id, err)
	}
	dn, err := storage.DecodeNode(buf, t.opts.PageSize)
	if err != nil {
		return nil, 0, fmt.Errorf("rtree: decoding page %d: %w", id, err)
	}
	if wantLevel >= 0 && int(dn.Level) != wantLevel {
		return nil, 0, fmt.Errorf("rtree: page %d stores level %d, parent expects %d: %w",
			id, dn.Level, wantLevel, storage.ErrCorruptPage)
	}
	n := t.newNode(int(dn.Level))
	if dn.Level == 0 {
		for _, de := range dn.Entries {
			n.Entries = append(n.Entries, Entry{Rect: de.Rect, Data: int32(de.Ref)})
		}
		return n, len(n.Entries), nil
	}
	total := 0
	for _, de := range dn.Entries {
		child, sub, err := t.loadNode(f, storage.PageID(de.Ref), int(dn.Level)-1, visited)
		if err != nil {
			return nil, 0, err
		}
		n.Entries = append(n.Entries, Entry{Rect: de.Rect, Child: child})
		total += sub
	}
	return n, total, nil
}
