// Package rtree implements the R-tree family of spatial access methods used
// by the paper: the R*-tree (Beckmann et al. 1990) with overlap-minimising
// subtree choice, forced re-insertion and the margin-driven split, and the
// original Guttman R-tree with quadratic split as a baseline variant.
//
// One node corresponds to one page of the simulated secondary storage
// (internal/storage); the node capacity M is derived from the page size and
// reproduces the capacities of the paper's Table 1.  Trees are built in
// memory but carry page identifiers so that the join algorithms can charge
// node accesses to a shared LRU buffer (internal/buffer.Tracker), which is
// exactly the I/O model of the paper's experiments.
//
//repro:measured
package rtree

import (
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/storage"
)

// Variant selects the insertion and split strategy of the tree.
type Variant int

const (
	// RStar is the R*-tree: overlap-minimising ChooseSubtree at the leaf
	// level, forced re-insertion on overflow and the topological
	// (margin/overlap driven) split.  This is the variant the paper uses.
	RStar Variant = iota
	// Quadratic is the original Guttman R-tree with quadratic split and
	// area-driven ChooseLeaf.  It serves as an ablation baseline.
	Quadratic
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case RStar:
		return "R*-tree"
	case Quadratic:
		return "R-tree(quadratic)"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// DefaultReinsertFraction is the share p of entries removed from an
// overflowing node for forced re-insertion; 30% is the value recommended by
// the R*-tree paper.
const DefaultReinsertFraction = 0.30

// chooseSubtreeCandidates bounds the number of entries examined by the
// overlap-minimising ChooseSubtree.  The R*-tree paper proposes examining
// only the 32 entries with the least area enlargement when the node capacity
// is large; this keeps insertion cost near-linear for 8 KByte pages.
const chooseSubtreeCandidates = 32

// Options configures a tree.
type Options struct {
	// PageSize is the size of one node page in bytes.  It determines the node
	// capacity M = PageSize / storage.EntrySize.  Defaults to 4 KByte.
	PageSize int
	// Variant selects the insertion/split strategy.  Defaults to RStar.
	Variant Variant
	// MinFillPercent is the minimum node fill m expressed as a percentage of
	// M.  Defaults to 40 (the R*-tree recommendation).  It is clamped so that
	// 2 <= m <= M/2 as required by the R-tree definition.
	MinFillPercent int
	// ReinsertFraction is the share of entries re-inserted on overflow
	// (R*-tree only).  Defaults to DefaultReinsertFraction.
	ReinsertFraction float64
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = storage.PageSize4K
	}
	if o.MinFillPercent == 0 {
		o.MinFillPercent = 40
	}
	if o.ReinsertFraction == 0 {
		o.ReinsertFraction = DefaultReinsertFraction
	}
	return o
}

// Entry is one slot of a node: a rectangle plus either a child node
// (directory entry) or an object identifier (data entry).
type Entry struct {
	// Rect is the minimum bounding rectangle of the child node's contents
	// (directory entry) or of the referenced spatial object (data entry).
	Rect geom.Rect
	// Child is the child node for directory entries and nil for data entries.
	Child *Node
	// Data is the object identifier for data entries.
	Data int32
}

// IsLeafEntry reports whether the entry references a spatial object rather
// than a child node.
func (e Entry) IsLeafEntry() bool { return e.Child == nil }

// Node is one node of the tree and corresponds to exactly one page.
type Node struct {
	// ID is the page identifier of the node.
	ID storage.PageID
	// Level is the node's distance from the leaf level; leaves have level 0.
	Level int
	// Entries are the node's slots, between m and M for non-root nodes.
	Entries []Entry
	// epoch is the copy-on-write epoch the node was created (or copied) in;
	// nodes whose epoch predates the tree's latest snapshot fence are shared
	// with that snapshot and must be copied before mutation (see snapshot.go).
	epoch int64
}

// IsLeaf reports whether the node is a leaf (level 0).
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// MBR returns the minimum bounding rectangle of all entries of the node.
// It panics on an empty node other than an empty tree root, which has no MBR.
func (n *Node) MBR() geom.Rect {
	if len(n.Entries) == 0 {
		return geom.Rect{}
	}
	r := n.Entries[0].Rect
	for _, e := range n.Entries[1:] {
		r = r.Union(e.Rect)
	}
	return r
}

// Item is a data rectangle to be stored in a tree, used by bulk loading and
// the data generators.
type Item struct {
	Rect geom.Rect
	Data int32
}

// treeIDs hands out process-wide unique tree identifiers so that pages of
// different trees can share one buffer without colliding.
var treeIDs atomic.Int64

// Tree is an R-tree or R*-tree over two-dimensional rectangles.
//
// A Tree is not safe for concurrent mutation; concurrent read-only queries
// are safe once construction is complete.
type Tree struct {
	id      int
	opts    Options
	maxEnt  int // M
	minEnt  int // m
	root    *Node
	height  int // number of levels; 1 while the root is a leaf
	size    int // number of data entries
	file    *storage.PageFile
	build   buildArena   // reusable construction scratch (see arena.go)
	catalog catalogCache // maintained catalog statistics (see sample.go)
	// muts counts structural mutations (inserts, deletes, buffered appends);
	// the insertion buffer's leaf hint uses it to detect that the tree changed
	// underneath a cached leaf pointer (see insertbuf.go).
	muts int64
	// cowEpoch is the copy-on-write epoch fence: nodes stamped with an older
	// epoch are shared with a published snapshot and are copied before any
	// mutation (see snapshot.go).  0 until the first Snapshot, in which case
	// every ownership check short-circuits.
	cowEpoch int64
}

type pendingEntry struct {
	entry Entry
	level int
}

// New creates an empty tree.
func New(opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	maxEnt := storage.CapacityForPage(opts.PageSize)
	if maxEnt < 4 {
		return nil, fmt.Errorf("rtree: page size %d holds only %d entries, need at least 4", opts.PageSize, maxEnt)
	}
	minEnt := maxEnt * opts.MinFillPercent / 100
	if minEnt < 2 {
		minEnt = 2
	}
	if minEnt > maxEnt/2 {
		minEnt = maxEnt / 2
	}
	if opts.ReinsertFraction < 0 || opts.ReinsertFraction > 0.5 {
		return nil, fmt.Errorf("rtree: reinsert fraction %g outside [0, 0.5]", opts.ReinsertFraction)
	}
	t := &Tree{
		id:     int(treeIDs.Add(1)),
		opts:   opts,
		maxEnt: maxEnt,
		minEnt: minEnt,
		file:   storage.NewPageFile(opts.PageSize),
		height: 1,
	}
	t.root = t.newNode(0)
	t.initCatalogMaintenance()
	t.maintAddNode(t.root)
	return t, nil
}

// MustNew is like New but panics on error; intended for tests and examples
// with known-good options.
func MustNew(opts Options) *Tree {
	t, err := New(opts)
	if err != nil {
		panic(err)
	}
	return t
}

// newNode allocates a node with a fresh page identifier, owned by the
// current write epoch.
func (t *Tree) newNode(level int) *Node {
	return &Node{ID: t.file.Allocate(), Level: level, epoch: t.cowEpoch}
}

// ID returns the process-wide unique identifier of the tree, used to
// namespace its pages in a shared buffer.
func (t *Tree) ID() int { return t.id }

// Root returns the root node.  The root is a leaf while the tree holds at
// most M entries.
func (t *Tree) Root() *Node { return t.root }

// Height returns the number of levels of the tree (1 for a single leaf).
// This matches the "height" column of the paper's Table 1.
func (t *Tree) Height() int { return t.height }

// Len returns the number of data entries stored in the tree.
func (t *Tree) Len() int { return t.size }

// MaxEntries returns the node capacity M.
func (t *Tree) MaxEntries() int { return t.maxEnt }

// MinEntries returns the minimum node fill m.
func (t *Tree) MinEntries() int { return t.minEnt }

// PageSize returns the page size in bytes of the tree's nodes.
func (t *Tree) PageSize() int { return t.opts.PageSize }

// Variant returns the tree's insertion/split strategy.
func (t *Tree) Variant() Variant { return t.opts.Variant }

// Options returns the options (with defaults applied) the tree was built
// with.
func (t *Tree) Options() Options { return t.opts }

// Bounds returns the minimum bounding rectangle of all stored data
// rectangles and false if the tree is empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return t.root.MBR(), true
}

// Stats summarises the structure of a tree; it corresponds to one row of the
// paper's Table 1.
type Stats struct {
	Height      int
	DirPages    int // |R|dir: number of directory (non-leaf) pages
	DataPages   int // |R|dat: number of data (leaf) pages
	DirEntries  int // ||R||dir
	DataEntries int // ||R||dat
	Utilization float64
}

// TotalPages returns directory plus data pages (|R|).
func (s Stats) TotalPages() int { return s.DirPages + s.DataPages }

// Stats walks the tree and returns its structural statistics.
func (t *Tree) Stats() Stats {
	s := Stats{Height: t.height}
	t.walk(t.root, func(n *Node) {
		if n.IsLeaf() {
			s.DataPages++
			s.DataEntries += len(n.Entries)
		} else {
			s.DirPages++
			s.DirEntries += len(n.Entries)
		}
	})
	capTotal := s.DataPages * t.maxEnt
	if capTotal > 0 {
		s.Utilization = float64(s.DataEntries) / float64(capTotal)
	}
	return s
}

// walk visits every node in depth-first pre-order.
func (t *Tree) walk(n *Node, fn func(*Node)) {
	fn(n)
	if n.IsLeaf() {
		return
	}
	for _, e := range n.Entries {
		t.walk(e.Child, fn)
	}
}

// Walk visits every node of the tree in depth-first pre-order.  It is
// exported for statistics, validation and persistence.
func (t *Tree) Walk(fn func(*Node)) { t.walk(t.root, fn) }

// String implements fmt.Stringer with a compact summary.
func (t *Tree) String() string {
	s := t.Stats()
	return fmt.Sprintf("%s{pageSize=%d M=%d m=%d height=%d entries=%d dirPages=%d dataPages=%d}",
		t.opts.Variant, t.opts.PageSize, t.maxEnt, t.minEnt, t.height, t.size, s.DirPages, s.DataPages)
}
