package rtree

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// EpochReader is the measured-I/O page source for one published snapshot: it
// implements the buffer tracker's PageReader over the snapshot's epoch
// rather than the store's latest commit.  Pages whose bytes the writer has
// not touched since the snapshot are read physically through the pager —
// fault injection and I/O accounting reach them exactly as they reach the
// live tree.  Pages the writer rewrote or freed in a later commit no longer
// hold the snapshot's state on disk; those are served from a version store
// that lazily encodes the snapshot's own (immutable, copy-on-write shared)
// nodes.  Directory references in those reconstructed pages are the
// snapshot-internal node identifiers, which is exactly the keying the
// tracker reads by.
//
// Create the reader at a committed round boundary — a snapshot taken while
// the tree holds uncommitted mutations would disagree with the pages the
// pager still serves.  The reader is safe for concurrent use by many query
// workers.
type EpochReader struct {
	s    *TreeStore
	seq  uint64
	snap *Tree

	mu    sync.Mutex
	nodes map[storage.PageID]*Node  // lazily built: snapshot node id -> node
	enc   map[storage.PageID][]byte // lazily encoded version-store pages

	physical  atomic.Int64
	versioned atomic.Int64
}

// EpochReaderStats counts how the reader served its pages.
type EpochReaderStats struct {
	Physical  int64 // pages read through the pager (fault-injectable path)
	Versioned int64 // pages served from the snapshot's version store
}

// EpochReader returns a page source serving the given snapshot at the
// store's current commit sequence.  snap must be a Snapshot of the store's
// bound tree taken at this commit boundary.
func (s *TreeStore) EpochReader(snap *Tree) *EpochReader {
	return &EpochReader{s: s, seq: s.Seq(), snap: snap}
}

// Stats returns how many pages were served physically vs from the version
// store.
func (r *EpochReader) Stats() EpochReaderStats {
	return EpochReaderStats{Physical: r.physical.Load(), Versioned: r.versioned.Load()}
}

// ReadPage implements buffer.PageReader for the snapshot's epoch.  Like
// TreeStore.ReadPage it is the sanctioned physical-read path under the
// tracker: its raw pager read is the counted miss.
//
//repro:io-boundary
func (r *EpochReader) ReadPage(id storage.PageID) ([]byte, error) {
	r.s.mu.RLock()
	page, bound := r.s.byNode[id]
	stale := r.s.writtenAt[id] > r.seq
	if bound && !stale {
		// The bytes on disk still carry the snapshot's state: real read,
		// under the read lock so a concurrent commit cannot swap the page.
		defer r.s.mu.RUnlock()
		r.physical.Add(1)
		return r.s.p.Read(page)
	}
	r.s.mu.RUnlock()
	return r.versionedPage(id)
}

// versionedPage encodes (once) and serves a page the writer has moved past.
func (r *EpochReader) versionedPage(id storage.PageID) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if buf, ok := r.enc[id]; ok {
		r.versioned.Add(1)
		return buf, nil
	}
	if r.nodes == nil {
		r.nodes = make(map[storage.PageID]*Node)
		r.snap.Walk(func(n *Node) { r.nodes[n.ID] = n })
	}
	n, ok := r.nodes[id]
	if !ok {
		return nil, fmt.Errorf("rtree: node %d not in snapshot epoch %d: %w",
			id, r.seq, storage.ErrUnknownPage)
	}
	dn := storage.DiskNode{Level: uint16(n.Level)}
	for _, e := range n.Entries {
		ref := uint32(e.Data)
		if e.Child != nil {
			ref = uint32(e.Child.ID)
		}
		dn.Entries = append(dn.Entries, storage.DiskEntry{Rect: e.Rect, Ref: ref})
	}
	buf, err := storage.EncodeNode(dn, r.snap.opts.PageSize)
	if err != nil {
		return nil, fmt.Errorf("rtree: encoding snapshot node %d: %w", id, err)
	}
	if r.enc == nil {
		r.enc = make(map[storage.PageID][]byte)
	}
	r.enc[id] = buf
	r.versioned.Add(1)
	return buf, nil
}
