package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/storage"
)

func TestBulkLoadSTRStructureAndQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randomItems(rng, 10000, 0.005)
	tr, err := BulkLoadSTR(Options{PageSize: storage.PageSize1K}, items)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
	// Packed trees use far fewer data pages than dynamically built trees.
	dynamic := MustNew(Options{PageSize: storage.PageSize1K})
	dynamic.InsertItems(items)
	if packed, dyn := tr.Stats().DataPages, dynamic.Stats().DataPages; packed >= dyn {
		t.Errorf("bulk-loaded tree uses %d data pages, dynamic tree %d", packed, dyn)
	}
	// Queries agree with a linear scan.
	query := geom.Rect{XL: 0.25, YL: 0.25, XU: 0.3, YU: 0.3}
	want := 0
	for _, it := range items {
		if it.Rect.Intersects(query) {
			want++
		}
	}
	got := 0
	tr.Search(query, func(Entry) bool { got++; return true })
	if got != want {
		t.Fatalf("bulk-loaded query returned %d results, want %d", got, want)
	}
}

func TestBulkLoadHilbert(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := randomItems(rng, 5000, 0.005)
	tr, err := BulkLoadHilbert(Options{PageSize: storage.PageSize1K}, items)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
	query := geom.Rect{XL: 0.7, YL: 0.1, XU: 0.75, YU: 0.2}
	want := 0
	for _, it := range items {
		if it.Rect.Intersects(query) {
			want++
		}
	}
	got := 0
	tr.Search(query, func(Entry) bool { got++; return true })
	if got != want {
		t.Fatalf("query returned %d results, want %d", got, want)
	}
}

func TestBulkLoadEmptyAndErrors(t *testing.T) {
	tr, err := BulkLoadSTR(Options{}, nil)
	if err != nil || tr.Len() != 0 {
		t.Fatalf("empty bulk load: %v, len=%d", err, tr.Len())
	}
	if _, err := BulkLoadSTR(Options{PageSize: 16}, nil); err == nil {
		t.Fatal("expected error for tiny page")
	}
	if _, err := BulkLoadHilbert(Options{PageSize: 16}, nil); err == nil {
		t.Fatal("expected error for tiny page")
	}
	tr2, err := BulkLoadHilbert(Options{}, nil)
	if err != nil || tr2.Len() != 0 {
		t.Fatalf("empty Hilbert bulk load: %v", err)
	}
}

func TestBuildHelper(t *testing.T) {
	items := randomItems(rand.New(rand.NewSource(13)), 1000, 0.01)
	dynamic, err := Build(Options{PageSize: storage.PageSize1K}, items, false)
	if err != nil || dynamic.Len() != len(items) {
		t.Fatalf("dynamic build: %v", err)
	}
	packed, err := Build(Options{PageSize: storage.PageSize1K}, items, true)
	if err != nil || packed.Len() != len(items) {
		t.Fatalf("packed build: %v", err)
	}
	if _, err := Build(Options{PageSize: 16}, items, false); err == nil {
		t.Fatal("expected error for tiny page")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	items := randomItems(rand.New(rand.NewSource(14)), 3000, 0.01)
	tr := MustNew(Options{PageSize: storage.PageSize2K})
	tr.InsertItems(items)

	file := storage.NewPageFile(storage.PageSize2K)
	root, err := tr.Save(file)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if file.Len() != tr.Stats().TotalPages() {
		t.Fatalf("page file holds %d pages, tree has %d", file.Len(), tr.Stats().TotalPages())
	}
	loaded, err := Load(file, root, Options{PageSize: storage.PageSize2K})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != tr.Len() || loaded.Height() != tr.Height() {
		t.Fatalf("loaded tree len=%d height=%d, want len=%d height=%d",
			loaded.Len(), loaded.Height(), tr.Len(), tr.Height())
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatalf("loaded tree invariants: %v", err)
	}
	// Queries on the loaded tree agree with the original (coordinates are
	// float32-rounded on disk, so query with a slightly padded window).
	query := geom.Rect{XL: 0.4, YL: 0.4, XU: 0.6, YU: 0.6}
	origCount, loadedCount := 0, 0
	tr.Search(query, func(Entry) bool { origCount++; return true })
	loaded.Search(query, func(Entry) bool { loadedCount++; return true })
	if diff := origCount - loadedCount; diff > 2 || diff < -2 {
		t.Fatalf("query count drift after round trip: %d vs %d", origCount, loadedCount)
	}
}

func TestSaveLoadErrors(t *testing.T) {
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	file := storage.NewPageFile(storage.PageSize2K)
	if _, err := tr.Save(file); err == nil {
		t.Fatal("expected page-size mismatch error on Save")
	}
	if _, err := Load(file, 1, Options{PageSize: storage.PageSize1K}); err == nil {
		t.Fatal("expected page-size mismatch error on Load")
	}
	good := storage.NewPageFile(storage.PageSize1K)
	if _, err := Load(good, 42, Options{PageSize: storage.PageSize1K}); err == nil {
		t.Fatal("expected unknown-page error on Load")
	}
	if _, err := Load(good, 1, Options{PageSize: 16}); err == nil {
		t.Fatal("expected options error on Load")
	}
}

func TestSearchTrackedChargesAccesses(t *testing.T) {
	items := randomItems(rand.New(rand.NewSource(15)), 2000, 0.01)
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	tr.InsertItems(items)

	m := metrics.NewCollector()
	tracker := buffer.NewTracker(buffer.NewLRU(0), m, storage.PageSize1K, false)
	tr.SearchTracked(geom.Rect{XL: 0.1, YL: 0.1, XU: 0.2, YU: 0.2}, tracker, func(Entry) bool { return true })
	if m.DiskReads() == 0 {
		t.Fatal("tracked search must charge disk reads")
	}
	if m.Comparisons() == 0 {
		t.Fatal("tracked search must charge comparisons")
	}
	// A repeated identical search with a large buffer is served from it.
	m2 := metrics.NewCollector()
	tracker2 := buffer.NewTracker(buffer.NewLRU(10000), m2, storage.PageSize1K, false)
	tr.SearchTracked(geom.Rect{XL: 0.1, YL: 0.1, XU: 0.2, YU: 0.2}, tracker2, func(Entry) bool { return true })
	first := m2.DiskReads()
	tr.SearchTracked(geom.Rect{XL: 0.1, YL: 0.1, XU: 0.2, YU: 0.2}, tracker2, func(Entry) bool { return true })
	if m2.DiskReads() != first {
		t.Fatalf("second search caused %d extra disk reads", m2.DiskReads()-first)
	}
}

func TestBatchSearchSubtreeMatchesIndividualQueries(t *testing.T) {
	items := randomItems(rand.New(rand.NewSource(16)), 3000, 0.01)
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	tr.InsertItems(items)

	rng := rand.New(rand.NewSource(17))
	queries := make([]geom.Rect, 20)
	for i := range queries {
		x, y := rng.Float64(), rng.Float64()
		queries[i] = geom.Rect{XL: x, YL: y, XU: x + 0.05, YU: y + 0.05}
	}

	// Reference: individual window queries.
	want := make(map[[2]int32]bool)
	for qi, q := range queries {
		tr.Search(q, func(e Entry) bool {
			want[[2]int32{int32(qi), e.Data}] = true
			return true
		})
	}
	got := make(map[[2]int32]bool)
	tr.BatchSearchSubtree(tr.Root(), queries, nil, func(qi int, e Entry) {
		got[[2]int32{int32(qi), e.Data}] = true
	})
	if len(got) != len(want) {
		t.Fatalf("batch search found %d matches, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("batch search missing %v", k)
		}
	}

	// Policy (b) guarantee: with batching, every page of the subtree is read
	// at most once even without any buffer.
	m := metrics.NewCollector()
	tracker := buffer.NewTracker(buffer.NewLRU(0), m, storage.PageSize1K, false)
	tr.BatchSearchSubtree(tr.Root(), queries, tracker, func(int, Entry) {})
	if m.DiskReads() > int64(tr.Stats().TotalPages()) {
		t.Fatalf("batch search read %d pages, tree has only %d", m.DiskReads(), tr.Stats().TotalPages())
	}

	// Empty query list is a no-op.
	tr.BatchSearchSubtree(tr.Root(), nil, nil, func(int, Entry) { t.Fatal("unexpected callback") })
}
