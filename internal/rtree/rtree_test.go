package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

// smallOpts returns options with a small capacity so that structural code
// paths (splits, re-insertion, shrinking) are exercised with few entries.
func smallOpts(v Variant) Options {
	return Options{PageSize: 8 * storage.EntrySize, Variant: v}
}

func randomItems(rng *rand.Rand, n int, maxSide float64) []Item {
	items := make([]Item, n)
	for i := range items {
		x := rng.Float64()
		y := rng.Float64()
		items[i] = Item{
			Rect: geom.Rect{XL: x, YL: y, XU: x + rng.Float64()*maxSide, YU: y + rng.Float64()*maxSide},
			Data: int32(i),
		}
	}
	return items
}

func TestNewDefaultsAndAccessors(t *testing.T) {
	tr := MustNew(Options{})
	if tr.PageSize() != storage.PageSize4K {
		t.Errorf("default page size = %d", tr.PageSize())
	}
	if tr.MaxEntries() != 204 {
		t.Errorf("M = %d, want 204", tr.MaxEntries())
	}
	if tr.MinEntries() != 81 {
		t.Errorf("m = %d, want 81", tr.MinEntries())
	}
	if tr.Variant() != RStar {
		t.Errorf("variant = %v", tr.Variant())
	}
	if tr.Height() != 1 || tr.Len() != 0 {
		t.Errorf("empty tree height=%d len=%d", tr.Height(), tr.Len())
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree must have no bounds")
	}
	if tr.ID() == MustNew(Options{}).ID() {
		t.Error("tree ids must be unique")
	}
	if tr.String() == "" || RStar.String() == "" || Quadratic.String() == "" || Variant(9).String() == "" {
		t.Error("String methods must not be empty")
	}
	if tr.Options().MinFillPercent != 40 {
		t.Errorf("default min fill = %d", tr.Options().MinFillPercent)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Options{PageSize: 32}); err == nil {
		t.Error("expected error for page too small")
	}
	if _, err := New(Options{ReinsertFraction: 0.9}); err == nil {
		t.Error("expected error for out-of-range reinsert fraction")
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	for _, variant := range []Variant{RStar, Quadratic} {
		tr := MustNew(smallOpts(variant))
		items := randomItems(rand.New(rand.NewSource(1)), 500, 0.02)
		tr.InsertItems(items)

		if tr.Len() != len(items) {
			t.Fatalf("%v: Len = %d, want %d", variant, tr.Len(), len(items))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%v: invariants violated: %v", variant, err)
		}
		if tr.Height() < 2 {
			t.Fatalf("%v: expected the tree to have grown, height=%d", variant, tr.Height())
		}

		// Every stored rectangle must be found by a window query with itself.
		for _, it := range items[:50] {
			found := false
			tr.Search(it.Rect, func(e Entry) bool {
				if e.Data == it.Data {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("%v: item %d not found by window query", variant, it.Data)
			}
		}
	}
}

func TestWindowQueryMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randomItems(rng, 2000, 0.01)
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	tr.InsertItems(items)

	for q := 0; q < 25; q++ {
		query := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		want := make(map[int32]bool)
		for _, it := range items {
			if it.Rect.Intersects(query) {
				want[it.Data] = true
			}
		}
		got := make(map[int32]bool)
		tr.Search(query, func(e Entry) bool {
			got[e.Data] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", q, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %d: missing result %d", q, id)
			}
		}
	}
}

func TestSearchEarlyTermination(t *testing.T) {
	tr := MustNew(smallOpts(RStar))
	tr.InsertItems(randomItems(rand.New(rand.NewSource(3)), 200, 0.5))
	calls := 0
	tr.Search(geom.WorldRect(), func(Entry) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early termination delivered %d results, want 5", calls)
	}
}

func TestSearchPointAndAllAndItems(t *testing.T) {
	tr := MustNew(smallOpts(RStar))
	items := []Item{
		{Rect: geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}, Data: 1},
		{Rect: geom.Rect{XL: 2, YL: 2, XU: 3, YU: 3}, Data: 2},
	}
	tr.InsertItems(items)
	var hits []int32
	tr.SearchPoint(geom.Point{X: 0.5, Y: 0.5}, func(e Entry) bool {
		hits = append(hits, e.Data)
		return true
	})
	if len(hits) != 1 || hits[0] != 1 {
		t.Fatalf("SearchPoint hits = %v", hits)
	}
	n := 0
	tr.All(func(Entry) bool { n++; return true })
	if n != 2 {
		t.Fatalf("All visited %d entries", n)
	}
	n = 0
	tr.All(func(Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("All early termination visited %d entries", n)
	}
	if got := tr.Items(); len(got) != 2 {
		t.Fatalf("Items returned %d items", len(got))
	}
	if b, ok := tr.Bounds(); !ok || !b.Contains(items[1].Rect) {
		t.Fatalf("Bounds = %v, %v", b, ok)
	}
}

func TestStatsMatchStructure(t *testing.T) {
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	items := randomItems(rand.New(rand.NewSource(4)), 5000, 0.01)
	tr.InsertItems(items)
	s := tr.Stats()
	if s.Height != tr.Height() {
		t.Errorf("stats height %d != tree height %d", s.Height, tr.Height())
	}
	if s.DataEntries != len(items) {
		t.Errorf("data entries = %d, want %d", s.DataEntries, len(items))
	}
	if s.DirEntries != s.DirPages+s.DataPages-1 {
		// Every page except the root is referenced by exactly one directory
		// entry.
		t.Errorf("dir entries = %d, pages = %d", s.DirEntries, s.TotalPages())
	}
	if s.Utilization < 0.5 || s.Utilization > 1.0 {
		t.Errorf("storage utilization %.2f outside a plausible range", s.Utilization)
	}
	if s.TotalPages() != s.DirPages+s.DataPages {
		t.Errorf("TotalPages inconsistent")
	}
}

func TestRStarBeatsQuadraticOnOverlap(t *testing.T) {
	// The R*-tree's directory rectangles should overlap less than the
	// quadratic R-tree's for the same skewed data, which is the design goal
	// the paper relies on.  We compare the total pairwise overlap area of
	// leaf-parent rectangles.
	items := randomItems(rand.New(rand.NewSource(5)), 4000, 0.01)
	overlap := func(v Variant) float64 {
		tr := MustNew(Options{PageSize: storage.PageSize1K, Variant: v})
		tr.InsertItems(items)
		var nodes []*Node
		tr.Walk(func(n *Node) {
			if n.Level == 1 {
				nodes = append(nodes, n)
			}
		})
		var total float64
		for _, n := range nodes {
			for i := 0; i < len(n.Entries); i++ {
				for j := i + 1; j < len(n.Entries); j++ {
					total += n.Entries[i].Rect.IntersectionArea(n.Entries[j].Rect)
				}
			}
		}
		return total
	}
	rstar := overlap(RStar)
	quad := overlap(Quadratic)
	if rstar > quad {
		t.Errorf("R*-tree leaf-level overlap %.6f exceeds quadratic R-tree overlap %.6f", rstar, quad)
	}
}

func TestDelete(t *testing.T) {
	tr := MustNew(smallOpts(RStar))
	items := randomItems(rand.New(rand.NewSource(6)), 400, 0.02)
	tr.InsertItems(items)

	// Delete half of the items and verify they are gone and the rest remain.
	for _, it := range items[:200] {
		if !tr.Delete(it.Rect, it.Data) {
			t.Fatalf("Delete(%v, %d) = false", it.Rect, it.Data)
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d, want 200", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after deletes: %v", err)
	}
	for _, it := range items[:200] {
		found := false
		tr.Search(it.Rect, func(e Entry) bool {
			if e.Data == it.Data {
				found = true
				return false
			}
			return true
		})
		if found {
			t.Fatalf("deleted item %d still found", it.Data)
		}
	}
	for _, it := range items[200:250] {
		found := false
		tr.Search(it.Rect, func(e Entry) bool {
			if e.Data == it.Data {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("surviving item %d not found", it.Data)
		}
	}
	// Deleting a non-existent entry returns false.
	if tr.Delete(geom.Rect{XL: 5, YL: 5, XU: 6, YU: 6}, 9999) {
		t.Fatal("Delete of non-existent entry returned true")
	}
	// Delete everything; the tree must shrink back to a single empty leaf.
	for _, it := range items[200:] {
		if !tr.Delete(it.Rect, it.Data) {
			t.Fatalf("Delete of %d failed", it.Data)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("after deleting everything: len=%d height=%d", tr.Len(), tr.Height())
	}
}

func TestDeleteReducesHeight(t *testing.T) {
	tr := MustNew(smallOpts(RStar))
	items := randomItems(rand.New(rand.NewSource(7)), 600, 0.02)
	tr.InsertItems(items)
	before := tr.Height()
	for _, it := range items[:550] {
		tr.Delete(it.Rect, it.Data)
	}
	if tr.Height() >= before {
		t.Fatalf("height did not shrink: before=%d after=%d", before, tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}

func TestInsertDeleteInterleavedProperty(t *testing.T) {
	// Random interleaving of inserts and deletes must keep the tree
	// consistent with a reference map at all times.
	rng := rand.New(rand.NewSource(8))
	tr := MustNew(smallOpts(RStar))
	reference := make(map[int32]geom.Rect)
	next := int32(0)
	for step := 0; step < 3000; step++ {
		if len(reference) == 0 || rng.Float64() < 0.6 {
			x, y := rng.Float64(), rng.Float64()
			r := geom.Rect{XL: x, YL: y, XU: x + 0.01, YU: y + 0.01}
			tr.Insert(r, next)
			reference[next] = r
			next++
		} else {
			// Delete a random existing element.
			var id int32
			for k := range reference {
				id = k
				break
			}
			if !tr.Delete(reference[id], id) {
				t.Fatalf("step %d: delete of existing item %d failed", step, id)
			}
			delete(reference, id)
		}
	}
	if tr.Len() != len(reference) {
		t.Fatalf("size %d != reference %d", tr.Len(), len(reference))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
	got := 0
	tr.All(func(e Entry) bool {
		if r, ok := reference[e.Data]; !ok || !r.Equal(e.Rect) {
			t.Fatalf("unexpected entry %d %v", e.Data, e.Rect)
		}
		got++
		return true
	})
	if got != len(reference) {
		t.Fatalf("enumerated %d entries, want %d", got, len(reference))
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr := MustNew(smallOpts(RStar))
	tr.InsertItems(randomItems(rand.New(rand.NewSource(9)), 300, 0.02))
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("fresh tree invalid: %v", err)
	}
	// Corrupt a directory rectangle: shrink it so it no longer covers its
	// child.
	root := tr.Root()
	if root.IsLeaf() {
		t.Fatal("tree unexpectedly flat")
	}
	saved := root.Entries[0].Rect
	root.Entries[0].Rect = geom.Rect{XL: saved.XL, YL: saved.YL, XU: saved.XL, YU: saved.YL}
	if err := tr.CheckInvariants(); err == nil {
		t.Fatal("expected invariant violation after corrupting a directory rectangle")
	}
	root.Entries[0].Rect = saved

	// Corrupt the size counter.
	tr.size++
	if err := tr.CheckInvariants(); err == nil {
		t.Fatal("expected invariant violation after corrupting the size")
	}
	tr.size--
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("restored tree invalid: %v", err)
	}
}
