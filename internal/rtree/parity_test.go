package rtree

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// The golden shapes below were captured from the pre-arena implementation
// (per-Insert map[int]bool bookkeeping, sort.Slice over entry copies in the
// split machinery, per-slice allocations in the bulk loaders) on the
// deterministic datasets built below.  The build arena, the preallocated
// sorters and the buffer-reusing bulk loaders must reproduce every tree
// bit-identically: same height, same node count, same per-level hash over
// fan-outs, entry rectangles and object identifiers in depth-first order.
//
// The tree shape is sensitive to the exact permutation the (unstable) sorts
// produce, so these goldens pin that the preallocated sort.Sort-based sorters
// replicate the sort.Slice calls they replaced.

// shape is a structural fingerprint of one tree.
type shape struct {
	Height int
	Nodes  int
	Size   int
	// Levels[l] is an order-sensitive FNV-1a hash over every node of level l
	// in depth-first order: fan-out, then each entry's rectangle bits and
	// object identifier.
	Levels []uint64
}

func fnv1a(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// fingerprint walks the tree and folds its complete structure into per-level
// hashes.  Two trees with equal fingerprints have identical node layouts,
// entry orders and MBRs at every level.
func fingerprint(t *Tree) shape {
	s := shape{Height: t.Height(), Size: t.Len(), Levels: make([]uint64, t.Height())}
	for i := range s.Levels {
		s.Levels[i] = 14695981039346656037
	}
	t.Walk(func(n *Node) {
		s.Nodes++
		h := s.Levels[n.Level]
		h = fnv1a(h, uint64(len(n.Entries)))
		for _, e := range n.Entries {
			h = fnv1a(h, math.Float64bits(e.Rect.XL))
			h = fnv1a(h, math.Float64bits(e.Rect.YL))
			h = fnv1a(h, math.Float64bits(e.Rect.XU))
			h = fnv1a(h, math.Float64bits(e.Rect.YU))
			h = fnv1a(h, uint64(uint32(e.Data)))
		}
		s.Levels[n.Level] = h
	})
	return s
}

func (s shape) String() string {
	return fmt.Sprintf("{Height: %d, Nodes: %d, Size: %d, Levels: %#v}", s.Height, s.Nodes, s.Size, s.Levels)
}

func (s shape) equal(o shape) bool {
	if s.Height != o.Height || s.Nodes != o.Nodes || s.Size != o.Size || len(s.Levels) != len(o.Levels) {
		return false
	}
	for i := range s.Levels {
		if s.Levels[i] != o.Levels[i] {
			return false
		}
	}
	return true
}

// goldenItems builds the deterministic dataset all golden scenarios share.
func goldenItems(n int, seed int64) []Item {
	return randomItems(rand.New(rand.NewSource(seed)), n, 0.01)
}

// The scenarios cover both variants and every construction path: plain
// insertion (with forced re-insertion for the R*-tree), a reinsert-heavy
// configuration, delete-then-insert (CondenseTree orphans re-inserted through
// the same overflow machinery), and the two bulk loaders.  The small page
// (8 entries) forces deep trees and frequent splits; the 1 KByte page
// exercises the candidate-limited ChooseSubtree (M > 32).  A linear-split
// variant does not exist in this codebase, so the golden set pins the R* and
// quadratic splits only.
type goldenShape struct {
	label string
	build func(testing.TB) *Tree
	want  shape
}

func smallPage() int { return 8 * storage.EntrySize }

func goldenShapes() []goldenShape {
	return []goldenShape{
		{
			label: "rstar-insert-smallpage",
			build: func(tb testing.TB) *Tree {
				t := MustNew(Options{PageSize: smallPage()})
				t.InsertItems(goldenItems(3000, 11))
				return t
			},
			want: shape{Height: 5, Nodes: 632, Size: 3000, Levels: []uint64{0xee4588ec26fe4d62, 0x7debc68067ccb9d0, 0x11e4bab4c096bd76, 0x32ecdf89e954e9ed, 0xe51f3cfa3f46aba2}},
		},
		{
			label: "rstar-insert-1k",
			build: func(tb testing.TB) *Tree {
				t := MustNew(Options{PageSize: storage.PageSize1K})
				t.InsertItems(goldenItems(4000, 12))
				return t
			},
			want: shape{Height: 3, Nodes: 118, Size: 4000, Levels: []uint64{0x4663fbcf7f9df574, 0x1e77cd0a97f495e3, 0xbc3a03bcf87f3f38}},
		},
		{
			label: "rstar-reinsert-heavy",
			build: func(tb testing.TB) *Tree {
				t := MustNew(Options{PageSize: smallPage(), ReinsertFraction: 0.45})
				t.InsertItems(goldenItems(2000, 13))
				return t
			},
			want: shape{Height: 5, Nodes: 419, Size: 2000, Levels: []uint64{0x4502ec6ea1434ede, 0xd56901fe059280e3, 0xbca85efc12d5cfd2, 0x8dedb91ffc1ee1a9, 0x3521ed5fcb0374cf}},
		},
		{
			label: "quadratic-insert-smallpage",
			build: func(tb testing.TB) *Tree {
				t := MustNew(Options{PageSize: smallPage(), Variant: Quadratic})
				t.InsertItems(goldenItems(2000, 14))
				return t
			},
			want: shape{Height: 5, Nodes: 429, Size: 2000, Levels: []uint64{0x1b035ff286c40080, 0xb66244967edd9179, 0xc7ffa06792af5666, 0x739f2438948eed23, 0x5e8623e64933af5f}},
		},
		{
			label: "quadratic-insert-1k",
			build: func(tb testing.TB) *Tree {
				t := MustNew(Options{PageSize: storage.PageSize1K, Variant: Quadratic})
				t.InsertItems(goldenItems(3000, 15))
				return t
			},
			want: shape{Height: 3, Nodes: 90, Size: 3000, Levels: []uint64{0x2c60fb741d74d39a, 0x2e6b74ec55bb5f70, 0xb8582c5797b6886d}},
		},
		{
			label: "rstar-delete-then-insert",
			build: func(tb testing.TB) *Tree {
				items := goldenItems(3000, 16)
				t := MustNew(Options{PageSize: storage.PageSize1K})
				t.InsertItems(items)
				for i := 0; i < 2000; i += 2 {
					if !t.Delete(items[i].Rect, items[i].Data) {
						tb.Fatalf("delete %d failed", i)
					}
				}
				t.InsertItems(goldenItems(800, 17))
				return t
			},
			want: shape{Height: 3, Nodes: 76, Size: 2800, Levels: []uint64{0x857ef8b152a0a379, 0x290f7cfc0630a200, 0xc9f533438b7b94b0}},
		},
		{
			label: "quadratic-delete-then-insert",
			build: func(tb testing.TB) *Tree {
				items := goldenItems(1500, 18)
				t := MustNew(Options{PageSize: smallPage(), Variant: Quadratic})
				t.InsertItems(items)
				for i := 0; i < 1000; i += 3 {
					if !t.Delete(items[i].Rect, items[i].Data) {
						tb.Fatalf("delete %d failed", i)
					}
				}
				t.InsertItems(goldenItems(500, 19))
				return t
			},
			want: shape{Height: 5, Nodes: 362, Size: 1666, Levels: []uint64{0xc0d17610e9544cf9, 0x173f392fe8cd7e5b, 0x8683cfa762aec66a, 0xf307bc43eac205f6, 0x35fd858437801a8f}},
		},
		{
			label: "str-bulkload-1k",
			build: func(tb testing.TB) *Tree {
				t, err := BulkLoadSTR(Options{PageSize: storage.PageSize1K}, goldenItems(12000, 20))
				if err != nil {
					tb.Fatal(err)
				}
				return t
			},
			want: shape{Height: 3, Nodes: 274, Size: 12000, Levels: []uint64{0xf68e05b824a7a26a, 0xd8feac318c4dedc1, 0x9848747c72045182}},
		},
		{
			label: "str-bulkload-smallpage",
			build: func(tb testing.TB) *Tree {
				t, err := BulkLoadSTR(Options{PageSize: smallPage()}, goldenItems(3000, 21))
				if err != nil {
					tb.Fatal(err)
				}
				return t
			},
			want: shape{Height: 5, Nodes: 503, Size: 3000, Levels: []uint64{0xb556dbd8307af786, 0x1ba5e46f8f21a0eb, 0x24dbe6072610d9b0, 0x5cdf77232476f0ca, 0x17528adf75306981}},
		},
		{
			label: "hilbert-bulkload-1k",
			build: func(tb testing.TB) *Tree {
				t, err := BulkLoadHilbert(Options{PageSize: storage.PageSize1K}, goldenItems(12000, 22))
				if err != nil {
					tb.Fatal(err)
				}
				return t
			},
			want: shape{Height: 3, Nodes: 274, Size: 12000, Levels: []uint64{0x987406e4fd45552b, 0x580de98aab03fa41, 0x9f6cc993b899a103}},
		},
	}
}

// TestStructuralGolden asserts that every construction path produces trees
// bit-identical to the pre-arena implementation.
func TestStructuralGolden(t *testing.T) {
	for _, g := range goldenShapes() {
		g := g
		t.Run(g.label, func(t *testing.T) {
			tr := g.build(t)
			got := fingerprint(tr)
			if !got.equal(g.want) {
				t.Errorf("tree shape drifted from the pre-arena baseline:\n got  %v\n want %v", got, g.want)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Errorf("invalid tree: %v", err)
			}
		})
	}
}

// TestConstructionIsDeterministic asserts that building the same tree twice
// yields identical shapes: arena reuse must not leak state between builds.
func TestConstructionIsDeterministic(t *testing.T) {
	for _, g := range goldenShapes() {
		g := g
		t.Run(g.label, func(t *testing.T) {
			a := fingerprint(g.build(t))
			b := fingerprint(g.build(t))
			if !a.equal(b) {
				t.Errorf("two identical builds disagree:\n first  %v\n second %v", a, b)
			}
		})
	}
}
