package rtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

// The incremental catalog maintenance must keep the exact per-level node and
// entry populations equal to what a from-scratch walk would count, after any
// mutation sequence, without ever walking the tree on the hot path.  These
// tests audit every mutation path — insert (with forced re-insertion and
// splits), buffered insert, delete (with CondenseTree and root shrinks), bulk
// load and persistence load — against that contract.

// walkPopulations counts the true per-level populations of a tree, the way a
// from-scratch recollection would see them (empty nodes are skipped).
func walkPopulations(t *Tree) (nodes, entries []int64) {
	nodes = make([]int64, t.Height())
	entries = make([]int64, t.Height())
	t.Walk(func(n *Node) {
		if len(n.Entries) == 0 {
			return
		}
		nodes[n.Level]++
		entries[n.Level] += int64(len(n.Entries))
	})
	return nodes, entries
}

// checkMaintained asserts that the maintained catalog matches the walk on the
// exact populations and that no recollection walk happened.
func checkMaintained(t *testing.T, tr *Tree, label string) {
	t.Helper()
	cat := tr.CatalogStats()
	if got := tr.CatalogRecollections(); got != 0 {
		t.Fatalf("%s: CatalogStats performed %d recollection walks, want 0", label, got)
	}
	nodes, entries := walkPopulations(tr)
	if tr.Len() == 0 {
		if cat.Valid() {
			t.Fatalf("%s: empty tree produced a valid catalog: %+v", label, cat)
		}
		return
	}
	if !cat.Valid() {
		t.Fatalf("%s: catalog invalid for %d entries", label, tr.Len())
	}
	if len(cat.Levels) != tr.Height() {
		t.Fatalf("%s: catalog has %d levels, tree height %d", label, len(cat.Levels), tr.Height())
	}
	for l, stat := range cat.Levels {
		if stat.Nodes != nodes[l] || stat.Entries != entries[l] {
			t.Fatalf("%s level %d: maintained %d nodes/%d entries, walk %d/%d",
				label, l, stat.Nodes, stat.Entries, nodes[l], entries[l])
		}
		if int64(stat.SampleSize) > stat.Nodes {
			t.Errorf("%s level %d: sample %d larger than population %d",
				label, l, stat.SampleSize, stat.Nodes)
		}
	}
	if cat.DataEntries() != int64(tr.Len()) {
		t.Errorf("%s: catalog reports %d data entries, tree holds %d", label, cat.DataEntries(), tr.Len())
	}
}

// TestMaintainedCatalogMatchesWalkAfterRandomMutations drives randomized
// insert/delete/buffered-insert sequences over both variants and small pages
// (deep trees, frequent splits, forced re-insertions and condenses) and
// checks after every batch that the maintained populations are exact and no
// walk fired.
func TestMaintainedCatalogMatchesWalkAfterRandomMutations(t *testing.T) {
	for _, variant := range []Variant{RStar, Quadratic} {
		for _, pageSize := range []int{8 * storage.EntrySize, storage.PageSize1K} {
			rng := rand.New(rand.NewSource(int64(pageSize) + int64(variant)))
			tr := MustNew(Options{PageSize: pageSize, Variant: variant})
			buf := NewInsertBuffer(tr, 64)
			var live []Item
			next := int32(0)
			for batch := 0; batch < 40; batch++ {
				switch op := rng.Intn(3); {
				case op == 0 || len(live) < 50:
					// Plain inserts.
					for i := 0; i < 30; i++ {
						it := randomItem(rng, next)
						next++
						tr.Insert(it.Rect, it.Data)
						live = append(live, it)
					}
				case op == 1:
					// Buffered inserts (staged, Hilbert-sorted, hint applied).
					for i := 0; i < 30; i++ {
						it := randomItem(rng, next)
						next++
						buf.Stage(it.Rect, it.Data)
						live = append(live, it)
					}
					buf.Flush()
				default:
					// Deletes, including enough to trigger condenses.
					for i := 0; i < 20 && len(live) > 0; i++ {
						j := rng.Intn(len(live))
						it := live[j]
						live[j] = live[len(live)-1]
						live = live[:len(live)-1]
						if !tr.Delete(it.Rect, it.Data) {
							t.Fatalf("delete of live item %d failed", it.Data)
						}
					}
				}
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				checkMaintained(t, tr, "random-mutations")
			}
			// Drain to empty: root shrinks all the way down.
			for _, it := range live {
				if !tr.Delete(it.Rect, it.Data) {
					t.Fatalf("drain delete of %d failed", it.Data)
				}
			}
			checkMaintained(t, tr, "drained")
		}
	}
}

func randomItem(rng *rand.Rand, id int32) Item {
	x, y := rng.Float64(), rng.Float64()
	return Item{
		Rect: geom.Rect{XL: x, YL: y, XU: x + rng.Float64()*0.03, YU: y + rng.Float64()*0.03},
		Data: id,
	}
}

// TestMaintainedCatalogAfterBulkLoadMutations: bulk-loaded trees adopt the
// packing sampler as maintained state; further mutations must keep it exact.
func TestMaintainedCatalogAfterBulkLoadMutations(t *testing.T) {
	items := sampleItems(2500, 17)
	for name, load := range map[string]func() (*Tree, error){
		"str":     func() (*Tree, error) { return BulkLoadSTR(Options{PageSize: storage.PageSize1K}, items) },
		"hilbert": func() (*Tree, error) { return BulkLoadHilbert(Options{PageSize: storage.PageSize1K}, items) },
	} {
		tr, err := load()
		if err != nil {
			t.Fatal(err)
		}
		checkMaintained(t, tr, name+"-fresh")
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 400; i++ {
			it := randomItem(rng, int32(10000+i))
			tr.Insert(it.Rect, it.Data)
		}
		for i := 0; i < 300; i++ {
			if !tr.Delete(items[i].Rect, items[i].Data) {
				t.Fatalf("%s: delete %d failed", name, i)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkMaintained(t, tr, name+"-mutated")
	}
}

// TestCatalogMaintenanceAblation pins the recollection behaviour both ways:
// with maintenance off every mutation forces a from-scratch walk on the next
// CatalogStats; switching maintenance back on rebuilds the counters once and
// then stays walk-free.
func TestCatalogMaintenanceAblation(t *testing.T) {
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	items := sampleItems(1200, 5)
	for _, it := range items {
		tr.Insert(it.Rect, it.Data)
	}
	if got := tr.CatalogRecollections(); got != 0 {
		t.Fatalf("maintained tree performed %d walks, want 0", got)
	}
	tr.SetCatalogMaintenance(false)
	tr.CatalogStats()
	if got := tr.CatalogRecollections(); got != 1 {
		t.Fatalf("ablated tree performed %d walks after first CatalogStats, want 1", got)
	}
	// Cached until the next mutation; then one more walk.
	tr.CatalogStats()
	tr.Insert(items[0].Rect, 99001)
	tr.CatalogStats()
	if got := tr.CatalogRecollections(); got != 2 {
		t.Fatalf("ablated tree performed %d walks after mutation, want 2", got)
	}
	// Back on: one rebuild walk happens inside SetCatalogMaintenance (not
	// counted as a CatalogStats stall), then mutations stay walk-free.
	tr.SetCatalogMaintenance(true)
	tr.Insert(items[1].Rect, 99002)
	cat := tr.CatalogStats()
	if got := tr.CatalogRecollections(); got != 2 {
		t.Fatalf("re-enabled tree performed %d walks, want 2", got)
	}
	nodes, entries := walkPopulations(tr)
	for l, stat := range cat.Levels {
		if stat.Nodes != nodes[l] || stat.Entries != entries[l] {
			t.Fatalf("re-enabled level %d: maintained %d/%d, walk %d/%d",
				l, stat.Nodes, stat.Entries, nodes[l], entries[l])
		}
	}
}

// TestMaintainedSamplesTrackChurn: the sampled shape averages must keep
// tracking the live tree under delete/buffered-insert churn — deletes and
// long hint runs refresh the reservoir, so the sampled mean leaf fan-out
// stays close to the true mean (which the exact counters give bit-exactly).
func TestMaintainedSamplesTrackChurn(t *testing.T) {
	items := sampleItems(4000, 33)
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	tr.InsertItems(items)
	// Heavy oldest-first churn: delete half, refill through the buffer.
	for _, it := range items[:2000] {
		if !tr.Delete(it.Rect, it.Data) {
			t.Fatalf("delete of %d failed", it.Data)
		}
	}
	rng := rand.New(rand.NewSource(2))
	buf := NewInsertBuffer(tr, 512)
	for i := 0; i < 2000; i++ {
		it := randomItem(rng, int32(100000+i))
		buf.Stage(it.Rect, it.Data)
	}
	buf.Flush()
	cat := tr.CatalogStats()
	if got := tr.CatalogRecollections(); got != 0 {
		t.Fatalf("churn caused %d recollection walks, want 0", got)
	}
	leaf := cat.Levels[0]
	trueFanout := float64(leaf.Entries) / float64(leaf.Nodes)
	if rel := math.Abs(leaf.AvgFanout-trueFanout) / trueFanout; rel > 0.25 {
		t.Errorf("sampled leaf fan-out %.1f drifted %.0f%% from the true mean %.1f",
			leaf.AvgFanout, 100*rel, trueFanout)
	}
}

// TestCatalogReadPathDoesNotPerturbDeterminism: CatalogStats is a read —
// calling it mid-construction (including while the root is still a leaf,
// where the assembly overrides the leaf sample ephemerally) must not change
// the catalog an identical construction sequence ends up with.
func TestCatalogReadPathDoesNotPerturbDeterminism(t *testing.T) {
	items := sampleItems(1500, 29)
	build := func(readEvery int) *Tree {
		tr := MustNew(Options{PageSize: storage.PageSize1K})
		for i, it := range items {
			tr.Insert(it.Rect, it.Data)
			if readEvery > 0 && i%readEvery == 0 {
				tr.CatalogStats()
			}
		}
		return tr
	}
	quiet := build(0).CatalogStats()
	chatty := build(1).CatalogStats() // reads from the very first insert on
	if len(quiet.Levels) != len(chatty.Levels) {
		t.Fatalf("level counts differ: %d vs %d", len(quiet.Levels), len(chatty.Levels))
	}
	for l := range quiet.Levels {
		if quiet.Levels[l] != chatty.Levels[l] {
			t.Errorf("level %d differs between read patterns:\n%+v\n%+v",
				l, quiet.Levels[l], chatty.Levels[l])
		}
	}
}

// TestMaintainedCatalogAfterLoad: a tree loaded from a page file carries
// maintained statistics from the load walk and stays walk-free under
// subsequent mutations.
func TestMaintainedCatalogAfterLoad(t *testing.T) {
	items := sampleItems(900, 21)
	orig := MustNew(Options{PageSize: storage.PageSize1K})
	orig.InsertItems(items)
	f := storage.NewPageFile(storage.PageSize1K)
	root, err := orig.Save(f)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(f, root, Options{PageSize: storage.PageSize1K})
	if err != nil {
		t.Fatal(err)
	}
	checkMaintained(t, loaded, "loaded-fresh")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		it := randomItem(rng, int32(50000+i))
		loaded.Insert(it.Rect, it.Data)
	}
	// The on-disk format stores coordinates as float32, so deletes must use
	// the loaded (rounded) rectangles, not the original float64 ones.
	var stored []Item
	loaded.Walk(func(n *Node) {
		if !n.IsLeaf() {
			return
		}
		for _, e := range n.Entries {
			if e.Data < 50000 {
				stored = append(stored, Item{Rect: e.Rect, Data: e.Data})
			}
		}
	})
	for i := 0; i < 150; i++ {
		if !loaded.Delete(stored[i].Rect, stored[i].Data) {
			t.Fatalf("delete %d failed", i)
		}
	}
	checkMaintained(t, loaded, "loaded-mutated")
}
