package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

func sampleItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = Item{
			Rect: geom.Rect{XL: x, YL: y, XU: x + rng.Float64()*0.05, YU: y + rng.Float64()*0.05},
			Data: int32(i),
		}
	}
	return items
}

// TestCatalogStatsMatchStructure checks the exact half of the catalog
// against a full walk, for both construction paths: the per-level node and
// entry counts must equal the tree's true populations, and the derived
// subtree expectations must be consistent with them.
func TestCatalogStatsMatchStructure(t *testing.T) {
	items := sampleItems(3000, 7)
	build := map[string]func() *Tree{
		"bulk-str": func() *Tree {
			tr, err := BulkLoadSTR(Options{PageSize: storage.PageSize1K}, items)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
		"bulk-hilbert": func() *Tree {
			tr, err := BulkLoadHilbert(Options{PageSize: storage.PageSize1K}, items)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
		"dynamic": func() *Tree {
			tr := MustNew(Options{PageSize: storage.PageSize1K})
			tr.InsertItems(items)
			return tr
		},
	}
	for name, mk := range build {
		tr := mk()
		cat := tr.CatalogStats()
		if !cat.Valid() {
			t.Fatalf("%s: catalog invalid", name)
		}
		if cat.Height != tr.Height() || len(cat.Levels) != tr.Height() {
			t.Fatalf("%s: catalog height %d/%d levels, tree height %d",
				name, cat.Height, len(cat.Levels), tr.Height())
		}
		if cat.PageSize != tr.PageSize() {
			t.Fatalf("%s: catalog page size %d, tree %d", name, cat.PageSize, tr.PageSize())
		}
		// Count the true populations per level.
		nodes := make([]int64, tr.Height())
		entries := make([]int64, tr.Height())
		tr.Walk(func(n *Node) {
			nodes[n.Level]++
			entries[n.Level] += int64(len(n.Entries))
		})
		var totalPages int64
		for l, stat := range cat.Levels {
			if stat.Nodes != nodes[l] || stat.Entries != entries[l] {
				t.Errorf("%s level %d: catalog %d nodes/%d entries, tree %d/%d",
					name, l, stat.Nodes, stat.Entries, nodes[l], entries[l])
			}
			if stat.SampleSize == 0 || stat.SampleSize > SampleReservoirSize {
				t.Errorf("%s level %d: sample size %d outside (0,%d]",
					name, l, stat.SampleSize, SampleReservoirSize)
			}
			if int64(stat.SampleSize) > stat.Nodes {
				t.Errorf("%s level %d: sample %d larger than population %d",
					name, l, stat.SampleSize, stat.Nodes)
			}
			if stat.AvgFanout <= 0 || stat.AvgEntryWidth < 0 || stat.AvgEntryHeight < 0 {
				t.Errorf("%s level %d: degenerate sample averages %+v", name, l, stat)
			}
			totalPages += stat.Nodes
		}
		if cat.DataEntries() != int64(tr.Len()) {
			t.Errorf("%s: catalog reports %d data entries, tree holds %d", name, cat.DataEntries(), tr.Len())
		}
		// A subtree rooted at the top level is the whole tree.
		root := tr.Height() - 1
		if got := cat.SubtreePages(root); got != float64(totalPages) {
			t.Errorf("%s: SubtreePages(root) = %v, want %d", name, got, totalPages)
		}
		if got := cat.SubtreeEntries(root); got != float64(tr.Len()) {
			t.Errorf("%s: SubtreeEntries(root) = %v, want %d", name, got, tr.Len())
		}
		if w, h, ok := cat.LeafExtent(); !ok || w <= 0 || h <= 0 {
			t.Errorf("%s: leaf extent (%v, %v, %v)", name, w, h, ok)
		}
		if d, ok := cat.LeafDensity(); !ok || d <= 0 {
			t.Errorf("%s: leaf density (%v, %v)", name, d, ok)
		}
	}
}

// TestCatalogStatsDeterministic: identical trees must produce identical
// catalogs (the reservoir RNG is deterministically seeded), which is what
// makes the schedules derived from the statistics reproducible.
func TestCatalogStatsDeterministic(t *testing.T) {
	items := sampleItems(2000, 11)
	a, err := BulkLoadSTR(Options{PageSize: storage.PageSize1K}, items)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BulkLoadSTR(Options{PageSize: storage.PageSize1K}, items)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.CatalogStats(), b.CatalogStats()
	if len(ca.Levels) != len(cb.Levels) {
		t.Fatalf("level counts differ: %d vs %d", len(ca.Levels), len(cb.Levels))
	}
	for l := range ca.Levels {
		if ca.Levels[l] != cb.Levels[l] {
			t.Errorf("level %d differs:\n%+v\n%+v", l, ca.Levels[l], cb.Levels[l])
		}
	}
	// The lazy walk must agree with itself across calls (cache hit or not).
	if again := a.CatalogStats(); again.Levels[0] != ca.Levels[0] {
		t.Error("repeated CatalogStats calls disagree")
	}
}

// TestCatalogStatsInvalidation: mutations must invalidate the cache, and the
// lazily recollected statistics must describe the mutated tree.
func TestCatalogStatsInvalidation(t *testing.T) {
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	items := sampleItems(800, 3)
	tr.InsertItems(items)
	before := tr.CatalogStats()
	if before.DataEntries() != 800 {
		t.Fatalf("catalog reports %d entries, want 800", before.DataEntries())
	}
	extra := geom.Rect{XL: 0.1, YL: 0.1, XU: 0.2, YU: 0.2}
	tr.Insert(extra, 9001)
	after := tr.CatalogStats()
	if after.DataEntries() != 801 {
		t.Errorf("after insert: catalog reports %d entries, want 801", after.DataEntries())
	}
	if !tr.Delete(extra, 9001) {
		t.Fatal("delete failed")
	}
	if got := tr.CatalogStats().DataEntries(); got != 800 {
		t.Errorf("after delete: catalog reports %d entries, want 800", got)
	}
}
