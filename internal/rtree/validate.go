package rtree

import (
	"errors"
	"fmt"
)

// Validation errors.
var (
	ErrInvalidMBR     = errors.New("rtree: directory rectangle does not cover child")
	ErrUnderflow      = errors.New("rtree: node below minimum fill")
	ErrOverflow       = errors.New("rtree: node above capacity")
	ErrUnbalanced     = errors.New("rtree: leaves at different depths")
	ErrLevelMismatch  = errors.New("rtree: child level inconsistent")
	ErrEntryCountDrop = errors.New("rtree: data entry count mismatch")
	ErrRootInvalid    = errors.New("rtree: root violates minimum children requirement")
)

// CheckInvariants verifies the structural invariants of the R-tree definition
// (section 3.1 of the paper):
//
//   - the root has at least two children unless it is a leaf,
//   - every non-root node holds between m and M entries,
//   - all leaves are at the same distance from the root,
//   - every directory rectangle covers all rectangles of its child node
//     (and is exactly the child's MBR),
//   - the stored data-entry count matches the tree's size.
//
// It returns nil if the tree is structurally sound.
func (t *Tree) CheckInvariants() error {
	if !t.root.IsLeaf() && len(t.root.Entries) < 2 {
		return fmt.Errorf("%w: %d children", ErrRootInvalid, len(t.root.Entries))
	}
	if t.root.Level != t.height-1 {
		return fmt.Errorf("%w: root level %d, height %d", ErrLevelMismatch, t.root.Level, t.height)
	}
	count, err := t.checkNode(t.root, t.root.Level)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("%w: counted %d, size %d", ErrEntryCountDrop, count, t.size)
	}
	return nil
}

// checkNode validates the subtree rooted at n and returns the number of data
// entries it holds.
func (t *Tree) checkNode(n *Node, wantLevel int) (int, error) {
	if n.Level != wantLevel {
		return 0, fmt.Errorf("%w: node %d has level %d, want %d", ErrLevelMismatch, n.ID, n.Level, wantLevel)
	}
	if len(n.Entries) > t.maxEnt {
		return 0, fmt.Errorf("%w: node %d holds %d > %d entries", ErrOverflow, n.ID, len(n.Entries), t.maxEnt)
	}
	if n != t.root && len(n.Entries) < t.minEnt {
		return 0, fmt.Errorf("%w: node %d holds %d < %d entries", ErrUnderflow, n.ID, len(n.Entries), t.minEnt)
	}
	if n.IsLeaf() {
		return len(n.Entries), nil
	}
	total := 0
	for _, e := range n.Entries {
		if e.Child == nil {
			return 0, fmt.Errorf("%w: directory entry of node %d has no child", ErrLevelMismatch, n.ID)
		}
		childMBR := e.Child.MBR()
		if !e.Rect.Contains(childMBR) {
			return 0, fmt.Errorf("%w: node %d entry %v does not cover child MBR %v",
				ErrInvalidMBR, n.ID, e.Rect, childMBR)
		}
		sub, err := t.checkNode(e.Child, wantLevel-1)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
