package rtree

import (
	"sync"

	"repro/internal/costmodel"
	"repro/internal/storage"
)

// Catalog statistics: a bounded reservoir sample of per-node shape summaries
// for every level, plus exact per-level node and entry counts.
//
// The statistics are maintained *incrementally*: every mutation path —
// insert, forced re-insertion, split, delete, CondenseTree, bulk load and
// persistence load — updates the per-level counters (a few integer adds) and
// the reservoirs (on node creation and re-shaping), so CatalogStats never has
// to walk the tree.  The exact counters track the true per-level populations
// bit-exactly (maintain_test.go pins this against from-scratch walks after
// randomized mutation sequences, together with the no-walk counter
// assertion); the sampled shape averages are refreshed whenever a node is
// created, split, re-inserted from, deleted from, or fed a long hint run
// (every hintResampleEvery-th buffered append).  Plain-insert appends between
// splits are the one deliberate refresh gap: they are the construction hot
// loop, and a split refreshes both halves every ~M/2 of them.
//
// The from-scratch sampling walk of PR 4 survives only behind the
// SetCatalogMaintenance(false) ablation and is counted by Recollections so
// callers can pin its absence.
// Collection is read-only observation: it never changes the tree shape, so
// the structural parity goldens are unaffected.

// SampleReservoirSize bounds the number of node summaries kept per level.
// 64 nodes capture the mean fan-out and entry extents of even very skewed
// levels while keeping the catalog a few KBytes regardless of tree size.
const SampleReservoirSize = 64

// catalogSeed seeds the deterministic reservoir RNG.  A fixed seed makes the
// sample — and every schedule derived from the statistics — a reproducible
// function of the tree's construction sequence alone.
const catalogSeed = 0x9E3779B97F4A7C15

// nodeSample is the shape summary of one sampled node.  The page identifier
// keys in-place refreshes (a re-split node replaces its stale sample) and
// removal of dissolved nodes, so the reservoir only ever describes live
// nodes.
type nodeSample struct {
	id      storage.PageID
	fanout  int
	width   float64 // mean entry width
	height  float64 // mean entry height
	density float64 // sum of entry areas / node MBR area
}

// levelSampler accumulates one level's exact counts and reservoir.  nodes and
// entries are the exact live populations (maintained by the mutation hooks);
// observed counts reservoir observations, which only grows — Algorithm R's
// stream position must not rewind when nodes are dissolved.
type levelSampler struct {
	nodes    int64
	entries  int64
	observed int64
	res      []nodeSample
}

// catalogSampler samples a whole tree, one reservoir per level.  It is both
// the scratch state of the from-scratch sampling walk and the persistent
// maintained state of a live tree.
type catalogSampler struct {
	rng    uint64
	levels []levelSampler
}

func newCatalogSampler() *catalogSampler {
	return &catalogSampler{rng: catalogSeed}
}

// next is a splitmix64 step: fast, deterministic and well-distributed, which
// is all a reservoir index needs.
func (cs *catalogSampler) next() uint64 {
	cs.rng += 0x9E3779B97F4A7C15
	z := cs.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// level returns the sampler of one level, growing the slice as the tree does.
func (cs *catalogSampler) level(l int) *levelSampler {
	for len(cs.levels) <= l {
		cs.levels = append(cs.levels, levelSampler{})
	}
	return &cs.levels[l]
}

// sample feeds one node's current shape into its level's reservoir with an
// Algorithm R admission step.  It is called exactly once per node — at
// creation (addNode) or when a walk first visits it — so `observed` counts
// nodes, not mutations, and every node of a level gets exactly one admission
// lottery.  A node already present (matched by page identifier) is refreshed
// in place instead; on a pure walk every node is new, which reproduces the
// PR-4 walk-sampling reservoir bit-exactly.
func (cs *catalogSampler) sample(n *Node) {
	if len(n.Entries) == 0 {
		return
	}
	ls := cs.level(n.Level)
	for i := range ls.res {
		if ls.res[i].id == n.ID {
			ls.res[i] = summarize(n)
			return
		}
	}
	ls.observed++
	if len(ls.res) < SampleReservoirSize {
		ls.res = append(ls.res, summarize(n))
		return
	}
	if j := cs.next() % uint64(ls.observed); j < SampleReservoirSize {
		ls.res[j] = summarize(n)
	}
}

// refresh re-summarizes a node that is already in its level's reservoir and
// leaves absent nodes alone: admission happens once, at creation, so churn
// hot spots cannot buy extra admission lotteries and the reservoir stays a
// (refreshed) uniform sample over the nodes ever created at the level.  The
// no-op case costs only the id scan, which keeps refresh cheap enough for
// per-mutation call sites.
func (cs *catalogSampler) refresh(n *Node) {
	if len(n.Entries) == 0 || n.Level >= len(cs.levels) {
		return
	}
	ls := &cs.levels[n.Level]
	for i := range ls.res {
		if ls.res[i].id == n.ID {
			ls.res[i] = summarize(n)
			return
		}
	}
}

// addNode records a newly created node: the exact count, and a reservoir
// observation if the node already carries entries (a new root, a split
// sibling).  Empty nodes (a fresh tree root) are counted but not sampled.
func (cs *catalogSampler) addNode(n *Node) {
	cs.level(n.Level).nodes++
	cs.sample(n)
}

// removeNode records a dissolved node and drops its reservoir sample, if any,
// so the reservoir never describes dead nodes.
func (cs *catalogSampler) removeNode(n *Node) {
	ls := cs.level(n.Level)
	ls.nodes--
	for i := range ls.res {
		if ls.res[i].id == n.ID {
			ls.res[i] = ls.res[len(ls.res)-1]
			ls.res = ls.res[:len(ls.res)-1]
			return
		}
	}
}

// addEntries adjusts one level's exact entry count.
func (cs *catalogSampler) addEntries(level, delta int) {
	cs.level(level).entries += int64(delta)
}

// observe feeds one node of a from-scratch walk: exact counts plus a
// reservoir observation.  Empty nodes (an empty tree root) are skipped.
func (cs *catalogSampler) observe(n *Node) {
	if len(n.Entries) == 0 {
		return
	}
	ls := cs.level(n.Level)
	ls.nodes++
	ls.entries += int64(len(n.Entries))
	cs.sample(n)
}

// observeLevel feeds every node of one freshly packed bulk-load level.
func (cs *catalogSampler) observeLevel(nodes []*Node) {
	for _, n := range nodes {
		cs.observe(n)
	}
}

// summarize computes the shape summary of one node.
func summarize(n *Node) nodeSample {
	var sumW, sumH, sumA float64
	for _, e := range n.Entries {
		sumW += e.Rect.Width()
		sumH += e.Rect.Height()
		sumA += e.Rect.Area()
	}
	cnt := float64(len(n.Entries))
	s := nodeSample{
		id:     n.ID,
		fanout: len(n.Entries),
		width:  sumW / cnt,
		height: sumH / cnt,
	}
	if mbrArea := n.MBR().Area(); mbrArea > 0 {
		s.density = sumA / mbrArea
	} else {
		// A degenerate MBR (points or a line) is fully covered by its entries.
		s.density = 1
	}
	return s
}

// catalog assembles the sampled levels into a costmodel.Catalog.  Maintained
// state can carry trailing levels the tree has since shrunk away from; they
// are trimmed to the current height (a from-scratch walk never produces
// them).
func (cs *catalogSampler) catalog(pageSize, height int) costmodel.Catalog {
	cat := costmodel.Catalog{PageSize: pageSize, Height: height}
	levels := cs.levels
	if len(levels) > height {
		levels = levels[:height]
	}
	for l, ls := range levels {
		stat := costmodel.LevelStats{
			Level:      l,
			Nodes:      ls.nodes,
			Entries:    ls.entries,
			SampleSize: len(ls.res),
		}
		if n := float64(len(ls.res)); n > 0 {
			var fan, w, h, d float64
			for _, s := range ls.res {
				fan += float64(s.fanout)
				w += s.width
				h += s.height
				d += s.density
			}
			stat.AvgFanout = fan / n
			stat.AvgEntryWidth = w / n
			stat.AvgEntryHeight = h / n
			stat.AvgDensity = d / n
		}
		cat.Levels = append(cat.Levels, stat)
	}
	return cat
}

// catalogCache is the tree-resident statistics state: the incrementally
// maintained sampler plus the assembled costmodel.Catalog.  The mutex only
// guards the CatalogStats read path: concurrent read-only users of a
// finished tree (the documented concurrency contract) may all call
// CatalogStats, and the first one in assembles while the rest wait.
type catalogCache struct {
	mu    sync.Mutex
	valid bool // the assembled cat below matches the maintained counters
	cat   costmodel.Catalog

	maint      catalogSampler // incrementally maintained statistics
	maintValid bool           // counters are trustworthy (every mutation hooked)
	maintOff   bool           // SetCatalogMaintenance(false) ablation switch

	recollects int // from-scratch sampling walks performed by CatalogStats
}

// initCatalogMaintenance starts maintained statistics on an empty tree;
// New calls it before the first node is counted.
func (t *Tree) initCatalogMaintenance() {
	t.catalog.maint = catalogSampler{rng: catalogSeed}
	t.catalog.maintValid = true
}

// invalidateCatalog marks the assembled catalog stale; every mutation calls
// it (a single store, negligible against the tree update).  The maintained
// counters stay valid — the mutation hooks have already updated them — so the
// next CatalogStats reassembles without walking the tree.
func (t *Tree) invalidateCatalog() {
	t.catalog.valid = false
}

// Maintenance hooks.  Each is a no-op when maintenance is off (the ablation)
// or the maintained state is invalid, so the mutation paths stay correct in
// every mode.

// maintAddNode records a newly created, fully assembled node.
func (t *Tree) maintAddNode(n *Node) {
	if t.catalog.maintValid {
		t.catalog.maint.addNode(n)
	}
}

// maintRemoveNode records a node dissolved by CondenseTree or a root shrink.
func (t *Tree) maintRemoveNode(n *Node) {
	if t.catalog.maintValid {
		t.catalog.maint.removeNode(n)
	}
}

// maintEntries adjusts one level's exact entry count.
func (t *Tree) maintEntries(level, delta int) {
	if t.catalog.maintValid {
		t.catalog.maint.addEntries(level, delta)
	}
}

// maintResample refreshes the reservoir sample of a node whose shape just
// changed — a split survivor, a node that shed entries to forced
// re-insertion or a delete, or a leaf under a hint run.  Refresh-in-place
// only: nodes that lost their admission lottery at creation stay out.
func (t *Tree) maintResample(n *Node) {
	if t.catalog.maintValid {
		t.catalog.maint.refresh(n)
	}
}

// setCatalog installs freshly collected statistics as both the maintained
// state and the assembled catalog.  The bulk loaders call it with the sampler
// they fed during packing; the persistence loader and the recollection
// fallback call it with a walk sampler.
func (t *Tree) setCatalog(cs *catalogSampler) {
	t.catalog.maint = *cs
	t.catalog.maintValid = !t.catalog.maintOff
	t.catalog.cat = cs.catalog(t.opts.PageSize, t.height)
	t.catalog.valid = true
}

// adoptWalkSampler rebuilds the maintained state with one from-scratch
// sampling walk.  The walk skips empty nodes; the only node that can be empty
// is the root of an empty tree, which the maintained counters must still own
// so that subsequent mutation deltas land on the right base.
func (t *Tree) adoptWalkSampler() {
	cs := newCatalogSampler()
	t.walk(t.root, cs.observe)
	if len(t.root.Entries) == 0 {
		cs.level(t.root.Level).nodes++
	}
	t.setCatalog(cs)
}

// SetCatalogMaintenance switches incremental catalog maintenance on or off.
// It is on for every tree; switching it off makes CatalogStats fall back to
// the PR-4 behaviour — a from-scratch sampling walk on first use after any
// mutation — and exists so the experiments can ablate the recollection
// stalls.  Switching maintenance back on performs one walk to rebuild the
// counters.
func (t *Tree) SetCatalogMaintenance(enabled bool) {
	t.catalog.mu.Lock()
	defer t.catalog.mu.Unlock()
	t.catalog.maintOff = !enabled
	if !enabled {
		t.catalog.maintValid = false
		t.catalog.valid = false
		return
	}
	if !t.catalog.maintValid {
		t.adoptWalkSampler()
	}
}

// CatalogRecollections returns how many from-scratch sampling walks
// CatalogStats has performed on this tree.  With maintenance on (the
// default) it stays 0 whatever the mutation sequence — the update-workload
// tests and experiments pin exactly that.
func (t *Tree) CatalogRecollections() int {
	t.catalog.mu.Lock()
	defer t.catalog.mu.Unlock()
	return t.catalog.recollects
}

// CatalogStats returns the tree's sampled catalog statistics.  The exact
// per-level node and entry populations are maintained incrementally by every
// mutation path, so after any insert/delete/bulk-load sequence the catalog is
// assembled from O(height) counters without touching the tree's pages; only
// trees with maintenance disabled (the ablation) recollect by a from-scratch
// reservoir-sampling walk.  The sampling RNG is deterministically seeded, so
// identical construction sequences always yield identical statistics (and
// therefore identical schedules downstream).
func (t *Tree) CatalogStats() costmodel.Catalog {
	t.catalog.mu.Lock()
	defer t.catalog.mu.Unlock()
	if t.catalog.valid {
		return t.catalog.cat
	}
	if !t.catalog.maintValid {
		// Only reachable with maintenance disabled: every construction path
		// (New, the bulk loaders, Load) establishes maintained state, and
		// SetCatalogMaintenance(true) rebuilds it before returning.  The
		// ablation recollects by a from-scratch sampling walk and caches the
		// result until the next mutation — the stall the maintained mode
		// (whose recollection counter stays 0) exists to remove.
		t.catalog.recollects++
		cs := newCatalogSampler()
		t.walk(t.root, cs.observe)
		t.catalog.cat = cs.catalog(t.opts.PageSize, t.height)
		t.catalog.valid = true
		return t.catalog.cat
	}
	if t.size == 0 {
		// A from-scratch walk of an empty tree observes nothing; mirror it
		// exactly (the maintained counters still know about the empty root).
		t.catalog.cat = costmodel.Catalog{PageSize: t.opts.PageSize, Height: t.height}
		t.catalog.valid = true
		return t.catalog.cat
	}
	t.catalog.cat = t.catalog.maint.catalog(t.opts.PageSize, t.height)
	if t.root.IsLeaf() && len(t.catalog.cat.Levels) > 0 {
		// A single-node tree's only shape is the root leaf, which mutates
		// with every insert (and was never "created" by a split, so the
		// reservoir may not hold it at all).  Override the assembled leaf
		// averages with a live summary — ephemerally, on the assembled copy:
		// the maintained reservoir stays a pure function of the construction
		// sequence, so identical sequences keep yielding identical catalogs
		// regardless of when CatalogStats was called.
		s := summarize(t.root)
		lv := &t.catalog.cat.Levels[0]
		lv.SampleSize = 1
		lv.AvgFanout = float64(s.fanout)
		lv.AvgEntryWidth = s.width
		lv.AvgEntryHeight = s.height
		lv.AvgDensity = s.density
	}
	t.catalog.valid = true
	return t.catalog.cat
}
