package rtree

import (
	"sync"

	"repro/internal/costmodel"
)

// Catalog statistics collection: a bounded reservoir sample of per-node shape
// summaries for every level, plus exact per-level node and entry counts.
// The bulk loaders feed the sampler as they pack each level, so a bulk-loaded
// tree has statistics the moment it is built; dynamically built or mutated
// trees invalidate the cache and recollect lazily with a one-pass sampling
// walk on the next CatalogStats call.  Collection is read-only observation:
// it never changes the tree shape, so the structural parity goldens are
// unaffected.

// SampleReservoirSize bounds the number of node summaries kept per level.
// 64 nodes capture the mean fan-out and entry extents of even very skewed
// levels while keeping the catalog a few KBytes regardless of tree size.
const SampleReservoirSize = 64

// catalogSeed seeds the deterministic reservoir RNG.  A fixed seed makes the
// sample — and every schedule derived from the statistics — a reproducible
// function of the tree alone.
const catalogSeed = 0x9E3779B97F4A7C15

// nodeSample is the shape summary of one sampled node.
type nodeSample struct {
	fanout  int
	width   float64 // mean entry width
	height  float64 // mean entry height
	density float64 // sum of entry areas / node MBR area
}

// levelSampler accumulates one level's exact counts and reservoir.
type levelSampler struct {
	nodes   int64
	entries int64
	res     []nodeSample
}

// catalogSampler samples a whole tree, one reservoir per level.
type catalogSampler struct {
	rng    uint64
	levels []levelSampler
}

func newCatalogSampler() *catalogSampler {
	return &catalogSampler{rng: catalogSeed}
}

// next is a splitmix64 step: fast, deterministic and well-distributed, which
// is all a reservoir index needs.
func (cs *catalogSampler) next() uint64 {
	cs.rng += 0x9E3779B97F4A7C15
	z := cs.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// observe feeds one node into the sampler (Algorithm R reservoir sampling per
// level).  Empty nodes (an empty tree root) are skipped.
func (cs *catalogSampler) observe(n *Node) {
	if len(n.Entries) == 0 {
		return
	}
	for len(cs.levels) <= n.Level {
		cs.levels = append(cs.levels, levelSampler{})
	}
	ls := &cs.levels[n.Level]
	ls.nodes++
	ls.entries += int64(len(n.Entries))
	if len(ls.res) < SampleReservoirSize {
		ls.res = append(ls.res, summarize(n))
		return
	}
	if j := cs.next() % uint64(ls.nodes); j < SampleReservoirSize {
		ls.res[j] = summarize(n)
	}
}

// observeLevel feeds every node of one freshly packed bulk-load level.
func (cs *catalogSampler) observeLevel(nodes []*Node) {
	for _, n := range nodes {
		cs.observe(n)
	}
}

// summarize computes the shape summary of one node.
func summarize(n *Node) nodeSample {
	var sumW, sumH, sumA float64
	for _, e := range n.Entries {
		sumW += e.Rect.Width()
		sumH += e.Rect.Height()
		sumA += e.Rect.Area()
	}
	cnt := float64(len(n.Entries))
	s := nodeSample{
		fanout: len(n.Entries),
		width:  sumW / cnt,
		height: sumH / cnt,
	}
	if mbrArea := n.MBR().Area(); mbrArea > 0 {
		s.density = sumA / mbrArea
	} else {
		// A degenerate MBR (points or a line) is fully covered by its entries.
		s.density = 1
	}
	return s
}

// catalog assembles the sampled levels into a costmodel.Catalog.
func (cs *catalogSampler) catalog(pageSize, height int) costmodel.Catalog {
	cat := costmodel.Catalog{PageSize: pageSize, Height: height}
	for l, ls := range cs.levels {
		stat := costmodel.LevelStats{
			Level:      l,
			Nodes:      ls.nodes,
			Entries:    ls.entries,
			SampleSize: len(ls.res),
		}
		if n := float64(len(ls.res)); n > 0 {
			var fan, w, h, d float64
			for _, s := range ls.res {
				fan += float64(s.fanout)
				w += s.width
				h += s.height
				d += s.density
			}
			stat.AvgFanout = fan / n
			stat.AvgEntryWidth = w / n
			stat.AvgEntryHeight = h / n
			stat.AvgDensity = d / n
		}
		cat.Levels = append(cat.Levels, stat)
	}
	return cat
}

// catalogCache is the tree-resident statistics cache.  The mutex only guards
// the lazy recollection path: concurrent read-only users of a finished tree
// (the documented concurrency contract) may all call CatalogStats, and the
// first one in recollects while the rest wait.
type catalogCache struct {
	mu    sync.Mutex
	valid bool
	cat   costmodel.Catalog
}

// invalidateCatalog marks the statistics stale; insert and delete call it on
// every mutation (a single store, negligible against the tree update).
func (t *Tree) invalidateCatalog() {
	t.catalog.valid = false
}

// setCatalog installs freshly collected statistics (bulk loaders call it with
// the sampler they fed during packing).
func (t *Tree) setCatalog(cs *catalogSampler) {
	t.catalog.cat = cs.catalog(t.opts.PageSize, t.height)
	t.catalog.valid = true
}

// CatalogStats returns the tree's sampled catalog statistics.  Bulk-loaded
// trees carry statistics collected during packing; for dynamically built or
// since-mutated trees the statistics are recollected by a one-pass
// reservoir-sampling walk and cached until the next mutation.  The sampling
// RNG is deterministically seeded, so identical trees always yield identical
// statistics (and therefore identical schedules downstream).
func (t *Tree) CatalogStats() costmodel.Catalog {
	t.catalog.mu.Lock()
	defer t.catalog.mu.Unlock()
	if !t.catalog.valid {
		cs := newCatalogSampler()
		t.walk(t.root, cs.observe)
		t.setCatalog(cs)
	}
	return t.catalog.cat
}
