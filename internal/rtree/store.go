package rtree

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// TreeStore binds a Tree to a durable storage.Pager and keeps the two in sync
// incrementally: Commit re-encodes the tree, writes only the pages whose
// bytes actually changed since the last commit (detected by checksum), frees
// the pages of dissolved nodes into the pager's free list, and seals
// everything as one pager transaction.  A crash at any moment therefore
// leaves the pager at the last committed tree state, recoverable by
// OpenTreeStore.
//
// TreeStore also implements the buffer tracker's PageReader contract: it
// translates the tree's node identifiers (which the join's counted I/O is
// keyed by) to the pager's page identifiers and performs the physical read,
// so counted and measured I/O describe the same pages.
//
// TreeStore serializes commits against reads with one RWMutex: Commit holds
// the write lock for the whole transaction, ReadPage and EpochReader hold
// the read lock across the pager read, so concurrent readers (server query
// workers) can never observe a half-committed page table.  Mutating the
// bound tree itself still follows the tree's single-writer contract.
type TreeStore struct {
	t *Tree
	p *storage.Pager

	mu sync.RWMutex
	//repro:guardedBy mu
	byNode map[storage.PageID]storage.PageID // node id -> pager page
	//repro:guardedBy mu
	owner map[storage.PageID]storage.PageID // pager page -> node id
	//repro:guardedBy mu
	crcs map[storage.PageID]uint32 // pager page -> checksum of last written payload

	// seq counts commits through this store; writtenAt records, per node
	// identifier, the seq whose commit last changed (or freed) its bytes.
	// EpochReader uses the pair to decide which pages still carry a
	// snapshot's state and which must be served from the snapshot's nodes.
	//repro:guardedBy mu
	seq uint64
	//repro:guardedBy mu
	writtenAt map[storage.PageID]uint64

	// cache, when attached, is kept write-through-consistent: every page a
	// commit rewrites or frees is invalidated under the commit lock.
	cache     *buffer.PageCache
	cacheTree int
}

// CommitStats describes one TreeStore commit.
type CommitStats struct {
	Seq          uint64         // pager sequence number of the transaction
	Root         storage.PageID // pager page of the tree root
	PagesWritten int            // pages whose bytes changed (or are new)
	PagesClean   int            // live pages skipped because their bytes were unchanged
	PagesFreed   int            // pages of dissolved nodes returned to the free list
}

// NewTreeStore binds t to p.  The pager must be empty of tree pages for this
// tree (a fresh pager, or one whose previous contents are being abandoned);
// use OpenTreeStore to resume from a pager that already holds a tree.  The
// first Commit writes every node.
func NewTreeStore(t *Tree, p *storage.Pager) (*TreeStore, error) {
	if p.PageSize() != t.opts.PageSize {
		return nil, fmt.Errorf("rtree: pager page size %d does not match tree page size %d",
			p.PageSize(), t.opts.PageSize)
	}
	return &TreeStore{
		t:         t,
		p:         p,
		byNode:    make(map[storage.PageID]storage.PageID),
		owner:     make(map[storage.PageID]storage.PageID),
		crcs:      make(map[storage.PageID]uint32),
		writtenAt: make(map[storage.PageID]uint64),
	}, nil
}

// OpenTreeStore reconstructs the tree committed to p (rooted at the pager's
// root pointer) and binds it to a store whose diff state matches the disk, so
// the next Commit writes only what the caller mutates.  opts must carry the
// pager's page size.
func OpenTreeStore(p *storage.Pager, opts Options) (*TreeStore, error) {
	root := p.Root()
	if root == storage.InvalidPage {
		return nil, fmt.Errorf("rtree: pager holds no committed tree root")
	}
	t, err := Load(p, root, opts)
	if err != nil {
		return nil, err
	}
	s, err := NewTreeStore(t, p)
	if err != nil {
		return nil, err
	}
	// Load validated the page graph (checksums, cycle guard, level
	// discipline); a lockstep walk over the freshly built nodes and their
	// source pages rebinds node ids to pager pages and seeds the checksum
	// diff, so unchanged nodes are never rewritten.
	if err := s.bind(t.root, root); err != nil {
		return nil, err
	}
	return s, nil
}

// bind walks the in-memory subtree and its on-disk image in lockstep,
// recording the node-to-page mapping and the stored payload checksums.
// Rebinding happens once at open, before any join can observe the store, so
// its reads are not part of the measured I/O.
//
//repro:io-boundary
//repro:locked
func (s *TreeStore) bind(n *Node, page storage.PageID) error {
	buf, err := s.p.Read(page)
	if err != nil {
		return fmt.Errorf("rtree: rebinding page %d: %w", page, err)
	}
	s.byNode[n.ID] = page
	s.owner[page] = n.ID
	s.crcs[page] = storage.Checksum(buf)
	if n.IsLeaf() {
		return nil
	}
	dn, err := storage.DecodeNode(buf, s.t.opts.PageSize)
	if err != nil {
		return fmt.Errorf("rtree: rebinding page %d: %w", page, err)
	}
	if len(dn.Entries) != len(n.Entries) {
		return fmt.Errorf("rtree: rebinding page %d: %d entries on disk, %d in memory: %w",
			page, len(dn.Entries), len(n.Entries), storage.ErrCorruptPage)
	}
	for i, e := range n.Entries {
		if err := s.bind(e.Child, storage.PageID(dn.Entries[i].Ref)); err != nil {
			return err
		}
	}
	return nil
}

// Tree returns the bound tree.
func (s *TreeStore) Tree() *Tree { return s.t }

// Pager returns the bound pager.
func (s *TreeStore) Pager() *storage.Pager { return s.p }

// Seq returns the number of commits performed through this store.
func (s *TreeStore) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// SetPageCache attaches a shared page cache to keep write-through
// consistent: every page a commit rewrites or frees is invalidated (keyed by
// node identifier under the given tree id, the key trackers use).  Pass nil
// to detach.
func (s *TreeStore) SetPageCache(c *buffer.PageCache, treeID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
	s.cacheTree = treeID
}

// Commit makes the tree's current state durable as one pager transaction and
// returns what it cost.  Only pages whose encoded bytes changed since the
// last commit are written; pages of nodes that no longer exist are freed.
// The whole transaction holds the store's write lock, so concurrent readers
// see either the previous or the new page table, never a mix.
func (s *TreeStore) Commit() (CommitStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.t
	seq := s.seq + 1

	// Pass 1: assign a pager page to every live node (children before
	// parents does not matter here — only the assignment must be complete
	// before parents encode their child references).
	live := make(map[storage.PageID]bool)
	t.Walk(func(n *Node) {
		live[n.ID] = true
		if _, ok := s.byNode[n.ID]; !ok {
			page := s.p.Allocate()
			s.byNode[n.ID] = page
			s.owner[page] = n.ID
		}
	})

	// Pass 2: free the pages of dissolved nodes first, so their identifiers
	// rejoin the free list in this same transaction.  Deterministic order
	// keeps commits reproducible run over run.
	var deadPages []storage.PageID
	//repolint:ignore determinism dead pages are collected unordered here and sorted just below
	for nodeID, page := range s.byNode {
		if !live[nodeID] {
			deadPages = append(deadPages, page)
		}
	}
	sort.Slice(deadPages, func(i, j int) bool { return deadPages[i] < deadPages[j] })
	for _, page := range deadPages {
		nodeID := s.owner[page]
		s.p.Free(page)
		delete(s.byNode, nodeID)
		delete(s.owner, page)
		delete(s.crcs, page)
		s.writtenAt[nodeID] = seq
		if s.cache != nil {
			s.cache.Invalidate(buffer.FrameKey{Tree: s.cacheTree, Page: nodeID})
		}
	}

	// Pass 3: encode every live node and write the ones whose bytes moved.
	stats := CommitStats{PagesFreed: len(deadPages)}
	var commitErr error
	t.Walk(func(n *Node) {
		if commitErr != nil {
			return
		}
		dn := storage.DiskNode{Level: uint16(n.Level)}
		for _, e := range n.Entries {
			ref := uint32(e.Data)
			if e.Child != nil {
				ref = uint32(s.byNode[e.Child.ID])
			}
			dn.Entries = append(dn.Entries, storage.DiskEntry{Rect: e.Rect, Ref: ref})
		}
		buf, err := storage.EncodeNode(dn, t.opts.PageSize)
		if err != nil {
			commitErr = fmt.Errorf("rtree: encoding node %d: %w", n.ID, err)
			return
		}
		page := s.byNode[n.ID]
		crc := storage.Checksum(buf)
		if prev, ok := s.crcs[page]; ok && prev == crc {
			stats.PagesClean++
			return
		}
		if err := s.p.Write(page, buf); err != nil {
			commitErr = fmt.Errorf("rtree: writing node %d to page %d: %w", n.ID, page, err)
			return
		}
		s.crcs[page] = crc
		s.writtenAt[n.ID] = seq
		if s.cache != nil {
			s.cache.Invalidate(buffer.FrameKey{Tree: s.cacheTree, Page: n.ID})
		}
		stats.PagesWritten++
	})
	if commitErr != nil {
		return stats, commitErr
	}

	stats.Root = s.byNode[t.root.ID]
	s.p.SetRoot(stats.Root)
	pagerSeq, err := s.p.Commit()
	if err != nil {
		return stats, err
	}
	s.seq = seq
	stats.Seq = pagerSeq
	return stats, nil
}

// ReadPage implements the buffer tracker's PageReader: it resolves the
// tree's node identifier to its pager page and reads it from disk.  Reading
// a node that was never committed is an error — the join must only ever
// touch committed state.  The read lock is held across the pager read, so a
// concurrent Commit cannot swap the page out from under the caller.  This is
// the sanctioned physical-read path: buffer.Tracker calls it on a counted
// miss, so the raw pager read below is exactly the measured I/O.
//
//repro:io-boundary
func (s *TreeStore) ReadPage(id storage.PageID) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	page, ok := s.byNode[id]
	if !ok {
		return nil, fmt.Errorf("rtree: node %d has no committed page: %w", id, storage.ErrUnknownPage)
	}
	return s.p.Read(page)
}
