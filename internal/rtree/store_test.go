package rtree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

func countNodes(tr *Tree) int {
	n := 0
	tr.Walk(func(*Node) { n++ })
	return n
}

func sortedItems(tr *Tree) []Item {
	items := tr.Items()
	sort.Slice(items, func(i, j int) bool { return items[i].Data < items[j].Data })
	return items
}

// quantize rounds a rectangle through the float32 precision of the on-disk
// entry layout, the way one save/load round trip does.
func quantize(items []Item) []Item {
	out := make([]Item, len(items))
	for i, it := range items {
		out[i] = Item{Data: it.Data, Rect: geom.Rect{
			XL: float64(float32(it.Rect.XL)), YL: float64(float32(it.Rect.YL)),
			XU: float64(float32(it.Rect.XU)), YU: float64(float32(it.Rect.YU)),
		}}
	}
	return out
}

func newTestStore(t *testing.T, items []Item) (*TreeStore, *storage.MemVFS) {
	t.Helper()
	fs := storage.NewMemVFS()
	p, err := storage.OpenPager(fs, "tree.db", storage.PageSize1K, storage.PagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	tr.InsertItems(items)
	s, err := NewTreeStore(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	return s, fs
}

func TestTreeStoreIncrementalCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randomItems(rng, 400, 0.01)
	s, _ := newTestStore(t, items)
	defer s.Pager().Close()
	nodes := countNodes(s.Tree())

	// First commit writes every node.
	st, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesWritten != nodes || st.PagesClean != 0 || st.PagesFreed != 0 {
		t.Fatalf("first commit: %+v, want %d pages written", st, nodes)
	}
	if s.Pager().Root() != st.Root || st.Root == storage.InvalidPage {
		t.Fatalf("root not sealed: %+v, pager root %d", st, s.Pager().Root())
	}

	// Committing an unchanged tree writes nothing.
	st, err = s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesWritten != 0 || st.PagesClean != nodes {
		t.Fatalf("no-op commit rewrote pages: %+v", st)
	}

	// A single insert dirties only the leaf path, not the whole tree.
	s.Tree().Insert(items[0].Rect, 9999)
	st, err = s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesWritten == 0 || st.PagesWritten >= nodes/2 {
		t.Fatalf("single insert rewrote %d of %d pages", st.PagesWritten, nodes)
	}
	if st.PagesClean == 0 {
		t.Fatalf("single insert left no page clean: %+v", st)
	}

	// Deleting most items dissolves nodes; their pages are freed and reused.
	for _, it := range items[:300] {
		if !s.Tree().Delete(it.Rect, it.Data) {
			t.Fatalf("delete of item %d failed", it.Data)
		}
	}
	before := s.Pager().Stats()
	st, err = s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesFreed == 0 {
		t.Fatalf("mass delete freed no pages: %+v", st)
	}
	s.Tree().InsertItems(items[:300])
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	after := s.Pager().Stats()
	if after.ReuseAllocations == before.ReuseAllocations {
		t.Error("re-growth allocated no page from the free list")
	}
}

func TestOpenTreeStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := randomItems(rng, 350, 0.01)
	s, fs := newTestStore(t, items)
	want := quantize(sortedItems(s.Tree()))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Pager().Close(); err != nil {
		t.Fatal(err)
	}

	p, err := storage.OpenPager(fs, "tree.db", storage.PageSize1K, storage.PagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s2, err := OpenTreeStore(p, Options{PageSize: storage.PageSize1K})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := sortedItems(s2.Tree())
	if len(got) != len(want) {
		t.Fatalf("reloaded %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// The rebound diff state matches the disk: nothing is rewritten.
	st, err := s2.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesWritten != 0 {
		t.Fatalf("commit after reopen rewrote %d pages", st.PagesWritten)
	}
	// And ReadPage serves every committed node.
	var readErr error
	s2.Tree().Walk(func(n *Node) {
		if _, err := s2.ReadPage(n.ID); err != nil && readErr == nil {
			readErr = err
		}
	})
	if readErr != nil {
		t.Fatalf("ReadPage of a committed node: %v", readErr)
	}
}

func TestTreeStoreErrors(t *testing.T) {
	fs := storage.NewMemVFS()
	p, err := storage.OpenPager(fs, "e.db", storage.PageSize1K, storage.PagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := NewTreeStore(MustNew(Options{PageSize: storage.PageSize2K}), p); err == nil {
		t.Error("page-size mismatch accepted")
	}
	if _, err := OpenTreeStore(p, Options{PageSize: storage.PageSize1K}); err == nil {
		t.Error("OpenTreeStore on an empty pager succeeded")
	}
	s, err := NewTreeStore(MustNew(Options{PageSize: storage.PageSize1K}), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPage(42); !errors.Is(err, storage.ErrUnknownPage) {
		t.Errorf("ReadPage of uncommitted node: %v", err)
	}
}

// TestLoadRejectsCorruptPageGraphs hand-crafts hostile page graphs and checks
// that Load refuses each with a wrapped ErrCorruptPage instead of crashing or
// walking forever: a self-cycle, a two-node cycle, a shared subtree (diamond)
// and a child whose stored level breaks the level discipline.
func TestLoadRejectsCorruptPageGraphs(t *testing.T) {
	const ps = storage.PageSize1K
	opts := Options{PageSize: ps}
	writeNode := func(f *storage.PageFile, id storage.PageID, dn storage.DiskNode) {
		buf, err := storage.EncodeNode(dn, ps)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	entry := func(ref storage.PageID) storage.DiskEntry {
		return storage.DiskEntry{Ref: uint32(ref)}
	}

	t.Run("self-cycle", func(t *testing.T) {
		f := storage.NewPageFile(ps)
		root := f.Allocate()
		writeNode(f, root, storage.DiskNode{Level: 1, Entries: []storage.DiskEntry{entry(root)}})
		if _, err := Load(f, root, opts); !errors.Is(err, storage.ErrCorruptPage) {
			t.Fatalf("Load: %v", err)
		}
	})
	t.Run("two-node-cycle", func(t *testing.T) {
		f := storage.NewPageFile(ps)
		a, b := f.Allocate(), f.Allocate()
		writeNode(f, a, storage.DiskNode{Level: 2, Entries: []storage.DiskEntry{entry(b)}})
		writeNode(f, b, storage.DiskNode{Level: 1, Entries: []storage.DiskEntry{entry(a)}})
		if _, err := Load(f, a, opts); !errors.Is(err, storage.ErrCorruptPage) {
			t.Fatalf("Load: %v", err)
		}
	})
	t.Run("shared-subtree", func(t *testing.T) {
		f := storage.NewPageFile(ps)
		root, a, b, leaf := f.Allocate(), f.Allocate(), f.Allocate(), f.Allocate()
		writeNode(f, leaf, storage.DiskNode{Level: 0, Entries: []storage.DiskEntry{entry(7)}})
		writeNode(f, a, storage.DiskNode{Level: 1, Entries: []storage.DiskEntry{entry(leaf)}})
		writeNode(f, b, storage.DiskNode{Level: 1, Entries: []storage.DiskEntry{entry(leaf)}})
		writeNode(f, root, storage.DiskNode{Level: 2, Entries: []storage.DiskEntry{entry(a), entry(b)}})
		if _, err := Load(f, root, opts); !errors.Is(err, storage.ErrCorruptPage) {
			t.Fatalf("Load: %v", err)
		}
	})
	t.Run("level-discipline", func(t *testing.T) {
		f := storage.NewPageFile(ps)
		root, child := f.Allocate(), f.Allocate()
		// The child claims level 3 under a level-2 root: a level loop that a
		// depth-unaware loader would descend into forever.
		writeNode(f, child, storage.DiskNode{Level: 3, Entries: []storage.DiskEntry{entry(child)}})
		writeNode(f, root, storage.DiskNode{Level: 2, Entries: []storage.DiskEntry{entry(child)}})
		if _, err := Load(f, root, opts); !errors.Is(err, storage.ErrCorruptPage) {
			t.Fatalf("Load: %v", err)
		}
	})
	t.Run("dangling-child", func(t *testing.T) {
		f := storage.NewPageFile(ps)
		root := f.Allocate()
		writeNode(f, root, storage.DiskNode{Level: 1, Entries: []storage.DiskEntry{entry(99)}})
		if _, err := Load(f, root, opts); !errors.Is(err, storage.ErrUnknownPage) {
			t.Fatalf("Load: %v", err)
		}
	})
}
