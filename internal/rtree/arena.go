package rtree

import (
	"sort"

	"repro/internal/geom"
)

// buildArena is the reusable scratch space of one tree's construction and
// maintenance path: insertion, forced re-insertion, both split algorithms and
// deletion.  Every buffer is grown on first use and reused for the lifetime
// of the tree, so in steady state an Insert allocates only when a node
// actually splits (the new page and its entry slice, which the tree keeps).
//
// The arena replaces three per-operation allocation sources of the original
// implementation: the map[int]bool recording which levels already re-inserted
// during one operation (now an epoch-marked slice), the candidate index slice
// of the overlap-minimising ChooseSubtree (allocated per directory node per
// insert), and the sort.Slice scratch of the split machinery (entry copies,
// prefix/suffix MBR arrays, distance sortings).  All sorts go through
// preallocated sort.Interface values driven by sort.Sort, which runs the
// identical pdqsort the sort.Slice calls used, so every permutation — and
// with it every tree shape — is bit-identical to the original
// (internal/rtree/parity_test.go pins this with structural goldens).
type buildArena struct {
	// epoch marks one Insert or Delete; reinserted[level] == epoch encodes
	// "this level already performed a forced re-insertion during the current
	// operation" without clearing anything between operations.
	epoch      int64
	reinserted []int64

	// pending is the forced re-insertion queue, consumed FIFO via head so the
	// buffer (not just its tail) is reused across operations.
	pending []pendingEntry
	head    int

	// orphans collects the entries of nodes dissolved by a Delete.
	orphans []pendingEntry

	// lastLeaf is the leaf that received the most recent data entry; the
	// Hilbert insertion buffer seeds its next insert from it (insertbuf.go).
	// Purely observational: plain Insert never reads it.
	lastLeaf *Node

	// ChooseSubtree candidate scratch.
	candIdx    []int
	candEnl    []float64
	candSorter candSorter

	// Forced-reinsert distance sorting.
	dists      []distEntry
	distSorter distSorter

	// R*-split scratch: the entries sorted by lower/upper corner per axis
	// ([axis][corner]), and the prefix/suffix MBRs of one sorting.
	sorted     [2][2][]Entry
	axisSorter axisEntrySorter
	prefix     []geom.Rect
	suffix     []geom.Rect

	// Quadratic-split scratch.
	groupA    []Entry
	groupB    []Entry
	remaining []Entry
}

// begin starts one Insert or Delete: levels re-inserted during earlier
// operations become stale without touching the slice.
func (a *buildArena) begin() { a.epoch++ }

// wasReinserted reports whether the level already re-inserted during the
// current operation.
func (a *buildArena) wasReinserted(level int) bool {
	return level < len(a.reinserted) && a.reinserted[level] == a.epoch
}

// markReinserted records a forced re-insertion at the level for the current
// operation.
func (a *buildArena) markReinserted(level int) {
	for len(a.reinserted) <= level {
		a.reinserted = append(a.reinserted, 0)
	}
	a.reinserted[level] = a.epoch
}

// pushPending queues an entry for re-insertion at the given level.
func (a *buildArena) pushPending(e Entry, level int) {
	a.pending = append(a.pending, pendingEntry{entry: e, level: level})
}

// popPending dequeues the oldest pending entry.  Draining the queue resets it
// to the start of its buffer.
func (a *buildArena) popPending() (pendingEntry, bool) {
	if a.head >= len(a.pending) {
		a.pending = a.pending[:0]
		a.head = 0
		return pendingEntry{}, false
	}
	p := a.pending[a.head]
	a.head++
	return p, true
}

// prefixSuffixMBRs fills the arena's prefix/suffix buffers with
// prefix[i] = MBR(sorted[0..i]) and suffix[i] = MBR(sorted[i..]), allowing
// all split distributions to be evaluated in linear time.
func (a *buildArena) prefixSuffixMBRs(sorted []Entry) (prefix, suffix []geom.Rect) {
	n := len(sorted)
	if cap(a.prefix) < n {
		a.prefix = make([]geom.Rect, n)
		a.suffix = make([]geom.Rect, n)
	}
	prefix, suffix = a.prefix[:n], a.suffix[:n]
	prefix[0] = sorted[0].Rect
	for i := 1; i < n; i++ {
		prefix[i] = prefix[i-1].Union(sorted[i].Rect)
	}
	suffix[n-1] = sorted[n-1].Rect
	for i := n - 2; i >= 0; i-- {
		suffix[i] = suffix[i+1].Union(sorted[i].Rect)
	}
	return prefix, suffix
}

// --- preallocated sorters ---------------------------------------------------
//
// Each sorter is a value stored in the arena and passed to sort.Sort as a
// pointer, so the interface conversion never allocates.  sort.Sort and
// sort.Slice are instantiations of the same pdqsort, so given identical Less
// outcomes they produce identical permutations; the structural goldens depend
// on exactly that.

// candSorter orders the candidate indexes of ChooseSubtree by ascending area
// enlargement, mirroring the original sort.Slice closure (which recomputed
// the enlargement per comparison; the values are precomputed here, which
// cannot change any comparison outcome).
type candSorter struct {
	idx []int
	enl []float64
}

func (s *candSorter) Len() int           { return len(s.idx) }
func (s *candSorter) Swap(i, j int)      { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *candSorter) Less(i, j int) bool { return s.enl[s.idx[i]] < s.enl[s.idx[j]] }

// distEntry pairs an entry with the distance of its centre from the node
// centre, for the forced-reinsert ordering.
type distEntry struct {
	dist float64
	e    Entry
}

// distSorter orders by decreasing distance (farthest entries are removed).
type distSorter struct {
	d []distEntry
}

func (s *distSorter) Len() int           { return len(s.d) }
func (s *distSorter) Swap(i, j int)      { s.d[i], s.d[j] = s.d[j], s.d[i] }
func (s *distSorter) Less(i, j int) bool { return s.d[i].dist > s.d[j].dist }

// axisEntrySorter orders entries by the lower or upper corner of their
// rectangles along one axis, the four sortings of the R*-split.
type axisEntrySorter struct {
	e     []Entry
	axis  int  // 0 = x, 1 = y
	upper bool // sort by upper instead of lower corner
}

func (s *axisEntrySorter) Len() int      { return len(s.e) }
func (s *axisEntrySorter) Swap(i, j int) { s.e[i], s.e[j] = s.e[j], s.e[i] }
func (s *axisEntrySorter) Less(i, j int) bool {
	if s.axis == 0 {
		if s.upper {
			return s.e[i].Rect.XU < s.e[j].Rect.XU
		}
		return s.e[i].Rect.XL < s.e[j].Rect.XL
	}
	if s.upper {
		return s.e[i].Rect.YU < s.e[j].Rect.YU
	}
	return s.e[i].Rect.YL < s.e[j].Rect.YL
}

// sortByAxis copies entries into the arena buffer for (axis, corner) and
// sorts it, returning the sorted scratch slice.
func (a *buildArena) sortByAxis(entries []Entry, axis, corner int) []Entry {
	buf := a.sorted[axis][corner]
	if cap(buf) < len(entries) {
		buf = make([]Entry, 0, len(entries))
	}
	buf = buf[:len(entries)]
	copy(buf, entries)
	a.sorted[axis][corner] = buf
	a.axisSorter.e = buf
	a.axisSorter.axis = axis
	a.axisSorter.upper = corner == 1
	sort.Sort(&a.axisSorter)
	a.axisSorter.e = nil
	return buf
}
