package rtree

import "repro/internal/geom"

// Delete removes one data entry with exactly the given rectangle and object
// identifier.  It reports whether such an entry was found.  Underflowing
// nodes are dissolved and their entries re-inserted (Guttman's CondenseTree),
// and the tree height shrinks when the root is left with a single child.
func (t *Tree) Delete(rect geom.Rect, data int32) bool {
	a := &t.build
	a.orphans = a.orphans[:0]
	found := t.deleteRec(t.ownRoot(), rect, data, &a.orphans)
	if !found {
		return false
	}
	t.size--
	t.muts++
	t.invalidateCatalog()

	// Re-insert entries of dissolved nodes at their original level.  One
	// "already re-inserted per level" record is shared across the whole
	// delete so that forced re-insertion cannot ping-pong entries between two
	// overflowing nodes indefinitely.
	a.begin()
	for i := 0; i < len(a.orphans); i++ {
		t.insertEntry(a.orphans[i].entry, a.orphans[i].level)
		for {
			p, ok := a.popPending()
			if !ok {
				break
			}
			t.insertEntry(p.entry, p.level)
		}
	}
	a.orphans = a.orphans[:0]

	// Shrink the tree while the root is a directory node with one child.
	for !t.root.IsLeaf() && len(t.root.Entries) == 1 {
		t.maintRemoveNode(t.root)
		t.maintEntries(t.root.Level, -1)
		t.root = t.root.Entries[0].Child
		t.height--
	}
	return true
}

// deleteRec removes the entry from the subtree rooted at n.  Underflowing
// children are removed from n and their entries appended to orphans.
func (t *Tree) deleteRec(n *Node, rect geom.Rect, data int32, orphans *[]pendingEntry) bool {
	if n.IsLeaf() {
		for i, e := range n.Entries {
			if e.Data == data && e.Rect.Equal(rect) {
				n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
				t.maintEntries(n.Level, -1)
				// Deletes never split, so without this the reservoir would
				// keep describing the removed geometry indefinitely.
				t.maintResample(n)
				return true
			}
		}
		return false
	}
	for i := range n.Entries {
		if !n.Entries[i].Rect.Intersects(rect) {
			continue
		}
		// Own the child before descending: the recursion mutates it when it
		// finds the entry.  A child searched but not containing the entry is
		// copied spuriously — same identifier, same bytes, so the incremental
		// store commit still diffs it clean.
		child := t.ownChild(n, i)
		if !t.deleteRec(child, rect, data, orphans) {
			continue
		}
		if len(child.Entries) < t.minEnt && n != nil {
			// Dissolve the underflowing child: remove its directory entry and
			// queue its remaining entries for re-insertion at the child's
			// level.
			for _, ce := range child.Entries {
				*orphans = append(*orphans, pendingEntry{entry: ce, level: child.Level})
			}
			t.maintRemoveNode(child)
			t.maintEntries(child.Level, -len(child.Entries))
			n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
			t.maintEntries(n.Level, -1)
		} else {
			n.Entries[i].Rect = child.MBR()
		}
		return true
	}
	return false
}
