package rtree

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/geom"
)

// treeFingerprint hashes the full structure of a tree — node identifiers,
// levels and every entry's geometry and payload, in walk order — so any
// mutation that leaks into a snapshot changes the fingerprint.
func treeFingerprint(t *Tree) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	wf := func(f float64) { w64(uint64(int64(f * 1e6))) }
	t.Walk(func(n *Node) {
		w64(uint64(n.ID))
		w64(uint64(n.Level))
		w64(uint64(len(n.Entries)))
		for _, e := range n.Entries {
			wf(e.Rect.XL)
			wf(e.Rect.YL)
			wf(e.Rect.XU)
			wf(e.Rect.YU)
			w64(uint64(uint32(e.Data)))
		}
	})
	return h.Sum64()
}

// TestSnapshotImmutableAcrossMutations pins the copy-on-write contract: every
// published snapshot keeps its exact structure and contents however the
// writer mutates the tree afterwards — plain inserts, deletes, buffered mixed
// batches, splits, condenses and height changes included.
func TestSnapshotImmutableAcrossMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, variant := range []Variant{RStar, Quadratic} {
		tree := MustNew(smallOpts(variant))
		items := randomItems(rng, 400, 40)
		tree.InsertItems(items)

		type snap struct {
			tree  *Tree
			fp    uint64
			items []Item
		}
		var snaps []snap
		take := func() {
			s := tree.Snapshot()
			snaps = append(snaps, snap{tree: s, fp: treeFingerprint(s), items: sortedItems(s)})
		}
		take()

		live := append([]Item(nil), items...)
		nextID := int32(10_000)
		for round := 0; round < 6; round++ {
			// Delete a deterministic slice of the oldest tenth.
			del := len(live) / 10
			for _, it := range live[:del] {
				if !tree.Delete(it.Rect, it.Data) {
					t.Fatalf("%v: delete of live item %d failed", variant, it.Data)
				}
			}
			live = live[del:]
			// Insert a fresh batch, every other round through the buffered
			// (leaf-hint) path to cover the append fast path too.
			fresh := randomItems(rng, del+13, 40)
			for i := range fresh {
				fresh[i].Data = nextID
				nextID++
			}
			if round%2 == 0 {
				tree.InsertItemsBuffered(fresh)
			} else {
				tree.InsertItems(fresh)
			}
			live = append(live, fresh...)
			take()
		}

		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("%v: writer tree invalid after rounds: %v", variant, err)
		}
		for i, s := range snaps {
			if got := treeFingerprint(s.tree); got != s.fp {
				t.Errorf("%v: snapshot %d structure changed: fingerprint %x -> %x", variant, i, s.fp, got)
			}
			if got := sortedItems(s.tree); !itemsEqual(got, s.items) {
				t.Errorf("%v: snapshot %d contents changed (%d -> %d items)", variant, i, len(s.items), len(got))
			}
			if err := s.tree.CheckInvariants(); err != nil {
				t.Errorf("%v: snapshot %d invalid: %v", variant, i, err)
			}
		}
		// The writer's final contents must equal the reference model.
		want := append([]Item(nil), live...)
		sort.Slice(want, func(i, j int) bool {
			if want[i].Data != want[j].Data {
				return want[i].Data < want[j].Data
			}
			return want[i].Rect.XL < want[j].Rect.XL
		})
		if got := sortedItems(tree); !itemsEqual(got, want) {
			t.Errorf("%v: writer contents diverged from model (%d vs %d items)", variant, len(got), len(want))
		}
	}
}

// TestSnapshotSharesUntouchedNodes verifies that a snapshot is not a deep
// copy: after a single-item mutation, the writer and the snapshot still share
// the overwhelming majority of their nodes.
func TestSnapshotSharesUntouchedNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tree := MustNew(Options{PageSize: 1024})
	tree.InsertItems(randomItems(rng, 3000, 20))

	snap := tree.Snapshot()
	tree.Insert(geom.NewRect(1, 1, 2, 2), 999_999)

	snapNodes := map[*Node]bool{}
	snap.Walk(func(n *Node) { snapNodes[n] = true })
	shared, total := 0, 0
	tree.Walk(func(n *Node) {
		total++
		if snapNodes[n] {
			shared++
		}
	})
	if total == 0 || shared < total*3/4 {
		t.Fatalf("expected structural sharing after one insert: %d of %d nodes shared", shared, total)
	}
	// The copied spine must be private: root differs.
	if snap.Root() == tree.Root() {
		t.Fatalf("root still shared after mutation — copy-on-write did not trigger")
	}
	if snap.Root().ID != tree.Root().ID {
		t.Fatalf("COW copy changed the root's page identifier: %d -> %d", snap.Root().ID, tree.Root().ID)
	}
}

// TestSnapshotNoCopiesWithoutSnapshot pins that the COW machinery is inert
// until the first Snapshot: mutations never copy nodes, so the pre-snapshot
// hot paths (and their structural goldens) are untouched.
func TestSnapshotNoCopiesWithoutSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	tree := MustNew(smallOpts(RStar))
	tree.InsertItems(randomItems(rng, 200, 30))
	before := map[*Node]bool{}
	tree.Walk(func(n *Node) { before[n] = true })
	root := tree.Root()
	// An insert that lands in an existing leaf must mutate in place.
	tree.Insert(geom.NewRect(5, 5, 6, 6), 777_777)
	if tree.Root() != root && before[root] {
		// A root split may replace the root node legitimately; only flag a
		// same-shape replacement, which would indicate a spurious copy.
		if tree.Root().ID == root.ID {
			t.Fatalf("root was copied without an active snapshot")
		}
	}
}

// TestSnapshotConcurrentReaders runs joins-like read traffic (window queries
// over a snapshot) from many goroutines while the writer keeps mutating and
// snapshotting.  Run under -race this pins that published snapshots are
// data-race free without any reader-side locking.
func TestSnapshotConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	tree := MustNew(Options{PageSize: 1024})
	items := randomItems(rng, 2000, 25)
	tree.InsertItems(items)

	snap := tree.Snapshot()
	wantFP := treeFingerprint(snap)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := geom.NewRect(r.Float64()*900, r.Float64()*900, r.Float64()*900+60, r.Float64()*900+60)
				n := 0
				snap.Search(q, func(e Entry) bool { n++; return true })
				_ = snap.CatalogStats()
			}
		}(int64(100 + g))
	}

	nextID := int32(1 << 20)
	for round := 0; round < 20; round++ {
		fresh := randomItems(rng, 50, 25)
		for i := range fresh {
			fresh[i].Data = nextID
			nextID++
		}
		buf := NewInsertBuffer(tree, 0)
		for _, it := range fresh {
			buf.Stage(it.Rect, it.Data)
		}
		for _, it := range items[round*20 : round*20+20] {
			buf.StageDelete(it.Rect, it.Data)
		}
		buf.Flush()
		_ = tree.Snapshot()
	}
	close(stop)
	wg.Wait()

	if got := treeFingerprint(snap); got != wantFP {
		t.Fatalf("snapshot fingerprint changed under concurrent writer: %x -> %x", wantFP, got)
	}
}

// TestSnapshotQuickSequences drives randomized mixed op/snapshot sequences
// and verifies every snapshot's contents against the model recorded at its
// flip, and the writer against the final model.
func TestSnapshotQuickSequences(t *testing.T) {
	seqs := 12
	if testing.Short() {
		seqs = 4
	}
	for seq := 0; seq < seqs; seq++ {
		rng := rand.New(rand.NewSource(int64(7000 + seq)))
		tree := MustNew(smallOpts(RStar))
		model := map[int32]geom.Rect{}
		nextID := int32(1)

		type snap struct {
			tree  *Tree
			items []Item
		}
		var snaps []snap
		ops := 300
		for op := 0; op < ops; op++ {
			switch r := rng.Intn(10); {
			case r < 5 || len(model) == 0: // insert
				rect := geom.NewRect(rng.Float64()*500, rng.Float64()*500,
					rng.Float64()*500+rng.Float64()*10, rng.Float64()*500+rng.Float64()*10)
				tree.Insert(rect, nextID)
				model[nextID] = rect
				nextID++
			case r < 8: // delete a random live item
				for id, rect := range model {
					if !tree.Delete(rect, id) {
						t.Fatalf("seq %d: delete of live id %d failed", seq, id)
					}
					delete(model, id)
					break
				}
			default: // snapshot
				s := tree.Snapshot()
				snaps = append(snaps, snap{tree: s, items: sortedItems(s)})
			}
		}
		for i, s := range snaps {
			if got := sortedItems(s.tree); !itemsEqual(got, s.items) {
				t.Fatalf("seq %d: snapshot %d contents changed", seq, i)
			}
		}
		if len(sortedItems(tree)) != len(model) {
			t.Fatalf("seq %d: writer holds %d items, model %d", seq, tree.Len(), len(model))
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("seq %d: invariants: %v", seq, err)
		}
	}
}
