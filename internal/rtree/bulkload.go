package rtree

import (
	"math"
	"sort"

	"repro/internal/zorder"
)

// BulkLoadFill is the target node fill used by the bulk loaders.  Packing
// nodes completely full makes every subsequent insertion split; 90% leaves
// headroom while still producing far fewer pages than dynamic insertion.
const BulkLoadFill = 0.90

// bulkScratch bundles the buffers one bulk load reuses across all levels:
// one entry buffer (the leaves' data entries, overwritten in place by each
// level's directory entries — node i consumes entries at positions >= i, so
// the prefix is free to reuse), one node buffer, and the preallocated
// sorters.  A bulk load therefore performs a constant number of scratch
// allocations regardless of depth or slice count; the remaining allocations
// are the nodes themselves and their entry slices, which the tree keeps.
type bulkScratch struct {
	entries []Entry
	nodes   []*Node
	byX     centerXSorter
	byY     centerYSorter
}

// fillEntries loads the items into the scratch entry buffer.
func (b *bulkScratch) fillEntries(items []Item) []Entry {
	b.entries = make([]Entry, len(items))
	for i, it := range items {
		b.entries[i] = Entry{Rect: it.Rect, Data: it.Data}
	}
	return b.entries
}

// nextLevel overwrites the buffer prefix with directory entries over the
// nodes just packed and returns the shortened buffer.
func (b *bulkScratch) nextLevel() []Entry {
	for i, n := range b.nodes {
		b.entries[i] = Entry{Rect: n.MBR(), Child: n}
	}
	b.entries = b.entries[:len(b.nodes)]
	return b.entries
}

// centerXSorter orders entries by the x-coordinate of their centres.
type centerXSorter struct{ e []Entry }

func (s *centerXSorter) Len() int      { return len(s.e) }
func (s *centerXSorter) Swap(i, j int) { s.e[i], s.e[j] = s.e[j], s.e[i] }
func (s *centerXSorter) Less(i, j int) bool {
	return s.e[i].Rect.Center().X < s.e[j].Rect.Center().X
}

// centerYSorter orders entries by the y-coordinate of their centres.
type centerYSorter struct{ e []Entry }

func (s *centerYSorter) Len() int      { return len(s.e) }
func (s *centerYSorter) Swap(i, j int) { s.e[i], s.e[j] = s.e[j], s.e[i] }
func (s *centerYSorter) Less(i, j int) bool {
	return s.e[i].Rect.Center().Y < s.e[j].Rect.Center().Y
}

// hilbertSorter orders entries by precomputed Hilbert keys of their centres.
// The original implementation recomputed the key inside the comparison
// closure; precomputing cannot change any comparison outcome, so the
// permutation (and the tree shape) is unchanged.
type hilbertSorter struct {
	e    []Entry
	keys []uint64
}

func (s *hilbertSorter) Len() int { return len(s.e) }
func (s *hilbertSorter) Swap(i, j int) {
	s.e[i], s.e[j] = s.e[j], s.e[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
func (s *hilbertSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }

// BulkLoadSTR builds a tree from the given items with the Sort-Tile-Recursive
// packing algorithm: items are sorted by the x-coordinate of their centres,
// cut into vertical slices, each slice is sorted by y and cut into nodes.
// The same procedure packs the directory levels.
//
// Bulk loading is an extension beyond the paper (the paper builds its trees
// by dynamic insertion); it is provided because packed trees are a common
// baseline and the experiment harness uses it to build very large trees
// quickly.  The resulting tree answers queries and participates in joins
// exactly like a dynamically built one.
func BulkLoadSTR(opts Options, items []Item) (*Tree, error) {
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	var b bulkScratch
	entries := b.fillEntries(items)
	perNode := targetFill(t.maxEnt)

	// Catalog statistics are collected as the levels are packed, so the
	// finished tree carries them without a separate walk (see sample.go).
	cs := newCatalogSampler()
	level := 0
	for {
		b.nodes = t.packSTR(b.nodes[:0], &b, entries, level, perNode)
		cs.observeLevel(b.nodes)
		if len(b.nodes) == 1 {
			t.root = b.nodes[0]
			t.height = level + 1
			t.size = len(items)
			t.setCatalog(cs)
			return t, nil
		}
		entries = b.nextLevel()
		level++
	}
}

// BulkLoadHilbert builds a tree by sorting the items along the Hilbert curve
// of their centres and packing consecutive runs into nodes, level by level.
func BulkLoadHilbert(opts Options, items []Item) (*Tree, error) {
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	world := items[0].Rect
	for _, it := range items[1:] {
		world = world.Union(it.Rect)
	}
	var b bulkScratch
	entries := b.fillEntries(items)
	h := hilbertSorter{e: entries, keys: make([]uint64, len(entries))}
	for i := range entries {
		h.keys[i] = zorder.HilbertKey(entries[i].Rect.Center(), world)
	}
	sort.Sort(&h)
	perNode := targetFill(t.maxEnt)

	cs := newCatalogSampler()
	level := 0
	for {
		b.nodes = t.packRuns(b.nodes[:0], entries, level, perNode)
		cs.observeLevel(b.nodes)
		if len(b.nodes) == 1 {
			t.root = b.nodes[0]
			t.height = level + 1
			t.size = len(items)
			t.setCatalog(cs)
			return t, nil
		}
		// Directory entries are already in curve order because their children
		// were packed from a curve-ordered sequence.
		entries = b.nextLevel()
		level++
	}
}

// targetFill returns the number of entries packed per node.
func targetFill(capacity int) int {
	per := int(float64(capacity) * BulkLoadFill)
	if per < 2 {
		per = 2
	}
	if per > capacity {
		per = capacity
	}
	return per
}

// packSTR packs entries into nodes of the given level using Sort-Tile-
// Recursive tiling, appending the nodes to dst.  Entries are sorted in
// place; callers pass the reusable level buffer.
func (t *Tree) packSTR(dst []*Node, b *bulkScratch, entries []Entry, level, perNode int) []*Node {
	n := len(entries)
	nodeCount := (n + perNode - 1) / perNode
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	perSlice := sliceCount * perNode

	b.byX.e = entries
	sort.Sort(&b.byX)
	b.byX.e = nil

	for start := 0; start < n; start += perSlice {
		end := start + perSlice
		if end > n {
			end = n
		}
		slice := entries[start:end]
		b.byY.e = slice
		sort.Sort(&b.byY)
		b.byY.e = nil
		dst = t.packRuns(dst, slice, level, perNode)
	}
	rebalanceTail(t, dst)
	return dst
}

// rebalanceTail fixes up a possible underfilled final node produced by the
// last (short) slice by borrowing entries from its predecessor.
func rebalanceTail(t *Tree, nodes []*Node) {
	if len(nodes) < 2 {
		return
	}
	last := nodes[len(nodes)-1]
	prev := nodes[len(nodes)-2]
	if deficit := t.minEnt - len(last.Entries); deficit > 0 && len(prev.Entries)-deficit >= t.minEnt {
		cut := len(prev.Entries) - deficit
		moved := append([]Entry(nil), prev.Entries[cut:]...)
		prev.Entries = prev.Entries[:cut]
		last.Entries = append(moved, last.Entries...)
	}
}

// packRuns packs consecutive runs of entries into nodes of the given level,
// appending them to dst.  If the final run would fall below the minimum fill
// m, entries are shifted from the previous node so that both satisfy the
// R-tree fill invariant (considering only the nodes packed by this call).
func (t *Tree) packRuns(dst []*Node, entries []Entry, level, perNode int) []*Node {
	first := len(dst)
	for start := 0; start < len(entries); start += perNode {
		end := start + perNode
		if end > len(entries) {
			end = len(entries)
		}
		node := t.newNode(level)
		node.Entries = make([]Entry, end-start)
		copy(node.Entries, entries[start:end])
		dst = append(dst, node)
	}
	if len(dst)-first >= 2 {
		rebalanceTail(t, dst)
	}
	return dst
}

// Build constructs a tree from items either by repeated insertion (the
// paper's method) or by STR bulk loading when bulk is true.  It is a
// convenience wrapper used by the experiment harness and the examples.
func Build(opts Options, items []Item, bulk bool) (*Tree, error) {
	if bulk {
		return BulkLoadSTR(opts, items)
	}
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	t.InsertItems(items)
	return t, nil
}
