package rtree

import (
	"math"
	"sort"

	"repro/internal/zorder"
)

// BulkLoadFill is the target node fill used by the bulk loaders.  Packing
// nodes completely full makes every subsequent insertion split; 90% leaves
// headroom while still producing far fewer pages than dynamic insertion.
const BulkLoadFill = 0.90

// BulkLoadSTR builds a tree from the given items with the Sort-Tile-Recursive
// packing algorithm: items are sorted by the x-coordinate of their centres,
// cut into vertical slices, each slice is sorted by y and cut into nodes.
// The same procedure packs the directory levels.
//
// Bulk loading is an extension beyond the paper (the paper builds its trees
// by dynamic insertion); it is provided because packed trees are a common
// baseline and the experiment harness uses it to build very large trees
// quickly.  The resulting tree answers queries and participates in joins
// exactly like a dynamically built one.
func BulkLoadSTR(opts Options, items []Item) (*Tree, error) {
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	entries := make([]Entry, len(items))
	for i, it := range items {
		entries[i] = Entry{Rect: it.Rect, Data: it.Data}
	}
	perNode := targetFill(t.maxEnt)

	level := 0
	for {
		nodes := packSTR(t, entries, level, perNode)
		if len(nodes) == 1 {
			t.root = nodes[0]
			t.height = level + 1
			t.size = len(items)
			return t, nil
		}
		// Build directory entries over the nodes just produced and pack the
		// next level.
		entries = make([]Entry, len(nodes))
		for i, n := range nodes {
			entries[i] = Entry{Rect: n.MBR(), Child: n}
		}
		level++
	}
}

// BulkLoadHilbert builds a tree by sorting the items along the Hilbert curve
// of their centres and packing consecutive runs into nodes, level by level.
func BulkLoadHilbert(opts Options, items []Item) (*Tree, error) {
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	world := items[0].Rect
	for _, it := range items[1:] {
		world = world.Union(it.Rect)
	}
	entries := make([]Entry, len(items))
	for i, it := range items {
		entries[i] = Entry{Rect: it.Rect, Data: it.Data}
	}
	sort.Slice(entries, func(i, j int) bool {
		return zorder.HilbertKey(entries[i].Rect.Center(), world) <
			zorder.HilbertKey(entries[j].Rect.Center(), world)
	})
	perNode := targetFill(t.maxEnt)

	level := 0
	for {
		nodes := packRuns(t, entries, level, perNode)
		if len(nodes) == 1 {
			t.root = nodes[0]
			t.height = level + 1
			t.size = len(items)
			return t, nil
		}
		entries = make([]Entry, len(nodes))
		for i, n := range nodes {
			entries[i] = Entry{Rect: n.MBR(), Child: n}
		}
		// Directory entries are already in curve order because their children
		// were packed from a curve-ordered sequence.
		level++
	}
}

// targetFill returns the number of entries packed per node.
func targetFill(capacity int) int {
	per := int(float64(capacity) * BulkLoadFill)
	if per < 2 {
		per = 2
	}
	if per > capacity {
		per = capacity
	}
	return per
}

// packSTR packs entries into nodes of the given level using Sort-Tile-
// Recursive tiling.
func packSTR(t *Tree, entries []Entry, level, perNode int) []*Node {
	n := len(entries)
	nodeCount := (n + perNode - 1) / perNode
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	perSlice := sliceCount * perNode

	sorted := make([]Entry, n)
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Rect.Center().X < sorted[j].Rect.Center().X
	})

	var nodes []*Node
	for start := 0; start < n; start += perSlice {
		end := start + perSlice
		if end > n {
			end = n
		}
		slice := sorted[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		nodes = append(nodes, packRuns(t, slice, level, perNode)...)
	}
	rebalanceTail(t, nodes)
	return nodes
}

// rebalanceTail fixes up a possible underfilled final node produced by the
// last (short) slice by borrowing entries from its predecessor.
func rebalanceTail(t *Tree, nodes []*Node) {
	if len(nodes) < 2 {
		return
	}
	last := nodes[len(nodes)-1]
	prev := nodes[len(nodes)-2]
	if deficit := t.minEnt - len(last.Entries); deficit > 0 && len(prev.Entries)-deficit >= t.minEnt {
		cut := len(prev.Entries) - deficit
		moved := append([]Entry(nil), prev.Entries[cut:]...)
		prev.Entries = prev.Entries[:cut]
		last.Entries = append(moved, last.Entries...)
	}
}

// packRuns packs consecutive runs of entries into nodes of the given level.
// If the final run would fall below the minimum fill m, entries are shifted
// from the previous node so that both satisfy the R-tree fill invariant.
func packRuns(t *Tree, entries []Entry, level, perNode int) []*Node {
	var nodes []*Node
	for start := 0; start < len(entries); start += perNode {
		end := start + perNode
		if end > len(entries) {
			end = len(entries)
		}
		node := t.newNode(level)
		node.Entries = append(node.Entries, entries[start:end]...)
		nodes = append(nodes, node)
	}
	if len(nodes) >= 2 {
		last := nodes[len(nodes)-1]
		prev := nodes[len(nodes)-2]
		if deficit := t.minEnt - len(last.Entries); deficit > 0 && len(prev.Entries)-deficit >= t.minEnt {
			cut := len(prev.Entries) - deficit
			moved := append([]Entry(nil), prev.Entries[cut:]...)
			prev.Entries = prev.Entries[:cut]
			last.Entries = append(moved, last.Entries...)
		}
	}
	return nodes
}

// Build constructs a tree from items either by repeated insertion (the
// paper's method) or by STR bulk loading when bulk is true.  It is a
// convenience wrapper used by the experiment harness and the examples.
func Build(opts Options, items []Item, bulk bool) (*Tree, error) {
	if bulk {
		return BulkLoadSTR(opts, items)
	}
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	t.InsertItems(items)
	return t, nil
}

