package rtree

import (
	"sort"

	"repro/internal/geom"
)

// Insert adds a data rectangle with the given object identifier to the tree.
func (t *Tree) Insert(rect geom.Rect, data int32) {
	t.size++
	t.muts++
	t.invalidateCatalog()
	t.build.begin()
	t.insertEntry(Entry{Rect: rect, Data: data}, 0)
	// Forced re-insertion may have queued entries; process them until the
	// queue drains.  Entries queued while draining reuse the same "one
	// re-insertion per level per insert" bookkeeping, as in the R*-tree paper.
	for {
		p, ok := t.build.popPending()
		if !ok {
			break
		}
		t.insertEntry(p.entry, p.level)
	}
}

// InsertItems inserts all items in order.
func (t *Tree) InsertItems(items []Item) {
	for _, it := range items {
		t.Insert(it.Rect, it.Data)
	}
}

// insertEntry inserts e at the given level (0 for data entries), growing the
// tree if the root splits.
func (t *Tree) insertEntry(e Entry, level int) {
	root := t.ownRoot()
	if level > root.Level {
		// Can only happen if the tree shrank while re-insertions were queued;
		// with level == root level the entry joins the root directly.
		level = root.Level
	}
	split, ok := t.insertRec(root, e, level)
	if !ok {
		return
	}
	// The root was split: grow the tree by one level.
	oldRoot := t.root
	newRoot := t.newNode(oldRoot.Level + 1)
	newRoot.Entries = make([]Entry, 0, t.maxEnt+1)
	newRoot.Entries = append(newRoot.Entries,
		Entry{Rect: oldRoot.MBR(), Child: oldRoot},
		split,
	)
	t.root = newRoot
	t.height++
	t.maintAddNode(newRoot)
	t.maintEntries(newRoot.Level, 2)
}

// insertRec descends from n to the target level, inserts the entry and
// resolves overflows bottom-up.  It returns a directory entry for a newly
// created sibling (and true) if n itself was split.
func (t *Tree) insertRec(n *Node, e Entry, level int) (Entry, bool) {
	if n.Level == level {
		n.Entries = append(n.Entries, e)
		t.maintEntries(n.Level, 1)
		if n.Level == 0 {
			// Remember the leaf that received the entry: the insertion
			// buffer seeds its next descent from it (see insertbuf.go).
			t.build.lastLeaf = n
		}
	} else {
		idx := t.chooseSubtree(n, e.Rect)
		child := t.ownChild(n, idx)
		split, ok := t.insertRec(child, e, level)
		n.Entries[idx].Rect = child.MBR()
		if ok {
			n.Entries = append(n.Entries, split)
			t.maintEntries(n.Level, 1)
		}
	}
	if len(n.Entries) > t.maxEnt {
		return t.overflow(n)
	}
	return Entry{}, false
}

// chooseSubtree returns the index of the entry of n whose subtree the new
// rectangle should be inserted into.
func (t *Tree) chooseSubtree(n *Node, r geom.Rect) int {
	if t.opts.Variant == Quadratic || n.Level > 1 {
		// Guttman's ChooseLeaf criterion, also used by the R*-tree for
		// directory levels above the leaves: least area enlargement, ties
		// broken by smallest area.
		return leastEnlargement(n.Entries, r)
	}
	// R*-tree, children are leaves: minimise overlap enlargement.  For large
	// capacities only the chooseSubtreeCandidates entries with the least area
	// enlargement are examined (the R*-tree paper's optimisation).
	candidates := t.candidateIndexes(n.Entries, r)
	best := candidates[0]
	bestOverlap := overlapEnlargement(n.Entries, best, r)
	bestEnlarge := n.Entries[best].Rect.Enlargement(r)
	bestArea := n.Entries[best].Rect.Area()
	for _, i := range candidates[1:] {
		o := overlapEnlargement(n.Entries, i, r)
		enl := n.Entries[i].Rect.Enlargement(r)
		area := n.Entries[i].Rect.Area()
		if o < bestOverlap ||
			(o == bestOverlap && enl < bestEnlarge) ||
			(o == bestOverlap && enl == bestEnlarge && area < bestArea) {
			best, bestOverlap, bestEnlarge, bestArea = i, o, enl, area
		}
	}
	return best
}

// leastEnlargement returns the index of the entry needing the least area
// enlargement to include r, ties broken by smallest area.
func leastEnlargement(entries []Entry, r geom.Rect) int {
	best := 0
	bestEnlarge := entries[0].Rect.Enlargement(r)
	bestArea := entries[0].Rect.Area()
	for i := 1; i < len(entries); i++ {
		enl := entries[i].Rect.Enlargement(r)
		area := entries[i].Rect.Area()
		if enl < bestEnlarge || (enl == bestEnlarge && area < bestArea) {
			best, bestEnlarge, bestArea = i, enl, area
		}
	}
	return best
}

// candidateIndexes returns the indexes of the entries to examine for the
// overlap-minimising ChooseSubtree: all of them for small nodes, otherwise
// the chooseSubtreeCandidates entries with the least area enlargement.  The
// index and enlargement buffers live in the build arena.
func (t *Tree) candidateIndexes(entries []Entry, r geom.Rect) []int {
	a := &t.build
	idx := a.candIdx[:0]
	for i := range entries {
		idx = append(idx, i)
	}
	a.candIdx = idx
	if len(entries) <= chooseSubtreeCandidates {
		return idx
	}
	enl := a.candEnl[:0]
	for i := range entries {
		enl = append(enl, entries[i].Rect.Enlargement(r))
	}
	a.candEnl = enl
	a.candSorter.idx, a.candSorter.enl = idx, enl
	sort.Sort(&a.candSorter)
	a.candSorter.idx, a.candSorter.enl = nil, nil
	return idx[:chooseSubtreeCandidates]
}

// overlapEnlargement returns the increase of the overlap between entry i and
// its siblings if entry i's rectangle is enlarged to include r.
func overlapEnlargement(entries []Entry, i int, r geom.Rect) float64 {
	enlarged := entries[i].Rect.Union(r)
	var delta float64
	for j := range entries {
		if j == i {
			continue
		}
		delta += enlarged.IntersectionArea(entries[j].Rect) -
			entries[i].Rect.IntersectionArea(entries[j].Rect)
	}
	return delta
}

// overflow resolves a node that exceeds the capacity M: the R*-tree removes a
// fraction of the entries for re-insertion the first time a level overflows
// during one insertion, otherwise (and always for the root and the Quadratic
// variant) the node is split.
func (t *Tree) overflow(n *Node) (Entry, bool) {
	if t.opts.Variant == RStar && n != t.root && !t.build.wasReinserted(n.Level) && t.opts.ReinsertFraction > 0 {
		t.build.markReinserted(n.Level)
		if t.forcedReinsert(n) {
			return Entry{}, false
		}
	}
	return t.splitNode(n), true
}

// forcedReinsert removes the ReinsertFraction of the node's entries whose
// rectangle centres are farthest from the centre of the node's MBR and queues
// them for re-insertion at the node's level ("close reinsert": the removed
// entries are re-inserted starting with the one closest to the centre).
// It reports whether any entries were removed; if not, the caller must split.
func (t *Tree) forcedReinsert(n *Node) bool {
	p := int(float64(len(n.Entries)) * t.opts.ReinsertFraction)
	if p < 1 {
		p = 1
	}
	if p > len(n.Entries)-t.minEnt {
		p = len(n.Entries) - t.minEnt
	}
	if p < 1 {
		// Cannot remove anything without underflowing the node; the caller
		// falls back to a split.  This only happens for tiny capacities.
		return false
	}
	a := &t.build
	center := n.MBR().Center()
	dists := a.dists[:0]
	for _, e := range n.Entries {
		dists = append(dists, distEntry{dist: e.Rect.Center().Distance(center), e: e})
	}
	a.dists = dists
	a.distSorter.d = dists
	sort.Sort(&a.distSorter)
	a.distSorter.d = nil

	removed := dists[:p]
	n.Entries = n.Entries[:0]
	for _, d := range dists[p:] {
		n.Entries = append(n.Entries, d.e)
	}
	t.maintEntries(n.Level, -p)
	t.maintResample(n)
	// Close reinsert: queue the removed entries ordered by increasing
	// distance from the centre.
	for i := len(removed) - 1; i >= 0; i-- {
		a.pushPending(removed[i].e, n.Level)
	}
	return true
}
