package rtree

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/storage"
)

// TestEpochReaderServesSnapshotState pins the version-store contract: after
// the writer commits past a snapshot, the snapshot's EpochReader serves
// untouched pages physically through the pager and rewritten or freed pages
// from the snapshot's own nodes — every page decodes to the snapshot's
// structure, never the writer's.
func TestEpochReaderServesSnapshotState(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	items := randomItems(rng, 600, 0.01)
	s, _ := newTestStore(t, items)
	defer s.Pager().Close()
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := s.Tree().Snapshot()
	reader := s.EpochReader(snap)

	// Writer moves on with spatially clustered churn (left strip of the unit
	// square only), so leaves covering the rest of the space keep their pages.
	deleted := 0
	for _, it := range items {
		if deleted >= 40 {
			break
		}
		if it.Rect.XL > 0.15 {
			continue
		}
		if !s.Tree().Delete(it.Rect, it.Data) {
			t.Fatalf("delete of live item %d failed", it.Data)
		}
		deleted++
	}
	if deleted == 0 {
		t.Fatal("no items in the churn strip — seed produced a degenerate layout")
	}
	var fresh []Item
	for i := 0; i < 40; i++ {
		x, y := rng.Float64()*0.15, rng.Float64()
		fresh = append(fresh, Item{
			Rect: geom.Rect{XL: x, YL: y, XU: x + 0.01, YU: y + 0.01},
			Data: int32(100_000 + i),
		})
	}
	s.Tree().InsertItemsBuffered(fresh)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// Every snapshot page must decode to exactly the snapshot's node.
	pageSize := snap.PageSize()
	var checked, mismatches int
	snap.Walk(func(n *Node) {
		buf, err := reader.ReadPage(n.ID)
		if err != nil {
			t.Fatalf("reading snapshot node %d: %v", n.ID, err)
		}
		dn, err := storage.DecodeNode(buf, pageSize)
		if err != nil {
			t.Fatalf("decoding snapshot node %d: %v", n.ID, err)
		}
		if int(dn.Level) != n.Level || len(dn.Entries) != len(n.Entries) {
			mismatches++
			return
		}
		for i, e := range n.Entries {
			if e.Child == nil && dn.Entries[i].Ref != uint32(e.Data) {
				mismatches++
				return
			}
		}
		checked++
	})
	if mismatches != 0 {
		t.Fatalf("%d of %d snapshot pages decoded to a different node", mismatches, checked+mismatches)
	}
	st := reader.Stats()
	if st.Physical == 0 {
		t.Fatal("no page was read physically — the epoch check serves everything from memory")
	}
	if st.Versioned == 0 {
		t.Fatal("no page came from the version store although the writer rewrote pages")
	}
	t.Logf("epoch reader: %d physical, %d versioned of %d pages", st.Physical, st.Versioned, checked)

	// A fresh reader at the current boundary sees everything physically.
	snap2 := s.Tree().Snapshot()
	reader2 := s.EpochReader(snap2)
	snap2.Walk(func(n *Node) {
		if _, err := reader2.ReadPage(n.ID); err != nil {
			t.Fatalf("current-epoch read of node %d: %v", n.ID, err)
		}
	})
	if st := reader2.Stats(); st.Versioned != 0 {
		t.Fatalf("current-epoch reader used the version store for %d pages", st.Versioned)
	}
}

// TestTreeStoreWriteThroughCache: pages a commit rewrites or frees are
// invalidated in an attached PageCache, so stale bytes are never served.
func TestTreeStoreWriteThroughCache(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	items := randomItems(rng, 300, 0.01)
	s, _ := newTestStore(t, items)
	defer s.Pager().Close()
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	treeID := s.Tree().ID()
	cache := buffer.NewPageCache(256)
	s.SetPageCache(cache, treeID)

	// Warm the cache with every page, as a tracker would.
	var keys []buffer.FrameKey
	s.Tree().Walk(func(n *Node) {
		buf, err := s.ReadPage(n.ID)
		if err != nil {
			t.Fatal(err)
		}
		key := buffer.FrameKey{Tree: treeID, Page: n.ID}
		cache.Put(key, buf)
		keys = append(keys, key)
	})

	// Insert outside the current bounds: the MBRs grow along the whole
	// insertion path, so the root page's bytes are guaranteed to change.
	rootID := s.Tree().Root().ID
	s.Tree().Insert(geom.Rect{XL: 2, YL: 2, XU: 2.1, YU: 2.1}, 777_777)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// The root page was rewritten, so its cached bytes must be gone, while
	// pages of untouched subtrees stay cached.
	rootKey := buffer.FrameKey{Tree: treeID, Page: rootID}
	if _, ok := cache.Get(rootKey); ok {
		t.Fatal("cache still serves the pre-commit root page")
	}
	surviving := 0
	for _, k := range keys {
		if _, ok := cache.Get(k); ok {
			surviving++
		}
	}
	if surviving == 0 {
		t.Fatal("commit invalidated every page — write-through should only drop rewritten ones")
	}
	fresh, err := s.ReadPage(rootID)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) == 0 {
		t.Fatal("re-read of rewritten root returned no bytes")
	}
}

// TestTreeStoreConcurrentReadersDuringCommit runs ReadPage and EpochReader
// traffic from several goroutines while the writer mutates and commits.
// Under -race this pins the RWMutex discipline: readers never observe a
// half-committed page table.
func TestTreeStoreConcurrentReadersDuringCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	items := randomItems(rng, 500, 0.01)
	s, _ := newTestStore(t, items)
	defer s.Pager().Close()
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := s.Tree().Snapshot()
	reader := s.EpochReader(snap)
	var ids []storage.PageID
	snap.Walk(func(n *Node) { ids = append(ids, n.ID) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[r.Intn(len(ids))]
				if _, err := reader.ReadPage(id); err != nil {
					t.Errorf("epoch read of %d: %v", id, err)
					return
				}
			}
		}(int64(200 + g))
	}

	next := int32(1 << 20)
	for round := 0; round < 10; round++ {
		fresh := randomItems(rng, 30, 0.01)
		for i := range fresh {
			fresh[i].Data = next
			next++
		}
		s.Tree().InsertItemsBuffered(fresh)
		for _, it := range items[round*10 : round*10+10] {
			s.Tree().Delete(it.Rect, it.Data)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
}
