package rtree

import (
	"sync"

	"repro/internal/buffer"
	"repro/internal/geom"
)

// AccessNode charges one read of the node to the tracker (path buffer, LRU
// buffer or disk).  A nil tracker is a no-op, so query code can be written
// once for tracked and untracked execution.
func (t *Tree) AccessNode(tr *buffer.Tracker, n *Node) {
	if tr == nil {
		return
	}
	tr.Access(t.id, n.Level, n.ID)
}

// Search reports every data entry whose rectangle intersects query to fn.
// Returning false from fn stops the search early.  This is the window query
// of section 2 (filter step only: it operates on MBRs).
func (t *Tree) Search(query geom.Rect, fn func(Entry) bool) {
	t.SearchTracked(query, nil, fn)
}

// SearchTracked is Search with I/O accounting: every node visited is charged
// to the tracker, and the intersection tests are charged to the tracker's
// metrics collector as join-condition comparisons.  A nil tracker disables
// all accounting.
func (t *Tree) SearchTracked(query geom.Rect, tr *buffer.Tracker, fn func(Entry) bool) {
	t.AccessNode(tr, t.root)
	t.searchNode(t.root, query, tr, fn)
}

func (t *Tree) searchNode(n *Node, query geom.Rect, tr *buffer.Tracker, fn func(Entry) bool) bool {
	counter := trackerCounter(tr)
	for i := range n.Entries {
		e := n.Entries[i]
		if !geom.IntersectsCounted(e.Rect, query, counter) {
			continue
		}
		if n.IsLeaf() {
			if !fn(e) {
				return false
			}
			continue
		}
		t.AccessNode(tr, e.Child)
		if !t.searchNode(e.Child, query, tr, fn) {
			return false
		}
	}
	return true
}

// SearchSubtree runs a window query restricted to the subtree rooted at n.
// The spatial join of trees with different heights uses it to evaluate the
// data rectangles of the taller tree against a subtree of the shorter one
// (section 4.4, policy (a)).
func (t *Tree) SearchSubtree(n *Node, query geom.Rect, tr *buffer.Tracker, fn func(Entry) bool) {
	t.searchNode(n, query, tr, fn)
}

// BatchScratch holds the per-depth active query sets of a batched subtree
// search.  The buffers grow to the working-set size on first use; a reused
// scratch makes BatchSearchSubtreeScratch allocation-free in steady state.
// A BatchScratch must not be shared between concurrent searches.
type BatchScratch struct {
	active [][]int32
}

// level returns the active-set buffer for one recursion depth, truncated for
// reuse.
func (s *BatchScratch) level(depth int) []int32 {
	for len(s.active) <= depth {
		s.active = append(s.active, nil)
	}
	return s.active[depth][:0]
}

// batchScratchPool backs the scratch-less BatchSearchSubtree entry point.
var batchScratchPool = sync.Pool{New: func() any { return new(BatchScratch) }}

// BatchSearchSubtree evaluates several window queries against the subtree
// rooted at n in a single traversal: a child is descended into at most once
// even if multiple query rectangles intersect it.  This implements policy (b)
// of section 4.4, which guarantees that each page of the subtree is read only
// once.  fn receives the index of the matching query rectangle and the data
// entry.
func (t *Tree) BatchSearchSubtree(n *Node, queries []geom.Rect, tr *buffer.Tracker, fn func(q int, e Entry)) {
	s := batchScratchPool.Get().(*BatchScratch)
	t.BatchSearchSubtreeScratch(n, queries, tr, s, fn)
	batchScratchPool.Put(s)
}

// BatchSearchSubtreeScratch is BatchSearchSubtree with caller-provided
// scratch, so tight loops (the height-difference join runs one batch search
// per directory entry) reuse the active sets instead of allocating them per
// node visited.
func (t *Tree) BatchSearchSubtreeScratch(n *Node, queries []geom.Rect, tr *buffer.Tracker, s *BatchScratch, fn func(q int, e Entry)) {
	if len(queries) == 0 {
		return
	}
	root := s.level(0)
	for i := range queries {
		root = append(root, int32(i))
	}
	s.active[0] = root
	t.batchSearch(n, queries, root, 1, s, tr, fn)
}

// batchSearch visits the subtree once, narrowing the set of active query
// rectangles as it descends.  Active sets live in the scratch, one buffer per
// depth: a depth's buffer is rebuilt for each sibling only after the descent
// through the previous sibling has finished with it.
func (t *Tree) batchSearch(n *Node, queries []geom.Rect, active []int32, depth int, s *BatchScratch, tr *buffer.Tracker, fn func(q int, e Entry)) {
	counter := trackerCounter(tr)
	for i := range n.Entries {
		e := n.Entries[i]
		if n.IsLeaf() {
			for _, q := range active {
				if geom.IntersectsCounted(e.Rect, queries[q], counter) {
					fn(int(q), e)
				}
			}
			continue
		}
		childActive := s.level(depth)
		for _, q := range active {
			if geom.IntersectsCounted(e.Rect, queries[q], counter) {
				childActive = append(childActive, q)
			}
		}
		s.active[depth] = childActive
		if len(childActive) == 0 {
			continue
		}
		t.AccessNode(tr, e.Child)
		t.batchSearch(e.Child, queries, childActive, depth+1, s, tr, fn)
	}
}

// SearchPoint reports every data entry whose rectangle contains the point p.
func (t *Tree) SearchPoint(p geom.Point, fn func(Entry) bool) {
	t.Search(p.Rect(), fn)
}

// All reports every data entry of the tree to fn.  Returning false stops the
// enumeration.
func (t *Tree) All(fn func(Entry) bool) {
	t.all(t.root, fn)
}

func (t *Tree) all(n *Node, fn func(Entry) bool) bool {
	for _, e := range n.Entries {
		if n.IsLeaf() {
			if !fn(e) {
				return false
			}
			continue
		}
		if !t.all(e.Child, fn) {
			return false
		}
	}
	return true
}

// Items returns all data entries of the tree as items, in traversal order.
func (t *Tree) Items() []Item {
	items := make([]Item, 0, t.size)
	t.All(func(e Entry) bool {
		items = append(items, Item{Rect: e.Rect, Data: e.Data})
		return true
	})
	return items
}

// trackerCounter returns the comparison counter behind the tracker, or nil.
func trackerCounter(tr *buffer.Tracker) geom.ComparisonCounter {
	if tr == nil {
		return nil
	}
	if m := tr.Metrics(); m != nil {
		return m
	}
	return nil
}
