package rtree

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/zorder"
)

// Hilbert-buffered insertion.
//
// Dynamic R*-tree construction is CPU-bound in ChooseSubtree's
// overlap-enlargement scan: every insert descends from the root and, at the
// leaf-parent level, evaluates the overlap enlargement of up to 32 candidate
// entries against all their siblings (O(candidates × fan-out) floating-point
// work).  An arbitrary insertion order pays that full scan for every single
// rectangle.
//
// The insertion buffer stages inserts, sorts each batch by the Hilbert key of
// the rectangle centres — the same curve the Hilbert bulk loader and the
// spatial join partitioner use — and applies them in curve order.  Spatially
// consecutive inserts overwhelmingly land in the same leaf, so the buffer
// seeds each insert from the leaf the previous one chose: while the staged
// rectangle lies inside that leaf's MBR and the leaf has room, the entry is
// appended directly — no directory rectangle grows (the rectangle is covered),
// no node overflows (capacity was checked), so the tree's invariants are
// untouched and the whole root-to-leaf descent with its overlap scan is
// skipped.  This is the disk-resident update batching of EMBANKS-style
// buffer trees reduced to its in-memory essence: buffer, order spatially,
// apply in locality order.
//
// Buffered insertion produces a different (but equally valid) tree shape than
// plain insertion order — exactly as any insertion order does.  The tree
// passes the full structural validation and yields bit-identical join results
// (insertbuf_test.go and the join-level identity tests pin both).  Plain
// Insert is not changed in any way; the structural parity goldens of
// parity_test.go keep guarding that.

// DefaultInsertBufferCapacity is the batch size used when NewInsertBuffer is
// given a non-positive capacity.  4096 staged rectangles sort in microseconds
// and give the Hilbert order enough run length for the leaf hint to pay off.
const DefaultInsertBufferCapacity = 4096

// DefaultHintFillPercent caps how full the leaf-hint fast path packs a leaf,
// as a percentage of the page capacity.  Appending up to the raw capacity
// packs hint-run leaves to 100%, so the very next insert or a later update in
// that region forces an immediate split — the same reason the bulk loaders
// stop at BulkLoadFill.  90% matches BulkLoadFill and leaves every hint-built
// leaf the same headroom a packed leaf gets.
const DefaultHintFillPercent = 90

// hintResampleEvery is how many hint hits pass between reservoir refreshes of
// the hinted leaf: frequent enough that leaf shape statistics track long hint
// runs (maintain_test.go bounds the drift), rare enough that the fast path
// stays O(1) amortised — one O(fan-out) summary per 8 appends.
const hintResampleEvery = 8

// stagedOp is one buffered mutation: an insert or, with del set, a delete of
// exactly the given rectangle and object identifier.
type stagedOp struct {
	item Item
	del  bool
}

// InsertBuffer stages inserts — and deletes, EMBANKS-style — for one tree
// and applies each batch as a single Hilbert-ordered round: all staged
// mutations are sorted by the Hilbert key of their rectangle centres and
// applied in curve order, so spatially neighbouring inserts and deletes land
// together and the leaf-hint fast path keeps its run length even through
// mixed batches.  Stable sorting keeps equal-key operations in staging
// order, so an insert staged after a delete of the same rectangle still
// applies after it.
//
// It is not safe for concurrent use, mirroring the tree's mutation contract.
// Mutating the tree directly between Stage and Flush is allowed: the buffer
// detects the interleaved mutation through the tree's mutation counter and
// drops its leaf hint instead of touching a node the mutation may have
// dissolved.  Applied deletes advance the same counter, so a staged delete
// that lands in (or dissolves) the hinted leaf invalidates the hint before
// the next buffered insert can append to it.
type InsertBuffer struct {
	t        *Tree
	capacity int
	hintFill int // max entries the fast path fills a leaf to

	ops   []stagedOp
	keys  []uint64
	order []int32
	srt   hilbertOrderSorter

	// Leaf hint: the leaf the previous applied insert landed in, its MBR, and
	// the tree mutation epoch the hint was taken at.
	hint      *Node
	hintMBR   geom.Rect
	hintEpoch int64

	staged       int
	applied      int
	hintHits     int
	flushes      int
	deletes      int // staged deletes
	deletesDone  int // applied deletes that found their entry
	deleteMisses int // applied deletes whose entry was not in the tree
}

// NewInsertBuffer returns an insertion buffer over t that flushes
// automatically whenever capacity rectangles are staged (capacity <= 0 means
// DefaultInsertBufferCapacity).
func NewInsertBuffer(t *Tree, capacity int) *InsertBuffer {
	if capacity <= 0 {
		capacity = DefaultInsertBufferCapacity
	}
	b := &InsertBuffer{t: t, capacity: capacity}
	b.SetHintFillPercent(DefaultHintFillPercent)
	return b
}

// SetHintFillPercent sets how full (in percent of the page capacity) the
// leaf-hint fast path may pack a leaf before falling back to a full descent.
// Values outside [50, 100] are clamped; the result never drops below the
// tree's minimum fill, so the fast path always leaves a structurally valid
// leaf behind.
func (b *InsertBuffer) SetHintFillPercent(pct int) {
	if pct < 50 {
		pct = 50
	}
	if pct > 100 {
		pct = 100
	}
	fill := b.t.maxEnt * pct / 100
	if fill < b.t.minEnt {
		fill = b.t.minEnt
	}
	b.hintFill = fill
}

// Stage adds one rectangle to the buffer, flushing if the batch is full.  The
// rectangle is not visible in the tree until the flush that applies it.
func (b *InsertBuffer) Stage(rect geom.Rect, data int32) {
	b.ops = append(b.ops, stagedOp{item: Item{Rect: rect, Data: data}})
	b.staged++
	if len(b.ops) >= b.capacity {
		b.Flush()
	}
}

// StageDelete stages the removal of one data entry with exactly the given
// rectangle and object identifier, flushing if the batch is full.  The entry
// stays visible in the tree until the flush that applies the delete; a
// staged delete of an entry the tree does not hold (or that a staged insert
// of the same batch has not yet applied, if it sorts later) counts as a
// delete miss, mirroring Tree.Delete's return value.
func (b *InsertBuffer) StageDelete(rect geom.Rect, data int32) {
	b.ops = append(b.ops, stagedOp{item: Item{Rect: rect, Data: data}, del: true})
	b.staged++
	b.deletes++
	if len(b.ops) >= b.capacity {
		b.Flush()
	}
}

// Len returns the number of staged, not yet applied mutations.
func (b *InsertBuffer) Len() int { return len(b.ops) }

// Staged returns the total number of mutations ever staged.
func (b *InsertBuffer) Staged() int { return b.staged }

// Applied returns the total number of rectangles inserted into the tree.
func (b *InsertBuffer) Applied() int { return b.applied }

// StagedDeletes returns the total number of deletes ever staged.
func (b *InsertBuffer) StagedDeletes() int { return b.deletes }

// DeletesApplied returns the number of applied deletes that found and
// removed their entry.
func (b *InsertBuffer) DeletesApplied() int { return b.deletesDone }

// DeleteMisses returns the number of applied deletes whose entry was not in
// the tree at apply time.
func (b *InsertBuffer) DeleteMisses() int { return b.deleteMisses }

// HintHits returns how many applied inserts took the leaf-hint fast path
// (appended to the previous insert's leaf without a root descent).
func (b *InsertBuffer) HintHits() int { return b.hintHits }

// Flushes returns how many batches have been applied.
func (b *InsertBuffer) Flushes() int { return b.flushes }

// Flush sorts the staged mutations along the Hilbert curve of their centres
// and applies every one of them to the tree as one spatially-ordered mixed
// round (the apply order is a permutation of the staged batch; equal keys
// keep staging order).  A flush of an empty buffer is a no-op.
func (b *InsertBuffer) Flush() {
	if len(b.ops) == 0 {
		return
	}
	// The curve is laid over the union of the staged rectangles and the
	// tree's current bounds, so batch keys and tree geometry share one frame.
	world := b.ops[0].item.Rect
	for _, op := range b.ops[1:] {
		world = world.Union(op.item.Rect)
	}
	if bounds, ok := b.t.Bounds(); ok {
		world = world.Union(bounds)
	}
	b.keys = b.keys[:0]
	b.order = b.order[:0]
	for i, op := range b.ops {
		b.keys = append(b.keys, zorder.HilbertKey(op.item.Rect.Center(), world))
		b.order = append(b.order, int32(i))
	}
	// Stable on the staging order, so equal keys keep a deterministic order.
	b.srt.order, b.srt.keys = b.order, b.keys
	sort.Stable(&b.srt)
	b.srt.order, b.srt.keys = nil, nil
	for _, i := range b.order {
		op := b.ops[i]
		if op.del {
			b.applyDelete(op.item)
		} else {
			b.applyOne(op.item)
		}
	}
	b.ops = b.ops[:0]
	b.flushes++
}

// applyDelete removes one staged entry.  Tree.Delete advances the mutation
// counter, so the leaf hint — which may point at the very leaf the delete
// just shrank or dissolved — can never serve the next insert of the batch.
func (b *InsertBuffer) applyDelete(it Item) {
	if b.t.Delete(it.Rect, it.Data) {
		b.deletesDone++
	} else {
		b.deleteMisses++
	}
}

// applyOne inserts one rectangle, through the leaf-hint fast path when it
// applies and through a full (hint-reseeding) descent otherwise.
func (b *InsertBuffer) applyOne(it Item) {
	t := b.t
	b.applied++
	if b.hint != nil && b.hintEpoch == t.muts && b.hint.Level == 0 &&
		len(b.hint.Entries) > 0 && len(b.hint.Entries) < b.hintFill &&
		b.hintMBR.Contains(it.Rect) {
		// The rectangle lies inside the hinted leaf's MBR and the leaf has
		// room: appending it changes no directory rectangle (every ancestor
		// already covers the leaf MBR) and overflows nothing, so the R-tree
		// invariants hold without touching the path above the leaf.
		b.hint.Entries = append(b.hint.Entries, Entry{Rect: it.Rect, Data: it.Data})
		t.size++
		t.muts++
		t.maintEntries(0, 1)
		b.hintEpoch = t.muts
		b.hintHits++
		if b.hintHits%hintResampleEvery == 0 {
			// Long hint runs bypass the split path that normally refreshes
			// leaf samples; an amortised resample keeps the reservoir's leaf
			// shape statistics tracking the churn.
			t.maintResample(b.hint)
		}
		t.invalidateCatalog()
		return
	}
	t.Insert(it.Rect, it.Data)
	// Seed the next insert from the leaf this one landed in.  The hint's MBR
	// is computed once here; hint hits cannot change it (they only append
	// covered rectangles) and any other mutation advances t.muts, which
	// invalidates the hint wholesale.
	b.hint = t.build.lastLeaf
	if b.hint != nil {
		b.hintMBR = b.hint.MBR()
		// Refresh the leaf's reservoir sample while it is hot; an O(fan-out)
		// summary against a full descent is noise, and it keeps the sampled
		// statistics tracking churn-heavy workloads.
		t.maintResample(b.hint)
	}
	b.hintEpoch = t.muts
}

// hilbertOrderSorter orders the index slice by ascending Hilbert key.
type hilbertOrderSorter struct {
	order []int32
	keys  []uint64
}

func (s *hilbertOrderSorter) Len() int      { return len(s.order) }
func (s *hilbertOrderSorter) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }
func (s *hilbertOrderSorter) Less(i, j int) bool {
	return s.keys[s.order[i]] < s.keys[s.order[j]]
}

// InsertItemsBuffered inserts all items through a Hilbert insertion buffer
// sized to the whole batch (one sort, maximum run length).  It is the
// update-heavy counterpart of InsertItems: same resulting contents, same
// invariants, measurably less ChooseSubtree work.
func (t *Tree) InsertItemsBuffered(items []Item) {
	if len(items) == 0 {
		return
	}
	b := NewInsertBuffer(t, len(items))
	for _, it := range items {
		b.Stage(it.Rect, it.Data)
	}
	b.Flush()
}

// BuildBuffered constructs a tree from items by Hilbert-buffered insertion:
// a dynamically built tree (the paper's construction method, unlike the bulk
// loaders' packing) at a fraction of the ChooseSubtree cost.
func BuildBuffered(opts Options, items []Item) (*Tree, error) {
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	t.InsertItemsBuffered(items)
	return t, nil
}
