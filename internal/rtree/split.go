package rtree

import "math"

// splitNode splits an overflowing node into two, keeps the first group in n
// and returns a directory entry referencing a newly allocated sibling holding
// the second group.  All split scratch (axis sortings, prefix/suffix MBRs,
// group assembly) lives in the build arena; the only allocations are the
// sibling node and its entry slice, which the tree keeps.
func (t *Tree) splitNode(n *Node) Entry {
	var second []Entry
	if t.opts.Variant == Quadratic {
		second = t.quadraticSplit(n)
	} else {
		second = t.rstarSplit(n)
	}
	sibling := t.newNode(n.Level)
	sibling.Entries = second
	t.maintAddNode(sibling)
	t.maintResample(n)
	return Entry{Rect: sibling.MBR(), Child: sibling}
}

// keepFirstGroup replaces n's entries with the given group (entries from
// arena scratch, so the copy cannot alias n's backing array) and returns a
// tree-owned copy of the second group with room to overflow once more.
func (t *Tree) keepFirstGroup(n *Node, groupA, groupB []Entry) []Entry {
	n.Entries = append(n.Entries[:0], groupA...)
	second := make([]Entry, len(groupB), t.maxEnt+1)
	copy(second, groupB)
	return second
}

// rstarSplit implements the R*-tree split of section 3.2 of the paper: choose
// the split axis by the minimum sum of margins over all candidate
// distributions, then choose the distribution on that axis with the minimum
// overlap between the two group MBRs (ties broken by minimum combined area).
//
// The four sortings (by lower and upper corner per axis) are computed once
// into arena buffers and shared between axis choice and index choice; the
// original implementation re-sorted fresh copies for the index choice, which
// yields the identical permutation, so the resulting shapes are unchanged.
func (t *Tree) rstarSplit(n *Node) []Entry {
	a := &t.build
	m := t.minEnt

	var sums [2]float64
	for axis := 0; axis < 2; axis++ {
		for corner := 0; corner < 2; corner++ {
			sums[axis] += t.marginSum(a.sortByAxis(n.Entries, axis, corner), m)
		}
	}
	axis := 1
	if sums[0] <= sums[1] {
		axis = 0
	}

	best := t.chooseSplitIndex(a.sorted[axis], m)
	sorted := a.sorted[axis][best.sorting]
	return t.keepFirstGroup(n, sorted[:best.k], sorted[best.k:])
}

// marginSum returns the sum of the margins of both group MBRs over all legal
// distributions of one sorting.
func (t *Tree) marginSum(sorted []Entry, m int) float64 {
	prefix, suffix := t.build.prefixSuffixMBRs(sorted)
	var sum float64
	for k := m; k <= len(sorted)-m; k++ {
		sum += prefix[k-1].Margin() + suffix[k].Margin()
	}
	return sum
}

// splitChoice identifies one candidate distribution: the sorting it comes
// from (0 = by lower corner, 1 = by upper corner) and the size of the first
// group.
type splitChoice struct {
	sorting int
	k       int
}

// chooseSplitIndex picks the distribution with the least overlap between the
// two group MBRs, ties broken by least combined area, over both sortings of
// the chosen axis.
func (t *Tree) chooseSplitIndex(s [2][]Entry, m int) splitChoice {
	best := splitChoice{sorting: 0, k: m}
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for sorting := 0; sorting < 2; sorting++ {
		sorted := s[sorting]
		prefix, suffix := t.build.prefixSuffixMBRs(sorted)
		for k := m; k <= len(sorted)-m; k++ {
			a, b := prefix[k-1], suffix[k]
			overlap := a.IntersectionArea(b)
			area := a.Area() + b.Area()
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				best = splitChoice{sorting: sorting, k: k}
				bestOverlap, bestArea = overlap, area
			}
		}
	}
	return best
}

// quadraticSplit implements Guttman's quadratic split: pick the pair of
// entries that would waste the most area if placed together as seeds, then
// repeatedly assign the entry with the greatest preference for one group.
// Groups are assembled in arena scratch and copied out once.
func (t *Tree) quadraticSplit(n *Node) []Entry {
	a := &t.build
	entries := n.Entries
	m := t.minEnt
	seedA, seedB := pickSeeds(entries)
	groupA := append(a.groupA[:0], entries[seedA])
	groupB := append(a.groupB[:0], entries[seedB])
	mbrA := entries[seedA].Rect
	mbrB := entries[seedB].Rect

	remaining := a.remaining[:0]
	for i, e := range entries {
		if i != seedA && i != seedB {
			remaining = append(remaining, e)
		}
	}

	for len(remaining) > 0 {
		// If one group must take all remaining entries to reach the minimum
		// fill, assign them wholesale.
		if len(groupA)+len(remaining) == m {
			groupA = append(groupA, remaining...)
			remaining = remaining[:0]
			break
		}
		if len(groupB)+len(remaining) == m {
			groupB = append(groupB, remaining...)
			remaining = remaining[:0]
			break
		}
		// PickNext: the entry with the maximum difference of enlargements.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range remaining {
			dA := mbrA.Enlargement(e.Rect)
			dB := mbrB.Enlargement(e.Rect)
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		dA := mbrA.Enlargement(e.Rect)
		dB := mbrB.Enlargement(e.Rect)
		switch {
		case dA < dB:
			groupA = append(groupA, e)
			mbrA = mbrA.Union(e.Rect)
		case dB < dA:
			groupB = append(groupB, e)
			mbrB = mbrB.Union(e.Rect)
		case mbrA.Area() < mbrB.Area():
			groupA = append(groupA, e)
			mbrA = mbrA.Union(e.Rect)
		case len(groupA) <= len(groupB) && mbrA.Area() == mbrB.Area():
			groupA = append(groupA, e)
			mbrA = mbrA.Union(e.Rect)
		default:
			groupB = append(groupB, e)
			mbrB = mbrB.Union(e.Rect)
		}
	}
	a.groupA, a.groupB, a.remaining = groupA[:0], groupB[:0], remaining[:0]
	return t.keepFirstGroup(n, groupA, groupB)
}

// pickSeeds returns the indexes of the two entries that would waste the most
// area if they were placed in the same group.
func pickSeeds(entries []Entry) (int, int) {
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if waste > worst {
				worst = waste
				seedA, seedB = i, j
			}
		}
	}
	return seedA, seedB
}
