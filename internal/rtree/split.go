package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// splitNode splits an overflowing node into two, keeps the first group in n
// and returns a directory entry referencing a newly allocated sibling holding
// the second group.
func (t *Tree) splitNode(n *Node) *Entry {
	var groupA, groupB []Entry
	if t.opts.Variant == Quadratic {
		groupA, groupB = t.quadraticSplit(n.Entries)
	} else {
		groupA, groupB = t.rstarSplit(n.Entries)
	}
	sibling := t.newNode(n.Level)
	n.Entries = groupA
	sibling.Entries = groupB
	return &Entry{Rect: sibling.MBR(), Child: sibling}
}

// rstarSplit implements the R*-tree split of section 3.2 of the paper: choose
// the split axis by the minimum sum of margins over all candidate
// distributions, then choose the distribution on that axis with the minimum
// overlap between the two group MBRs (ties broken by minimum combined area).
func (t *Tree) rstarSplit(entries []Entry) (groupA, groupB []Entry) {
	m := t.minEnt
	axis := chooseSplitAxis(entries, m)
	sorted := sortedByAxis(entries, axis)
	best := chooseSplitIndex(sorted, m)
	return splitAt(sorted[best.sorting], best)
}

// axisSortings holds the entries of a node sorted by the lower and by the
// upper corner of their rectangles along one axis.
type axisSortings [2][]Entry

// sortedByAxis returns the two sortings (by lower and by upper corner) of the
// entries along the given axis (0 = x, 1 = y).
func sortedByAxis(entries []Entry, axis int) axisSortings {
	lower := make([]Entry, len(entries))
	upper := make([]Entry, len(entries))
	copy(lower, entries)
	copy(upper, entries)
	if axis == 0 {
		sort.Slice(lower, func(i, j int) bool { return lower[i].Rect.XL < lower[j].Rect.XL })
		sort.Slice(upper, func(i, j int) bool { return upper[i].Rect.XU < upper[j].Rect.XU })
	} else {
		sort.Slice(lower, func(i, j int) bool { return lower[i].Rect.YL < lower[j].Rect.YL })
		sort.Slice(upper, func(i, j int) bool { return upper[i].Rect.YU < upper[j].Rect.YU })
	}
	return axisSortings{lower, upper}
}

// marginSum returns the sum of the margins of both group MBRs over all legal
// distributions of one sorting.
func marginSum(sorted []Entry, m int) float64 {
	prefix, suffix := prefixSuffixMBRs(sorted)
	var sum float64
	for k := m; k <= len(sorted)-m; k++ {
		sum += prefix[k-1].Margin() + suffix[k].Margin()
	}
	return sum
}

// chooseSplitAxis returns 0 (x) or 1 (y), whichever axis yields the smaller
// total margin over all candidate distributions of both sortings.
func chooseSplitAxis(entries []Entry, m int) int {
	var sums [2]float64
	for axis := 0; axis < 2; axis++ {
		s := sortedByAxis(entries, axis)
		sums[axis] = marginSum(s[0], m) + marginSum(s[1], m)
	}
	if sums[0] <= sums[1] {
		return 0
	}
	return 1
}

// splitChoice identifies one candidate distribution: the sorting it comes
// from (0 = by lower corner, 1 = by upper corner) and the size of the first
// group.
type splitChoice struct {
	sorting int
	k       int
}

// chooseSplitIndex picks the distribution with the least overlap between the
// two group MBRs, ties broken by least combined area, over both sortings of
// the chosen axis.
func chooseSplitIndex(s axisSortings, m int) splitChoice {
	best := splitChoice{sorting: 0, k: m}
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for sorting := 0; sorting < 2; sorting++ {
		sorted := s[sorting]
		prefix, suffix := prefixSuffixMBRs(sorted)
		for k := m; k <= len(sorted)-m; k++ {
			a, b := prefix[k-1], suffix[k]
			overlap := a.IntersectionArea(b)
			area := a.Area() + b.Area()
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				best = splitChoice{sorting: sorting, k: k}
				bestOverlap, bestArea = overlap, area
			}
		}
	}
	return best
}

// splitAt splits the given sorted slice at index k.  The second sorting is
// resolved by the caller via chooseSplitIndex's sorting field; see rstarSplit.
func splitAt(sorted []Entry, choice splitChoice) (groupA, groupB []Entry) {
	groupA = append([]Entry(nil), sorted[:choice.k]...)
	groupB = append([]Entry(nil), sorted[choice.k:]...)
	return groupA, groupB
}

// prefixSuffixMBRs returns prefix[i] = MBR(sorted[0..i]) and
// suffix[i] = MBR(sorted[i..]), allowing all distributions to be evaluated in
// linear time.
func prefixSuffixMBRs(sorted []Entry) (prefix, suffix []geom.Rect) {
	n := len(sorted)
	prefix = make([]geom.Rect, n)
	suffix = make([]geom.Rect, n)
	prefix[0] = sorted[0].Rect
	for i := 1; i < n; i++ {
		prefix[i] = prefix[i-1].Union(sorted[i].Rect)
	}
	suffix[n-1] = sorted[n-1].Rect
	for i := n - 2; i >= 0; i-- {
		suffix[i] = suffix[i+1].Union(sorted[i].Rect)
	}
	return prefix, suffix
}

// quadraticSplit implements Guttman's quadratic split: pick the pair of
// entries that would waste the most area if placed together as seeds, then
// repeatedly assign the entry with the greatest preference for one group.
func (t *Tree) quadraticSplit(entries []Entry) (groupA, groupB []Entry) {
	m := t.minEnt
	seedA, seedB := pickSeeds(entries)
	groupA = []Entry{entries[seedA]}
	groupB = []Entry{entries[seedB]}
	mbrA := entries[seedA].Rect
	mbrB := entries[seedB].Rect

	remaining := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			remaining = append(remaining, e)
		}
	}

	for len(remaining) > 0 {
		// If one group must take all remaining entries to reach the minimum
		// fill, assign them wholesale.
		if len(groupA)+len(remaining) == m {
			groupA = append(groupA, remaining...)
			return groupA, groupB
		}
		if len(groupB)+len(remaining) == m {
			groupB = append(groupB, remaining...)
			return groupA, groupB
		}
		// PickNext: the entry with the maximum difference of enlargements.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range remaining {
			dA := mbrA.Enlargement(e.Rect)
			dB := mbrB.Enlargement(e.Rect)
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		dA := mbrA.Enlargement(e.Rect)
		dB := mbrB.Enlargement(e.Rect)
		switch {
		case dA < dB:
			groupA = append(groupA, e)
			mbrA = mbrA.Union(e.Rect)
		case dB < dA:
			groupB = append(groupB, e)
			mbrB = mbrB.Union(e.Rect)
		case mbrA.Area() < mbrB.Area():
			groupA = append(groupA, e)
			mbrA = mbrA.Union(e.Rect)
		case len(groupA) <= len(groupB) && mbrA.Area() == mbrB.Area():
			groupA = append(groupA, e)
			mbrA = mbrA.Union(e.Rect)
		default:
			groupB = append(groupB, e)
			mbrB = mbrB.Union(e.Rect)
		}
	}
	return groupA, groupB
}

// pickSeeds returns the indexes of the two entries that would waste the most
// area if they were placed in the same group.
func pickSeeds(entries []Entry) (int, int) {
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if waste > worst {
				worst = waste
				seedA, seedB = i, j
			}
		}
	}
	return seedA, seedB
}
