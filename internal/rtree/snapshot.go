package rtree

// Copy-on-write epoch snapshots.
//
// The concurrent join server (internal/server) lets thousands of readers join
// against a tree while a single writer applies Hilbert-ordered mutation
// batches.  Readers must never observe a half-applied batch, and the writer
// must never stall behind a slow reader, so the tree supports epoch-based
// copy-on-write node versioning:
//
//   - Snapshot() publishes the current tree as an immutable version: a
//     lightweight Tree view sharing every node, and an epoch fence (cowEpoch)
//     that splits the node population into "shared with some snapshot"
//     (node.epoch < cowEpoch) and "private to the writer" (node.epoch ==
//     cowEpoch).
//   - Every mutating descent first takes ownership of the nodes it is about
//     to touch (ownRoot/ownChild): a shared node is replaced by a private
//     copy — same page identifier, same entries — linked into the (already
//     owned) parent; a private node is mutated in place, exactly as before.
//
// Because ownership is only ever checked against the *latest* snapshot
// epoch, and a node reachable from snapshot k carries an epoch stamp <= k <
// cowEpoch, every node of every published snapshot is immutable forever: old
// epochs stay consistent however long a reader parks on them, and they are
// garbage collected when the last reader drops the snapshot.
//
// The copies keep their node's page identifier on purpose: a COW copy is
// logically the same page with new bytes, which is exactly what the
// incremental TreeStore commit wants to see (the page diffs dirty and is
// rewritten in place), and what keeps the join's counted I/O comparable
// across snapshots.  In-memory node identifiers are never recycled, so two
// *live* nodes never alias; only successive versions of one logical page
// share an identifier.
//
// While no snapshot has ever been taken (cowEpoch == 0, every node stamped
// 0), ownership checks short-circuit to "already owned" and the mutation
// paths are bit-identical to the pre-snapshot code — the structural parity
// goldens pin that.

// SnapshotEpoch returns the epoch fence of the latest snapshot (0 while no
// snapshot was ever taken).
func (t *Tree) SnapshotEpoch() int64 { return t.cowEpoch }

// Snapshot publishes the tree's current state as an immutable version and
// returns it as a read-only Tree sharing all nodes.  Subsequent mutations of
// the receiver copy any shared node before touching it, so the returned tree
// never changes: concurrent read-only use (searches, joins, CatalogStats) is
// safe for as long as the caller keeps it.
//
// The returned tree shares the receiver's identifier — its pages are the
// same logical pages, so buffers and page caches key them identically — and
// carries a pre-assembled catalog, so CatalogStats on the snapshot never
// races the writer's maintenance state.  Mutating the snapshot itself is not
// supported.
//
// Snapshot advances the mutation counter, which drops any insertion-buffer
// leaf hint: the hinted leaf may now be shared, and the hint fast path must
// not append to a published node.
func (t *Tree) Snapshot() *Tree {
	// Assemble the catalog while we still own the maintenance state; the
	// snapshot gets an immutable copy with the sampler detached.
	cat := t.CatalogStats()
	snap := &Tree{
		id:     t.id,
		opts:   t.opts,
		maxEnt: t.maxEnt,
		minEnt: t.minEnt,
		root:   t.root,
		height: t.height,
		size:   t.size,
		file:   t.file,
	}
	snap.catalog.cat = cat
	snap.catalog.valid = true
	// The snapshot must never fall back to a maintained-sampler read or a
	// recollection walk (its catalog is frozen), and its mutation hooks are
	// unreachable because snapshots are not mutated.
	snap.catalog.maintValid = false
	snap.catalog.maintOff = true

	t.cowEpoch++
	t.muts++ // invalidate leaf hints: their leaf is now shared
	return snap
}

// ownRoot makes the root node private to the current write epoch, copying it
// if it is shared with a snapshot, and returns the (possibly new) root.
func (t *Tree) ownRoot() *Node {
	if t.root.epoch != t.cowEpoch {
		t.root = t.copyNode(t.root)
	}
	return t.root
}

// ownChild makes the idx-th child of n private to the current write epoch,
// relinking the copy into n (which must already be owned), and returns it.
func (t *Tree) ownChild(n *Node, idx int) *Node {
	child := n.Entries[idx].Child
	if child.epoch != t.cowEpoch {
		child = t.copyNode(child)
		n.Entries[idx].Child = child
	}
	return child
}

// copyNode returns a private copy of a shared node: same page identifier and
// level, entries copied into a fresh slice with overflow headroom, stamped
// with the current write epoch.
func (t *Tree) copyNode(n *Node) *Node {
	capEnt := t.maxEnt + 1
	if len(n.Entries) > capEnt {
		capEnt = len(n.Entries)
	}
	c := &Node{ID: n.ID, Level: n.Level, epoch: t.cowEpoch}
	c.Entries = append(make([]Entry, 0, capEnt), n.Entries...)
	return c
}
