package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/storage"
)

// treeContents returns the (rect, data) multiset of the tree's data entries,
// sorted canonically.
func treeContents(t *Tree) []Item {
	var out []Item
	t.Walk(func(n *Node) {
		if !n.IsLeaf() {
			return
		}
		for _, e := range n.Entries {
			out = append(out, Item{Rect: e.Rect, Data: e.Data})
		}
	})
	sortItems(out)
	return out
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.Data != b.Data {
			return a.Data < b.Data
		}
		if a.Rect.XL != b.Rect.XL {
			return a.Rect.XL < b.Rect.XL
		}
		return a.Rect.YL < b.Rect.YL
	})
}

func itemsEqual(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Data != b[i].Data || !a[i].Rect.Equal(b[i].Rect) {
			return false
		}
	}
	return true
}

// TestInsertBufferIsPermutation is the core property (testing/quick over the
// batch size and seed): whatever order the buffer applies a staged batch in,
// the resulting tree holds exactly the staged multiset, passes the full
// structural validation, and reports consistent counters.
func TestInsertBufferIsPermutation(t *testing.T) {
	check := func(seed int64, n uint16, pageEights uint8) bool {
		count := int(n%600) + 20
		pageSize := (int(pageEights%3) + 1) * 8 * storage.EntrySize
		rng := rand.New(rand.NewSource(seed))
		items := randomItems(rng, count, 0.03)
		tr := MustNew(Options{PageSize: pageSize})
		buf := NewInsertBuffer(tr, 128)
		for _, it := range items {
			buf.Stage(it.Rect, it.Data)
		}
		buf.Flush()
		if buf.Len() != 0 || buf.Applied() != count || buf.Staged() != count {
			t.Logf("counters: len=%d applied=%d staged=%d want %d", buf.Len(), buf.Applied(), buf.Staged(), count)
			return false
		}
		if tr.Len() != count {
			t.Logf("tree holds %d entries, staged %d", tr.Len(), count)
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		want := append([]Item(nil), items...)
		sortItems(want)
		if !itemsEqual(treeContents(tr), want) {
			t.Log("tree contents are not the staged multiset")
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertBufferAutoFlush: staging past the capacity flushes automatically.
func TestInsertBufferAutoFlush(t *testing.T) {
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	buf := NewInsertBuffer(tr, 8)
	rng := rand.New(rand.NewSource(3))
	for i, it := range randomItems(rng, 20, 0.02) {
		buf.Stage(it.Rect, it.Data)
		if buf.Len() >= 8 {
			t.Fatalf("buffer holds %d items after stage %d, capacity 8", buf.Len(), i)
		}
	}
	if buf.Flushes() != 2 || tr.Len() != 16 {
		t.Fatalf("flushes=%d treeLen=%d, want 2 auto-flushes of 8", buf.Flushes(), tr.Len())
	}
	buf.Flush()
	if tr.Len() != 20 || buf.Len() != 0 {
		t.Fatalf("after final flush: treeLen=%d buffered=%d", tr.Len(), buf.Len())
	}
}

// TestInsertBufferHintHits: a spatially coherent batch must actually take the
// leaf-hint fast path — that is the whole point of the Hilbert ordering.
func TestInsertBufferHintHits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomItems(rng, 4000, 0.002)
	tr := MustNew(Options{PageSize: storage.PageSize1K})
	tr.InsertItemsBuffered(items)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// InsertItemsBuffered hides its buffer; measure with an explicit one.
	tr2 := MustNew(Options{PageSize: storage.PageSize1K})
	buf := NewInsertBuffer(tr2, len(items))
	for _, it := range items {
		buf.Stage(it.Rect, it.Data)
	}
	buf.Flush()
	if buf.HintHits() == 0 {
		t.Fatal("no insert took the leaf-hint fast path on a Hilbert-sorted batch")
	}
	rate := float64(buf.HintHits()) / float64(buf.Applied())
	t.Logf("hint hit rate: %.2f (%d/%d)", rate, buf.HintHits(), buf.Applied())
	if rate < 0.10 {
		t.Errorf("hint hit rate %.2f below 10%%; the Hilbert order is not buying locality", rate)
	}
}

// TestInsertBufferSurvivesInterleavedMutations: direct tree mutations between
// flushes (including deletes that dissolve the hinted leaf) must not corrupt
// the tree — the mutation-epoch guard has to drop the stale hint.
func TestInsertBufferSurvivesInterleavedMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := MustNew(Options{PageSize: 8 * storage.EntrySize})
	buf := NewInsertBuffer(tr, 32)
	var live []Item
	next := int32(0)
	for round := 0; round < 60; round++ {
		for i := 0; i < 24; i++ {
			it := randomItem(rng, next)
			next++
			buf.Stage(it.Rect, it.Data)
			live = append(live, it)
		}
		buf.Flush()
		// Aggressive interleaved deletes: enough to dissolve leaves (and with
		// a small page, often the one the buffer's hint points at).
		for i := 0; i < 16 && len(live) > 8; i++ {
			j := rng.Intn(len(live))
			it := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if !tr.Delete(it.Rect, it.Data) {
				t.Fatalf("round %d: delete of live item failed", round)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tr.Len() != len(live) {
			t.Fatalf("round %d: tree holds %d, want %d", round, tr.Len(), len(live))
		}
	}
	want := append([]Item(nil), live...)
	sortItems(want)
	if !itemsEqual(treeContents(tr), want) {
		t.Fatal("tree contents diverged from the live set")
	}
}

// FuzzInsertBuffer drives a mixed op stream (stage / flush / plain insert /
// delete) decoded from fuzz bytes and checks the invariants, the contents and
// the maintained catalog after every flush boundary.
func FuzzInsertBuffer(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 0, 0, 4, 5})
	f.Add(int64(42), []byte{2, 2, 2, 1, 0, 3, 3, 3, 3, 1})
	f.Add(int64(7), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		rng := rand.New(rand.NewSource(seed))
		tr := MustNew(Options{PageSize: 8 * storage.EntrySize})
		buf := NewInsertBuffer(tr, 16)
		var live, staged []Item
		next := int32(0)
		for _, op := range ops {
			switch op % 4 {
			case 0: // stage
				it := randomItem(rng, next)
				next++
				staged = append(staged, it)
				buf.Stage(it.Rect, it.Data)
				if buf.Len() == 0 { // auto-flush fired
					live = append(live, staged...)
					staged = staged[:0]
				}
			case 1: // flush
				buf.Flush()
				live = append(live, staged...)
				staged = staged[:0]
			case 2: // plain insert, bypassing the buffer
				it := randomItem(rng, next)
				next++
				tr.Insert(it.Rect, it.Data)
				live = append(live, it)
			default: // delete a live item
				if len(live) == 0 {
					continue
				}
				j := rng.Intn(len(live))
				it := live[j]
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				if !tr.Delete(it.Rect, it.Data) {
					t.Fatal("delete of live item failed")
				}
			}
		}
		buf.Flush()
		live = append(live, staged...)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(live) {
			t.Fatalf("tree holds %d, want %d", tr.Len(), len(live))
		}
		want := append([]Item(nil), live...)
		sortItems(want)
		if !itemsEqual(treeContents(tr), want) {
			t.Fatal("tree contents diverged from the op stream")
		}
		// Maintained catalog stays exact and walk-free through it all.
		cat := tr.CatalogStats()
		if got := tr.CatalogRecollections(); got != 0 {
			t.Fatalf("%d recollection walks, want 0", got)
		}
		nodes, entries := walkPopulations(tr)
		if tr.Len() > 0 {
			for l, stat := range cat.Levels {
				if stat.Nodes != nodes[l] || stat.Entries != entries[l] {
					t.Fatalf("level %d: maintained %d/%d, walk %d/%d",
						l, stat.Nodes, stat.Entries, nodes[l], entries[l])
				}
			}
		}
	})
}

// TestInsertBufferStagedDeleteInvalidatesHint is the regression test for the
// mixed-batch hint hazard: a staged delete that lands in the hinted leaf must
// invalidate the hint before the next buffered insert of the same batch, or
// that insert would append into a leaf the delete just shrank (or dissolved)
// without re-checking it.  The delete goes through Tree.Delete, which bumps
// the mutation counter the hint is epoch-checked against — this test pins
// that the check actually fires inside a single flush.
func TestInsertBufferStagedDeleteInvalidatesHint(t *testing.T) {
	tr := MustNew(smallOpts(RStar)) // M = 8, hintFill = 7
	buf := NewInsertBuffer(tr, 64)
	rect := geom.Rect{XL: 0.4, YL: 0.4, XU: 0.6, YU: 0.6}

	// Warm the hint: identical rectangles, so after the first full descent the
	// remaining four ride the fast path into one leaf.
	for i := int32(0); i < 5; i++ {
		buf.Stage(rect, i)
	}
	buf.Flush()
	if buf.HintHits() != 4 {
		t.Fatalf("warmup: %d hint hits, want 4", buf.HintHits())
	}
	if buf.hint == nil || buf.hintEpoch != tr.muts {
		t.Fatal("warmup left no hot hint — test premise broken")
	}

	// One mixed batch: a delete of an entry in the hinted leaf, then an insert
	// the stale hint would accept (covered by the hint MBR, leaf has room).
	// Identical centres give equal Hilbert keys, and the stable sort keeps
	// staging order, so the delete is applied first.
	buf.StageDelete(rect, 0)
	buf.Stage(rect, 100)
	buf.Flush()

	if buf.DeletesApplied() != 1 || buf.DeleteMisses() != 0 {
		t.Fatalf("delete counters: applied=%d misses=%d, want 1/0",
			buf.DeletesApplied(), buf.DeleteMisses())
	}
	// The insert after the delete must NOT have taken the hint path: the
	// delete advanced the mutation epoch, so the hint was dropped.
	if buf.HintHits() != 4 {
		t.Fatalf("insert after staged delete took the stale hint path: %d hint hits, want still 4", buf.HintHits())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := []Item{{rect, 1}, {rect, 2}, {rect, 3}, {rect, 4}, {rect, 100}}
	sortItems(want)
	if !itemsEqual(treeContents(tr), want) {
		t.Fatal("mixed batch left wrong contents")
	}
}

// TestInsertBufferMixedBatches drives interleaved insert/delete batches
// (EMBANKS-style mixed rounds) against a reference model: every flush applies
// one Hilbert-ordered permutation of the staged mutations, deliberate deletes
// of absent entries are counted as misses, and the counter identity
// StagedDeletes == DeletesApplied + DeleteMisses holds throughout.
func TestInsertBufferMixedBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := MustNew(Options{PageSize: 8 * storage.EntrySize})
	buf := NewInsertBuffer(tr, 256)
	var live []Item // applied in earlier rounds and still present
	next := int32(0)
	wantMisses := 0
	for round := 0; round < 40; round++ {
		// Interleave: stage inserts and deletes in alternating runs so the
		// sorted batch genuinely mixes the two op kinds.  Deletes only target
		// entries applied in earlier rounds — a delete of an insert staged in
		// the same batch could sort before it and legitimately miss.
		var fresh []Item
		for i := 0; i < 24; i++ {
			it := randomItem(rng, next)
			next++
			buf.Stage(it.Rect, it.Data)
			fresh = append(fresh, it)
			if i%2 == 1 && len(live) > 12 {
				j := rng.Intn(len(live))
				buf.StageDelete(live[j].Rect, live[j].Data)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		// One guaranteed miss per round: an identifier never inserted.
		buf.StageDelete(randomItem(rng, -1-int32(round)).Rect, -1-int32(round))
		wantMisses++
		buf.Flush()
		live = append(live, fresh...)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tr.Len() != len(live) {
			t.Fatalf("round %d: tree holds %d, model %d", round, tr.Len(), len(live))
		}
	}
	if buf.DeleteMisses() != wantMisses {
		t.Fatalf("%d delete misses, want %d", buf.DeleteMisses(), wantMisses)
	}
	if buf.StagedDeletes() != buf.DeletesApplied()+buf.DeleteMisses() {
		t.Fatalf("counter identity broken: staged=%d applied=%d misses=%d",
			buf.StagedDeletes(), buf.DeletesApplied(), buf.DeleteMisses())
	}
	want := append([]Item(nil), live...)
	sortItems(want)
	if !itemsEqual(treeContents(tr), want) {
		t.Fatal("tree contents diverged from the model after mixed batches")
	}
}

// BenchmarkInsertBuffered compares plain dynamic insertion with the
// Hilbert-buffered path at the package level (the end-to-end build benchmark
// lives in the repo root's bench_test.go).
func BenchmarkInsertBuffered(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	items := randomItems(rng, 10000, 0.01)
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := MustNew(Options{PageSize: storage.PageSize2K})
			tr.InsertItems(items)
		}
	})
	b.Run("hilbert-buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := MustNew(Options{PageSize: storage.PageSize2K})
			tr.InsertItemsBuffered(items)
		}
	})
}

// TestInsertBufferHintFillTarget pins the configurable fill target of the
// leaf-hint fast path: the hint appends into a leaf only while it holds
// fewer than hintFill entries, so a lower target hands more inserts to the
// full descent, and out-of-range percentages are clamped to [50, 100].
func TestInsertBufferHintFillTarget(t *testing.T) {
	opts := smallOpts(RStar) // capacity M = 8, m = 3
	rect := geom.Rect{XL: 0.4, YL: 0.4, XU: 0.6, YU: 0.6}

	run := func(pct, n int) (*Tree, *InsertBuffer) {
		tr := MustNew(opts)
		b := NewInsertBuffer(tr, n)
		b.SetHintFillPercent(pct)
		for i := 0; i < n; i++ {
			// Identical rectangles: after the first full descent seeds the
			// hint, every later insert is covered by the hinted leaf's MBR, so
			// only the fill target decides when the fast path stops.
			b.Stage(rect, int32(i))
		}
		b.Flush()
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("pct %d: %v", pct, err)
		}
		return tr, b
	}

	// At 100% the fast path packs the leaf to capacity: first insert
	// descends, the remaining M-1 are hint hits.
	if _, b := run(100, 8); b.HintHits() != 7 {
		t.Errorf("100%% fill: %d hint hits, want 7", b.HintHits())
	}
	// At the default 90% (fill 7 of 8) the eighth insert must leave the fast
	// path and take a full descent.
	if _, b := run(DefaultHintFillPercent, 8); b.HintHits() != 6 {
		t.Errorf("90%% fill: %d hint hits, want 6", b.HintHits())
	}
	// At 50% (fill 4) only three inserts ride the hint.
	if _, b := run(50, 8); b.HintHits() != 3 {
		t.Errorf("50%% fill: %d hint hits, want 3", b.HintHits())
	}

	// Clamping: out-of-range percentages behave as the nearest bound.
	tr := MustNew(opts)
	b := NewInsertBuffer(tr, 1)
	b.SetHintFillPercent(10)
	if b.hintFill != tr.maxEnt*50/100 {
		t.Errorf("pct 10 clamps to 50%%: hintFill = %d", b.hintFill)
	}
	b.SetHintFillPercent(300)
	if b.hintFill != tr.maxEnt {
		t.Errorf("pct 300 clamps to 100%%: hintFill = %d", b.hintFill)
	}
	// The target never drops below the tree's minimum fill.
	if b.SetHintFillPercent(50); b.hintFill < tr.minEnt {
		t.Errorf("hintFill %d below minimum fill %d", b.hintFill, tr.minEnt)
	}
}
