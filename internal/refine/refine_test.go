package refine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func pt(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }

func mustPolyline(t *testing.T, pts ...geom.Point) Polyline {
	t.Helper()
	p, err := NewPolyline(pts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustPolygon(t *testing.T, pts ...geom.Point) Polygon {
	t.Helper()
	p, err := NewPolygon(pts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewPolyline(pt(0, 0)); err == nil {
		t.Error("polyline with one point must be rejected")
	}
	if _, err := NewPolygon(pt(0, 0), pt(1, 1)); err == nil {
		t.Error("polygon with two vertices must be rejected")
	}
	if _, err := NewPolyline(pt(0, 0), pt(1, 1)); err != nil {
		t.Errorf("valid polyline rejected: %v", err)
	}
	if _, err := NewPolygon(pt(0, 0), pt(1, 0), pt(0, 1)); err != nil {
		t.Errorf("valid polygon rejected: %v", err)
	}
}

func TestPolylineBasics(t *testing.T) {
	p := mustPolyline(t, pt(0, 0), pt(3, 0), pt(3, 4))
	if p.Segments() != 2 {
		t.Errorf("Segments = %d", p.Segments())
	}
	if got := p.Length(); math.Abs(got-7) > 1e-12 {
		t.Errorf("Length = %g, want 7", got)
	}
	if got := p.MBR(); got != (geom.Rect{XL: 0, YL: 0, XU: 3, YU: 4}) {
		t.Errorf("MBR = %v", got)
	}
	if got := p.Segment(1); got.A != pt(3, 0) || got.B != pt(3, 4) {
		t.Errorf("Segment(1) = %v", got)
	}
	if (Polyline{}).Segments() != 0 {
		t.Error("empty polyline must have no segments")
	}
}

func TestPolygonBasics(t *testing.T) {
	square := mustPolygon(t, pt(0, 0), pt(2, 0), pt(2, 2), pt(0, 2))
	if square.Edges() != 4 {
		t.Errorf("Edges = %d", square.Edges())
	}
	if got := square.Area(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Area = %g, want 4", got)
	}
	if got := square.MBR(); got != (geom.Rect{XL: 0, YL: 0, XU: 2, YU: 2}) {
		t.Errorf("MBR = %v", got)
	}
	if !square.ContainsPoint(pt(1, 1)) {
		t.Error("interior point must be contained")
	}
	if !square.ContainsPoint(pt(0, 1)) {
		t.Error("boundary point must be contained")
	}
	if !square.ContainsPoint(pt(2, 2)) {
		t.Error("corner must be contained")
	}
	if square.ContainsPoint(pt(3, 1)) {
		t.Error("outside point must not be contained")
	}
	rp := RectPolygon(geom.Rect{XL: 1, YL: 1, XU: 4, YU: 3})
	if got := rp.Area(); math.Abs(got-6) > 1e-12 {
		t.Errorf("RectPolygon area = %g, want 6", got)
	}
}

func TestConcavePolygonContainment(t *testing.T) {
	// A "U" shaped concave polygon: the notch must not be contained.
	u := mustPolygon(t,
		pt(0, 0), pt(3, 0), pt(3, 3), pt(2, 3), pt(2, 1), pt(1, 1), pt(1, 3), pt(0, 3))
	if !u.ContainsPoint(pt(0.5, 2)) {
		t.Error("left arm must be inside")
	}
	if !u.ContainsPoint(pt(2.5, 2)) {
		t.Error("right arm must be inside")
	}
	if u.ContainsPoint(pt(1.5, 2)) {
		t.Error("the notch must be outside")
	}
}

func TestSegmentIntersects(t *testing.T) {
	tests := []struct {
		name string
		s, t Segment
		want bool
	}{
		{"crossing", Segment{pt(0, 0), pt(2, 2)}, Segment{pt(0, 2), pt(2, 0)}, true},
		{"touching endpoint", Segment{pt(0, 0), pt(1, 1)}, Segment{pt(1, 1), pt(2, 0)}, true},
		{"T touch", Segment{pt(0, 0), pt(2, 0)}, Segment{pt(1, 0), pt(1, 1)}, true},
		{"collinear overlap", Segment{pt(0, 0), pt(2, 0)}, Segment{pt(1, 0), pt(3, 0)}, true},
		{"collinear disjoint", Segment{pt(0, 0), pt(1, 0)}, Segment{pt(2, 0), pt(3, 0)}, false},
		{"parallel", Segment{pt(0, 0), pt(1, 0)}, Segment{pt(0, 1), pt(1, 1)}, false},
		{"disjoint", Segment{pt(0, 0), pt(1, 1)}, Segment{pt(2, 2), pt(3, 3)}, false},
		{"near miss", Segment{pt(0, 0), pt(1, 0)}, Segment{pt(0.5, 0.001), pt(1, 1)}, false},
	}
	for _, tt := range tests {
		if got := tt.s.Intersects(tt.t); got != tt.want {
			t.Errorf("%s: Intersects = %v, want %v", tt.name, got, tt.want)
		}
		if got := tt.t.Intersects(tt.s); got != tt.want {
			t.Errorf("%s (swapped): Intersects = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestSegmentIntersectionPoint(t *testing.T) {
	s := Segment{pt(0, 0), pt(2, 2)}
	u := Segment{pt(0, 2), pt(2, 0)}
	p, ok := s.Intersection(u)
	if !ok || math.Abs(p.X-1) > 1e-12 || math.Abs(p.Y-1) > 1e-12 {
		t.Fatalf("Intersection = %v, %v", p, ok)
	}
	if _, ok := s.Intersection(Segment{pt(5, 5), pt(6, 6)}); ok {
		t.Fatal("disjoint segments must not intersect")
	}
	// Collinear overlap returns a point of the shared part.
	a := Segment{pt(0, 0), pt(2, 0)}
	b := Segment{pt(1, 0), pt(3, 0)}
	p, ok = a.Intersection(b)
	if !ok || !a.containsPoint(p) || !b.containsPoint(p) {
		t.Fatalf("collinear Intersection = %v, %v", p, ok)
	}
}

func TestPolylinePolylineIntersection(t *testing.T) {
	a := mustPolyline(t, pt(0, 0), pt(1, 1), pt(2, 0))
	b := mustPolyline(t, pt(0, 1), pt(2, 1)) // passes through a's apex (1,1)
	c := mustPolyline(t, pt(0, 2), pt(2, 2)) // strictly above a
	if !a.IntersectsGeometry(b) || !b.IntersectsGeometry(a) {
		t.Error("a and b touch at the apex (1,1) and must intersect")
	}
	if a.IntersectsGeometry(c) || c.IntersectsGeometry(a) {
		t.Error("a and c must not intersect")
	}
}

func TestPolylineIntersectionsExplicit(t *testing.T) {
	// A zig-zag crossing a horizontal line twice.
	zig := mustPolyline(t, pt(0, 0), pt(1, 2), pt(2, 0))
	horiz := mustPolyline(t, pt(-1, 1), pt(3, 1))
	if !zig.IntersectsGeometry(horiz) || !horiz.IntersectsGeometry(zig) {
		t.Fatal("expected intersection")
	}
	pts := IntersectionPoints(zig, horiz)
	if len(pts) != 2 {
		t.Fatalf("expected 2 intersection points, got %v", pts)
	}
	for _, p := range pts {
		if math.Abs(p.Y-1) > 1e-9 {
			t.Fatalf("intersection point %v not on the horizontal line", p)
		}
	}
	far := mustPolyline(t, pt(10, 10), pt(11, 11))
	if zig.IntersectsGeometry(far) {
		t.Fatal("distant polylines must not intersect")
	}
	if got := IntersectionPoints(zig, far); len(got) != 0 {
		t.Fatalf("expected no intersection points, got %v", got)
	}
}

func TestPolylinePolygonIntersection(t *testing.T) {
	square := mustPolygon(t, pt(0, 0), pt(2, 0), pt(2, 2), pt(0, 2))
	crossing := mustPolyline(t, pt(-1, 1), pt(3, 1))
	inside := mustPolyline(t, pt(0.5, 0.5), pt(1.5, 1.5))
	outside := mustPolyline(t, pt(3, 3), pt(4, 4))
	if !crossing.IntersectsGeometry(square) || !square.IntersectsGeometry(crossing) {
		t.Error("crossing polyline must intersect the square")
	}
	if !inside.IntersectsGeometry(square) {
		t.Error("fully contained polyline must intersect the square")
	}
	if outside.IntersectsGeometry(square) || square.IntersectsGeometry(outside) {
		t.Error("outside polyline must not intersect the square")
	}
}

func TestPolygonPolygonIntersection(t *testing.T) {
	a := mustPolygon(t, pt(0, 0), pt(2, 0), pt(2, 2), pt(0, 2))
	b := mustPolygon(t, pt(1, 1), pt(3, 1), pt(3, 3), pt(1, 3))
	c := mustPolygon(t, pt(5, 5), pt(6, 5), pt(6, 6), pt(5, 6))
	nested := mustPolygon(t, pt(0.5, 0.5), pt(1.5, 0.5), pt(1.5, 1.5), pt(0.5, 1.5))
	if !a.IntersectsGeometry(b) || !b.IntersectsGeometry(a) {
		t.Error("overlapping polygons must intersect")
	}
	if a.IntersectsGeometry(c) {
		t.Error("distant polygons must not intersect")
	}
	if !a.IntersectsGeometry(nested) || !nested.IntersectsGeometry(a) {
		t.Error("nested polygons must intersect")
	}
}

func TestGeometryInterfaceUnknownType(t *testing.T) {
	square := mustPolygon(t, pt(0, 0), pt(1, 0), pt(1, 1))
	line := mustPolyline(t, pt(0, 0), pt(1, 1))
	if square.IntersectsGeometry(nil) || line.IntersectsGeometry(nil) {
		t.Error("nil geometry must not intersect")
	}
}

// Property: the MBR filter is sound — whenever the exact geometries
// intersect, their MBRs intersect too (the converse produces the false hits
// that the refinement step removes).
func TestFilterStepSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	randomPolyline := func() Polyline {
		x, y := rng.Float64(), rng.Float64()
		pts := []geom.Point{{X: x, Y: y}}
		for i := 0; i < 3; i++ {
			x += (rng.Float64() - 0.5) * 0.2
			y += (rng.Float64() - 0.5) * 0.2
			pts = append(pts, geom.Point{X: x, Y: y})
		}
		return Polyline{Points: pts}
	}
	exact, filtered := 0, 0
	for i := 0; i < 2000; i++ {
		a, b := randomPolyline(), randomPolyline()
		mbrHit := a.MBR().Intersects(b.MBR())
		exactHit := a.IntersectsGeometry(b)
		if exactHit {
			exact++
			if !mbrHit {
				t.Fatalf("exact intersection without MBR intersection: %v %v", a, b)
			}
		}
		if mbrHit {
			filtered++
		}
	}
	if exact == 0 || filtered <= exact {
		t.Fatalf("test data degenerate: %d exact hits, %d filter hits", exact, filtered)
	}
}
