package refine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randPolyline(rng *rand.Rand, nPts int) Polyline {
	pts := make([]geom.Point, nPts)
	x, y := rng.Float64(), rng.Float64()
	for i := range pts {
		pts[i] = geom.Point{X: x, Y: y}
		x += (rng.Float64() - 0.5) * 0.1
		y += (rng.Float64() - 0.5) * 0.1
	}
	return Polyline{Points: pts}
}

func randPolygon(rng *rand.Rand, cx, cy float64) Polygon {
	n := 3 + rng.Intn(5)
	ring := make([]geom.Point, n)
	for i := range ring {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := 0.02 + rng.Float64()*0.05
		ring[i] = geom.Point{X: cx + r*math.Cos(ang), Y: cy + r*math.Sin(ang)}
	}
	return Polygon{Ring: ring}
}

// TestIntersectsCostMatchesBoolean pins that the counted intersection test
// agrees with the uncounted one on every geometry-type pairing, and that it
// reports a positive op count whenever it did any work.
func TestIntersectsCostMatchesBoolean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	geoms := func() []Geometry {
		return []Geometry{
			randPolyline(rng, 2+rng.Intn(6)),
			randPolygon(rng, rng.Float64(), rng.Float64()),
		}
	}
	for trial := 0; trial < 500; trial++ {
		for _, a := range geoms() {
			for _, b := range geoms() {
				want := a.IntersectsGeometry(b)
				got, ops := IntersectsCost(a, b)
				if got != want {
					t.Fatalf("trial %d: IntersectsCost=%v, IntersectsGeometry=%v for %T/%T", trial, got, want, a, b)
				}
				if ops <= 0 {
					t.Fatalf("trial %d: non-positive op count %d", trial, ops)
				}
			}
		}
	}
}

// bruteDist2 is the oracle distance: the minimum over all segment pairs of
// the two geometries' boundaries, with containment handled by the caller.
func bruteSegments(g Geometry) []Segment {
	switch gg := g.(type) {
	case Polyline:
		out := make([]Segment, gg.Segments())
		for i := range out {
			out[i] = gg.Segment(i)
		}
		return out
	case Polygon:
		out := make([]Segment, gg.Edges())
		for i := range out {
			out[i] = gg.Edge(i)
		}
		return out
	}
	return nil
}

func bruteWithin(a, b Geometry, dist float64) bool {
	// Boundary-to-boundary distance.
	for _, sa := range bruteSegments(a) {
		for _, sb := range bruteSegments(b) {
			if segDist2(sa, sb) <= dist*dist {
				return true
			}
		}
	}
	// Containment: one geometry entirely inside the other polygon.
	if pg, ok := a.(Polygon); ok {
		switch o := b.(type) {
		case Polyline:
			if pg.ContainsPoint(o.Points[0]) {
				return true
			}
		case Polygon:
			if pg.ContainsPoint(o.Ring[0]) {
				return true
			}
		}
	}
	if pg, ok := b.(Polygon); ok {
		switch o := a.(type) {
		case Polyline:
			if pg.ContainsPoint(o.Points[0]) {
				return true
			}
		case Polygon:
			if pg.ContainsPoint(o.Ring[0]) {
				return true
			}
		}
	}
	return false
}

// TestDistanceWithinAgainstOracle checks the counted distance refinement
// against a brute-force oracle over random geometry pairs and distances.
func TestDistanceWithinAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		var a, b Geometry
		if rng.Intn(2) == 0 {
			a = randPolyline(rng, 2+rng.Intn(5))
		} else {
			a = randPolygon(rng, rng.Float64(), rng.Float64())
		}
		if rng.Intn(2) == 0 {
			b = randPolyline(rng, 2+rng.Intn(5))
		} else {
			b = randPolygon(rng, rng.Float64(), rng.Float64())
		}
		dist := rng.Float64() * 0.2
		want := bruteWithin(a, b, dist)
		got, ops := DistanceWithin(a, b, dist)
		if got != want {
			t.Fatalf("trial %d: DistanceWithin(%T, %T, %g)=%v, oracle=%v", trial, a, b, dist, got, want)
		}
		if ops <= 0 {
			t.Fatalf("trial %d: non-positive op count %d", trial, ops)
		}
	}
}

// TestDistanceWithinBasics pins hand-checked cases.
func TestDistanceWithinBasics(t *testing.T) {
	horiz := Polyline{Points: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}}
	above := Polyline{Points: []geom.Point{{X: 0, Y: 0.5}, {X: 1, Y: 0.5}}}
	if ok, _ := DistanceWithin(horiz, above, 0.4); ok {
		t.Fatal("parallel lines 0.5 apart reported within 0.4")
	}
	if ok, _ := DistanceWithin(horiz, above, 0.5); !ok {
		t.Fatal("parallel lines 0.5 apart not within 0.5")
	}
	crossing := Polyline{Points: []geom.Point{{X: 0.5, Y: -1}, {X: 0.5, Y: 1}}}
	if ok, _ := DistanceWithin(horiz, crossing, 0); !ok {
		t.Fatal("crossing lines not within 0")
	}
	// A small polyline strictly inside a polygon: boundary distance may be
	// large, containment must still answer within-any-distance.
	box := RectPolygon(geom.Rect{XL: 0, YL: 0, XU: 10, YU: 10})
	inner := Polyline{Points: []geom.Point{{X: 5, Y: 5}, {X: 5.1, Y: 5.1}}}
	if ok, _ := DistanceWithin(box, inner, 0); !ok {
		t.Fatal("polyline inside polygon not within 0")
	}
	if ok, _ := DistanceWithin(inner, box, 0); !ok {
		t.Fatal("polyline inside polygon not within 0 (reversed)")
	}
}

// TestSegDist2 pins the segment-distance primitive.
func TestSegDist2(t *testing.T) {
	s := Segment{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 1, Y: 0}}
	cases := []struct {
		t    Segment
		want float64
	}{
		{Segment{A: geom.Point{X: 0, Y: 1}, B: geom.Point{X: 1, Y: 1}}, 1},
		{Segment{A: geom.Point{X: 2, Y: 0}, B: geom.Point{X: 3, Y: 0}}, 1},
		{Segment{A: geom.Point{X: 0.5, Y: -1}, B: geom.Point{X: 0.5, Y: 1}}, 0},
		{Segment{A: geom.Point{X: 2, Y: 2}, B: geom.Point{X: 2, Y: 2}}, 5}, // degenerate point
	}
	for i, c := range cases {
		if got := segDist2(s, c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("case %d: segDist2 = %g, want %g", i, got, c.want)
		}
	}
}
