package refine

import "repro/internal/geom"

// Counted refinement: the same exact-geometry tests as the boolean API, but
// returning how many elementary floating-point operations the test performed,
// in the unit of the paper's cost model (one op = one MBR-comparison
// equivalent, priced by costmodel.ComparisonSeconds).  This is what lets the
// experiments report refinement CPU separately from filter I/O the way
// Section 5 of the paper does: the filter step's cost is counted inside
// internal/join, the refinement step's cost is counted here, and the two are
// priced with the same constants.
//
// The op weights below are the model, chosen to mirror geom's counting (an
// MBR intersection test counts its 1-4 coordinate comparisons):
//
//   - a segment-pair bounding-box pre-test counts 1,
//   - an exact segment intersection test counts 4 (four orientation tests),
//   - an exact segment-pair distance counts 4 (four clamped projections),
//   - a point-in-polygon ray cast counts 1 per edge visited.
const (
	opSegPairMBR  = 1
	opSegPairTest = 4
	opSegPairDist = 4
	opEdgeCross   = 1
)

// IntersectsCost reports whether the two exact geometries intersect and the
// number of counted refinement operations the test performed.  The boolean
// result is identical to a.IntersectsGeometry(b).
func IntersectsCost(a, b Geometry) (bool, int64) {
	switch ag := a.(type) {
	case Polyline:
		switch bg := b.(type) {
		case Polyline:
			return polylinesIntersectCost(ag, bg)
		case Polygon:
			return polylinePolygonIntersectCost(ag, bg)
		}
	case Polygon:
		switch bg := b.(type) {
		case Polyline:
			return polylinePolygonIntersectCost(bg, ag)
		case Polygon:
			return polygonsIntersectCost(ag, bg)
		}
	}
	return false, 0
}

func polylinesIntersectCost(a, b Polyline) (bool, int64) {
	var ops int64
	for i := 0; i < a.Segments(); i++ {
		sa := a.Segment(i)
		bbA := sa.MBR()
		for j := 0; j < b.Segments(); j++ {
			sb := b.Segment(j)
			ops += opSegPairMBR
			if !bbA.Intersects(sb.MBR()) {
				continue
			}
			ops += opSegPairTest
			if sa.Intersects(sb) {
				return true, ops
			}
		}
	}
	return false, ops
}

func polylinePolygonIntersectCost(l Polyline, p Polygon) (bool, int64) {
	var ops int64
	for i := 0; i < l.Segments(); i++ {
		sl := l.Segment(i)
		for j := 0; j < p.Edges(); j++ {
			ops += opSegPairTest
			if sl.Intersects(p.Edge(j)) {
				return true, ops
			}
		}
	}
	for _, pt := range l.Points {
		ops += int64(p.Edges()) * opEdgeCross
		if p.ContainsPoint(pt) {
			return true, ops
		}
	}
	return false, ops
}

func polygonsIntersectCost(a, b Polygon) (bool, int64) {
	var ops int64
	for i := 0; i < a.Edges(); i++ {
		ea := a.Edge(i)
		for j := 0; j < b.Edges(); j++ {
			ops += opSegPairTest
			if ea.Intersects(b.Edge(j)) {
				return true, ops
			}
		}
	}
	ops += int64(b.Edges()+a.Edges()) * opEdgeCross
	return a.ContainsPoint(b.Ring[0]) || b.ContainsPoint(a.Ring[0]), ops
}

// DistanceWithin reports whether the exact geometries come within the given
// distance of each other, and the counted refinement operations.  It is the
// refinement test of the within-distance join: the filter step proves the
// MBRs come within dist of each other, this proves (or refutes) it for the
// geometries themselves.  dist must be >= 0; geometries that touch or
// intersect are within any distance, including 0.
func DistanceWithin(a, b Geometry, dist float64) (bool, int64) {
	d2 := dist * dist
	switch ag := a.(type) {
	case Polyline:
		switch bg := b.(type) {
		case Polyline:
			return polylinesWithinCost(ag, bg, d2, dist)
		case Polygon:
			return polylinePolygonWithinCost(ag, bg, d2)
		}
	case Polygon:
		switch bg := b.(type) {
		case Polyline:
			return polylinePolygonWithinCost(bg, ag, d2)
		case Polygon:
			return polygonsWithinCost(ag, bg, d2)
		}
	}
	return false, 0
}

func polylinesWithinCost(a, b Polyline, d2, dist float64) (bool, int64) {
	var ops int64
	for i := 0; i < a.Segments(); i++ {
		sa := a.Segment(i)
		// Expanding the segment's bounding box by dist turns the box pre-test
		// of the intersection path into the distance pre-test: a segment pair
		// whose expanded boxes miss cannot come within dist.
		bbA := geom.ExpandRect(sa.MBR(), dist)
		for j := 0; j < b.Segments(); j++ {
			sb := b.Segment(j)
			ops += opSegPairMBR
			if !bbA.Intersects(sb.MBR()) {
				continue
			}
			ops += opSegPairDist
			if segDist2(sa, sb) <= d2 {
				return true, ops
			}
		}
	}
	return false, ops
}

func polylinePolygonWithinCost(l Polyline, p Polygon, d2 float64) (bool, int64) {
	var ops int64
	for i := 0; i < l.Segments(); i++ {
		sl := l.Segment(i)
		for j := 0; j < p.Edges(); j++ {
			ops += opSegPairDist
			if segDist2(sl, p.Edge(j)) <= d2 {
				return true, ops
			}
		}
	}
	// No segment comes within dist of the boundary; the only way the
	// polyline is still within dist is from inside the polygon.
	ops += int64(p.Edges()) * opEdgeCross
	return p.ContainsPoint(l.Points[0]), ops
}

func polygonsWithinCost(a, b Polygon, d2 float64) (bool, int64) {
	var ops int64
	for i := 0; i < a.Edges(); i++ {
		ea := a.Edge(i)
		for j := 0; j < b.Edges(); j++ {
			ops += opSegPairDist
			if segDist2(ea, b.Edge(j)) <= d2 {
				return true, ops
			}
		}
	}
	ops += int64(a.Edges()+b.Edges()) * opEdgeCross
	return a.ContainsPoint(b.Ring[0]) || b.ContainsPoint(a.Ring[0]), ops
}

// segDist2 returns the squared minimum distance between two segments: zero if
// they intersect, otherwise the least of the four endpoint-to-segment
// distances.
func segDist2(s, t Segment) float64 {
	if s.Intersects(t) {
		return 0
	}
	d := pointSegDist2(s.A, t)
	if v := pointSegDist2(s.B, t); v < d {
		d = v
	}
	if v := pointSegDist2(t.A, s); v < d {
		d = v
	}
	if v := pointSegDist2(t.B, s); v < d {
		d = v
	}
	return d
}

// pointSegDist2 returns the squared distance from p to the segment s (the
// clamped projection onto the segment's supporting line).
func pointSegDist2(p geom.Point, s Segment) float64 {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		vx, vy := p.X-s.A.X, p.Y-s.A.Y
		return vx*vx + vy*vy
	}
	u := ((p.X-s.A.X)*dx + (p.Y-s.A.Y)*dy) / l2
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	cx, cy := s.A.X+u*dx-p.X, s.A.Y+u*dy-p.Y
	return cx*cx + cy*cy
}
