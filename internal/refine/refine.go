// Package refine implements the refinement step of spatial query processing
// (section 2 of the paper): after the filter step has produced candidate
// pairs whose minimum bounding rectangles intersect, the exact geometries are
// checked.  This is what turns the MBR-spatial-join into the ID-spatial-join
// and the object-spatial-join of section 2.1.
//
// The package provides polylines (the geometry type of the TIGER street and
// river data) and simple polygons (the geometry type of the region data),
// exact intersection predicates between them, and the computation of the
// intersection points reported by the object-spatial-join.  The counted
// variants in counted.go report the refinement work in the cost model's
// comparison unit, so experiments can price refinement CPU separately from
// filter I/O.
//
//repro:measured
package refine

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

const eps = 1e-12

// Polyline is an open chain of straight segments.
type Polyline struct {
	Points []geom.Point
}

// NewPolyline returns a polyline over the given points.  At least two points
// are required.
func NewPolyline(pts ...geom.Point) (Polyline, error) {
	if len(pts) < 2 {
		return Polyline{}, fmt.Errorf("refine: polyline needs at least 2 points, got %d", len(pts))
	}
	return Polyline{Points: pts}, nil
}

// Segments returns the number of segments.
func (p Polyline) Segments() int {
	if len(p.Points) < 2 {
		return 0
	}
	return len(p.Points) - 1
}

// Segment returns the i-th segment.
func (p Polyline) Segment(i int) Segment {
	return Segment{A: p.Points[i], B: p.Points[i+1]}
}

// MBR returns the minimum bounding rectangle of the polyline.
func (p Polyline) MBR() geom.Rect { return geom.RectFromPoints(p.Points) }

// Length returns the total length of the polyline.
func (p Polyline) Length() float64 {
	var sum float64
	for i := 0; i < p.Segments(); i++ {
		s := p.Segment(i)
		sum += s.A.Distance(s.B)
	}
	return sum
}

// Polygon is a simple polygon given by its ring of vertices (implicitly
// closed; the last vertex must not repeat the first).
type Polygon struct {
	Ring []geom.Point
}

// NewPolygon returns a polygon over the given ring.  At least three vertices
// are required.
func NewPolygon(ring ...geom.Point) (Polygon, error) {
	if len(ring) < 3 {
		return Polygon{}, fmt.Errorf("refine: polygon needs at least 3 vertices, got %d", len(ring))
	}
	return Polygon{Ring: ring}, nil
}

// RectPolygon returns the polygon covering the rectangle r.
func RectPolygon(r geom.Rect) Polygon {
	return Polygon{Ring: []geom.Point{
		{X: r.XL, Y: r.YL}, {X: r.XU, Y: r.YL}, {X: r.XU, Y: r.YU}, {X: r.XL, Y: r.YU},
	}}
}

// Edges returns the number of edges (equal to the number of vertices).
func (p Polygon) Edges() int { return len(p.Ring) }

// Edge returns the i-th edge.
func (p Polygon) Edge(i int) Segment {
	return Segment{A: p.Ring[i], B: p.Ring[(i+1)%len(p.Ring)]}
}

// MBR returns the minimum bounding rectangle of the polygon.
func (p Polygon) MBR() geom.Rect { return geom.RectFromPoints(p.Ring) }

// Area returns the unsigned area of the polygon (shoelace formula).
func (p Polygon) Area() float64 {
	var sum float64
	n := len(p.Ring)
	for i := 0; i < n; i++ {
		a, b := p.Ring[i], p.Ring[(i+1)%n]
		sum += a.X*b.Y - b.X*a.Y
	}
	return math.Abs(sum) / 2
}

// ContainsPoint reports whether the point lies inside the polygon or on its
// boundary (ray casting with an explicit boundary check).
func (p Polygon) ContainsPoint(pt geom.Point) bool {
	n := len(p.Ring)
	for i := 0; i < n; i++ {
		if p.Edge(i).containsPoint(pt) {
			return true
		}
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := p.Ring[i], p.Ring[j]
		if (a.Y > pt.Y) != (b.Y > pt.Y) {
			x := (b.X-a.X)*(pt.Y-a.Y)/(b.Y-a.Y) + a.X
			if pt.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// Segment is a straight line segment between two points.
type Segment struct {
	A, B geom.Point
}

// MBR returns the bounding rectangle of the segment.
func (s Segment) MBR() geom.Rect { return geom.RectFromPoints([]geom.Point{s.A, s.B}) }

// cross returns the z-component of (b-a) x (c-a).
func cross(a, b, c geom.Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// containsPoint reports whether pt lies on the segment.
func (s Segment) containsPoint(pt geom.Point) bool {
	if math.Abs(cross(s.A, s.B, pt)) > eps {
		return false
	}
	return pt.X >= math.Min(s.A.X, s.B.X)-eps && pt.X <= math.Max(s.A.X, s.B.X)+eps &&
		pt.Y >= math.Min(s.A.Y, s.B.Y)-eps && pt.Y <= math.Max(s.A.Y, s.B.Y)+eps
}

// Intersects reports whether the two segments share at least one point.
func (s Segment) Intersects(t Segment) bool {
	d1 := cross(t.A, t.B, s.A)
	d2 := cross(t.A, t.B, s.B)
	d3 := cross(s.A, s.B, t.A)
	d4 := cross(s.A, s.B, t.B)
	if ((d1 > eps && d2 < -eps) || (d1 < -eps && d2 > eps)) &&
		((d3 > eps && d4 < -eps) || (d3 < -eps && d4 > eps)) {
		return true
	}
	// Collinear or touching cases.
	if math.Abs(d1) <= eps && t.containsPoint(s.A) {
		return true
	}
	if math.Abs(d2) <= eps && t.containsPoint(s.B) {
		return true
	}
	if math.Abs(d3) <= eps && s.containsPoint(t.A) {
		return true
	}
	if math.Abs(d4) <= eps && s.containsPoint(t.B) {
		return true
	}
	return false
}

// Intersection returns an intersection point of the two segments and whether
// one exists.  For collinear overlapping segments one representative point of
// the shared part is returned.
func (s Segment) Intersection(t Segment) (geom.Point, bool) {
	if !s.Intersects(t) {
		return geom.Point{}, false
	}
	d := (s.B.X-s.A.X)*(t.B.Y-t.A.Y) - (s.B.Y-s.A.Y)*(t.B.X-t.A.X)
	if math.Abs(d) <= eps {
		// Collinear: return an endpoint that lies on the other segment.
		for _, cand := range []geom.Point{s.A, s.B, t.A, t.B} {
			if s.containsPoint(cand) && t.containsPoint(cand) {
				return cand, true
			}
		}
		return geom.Point{}, false
	}
	u := ((t.A.X-s.A.X)*(t.B.Y-t.A.Y) - (t.A.Y-s.A.Y)*(t.B.X-t.A.X)) / d
	return geom.Point{X: s.A.X + u*(s.B.X-s.A.X), Y: s.A.Y + u*(s.B.Y-s.A.Y)}, true
}

// Geometry is the interface implemented by the exact spatial types used in
// the refinement step.
type Geometry interface {
	// MBR returns the geometry's minimum bounding rectangle.
	MBR() geom.Rect
	// IntersectsGeometry reports whether the geometry intersects other.
	IntersectsGeometry(other Geometry) bool
}

// IntersectsGeometry implements Geometry for polylines.
func (p Polyline) IntersectsGeometry(other Geometry) bool {
	switch o := other.(type) {
	case Polyline:
		return polylinesIntersect(p, o)
	case Polygon:
		return polylinePolygonIntersect(p, o)
	default:
		return false
	}
}

// IntersectsGeometry implements Geometry for polygons.
func (p Polygon) IntersectsGeometry(other Geometry) bool {
	switch o := other.(type) {
	case Polyline:
		return polylinePolygonIntersect(o, p)
	case Polygon:
		return polygonsIntersect(p, o)
	default:
		return false
	}
}

func polylinesIntersect(a, b Polyline) bool {
	for i := 0; i < a.Segments(); i++ {
		sa := a.Segment(i)
		bbA := sa.MBR()
		for j := 0; j < b.Segments(); j++ {
			sb := b.Segment(j)
			if !bbA.Intersects(sb.MBR()) {
				continue
			}
			if sa.Intersects(sb) {
				return true
			}
		}
	}
	return false
}

func polylinePolygonIntersect(l Polyline, p Polygon) bool {
	// A polyline intersects a polygon if any segment crosses an edge or any
	// vertex of the polyline lies inside the polygon.
	for i := 0; i < l.Segments(); i++ {
		sl := l.Segment(i)
		for j := 0; j < p.Edges(); j++ {
			if sl.Intersects(p.Edge(j)) {
				return true
			}
		}
	}
	for _, pt := range l.Points {
		if p.ContainsPoint(pt) {
			return true
		}
	}
	return false
}

func polygonsIntersect(a, b Polygon) bool {
	for i := 0; i < a.Edges(); i++ {
		ea := a.Edge(i)
		for j := 0; j < b.Edges(); j++ {
			if ea.Intersects(b.Edge(j)) {
				return true
			}
		}
	}
	// One polygon may completely contain the other.
	return a.ContainsPoint(b.Ring[0]) || b.ContainsPoint(a.Ring[0])
}

// IntersectionPoints returns the intersection points between two polylines,
// in segment order.  The object-spatial-join reports them as the resulting
// geometry of line/line joins.
func IntersectionPoints(a, b Polyline) []geom.Point {
	var out []geom.Point
	for i := 0; i < a.Segments(); i++ {
		sa := a.Segment(i)
		bbA := sa.MBR()
		for j := 0; j < b.Segments(); j++ {
			sb := b.Segment(j)
			if !bbA.Intersects(sb.MBR()) {
				continue
			}
			if pt, ok := sa.Intersection(sb); ok {
				out = append(out, pt)
			}
		}
	}
	return out
}
