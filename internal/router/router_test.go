package router

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/zorder"
)

// The deployment fixtures run real shard servers — pager-backed stores over
// FaultFS so storage faults are injectable — behind httptest listeners, and
// drive them through the router exactly as a deployment would: route the
// churn with Update, flip with Round, fan the join out with Join.

const testSide = 0.02

func genROps(n int, seed int64) []server.OpWire {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]server.OpWire, n)
	for i := range ops {
		x, y := rng.Float64()*(1-testSide), rng.Float64()*(1-testSide)
		ops[i] = server.OpWire{XL: x, YL: y, XU: x + testSide, YU: y + testSide, Data: int32(i)}
	}
	return ops
}

func genSItems(n int, seed int64) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		x, y := rng.Float64()*(1-testSide), rng.Float64()*(1-testSide)
		items[i] = rtree.Item{
			Rect: geom.Rect{XL: x, YL: y, XU: x + testSide, YU: y + testSide},
			Data: int32(i),
		}
	}
	return items
}

// bruteForcePairs is the oracle: the full R x S intersection test, sorted
// by (R, S).  It shares no code with the trees, the shards or the merge.
func bruteForcePairs(rOps []server.OpWire, sItems []rtree.Item) [][2]int32 {
	var out [][2]int32
	for _, op := range rOps {
		rr := op.Rect()
		for _, s := range sItems {
			if rr.Intersects(s.Rect) {
				out = append(out, [2]int32{op.Data, s.Data})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return pairLess(out[i], out[j]) })
	return out
}

type shardFixture struct {
	name string
	url  string
	srv  *server.Server
	fs   *storage.FaultFS
}

func newShardServer(t *testing.T, name string, keys zorder.KeyRange, sItems []rtree.Item) *shardFixture {
	t.Helper()
	treeOpts := rtree.Options{PageSize: storage.PageSize1K}
	pagerOpts := storage.PagerOptions{ReadRetries: 1, Sleep: func(time.Duration) {}}
	fs := storage.NewFaultFS(storage.NewMemVFS(), storage.FaultScript{})
	pager, err := storage.OpenPager(fs, "r.db", storage.PageSize1K, pagerOpts)
	if err != nil {
		t.Fatalf("OpenPager: %v", err)
	}
	tree, err := rtree.New(treeOpts)
	if err != nil {
		t.Fatalf("rtree.New: %v", err)
	}
	store, err := rtree.NewTreeStore(tree, pager)
	if err != nil {
		t.Fatalf("NewTreeStore: %v", err)
	}
	sTree, err := rtree.BulkLoadSTR(treeOpts, sItems)
	if err != nil {
		t.Fatalf("BulkLoadSTR: %v", err)
	}
	var mu sync.Mutex
	cur := pager
	srv, err := server.New(server.Config{
		Store: store,
		S:     sTree,
		Sleep: func(context.Context, time.Duration) {},
		Reopen: func() (*rtree.TreeStore, error) {
			mu.Lock()
			defer mu.Unlock()
			// The reopen replaces a pager a fault already broke.
			//repolint:ignore latchederr reopen discards the broken pager; its latched error is why we are here
			cur.Close()
			p, err := storage.OpenPager(fs, "r.db", storage.PageSize1K, pagerOpts)
			if err != nil {
				return nil, err
			}
			ts, err := rtree.OpenTreeStore(p, treeOpts)
			if err != nil {
				return nil, errors.Join(err, p.Close())
			}
			cur = p
			return ts, nil
		},
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(server.NewHandler(srv, server.HandlerConfig{Shard: &keys}))
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Logf("closing shard %s: %v", name, err)
		}
		mu.Lock()
		defer mu.Unlock()
		// A test may end with the pager faulted; its latched error is part
		// of the scenario, not a leak.
		//repolint:ignore latchederr fault tests end with a deliberately broken pager
		cur.Close()
	})
	return &shardFixture{name: name, url: ts.URL, srv: srv, fs: fs}
}

// newDeployment builds n shard servers tiling the key space uniformly and
// a router over them.  mutate adjusts the router config before New.
func newDeployment(t *testing.T, n int, mutate func(*Config)) (*Router, []*shardFixture) {
	t.Helper()
	sItems := genSItems(200, 5)
	ranges := zorder.UniformKeyRanges(n)
	fixtures := make([]*shardFixture, n)
	shards := make([]Shard, n)
	for i := range fixtures {
		name := fmt.Sprintf("shard%d", i)
		fixtures[i] = newShardServer(t, name, ranges[i], sItems)
		shards[i] = Shard{Name: name, URL: fixtures[i].url, Range: ranges[i]}
	}
	cfg := Config{
		Shards:        shards,
		RetryAttempts: 2,
		RetryBackoff:  time.Millisecond,
		MaxRetryAfter: 10 * time.Millisecond,
		sleep:         func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rt, fixtures
}

func loadDeployment(t *testing.T, rt *Router, rOps []server.OpWire) {
	t.Helper()
	ctx := context.Background()
	staged, err := rt.Update(ctx, rOps)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if staged != len(rOps) {
		t.Fatalf("staged %d of %d ops", staged, len(rOps))
	}
	if err := rt.Round(ctx); err != nil {
		t.Fatalf("Round: %v", err)
	}
}

// TestRouterJoinMatchesDirect is the parity contract: for 1, 2, 3 and 4
// shards, and for every join method, the merged fan-out equals the
// brute-force oracle bit for bit — same pairs, same order.
func TestRouterJoinMatchesDirect(t *testing.T) {
	rOps := genROps(300, 9)
	sItems := genSItems(200, 5)
	want := bruteForcePairs(rOps, sItems)
	if len(want) == 0 {
		t.Fatal("oracle produced no pairs; test data too sparse")
	}
	ctx := context.Background()
	for _, n := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			rt, _ := newDeployment(t, n, nil)
			loadDeployment(t, rt, rOps)
			// Methods 0 (shard default) and SJ1..SJ5 must all agree.
			for method := 0; method <= 5; method++ {
				res, err := rt.Join(ctx, JoinRequest{Method: method})
				if err != nil {
					t.Fatalf("method %d: %v", method, err)
				}
				assertPairsEqual(t, fmt.Sprintf("method %d", method), res.Pairs, want)
				if res.Count != len(want) {
					t.Fatalf("method %d: count %d, want %d", method, res.Count, len(want))
				}
				sum := 0
				for _, o := range res.Shards {
					sum += o.Count
					if o.Attempts != 1 {
						t.Fatalf("healthy shard %s took %d attempts", o.Shard, o.Attempts)
					}
				}
				if sum != res.Count {
					t.Fatalf("per-shard counts sum to %d, total %d", sum, res.Count)
				}
			}
		})
	}
}

// TestRouterJoinDeterministicAcrossConfigOrder pins that the merged order
// does not depend on the order shards are listed in the config, nor on the
// run: the merge works in key-range order, not config or completion order.
func TestRouterJoinDeterministicAcrossConfigOrder(t *testing.T) {
	rOps := genROps(300, 9)
	rt, _ := newDeployment(t, 3, nil)
	loadDeployment(t, rt, rOps)
	ctx := context.Background()

	first, err := rt.Join(ctx, JoinRequest{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := rt.Join(ctx, JoinRequest{})
	if err != nil {
		t.Fatal(err)
	}
	assertPairsEqual(t, "rerun", again.Pairs, first.Pairs)

	// A second router over the same deployment with the shard list reversed.
	shards := rt.Shards()
	for i, j := 0, len(shards)-1; i < j; i, j = i+1, j-1 {
		shards[i], shards[j] = shards[j], shards[i]
	}
	rev, err := New(Config{Shards: shards, RetryAttempts: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	revRes, err := rev.Join(ctx, JoinRequest{})
	if err != nil {
		t.Fatal(err)
	}
	assertPairsEqual(t, "reversed config", revRes.Pairs, first.Pairs)
}

// TestRouterPartialFailureIsTypedAndTotal is the shed/retry sweep's core
// fan-out guarantee: when one shard's storage dies, the join fails with a
// typed *PartialError naming exactly the dead shard — it never returns the
// surviving shards' pairs as if they were the whole answer.  Healing the
// fault and reopening the shard restores exact parity.
func TestRouterPartialFailureIsTypedAndTotal(t *testing.T) {
	rOps := genROps(300, 9)
	sItems := genSItems(200, 5)
	want := bruteForcePairs(rOps, sItems)
	rt, fixtures := newDeployment(t, 2, nil)
	loadDeployment(t, rt, rOps)
	ctx := context.Background()

	fixtures[1].fs.SetScript(storage.FaultScript{ReadErrEvery: 1})
	res, err := rt.Join(ctx, JoinRequest{})
	if err == nil {
		t.Fatal("join over a dead shard succeeded")
	}
	if res != nil {
		t.Fatalf("failed join still returned %d pairs: a truncated result must not escape", res.Count)
	}
	if !errors.Is(err, ErrPartialFailure) {
		t.Fatalf("error %v does not unwrap to ErrPartialFailure", err)
	}
	var perr *PartialError
	if !errors.As(err, &perr) {
		t.Fatalf("error %T is not a *PartialError", err)
	}
	if len(perr.Failures) != 1 || perr.Failures[0].Shard != "shard1" {
		t.Fatalf("failures = %v, want exactly shard1", perr.Failures)
	}
	if len(perr.Succeeded) != 1 || perr.Succeeded[0] != "shard0" {
		t.Fatalf("succeeded = %v, want exactly shard0", perr.Succeeded)
	}

	// Heal the disk, reopen the shard (WAL recovery), and the deployment
	// answers exactly again.
	fixtures[1].fs.SetScript(storage.FaultScript{})
	if err := fixtures[1].srv.Reopen(); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	res, err = rt.Join(ctx, JoinRequest{})
	if err != nil {
		t.Fatalf("join after heal: %v", err)
	}
	assertPairsEqual(t, "after heal", res.Pairs, want)
}

// TestRouterUpdateRoutesByCentreKey checks the routing invariant the whole
// design rests on: every op lands on the one shard whose range contains
// its centre key, so no shard ever rejects a router-routed op and every
// item is indexed exactly once.
func TestRouterUpdateRoutesByCentreKey(t *testing.T) {
	rOps := genROps(200, 11)
	rt, fixtures := newDeployment(t, 4, nil)
	loadDeployment(t, rt, rOps)
	stats, err := rt.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	total := 0
	for _, fx := range fixtures {
		wire, ok := stats[fx.name]
		if !ok {
			t.Fatalf("no stats for %s", fx.name)
		}
		total += wire.Coverage.RItems
		if wire.Pending != 0 {
			t.Fatalf("%s still has %d staged ops after Round", fx.name, wire.Pending)
		}
	}
	if total != len(rOps) {
		t.Fatalf("shards hold %d items in total, want %d", total, len(rOps))
	}
}

func assertPairsEqual(t *testing.T, label string, got, want [][2]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}
