// Package router fans spatial joins out over a set of Hilbert-range shard
// servers and merges their answers into the single deterministic pair set a
// one-process join would produce.
//
// Each shard (a spatialjoind process started with -shard lo:hi) owns one
// half-open range of the Hilbert key space and indexes the churned
// rectangles whose centre keys fall inside it; the static relation S is
// replicated in full on every shard.  Because the ranges tile the key space
// — New refuses a shard set that does not — every rectangle of R has
// exactly one home, so the union of the per-shard joins is exactly the full
// R ⋈ S with no duplicates, and a sorted merge of the shard responses
// (each sorted by (R, S) on the wire) reproduces the single-process pair
// order bit for bit.
//
// Routing is coverage-aware but never coverage-trusting: shards publish a
// snapshot summary on GET /stats (item counts, R's MBR, sampled catalog
// statistics) which the router caches with a TTL and feeds to the paper's
// sweep-selectivity cost estimate to order the fan-out — longest-estimated
// shard first, since the critical path of a fan-out is its slowest member.
// Stale or missing statistics degrade the ordering, never the answer: a
// shard is pruned only by the key-range geometry (Plan), and only when the
// deployment bounds rectangle extents so the pruning is provably exact.
package router

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/server"
	"repro/internal/zorder"
)

// Shard names one shard server and the Hilbert key range it owns.
type Shard struct {
	// Name identifies the shard in errors and outcomes; it defaults to URL.
	Name string
	// URL is the shard's base URL, e.g. "http://127.0.0.1:7461".
	URL string
	// Range is the half-open Hilbert key range the shard owns.
	Range zorder.KeyRange
}

// Config configures a Router.
type Config struct {
	// Shards is the deployment.  The ranges must tile [0, KeySpace) exactly:
	// a gap would lose updates, an overlap would duplicate join pairs.
	Shards []Shard
	// World is the rectangle the Hilbert key grid covers; the zero value
	// means the unit square.  It must match the shards' -world (the daemon
	// default is the same unit square).
	World geom.Rect
	// Client issues the HTTP requests; nil means http.DefaultClient.
	Client *http.Client
	// StatsTTL bounds the age of a cached coverage summary before the
	// router refreshes it.  Zero means 2s.  On a refresh failure the stale
	// summary keeps serving — statistics are advisory, so staleness costs
	// ordering quality, never correctness.
	StatsTTL time.Duration
	// ShardTimeout bounds each attempt of each shard request.  Zero means
	// 30s.
	ShardTimeout time.Duration
	// RetryAttempts is the total number of tries per shard request before
	// the shard counts as failed.  Zero means 3.
	RetryAttempts int
	// RetryBackoff is the first retry delay; it doubles per attempt.  Zero
	// means 50ms.
	RetryBackoff time.Duration
	// MaxRetryAfter caps the honoured Retry-After of a shedding shard (and
	// every other retry delay).  Zero means 2s.
	MaxRetryAfter time.Duration
	// CoverDepth is the Hilbert quadtree depth Plan descends to when
	// pruning shards by key range.  Zero means 8.
	CoverDepth int
	// MaxItemExtent, when positive, promises that no rectangle of R has a
	// side longer than this.  The promise is what makes key-range pruning
	// exact: an item intersecting a query window must have its centre — the
	// point it is routed by — inside the window expanded by the extent.
	// Zero disables pruning and Plan fans out to every shard.
	MaxItemExtent float64

	// Test seams.  nil means time.Now and a context-aware timer sleep.
	now   func() time.Time
	sleep func(context.Context, time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.World == (geom.Rect{}) {
		c.World = server.UnitWorld
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.StatsTTL == 0 {
		c.StatsTTL = 2 * time.Second
	}
	if c.ShardTimeout == 0 {
		c.ShardTimeout = 30 * time.Second
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxRetryAfter == 0 {
		c.MaxRetryAfter = 2 * time.Second
	}
	if c.CoverDepth == 0 {
		c.CoverDepth = 8
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Router routes updates and fans joins out over a shard deployment.
type Router struct {
	cfg    Config
	shards []Shard // sorted by Range.Lo; the merge and routing order

	mu    sync.Mutex
	cache map[string]statsEntry // shard name -> last fetched summary
}

type statsEntry struct {
	wire server.StatsWire
	at   time.Time
}

// New validates the shard set and builds a router over it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shards configured")
	}
	cfg = cfg.withDefaults()
	shards := append([]Shard(nil), cfg.Shards...)
	ranges := make([]zorder.KeyRange, len(shards))
	seen := make(map[string]bool, len(shards))
	for i := range shards {
		if shards[i].URL == "" {
			return nil, fmt.Errorf("router: shard %d has no URL", i)
		}
		shards[i].URL = strings.TrimRight(shards[i].URL, "/")
		if shards[i].Name == "" {
			shards[i].Name = shards[i].URL
		}
		if seen[shards[i].Name] {
			return nil, fmt.Errorf("router: duplicate shard name %q", shards[i].Name)
		}
		seen[shards[i].Name] = true
		ranges[i] = shards[i].Range
	}
	if !zorder.TilesKeySpace(ranges) {
		return nil, fmt.Errorf("router: shard ranges do not tile the key space [0, %d) exactly once", zorder.KeySpace)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].Range.Lo < shards[j].Range.Lo })
	return &Router{cfg: cfg, shards: shards, cache: make(map[string]statsEntry, len(shards))}, nil
}

// Shards returns the deployment in merge order (ascending key range).
func (rt *Router) Shards() []Shard { return append([]Shard(nil), rt.shards...) }

// PlannedShard is one shard of a query plan with the advisory statistics
// the fan-out was ordered by.
type PlannedShard struct {
	Shard Shard
	// Coverage is the shard's last known snapshot summary (zero when the
	// shard has never answered /stats).
	Coverage server.Coverage
	// StatsFresh reports whether Coverage is within the TTL; false means
	// the estimate ran on stale (or missing) statistics.
	StatsFresh bool
	// Est is the sweep-selectivity cost estimate of the shard's join (zero
	// without coverage).
	Est costmodel.Estimate
}

// Plan returns the shards a query over the window must visit, ordered by
// descending estimated join cost so the fan-out starts its critical path
// first.  Pruning is purely geometric — a shard is dropped only when no
// rectangle whose centre keys into its range can intersect the window,
// which requires Config.MaxItemExtent — and never statistical: coverage
// summaries order the plan but cannot shrink it, because the next round
// may move any shard's MBR.
func (rt *Router) Plan(ctx context.Context, window geom.Rect) []PlannedShard {
	return rt.PlanPredicate(ctx, window, join.Intersects())
}

// PlanPredicate is Plan with a join predicate.  The predicate changes what
// "can intersect the window" means, so it changes the exactness bound of the
// key-range pruning: within-distance grows the pruning margin by epsilon (an
// R rectangle up to epsilon outside the window still pairs with S inside
// it), and kNN disables pruning entirely — a nearest neighbour can be
// arbitrarily far away, so no geometric argument can exclude a shard.
func (rt *Router) PlanPredicate(ctx context.Context, window geom.Rect, pred join.Predicate) []PlannedShard {
	shards := rt.shards
	margin := rt.cfg.MaxItemExtent
	if pred.Kind == join.PredWithinDist {
		margin += pred.Epsilon
	}
	prune := rt.cfg.MaxItemExtent > 0 && pred.Kind != join.PredKNN
	if prune && !window.Contains(rt.cfg.World) {
		grown := geom.Rect{
			XL: window.XL - margin,
			YL: window.YL - margin,
			XU: window.XU + margin,
			YU: window.YU + margin,
		}
		cover := zorder.HilbertCover(grown, rt.cfg.World, rt.cfg.CoverDepth)
		var kept []Shard
		for _, sh := range shards {
			for _, kr := range cover {
				if sh.Range.Overlaps(kr) {
					kept = append(kept, sh)
					break
				}
			}
		}
		if len(kept) > 0 {
			shards = kept
		}
	}
	plans := make([]PlannedShard, len(shards))
	for i, sh := range shards {
		plans[i] = PlannedShard{Shard: sh}
		if wire, fresh, ok := rt.shardStats(ctx, sh); ok {
			plans[i].Coverage = wire.Coverage
			plans[i].StatsFresh = fresh
			plans[i].Est = estimateJoinCost(wire.Coverage, pred)
		}
	}
	sort.SliceStable(plans, func(i, j int) bool {
		return plans[i].Est.TotalSeconds() > plans[j].Est.TotalSeconds()
	})
	return plans
}

// shardStats returns the shard's coverage summary from the TTL cache,
// refreshing it when expired.  A failed refresh falls back to the stale
// entry: planning must degrade, not fail, when a shard is slow to answer
// /stats.  ok is false only when the shard has never answered.
func (rt *Router) shardStats(ctx context.Context, sh Shard) (wire server.StatsWire, fresh, ok bool) {
	rt.mu.Lock()
	entry, have := rt.cache[sh.Name]
	rt.mu.Unlock()
	if have && rt.cfg.now().Sub(entry.at) <= rt.cfg.StatsTTL {
		return entry.wire, true, true
	}
	var fetched server.StatsWire
	if err := rt.once(ctx, sh, http.MethodGet, "/stats", nil, &fetched); err == nil {
		rt.mu.Lock()
		rt.cache[sh.Name] = statsEntry{wire: fetched, at: rt.cfg.now()}
		rt.mu.Unlock()
		return fetched, true, true
	}
	if have {
		return entry.wire, false, true
	}
	return server.StatsWire{}, false, false
}

// estimateJoinCost runs the paper's cost model over a shard's coverage
// summary: expected I/O is both trees' page populations, expected CPU is
// the plane-sweep selectivity estimate (sort plus x-overlapping pairs from
// the sampled mean rectangle extents), falling back to the all-pairs
// product when a catalog carries no leaf sample.  The predicate adjusts the
// CPU term the same way the executed join changes: within-distance widens
// every R extent by 2·epsilon (the expanded-rectangle filter), kNN charges
// one near-logarithmic S probe plus K heap admissions per R item.
func estimateJoinCost(cov server.Coverage, pred join.Predicate) costmodel.Estimate {
	if cov.PageSize == 0 {
		return costmodel.Estimate{}
	}
	pages := catalogPages(cov.RCatalog) + catalogPages(cov.SCatalog)
	if pages < 2 {
		pages = 2
	}
	er, es := float64(cov.RItems), float64(cov.SItems)
	if pred.Kind == join.PredKNN {
		comps := er*(math.Log2(es+2)+float64(pred.K)) + er + es
		return costmodel.Default().Estimate(int64(pages+0.5), cov.PageSize, int64(comps+0.5))
	}
	var eps float64
	if pred.Kind == join.PredWithinDist {
		eps = pred.Epsilon
	}
	comps := er * es
	wr, _, okR := cov.RCatalog.LeafExtent()
	ws, _, okS := cov.SCatalog.LeafExtent()
	if okR && okS {
		overlap := 1.0
		if ix := cov.RMBR.Width(); ix > 0 && (wr+2*eps+ws) < ix {
			overlap = (wr + 2*eps + ws) / ix
		}
		comps = (er+es)*math.Log2(er+es+2) + er*es*overlap
	}
	return costmodel.Default().Estimate(int64(pages+0.5), cov.PageSize, int64(comps+0.5))
}

// catalogPages is the exact page population recorded by a catalog.
func catalogPages(c costmodel.Catalog) float64 {
	if !c.Valid() {
		return 0
	}
	var pages float64
	for _, l := range c.Levels {
		pages += float64(l.Nodes)
	}
	return pages
}

// shardFor returns the index of the shard owning the key.  The ranges tile
// the key space, so every in-range key has exactly one owner.
func (rt *Router) shardFor(key uint64) int {
	i := sort.Search(len(rt.shards), func(i int) bool { return rt.shards[i].Range.Hi > key })
	if i == len(rt.shards) || !rt.shards[i].Range.Contains(key) {
		return -1
	}
	return i
}
