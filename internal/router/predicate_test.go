package router

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/server"
)

// rectDist2 is the oracle's squared rectangle distance (clamp formulation).
func rectDist2(a, b geom.Rect) float64 {
	dx := math.Max(0, math.Max(a.XL-b.XU, b.XL-a.XU))
	dy := math.Max(0, math.Max(a.YL-b.YU, b.YL-a.YU))
	return dx*dx + dy*dy
}

func bruteDistanceWire(rOps []server.OpWire, sItems []rtree.Item, eps float64) [][2]int32 {
	var out [][2]int32
	for _, op := range rOps {
		rr := op.Rect()
		for _, s := range sItems {
			if rectDist2(rr, s.Rect) <= eps*eps {
				out = append(out, [2]int32{op.Data, s.Data})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return pairLess(out[i], out[j]) })
	return out
}

func bruteKNNWire(rOps []server.OpWire, sItems []rtree.Item, k int) [][2]int32 {
	var out [][2]int32
	type cand struct {
		d2  float64
		sID int32
	}
	for _, op := range rOps {
		rr := op.Rect()
		cands := make([]cand, 0, len(sItems))
		for _, s := range sItems {
			cands = append(cands, cand{d2: rectDist2(rr, s.Rect), sID: s.Data})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d2 != cands[j].d2 {
				return cands[i].d2 < cands[j].d2
			}
			return cands[i].sID < cands[j].sID
		})
		n := k
		if n > len(cands) {
			n = len(cands)
		}
		for _, c := range cands[:n] {
			out = append(out, [2]int32{op.Data, c.sID})
		}
	}
	sort.Slice(out, func(i, j int) bool { return pairLess(out[i], out[j]) })
	return out
}

// TestRouterPredicateParity is the sharded parity contract for the new
// predicates: for 1, 2, 3 and 4 shards, the merged within-distance and kNN
// fan-outs equal their brute-force oracles bit for bit — same pairs, same
// (R, S) order.  The kNN case exercises the R-disjointness merge bound on
// real deployments: R items are homed by centre key, S is replicated, so
// each home shard's per-item heap is already globally correct.
func TestRouterPredicateParity(t *testing.T) {
	rOps := genROps(300, 9)
	sItems := genSItems(200, 5)
	const eps, k = 0.03, 3
	wantDist := bruteDistanceWire(rOps, sItems, eps)
	wantKNN := bruteKNNWire(rOps, sItems, k)
	if len(wantDist) == 0 || len(wantKNN) != len(rOps)*k {
		t.Fatalf("oracle sanity: %d distance pairs, %d knn pairs", len(wantDist), len(wantKNN))
	}
	ctx := context.Background()
	for _, n := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			rt, _ := newDeployment(t, n, nil)
			loadDeployment(t, rt, rOps)
			for _, workers := range []int{0, 3} {
				res, err := rt.Join(ctx, JoinRequest{Predicate: fmt.Sprintf("within:%g", eps), Workers: workers})
				if err != nil {
					t.Fatalf("within workers=%d: %v", workers, err)
				}
				assertPairsEqual(t, fmt.Sprintf("within workers=%d", workers), res.Pairs, wantDist)
				res, err = rt.Join(ctx, JoinRequest{Predicate: fmt.Sprintf("knn:%d", k), Workers: workers})
				if err != nil {
					t.Fatalf("knn workers=%d: %v", workers, err)
				}
				assertPairsEqual(t, fmt.Sprintf("knn workers=%d", workers), res.Pairs, wantKNN)
			}
		})
	}
}

// TestRouterRejectsBadPredicate pins that a malformed predicate fails at the
// router, before any shard is contacted.
func TestRouterRejectsBadPredicate(t *testing.T) {
	rt, _ := newDeployment(t, 2, nil)
	if _, err := rt.Join(context.Background(), JoinRequest{Predicate: "within:-1"}); err == nil {
		t.Fatal("expected a parse error")
	}
	if _, err := rt.Join(context.Background(), JoinRequest{Predicate: "nearest:3"}); err == nil {
		t.Fatal("expected a parse error for an unknown predicate name")
	}
}

// TestVerifyKNNStreams pins the merge bound's failure modes directly.
func TestVerifyKNNStreams(t *testing.T) {
	shards := []Shard{{Name: "a"}, {Name: "b"}}
	ok := [][][2]int32{{{1, 10}, {1, 11}}, {{2, 10}}}
	if err := verifyKNNStreams(ok, shards, 2); err != nil {
		t.Fatalf("disjoint streams rejected: %v", err)
	}
	dup := [][][2]int32{{{1, 10}}, {{1, 11}}}
	if err := verifyKNNStreams(dup, shards, 2); err == nil {
		t.Fatal("double-homed R item not detected")
	}
	over := [][][2]int32{{{1, 10}, {1, 11}, {1, 12}}, nil}
	if err := verifyKNNStreams(over, shards, 2); err == nil {
		t.Fatal("over-k item not detected")
	}
}
