package router

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/server"
	"repro/internal/zorder"
)

// The stub tests pin the retry and staleness policies against hand-rolled
// shard handlers, where every response code and header is scripted.

// stubShard serves h as a single shard owning the whole key space.
func stubShard(t *testing.T, h http.Handler) Shard {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return Shard{Name: "stub", URL: ts.URL, Range: zorder.KeyRange{Lo: 0, Hi: zorder.KeySpace}}
}

type sleepRecorder struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (s *sleepRecorder) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.slept = append(s.slept, d)
	s.mu.Unlock()
	return ctx.Err()
}

func okJoin(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"epoch":1,"count":1,"pairs":[[1,2]]}`)
}

// TestDoHonoursRetryAfterCapped: a shedding shard's Retry-After is obeyed
// — as RFC 9110 integer seconds — but capped at MaxRetryAfter, so one
// confused shard cannot stall the whole fan-out.
func TestDoHonoursRetryAfterCapped(t *testing.T) {
	var hits int
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		okJoin(w)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, `{}`) })

	rec := &sleepRecorder{}
	rt, err := New(Config{
		Shards:        []Shard{stubShard(t, mux)},
		RetryAttempts: 3,
		MaxRetryAfter: 500 * time.Millisecond,
		sleep:         rec.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Join(context.Background(), JoinRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Shards[0].Attempts)
	}
	if len(rec.slept) != 1 || rec.slept[0] != 500*time.Millisecond {
		t.Fatalf("slept %v, want exactly the 500ms cap (shard asked for 7s)", rec.slept)
	}
}

// TestDoBacksOffOn5xx: a 500 without Retry-After retries on the router's
// own doubling backoff.
func TestDoBacksOffOn5xx(t *testing.T) {
	var hits int
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		okJoin(w)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, `{}`) })

	rec := &sleepRecorder{}
	rt, err := New(Config{
		Shards:        []Shard{stubShard(t, mux)},
		RetryAttempts: 3,
		RetryBackoff:  3 * time.Millisecond,
		sleep:         rec.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Join(context.Background(), JoinRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Shards[0].Attempts)
	}
	want := []time.Duration{3 * time.Millisecond, 6 * time.Millisecond}
	if len(rec.slept) != len(want) || rec.slept[0] != want[0] || rec.slept[1] != want[1] {
		t.Fatalf("slept %v, want %v", rec.slept, want)
	}
}

// TestDoTreats4xxAsPermanent: client errors mean the request itself is
// wrong; retrying would hammer the shard with the same broken request.
func TestDoTreats4xxAsPermanent(t *testing.T) {
	var hits int
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, `{"error":"no such method"}`, http.StatusBadRequest)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, `{}`) })

	rec := &sleepRecorder{}
	rt, err := New(Config{Shards: []Shard{stubShard(t, mux)}, RetryAttempts: 3, sleep: rec.sleep})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Join(context.Background(), JoinRequest{})
	if !errors.Is(err, ErrPartialFailure) {
		t.Fatalf("err = %v, want ErrPartialFailure", err)
	}
	if hits != 1 {
		t.Fatalf("4xx was retried: %d requests", hits)
	}
	if len(rec.slept) != 0 {
		t.Fatalf("4xx slept %v before giving up", rec.slept)
	}
}

// TestDoRejectsUnsortedShardStream: a shard answering out of (R, S) order
// violates the wire contract the merge depends on; the router treats it as
// a shard failure instead of silently re-sorting.
func TestDoRejectsUnsortedShardStream(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"epoch":1,"count":2,"pairs":[[2,1],[1,2]]}`)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, `{}`) })

	rt, err := New(Config{Shards: []Shard{stubShard(t, mux)}, RetryAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Join(context.Background(), JoinRequest{})
	if !errors.Is(err, ErrPartialFailure) {
		t.Fatalf("err = %v, want ErrPartialFailure for an unsorted stream", err)
	}
}

// TestStatsTTLAndStaleFallback: Plan serves coverage from the TTL cache,
// refreshes it once expired, and — when the shard stops answering /stats —
// keeps planning with the stale summary rather than dropping the shard.
func TestStatsTTLAndStaleFallback(t *testing.T) {
	var mu sync.Mutex
	statsHits, failStats := 0, false
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		statsHits++
		fail := failStats
		mu.Unlock()
		if fail {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"coverage":{"Epoch":3,"PageSize":1024,"RItems":42,"SItems":7}}`)
	})

	now := time.Unix(1000, 0)
	rt, err := New(Config{
		Shards:   []Shard{stubShard(t, mux)},
		StatsTTL: 10 * time.Second,
		now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	check := func(label string, wantHits int, wantFresh bool) {
		t.Helper()
		plans := rt.Plan(ctx, server.UnitWorld)
		if len(plans) != 1 {
			t.Fatalf("%s: planned %d shards, want 1", label, len(plans))
		}
		p := plans[0]
		if p.Coverage.RItems != 42 || p.Coverage.Epoch != 3 {
			t.Fatalf("%s: coverage = %+v, want the stub's summary", label, p.Coverage)
		}
		if p.StatsFresh != wantFresh {
			t.Fatalf("%s: StatsFresh = %v, want %v", label, p.StatsFresh, wantFresh)
		}
		if p.Est.TotalSeconds() <= 0 {
			t.Fatalf("%s: no cost estimate from coverage", label)
		}
		mu.Lock()
		defer mu.Unlock()
		if statsHits != wantHits {
			t.Fatalf("%s: %d stats fetches, want %d", label, statsHits, wantHits)
		}
	}

	check("first plan", 1, true)
	now = now.Add(5 * time.Second)
	check("within TTL", 1, true) // cache hit, no refetch
	now = now.Add(6 * time.Second)
	check("expired", 2, true) // TTL passed, refetched
	mu.Lock()
	failStats = true
	mu.Unlock()
	now = now.Add(11 * time.Second)
	check("stale fallback", 3, false) // refresh failed, stale summary kept
}

// TestPlanOrdersByEstimatedCost: with fresh coverage from both shards, the
// plan starts the expensive one first — the fan-out's critical path.
func TestPlanOrdersByEstimatedCost(t *testing.T) {
	shardStub := func(name string, items int) Shard {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"coverage":{"Epoch":1,"PageSize":1024,"RItems":%d,"SItems":100}}`, items)
		})
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return Shard{Name: name, URL: ts.URL}
	}
	half := zorder.KeySpace / 2
	small := shardStub("small", 10)
	small.Range = zorder.KeyRange{Lo: 0, Hi: half}
	big := shardStub("big", 10000)
	big.Range = zorder.KeyRange{Lo: half, Hi: zorder.KeySpace}

	rt, err := New(Config{Shards: []Shard{small, big}})
	if err != nil {
		t.Fatal(err)
	}
	plans := rt.Plan(context.Background(), server.UnitWorld)
	if len(plans) != 2 || plans[0].Shard.Name != "big" {
		t.Fatalf("plan order = %v, want the big shard first", []string{plans[0].Shard.Name, plans[1].Shard.Name})
	}
}

// TestPlanPrunesOnlyWithExtentBound: key-range pruning needs the
// MaxItemExtent promise; without it every window fans out to every shard.
func TestPlanPrunesOnlyWithExtentBound(t *testing.T) {
	shards := make([]Shard, 4)
	for i, kr := range zorder.UniformKeyRanges(4) {
		// Unreachable URLs: planning must not require live shards.
		shards[i] = Shard{Name: fmt.Sprintf("s%d", i), URL: fmt.Sprintf("http://127.0.0.1:1/s%d", i), Range: kr}
	}
	corner := geom.Rect{XL: 0.01, YL: 0.01, XU: 0.02, YU: 0.02}

	rt, err := New(Config{Shards: shards, ShardTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Plan(context.Background(), corner)); got != 4 {
		t.Fatalf("unbounded extents: planned %d shards, want all 4", got)
	}

	rt2, err := New(Config{Shards: shards, MaxItemExtent: 0.05, ShardTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pruned := rt2.Plan(context.Background(), corner)
	if len(pruned) == 0 || len(pruned) >= 4 {
		t.Fatalf("bounded extents: planned %d shards for a corner window, want a strict subset", len(pruned))
	}
	if got := len(rt2.Plan(context.Background(), server.UnitWorld)); got != 4 {
		t.Fatalf("whole-world window: planned %d shards, want all 4", got)
	}
}

// TestNewRejectsBadDeployments: gaps, overlaps and duplicate names are
// configuration errors New refuses outright — a gap loses updates, an
// overlap duplicates pairs.
func TestNewRejectsBadDeployments(t *testing.T) {
	half := zorder.KeySpace / 2
	cases := map[string]Config{
		"no shards": {},
		"gap": {Shards: []Shard{
			{URL: "http://a", Range: zorder.KeyRange{Lo: 0, Hi: half - 1}},
			{URL: "http://b", Range: zorder.KeyRange{Lo: half, Hi: zorder.KeySpace}},
		}},
		"overlap": {Shards: []Shard{
			{URL: "http://a", Range: zorder.KeyRange{Lo: 0, Hi: half + 1}},
			{URL: "http://b", Range: zorder.KeyRange{Lo: half, Hi: zorder.KeySpace}},
		}},
		"short": {Shards: []Shard{
			{URL: "http://a", Range: zorder.KeyRange{Lo: 0, Hi: half}},
		}},
		"duplicate name": {Shards: []Shard{
			{Name: "x", URL: "http://a", Range: zorder.KeyRange{Lo: 0, Hi: half}},
			{Name: "x", URL: "http://b", Range: zorder.KeyRange{Lo: half, Hi: zorder.KeySpace}},
		}},
		"missing URL": {Shards: []Shard{
			{Range: zorder.KeyRange{Lo: 0, Hi: zorder.KeySpace}},
		}},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted a broken deployment", name)
		}
	}
}

// TestMergeSorted pins the k-way merge on a hand-checkable case, including
// an equal pair in two streams (kept from both — shards with disjoint R
// cannot produce one, but the merge must stay deterministic if they did).
func TestMergeSorted(t *testing.T) {
	streams := [][][2]int32{
		{{1, 1}, {1, 3}, {4, 0}},
		{},
		{{1, 2}, {1, 3}, {2, 0}},
	}
	want := [][2]int32{{1, 1}, {1, 2}, {1, 3}, {1, 3}, {2, 0}, {4, 0}}
	got := mergeSorted(streams, 6)
	assertPairsEqual(t, "merge", got, want)
}
