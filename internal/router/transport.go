package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// ErrPartialFailure marks a fan-out where some shards answered and at least
// one did not, even after retries.  The router returns no pairs in that
// case: a silently truncated join is worse than a failed one, because the
// caller cannot tell the difference.
var ErrPartialFailure = errors.New("router: partial shard failure")

// ShardError attributes an error to one shard.
type ShardError struct {
	Shard string
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("shard %s: %v", e.Shard, e.Err) }
func (e *ShardError) Unwrap() error { return e.Err }

// PartialError reports which shards of a fan-out failed and which answered.
// It unwraps to ErrPartialFailure so callers can classify without digging.
type PartialError struct {
	Failures  []*ShardError
	Succeeded []string
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("router: %d of %d shards failed: %v",
		len(e.Failures), len(e.Failures)+len(e.Succeeded), e.Failures[0])
}

func (e *PartialError) Unwrap() error { return ErrPartialFailure }

// StatusError is a non-2xx shard response.  It survives the retry
// wrapping, so a caller holding a *PartialError can classify each shard's
// terminal failure — e.g. cmd/spatialjoinrouter maps "every shard was
// shedding" to its own 503 + Retry-After instead of a generic 502.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the shard's parsed Retry-After wish (503 only; 0 when
	// absent or malformed).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string { return fmt.Sprintf("status %d: %s", e.Code, e.Msg) }

// retryableError marks a failed attempt worth retrying — a transport error,
// a 5xx, or a 503 shed, which also carries the shard's Retry-After wish.
type retryableError struct {
	err   error
	after time.Duration // 0 means use the router's backoff
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// do issues one shard request with the router's retry policy: transport
// errors and 5xx responses retry with doubling backoff, a shedding shard's
// Retry-After is honoured (capped at MaxRetryAfter), 4xx responses are
// permanent, and context cancellation stops everything.  It returns the
// number of attempts made.
func (rt *Router) do(ctx context.Context, sh Shard, method, path string, body, out any) (int, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		err := rt.once(ctx, sh, method, path, body, out)
		if err == nil {
			return attempt, nil
		}
		lastErr = err
		var re *retryableError
		if !errors.As(err, &re) || attempt >= rt.cfg.RetryAttempts {
			return attempt, fmt.Errorf("%s %s after %d attempt(s): %w", method, path, attempt, lastErr)
		}
		delay := re.after
		if delay <= 0 {
			delay = rt.cfg.RetryBackoff << (attempt - 1)
		}
		if delay > rt.cfg.MaxRetryAfter {
			delay = rt.cfg.MaxRetryAfter
		}
		if err := rt.cfg.sleep(ctx, delay); err != nil {
			return attempt, fmt.Errorf("%s %s: %w (last shard error: %v)", method, path, err, lastErr)
		}
	}
}

// once issues a single attempt bounded by ShardTimeout and classifies the
// outcome: nil on 2xx (with out decoded), *retryableError on transport
// failures and 5xx, a permanent error otherwise.
func (rt *Router) once(ctx context.Context, sh Shard, method, path string, body, out any) error {
	attemptCtx := ctx
	if rt.cfg.ShardTimeout > 0 {
		var cancel context.CancelFunc
		attemptCtx, cancel = context.WithTimeout(ctx, rt.cfg.ShardTimeout)
		defer cancel()
	}
	var reqBody io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reqBody = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(attemptCtx, method, sh.URL+path, reqBody)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		// The caller's own context ending is permanent; only this attempt
		// timing out (or the transport failing) is worth another try.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &retryableError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("decoding %s response: %w", path, err)
		}
		return nil
	}
	herr := &StatusError{Code: resp.StatusCode, Msg: errorBody(resp.Body)}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		herr.RetryAfter = retryAfter(resp)
		return &retryableError{err: herr, after: herr.RetryAfter}
	case resp.StatusCode >= 500:
		return &retryableError{err: herr}
	default:
		return herr
	}
}

// retryAfter reads a shed response's Retry-After. RFC 9110 allows only
// whole seconds (or an HTTP-date, which shards never send); anything
// unparseable falls back to the router's own backoff.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// errorBody extracts the handler's {"error": ...} message, falling back to
// the raw (truncated) body.
func errorBody(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 512))
	if err != nil || len(raw) == 0 {
		return "<no body>"
	}
	var wire struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &wire) == nil && wire.Error != "" {
		return wire.Error
	}
	return string(bytes.TrimSpace(raw))
}
