package router

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/join"
	"repro/internal/server"
	"repro/internal/zorder"
)

// JoinRequest selects how each shard runs its join; the zero value runs
// every shard's configured default.
type JoinRequest struct {
	// Method is the join algorithm (join.SJ1 .. join.SJ5) when non-zero.
	Method int
	// Workers > 1 runs a parallel join on each shard.
	Workers int
	// Predicate is the join condition in join.ParsePredicate's textual form
	// ("intersects", "within:EPS", "knn:K"); empty runs each shard's
	// default.  The fan-out is exact for every predicate because R is
	// sharded disjointly while S is replicated in full: each shard evaluates
	// its R slice against all of S, so within-distance unions cleanly and
	// every R item's kNN heap is already globally correct on its home shard.
	Predicate string
	// DiscardPairs suppresses materialising pairs; the result then carries
	// only the per-shard counts.
	DiscardPairs bool
}

// ShardOutcome is one shard's contribution to a merged join.
type ShardOutcome struct {
	Shard string
	// Epoch is the shard snapshot the join ran against.
	Epoch uint64
	// Count is the shard's pair count.
	Count int
	// Attempts is the number of HTTP attempts the request took (1 = no
	// retries).
	Attempts int
	// Wall is the shard request's wall-clock time including retries.
	Wall time.Duration
}

// JoinResult is a merged fan-out join.
type JoinResult struct {
	// Count is the total pair count over all shards.
	Count int
	// Pairs is the merged pair set in ascending (R, S) order — bit-identical
	// to a sorted single-process join of the same data.  Nil when the
	// request discarded pairs.
	Pairs [][2]int32
	// Shards holds the per-shard outcomes in merge order (ascending key
	// range).
	Shards []ShardOutcome
}

// Join fans the join out to every shard and merges the sorted shard
// streams into one deterministic pair set.  Every shard must answer:
// each holds a disjoint slice of R, so a missing shard would silently
// truncate the result.  If any shard fails after retries, Join returns a
// *PartialError naming the failed and succeeded shards — and no pairs.
func (rt *Router) Join(ctx context.Context, req JoinRequest) (*JoinResult, error) {
	// Parse the predicate up front so a malformed one fails here, with a
	// clear error, instead of as N identical shard rejections.
	pred, err := join.ParsePredicate(req.Predicate)
	if err != nil {
		return nil, err
	}
	// Plan orders the fan-out longest-first; with goroutine fan-out the
	// order matters only under client-side connection limits, but it costs
	// nothing and keeps Plan the single source of routing truth.
	plans := rt.PlanPredicate(ctx, rt.cfg.World, pred)

	type shardJoin struct {
		resp     server.JoinResponseWire
		attempts int
		wall     time.Duration
		err      error
	}
	results := make(map[string]shardJoin, len(plans))
	var mu sync.Mutex
	var wg sync.WaitGroup
	wire := server.JoinRequestWire{Method: req.Method, Workers: req.Workers, Predicate: req.Predicate, DiscardPairs: req.DiscardPairs}
	for _, p := range plans {
		wg.Add(1)
		go func(sh Shard) {
			defer wg.Done()
			var sj shardJoin
			start := rt.cfg.now()
			sj.attempts, sj.err = rt.do(ctx, sh, http.MethodPost, "/join", wire, &sj.resp)
			sj.wall = rt.cfg.now().Sub(start)
			if sj.err == nil && !req.DiscardPairs {
				if err := verifySorted(sj.resp.Pairs); err != nil {
					sj.err = err
				}
			}
			mu.Lock()
			results[sh.Name] = sj
			mu.Unlock()
		}(p.Shard)
	}
	wg.Wait()

	// Assemble in shard (key-range) order so outcomes, merge input order
	// and tie-breaks are all deterministic whatever the plan order was.
	var perr PartialError
	outcomes := make([]ShardOutcome, 0, len(rt.shards))
	streams := make([][][2]int32, 0, len(rt.shards))
	total := 0
	for _, sh := range rt.shards {
		sj := results[sh.Name]
		if sj.err != nil {
			perr.Failures = append(perr.Failures, &ShardError{Shard: sh.Name, Err: sj.err})
			continue
		}
		perr.Succeeded = append(perr.Succeeded, sh.Name)
		outcomes = append(outcomes, ShardOutcome{
			Shard:    sh.Name,
			Epoch:    sj.resp.Epoch,
			Count:    sj.resp.Count,
			Attempts: sj.attempts,
			Wall:     sj.wall,
		})
		streams = append(streams, sj.resp.Pairs)
		total += sj.resp.Count
	}
	if len(perr.Failures) > 0 {
		return nil, &perr
	}
	if pred.Kind == join.PredKNN && !req.DiscardPairs {
		// The kNN merge is a plain union, and its correctness bound is
		// R-disjointness: each R item's K-best heap is complete only on its
		// home shard, so an R identifier answered by two shards means the
		// deployment double-homed an item and the union would mix two
		// partial heaps.  Fail loudly instead of merging wrong answers.
		if err := verifyKNNStreams(streams, rt.shards, pred.K); err != nil {
			return nil, err
		}
	}
	res := &JoinResult{Count: total, Shards: outcomes}
	if !req.DiscardPairs {
		res.Pairs = mergeSorted(streams, total)
	}
	return res, nil
}

// verifyKNNStreams checks the two invariants the kNN union rests on: no R
// identifier appears in more than one shard's stream, and no R identifier
// carries more than K neighbours.
func verifyKNNStreams(streams [][][2]int32, shards []Shard, k int) error {
	owner := make(map[int32]int)
	counts := make(map[int32]int)
	for idx, stream := range streams {
		for _, p := range stream {
			if prev, ok := owner[p[0]]; ok && prev != idx {
				return fmt.Errorf("router: kNN merge: R item %d answered by both %s and %s — R is not disjoint across shards",
					p[0], shards[prev].Name, shards[idx].Name)
			}
			owner[p[0]] = idx
			counts[p[0]]++
			if counts[p[0]] > k {
				return fmt.Errorf("router: kNN merge: R item %d carries %d neighbours, more than k=%d",
					p[0], counts[p[0]], k)
			}
		}
	}
	return nil
}

// verifySorted checks the wire contract behind the merge: each shard's
// pairs arrive in ascending (R, S) order.  An unsorted stream means the
// shard is not speaking the protocol, which is a shard failure, not
// something to paper over by re-sorting.
func verifySorted(pairs [][2]int32) error {
	for i := 1; i < len(pairs); i++ {
		if pairLess(pairs[i], pairs[i-1]) {
			return fmt.Errorf("protocol violation: pairs not sorted by (R, S) at index %d", i)
		}
	}
	return nil
}

func pairLess(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// mergeSorted k-way merges the sorted shard streams.  Ties break to the
// lowest stream index — the shard with the lowest key range — so the merge
// is deterministic even if two shards ever emitted an equal pair.
func mergeSorted(streams [][][2]int32, total int) [][2]int32 {
	out := make([][2]int32, 0, total)
	idx := make([]int, len(streams))
	for {
		best := -1
		for k, s := range streams {
			if idx[k] >= len(s) {
				continue
			}
			if best < 0 || pairLess(s[idx[k]], streams[best][idx[best]]) {
				best = k
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
}

// Update routes each op to the shard owning its rectangle's centre key and
// stages the per-shard batches in shard order.  It returns the number of
// ops staged; on a shard failure it returns the count staged so far and a
// *ShardError (staged ops on earlier shards stay staged — they become
// visible at those shards' next rounds whether or not this call succeeded,
// which is the same at-least-staged contract a retried direct update has).
func (rt *Router) Update(ctx context.Context, ops []server.OpWire) (int, error) {
	batches := make([][]server.OpWire, len(rt.shards))
	for i, op := range ops {
		key := zorder.HilbertKey(op.Rect().Center(), rt.cfg.World)
		shard := rt.shardFor(key)
		if shard < 0 {
			return 0, fmt.Errorf("router: op %d: centre key %d outside the key space", i, key)
		}
		batches[shard] = append(batches[shard], op)
	}
	staged := 0
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		var resp struct {
			Staged int `json:"staged"`
		}
		if _, err := rt.do(ctx, rt.shards[i], http.MethodPost, "/update", batch, &resp); err != nil {
			return staged, &ShardError{Shard: rt.shards[i].Name, Err: err}
		}
		staged += resp.Staged
	}
	return staged, nil
}

// Round commits staged mutations on every shard.  Like Join it is
// all-or-error: a shard that cannot flip leaves the deployment on mixed
// epochs, which the caller must know about.
func (rt *Router) Round(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(rt.shards))
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			_, errs[i] = rt.do(ctx, sh, http.MethodPost, "/round", nil, nil)
		}(i, sh)
	}
	wg.Wait()
	var perr PartialError
	for i, err := range errs {
		if err != nil {
			perr.Failures = append(perr.Failures, &ShardError{Shard: rt.shards[i].Name, Err: err})
		} else {
			perr.Succeeded = append(perr.Succeeded, rt.shards[i].Name)
		}
	}
	if len(perr.Failures) > 0 {
		return &perr
	}
	return nil
}

// Stats fetches a fresh stats snapshot from every shard (feeding the TTL
// cache as a side effect) keyed by shard name.  Shards that fail to answer
// are reported in a *PartialError alongside the snapshots that succeeded.
func (rt *Router) Stats(ctx context.Context) (map[string]server.StatsWire, error) {
	out := make(map[string]server.StatsWire, len(rt.shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, len(rt.shards))
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			var wire server.StatsWire
			if _, err := rt.do(ctx, sh, http.MethodGet, "/stats", nil, &wire); err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			out[sh.Name] = wire
			mu.Unlock()
			rt.mu.Lock()
			rt.cache[sh.Name] = statsEntry{wire: wire, at: rt.cfg.now()}
			rt.mu.Unlock()
		}(i, sh)
	}
	wg.Wait()
	var perr PartialError
	for i, err := range errs {
		if err != nil {
			perr.Failures = append(perr.Failures, &ShardError{Shard: rt.shards[i].Name, Err: err})
		} else {
			perr.Succeeded = append(perr.Succeeded, rt.shards[i].Name)
		}
	}
	if len(perr.Failures) > 0 {
		return out, &perr
	}
	return out, nil
}
