package costmodel

import (
	"math"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

func TestDefaultConstantsMatchPaper(t *testing.T) {
	m := Default()
	if m.PositioningSeconds != 1.5e-2 {
		t.Errorf("positioning cost = %g", m.PositioningSeconds)
	}
	if m.TransferSecondsPerKByte != 5e-3 {
		t.Errorf("transfer cost = %g", m.TransferSecondsPerKByte)
	}
	if m.ComparisonSeconds != 3.9e-6 {
		t.Errorf("comparison cost = %g", m.ComparisonSeconds)
	}
}

func TestEstimateArithmetic(t *testing.T) {
	m := Default()
	// 1000 accesses of 1 KByte pages: 1000 * (0.015 + 0.005) = 20 s I/O.
	// 1,000,000 comparisons: 3.9 s CPU.
	e := m.Estimate(1000, storage.PageSize1K, 1_000_000)
	if math.Abs(e.IOSeconds-20) > 1e-9 {
		t.Errorf("IOSeconds = %g, want 20", e.IOSeconds)
	}
	if math.Abs(e.CPUSeconds-3.9) > 1e-9 {
		t.Errorf("CPUSeconds = %g, want 3.9", e.CPUSeconds)
	}
	if math.Abs(e.TotalSeconds()-23.9) > 1e-9 {
		t.Errorf("TotalSeconds = %g, want 23.9", e.TotalSeconds())
	}
	if !e.IOBound() {
		t.Error("this configuration must be I/O bound")
	}
	if share := e.CPUShare(); math.Abs(share-3.9/23.9) > 1e-9 {
		t.Errorf("CPUShare = %g", share)
	}
	if e.Total() != time.Duration(23.9*float64(time.Second)) {
		t.Errorf("Total = %v", e.Total())
	}
	if e.String() == "" {
		t.Error("String must not be empty")
	}
}

func TestEstimateLargerPagesCostMorePerAccess(t *testing.T) {
	m := Default()
	small := m.Estimate(100, storage.PageSize1K, 0)
	large := m.Estimate(100, storage.PageSize8K, 0)
	if large.IOSeconds <= small.IOSeconds {
		t.Errorf("8K accesses (%g s) must cost more than 1K accesses (%g s)", large.IOSeconds, small.IOSeconds)
	}
	// But not 8x more: positioning dominates.
	if large.IOSeconds >= 8*small.IOSeconds {
		t.Errorf("positioning cost must dampen the page-size effect")
	}
}

func TestEstimateSnapshot(t *testing.T) {
	c := metrics.NewCollector()
	c.AddComparisons(1000)
	c.AddSortComparisons(500)
	c.AddDiskRead(int64(storage.PageSize4K))
	c.AddDiskRead(int64(storage.PageSize4K))
	e := Default().EstimateSnapshot(c.Snapshot(), storage.PageSize4K)
	want := Default().Estimate(2, storage.PageSize4K, 1500)
	if e != want {
		t.Errorf("EstimateSnapshot = %+v, want %+v", e, want)
	}
}

func TestCPUShareZeroTotal(t *testing.T) {
	if share := (Estimate{}).CPUShare(); share != 0 {
		t.Errorf("CPUShare of zero estimate = %g", share)
	}
}

func TestSpeedup(t *testing.T) {
	a := Estimate{IOSeconds: 10, CPUSeconds: 10}
	b := Estimate{IOSeconds: 4, CPUSeconds: 1}
	if got := Speedup(a, b); math.Abs(got-4) > 1e-9 {
		t.Errorf("Speedup = %g, want 4", got)
	}
	if got := Speedup(a, Estimate{}); got <= 1e6 {
		t.Errorf("Speedup over zero estimate = %g, want a huge value", got)
	}
	if got := Speedup(Estimate{}, Estimate{}); got != 1 {
		t.Errorf("Speedup of two zero estimates = %g, want 1", got)
	}
}

func TestPaperFigure2Shape(t *testing.T) {
	// Figure 2 of the paper: with no LRU buffer, SpatialJoin1 is slightly
	// I/O-bound for 1 KByte pages and becomes clearly CPU-bound for 8 KByte
	// pages.  Reproduce the shape from the paper's own Table 2 numbers.
	m := Default()
	e1 := m.Estimate(24727, storage.PageSize1K, 33566961)
	e8 := m.Estimate(2837, storage.PageSize8K, 242728164)
	if !e1.IOBound() {
		t.Errorf("1 KByte configuration should be I/O bound (io=%g cpu=%g)", e1.IOSeconds, e1.CPUSeconds)
	}
	if e8.IOBound() {
		t.Errorf("8 KByte configuration should be CPU bound (io=%g cpu=%g)", e8.IOSeconds, e8.CPUSeconds)
	}
}
