package costmodel

import "testing"

func testCatalog() Catalog {
	return Catalog{
		PageSize: 1024,
		Height:   3,
		Levels: []LevelStats{
			{Level: 0, Nodes: 100, Entries: 2000, SampleSize: 10,
				AvgFanout: 20, AvgEntryWidth: 0.01, AvgEntryHeight: 0.02, AvgDensity: 0.4},
			{Level: 1, Nodes: 10, Entries: 100, SampleSize: 10, AvgFanout: 10},
			{Level: 2, Nodes: 1, Entries: 10, SampleSize: 1, AvgFanout: 10},
		},
	}
}

func TestCatalogSubtreeExpectations(t *testing.T) {
	c := testCatalog()
	if !c.Valid() {
		t.Fatal("catalog should be valid")
	}
	if got := c.DataEntries(); got != 2000 {
		t.Errorf("DataEntries = %d, want 2000", got)
	}
	// A leaf subtree is one page holding its share of the data.
	if got := c.SubtreePages(0); got != 1 {
		t.Errorf("SubtreePages(0) = %v, want 1", got)
	}
	if got := c.SubtreeEntries(0); got != 20 {
		t.Errorf("SubtreeEntries(0) = %v, want 20", got)
	}
	// A level-1 subtree averages (100 leaves + 10 dirs) / 10 roots pages.
	if got := c.SubtreePages(1); got != 11 {
		t.Errorf("SubtreePages(1) = %v, want 11", got)
	}
	if got := c.SubtreeEntries(1); got != 200 {
		t.Errorf("SubtreeEntries(1) = %v, want 200", got)
	}
	// The root subtree is the whole tree.
	if got := c.SubtreePages(2); got != 111 {
		t.Errorf("SubtreePages(2) = %v, want 111", got)
	}
	if got := c.SubtreeEntries(2); got != 2000 {
		t.Errorf("SubtreeEntries(2) = %v, want 2000", got)
	}
	// Out-of-range levels clamp to the recorded range instead of panicking.
	if got := c.SubtreePages(9); got != 111 {
		t.Errorf("SubtreePages(9) = %v, want 111 (clamped)", got)
	}
	if got := c.SubtreeEntries(-1); got != 20 {
		t.Errorf("SubtreeEntries(-1) = %v, want 20 (clamped)", got)
	}
	if w, h, ok := c.LeafExtent(); !ok || w != 0.01 || h != 0.02 {
		t.Errorf("LeafExtent = (%v, %v, %v)", w, h, ok)
	}
	if d, ok := c.LeafDensity(); !ok || d != 0.4 {
		t.Errorf("LeafDensity = (%v, %v)", d, ok)
	}
}

func TestCatalogInvalid(t *testing.T) {
	var zero Catalog
	if zero.Valid() {
		t.Error("zero catalog must be invalid")
	}
	if zero.DataEntries() != 0 || zero.SubtreePages(1) != 0 || zero.SubtreeEntries(1) != 0 {
		t.Error("invalid catalog must report zero expectations")
	}
	if _, _, ok := zero.LeafExtent(); ok {
		t.Error("invalid catalog must not report a leaf extent")
	}
	if _, ok := zero.LeafDensity(); ok {
		t.Error("invalid catalog must not report a leaf density")
	}
	empty := Catalog{Levels: []LevelStats{{Nodes: 0}}}
	if empty.Valid() {
		t.Error("catalog with an empty leaf level must be invalid")
	}
}
