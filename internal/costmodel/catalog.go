package costmodel

// Catalog statistics: per-level structural summaries of an R-tree, collected
// by reservoir sampling during tree construction (or by a one-pass sampling
// walk for trees built before statistics existed).  They play the role of the
// disk-resident statistics a query planner keeps in its catalog: the planner
// may consult them at any time without touching the tree's pages, so feeding
// them to a cost estimator charges no I/O.
//
// The per-level node and entry counts are exact (they cost one integer each
// to maintain); the per-node shape statistics — fan-out, mean entry extents,
// coverage density — are averages over a bounded reservoir sample, so the
// catalog stays O(height) in size regardless of the tree.

// LevelStats summarises one level of a tree.  Level 0 is the leaf level.
type LevelStats struct {
	// Level is the distance from the leaf level (0 = leaves).
	Level int
	// Nodes is the exact number of nodes at this level.
	Nodes int64
	// Entries is the exact number of entries stored at this level; at level 0
	// this is the number of data rectangles.
	Entries int64
	// SampleSize is the number of nodes in the reservoir the averages below
	// were computed from.
	SampleSize int
	// AvgFanout is the mean entry count over the sampled nodes.
	AvgFanout float64
	// AvgEntryWidth and AvgEntryHeight are the mean extents of the sampled
	// nodes' entry rectangles.  At the leaf level these are the mean data-
	// rectangle extents, the quantity a spatial-join selectivity estimate
	// needs.
	AvgEntryWidth  float64
	AvgEntryHeight float64
	// AvgDensity is the mean coverage of the sampled nodes: the sum of their
	// entries' areas divided by the node MBR's area (can exceed 1 for
	// overlapping entries; degenerate MBRs count as density 1).
	AvgDensity float64
}

// Catalog is the sampled statistics of one tree.
type Catalog struct {
	// PageSize is the page size in bytes of the tree's nodes.
	PageSize int
	// Height is the number of levels (1 for a single leaf).
	Height int
	// Levels holds one entry per level, indexed by level (Levels[0] = leaves).
	Levels []LevelStats
}

// Valid reports whether the catalog holds usable statistics: at least a leaf
// level with a non-zero node count.
func (c Catalog) Valid() bool {
	return len(c.Levels) > 0 && c.Levels[0].Nodes > 0
}

// DataEntries returns the exact number of data rectangles recorded by the
// catalog (0 for an invalid catalog).
func (c Catalog) DataEntries() int64 {
	if !c.Valid() {
		return 0
	}
	return c.Levels[0].Entries
}

// clampLevel maps out-of-range levels onto the recorded range so that a
// caller asking about a level the catalog never saw (e.g. after the tree
// grew) gets the nearest recorded answer instead of a panic.
func (c Catalog) clampLevel(level int) int {
	if level < 0 {
		return 0
	}
	if level >= len(c.Levels) {
		return len(c.Levels) - 1
	}
	return level
}

// SubtreePages returns the expected number of pages of a subtree whose root
// sits at the given level: the exact population of each level at or below it,
// divided by the number of subtree roots.  Unlike the catalog-average
// fan-out^level model this reflects the tree as built, including underfilled
// levels and bulk-load packing.
func (c Catalog) SubtreePages(level int) float64 {
	if !c.Valid() {
		return 0
	}
	level = c.clampLevel(level)
	roots := float64(c.Levels[level].Nodes)
	if roots == 0 {
		return 0
	}
	var pages float64
	for l := 0; l <= level; l++ {
		pages += float64(c.Levels[l].Nodes)
	}
	return pages / roots
}

// SubtreeEntries returns the expected number of data rectangles below one
// node at the given level.
func (c Catalog) SubtreeEntries(level int) float64 {
	if !c.Valid() {
		return 0
	}
	level = c.clampLevel(level)
	roots := float64(c.Levels[level].Nodes)
	if roots == 0 {
		return 0
	}
	return float64(c.DataEntries()) / roots
}

// LeafExtent returns the sampled mean width and height of the data
// rectangles and whether a leaf sample exists.  Selectivity estimates use it
// to turn "entries in a region" into "expected intersecting pairs".
func (c Catalog) LeafExtent() (w, h float64, ok bool) {
	if !c.Valid() || c.Levels[0].SampleSize == 0 {
		return 0, 0, false
	}
	return c.Levels[0].AvgEntryWidth, c.Levels[0].AvgEntryHeight, true
}

// LeafDensity returns the sampled mean leaf coverage and whether a leaf
// sample exists.
func (c Catalog) LeafDensity() (float64, bool) {
	if !c.Valid() || c.Levels[0].SampleSize == 0 {
		return 0, false
	}
	return c.Levels[0].AvgDensity, true
}
