// Package costmodel converts the counted cost measures (floating-point
// comparisons and disk accesses) into the estimated execution times the paper
// plots in Figures 2, 8 and 9.
//
// The constants are the ones the paper states in section 4.1: 15 ms to
// position the disk arm, 5 ms to transfer one KByte from disk and 3.9 µs per
// floating-point comparison (measured on an HP 720 workstation).  Absolute
// times are therefore tied to 1993 hardware, but the ratios — which algorithm
// wins, whether a configuration is CPU- or I/O-bound — depend only on the
// counted quantities, which is what the reproduction checks.
//
//repro:measured
package costmodel

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Paper constants (section 4.1).
const (
	// PositioningCostSeconds is the seek plus rotational latency per disk
	// access.
	PositioningCostSeconds = 1.5e-2
	// TransferCostSecondsPerKByte is the transfer time per KByte read.
	TransferCostSecondsPerKByte = 5e-3
	// ComparisonCostSeconds is the cost of one floating-point comparison
	// including interpreter overhead.
	ComparisonCostSeconds = 3.9e-6
)

// Model holds the cost constants; the zero value is unusable, use Default or
// construct explicitly to study other hardware.
type Model struct {
	PositioningSeconds      float64
	TransferSecondsPerKByte float64
	ComparisonSeconds       float64
}

// Default returns the paper's HP 720 cost model.
func Default() Model {
	return Model{
		PositioningSeconds:      PositioningCostSeconds,
		TransferSecondsPerKByte: TransferCostSecondsPerKByte,
		ComparisonSeconds:       ComparisonCostSeconds,
	}
}

// Estimate is the decomposition of an estimated execution time.
type Estimate struct {
	IOSeconds  float64
	CPUSeconds float64
}

// TotalSeconds returns I/O plus CPU time.
func (e Estimate) TotalSeconds() float64 { return e.IOSeconds + e.CPUSeconds }

// Total returns the estimate as a time.Duration.
func (e Estimate) Total() time.Duration {
	return time.Duration(e.TotalSeconds() * float64(time.Second))
}

// IOBound reports whether the estimate is dominated by I/O time.
func (e Estimate) IOBound() bool { return e.IOSeconds > e.CPUSeconds }

// CPUShare returns the fraction of the total time spent on comparisons.
func (e Estimate) CPUShare() float64 {
	t := e.TotalSeconds()
	if t == 0 {
		return 0
	}
	return e.CPUSeconds / t
}

// String implements fmt.Stringer.
func (e Estimate) String() string {
	return fmt.Sprintf("total=%.1fs io=%.1fs cpu=%.1fs", e.TotalSeconds(), e.IOSeconds, e.CPUSeconds)
}

// Estimate converts counted costs into estimated seconds.  diskAccesses is
// the number of page reads and writes, pageSize the page size in bytes, and
// comparisons the number of floating-point comparisons (join plus sorting).
func (m Model) Estimate(diskAccesses int64, pageSize int, comparisons int64) Estimate {
	kbytesPerPage := float64(pageSize) / 1024.0
	return Estimate{
		IOSeconds:  float64(diskAccesses) * (m.PositioningSeconds + m.TransferSecondsPerKByte*kbytesPerPage),
		CPUSeconds: float64(comparisons) * m.ComparisonSeconds,
	}
}

// EstimateSnapshot is a convenience wrapper taking a metrics snapshot.
func (m Model) EstimateSnapshot(s metrics.Snapshot, pageSize int) Estimate {
	return m.Estimate(s.DiskAccesses(), pageSize, s.TotalComparisons())
}

// Speedup returns how many times faster b is than a in estimated total time.
// It returns +Inf when b's estimated time is zero.
func Speedup(a, b Estimate) float64 {
	if b.TotalSeconds() == 0 {
		if a.TotalSeconds() == 0 {
			return 1
		}
		return float64(int64(1) << 62)
	}
	return a.TotalSeconds() / b.TotalSeconds()
}
