package zbjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rtree"
)

func TestDecomposeCoversRectangle(t *testing.T) {
	world := geom.WorldRect()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		r := geom.Rect{XL: x, YL: y, XU: x + rng.Float64()*0.1, YU: y + rng.Float64()*0.1}
		cells := Decompose(r, world, 4)
		if len(cells) == 0 || len(cells) > 4 {
			t.Fatalf("decomposition of %v produced %d cells", r, len(cells))
		}
		// Probe random points inside the rectangle: every point's z-value must
		// fall into at least one cell interval.
		for p := 0; p < 20; p++ {
			px := r.XL + rng.Float64()*r.Width()
			py := r.YL + rng.Float64()*r.Height()
			z := pointZ(geom.Point{X: px, Y: py}, world)
			covered := false
			for _, c := range cells {
				if z >= c.Lo && z < c.Hi {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("point (%g,%g) of %v not covered by cells %v", px, py, r, cells)
			}
		}
	}
}

// pointZ computes the z-value of a point at MaxLevel resolution using the
// same SW/SE/NW/NE child ordering as Decompose.
func pointZ(p geom.Point, world geom.Rect) uint64 {
	cell := world
	var z uint64
	for level := 0; level < MaxLevel; level++ {
		span := uint64(1) << (2 * uint(MaxLevel-level-1))
		midX := (cell.XL + cell.XU) / 2
		midY := (cell.YL + cell.YU) / 2
		idx := uint64(0)
		if p.X >= midX {
			idx |= 1
			cell.XL = midX
		} else {
			cell.XU = midX
		}
		if p.Y >= midY {
			idx |= 2
			cell.YL = midY
		} else {
			cell.YU = midY
		}
		z += idx * span
	}
	return z
}

func TestDecomposeBudget(t *testing.T) {
	world := geom.WorldRect()
	r := geom.Rect{XL: 0.1, YL: 0.1, XU: 0.6, YU: 0.6}
	for _, budget := range []int{1, 2, 4, 8, 16} {
		cells := Decompose(r, world, budget)
		if len(cells) == 0 || len(cells) > budget {
			t.Fatalf("budget %d produced %d cells", budget, len(cells))
		}
	}
	if got := Decompose(r, world, 0); len(got) != 1 {
		t.Fatalf("budget 0 should clamp to 1 cell, got %d", len(got))
	}
	if got := Decompose(geom.Rect{XL: 5, YL: 5, XU: 6, YU: 6}, world, 4); len(got) != 0 {
		t.Fatalf("rect outside the world should produce no cells, got %d", len(got))
	}
}

func TestDecomposeFinerBudgetReducesCoveredArea(t *testing.T) {
	// More cells approximate the rectangle more tightly, i.e. the total
	// z-interval length (a proxy for covered area) shrinks.
	world := geom.WorldRect()
	r := geom.Rect{XL: 0.13, YL: 0.22, XU: 0.47, YU: 0.58}
	length := func(cells []Cell) uint64 {
		var sum uint64
		for _, c := range cells {
			sum += c.Hi - c.Lo
		}
		return sum
	}
	coarse := length(Decompose(r, world, 1))
	medium := length(Decompose(r, world, 4))
	fine := length(Decompose(r, world, 16))
	if !(fine <= medium && medium <= coarse) {
		t.Fatalf("covered length must shrink with budget: %d, %d, %d", coarse, medium, fine)
	}
	if fine == coarse {
		t.Fatal("expected a strictly better approximation with 16 cells")
	}
}

func TestCellContains(t *testing.T) {
	a := Cell{Lo: 0, Hi: 64}
	b := Cell{Lo: 16, Hi: 32}
	if !a.Contains(b) || b.Contains(a) {
		t.Fatal("containment answered incorrectly")
	}
}

func TestBuildRelationRedundancy(t *testing.T) {
	items := datagen.Generate(datagen.Config{Kind: datagen.Regions, Count: 500, Seed: 3})
	rel := BuildRelation(items, Options{MaxCells: 4})
	if rel.Objects() != len(items) {
		t.Fatalf("Objects = %d", rel.Objects())
	}
	if rel.CellReferences() < rel.Objects() {
		t.Fatal("every object must contribute at least one cell")
	}
	if rf := rel.RedundancyFactor(); rf < 1 || rf > 4 {
		t.Fatalf("redundancy factor %g outside [1,4]", rf)
	}
	if rel.Index().Len() != rel.CellReferences() {
		t.Fatalf("B+-tree holds %d cells, want %d", rel.Index().Len(), rel.CellReferences())
	}
	if err := rel.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	empty := BuildRelation(nil, Options{})
	if empty.RedundancyFactor() != 0 {
		t.Fatal("empty relation must report zero redundancy")
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	for _, kinds := range [][2]datagen.Kind{
		{datagen.Streets, datagen.Rivers},
		{datagen.Regions, datagen.Regions},
	} {
		itemsR := datagen.Generate(datagen.Config{Kind: kinds[0], Count: 1200, Seed: 21})
		itemsS := datagen.Generate(datagen.Config{Kind: kinds[1], Count: 1200, Seed: 22})
		want := make(map[Pair]bool)
		for _, a := range itemsR {
			for _, b := range itemsS {
				if a.Rect.Intersects(b.Rect) {
					want[Pair{R: a.Data, S: b.Data}] = true
				}
			}
		}
		relR := BuildRelation(itemsR, Options{MaxCells: 4})
		relS := BuildRelation(itemsS, Options{MaxCells: 4})
		res := Join(relR, relS, metrics.NewCollector())
		got := make(map[Pair]bool, len(res.Pairs))
		for _, p := range res.Pairs {
			if got[p] {
				t.Fatalf("%v/%v: duplicate pair %v", kinds[0], kinds[1], p)
			}
			got[p] = true
		}
		if len(got) != len(want) {
			t.Fatalf("%v/%v: %d pairs, want %d", kinds[0], kinds[1], len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%v/%v: missing pair %v", kinds[0], kinds[1], p)
			}
		}
		if res.Candidates < len(res.Pairs) {
			t.Fatalf("candidates (%d) cannot be fewer than results (%d)", res.Candidates, len(res.Pairs))
		}
		if res.Metrics.Comparisons == 0 {
			t.Fatal("verification must charge comparisons")
		}
		if res.String() == "" {
			t.Fatal("String must not be empty")
		}
	}
}

func TestJoinNilCollector(t *testing.T) {
	items := datagen.Generate(datagen.Config{Kind: datagen.Streets, Count: 100, Seed: 5})
	rel := BuildRelation(items, Options{})
	res := Join(rel, rel, nil)
	if len(res.Pairs) < len(items) {
		t.Fatalf("self join must at least find the identity pairs, got %d", len(res.Pairs))
	}
}

func TestHigherRedundancyReducesFalseCandidates(t *testing.T) {
	// The paper's redundancy trade-off: a finer decomposition (higher
	// redundancy factor) yields a more accurate filter, i.e. fewer candidates
	// that fail MBR verification, at the price of more stored references.
	itemsR := datagen.Generate(datagen.Config{Kind: datagen.Regions, Count: 800, Seed: 31})
	itemsS := datagen.Generate(datagen.Config{Kind: datagen.Regions, Count: 800, Seed: 32})
	falseRate := func(maxCells int) float64 {
		relR := BuildRelation(itemsR, Options{MaxCells: maxCells})
		relS := BuildRelation(itemsS, Options{MaxCells: maxCells})
		res := Join(relR, relS, nil)
		if res.Candidates == 0 {
			return 0
		}
		return 1 - float64(len(res.Pairs))/float64(res.Candidates)
	}
	coarse := falseRate(1)
	fine := falseRate(8)
	if fine > coarse {
		t.Fatalf("finer decomposition should not increase the false-candidate rate: %.3f vs %.3f", fine, coarse)
	}
}

// Property: decomposition cells never overlap each other and all lie inside
// the world interval.
func TestDecomposeCellsDisjointProperty(t *testing.T) {
	world := geom.WorldRect()
	f := func(xs, ys, ws, hs uint8) bool {
		x := float64(xs) / 300
		y := float64(ys) / 300
		w := float64(ws)/300 + 0.001
		h := float64(hs)/300 + 0.001
		r := geom.Rect{XL: x, YL: y, XU: x + w, YU: y + h}
		cells := Decompose(r, world, 6)
		for i := 0; i < len(cells); i++ {
			if cells[i].Hi <= cells[i].Lo {
				return false
			}
			for j := i + 1; j < len(cells); j++ {
				// Intervals must be disjoint (cells of one decomposition are
				// never nested because nesting would be redundant coverage).
				if cells[i].Lo < cells[j].Hi && cells[j].Lo < cells[i].Hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

var _ = rtree.Item{} // datagen returns rtree.Items; keep the import explicit for readers.
