// Package zbjoin implements the z-ordering spatial-join baseline the paper
// contrasts R-tree joins with (section 2, Orenstein's approach): every
// rectangle is decomposed into a bounded number of quadtree cells ("z-cells"),
// the cells of each relation are stored in a B+-tree ordered by z-value, and
// the join is computed by a synchronized, "almost linear" merge over the two
// sorted cell sequences.
//
// Because a rectangle may be represented by several cells, the same candidate
// pair can be produced more than once; the ratio of stored cell references to
// objects is the redundancy factor the paper discusses.  Candidates are
// deduplicated and verified against the original MBRs before being reported.
package zbjoin

import (
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rtree"
)

// MaxLevel is the maximum quadtree refinement depth of the cell
// decomposition; 2*MaxLevel bits of z-value are used.
const MaxLevel = 16

// DefaultMaxCells bounds the number of cells one rectangle is decomposed
// into.  Higher values increase the redundancy factor (more, smaller cells
// approximate the rectangle better) and reduce the number of false-positive
// candidates, the trade-off discussed in the paper's section 2.
const DefaultMaxCells = 4

// Cell is one element of a rectangle's z-order decomposition: a quadtree cell
// identified by the half-open z-value interval [Lo, Hi) it covers.
type Cell struct {
	Lo, Hi uint64
}

// Contains reports whether c fully contains other (quadtree cells are either
// disjoint or nested).
func (c Cell) Contains(other Cell) bool { return c.Lo <= other.Lo && other.Hi <= c.Hi }

// Relation is one side of the z-ordering join: the decomposed cells of all
// objects of a relation stored in a B+-tree, plus the objects' MBRs for the
// verification step.
type Relation struct {
	tree     *btree.Tree
	cells    []cellRef
	rects    map[int32]geom.Rect
	objects  int
	refCount int
	world    geom.Rect
}

// cellRef is one cell reference: the cell plus the object it belongs to.
type cellRef struct {
	cell Cell
	id   int32
}

// Options configures the decomposition.
type Options struct {
	// MaxCells bounds the number of cells per rectangle (default
	// DefaultMaxCells).
	MaxCells int
	// World is the data space covered by the quadtree; default is the unit
	// square.  All rectangles must lie inside it.
	World geom.Rect
}

func (o Options) withDefaults() Options {
	if o.MaxCells <= 0 {
		o.MaxCells = DefaultMaxCells
	}
	if o.World.Area() == 0 {
		o.World = geom.WorldRect()
	}
	return o
}

// BuildRelation decomposes every item into z-cells and stores them in a
// B+-tree keyed by the cells' lower z-value.
func BuildRelation(items []rtree.Item, opts Options) *Relation {
	opts = opts.withDefaults()
	rel := &Relation{
		tree:    btree.NewDefault(),
		rects:   make(map[int32]geom.Rect, len(items)),
		objects: len(items),
		world:   opts.World,
	}
	for _, it := range items {
		rel.rects[it.Data] = it.Rect
		cells := Decompose(it.Rect, opts.World, opts.MaxCells)
		for _, c := range cells {
			rel.cells = append(rel.cells, cellRef{cell: c, id: it.Data})
			rel.tree.Insert(c.Lo, it.Data)
			rel.refCount++
		}
	}
	sort.Slice(rel.cells, func(i, j int) bool {
		if rel.cells[i].cell.Lo != rel.cells[j].cell.Lo {
			return rel.cells[i].cell.Lo < rel.cells[j].cell.Lo
		}
		// Larger (containing) cells first so the merge's stack discipline
		// sees ancestors before descendants.
		return rel.cells[i].cell.Hi > rel.cells[j].cell.Hi
	})
	return rel
}

// Objects returns the number of spatial objects in the relation.
func (r *Relation) Objects() int { return r.objects }

// CellReferences returns the number of stored cell references.
func (r *Relation) CellReferences() int { return r.refCount }

// RedundancyFactor returns cell references divided by objects, the measure
// the paper uses to characterise z-ordering approaches.
func (r *Relation) RedundancyFactor() float64 {
	if r.objects == 0 {
		return 0
	}
	return float64(r.refCount) / float64(r.objects)
}

// Index returns the underlying B+-tree (for statistics and tests).
func (r *Relation) Index() *btree.Tree { return r.tree }

// Decompose returns the z-order cells approximating rect within world, at
// most maxCells of them.  The decomposition recursively splits quadtree cells
// that are not fully covered by rect, stopping early (and accepting a coarser
// approximation) when the budget is reached.
func Decompose(rect geom.Rect, world geom.Rect, maxCells int) []Cell {
	if maxCells <= 0 {
		maxCells = 1
	}
	clipped, ok := rect.Intersection(world)
	if !ok {
		return nil
	}
	type task struct {
		cell  geom.Rect
		lo    uint64
		level int
	}
	var out []Cell
	// span returns the z-value span of a cell at the given level.
	span := func(level int) uint64 { return uint64(1) << (2 * uint(MaxLevel-level)) }

	// decompose covers clipped ∩ t.cell with at most budget cells (budget is
	// always >= 1) and returns how many it emitted.  Coverage is never given
	// up: when the budget is too small to refine further, the whole cell is
	// emitted as a coarser approximation.
	var decompose func(t task, budget int) int
	decompose = func(t task, budget int) int {
		if clipped.Contains(t.cell) || t.level == MaxLevel || budget <= 1 {
			out = append(out, Cell{Lo: t.lo, Hi: t.lo + span(t.level)})
			return 1
		}
		// Split into the four children in z-order: SW, SE, NW, NE.
		midX := (t.cell.XL + t.cell.XU) / 2
		midY := (t.cell.YL + t.cell.YU) / 2
		childSpan := span(t.level + 1)
		children := [4]geom.Rect{
			{XL: t.cell.XL, YL: t.cell.YL, XU: midX, YU: midY},
			{XL: midX, YL: t.cell.YL, XU: t.cell.XU, YU: midY},
			{XL: t.cell.XL, YL: midY, XU: midX, YU: t.cell.YU},
			{XL: midX, YL: midY, XU: t.cell.XU, YU: t.cell.YU},
		}
		var tasks []task
		for i, child := range children {
			if clipped.Intersects(child) {
				tasks = append(tasks, task{cell: child, lo: t.lo + uint64(i)*childSpan, level: t.level + 1})
			}
		}
		if len(tasks) > budget {
			// Not enough budget to give every intersecting child at least one
			// cell; keep the coarse parent cell instead.
			out = append(out, Cell{Lo: t.lo, Hi: t.lo + span(t.level)})
			return 1
		}
		used := 0
		for i, child := range tasks {
			// Spread the remaining budget evenly over the remaining children;
			// every child receives at least one cell, so coverage is
			// guaranteed.
			remainingChildren := len(tasks) - i
			quota := (budget - used + remainingChildren - 1) / remainingChildren
			used += decompose(child, quota)
		}
		return used
	}
	decompose(task{cell: world, lo: 0, level: 0}, maxCells)
	return out
}

// Result is the outcome of a z-ordering join.
type Result struct {
	// Pairs are the verified result pairs (identifiers from R and S).
	Pairs []Pair
	// Candidates is the number of candidate pairs produced by the merge
	// before deduplication and MBR verification.
	Candidates int
	// Metrics captures the comparisons charged during verification.
	Metrics metrics.Snapshot
	// RedundancyR and RedundancyS are the redundancy factors of the inputs.
	RedundancyR, RedundancyS float64
}

// Pair mirrors join.Pair to keep the package free of a dependency on the
// R-tree join implementation.
type Pair struct {
	R, S int32
}

// Join computes the MBR-spatial-join of the two relations by merging their
// sorted cell sequences: two cells can only contain intersecting rectangles
// if their z-value intervals overlap (one contains the other, since quadtree
// cells form a laminar family).  Candidate pairs are deduplicated and
// verified against the exact MBRs, with the verification comparisons charged
// to the collector.
func Join(r, s *Relation, collector *metrics.Collector) *Result {
	if collector == nil {
		collector = metrics.NewCollector()
	}
	before := collector.Snapshot()
	res := &Result{
		RedundancyR: r.RedundancyFactor(),
		RedundancyS: s.RedundancyFactor(),
	}
	seen := make(map[Pair]bool)

	// Synchronized scan over both cell sequences in z order.  Each side keeps
	// a stack of "open" cells (ancestors of the current position); a new cell
	// pairs with every open cell of the other side that contains it or is
	// contained by it.
	var stackR, stackS []cellRef
	i, j := 0, 0
	push := func(stack []cellRef, c cellRef) []cellRef {
		// Pop cells that end before the new cell starts.
		for len(stack) > 0 && stack[len(stack)-1].cell.Hi <= c.cell.Lo {
			stack = stack[:len(stack)-1]
		}
		return append(stack, c)
	}
	report := func(rID, sID int32) {
		res.Candidates++
		p := Pair{R: rID, S: sID}
		if seen[p] {
			return
		}
		seen[p] = true
		if geom.IntersectsCounted(r.rects[rID], s.rects[sID], collector) {
			res.Pairs = append(res.Pairs, p)
			collector.AddPairReported()
		}
	}
	stepR := func() {
		c := r.cells[i]
		stackR = push(stackR, c)
		stackS = prune(stackS, c.cell.Lo)
		for _, open := range stackS {
			if open.cell.Contains(c.cell) || c.cell.Contains(open.cell) {
				report(c.id, open.id)
			}
		}
		i++
	}
	stepS := func() {
		c := s.cells[j]
		stackS = push(stackS, c)
		stackR = prune(stackR, c.cell.Lo)
		for _, open := range stackR {
			if open.cell.Contains(c.cell) || c.cell.Contains(open.cell) {
				report(open.id, c.id)
			}
		}
		j++
	}
	for i < len(r.cells) && j < len(s.cells) {
		if less(r.cells[i].cell, s.cells[j].cell) {
			stepR()
		} else {
			stepS()
		}
	}
	// Drain the remaining cells of whichever sequence is longer: they can
	// still be contained in cells of the other relation that are open on the
	// stack.
	for i < len(r.cells) {
		stepR()
	}
	for j < len(s.cells) {
		stepS()
	}
	res.Metrics = collector.Snapshot().Sub(before)
	return res
}

// less orders cells by lower z-value, larger (containing) cells first on ties.
func less(a, b Cell) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	return a.Hi > b.Hi
}

// prune removes cells that end at or before the given position from the
// bottom-up stack.
func prune(stack []cellRef, pos uint64) []cellRef {
	out := stack[:0]
	for _, c := range stack {
		if c.cell.Hi > pos {
			out = append(out, c)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (res *Result) String() string {
	return fmt.Sprintf("zbjoin: %d pairs from %d candidates (redundancy %.2f/%.2f)",
		len(res.Pairs), res.Candidates, res.RedundancyR, res.RedundancyS)
}
