// Package datagen produces the synthetic data sets that substitute for the
// proprietary TIGER/Line and Eurostat region files used by the paper's
// evaluation (see DESIGN.md, "Substitutions").
//
// The spatial-join algorithms only ever see minimum bounding rectangles, so
// the properties that drive their CPU and I/O behaviour are the number of
// rectangles, their size distribution, their spatial skew and the overlap
// between the two joined relations.  The generators reproduce those
// properties:
//
//   - Streets: dense clusters ("cities") of many short segments plus a
//     uniform rural background, mimicking a street map's MBR distribution.
//   - Rivers and railways: long random-walk polylines crossing the map,
//     chopped into per-segment MBRs, so consecutive rectangles are spatially
//     correlated just like digitised river courses.
//   - Regions: a jittered grid of area objects whose MBRs are much larger
//     and overlap heavily, reproducing the high join selectivity of the
//     paper's region test (E).
//
// All generators are deterministic for a given seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Cardinalities of the paper's data sets (Table 8).
const (
	PaperStreetsCount        = 131461 // CA streets (tests A, B, C: R*-tree R)
	PaperStreets2Count       = 131192 // second street map (test B)
	PaperRiversRailwaysCount = 128971 // CA rivers & railways (tests A, C, D)
	PaperLargeStreetsCount   = 598677 // large street relation (section 4.4, test C)
	PaperRegionRCount        = 67527  // European region data (test E)
	PaperRegionSCount        = 33696  // European region data (test E)
)

// Kind identifies the flavour of synthetic map a generator produces.
type Kind int

const (
	// Streets mimics an urban street map: many short segments, strongly
	// clustered around city centres.
	Streets Kind = iota
	// Rivers mimics hydrography and railway lines: fewer, longer polylines
	// crossing the map, digitised into short segments.
	Rivers
	// Regions mimics administrative regions: fewer, larger area objects that
	// tile the map with overlap between neighbouring MBRs.
	Regions
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Streets:
		return "streets"
	case Rivers:
		return "rivers&railways"
	case Regions:
		return "regions"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes one synthetic relation.
type Config struct {
	// Kind selects the map flavour.
	Kind Kind
	// Count is the number of spatial objects (MBRs) to generate.
	Count int
	// Seed makes the relation reproducible.  Two relations with different
	// seeds model different maps of the same area.
	Seed int64
	// World is the data space; the default is the unit square.
	World geom.Rect
}

func (c Config) withDefaults() Config {
	if c.World.Area() == 0 {
		c.World = geom.WorldRect()
	}
	return c
}

// Generate produces the items of the configured relation.
func Generate(cfg Config) []rtree.Item {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Kind {
	case Rivers:
		return generateRivers(cfg, rng)
	case Regions:
		return generateRegions(cfg, rng)
	default:
		return generateStreets(cfg, rng)
	}
}

// clusterCount returns the number of city clusters for a street map of the
// given size; larger maps have more cities.
func clusterCount(count int) int {
	c := int(math.Sqrt(float64(count)) / 4)
	if c < 3 {
		c = 3
	}
	if c > 120 {
		c = 120
	}
	return c
}

// generateStreets produces short, clustered line-segment MBRs.
func generateStreets(cfg Config, rng *rand.Rand) []rtree.Item {
	w := cfg.World
	type cluster struct {
		cx, cy, spread float64
	}
	clusters := make([]cluster, clusterCount(cfg.Count))
	for i := range clusters {
		clusters[i] = cluster{
			cx:     w.XL + rng.Float64()*w.Width(),
			cy:     w.YL + rng.Float64()*w.Height(),
			spread: (0.01 + rng.Float64()*0.04) * w.Width(),
		}
	}
	items := make([]rtree.Item, cfg.Count)
	for i := range items {
		var x, y float64
		if rng.Float64() < 0.8 {
			// Urban segment: Gaussian around a random city.
			c := clusters[rng.Intn(len(clusters))]
			x = c.cx + rng.NormFloat64()*c.spread
			y = c.cy + rng.NormFloat64()*c.spread
		} else {
			// Rural segment: uniform background.
			x = w.XL + rng.Float64()*w.Width()
			y = w.YL + rng.Float64()*w.Height()
		}
		x = clamp(x, w.XL, w.XU)
		y = clamp(y, w.YL, w.YU)
		// Street segments are short and axis-biased (grid-like city layouts).
		length := (0.0005 + rng.Float64()*0.002) * w.Width()
		angle := rng.Float64() * 2 * math.Pi
		if rng.Float64() < 0.6 {
			// Snap to an axis to mimic grid streets.
			angle = math.Round(angle/(math.Pi/2)) * (math.Pi / 2)
		}
		dx := math.Cos(angle) * length
		dy := math.Sin(angle) * length
		items[i] = rtree.Item{
			Rect: clampRect(geom.NewRect(x, y, x+dx, y+dy), w),
			Data: int32(i),
		}
	}
	return items
}

// generateRivers produces per-segment MBRs of long random-walk polylines.
func generateRivers(cfg Config, rng *rand.Rand) []rtree.Item {
	w := cfg.World
	items := make([]rtree.Item, 0, cfg.Count)
	id := int32(0)
	// Each polyline contributes a few hundred segments; rivers meander with a
	// persistent heading, railways are straighter.
	for len(items) < cfg.Count {
		segments := 150 + rng.Intn(400)
		x := w.XL + rng.Float64()*w.Width()
		y := w.YL + rng.Float64()*w.Height()
		heading := rng.Float64() * 2 * math.Pi
		straightness := 0.1 + rng.Float64()*0.4
		step := (0.001 + rng.Float64()*0.003) * w.Width()
		for s := 0; s < segments && len(items) < cfg.Count; s++ {
			heading += rng.NormFloat64() * straightness
			nx := x + math.Cos(heading)*step
			ny := y + math.Sin(heading)*step
			nx = clamp(nx, w.XL, w.XU)
			ny = clamp(ny, w.YL, w.YU)
			items = append(items, rtree.Item{
				Rect: clampRect(geom.NewRect(x, y, nx, ny), w),
				Data: id,
			})
			id++
			x, y = nx, ny
		}
	}
	return items
}

// generateRegions produces larger, mutually overlapping area MBRs arranged as
// a jittered tiling of the world.
func generateRegions(cfg Config, rng *rand.Rand) []rtree.Item {
	w := cfg.World
	// Arrange the regions on a sqrt(n) x sqrt(n) grid with jitter and size
	// variation so neighbouring MBRs overlap, as real administrative regions'
	// bounding boxes do.
	side := int(math.Ceil(math.Sqrt(float64(cfg.Count))))
	cellW := w.Width() / float64(side)
	cellH := w.Height() / float64(side)
	items := make([]rtree.Item, 0, cfg.Count)
	for i := 0; len(items) < cfg.Count; i++ {
		row := (i / side) % side
		col := i % side
		cx := w.XL + (float64(col)+0.5)*cellW + rng.NormFloat64()*cellW*0.2
		cy := w.YL + (float64(row)+0.5)*cellH + rng.NormFloat64()*cellH*0.2
		halfW := cellW * (0.6 + rng.Float64()*0.9)
		halfH := cellH * (0.6 + rng.Float64()*0.9)
		items = append(items, rtree.Item{
			Rect: clampRect(geom.NewRect(cx-halfW, cy-halfH, cx+halfW, cy+halfH), w),
			Data: int32(len(items)),
		})
	}
	return items
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampRect(r, w geom.Rect) geom.Rect {
	return geom.Rect{
		XL: clamp(r.XL, w.XL, w.XU),
		YL: clamp(r.YL, w.YL, w.YU),
		XU: clamp(r.XU, w.XL, w.XU),
		YU: clamp(r.YU, w.YL, w.YU),
	}
}

// Dataset pairs a name with generated items, mirroring the paper's named
// relations.
type Dataset struct {
	Name  string
	Kind  Kind
	Items []rtree.Item
}

// TestPair describes one of the paper's join experiments (A)-(E): two
// relations and their cardinalities.
type TestPair struct {
	Name     string
	R, S     Config
	SelfJoin bool // test (D) joins a relation with itself
}

// PaperTestPairs returns the five dataset pairs of Table 8, scaled by the
// given factor (1.0 reproduces the paper's cardinalities; smaller factors are
// used by the default test and benchmark configurations to bound runtime).
func PaperTestPairs(scale float64) []TestPair {
	if scale <= 0 {
		scale = 1
	}
	n := func(count int) int {
		v := int(float64(count) * scale)
		if v < 100 {
			v = 100
		}
		return v
	}
	return []TestPair{
		{
			Name: "A",
			R:    Config{Kind: Streets, Count: n(PaperStreetsCount), Seed: 101},
			S:    Config{Kind: Rivers, Count: n(PaperRiversRailwaysCount), Seed: 202},
		},
		{
			Name: "B",
			R:    Config{Kind: Streets, Count: n(PaperStreetsCount), Seed: 101},
			S:    Config{Kind: Streets, Count: n(PaperStreets2Count), Seed: 303},
		},
		{
			Name: "C",
			R:    Config{Kind: Streets, Count: n(PaperLargeStreetsCount), Seed: 404},
			S:    Config{Kind: Rivers, Count: n(PaperRiversRailwaysCount), Seed: 202},
		},
		{
			Name:     "D",
			R:        Config{Kind: Rivers, Count: n(PaperRiversRailwaysCount), Seed: 202},
			S:        Config{Kind: Rivers, Count: n(PaperRiversRailwaysCount), Seed: 202},
			SelfJoin: true,
		},
		{
			Name: "E",
			R:    Config{Kind: Regions, Count: n(PaperRegionRCount), Seed: 505},
			S:    Config{Kind: Regions, Count: n(PaperRegionSCount), Seed: 606},
		},
	}
}
